package repro

// The end-to-end integration test: one program travels the entire system —
// written as text, linted, parsed, run under the interpreter with the
// paper-calibrated clock, saved to XML and reloaded, translated to OpenMP
// C, compiled (when a toolchain exists), and its batch script submitted to
// the simulated cluster. Every stage consumes the previous stage's output.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/blocks"
	"repro/internal/codegen"
	_ "repro/internal/core"
	"repro/internal/interp"
	"repro/internal/lint"
	"repro/internal/parse"
	"repro/internal/sched"
	"repro/internal/value"
	"repro/internal/vclock"
	"repro/internal/xmlio"
)

const pipelineProject = `
(project "pipeline"
  (global temps (list 32 212 122))
  (global result 0)
  (sprite "Scientist"
    (when green-flag (do
      (set result (mapreduce
        (ring (/ (* 5 (- _ 32)) 9))
        (ring (/ (combine _ (ring (+ _ _))) (length _)))
        $temps))))))
`

func TestEndToEndPipeline(t *testing.T) {
	// Stage 1: parse the textual project.
	project, err := parse.Project(pipelineProject)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}

	// Stage 2: lint it — must be clean.
	if findings := lint.Project(project); len(findings) != 0 {
		t.Fatalf("lint: %v", findings)
	}

	// Stage 3: run it; the mapReduce block computes the 50°C average.
	m := interp.NewMachine(project, vclock.NewPaperInterference())
	m.GreenFlag()
	if err := m.Run(0); err != nil {
		t.Fatalf("run: %v", err)
	}
	result, err := m.GlobalFrame().Get("result")
	if err != nil {
		t.Fatal(err)
	}
	if result.String() != "50" {
		t.Fatalf("interpreted result = %s, want 50", result)
	}

	// Stage 4: XML round trip, then run the reloaded project.
	var buf bytes.Buffer
	if err := xmlio.EncodeProject(&buf, project); err != nil {
		t.Fatalf("encode: %v", err)
	}
	reloaded, err := xmlio.DecodeProject(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	m2 := interp.NewMachine(reloaded, nil)
	m2.GreenFlag()
	if err := m2.Run(0); err != nil {
		t.Fatalf("run reloaded: %v", err)
	}
	result2, _ := m2.GlobalFrame().Get("result")
	if !value.Equal(result, result2) {
		t.Fatalf("reloaded result %s != %s", result2, result)
	}

	// Stage 5: translate the same mapReduce block to the OpenMP bundle.
	script := reloaded.Sprites[0].Scripts[0].Script
	setBlock := script.Blocks[0]
	mrBlock, ok := setBlock.Input(1).(*blocks.Block)
	if !ok || mrBlock.Op != "reportMapReduce" {
		t.Fatalf("expected the mapReduce block, got %v", setBlock.Describe())
	}
	files, err := codegen.MapReduceFiles(mrBlock, []float64{32, 212, 122}, 4)
	if err != nil {
		t.Fatalf("codegen: %v", err)
	}

	// Stage 6: compile and run the generated OpenMP program (skipped
	// without a toolchain); it must print the same 50.
	if cc, err := exec.LookPath("cc"); err == nil {
		dir := t.TempDir()
		cfile := filepath.Join(dir, "prog.c")
		bin := filepath.Join(dir, "prog")
		if err := os.WriteFile(cfile, []byte(files["runnable.c"]), 0o644); err != nil {
			t.Fatal(err)
		}
		out, err := exec.Command(cc, "-O1", "-fopenmp", "-o", bin, cfile, "-lm").CombinedOutput()
		if err != nil {
			if strings.Contains(string(out), "fopenmp") {
				t.Skip("compiler lacks OpenMP")
			}
			t.Fatalf("compile: %v\n%s", err, out)
		}
		run, err := exec.Command(bin).CombinedOutput()
		if err != nil {
			t.Fatalf("run generated: %v", err)
		}
		if !strings.Contains(string(run), "50") {
			t.Fatalf("generated program printed %q, want 50", run)
		}
	}

	// Stage 7: submit the generated batch script to the simulated
	// cluster and collect.
	cluster := sched.NewCluster(2, sched.Backfill)
	job, err := cluster.SubmitScript(files["job.sbatch"], 2, func() string {
		return result.String() + " C"
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := cluster.RunUntilDone(100); err != nil {
		t.Fatal(err)
	}
	out, err := cluster.Collect(job)
	if err != nil || out != "50 C" {
		t.Fatalf("collect = %q, %v", out, err)
	}
}

// TestStopButtonCancelsWorkers verifies the cancellation chain at block
// level: stopping the machine while a parallelMap grinds cancels its
// worker job.
func TestStopButtonCancelsWorkers(t *testing.T) {
	script, err := parse.Script(`
(declare out)
(set out (parallelmap (ring (combine (numbers 1 2000) (ring (+ _ _)))) (numbers 1 2000) 2))
`)
	if err != nil {
		t.Fatal(err)
	}
	p := blocks.NewProject("stop")
	sp := p.AddSprite(blocks.NewSprite("S"))
	sp.AddScript(blocks.HatGreenFlag, "", script)
	m := interp.NewMachine(p, nil)
	m.GreenFlag()
	m.Step() // kick the job off
	m.StopAll()
	for m.Step() {
	}
	// The process is gone; the job was canceled via OnDone. There is
	// nothing externally observable beyond termination without error
	// and no goroutine leak (the race detector and test timeout guard
	// the latter).
	if len(m.Errors()) != 0 {
		t.Errorf("stop produced errors: %v", m.Errors())
	}
}
