# pblocks — development targets

GO ?= go

.PHONY: all build test race bench bench-all bench-diff check fuzz stress serve-smoke shard-smoke repro lint fmt vet cover clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the pre-merge gate: vet everything, run the race detector over
# the packages with real concurrency (the worker pool with its chunked
# dispatch, the MapReduce engine, the interpreter, the bytecode machine
# with its shared lowered programs, the ring compiler, the parallel
# blocks, the observability registry with its 64-goroutine hammer, the
# program cache with its singleflight front, and the execution service
# and the shard router with its concurrent failover e2e, plus the
# evolutionary stress engine itself), shuffled so inter-test ordering
# dependencies can't hide, then give both differential fuzzers —
# compiled-vs-interpreted rings and lowered-vs-tree-walked scripts — a
# short burst, and finish with the deterministic-seed cross-tier stress
# soak.
check:
	$(GO) vet ./...
	$(GO) test -race -shuffle=on ./internal/workers/... ./internal/mapreduce/... \
		./internal/interp/... ./internal/compile/... ./internal/core/... \
		./internal/vm/... ./internal/progcache/... ./internal/runtime/... \
		./internal/server/... ./internal/obs/... ./internal/shard/... \
		./internal/evo/... ./internal/value/... ./internal/ingest/...
	$(GO) test -run '^$$' -fuzz FuzzCompileRing -fuzztime 5s ./internal/compile/
	$(GO) test -run '^$$' -fuzz FuzzLowerProject -fuzztime 5s ./internal/vm/
	$(MAKE) stress

# stress runs the evolutionary cross-tier differential engine
# (docs/TESTING.md) as a fixed-seed soak: every evolved program executes
# under all four tiers (tree, vm, sequential kernels, live session +
# cache replay) and any divergence is shrunk, persisted to the committed
# corpus, and fails the build. The fixed seed makes CI runs reproducible.
stress:
	$(GO) run ./cmd/snapstress -seed 1 -duration 60s -min-programs 1000 \
		-corpus internal/evo/corpus -q

# fuzz runs the compiler's differential fuzzer open-ended (ctrl-C to stop).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzCompileRing ./internal/compile/

# serve-smoke boots snapserved in its self-test mode: serve on an
# ephemeral port, run a sequential and a parallelMap project, then scrape
# /metrics and fail on any series outside the snapserved_*/engine_*
# catalog or any duplicated (name, labels) pair.
serve-smoke:
	$(GO) run ./cmd/snapserved -smoke

# shard-smoke boots snapshardd in its self-test mode: two real in-process
# snapserved backends, repeated traffic through the router, a scripted
# graceful kill of one backend (the survivors must absorb everything and
# the ring must eject the dead one), then the same /metrics scrape
# validation as serve-smoke with engine_shard_* required present.
shard-smoke:
	$(GO) run ./cmd/snapshardd -smoke

# bench runs the paper's E-series experiment benchmarks with allocation
# stats and records the results as JSON (benchmark name -> ns/op,
# allocs/op, and any custom metrics) for before/after comparisons.
# The series runs three full passes and benchjson keeps the fastest run
# of each benchmark. Three separate passes — not -count 3 — because a
# shared machine's slow phases last minutes: consecutive repetitions all
# land in the same phase, while passes spread each benchmark's samples
# far enough apart that one usually hits a quiet window.
bench:
	( $(GO) test -bench 'BenchmarkE[0-9]' -benchmem -run '^$$' . && \
	  $(GO) test -bench 'BenchmarkE[0-9]' -benchmem -run '^$$' . && \
	  $(GO) test -bench 'BenchmarkE[0-9]' -benchmem -run '^$$' . ) \
		| $(GO) run ./cmd/benchjson > BENCH_PR10.json

bench-all:
	$(GO) test -bench=. -benchmem ./...

# bench-diff compares the current benchmark record against the previous
# PR's committed baseline and fails on any >20% ns/op or allocs/op
# regression — for this PR, the proof that the columnar-list wins on the
# data-bound paths (E6 climate) cost the script-bound and parallel paths
# nothing.
bench-diff:
	$(GO) run ./cmd/benchjson -baseline BENCH_PR8.json -current BENCH_PR10.json

# Regenerate every paper figure/listing/result as text.
repro:
	$(GO) run ./cmd/snapbench

lint:
	$(GO) vet ./...
	$(GO) run ./cmd/snaplint projects/concession.sblk
	$(GO) run ./cmd/snaplint projects/concession-parallel.xml

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

cover:
	$(GO) test -cover ./internal/...

clean:
	rm -f test_output.txt bench_output.txt
