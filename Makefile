# pblocks — development targets

GO ?= go

.PHONY: all build test race bench bench-all check serve-smoke repro lint fmt vet cover clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the pre-merge gate: vet everything, then run the race detector
# over the packages with real concurrency (the worker pool, the MapReduce
# engine, the interpreter, and the execution service).
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/workers/... ./internal/mapreduce/... \
		./internal/interp/... ./internal/runtime/... ./internal/server/...

# serve-smoke boots snapserved in its self-test mode: serve on an
# ephemeral port, POST one project, assert a 200, exit.
serve-smoke:
	$(GO) run ./cmd/snapserved -smoke

# bench runs the paper's E-series experiment benchmarks with allocation
# stats and records the results as JSON (benchmark name -> ns/op,
# allocs/op, and any custom metrics) for before/after comparisons.
bench:
	$(GO) test -bench 'BenchmarkE[0-9]' -benchmem -run '^$$' . \
		| $(GO) run ./cmd/benchjson > BENCH_PR1.json

bench-all:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper figure/listing/result as text.
repro:
	$(GO) run ./cmd/snapbench

lint:
	$(GO) vet ./...
	$(GO) run ./cmd/snaplint projects/concession.sblk
	$(GO) run ./cmd/snaplint projects/concession-parallel.xml

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

cover:
	$(GO) test -cover ./internal/...

clean:
	rm -f test_output.txt bench_output.txt
