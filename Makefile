# pblocks — development targets

GO ?= go

.PHONY: all build test race bench repro lint fmt vet cover clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper figure/listing/result as text.
repro:
	$(GO) run ./cmd/snapbench

lint:
	$(GO) vet ./...
	$(GO) run ./cmd/snaplint projects/concession.sblk
	$(GO) run ./cmd/snaplint projects/concession-parallel.xml

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

cover:
	$(GO) test -cover ./internal/...

clean:
	rm -f test_output.txt bench_output.txt
