// The water-balloon game of §5 — "one of the more creative examples of
// parallelism" a WCD student built: balloons fall from the sky in parallel
// (one sprite clone each, via parallelForEach) while the player steers a
// basket with the arrow keys.
package main

import (
	"fmt"
	"log"

	"repro/internal/demos"
	"repro/internal/interp"
	"repro/internal/vclock"
)

func main() {
	columns := []float64{0, 100, 200}
	fmt.Println("round 1: basket parked at column 0")
	res, err := demos.RunBalloons(columns, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  caught %d, splat %d, round took %d timesteps\n",
		res.Caught, res.Splat, res.Timer)
	fmt.Printf("  (three balloons fell *in parallel*: %d timesteps, not %d)\n\n",
		res.Timer, 3*res.Timer)

	fmt.Println("round 2: player presses right arrow before the drop")
	m := interp.NewMachine(demos.Balloons(columns, 5), vclock.New())
	m.PressKey("right arrow")
	if err := m.Run(0); err != nil {
		log.Fatal(err)
	}
	m.GreenFlag()
	if err := m.Run(0); err != nil {
		log.Fatal(err)
	}
	caught, _ := m.GlobalFrame().Get("caught")
	splat, _ := m.GlobalFrame().Get("splat")
	fmt.Printf("  caught %s, splat %s (basket now at column 100)\n\n", caught, splat)

	fmt.Println("stage trace of round 2:")
	for _, line := range m.Stage.TraceLines() {
		fmt.Println(" ", line)
	}
}
