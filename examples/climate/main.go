// The global climate modeling exercise of §3.4 (Figure 13), end to end:
// generate NOAA-style station data, write and re-ingest it as CSV (§6.3's
// data-file ingestion), average each year's Fahrenheit readings in Celsius
// with the MapReduce engine, observe the warming trend — then translate
// the same mapReduce block to OpenMP C, generate the Makefile and batch
// script, and run the job through the simulated cluster (§6.3's
// supercomputer workflow).
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/blocks"
	"repro/internal/codegen"
	"repro/internal/mapreduce"
	"repro/internal/noaa"
	"repro/internal/sched"
	"repro/internal/value"
)

func main() {
	// 1. Synthesize and round-trip the station data.
	ds := noaa.Generate(noaa.Config{
		Stations: 8, StartYear: 1990, EndYear: 1999,
		DaysPerYear: 90, TrendFPerYear: 0.4, Seed: 11,
	})
	var csvBuf bytes.Buffer
	if err := ds.WriteCSV(&csvBuf); err != nil {
		log.Fatal(err)
	}
	loaded, err := noaa.ReadCSV(&csvBuf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d stations, %d readings (CSV round-tripped)\n\n",
		len(loaded.Stations), len(loaded.Readings))

	// 2. Year-by-year mapReduce: F→C in the map, average in the reduce.
	fmt.Println("year   mean °C")
	var first, last float64
	years := loaded.Years()
	for _, year := range years {
		res, err := mapreduce.Run(loaded.TempsFForYear(year),
			mapreduce.FahrenheitToCelsius, mapreduce.AvgReduce,
			mapreduce.Config{Workers: 4})
		if err != nil {
			log.Fatal(err)
		}
		c, _ := value.ToNumber(res[0].Val)
		fmt.Printf("%d   %6.2f\n", year, float64(c))
		if year == years[0] {
			first = float64(c)
		}
		last = float64(c)
	}
	fmt.Printf("\nwarming over the decade: %+.2f °C — \"students can attempt to\n", last-first)
	fmt.Println("observe a mean change in the temperature of the Earth over time\" (§3.4)")

	// 3. Translate the same block program to OpenMP C (Figures 18-20).
	mapRing := blocks.RingOf(blocks.Quotient(
		blocks.Product(blocks.Num(5), blocks.Difference(blocks.Empty(), blocks.Num(32))),
		blocks.Num(9)))
	reduceRing := blocks.RingOf(blocks.Quotient(
		blocks.Combine(blocks.Empty(), blocks.RingOf(blocks.Sum(blocks.Empty(), blocks.Empty()))),
		blocks.LengthOf(blocks.Empty())))
	sample, _ := loaded.TempsFForYear(years[0]).Slice(1, 6)
	data, _ := sample.Floats()
	block := blocks.MapReduce(mapRing, reduceRing, blocks.Lit(sample))
	files, err := codegen.MapReduceFiles(block, data, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ngenerated mapper (Figure 19 shape):")
	for _, line := range splitAfter(files["mapreduce.c"], "int map ") {
		fmt.Println(" ", line)
	}

	// 4. Submit to the simulated cluster and collect.
	cluster := sched.NewCluster(4, sched.Backfill)
	cluster.Submit(sched.JobSpec{Name: "someone-else", Nodes: 4, Walltime: 5, Duration: 5})
	job, err := cluster.SubmitScript(files["job.sbatch"], 4, func() string {
		res, err := mapreduce.Run(loaded.TempsF(),
			mapreduce.FahrenheitToCelsius, mapreduce.AvgReduce,
			mapreduce.Config{Workers: 8})
		if err != nil {
			return "error: " + err.Error()
		}
		c, _ := value.ToNumber(res[0].Val)
		return fmt.Sprintf("decade mean: %.2f C", float64(c))
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsubmitted %q to the simulated cluster (state: %s)\n",
		job.Spec.Name, job.State)
	if err := cluster.RunUntilDone(500); err != nil {
		log.Fatal(err)
	}
	out, err := cluster.Collect(job)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job %s after queueing %d ticks; output: %s\n",
		job.State, job.StartTick-job.SubmitTick, out)
}

// splitAfter returns the first four lines starting at the marker.
func splitAfter(src, marker string) []string {
	idx := bytes.Index([]byte(src), []byte(marker))
	if idx < 0 {
		return nil
	}
	rest := src[idx:]
	lines := bytes.Split([]byte(rest), []byte("\n"))
	out := []string{}
	for i := 0; i < len(lines) && i < 4; i++ {
		out = append(out, string(lines[i]))
	}
	return out
}
