// Code mapping (§6): translate the Figure 16 block script to C (Listing 5),
// JavaScript, Python, and Go; if a C compiler is on the host, compile and
// run the generated C to prove the output is real code.
package main

import (
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"

	"repro/internal/codegen"
)

func main() {
	script := codegen.Figure16Script()
	fmt.Println("Snap! script (Figure 16):")
	fmt.Println(" ", script.Describe())

	fmt.Println("\n=== map to C (Listing 5) ===")
	cSrc, err := codegen.Listing5()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cSrc)

	for _, lang := range []string{"js", "python", "go"} {
		tr, err := codegen.ForLang(lang)
		if err != nil {
			log.Fatal(err)
		}
		src, err := tr.Script(script, 0)
		if err != nil {
			// Some opcodes are intentionally unmapped in some
			// languages; report rather than fail.
			fmt.Printf("\n=== map to %s ===\n(not translatable: %v)\n", lang, err)
			continue
		}
		fmt.Printf("\n=== map to %s ===\n%s\n", lang, src)
	}

	cc, err := exec.LookPath("cc")
	if err != nil {
		fmt.Println("\n(no C compiler found; skipping compile check)")
		return
	}
	dir, err := os.MkdirTemp("", "snapgen")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	cfile := filepath.Join(dir, "listing5.c")
	bin := filepath.Join(dir, "listing5")
	if err := os.WriteFile(cfile, []byte(cSrc), 0o644); err != nil {
		log.Fatal(err)
	}
	if out, err := exec.Command(cc, "-o", bin, cfile).CombinedOutput(); err != nil {
		log.Fatalf("compile: %v\n%s", err, out)
	}
	if err := exec.Command(bin).Run(); err != nil {
		log.Fatalf("run: %v", err)
	}
	fmt.Println("\ngenerated C compiled and ran cleanly (exit 0) —")
	fmt.Println("\"ready to compile and run in traditional parallel computing environments\"")
}
