// Inter-node parallelism — the paper's closing future-work item (§6.3):
// the same word-count mapReduce program, scaled from one simulated cluster
// node to eight, with the interconnect traffic and reduce-side balance the
// scaling costs.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/dist"
	"repro/internal/mapreduce"
	"repro/internal/value"
)

func main() {
	text := strings.Repeat(
		"in a hole in the ground there lived a hobbit not a nasty dirty wet hole ", 100)
	in := value.FromStrings(strings.Fields(text))
	fmt.Printf("word count over %d words\n\n", in.Len())

	single, err := mapreduce.Run(in, mapreduce.WordCount, mapreduce.SumReduce,
		mapreduce.Config{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-7s %-14s %-14s %-11s %s\n",
		"nodes", "shuffled msgs", "shuffle bytes", "imbalance", "result vs 1 node")
	for _, nodes := range []int{1, 2, 4, 8} {
		res, stats, err := dist.MapReduce(in, mapreduce.WordCount, mapreduce.SumReduce,
			dist.Config{Nodes: nodes, WorkersPerNode: 2})
		if err != nil {
			log.Fatal(err)
		}
		match := "identical"
		for i := range res {
			if res[i].Key != single[i].Key || !value.Equal(res[i].Val, single[i].Val) {
				match = "MISMATCH"
			}
		}
		fmt.Printf("%-7d %-14d %-14d %-10.2fx %s\n",
			nodes, stats.ShuffleMessages, stats.ShuffleBytes, stats.Imbalance(), match)
	}

	fmt.Println("\ntop counts:")
	for _, kv := range single {
		n, _ := value.ToNumber(kv.Val)
		if n >= 200 {
			fmt.Printf("  %-8s %g\n", kv.Key, float64(n))
		}
	}
	fmt.Println("\nEach node runs its own Web-Worker pool for the local map and reduce")
	fmt.Println("(intra-node parallelism, §4) while the shuffle moves each key to its")
	fmt.Println("owning node (inter-node parallelism, §6.3 future work).")
}
