// Quickstart: build a block program with the builder API (the programmatic
// stand-in for dragging blocks), run it on the Snap!-style machine, and
// speed a map up with the paper's parallelMap block.
package main

import (
	"fmt"
	"log"

	"repro/internal/blocks"
	_ "repro/internal/core" // registers parallelMap/parallelForEach/mapReduce
	"repro/internal/interp"
)

func main() {
	// 1. A first script: sum the numbers 1..10 in a loop, then report.
	script := blocks.NewScript(
		blocks.DeclareLocal("sum"),
		blocks.SetVar("sum", blocks.Num(0)),
		blocks.For("i", blocks.Num(1), blocks.Num(10), blocks.Body(
			blocks.ChangeVar("sum", blocks.Var("i")),
		)),
		blocks.Report(blocks.Var("sum")),
	)
	m := interp.NewMachine(blocks.NewProject("quickstart"), nil)
	v, err := m.RunScript(script)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sum of 1..10:", v) // 55

	// 2. The stock sequential map of Figure 4: × 10 over a list. The
	// gray ring (RingOf) delays evaluation so the function itself is
	// the input.
	m = interp.NewMachine(blocks.NewProject("quickstart"), nil)
	v, err = m.EvalReporter(blocks.Map(
		blocks.RingOf(blocks.Product(blocks.Empty(), blocks.Num(10))),
		blocks.ListOf(blocks.Num(3), blocks.Num(7), blocks.Num(8)),
	))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("map (x 10):", v) // [30 70 80]

	// 3. The same computation with the paper's parallelMap block: the
	// ring is shipped to Web-Worker-style goroutines, four by default.
	m = interp.NewMachine(blocks.NewProject("quickstart"), nil)
	v, err = m.EvalReporter(blocks.ParallelMap(
		blocks.RingOf(blocks.Product(blocks.Empty(), blocks.Num(10))),
		blocks.Numbers(blocks.Num(1), blocks.Num(20)),
		blocks.Num(4),
	))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("parallelMap (x 10) over 1..20:", v)
}
