// Word count, the canonical MapReduce example of §3.4 (Figures 11–12) —
// run twice: once as the mapReduce *block* inside the interpreter (the
// student's view), once against the engine directly (the library user's
// view), on a larger text with a worker-count sweep.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/demos"
	"repro/internal/mapreduce"
	"repro/internal/value"
)

const gettysburg = `four score and seven years ago our fathers brought forth
on this continent a new nation conceived in liberty and dedicated to the
proposition that all men are created equal now we are engaged in a great
civil war testing whether that nation or any nation so conceived and so
dedicated can long endure`

func main() {
	// The block, exactly as a student assembles it (Figure 11).
	fmt.Println("=== mapReduce block (Figure 11) ===")
	v, err := demos.EvalBlock(demos.WordCountBlock("the quick brown fox jumps over the lazy dog the end"))
	if err != nil {
		log.Fatal(err)
	}
	for _, it := range v.(*value.List).Items() {
		pair := it.(*value.List)
		fmt.Printf("  %-8s %s\n", pair.MustItem(1), pair.MustItem(2))
	}

	// The engine on a larger text: same result for every worker count.
	fmt.Println("\n=== engine, Gettysburg excerpt, worker sweep ===")
	words := value.FromStrings(strings.Fields(gettysburg))
	var baseline mapreduce.Result
	for _, w := range []int{1, 2, 4, 8} {
		res, err := mapreduce.Run(words, mapreduce.WordCount, mapreduce.SumReduce,
			mapreduce.Config{Workers: w})
		if err != nil {
			log.Fatal(err)
		}
		if baseline == nil {
			baseline = res
		}
		same := len(res) == len(baseline)
		for i := range res {
			if res[i] != baseline[i] {
				same = false
			}
		}
		fmt.Printf("  workers=%d: %d distinct words, deterministic=%v\n",
			w, len(res), same)
	}
	fmt.Println("\ntop words:")
	// Results are key-sorted; pick the highest counts.
	best := map[string]float64{}
	for _, kv := range baseline {
		n, _ := value.ToNumber(kv.Val)
		best[kv.Key] = float64(n)
	}
	for _, kv := range baseline {
		n, _ := value.ToNumber(kv.Val)
		if n >= 3 {
			fmt.Printf("  %-12s %g\n", kv.Key, float64(n))
		}
	}
}
