// The concession stand of §3.3 (Figures 7–10): three cups wait for drinks;
// in sequential mode one Pitcher pours them one at a time (12 timesteps,
// with footnote 5's interference), in parallel mode the parallelForEach
// block spawns Pitcher clones that pour simultaneously (3 timesteps).
package main

import (
	"fmt"
	"log"

	"repro/internal/demos"
)

func main() {
	for _, parallel := range []bool{false, true} {
		mode := "SEQUENTIAL (Figure 10)"
		if parallel {
			mode = "PARALLEL (Figure 9)"
		}
		fmt.Println("===", mode, "===")
		res, err := demos.RunConcession(parallel)
		if err != nil {
			log.Fatal(err)
		}
		for _, line := range res.Trace {
			fmt.Println(" ", line)
		}
		fmt.Printf("timer: %d timesteps\n\n", res.Timer)
	}
	seq, _ := demos.RunConcession(false)
	par, _ := demos.RunConcession(true)
	fmt.Printf("speedup: %d/%d = %dx — \"a useful pedagogical tool for visually\n",
		seq.Timer, par.Timer, seq.Timer/par.Timer)
	fmt.Println("demonstrating the benefits of parallelism\" (§3.3)")
}
