// Package repro is a from-scratch Go reproduction of "Parallel Programming
// with Pictures is a Snap!" (Feng, Gardner, Feng): a block-based visual
// programming system with the paper's explicit parallel blocks —
// parallelMap, parallelForEach, and mapReduce — a cooperative Snap!-style
// interpreter, a Web-Worker-equivalent parallel runtime, the block→text
// code-mapping pipeline targeting OpenMP C (plus JavaScript, Python, Go),
// and the supporting substrates: a MapReduce engine, an OpenMP-semantics
// runtime, a batch-scheduler simulator, synthetic NOAA climate data, and
// the paper's survey tabulation.
//
// The library lives under internal/ (see DESIGN.md for the system
// inventory); cmd/ holds the tools, examples/ the runnable walkthroughs,
// and the *_test.go benchmarks in this directory regenerate every figure
// and listing of the paper — run `go run ./cmd/snapbench` for the full
// reproduction, or `go test -bench=. -benchmem` to time it.
package repro
