// Command snapserved is the multi-tenant execution daemon: an HTTP/JSON
// service that runs uploaded block projects as governed sessions (wall-
// clock deadlines, step budgets, bounded traces), translates blocks to
// text languages (§6), and sheds load when full. It is the headless
// analogue of hosting Snap! for a classroom: many students, one runtime,
// nobody's forever-loop takes the service down.
//
//	snapserved -addr :8080 -max-concurrent 8 -timeout 10s
//	snapserved -smoke        # self-test: start, run one request, exit
//	snapserved -pprof        # also mount /debug/pprof/
//
// Endpoints: POST /v1/run, POST /v1/codegen, GET /v1/sessions/{id},
// GET /healthz, GET /metrics. See docs/SERVER.md and
// docs/OBSERVABILITY.md.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/server"
	"repro/internal/workers"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		maxConcurrent = flag.Int("max-concurrent", 4, "sessions executing at once")
		maxQueue      = flag.Int("max-queue", 0, "sessions waiting for a slot (0 = same as -max-concurrent)")
		queueWait     = flag.Duration("queue-wait", 5*time.Second, "longest a session waits for a slot before 429")
		timeout       = flag.Duration("timeout", runtime.DefaultLimits.Timeout, "default per-session wall-clock deadline")
		maxSteps      = flag.Int64("maxsteps", runtime.DefaultLimits.MaxSteps, "default per-session evaluator-step budget")
		maxRounds     = flag.Int("maxrounds", runtime.DefaultLimits.MaxRounds, "default per-session scheduler-round cap")
		maxTrace      = flag.Int("maxtrace", runtime.DefaultLimits.MaxTraceLines, "default bound on a session's stage output log")
		maxList       = flag.Int("maxlist", 1_000_000, "process-wide cap on list length (0 = uncapped)")
		maxText       = flag.Int("maxtext", 1<<20, "process-wide cap on text bytes (0 = uncapped)")
		maxBody       = flag.Int64("maxbody", 1<<20, "request body cap in bytes")
		cacheBytes    = flag.Int64("cache-bytes", 0, "byte budget of the content-addressed project cache (0 = default 32 MiB, negative disables)")
		nworkers      = flag.Int("workers", 0, "shared worker-pool size (0 = hardware concurrency)")
		drainTimeout  = flag.Duration("drain-timeout", 10*time.Second, "longest SIGTERM waits for in-flight sessions before exiting")
		smoke         = flag.Bool("smoke", false, "self-test: serve on an ephemeral port, run one project, exit")
		enableObs     = flag.Bool("obs", true, "collect engine metrics and job spans (engine_* series on /metrics)")
		enablePprof   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	obs.SetEnabled(*enableObs)
	if *nworkers > 0 {
		if !workers.ConfigureSharedPool(*nworkers) {
			log.Printf("worker pool already built; -workers %d ignored", *nworkers)
		}
	}
	runtime.SetGlobalCaps(*maxList, *maxText)

	defaults := runtime.Limits{
		Timeout:       *timeout,
		MaxSteps:      *maxSteps,
		MaxRounds:     *maxRounds,
		MaxTraceLines: *maxTrace,
	}
	srv := server.New(server.Config{
		Runtime: runtime.Config{
			MaxConcurrent: *maxConcurrent,
			MaxQueue:      *maxQueue,
			QueueWait:     *queueWait,
			Defaults:      defaults,
			// Nothing may ask for more than the daemon-wide defaults.
			Ceiling: defaults,
		},
		MaxBodyBytes: *maxBody,
		CacheBytes:   *cacheBytes,
		EnablePprof:  *enablePprof,
	})

	if *smoke {
		if err := runSmoke(srv); err != nil {
			fmt.Fprintln(os.Stderr, "smoke:", err)
			os.Exit(1)
		}
		fmt.Println("smoke ok")
		return
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		// Graceful drain: flip /healthz to draining (503) so a fronting
		// shard router ejects this backend and stops sending work, wait
		// for the in-flight sessions to finish (bounded), then close the
		// listener. Requests that arrive during the drain window are
		// still served — the router's health interval, not this daemon,
		// decides how long that window is.
		log.Printf("draining: waiting up to %v for in-flight sessions", *drainTimeout)
		srv.SetDraining(true)
		if !srv.Manager().Drain(*drainTimeout) {
			st := srv.Manager().Stats()
			log.Printf("drain timeout: %d running, %d queued sessions abandoned", st.Running, st.Queued)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx) //nolint:errcheck
	}()
	log.Printf("snapserved listening on %s (max %d concurrent sessions, %d workers)",
		*addr, *maxConcurrent, workers.SharedPool().Size())
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}

// runSmoke boots the server on an ephemeral port, POSTs two projects (one
// sequential, one that fans out through the worker pool), scrapes /metrics,
// and validates the scrape — the `make serve-smoke` target. The scrape
// check is the deployment-shaped guard: every series must belong to a
// known family prefix and no (name, labels) pair may repeat.
func runSmoke(srv *server.Server) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln) //nolint:errcheck
	defer httpSrv.Close()

	base := "http://" + ln.Addr().String()
	projects := []string{
		`{"project": "(project \"smoke\" (sprite \"S\" (when green-flag (do (say \"hello\")))))"}`,
		// Drives parallelMap so the engine_* series have data to report.
		`{"project": "(project \"smoke-par\" (sprite \"S\" (when green-flag (do (report (parallelmap (lambda (x) (* $x 2)) (numbers 1 64) 4))))))"}`,
	}
	for _, body := range projects {
		resp, err := http.Post(base+"/v1/run", "application/json", strings.NewReader(body))
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST /v1/run: status %d", resp.StatusCode)
		}
	}
	health, err := http.Get(base + "/healthz")
	if err != nil {
		return err
	}
	health.Body.Close()
	if health.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /healthz: status %d", health.StatusCode)
	}
	scrape, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer scrape.Body.Close()
	if scrape.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metrics: status %d", scrape.StatusCode)
	}
	return validateScrape(scrape.Body)
}

// validateScrape checks a Prometheus text scrape the way a collision in
// production would surface: a series outside the known prefixes means a
// registry leaked in unannounced; a duplicated (name, labels) pair means
// two registries collided and the scrape is unusable.
func validateScrape(r io.Reader) error {
	seen := make(map[string]bool)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		series := line
		if i := strings.LastIndexByte(line, ' '); i >= 0 {
			series = line[:i] // strip the value
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name = series[:i]
		}
		if !strings.HasPrefix(name, "snapserved_") && !strings.HasPrefix(name, "engine_") {
			return fmt.Errorf("/metrics: unknown series %q (want snapserved_* or engine_*)", name)
		}
		if seen[series] {
			return fmt.Errorf("/metrics: duplicate series %q", series)
		}
		seen[series] = true
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(seen) == 0 {
		return errors.New("/metrics: empty scrape")
	}
	return nil
}
