package main

import "testing"

func TestSessionExpression(t *testing.T) {
	s := newSession()
	out, err := s.eval("(parallelmap (ring (* _ 10)) (list 3 7 8) 4)")
	if err != nil {
		t.Fatal(err)
	}
	if out != "[30 70 80]" {
		t.Errorf("out = %q", out)
	}
}

func TestSessionVariablePersistence(t *testing.T) {
	s := newSession()
	if _, err := s.eval("(set x 5)"); err != nil {
		t.Fatal(err)
	}
	out, err := s.eval("(+ $x 37)")
	if err != nil {
		t.Fatal(err)
	}
	if out != "42" {
		t.Errorf("out = %q", out)
	}
	// Re-assignment updates the same variable.
	if _, err := s.eval("(set x 100)"); err != nil {
		t.Fatal(err)
	}
	out, _ = s.eval("$x")
	_ = out // a bare $x is not a block form; next assertion uses (+)
	out, err = s.eval("(+ $x 0)")
	if err != nil || out != "100" {
		t.Errorf("after reassign: %q, %v", out, err)
	}
}

func TestSessionMultiStatementLine(t *testing.T) {
	s := newSession()
	out, err := s.eval("(set n 0) (repeat 5 (do (change n 1))) (report $n)")
	if err != nil {
		t.Fatal(err)
	}
	if out != "5" {
		t.Errorf("out = %q", out)
	}
}

func TestSessionCommandProducesNoOutput(t *testing.T) {
	s := newSession()
	out, err := s.eval(`(say "hello")`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "" {
		t.Errorf("command printed %q", out)
	}
}

func TestSessionErrors(t *testing.T) {
	s := newSession()
	if _, err := s.eval("(+ 1"); err == nil {
		t.Error("parse error should surface")
	}
	if _, err := s.eval("(/ 1 0)"); err == nil {
		t.Error("runtime error should surface")
	}
	if _, err := s.eval("(+ $ghost 1)"); err == nil {
		t.Error("unknown variable should surface")
	}
}

func TestIsReporter(t *testing.T) {
	if !isReporter("reportSum") || !isReporter("evaluate") || !isReporter("getTimer") {
		t.Error("reporter classification")
	}
	if isReporter("doReport") || isReporter("doSetVar") || isReporter("bubble") {
		t.Error("command classification")
	}
}
