// Command snaprepl is a textual read-eval-print loop over the block
// language: each line (or -e argument) is parsed as an expression or
// command sequence, lowered to blocks, and run on a persistent machine —
// the textual side of "parallel programming with pictures".
//
//	$ snaprepl -e '(parallelmap (ring (* _ 10)) (list 3 7 8) 4)'
//	[30 70 80]
//
//	$ snaprepl
//	> (set x 5)            ; variables persist across lines
//	> (+ $x 37)
//	42
//
// Use -ops to print the operator vocabulary.
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"repro/internal/blocks"
	_ "repro/internal/core" // parallel blocks
	"repro/internal/interp"
	"repro/internal/parse"
	"repro/internal/stage"
	"repro/internal/value"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "-ops" {
		for _, op := range parse.Ops() {
			fmt.Println(op)
		}
		return
	}
	session := newSession()
	if len(args) > 1 && args[0] == "-e" {
		out, err := session.eval(strings.Join(args[1:], " "))
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if out != "" {
			fmt.Println(out)
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	interactive := fileIsTTY(os.Stdin)
	if interactive {
		fmt.Print("> ")
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" {
			out, err := session.eval(line)
			switch {
			case err != nil:
				fmt.Fprintln(os.Stderr, "error:", err)
			case out != "":
				fmt.Println(out)
			}
		}
		if interactive {
			fmt.Print("> ")
		}
	}
}

func fileIsTTY(f *os.File) bool {
	info, err := f.Stat()
	return err == nil && info.Mode()&os.ModeCharDevice != 0
}

// session keeps one machine alive across inputs so variables persist.
type session struct {
	m     *interp.Machine
	sp    *blocks.Sprite
	actor *stage.Actor
}

func newSession() *session {
	m := interp.NewMachine(blocks.NewProject("repl"), nil)
	return &session{
		m:     m,
		sp:    blocks.NewSprite("repl"),
		actor: m.Stage.AddActor("repl", 0, 0),
	}
}

// eval parses one input line and runs it. Reporters print their value;
// command sequences run for effect. Variables assigned at the top level
// are declared in the session's global scope so they persist across lines.
func (s *session) eval(src string) (string, error) {
	script, err := parse.Script(src)
	if err != nil {
		return "", err
	}
	s.hoistAssignments(script)
	// A single reporter form becomes (report <form>) so its value
	// prints.
	if len(script.Blocks) == 1 && isReporter(script.Blocks[0].Op) {
		script = blocks.NewScript(blocks.Report(script.Blocks[0]))
	}
	proc := s.m.SpawnScript(s.sp, s.actor, script)
	if err := s.m.Run(0); err != nil {
		return "", err
	}
	if v := proc.Result(); !value.IsNothing(v) {
		return v.String(), nil
	}
	return "", nil
}

// isReporter distinguishes value-producing forms from commands.
func isReporter(op string) bool {
	return strings.HasPrefix(op, "report") && op != "doReport" ||
		op == "evaluate" || op == "getTimer" || op == "reportMyName"
}

// hoistAssignments declares every top-level set/declare target in the
// global frame (if new), so `(set x 5)` on one line is visible on the
// next.
func (s *session) hoistAssignments(script *blocks.Script) {
	g := s.m.GlobalFrame()
	for _, b := range script.Blocks {
		switch b.Op {
		case "doSetVar", "doDeclareVariables":
			for i, in := range b.Inputs {
				if b.Op == "doSetVar" && i > 0 {
					break
				}
				if lit, ok := in.(blocks.Literal); ok {
					name := lit.Val.String()
					if _, err := g.Get(name); err != nil {
						g.Declare(name, value.Nothing{})
					}
				}
			}
		}
	}
}
