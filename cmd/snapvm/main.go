// Command snapvm runs a pblocks project: it loads a Snap!-style XML
// project file (or a named built-in demo), clicks the green flag, runs the
// scheduler to completion, and prints the stage trace — a headless Snap!.
//
//	snapvm -demo concession-parallel
//	snapvm project.xml
//	snapvm -key "right arrow" dragon.xml
//	snapvm -stats project.sblk    # append an engine metrics/span report
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/blocks"
	"repro/internal/demos"
	"repro/internal/ingest"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/parse"
	"repro/internal/value"
	"repro/internal/vclock"
	"repro/internal/xmlio"
)

func main() {
	demo := flag.String("demo", "", "run a built-in demo: concession-parallel, concession-sequential, dragon")
	key := flag.String("key", "", "press this key after the green-flag scripts finish")
	rounds := flag.Int("rounds", 0, "scheduler round limit (0 = default)")
	maxSteps := flag.Int64("maxsteps", 0, "evaluator-step budget across all processes (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "wall-clock deadline for the run (0 = none)")
	interfere := flag.Bool("interference", true, "model footnote-5 browser interference on the clock")
	traceBlocks := flag.Bool("traceblocks", false, "print every block application (watch the blocks run)")
	view := flag.Bool("view", false, "draw the final stage as ASCII art")
	stats := flag.Bool("stats", false, "collect engine metrics during the run and print a report after")
	var dataSpecs []string
	flag.Func("data", "load a data file into a global list before the run (repeatable): "+
		"VAR=FILE reads lines, VAR=FILE:COL streams a CSV column (header name or 1-based index)",
		func(s string) error {
			if !strings.Contains(s, "=") {
				return fmt.Errorf("want VAR=FILE or VAR=FILE:COL, got %q", s)
			}
			dataSpecs = append(dataSpecs, s)
			return nil
		})
	flag.Parse()

	if *stats {
		obs.SetEnabled(true)
	}

	project, err := loadProject(*demo, flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := loadData(project, dataSpecs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	clock := vclock.New()
	if *interfere {
		clock = vclock.NewPaperInterference()
	}
	m := interp.NewMachine(project, clock)
	if *traceBlocks {
		m.TraceBlock = func(p *interp.Process, b *blocks.Block) {
			who := "?"
			if p.Actor != nil {
				who = p.Actor.Label()
			}
			fmt.Printf("  [block] %-12s %s\n", who, b.Describe())
		}
	}
	started := m.GreenFlag()
	fmt.Printf("project %q: %d sprite(s), green flag started %d script(s)\n",
		project.Name, len(project.Sprites), len(started))
	if err := runGoverned(m, *rounds, *maxSteps, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "run:", err)
		os.Exit(1)
	}
	if *key != "" {
		m.PressKey(*key)
		if err := runGoverned(m, *rounds, *maxSteps, *timeout); err != nil {
			fmt.Fprintln(os.Stderr, "run after key press:", err)
			os.Exit(1)
		}
	}

	fmt.Println("\nstage trace:")
	for _, line := range m.Stage.TraceLines() {
		fmt.Println(" ", line)
	}
	fmt.Println("\nfinal stage:")
	for _, line := range m.Stage.Snapshot() {
		fmt.Println(" ", line)
	}
	if *view {
		fmt.Println("\nstage view:")
		fmt.Print(m.Stage.Render(48, 14))
	}
	fmt.Printf("\ntimer: %d timesteps over %d scheduler rounds\n",
		m.Stage.Timer.Elapsed(), m.Round())
	if *stats {
		fmt.Println("\nengine stats:")
		fmt.Print(obs.ReportText())
	}
}

// runGoverned runs the machine under the same governance the execution
// service applies: a scheduler-round cap, a cumulative step budget, and a
// wall-clock deadline — including the session boundary's panic
// containment, so a faulting primitive prints a run error instead of
// crashing the process with a bare stack trace.
func runGoverned(m *interp.Machine, rounds int, maxSteps int64, timeout time.Duration) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("fault: recovered primitive panic: %v", r)
		}
	}()
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	return m.RunContext(ctx, interp.RunLimits{MaxRounds: rounds, MaxSteps: maxSteps})
}

// loadData streams each -data VAR=FILE[:COL] spec into a columnar global
// list: plain files become one text item per line, FILE:COL streams one
// CSV column (numeric when every cell parses as a number). The lists go in
// before the green flag, so scripts read them like any other global.
func loadData(project *blocks.Project, specs []string) error {
	for _, spec := range specs {
		name, target, _ := strings.Cut(spec, "=")
		if name == "" || target == "" {
			return fmt.Errorf("-data %q: want VAR=FILE or VAR=FILE:COL", spec)
		}
		file, col := target, ""
		if i := strings.LastIndexByte(target, ':'); i > 0 {
			file, col = target[:i], target[i+1:]
		}
		f, err := os.Open(file)
		if err != nil {
			return fmt.Errorf("-data %s: %w", name, err)
		}
		var list *value.List
		if col != "" {
			list, err = ingest.CSVColumn(f, col)
		} else {
			list, err = ingest.Lines(f)
		}
		f.Close()
		if err != nil {
			return fmt.Errorf("-data %s: %s: %w", name, file, err)
		}
		project.Globals[name] = list
		kind := "text"
		if _, ok := list.FloatsView(); ok {
			kind = "numeric"
		}
		fmt.Printf("data %q: %d %s item(s) from %s\n", name, list.Len(), kind, file)
	}
	return nil
}

func loadProject(demo, path string) (*blocks.Project, error) {
	switch demo {
	case "concession-parallel":
		return demos.Concession(true), nil
	case "concession-sequential":
		return demos.Concession(false), nil
	case "dragon":
		return demos.Dragon(5), nil
	case "":
	default:
		return nil, fmt.Errorf("unknown demo %q", demo)
	}
	if path == "" {
		return nil, fmt.Errorf("usage: snapvm [-demo name | project.xml | project.sblk]")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	// Textual projects start with a ( form; XML projects with < .
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "(") || strings.HasPrefix(trimmed, ";") {
		return parse.Project(string(data))
	}
	return xmlio.DecodeProject(bytes.NewReader(data))
}
