package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/demos"
	"repro/internal/interp"
	"repro/internal/parse"
	"repro/internal/vclock"
	"repro/internal/xmlio"
)

func TestLoadProjectDemos(t *testing.T) {
	for _, name := range []string{"concession-parallel", "concession-sequential", "dragon"} {
		p, err := loadProject(name, "")
		if err != nil || p == nil {
			t.Errorf("demo %q: %v", name, err)
		}
	}
	if _, err := loadProject("nonexistent-demo", ""); err == nil {
		t.Error("unknown demo should error")
	}
	if _, err := loadProject("", ""); err == nil {
		t.Error("no demo and no path should error")
	}
	if _, err := loadProject("", "/does/not/exist.xml"); err == nil {
		t.Error("missing file should error")
	}
}

func TestLoadProjectFromXMLAndRun(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "concession.xml")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := xmlio.EncodeProject(f, demos.Concession(true)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	p, err := loadProject("", path)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.NewMachine(p, vclock.NewPaperInterference())
	m.GreenFlag()
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := m.Stage.Timer.Elapsed(); got != 3 {
		t.Errorf("XML-loaded concession stand = %d timesteps, want 3", got)
	}
}

func TestLoadProjectFromTextAndRun(t *testing.T) {
	p, err := loadProject("", "../../projects/concession.sblk")
	if err != nil {
		t.Skipf("shipped textual project unavailable: %v", err)
	}
	m := interp.NewMachine(p, vclock.NewPaperInterference())
	m.GreenFlag()
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := m.Stage.Timer.Elapsed(); got != 3 {
		t.Errorf("textual project = %d timesteps, want 3", got)
	}
}

const foreverSrc = `
	(project "forever"
	  (sprite "S"
	    (local x 0)
	    (when green-flag (do
	      (forever (do (change x 1)))))))`

func foreverMachine(t *testing.T) *interp.Machine {
	t.Helper()
	p, err := parse.Project(foreverSrc)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.NewMachine(p, nil)
	m.GreenFlag()
	return m
}

func TestRunGovernedStepBudget(t *testing.T) {
	m := foreverMachine(t)
	err := runGoverned(m, 0, 20_000, 0)
	if !errors.Is(err, interp.ErrStepLimit) {
		t.Fatalf("-maxsteps on a forever loop: want ErrStepLimit, got %v", err)
	}
	if got := m.Steps(); got > 20_000+int64(m.SliceOps) {
		t.Fatalf("ran %d steps past a 20000 budget", got)
	}
}

func TestRunGovernedTimeout(t *testing.T) {
	m := foreverMachine(t)
	start := time.Now()
	err := runGoverned(m, 0, 0, 50*time.Millisecond)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("-timeout on a forever loop: want deadline error, got %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("50ms timeout took %v to land", d)
	}
}

func TestRunGovernedRoundLimitStillWorks(t *testing.T) {
	m := foreverMachine(t)
	if err := runGoverned(m, 10, 0, 0); !errors.Is(err, interp.ErrRoundLimit) {
		t.Fatalf("-rounds: want ErrRoundLimit, got %v", err)
	}
}

func TestRunGovernedCleanExit(t *testing.T) {
	p, err := parse.Project(`
		(project "quick"
		  (sprite "S"
		    (when green-flag (do (forward 10)))))`)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.NewMachine(p, nil)
	m.GreenFlag()
	if err := runGoverned(m, 0, 1_000_000, time.Minute); err != nil {
		t.Fatalf("governed run of a terminating project: %v", err)
	}
}
