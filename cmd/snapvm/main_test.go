package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/demos"
	"repro/internal/interp"
	"repro/internal/vclock"
	"repro/internal/xmlio"
)

func TestLoadProjectDemos(t *testing.T) {
	for _, name := range []string{"concession-parallel", "concession-sequential", "dragon"} {
		p, err := loadProject(name, "")
		if err != nil || p == nil {
			t.Errorf("demo %q: %v", name, err)
		}
	}
	if _, err := loadProject("nonexistent-demo", ""); err == nil {
		t.Error("unknown demo should error")
	}
	if _, err := loadProject("", ""); err == nil {
		t.Error("no demo and no path should error")
	}
	if _, err := loadProject("", "/does/not/exist.xml"); err == nil {
		t.Error("missing file should error")
	}
}

func TestLoadProjectFromXMLAndRun(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "concession.xml")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := xmlio.EncodeProject(f, demos.Concession(true)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	p, err := loadProject("", path)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.NewMachine(p, vclock.NewPaperInterference())
	m.GreenFlag()
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := m.Stage.Timer.Elapsed(); got != 3 {
		t.Errorf("XML-loaded concession stand = %d timesteps, want 3", got)
	}
}

func TestLoadProjectFromTextAndRun(t *testing.T) {
	p, err := loadProject("", "../../projects/concession.sblk")
	if err != nil {
		t.Skipf("shipped textual project unavailable: %v", err)
	}
	m := interp.NewMachine(p, vclock.NewPaperInterference())
	m.GreenFlag()
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := m.Stage.Timer.Elapsed(); got != 3 {
		t.Errorf("textual project = %d timesteps, want 3", got)
	}
}
