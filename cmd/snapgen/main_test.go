package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/blocks"
	"repro/internal/demos"
	"repro/internal/xmlio"
)

func TestLoadScript(t *testing.T) {
	s, err := loadScript("fig16", "")
	if err != nil || s.Len() == 0 {
		t.Errorf("fig16: %v", err)
	}
	if _, err := loadScript("figNaN", ""); err == nil {
		t.Error("unknown demo should error")
	}
	if _, err := loadScript("", ""); err == nil {
		t.Error("no input should error")
	}
	if _, err := loadScript("", "/missing.xml"); err == nil {
		t.Error("missing file should error")
	}
}

func TestLoadScriptFromProjectXML(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.xml")
	f, _ := os.Create(path)
	if err := xmlio.EncodeProject(f, demos.Dragon(3)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	s, err := loadScript("", path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() == 0 {
		t.Error("green-flag script should be non-empty")
	}
	// A project with no green-flag script errors.
	path2 := filepath.Join(dir, "empty.xml")
	f2, _ := os.Create(path2)
	if err := xmlio.EncodeProject(f2, blocks.NewProject("empty")); err != nil {
		t.Fatal(err)
	}
	f2.Close()
	if _, err := loadScript("", path2); err == nil {
		t.Error("project without green-flag script should error")
	}
}

func TestEmitOpenMPToDir(t *testing.T) {
	dir := t.TempDir()
	if err := emitOpenMP(filepath.Join(dir, "gen"), 4); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"kvp.h", "mapreduce.c", "main.c", "runnable.c", "Makefile", "job.sbatch"} {
		data, err := os.ReadFile(filepath.Join(dir, "gen", name))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", name)
		}
	}
	mk, _ := os.ReadFile(filepath.Join(dir, "gen", "Makefile"))
	if !strings.Contains(string(mk), "-fopenmp") {
		t.Error("Makefile must carry -fopenmp")
	}
}

func TestLoadScriptFromText(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.sblk")
	os.WriteFile(path, []byte(`(set a (list 3 7 8)) (set b (list))
(for i 1 (length $a) (do (add (* (item $i $a) 10) $b)))`), 0o644)
	s, err := loadScript("", path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Errorf("parsed %d blocks", s.Len())
	}
	// And a textual whole-project file.
	path2 := filepath.Join(dir, "p.sblk")
	os.WriteFile(path2, []byte(`(project "p" (sprite "S" (when green-flag (do (forward 1)))))`), 0o644)
	s2, err := loadScript("", path2)
	if err != nil || s2.Len() != 1 {
		t.Errorf("textual project script: %v, %v", s2, err)
	}
}
