// Command snapgen is the §6 code-mapping pipeline as a tool: it translates
// block programs to text-based source code — C (Listing 5 style),
// JavaScript, Python, or Go — and emits the full OpenMP MapReduce bundle
// (kvp.h, mapreduce.c, main.c, a runnable single file, Makefile, and batch
// script).
//
//	snapgen -lang c -demo fig16           # Listing 5
//	snapgen -lang python project.xml      # first green-flag script
//	snapgen -openmp -out ./generated      # Figures 18-20 / Listings 6-7
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/blocks"
	"repro/internal/codegen"
	"repro/internal/parse"
	"repro/internal/xmlio"
)

func main() {
	lang := flag.String("lang", "c", "target language: c, js, python, go")
	demo := flag.String("demo", "", "translate a built-in script: fig16")
	openmp := flag.Bool("openmp", false, "emit the OpenMP MapReduce bundle for the climate example")
	out := flag.String("out", "", "directory for -openmp output (default: stdout)")
	threads := flag.Int("threads", 4, "OpenMP thread count for generated code")
	flag.Parse()

	if *openmp {
		if err := emitOpenMP(*out, *threads); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	script, err := loadScript(*demo, flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *lang == "c" {
		src, err := codegen.NewCEmitter().Program(script)
		if err != nil {
			fmt.Fprintln(os.Stderr, "translate:", err)
			os.Exit(1)
		}
		fmt.Print(src)
		return
	}
	tr, err := codegen.ForLang(*lang)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	src, err := tr.Script(script, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "translate:", err)
		os.Exit(1)
	}
	fmt.Println(src)
}

func loadScript(demo, path string) (*blocks.Script, error) {
	if demo == "fig16" {
		return codegen.Figure16Script(), nil
	}
	if demo != "" {
		return nil, fmt.Errorf("unknown demo %q", demo)
	}
	if path == "" {
		return nil, fmt.Errorf("usage: snapgen [-lang L] (-demo fig16 | project.xml | script.sblk)")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "(") || strings.HasPrefix(trimmed, ";") {
		// Textual input: either a whole (project ...) or a bare script.
		if strings.HasPrefix(trimmed, "(project") {
			p, err := parse.Project(string(data))
			if err != nil {
				return nil, err
			}
			return greenFlagScript(p)
		}
		return parse.Script(string(data))
	}
	p, err := xmlio.DecodeProject(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	return greenFlagScript(p)
}

func greenFlagScript(p *blocks.Project) (*blocks.Script, error) {
	for _, sp := range p.Sprites {
		for _, hs := range sp.Scripts {
			if hs.Hat == blocks.HatGreenFlag {
				return hs.Script, nil
			}
		}
	}
	return nil, fmt.Errorf("project has no green-flag script to translate")
}

func emitOpenMP(dir string, threads int) error {
	block := blocks.MapReduce(
		blocks.RingOf(blocks.Quotient(
			blocks.Product(blocks.Num(5), blocks.Difference(blocks.Empty(), blocks.Num(32))),
			blocks.Num(9))),
		blocks.RingOf(blocks.Quotient(
			blocks.Combine(blocks.Empty(), blocks.RingOf(blocks.Sum(blocks.Empty(), blocks.Empty()))),
			blocks.LengthOf(blocks.Empty()))),
		blocks.ListOf(blocks.Num(32), blocks.Num(212), blocks.Num(122)))
	files, err := codegen.MapReduceFiles(block, []float64{32, 212, 122}, threads)
	if err != nil {
		return err
	}
	if dir == "" {
		for _, name := range []string{"kvp.h", "mapreduce.c", "main.c", "runnable.c", "Makefile", "job.sbatch"} {
			fmt.Printf("--- %s ---\n%s\n", name, files[name])
		}
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d files to %s (make && ./mapreduce, or sbatch job.sbatch)\n",
		len(files), dir)
	return nil
}
