package main

import (
	"io"
	"strings"
	"testing"
)

func e(ns float64) entry {
	return entry{N: 100, Metrics: map[string]float64{"ns/op": ns}}
}

func TestCompareFlagsRegressionsPastThreshold(t *testing.T) {
	base := map[string]entry{
		"BenchmarkA-8": e(100),
		"BenchmarkB-8": e(100),
		"BenchmarkC-8": e(100),
		"BenchmarkOld": e(50),
	}
	cur := map[string]entry{
		"BenchmarkA-8": e(115), // +15% — inside the 20% tolerance
		"BenchmarkB-8": e(130), // +30% — regression
		"BenchmarkC-8": e(40),  // -60% — improvement
		"BenchmarkNew": e(10),
	}
	var sb strings.Builder
	got := compare(&sb, base, cur, 20)
	if got != 1 {
		t.Fatalf("regressions = %d, want 1\n%s", got, sb.String())
	}
	out := sb.String()
	for _, want := range []string{
		"BenchmarkB-8", "REGRESSION",
		"BenchmarkOld", "only in baseline",
		"BenchmarkNew", "(new)",
		"-60.0%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "REGRESSION") != 1 {
		t.Errorf("exactly one REGRESSION marker expected:\n%s", out)
	}
}

func em(ns, allocs float64) entry {
	return entry{N: 100, Metrics: map[string]float64{"ns/op": ns, "allocs/op": allocs}}
}

func TestCompareFlagsAllocRegressions(t *testing.T) {
	base := map[string]entry{
		"BenchmarkSteady-8":   em(100, 10), // allocs +50% with flat ns/op
		"BenchmarkBetter-8":   em(100, 10), // both improve
		"BenchmarkAtLimit-8":  em(100, 10), // allocs exactly +20% — tolerated
		"BenchmarkFromZero-8": em(100, 0),  // any alloc on a zero baseline flags
		"BenchmarkZeroZero-8": em(100, 0),  // zero to zero is clean
		"BenchmarkNoAllocs-8": e(100),      // baseline lacks the column
	}
	cur := map[string]entry{
		"BenchmarkSteady-8":   em(101, 15),
		"BenchmarkBetter-8":   em(50, 2),
		"BenchmarkAtLimit-8":  em(100, 12),
		"BenchmarkFromZero-8": em(100, 1),
		"BenchmarkZeroZero-8": em(100, 0),
		"BenchmarkNoAllocs-8": em(100, 99),
	}
	var sb strings.Builder
	got := compare(&sb, base, cur, 20)
	out := sb.String()
	if got != 2 {
		t.Fatalf("regressions = %d, want 2 (Steady, FromZero)\n%s", got, out)
	}
	if strings.Count(out, "ALLOC-REGRESSION") != 2 {
		t.Errorf("exactly two ALLOC-REGRESSION markers expected:\n%s", out)
	}
	if !strings.Contains(out, "allocs/op") {
		t.Errorf("delta table should carry the allocs/op column:\n%s", out)
	}
}

func TestCompareAllocRegressionAloneFailsTheRun(t *testing.T) {
	// The guard exists for exactly this shape: time holds, garbage grows.
	base := map[string]entry{"BenchmarkA-8": em(100, 10)}
	cur := map[string]entry{"BenchmarkA-8": em(100, 13)}
	var sb strings.Builder
	if got := compare(&sb, base, cur, 20); got != 1 {
		t.Fatalf("regressions = %d, want 1\n%s", got, sb.String())
	}
}

func TestCompareThresholdIsStrict(t *testing.T) {
	base := map[string]entry{"BenchmarkA": e(100)}
	cur := map[string]entry{"BenchmarkA": e(120)} // exactly +20%
	var sb strings.Builder
	if got := compare(&sb, base, cur, 20); got != 0 {
		t.Fatalf("exactly-at-threshold should not flag: %d\n%s", got, sb.String())
	}
}

func TestParseBenchKeepsFastestOfRepeatedRuns(t *testing.T) {
	in := strings.NewReader(strings.Join([]string{
		"BenchmarkA-8   100   300.0 ns/op",
		"BenchmarkA-8   100   150.0 ns/op",
		"BenchmarkA-8   100   200.0 ns/op",
		"BenchmarkB-8   100   50.0 ns/op",
	}, "\n"))
	got, err := parseBench(in, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if ns := got["BenchmarkA-8"].Metrics["ns/op"]; ns != 150 {
		t.Errorf("kept %v ns/op for A, want the 150.0 minimum", ns)
	}
	if ns := got["BenchmarkB-8"].Metrics["ns/op"]; ns != 50 {
		t.Errorf("kept %v ns/op for B, want 50", ns)
	}
}

func TestParseLineRoundTrip(t *testing.T) {
	name, ent, ok := parseLine("BenchmarkE2ParallelMap/workers=4-8   12345   987.6 ns/op   120 B/op   3 allocs/op")
	if !ok {
		t.Fatal("line should parse")
	}
	if name != "BenchmarkE2ParallelMap/workers=4-8" || ent.N != 12345 {
		t.Fatalf("got %q %d", name, ent.N)
	}
	if ent.Metrics["ns/op"] != 987.6 || ent.Metrics["allocs/op"] != 3 {
		t.Fatalf("metrics = %v", ent.Metrics)
	}
	if _, _, ok := parseLine("ok  	repro/internal/bench	1.2s"); ok {
		t.Fatal("trailer should not parse")
	}
}
