// Command benchjson converts `go test -bench` output on stdin into a JSON
// object on stdout, keyed by benchmark name (with the -cpu suffix kept, so
// sub-benchmarks like BenchmarkE2ParallelMap/workers=4-8 stay distinct).
// Each entry records the iteration count and every metric column the
// benchmark reported: ns/op always, B/op and allocs/op under -benchmem, and
// any testing.B.ReportMetric extras (timesteps, vspeedup, ...).
//
// Usage:
//
//	go test -bench 'E[0-9]' -benchmem ./... | go run ./cmd/benchjson > BENCH_PR1.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// entry is one benchmark result: N iterations plus metric columns keyed by
// their unit string ("ns/op", "allocs/op", "timesteps", ...).
type entry struct {
	N       int64              `json:"n"`
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	results := map[string]entry{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		// Echo pass-through so the tool can sit inside a pipe without
		// hiding failures or the ok/FAIL trailer from the operator.
		fmt.Fprintln(os.Stderr, line)
		name, e, ok := parseLine(line)
		if !ok {
			continue
		}
		results[name] = e
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	out, err := marshalSorted(results)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	os.Stdout.Write(out)
	os.Stdout.WriteString("\n")
}

// parseLine recognizes the standard benchmark result format:
//
//	BenchmarkName-8   1234   987.6 ns/op   120 B/op   3 allocs/op
//
// Metric columns always come in (value, unit) pairs after the iteration
// count.
func parseLine(line string) (string, entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", entry{}, false
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", entry{}, false
	}
	e := entry{N: n, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", entry{}, false
		}
		e.Metrics[fields[i+1]] = v
	}
	if len(e.Metrics) == 0 {
		return "", entry{}, false
	}
	return fields[0], e, true
}

// marshalSorted renders the results with keys in sorted order so the
// committed JSON diffs cleanly between benchmark runs.
func marshalSorted(results map[string]entry) ([]byte, error) {
	keys := make([]string, 0, len(results))
	for k := range results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("{\n")
	for i, k := range keys {
		ev, err := json.Marshal(results[k])
		if err != nil {
			return nil, err
		}
		kv, _ := json.Marshal(k)
		fmt.Fprintf(&b, "  %s: %s", kv, ev)
		if i < len(keys)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}")
	return []byte(b.String()), nil
}
