// Command benchjson converts `go test -bench` output on stdin into a JSON
// object on stdout, keyed by benchmark name (with the -cpu suffix kept, so
// sub-benchmarks like BenchmarkE2ParallelMap/workers=4-8 stay distinct).
// Each entry records the iteration count and every metric column the
// benchmark reported: ns/op always, B/op and allocs/op under -benchmem, and
// any testing.B.ReportMetric extras (timesteps, vspeedup, ...).
//
// Usage:
//
//	go test -bench 'E[0-9]' -benchmem ./... | go run ./cmd/benchjson > BENCH_PR3.json
//
// Compare mode diffs against a committed baseline, prints per-benchmark
// deltas, and exits nonzero when any ns/op — or, where both sides report
// it, allocs/op — regresses past the threshold; the guard `make bench-diff`
// runs:
//
//	go run ./cmd/benchjson -baseline BENCH_PR1.json -current BENCH_PR3.json
//	go test -bench . ./... | go run ./cmd/benchjson -baseline BENCH_PR1.json > NEW.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// entry is one benchmark result: N iterations plus metric columns keyed by
// their unit string ("ns/op", "allocs/op", "timesteps", ...).
type entry struct {
	N       int64              `json:"n"`
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	baseline := flag.String("baseline", "", "baseline JSON file to diff against; any ns/op or allocs/op regression past -threshold exits nonzero")
	current := flag.String("current", "", "current JSON file to compare (instead of parsing bench output from stdin)")
	threshold := flag.Float64("threshold", 20, "regression tolerance for ns/op and allocs/op, in percent")
	flag.Parse()

	var results map[string]entry
	var err error
	if *current != "" {
		results, err = loadJSON(*current)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	} else {
		results, err = parseBench(os.Stdin, os.Stderr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		out, err := marshalSorted(results)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		os.Stdout.Write(out)
		os.Stdout.WriteString("\n")
	}

	if *baseline == "" {
		return
	}
	base, err := loadJSON(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	// The delta table goes to stdout in pure compare mode (-current) and
	// to stderr when stdout already carries the JSON stream.
	table := io.Writer(os.Stdout)
	if *current == "" {
		table = os.Stderr
	}
	regressions := compare(table, base, results, *threshold)
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark metric(s) regressed more than %g%% (ns/op or allocs/op)\n", regressions, *threshold)
		os.Exit(1)
	}
}

func parseBench(r io.Reader, echo io.Writer) (map[string]entry, error) {
	results := map[string]entry{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		// Echo pass-through so the tool can sit inside a pipe without
		// hiding failures or the ok/FAIL trailer from the operator.
		fmt.Fprintln(echo, line)
		name, e, ok := parseLine(line)
		if !ok {
			continue
		}
		// Under `go test -count N` the same benchmark reports N times;
		// keep the fastest run. The minimum is the standard noise floor:
		// a benchmark can only measure slower than the code's true cost
		// (scheduler interference, a busy neighbor on a shared box),
		// never faster, so best-of-N converges on the real number.
		if prev, ok := results[name]; ok && prev.Metrics["ns/op"] <= e.Metrics["ns/op"] {
			continue
		}
		results[name] = e
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read: %w", err)
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	return results, nil
}

func loadJSON(path string) (map[string]entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out map[string]entry
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

// compare prints one line per benchmark shared by base and cur — old and
// new ns/op and the signed delta — plus entries only one side has, and
// returns how many shared benchmarks regressed past threshold percent.
func compare(w io.Writer, base, cur map[string]entry, threshold float64) int {
	names := make([]string, 0, len(base)+len(cur))
	seen := map[string]bool{}
	for k := range base {
		names = append(names, k)
		seen[k] = true
	}
	for k := range cur {
		if !seen[k] {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	regressions := 0
	for _, name := range names {
		b, inBase := base[name]
		c, inCur := cur[name]
		switch {
		case !inCur:
			fmt.Fprintf(w, "%-60s only in baseline\n", name)
		case !inBase:
			fmt.Fprintf(w, "%-60s %12.1f ns/op   (new)\n", name, c.Metrics["ns/op"])
		default:
			old, now := b.Metrics["ns/op"], c.Metrics["ns/op"]
			if old == 0 {
				fmt.Fprintf(w, "%-60s baseline has no ns/op\n", name)
				continue
			}
			delta := (now - old) / old * 100
			mark := ""
			if delta > threshold {
				mark = "  REGRESSION"
				regressions++
			}
			fmt.Fprintf(w, "%-60s %12.1f -> %12.1f ns/op  %+7.1f%%%s", name, old, now, delta, mark)
			// allocs/op regresses independently of time: a change can hold
			// ns/op steady on a quiet box while piling garbage onto every
			// op, so when both sides report the column it is held to the
			// same threshold and rides the same line.
			if aOld, ok := b.Metrics["allocs/op"]; ok {
				if aNow, ok := c.Metrics["allocs/op"]; ok {
					aDelta, regressed := allocsDelta(aOld, aNow, threshold)
					aMark := ""
					if regressed {
						aMark = "  ALLOC-REGRESSION"
						regressions++
					}
					fmt.Fprintf(w, "   %9.1f -> %9.1f allocs/op  %+7.1f%%%s", aOld, aNow, aDelta, aMark)
				}
			}
			fmt.Fprintln(w)
		}
	}
	return regressions
}

// allocsDelta computes the allocs/op percentage change and whether it
// breaches the threshold. A zero-alloc baseline cannot express a percentage:
// any new allocation there is flagged outright (reported as +100%), and
// zero-to-zero is a clean pass.
func allocsDelta(old, now, threshold float64) (delta float64, regressed bool) {
	if old == 0 {
		if now == 0 {
			return 0, false
		}
		return 100, true
	}
	delta = (now - old) / old * 100
	return delta, delta > threshold
}

// parseLine recognizes the standard benchmark result format:
//
//	BenchmarkName-8   1234   987.6 ns/op   120 B/op   3 allocs/op
//
// Metric columns always come in (value, unit) pairs after the iteration
// count.
func parseLine(line string) (string, entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", entry{}, false
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", entry{}, false
	}
	e := entry{N: n, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", entry{}, false
		}
		e.Metrics[fields[i+1]] = v
	}
	if len(e.Metrics) == 0 {
		return "", entry{}, false
	}
	return fields[0], e, true
}

// marshalSorted renders the results with keys in sorted order so the
// committed JSON diffs cleanly between benchmark runs.
func marshalSorted(results map[string]entry) ([]byte, error) {
	keys := make([]string, 0, len(results))
	for k := range results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("{\n")
	for i, k := range keys {
		ev, err := json.Marshal(results[k])
		if err != nil {
			return nil, err
		}
		kv, _ := json.Marshal(k)
		fmt.Fprintf(&b, "  %s: %s", kv, ev)
		if i < len(keys)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}")
	return []byte(b.String()), nil
}
