// Command snapbench regenerates every figure, listing, and result of the
// paper's evaluation as text. Run with no flags to reproduce everything,
// or -exp e3 for a single experiment (ids in DESIGN.md's index).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (e1..e13) or 'all'")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-5s %s\n", e.ID, e.Title)
		}
		return
	}

	run := func(e bench.Experiment) int {
		fmt.Printf("=== %s: %s ===\n", strings.ToUpper(e.ID), e.Title)
		out, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			return 1
		}
		fmt.Println(out)
		return 0
	}

	if *exp == "all" {
		status := 0
		for _, e := range bench.All() {
			status |= run(e)
		}
		os.Exit(status)
	}
	e, ok := bench.Lookup(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", *exp)
		os.Exit(2)
	}
	os.Exit(run(e))
}
