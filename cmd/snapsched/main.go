// Command snapsched demonstrates the §6.3 supercomputer workflow end to
// end on the simulated cluster: generate a batch script from the climate
// mapReduce block, submit it behind competing jobs, watch it queue, run,
// and print the collected result.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/codegen"
	"repro/internal/sched"
)

func main() {
	nodes := flag.Int("nodes", 4, "cluster node count")
	policy := flag.String("policy", "backfill", "scheduling policy: fifo or backfill")
	jobs := flag.Int("competing", 3, "competing jobs submitted ahead of ours")
	flag.Parse()

	var pol sched.Policy
	switch *policy {
	case "fifo":
		pol = sched.FIFO
	case "backfill":
		pol = sched.Backfill
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policy)
		os.Exit(2)
	}

	c := sched.NewCluster(*nodes, pol)
	fmt.Printf("cluster: %d nodes, %s scheduling\n\n", *nodes, pol)

	for i := 0; i < *jobs; i++ {
		spec := sched.JobSpec{
			Name:     fmt.Sprintf("competing-%d", i+1),
			Nodes:    1 + i%*nodes,
			Walltime: 6,
			Duration: 3 + i,
		}
		if spec.Nodes > *nodes {
			spec.Nodes = *nodes
		}
		j, err := c.Submit(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("submitted %-14s %d node(s)  state=%s\n", j.Spec.Name, j.Spec.Nodes, j.State)
	}

	script := codegen.BatchScript("snap-mapreduce", 2, 8, 10)
	fmt.Println("\ngenerated batch script:")
	fmt.Println(script)
	ours, err := c.SubmitScript(script, 4, func() string {
		return "average temperature: 50 C (from 32F, 212F, 122F)"
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("our job: id=%d state=%s\n\n", ours.ID, ours.State)

	lastState := ours.State
	for tick := 0; tick < 200; tick++ {
		if len(c.Queue()) == 0 && ours.State != sched.Pending && ours.State != sched.Running {
			break
		}
		c.Tick()
		if ours.State != lastState {
			fmt.Printf("tick %3d: job %d -> %s\n", c.Now(), ours.ID, ours.State)
			lastState = ours.State
		}
	}
	out, err := c.Collect(ours)
	if err != nil {
		fmt.Fprintln(os.Stderr, "collect:", err)
		os.Exit(1)
	}
	fmt.Printf("\ncollected output: %s\n", out)
	fmt.Printf("queued %d ticks, ran %d ticks\n",
		ours.StartTick-ours.SubmitTick, ours.EndTick-ours.StartTick)
}
