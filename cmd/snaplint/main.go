// Command snaplint statically checks a project file (XML or textual) and
// prints its findings: undefined variables, unknown broadcast messages,
// arity mistakes, worker-capture errors. Exit status 1 when any finding is
// an error.
//
//	snaplint projects/concession.sblk
package main

import (
	"bytes"
	"fmt"
	"os"
	"strings"

	"repro/internal/blocks"
	_ "repro/internal/core" // registered opcodes
	"repro/internal/lint"
	"repro/internal/parse"
	"repro/internal/xmlio"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: snaplint <project.xml|project.sblk>")
		os.Exit(2)
	}
	p, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	findings := lint.Project(p)
	status := 0
	for _, f := range findings {
		fmt.Println(f)
		if f.Severity == lint.Error {
			status = 1
		}
	}
	if len(findings) == 0 {
		fmt.Printf("%s: clean (%d sprites)\n", p.Name, len(p.Sprites))
	}
	os.Exit(status)
}

func load(path string) (*blocks.Project, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "(") || strings.HasPrefix(trimmed, ";") {
		return parse.Project(string(data))
	}
	return xmlio.DecodeProject(bytes.NewReader(data))
}
