// Command snapshardd is the consistent-hash shard router: the front door
// of a snapserved cluster. It places every submitted program on the shard
// whose program caches already hold it (routing on the same content
// address internal/progcache keys on), routes session lookups to the
// shard that ran them, health-checks the backends (ejecting dead or
// draining ones and re-admitting them when they recover), retries
// connect errors onto the next shard with exponential backoff, and sheds
// load cluster-wide with a bounded in-flight budget.
//
//	snapshardd -backends http://10.0.0.1:8080,http://10.0.0.2:8080
//	snapshardd -smoke        # self-test: 2 in-process backends, one kill
//
// Endpoints mirror snapserved: POST /v1/run, POST /v1/codegen,
// GET /v1/sessions/{id}, GET /healthz (cluster health), GET /metrics
// (engine_shard_* series). See docs/SHARDING.md.
package main

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/server"
	"repro/internal/shard"
)

func main() {
	var (
		addr           = flag.String("addr", ":8070", "listen address")
		backends       = flag.String("backends", "", "comma-separated snapserved base URLs, in stable slot order")
		vnodes         = flag.Int("vnodes", 64, "virtual nodes per backend on the hash ring")
		maxInflight    = flag.Int("maxinflight", 256, "cluster-wide in-flight request budget (429 beyond)")
		maxBody        = flag.Int64("maxbody", 1<<20, "request body cap in bytes")
		healthInterval = flag.Duration("health-interval", 500*time.Millisecond, "active /healthz probe period per backend")
		failThreshold  = flag.Int("fail-threshold", 2, "consecutive failures that eject a backend from the ring")
		maxRetries     = flag.Int("max-retries", 3, "additional forward attempts after a connect error")
		smoke          = flag.Bool("smoke", false, "self-test: route over 2 in-process backends, kill one, exit")
		enableObs      = flag.Bool("obs", true, "collect engine_shard_* metrics (on /metrics)")
		enablePprof    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	obs.SetEnabled(*enableObs)

	if *smoke {
		if err := runSmoke(*vnodes, *maxInflight); err != nil {
			fmt.Fprintln(os.Stderr, "smoke:", err)
			os.Exit(1)
		}
		fmt.Println("smoke ok")
		return
	}

	if *backends == "" {
		log.Fatal("snapshardd: -backends is required (comma-separated snapserved URLs)")
	}
	rt, err := shard.New(shard.Config{
		Backends:       strings.Split(*backends, ","),
		VNodes:         *vnodes,
		MaxInflight:    *maxInflight,
		MaxBodyBytes:   *maxBody,
		HealthInterval: *healthInterval,
		FailThreshold:  *failThreshold,
		MaxRetries:     *maxRetries,
		EnablePprof:    *enablePprof,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: rt.Handler()}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Println("shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx) //nolint:errcheck
	}()
	log.Printf("snapshardd listening on %s (%d backends, %d vnodes each, %d in-flight budget)",
		*addr, len(rt.Stats().Backends), *vnodes, *maxInflight)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}

// smokeBackend is one in-process snapserved the smoke routes over.
type smokeBackend struct {
	srv  *server.Server
	http *http.Server
	url  string
}

func startSmokeBackend() (*smokeBackend, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := server.New(server.Config{Runtime: runtime.Config{MaxConcurrent: 4, MaxQueue: 8}})
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln) //nolint:errcheck
	return &smokeBackend{srv: srv, http: hs, url: "http://" + ln.Addr().String()}, nil
}

// runSmoke is the `make shard-smoke` target: boot two real in-process
// snapserved backends and the router on ephemeral ports, push repeated
// traffic through, kill one backend mid-run (the scripted kill), verify
// the survivors absorb everything, then validate the /metrics scrape the
// same way serve-smoke does.
func runSmoke(vnodes, maxInflight int) error {
	b0, err := startSmokeBackend()
	if err != nil {
		return err
	}
	defer b0.http.Close()
	b1, err := startSmokeBackend()
	if err != nil {
		return err
	}
	defer b1.http.Close()

	rt, err := shard.New(shard.Config{
		Backends:       []string{b0.url, b1.url},
		VNodes:         vnodes,
		MaxInflight:    maxInflight,
		HealthInterval: 50 * time.Millisecond,
		FailThreshold:  2,
	})
	if err != nil {
		return err
	}
	defer rt.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	front := &http.Server{Handler: rt.Handler()}
	go front.Serve(ln) //nolint:errcheck
	defer front.Close()
	base := "http://" + ln.Addr().String()

	post := func(project string) error {
		body := fmt.Sprintf(`{"project": %q}`, project)
		resp, err := http.Post(base+"/v1/run", "application/json", strings.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(resp.Body)
			return fmt.Errorf("POST /v1/run: status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
		}
		return nil
	}
	projects := make([]string, 4)
	for i := range projects {
		projects[i] = fmt.Sprintf(
			`(project "smoke%d" (sprite "S" (when green-flag (do (report (parallelmap (lambda (x) (* $x %d)) (numbers 1 32) 4))))))`,
			i, i+2)
	}
	for round := 0; round < 3; round++ {
		for _, p := range projects {
			if err := post(p); err != nil {
				return err
			}
		}
	}

	// The scripted kill: drain backend 0 the way SIGTERM would — stop
	// accepting, finish in-flight — then keep submitting. Every request
	// must land on the survivor (connect errors retry onto it).
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	b0.http.Shutdown(ctx) //nolint:errcheck
	for round := 0; round < 3; round++ {
		for _, p := range projects {
			if err := post(p); err != nil {
				return fmt.Errorf("after kill: %w", err)
			}
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		st := rt.Stats()
		if !st.Backends[0].Healthy && st.Backends[0].Ejections >= 1 {
			break
		}
		if time.Now().After(deadline) {
			return errors.New("backend 0 was never ejected after the kill")
		}
		time.Sleep(20 * time.Millisecond)
	}

	health, err := http.Get(base + "/healthz")
	if err != nil {
		return err
	}
	health.Body.Close()
	if health.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /healthz: status %d (want 200 degraded)", health.StatusCode)
	}

	scrape, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer scrape.Body.Close()
	if scrape.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metrics: status %d", scrape.StatusCode)
	}
	return validateScrape(scrape.Body)
}

// validateScrape mirrors serve-smoke's deployment-shaped scrape check:
// every series must belong to a known family prefix, no (name, labels)
// pair may repeat, and the shard family this daemon exists to emit must
// actually be present.
func validateScrape(r io.Reader) error {
	seen := make(map[string]bool)
	sawShard := false
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		series := line
		if i := strings.LastIndexByte(line, ' '); i >= 0 {
			series = line[:i]
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name = series[:i]
		}
		if !strings.HasPrefix(name, "engine_") {
			return fmt.Errorf("/metrics: unknown series %q (want engine_*)", name)
		}
		if strings.HasPrefix(name, "engine_shard_") {
			sawShard = true
		}
		if seen[series] {
			return fmt.Errorf("/metrics: duplicate series %q", series)
		}
		seen[series] = true
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !sawShard {
		return errors.New("/metrics: no engine_shard_* series in the scrape")
	}
	return nil
}
