// Command snapstress soaks the engine with the evolutionary cross-tier
// stress search: evolved block programs run through the tree-walker, the
// bytecode vm, the sequential compiled kernels, and a live in-process
// snapserved session (twice, for cache-replay identity), with any
// divergence shrunk to a minimal reproducer and persisted to the fuzz
// corpus.
//
// With a fixed -seed the population trajectory is deterministic, which
// is how CI runs it:
//
//	snapstress -seed 1 -duration 60s -min-programs 1000 -corpus internal/evo/corpus
//
// Exit status is 0 only when every program agreed on every tier.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/evo"
)

func main() {
	var cfg evo.Config
	flag.Int64Var(&cfg.Seed, "seed", 1, "deterministic population seed")
	flag.IntVar(&cfg.Pop, "pop", 24, "population size")
	flag.IntVar(&cfg.Generations, "gens", 0, "generation cap (0 = run by -duration)")
	flag.DurationVar(&cfg.Duration, "duration", 30*time.Second, "soak budget")
	flag.IntVar(&cfg.MinPrograms, "min-programs", 0,
		"keep soaking past -duration until this many programs ran all four tiers")
	flag.StringVar(&cfg.CorpusDir, "corpus", "",
		"persist shrunk divergences here as fuzz seeds (empty = don't)")
	flag.IntVar(&cfg.Sessions, "sessions", 2,
		"concurrent serving-tier stress workers replaying vetted survivors")
	quiet := flag.Bool("q", false, "suppress progress lines")
	flag.Parse()

	if !*quiet {
		cfg.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	start := time.Now()
	stats, divs := evo.Run(cfg)
	fmt.Printf("snapstress: %d programs, %d generations, %d session replays (%d rejected), %d divergences in %s\n",
		stats.Programs, stats.Generations, stats.SessionRuns, stats.SessionRejects,
		stats.Divergences, time.Since(start).Round(time.Millisecond))

	for _, d := range divs {
		name := d.Name
		if name == "" {
			name = fmt.Sprintf("genome %x (shrunk %x, %d blocks)", d.Genome, d.Shrunk, d.Blocks)
		}
		if d.Addr != "" {
			name += " @" + d.Addr
		}
		fmt.Printf("DIVERGENCE %s:\n%s\n", name, d.Detail)
	}
	if len(divs) > 0 {
		os.Exit(1)
	}
}
