// Command snapfmt converts project files between the XML and textual
// representations (and normalizes textual formatting):
//
//	snapfmt project.xml            # print the textual form
//	snapfmt -xml project.sblk      # print the XML form
package main

import (
	"bytes"
	"fmt"
	"os"
	"strings"

	"repro/internal/blocks"
	_ "repro/internal/core" // registered opcodes
	"repro/internal/parse"
	"repro/internal/xmlio"
)

func main() {
	args := os.Args[1:]
	toXML := false
	if len(args) > 0 && args[0] == "-xml" {
		toXML = true
		args = args[1:]
	}
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: snapfmt [-xml] <project.xml|project.sblk>")
		os.Exit(2)
	}
	p, err := load(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if toXML {
		if err := xmlio.EncodeProject(os.Stdout, p); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	text, err := parse.PrintProject(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(text)
}

func load(path string) (*blocks.Project, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "(") || strings.HasPrefix(trimmed, ";") {
		return parse.Project(string(data))
	}
	return xmlio.DecodeProject(bytes.NewReader(data))
}
