package vm

import (
	"errors"

	"repro/internal/blocks"
	"repro/internal/value"
)

// errRefuse aborts lowering of the enclosing region. It never escapes the
// package: at statement level the lowerer rolls back and splices the whole
// statement through the tree-walker; inside an inlined higher-order body
// it propagates outward until the outermost affected hof becomes one
// consistent tree-spliced region (a partially inlined hof would give
// spliced subtrees the wrong implicit-argument environment).
var errRefuse = errors.New("vm: construct refused by the lowering pass")

// hofScope tracks one statically inlined higher-order call (map/keep/
// combine) while its ring body lowers. Parameterless rings bind empty
// slots by a static cursor mirroring Frame.TakeImplicit; parameterized
// rings get a real frame (opHofParams) and bind nothing implicitly.
type hofScope struct {
	ctrlIdx int32 // absolute control-stack index of the hof's entry
	params  bool  // ring declares formal parameters
	nargs   int   // arguments passed per call: map/keep 1, combine 2
	cursor  int32 // next implicit slot (parameterless scopes only)
}

type lowerer struct {
	p     *Program
	ctrlH int32 // static control-stack height at the current point
	hofs  []hofScope
}

// lowerMark is a rollback point: refusals truncate everything emitted
// since the mark, including implicit-cursor advances in enclosing scopes.
type lowerMark struct {
	ops, nodes, hofs     int
	ctrlH                int32
	native, tree         int
	consts, names, rings int
	scripts, metas, mrs  int
	cursors              []int32
}

func (l *lowerer) mark() lowerMark {
	m := lowerMark{
		ops: len(l.p.Ops), nodes: len(l.p.Nodes), hofs: len(l.hofs),
		ctrlH: l.ctrlH, native: l.p.NativeStmts, tree: l.p.TreeStmts,
		consts: len(l.p.Consts), names: len(l.p.Names),
		rings: len(l.p.RingTemplates), scripts: len(l.p.Scripts),
		metas: len(l.p.Metas), mrs: len(l.p.MRCalls),
	}
	for _, s := range l.hofs {
		m.cursors = append(m.cursors, s.cursor)
	}
	return m
}

func (l *lowerer) restore(m lowerMark) {
	l.p.Ops = l.p.Ops[:m.ops]
	l.p.Nodes = l.p.Nodes[:m.nodes]
	l.p.Consts = l.p.Consts[:m.consts]
	l.p.Names = l.p.Names[:m.names]
	l.p.RingTemplates = l.p.RingTemplates[:m.rings]
	l.p.Scripts = l.p.Scripts[:m.scripts]
	l.p.Metas = l.p.Metas[:m.metas]
	l.p.MRCalls = l.p.MRCalls[:m.mrs]
	l.p.NativeStmts = m.native
	l.p.TreeStmts = m.tree
	l.hofs = l.hofs[:m.hofs]
	l.ctrlH = m.ctrlH
	for i := range l.hofs {
		l.hofs[i].cursor = m.cursors[i]
	}
}

func (l *lowerer) emit(op Op) int {
	l.p.Ops = append(l.p.Ops, op)
	return len(l.p.Ops) - 1
}

func (l *lowerer) here() int32 { return int32(len(l.p.Ops)) }

func (l *lowerer) patch(at int, target int32) { l.p.Ops[at].A = target }

func (l *lowerer) constIdx(v value.Value) int32 {
	l.p.Consts = append(l.p.Consts, v)
	return int32(len(l.p.Consts) - 1)
}

func (l *lowerer) nameIdx(s string) int32 {
	for i, n := range l.p.Names {
		if n == s {
			return int32(i)
		}
	}
	l.p.Names = append(l.p.Names, s)
	return int32(len(l.p.Names) - 1)
}

func (l *lowerer) inHof() bool { return len(l.hofs) > 0 }

func (l *lowerer) emitCallTree(n blocks.Node, discard bool) {
	l.p.Nodes = append(l.p.Nodes, n)
	b := int32(0)
	if discard {
		b = 1
	}
	l.emit(Op{Code: opCallTree, A: int32(len(l.p.Nodes) - 1), B: b})
}

// LowerScript compiles a whole script body to bytecode. It cannot fail:
// any statement the pass does not understand becomes a CallTree splice
// evaluated by the tree-walker in the current frame, so the resulting
// program is semantically exact regardless of coverage. NativeStmts==0
// means nothing lowered and the program is not worth installing.
func LowerScript(s *blocks.Script) *Program {
	l := &lowerer{p: &Program{}}
	if s != nil {
		for _, b := range s.Blocks {
			l.lowerStmt(b)
		}
	}
	l.emit(Op{Code: opHalt})
	if programMutator != nil {
		programMutator(l.p)
	}
	if enabledMetrics() {
		mLowerings.Inc()
	}
	return l.p
}

func (l *lowerer) lowerStmt(b *blocks.Block) {
	m := l.mark()
	if err := l.stmt(b); err != nil {
		l.restore(m)
		l.emitCallTree(b, true)
		l.p.TreeStmts++
		return
	}
	l.p.NativeStmts++
}

// needsFrame reports whether a C-slot body makes its per-iteration frame
// observable: only variable declarations do (reads and writes resolve
// through the parent chain identically with or without the extra frame).
func needsFrame(s *blocks.Script) bool {
	for _, b := range s.Blocks {
		if b != nil && b.Op == "doDeclareVariables" {
			return true
		}
	}
	return false
}

// scriptBody lowers the statements of a C-slot script, bracketing them
// with a real frame when the tree-walker's per-push NewFrame would be
// observable: the body declares variables, or a statement falls back to
// the tree (a spliced doDeclareVariables must land in the body frame,
// not leak into the enclosing scope).
func (l *lowerer) scriptBody(s *blocks.Script) {
	if s == nil || len(s.Blocks) == 0 {
		return
	}
	framed := needsFrame(s)
	m := l.mark()
	l.emitScriptBody(s, framed)
	if !framed && l.p.TreeStmts > m.tree {
		l.restore(m)
		l.emitScriptBody(s, true)
	}
}

func (l *lowerer) emitScriptBody(s *blocks.Script, framed bool) {
	if framed {
		l.emit(Op{Code: opPushFrame})
	}
	for _, b := range s.Blocks {
		l.lowerStmt(b)
	}
	if framed {
		l.emit(Op{Code: opPopFrame})
	}
}

// cSlot lowers the body input of a control block. requireRing mirrors the
// primitives that type-check their body before running (doFor/doForEach
// error on a non-ring body even before iterating): a body those would
// reject must fall back so the tree produces the exact error.
func (l *lowerer) cSlot(n blocks.Node, requireRing bool) error {
	switch e := n.(type) {
	case blocks.ScriptNode:
		l.scriptBody(e.Script)
		return nil
	case blocks.RingNode:
		switch body := e.Body.(type) {
		case *blocks.Script:
			l.scriptBody(body)
			return nil
		case nil:
			return errRefuse // tree: "empty ring"
		default:
			// A reporter-bodied command ring: the tree evaluates the
			// expression and discards its value.
			if blk, ok := body.(*blocks.Block); ok {
				l.lowerStmt(blk)
				return nil
			}
			if err := l.expr(body); err != nil {
				return err
			}
			l.emit(Op{Code: opPop})
			return nil
		}
	case blocks.EmptySlot:
		if requireRing {
			return errRefuse // tree: "... needs a script body"
		}
		return nil // Nothing body: a no-op C-slot
	case blocks.Literal:
		if e.Val == nil && !requireRing {
			return nil
		}
		return errRefuse // non-ring value: the tree errors
	default:
		return errRefuse // dynamic body (VarGet, nested block): splice whole stmt
	}
}

func (l *lowerer) stmt(b *blocks.Block) error {
	if b == nil {
		return errRefuse
	}
	switch b.Op {
	case "doDeclareVariables":
		if len(b.Inputs) == 0 {
			return nil
		}
		for i := range b.Inputs {
			if err := l.expr(b.Input(i)); err != nil {
				return err
			}
		}
		l.emit(Op{Code: opDeclare, B: int32(len(b.Inputs))})
		return nil

	case "doSetVar", "doChangeVar":
		if len(b.Inputs) != 2 {
			return errRefuse
		}
		if err := l.expr(b.Input(0)); err != nil {
			return err
		}
		if err := l.expr(b.Input(1)); err != nil {
			return err
		}
		code := opSetVar
		if b.Op == "doChangeVar" {
			code = opChangeVar
		}
		l.emit(Op{Code: code})
		return nil

	case "doIf":
		if len(b.Inputs) != 2 {
			return errRefuse
		}
		if err := l.expr(b.Input(0)); err != nil {
			return err
		}
		jf := l.emit(Op{Code: opJumpFalse, B: l.nameIdx("doIf")})
		if err := l.cSlot(b.Input(1), false); err != nil {
			return err
		}
		l.patch(jf, l.here())
		return nil

	case "doIfElse":
		if len(b.Inputs) != 3 {
			return errRefuse
		}
		if err := l.expr(b.Input(0)); err != nil {
			return err
		}
		jf := l.emit(Op{Code: opJumpFalse, B: l.nameIdx("doIfElse")})
		if err := l.cSlot(b.Input(1), false); err != nil {
			return err
		}
		jend := l.emit(Op{Code: opJump})
		l.patch(jf, l.here())
		if err := l.cSlot(b.Input(2), false); err != nil {
			return err
		}
		l.patch(jend, l.here())
		return nil

	case "doRepeat":
		if len(b.Inputs) != 2 {
			return errRefuse
		}
		if err := l.expr(b.Input(0)); err != nil {
			return err
		}
		init := l.emit(Op{Code: opRepeatInit})
		l.ctrlH++
		loop := l.here()
		if err := l.cSlot(b.Input(1), false); err != nil {
			return err
		}
		l.emit(Op{Code: opYield})
		l.emit(Op{Code: opRepeatNext, A: loop})
		l.ctrlH--
		l.patch(init, l.here())
		return nil

	case "doForever":
		if len(b.Inputs) != 1 {
			return errRefuse
		}
		loop := l.here()
		if err := l.cSlot(b.Input(0), false); err != nil {
			return err
		}
		l.emit(Op{Code: opYield})
		l.emit(Op{Code: opJump, A: loop})
		return nil

	case "doUntil":
		if len(b.Inputs) != 2 {
			return errRefuse
		}
		loop := l.here()
		if err := l.expr(b.Input(0)); err != nil {
			return err
		}
		jt := l.emit(Op{Code: opJumpTrue, B: l.nameIdx("doUntil")})
		if err := l.cSlot(b.Input(1), false); err != nil {
			return err
		}
		l.emit(Op{Code: opYield})
		l.emit(Op{Code: opJump, A: loop})
		l.patch(jt, l.here())
		return nil

	case "doFor":
		if len(b.Inputs) != 4 {
			return errRefuse
		}
		switch body := b.Input(3).(type) {
		case blocks.ScriptNode:
			// ok: evaluates to a ring
		case blocks.RingNode:
			if body.Body == nil {
				return errRefuse // tree: "empty ring"
			}
		default:
			return errRefuse // non-ring body: tree errors at init
		}
		for i := 0; i < 3; i++ {
			if err := l.expr(b.Input(i)); err != nil {
				return err
			}
		}
		init := l.emit(Op{Code: opForInit})
		l.ctrlH++
		loop := l.here()
		next := l.emit(Op{Code: opForNext})
		if err := l.cSlot(b.Input(3), true); err != nil {
			return err
		}
		l.emit(Op{Code: opYield})
		l.emit(Op{Code: opJump, A: loop})
		l.ctrlH--
		end := l.here()
		l.patch(init, end)
		l.patch(next, end)
		return nil

	case "doForEach":
		if len(b.Inputs) != 3 {
			return errRefuse
		}
		switch body := b.Input(2).(type) {
		case blocks.ScriptNode:
		case blocks.RingNode:
			if body.Body == nil {
				return errRefuse
			}
		default:
			return errRefuse // non-ring body: tree errors per iteration
		}
		if err := l.expr(b.Input(0)); err != nil {
			return err
		}
		if err := l.expr(b.Input(1)); err != nil {
			return err
		}
		init := l.emit(Op{Code: opForEachInit})
		l.ctrlH++
		loop := l.here()
		next := l.emit(Op{Code: opForEachNext})
		if err := l.cSlot(b.Input(2), true); err != nil {
			return err
		}
		l.emit(Op{Code: opPopFrame}) // the per-iteration loop-variable frame
		l.emit(Op{Code: opYield})
		l.emit(Op{Code: opJump, A: loop})
		l.ctrlH--
		end := l.here()
		l.patch(init, end)
		l.patch(next, end)
		return nil

	case "doWait":
		if len(b.Inputs) != 1 {
			return errRefuse
		}
		if err := l.expr(b.Input(0)); err != nil {
			return err
		}
		init := l.emit(Op{Code: opWaitInit})
		l.ctrlH++
		loop := l.here()
		tick := l.emit(Op{Code: opWaitTick})
		l.emit(Op{Code: opJump, A: loop})
		l.ctrlH--
		end := l.here()
		l.patch(init, end)
		l.patch(tick, end)
		return nil

	case "doWarp":
		if len(b.Inputs) != 1 {
			return errRefuse
		}
		l.emit(Op{Code: opEnterWarp})
		if err := l.cSlot(b.Input(0), false); err != nil {
			return err
		}
		l.emit(Op{Code: opExitWarp})
		return nil

	case "doReport":
		if len(b.Inputs) != 1 {
			return errRefuse
		}
		if err := l.expr(b.Input(0)); err != nil {
			return err
		}
		l.emit(Op{Code: opReport})
		return nil

	case "doStopThis":
		l.emit(Op{Code: opStop})
		return nil
	}

	// Table-driven operators: commands emit nothing, reporters in
	// statement position discard their value like the tree does.
	if r, ok := fnIndex[b.Op]; ok && (r.arity < 0 || len(b.Inputs) == r.arity) {
		if err := l.emitFn(b, r); err != nil {
			return err
		}
		if !r.cmd {
			l.emit(Op{Code: opPop})
		}
		return nil
	}
	if isHofOp(b.Op) {
		if err := l.tryHof(b); err != nil {
			return err
		}
		l.emit(Op{Code: opPop})
		return nil
	}
	return errRefuse
}

func (l *lowerer) emitFn(b *blocks.Block, r fnRef) error {
	n := len(b.Inputs)
	for i := 0; i < n; i++ {
		if err := l.expr(b.Input(i)); err != nil {
			return err
		}
	}
	if r.code == opVariadic {
		l.emit(Op{Code: opVariadic, A: r.idx, B: int32(n)})
	} else {
		l.emit(Op{Code: r.code, A: r.idx})
	}
	return nil
}

func isHofOp(op string) bool {
	return op == "reportMap" || op == "reportKeep" || op == "reportCombine"
}

func (l *lowerer) expr(n blocks.Node) error {
	switch e := n.(type) {
	case blocks.Literal:
		switch v := e.Val.(type) {
		case nil:
			l.emit(Op{Code: opNothing})
		case *value.List:
			l.emit(Op{Code: opConstList, A: l.constIdx(v)})
		default:
			l.emit(Op{Code: opConst, A: l.constIdx(v)})
		}
		return nil

	case blocks.EmptySlot:
		return l.implicitSlot()

	case blocks.VarGet:
		l.emit(Op{Code: opVarGet, A: l.nameIdx(e.Name)})
		return nil

	case blocks.RingNode:
		// Ring values reify against the current frame; inside an inlined
		// parameterless hof that frame does not exist, so refuse.
		if l.inHof() {
			return errRefuse
		}
		l.p.RingTemplates = append(l.p.RingTemplates, e)
		l.emit(Op{Code: opMakeRing, A: int32(len(l.p.RingTemplates) - 1)})
		return nil

	case blocks.ScriptNode:
		if l.inHof() {
			return errRefuse
		}
		l.p.Scripts = append(l.p.Scripts, e.Script)
		l.emit(Op{Code: opMakeScrip, A: int32(len(l.p.Scripts) - 1)})
		return nil

	case *blocks.Block:
		lo := len(l.p.Ops)
		if err := l.exprBlock(e); err != nil {
			return err
		}
		if !l.inHof() {
			l.tryFold(lo)
		}
		return nil

	default:
		return l.fallbackExpr(n)
	}
}

// fallbackExpr splices an expression subtree through the tree-walker —
// legal only outside inlined hof bodies, where the current frame is the
// complete environment the tree would have seen.
func (l *lowerer) fallbackExpr(n blocks.Node) error {
	if l.inHof() {
		return errRefuse
	}
	l.emitCallTree(n, false)
	return nil
}

// Constant folding: a finished expression whose ops are all pure —
// deterministic, effect-free, and independent of the process, the frame,
// and the machine — is partially evaluated at compile time on a scratch
// run and replaced by a single constant load. This is the payoff of
// lowering to a flat op stream: the compile-time evaluator IS the runtime
// one, so the folded value is the value the runtime would have computed,
// including through whole inlined map/keep/combine loops over literal
// lists. Folding is attempted only outside hof scopes so every opHofArg
// in a candidate segment belongs to a hof fully contained in it.
const foldBudget = 4096

// foldMaxItems bounds folded containers: beyond this a constant list
// costs more to clone per evaluation than it saves, and it would distort
// the byte accounting of the shared program cache.
const foldMaxItems = 1024

func pureOp(op Op) bool {
	switch op.Code {
	case opConst, opConstList, opNothing, opHofArg, opJump, opJumpFalse,
		opJumpTrue, opMapInit, opMapNext, opKeepInit, opKeepNext,
		opCombineInit, opCombineNext:
		return true
	case opUnary:
		return !unaryTable[op.A].cmd
	case opBinary:
		return !binaryTable[op.A].cmd
	case opTernary:
		return !ternaryTable[op.A].cmd
	case opVariadic:
		return !variadicTable[op.A].cmd
	}
	return false
}

// constEval runs the pure segment [lo, hi) of p on a scratch run with no
// process. Any error, budget overrun, or unbalanced stack refuses the
// fold; the runtime then reproduces the exact same behavior op by op.
func constEval(p *Program, lo, hi int) (value.Value, bool) {
	var r run
	r.prog = p
	r.stack = r.stack0[:0]
	r.ctrl = r.ctrl0[:0]
	r.fsave = r.fsave0[:0]
	r.pc = lo
	for ops := 0; r.pc < hi; ops++ {
		if ops >= foldBudget {
			return nil, false
		}
		op := p.Ops[r.pc]
		r.pc++
		if err := r.exec1(nil, op); err != nil {
			return nil, false
		}
	}
	if len(r.stack) != 1 || len(r.ctrl) != 0 || len(r.fsave) != 0 {
		return nil, false
	}
	return r.stack[0], true
}

func (l *lowerer) tryFold(lo int) {
	if len(l.p.Ops)-lo < 2 {
		return // a bare constant load folds to itself
	}
	for _, op := range l.p.Ops[lo:] {
		if !pureOp(op) {
			return
		}
		if l.ctrlH != 0 {
			// Inlined hof loops address the control stack by the absolute
			// index assigned at lowering time, but the scratch run starts
			// at depth zero — inside a loop the indices would be shifted,
			// so only depth-zero segments may fold hof machinery.
			switch op.Code {
			case opHofArg, opMapInit, opMapNext, opKeepInit, opKeepNext,
				opCombineInit, opCombineNext:
				return
			}
		}
	}
	v, ok := constEval(l.p, lo, len(l.p.Ops))
	if !ok || v == nil {
		return
	}
	code := opConst
	switch fv := v.(type) {
	case *value.List:
		if fv.Len() > foldMaxItems {
			return
		}
		code = opConstList
	case value.Text:
		if len(fv) > 1<<16 {
			return
		}
	case value.Nothing:
		l.p.Ops = l.p.Ops[:lo]
		l.emit(Op{Code: opNothing})
		return
	}
	l.p.Ops = l.p.Ops[:lo]
	l.emit(Op{Code: code, A: l.constIdx(v)})
}

func (l *lowerer) exprBlock(b *blocks.Block) error {
	if r, ok := fnIndex[b.Op]; ok && (r.arity < 0 || len(b.Inputs) == r.arity) {
		if err := l.emitFn(b, r); err != nil {
			return err
		}
		if r.cmd {
			l.emit(Op{Code: opNothing}) // a command in expr position reports Nothing
		}
		return nil
	}
	if isHofOp(b.Op) {
		err := l.tryHof(b)
		if err == nil {
			return nil
		}
		return l.fallbackExpr(b)
	}
	if b.Op == "reportMapReduce" {
		if err := l.tryMapReduce(b); err == nil {
			return nil
		}
		return l.fallbackExpr(b)
	}
	return l.fallbackExpr(b)
}

// tryMapReduce lowers a mapReduce call whose map and reduce rings are
// literal. The engine adapter is built once at lower time — compiling the
// ring kernels through the compile tier — so at run time the op pops the
// evaluated input list and dispatches straight into the engine: no tree
// splice, no per-evaluation ring hashing or cache lookup. Dynamic ring
// inputs (variables, expressions, non-rings) fall back to the tree so the
// primitive's evaluation order and type errors stay exact.
func (l *lowerer) tryMapReduce(b *blocks.Block) error {
	if mapReduceHook == nil || len(b.Inputs) != 3 {
		return errRefuse
	}
	mr, ok := b.Input(0).(blocks.RingNode)
	if !ok {
		return errRefuse
	}
	rr, ok := b.Input(1).(blocks.RingNode)
	if !ok {
		return errRefuse
	}
	m := l.mark()
	if err := l.expr(b.Input(2)); err != nil {
		l.restore(m)
		return errRefuse
	}
	// A constant input list needs no defensive per-evaluation clone here:
	// the engine clones every item crossing the map boundary (and the
	// async path clones the whole list), and nothing it returns aliases
	// the input, so the shared constant can be pushed as-is.
	if n := len(l.p.Ops); l.p.Ops[n-1].Code == opConstList {
		l.p.Ops[n-1].Code = opConst
	}
	// The same shipped shape ShipRing builds from the evaluated ring
	// value: body and params, no captured environment.
	call := mapReduceHook(
		&blocks.Ring{Body: mr.Body, Params: mr.Params},
		&blocks.Ring{Body: rr.Body, Params: rr.Params})
	l.p.MRCalls = append(l.p.MRCalls, call)
	begin := l.emit(Op{Code: opMRBegin, A: int32(len(l.p.MRCalls) - 1)})
	l.ctrlH++
	loop := l.here()
	poll := l.emit(Op{Code: opMRPoll})
	l.emit(Op{Code: opJump, A: loop})
	l.ctrlH--
	end := l.here()
	l.patch(poll, end)
	l.p.Ops[begin].B = end
	return nil
}

// implicitSlot resolves an empty slot against the static hof scope stack,
// mirroring Frame.TakeImplicit over the frames the tree-walker would have
// built: the innermost implicit-bearing (parameterless) call frame binds
// the slot with a per-call cursor. Because hof bodies are expressions —
// every subterm evaluates exactly once per call, in lowering order — the
// cursor is static. A parameterized innermost ring shadows nothing (its
// frame has no implicits), so the slot either falls through to Nothing
// (no parameterless scope anywhere) or would bind an outer parameterless
// scope with a dynamic cursor, which bytecode cannot express: refuse.
func (l *lowerer) implicitSlot() error {
	if len(l.hofs) == 0 {
		l.emit(Op{Code: opNothing})
		return nil
	}
	inner := &l.hofs[len(l.hofs)-1]
	if inner.params {
		for i := 0; i < len(l.hofs)-1; i++ {
			if !l.hofs[i].params {
				return errRefuse
			}
		}
		l.emit(Op{Code: opNothing})
		return nil
	}
	l.emit(Op{Code: opHofArg, A: inner.ctrlIdx, B: inner.cursor})
	inner.cursor++
	return nil
}

// tryHof attempts to inline a map/keep/combine call; on refusal it rolls
// the program back to the attempt point and reports errRefuse so the
// caller can either splice the whole call (at depth 0) or propagate.
func (l *lowerer) tryHof(b *blocks.Block) error {
	m := l.mark()
	if err := l.hof(b); err != nil {
		l.restore(m)
		return errRefuse
	}
	return nil
}

func (l *lowerer) hof(b *blocks.Block) error {
	if len(b.Inputs) != 2 {
		return errRefuse
	}
	var ringIn, listIn blocks.Node
	var initCode, nextCode Code
	nargs := 1
	switch b.Op {
	case "reportMap":
		ringIn, listIn = b.Input(0), b.Input(1)
		initCode, nextCode = opMapInit, opMapNext
	case "reportKeep":
		ringIn, listIn = b.Input(0), b.Input(1)
		initCode, nextCode = opKeepInit, opKeepNext
	case "reportCombine":
		listIn, ringIn = b.Input(0), b.Input(1)
		initCode, nextCode = opCombineInit, opCombineNext
		nargs = 2
	default:
		return errRefuse
	}
	rn, ok := ringIn.(blocks.RingNode)
	if !ok {
		return errRefuse // dynamic ring operand
	}
	if rn.Body == nil {
		return errRefuse // tree: "cannot call an empty ring"
	}
	if _, isScript := rn.Body.(*blocks.Script); isScript {
		return errRefuse // command-ring bodies cross a proc boundary
	}
	// Evaluation order: the ring operand reifies without side effects, so
	// only the list operand emits code; for combine it is Inputs[0] and
	// evaluates first either way.
	if err := l.expr(listIn); err != nil {
		return err
	}
	init := l.emit(Op{Code: initCode})
	scope := hofScope{ctrlIdx: l.ctrlH, params: len(rn.Params) > 0, nargs: nargs}
	l.ctrlH++
	l.hofs = append(l.hofs, scope)
	loop := l.here()
	next := l.emit(Op{Code: nextCode})
	if scope.params {
		l.p.Metas = append(l.p.Metas, ringMeta{params: rn.Params})
		l.emit(Op{Code: opHofParams, A: scope.ctrlIdx, B: int32(len(l.p.Metas) - 1)})
	}
	if err := l.expr(rn.Body); err != nil {
		return err
	}
	if scope.params {
		l.emit(Op{Code: opPopFrame})
	}
	l.emit(Op{Code: opJump, A: loop})
	l.hofs = l.hofs[:len(l.hofs)-1]
	l.ctrlH--
	end := l.here()
	l.patch(init, end)
	l.patch(next, end)
	return nil
}
