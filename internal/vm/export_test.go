package vm

// MemoReset exposes the memo flush to the external differential and fuzz
// harnesses: they flip SetEnabled between runs and start each comparison
// from a cold cache so a lowering bug cannot hide behind a stale entry.
var MemoReset = memoReset
