// Differential harness: every script in the corpus runs once on the
// tree-walker and once on the bytecode machine, and the two executions must
// agree on the reported value, the error string (verbatim), the stage
// snapshot, and the trace log. This is the contract the lowering pass is
// held to — identical observable behavior, including failure text. The
// comparison machinery itself lives in internal/evo/oracle, shared with
// the compile differential test and the evolutionary stress engine.
package vm_test

import (
	"testing"

	"repro/internal/blocks"
	_ "repro/internal/core" // hof, mapReduce, parallel and stage primitives
	"repro/internal/evo/oracle"
)

func rep(b *blocks.Block) *blocks.Script {
	return blocks.NewScript(blocks.Report(b))
}

func sumRing() blocks.Node {
	return blocks.RingOf(blocks.Sum(blocks.Empty(), blocks.Empty()))
}

func wordCount(sentence string) *blocks.Block {
	return blocks.MapReduce(
		blocks.RingOf(blocks.ListOf(blocks.Empty(), blocks.Num(1))),
		blocks.RingOf(blocks.Combine(blocks.Empty(), sumRing())),
		blocks.Split(blocks.Txt(sentence), blocks.Txt(" ")))
}

func TestDifferentialCorpus(t *testing.T) {
	cases := []struct {
		name   string
		script *blocks.Script
	}{
		{"arith-folded", rep(blocks.Sum(
			blocks.Product(blocks.Num(2), blocks.Num(3)),
			blocks.Quotient(blocks.Num(10), blocks.Num(4))))},
		{"arith-mod-round", rep(blocks.Sum(
			blocks.Modulus(blocks.Num(17), blocks.Num(5)),
			blocks.Round(blocks.Num(2.5))))},
		{"monadic", rep(blocks.Monadic("sqrt", blocks.Num(2)))},
		{"text", rep(blocks.Join(
			blocks.Letter(blocks.Num(2), blocks.Txt("hello")),
			blocks.StringSize(blocks.Txt("world")),
			blocks.Split(blocks.Txt("a,b"), blocks.Txt(","))))},
		{"logic", rep(blocks.Ternary(
			blocks.And(
				blocks.LessThan(blocks.Num(1), blocks.Num(2)),
				blocks.Not(blocks.Equals(blocks.Txt("a"), blocks.Txt("b")))),
			blocks.Txt("yes"), blocks.Txt("no")))},
		{"vars", blocks.NewScript(
			blocks.DeclareLocal("x"),
			blocks.SetVar("x", blocks.Num(5)),
			blocks.ChangeVar("x", blocks.Num(2.5)),
			blocks.Report(blocks.Var("x")))},
		{"if-else", blocks.NewScript(
			blocks.DeclareLocal("x"),
			blocks.SetVar("x", blocks.Num(0)),
			blocks.If(blocks.GreaterThan(blocks.Num(3), blocks.Num(1)),
				blocks.Body(blocks.ChangeVar("x", blocks.Num(1)))),
			blocks.IfElse(blocks.LessThan(blocks.Num(3), blocks.Num(1)),
				blocks.Body(blocks.SetVar("x", blocks.Num(-1))),
				blocks.Body(blocks.ChangeVar("x", blocks.Num(10)))),
			blocks.Report(blocks.Var("x")))},
		{"repeat", blocks.NewScript(
			blocks.DeclareLocal("x"),
			blocks.SetVar("x", blocks.Num(1)),
			blocks.Repeat(blocks.Num(6),
				blocks.Body(blocks.SetVar("x",
					blocks.Product(blocks.Var("x"), blocks.Num(2))))),
			blocks.Report(blocks.Var("x")))},
		{"for", blocks.NewScript(
			blocks.DeclareLocal("s"),
			blocks.SetVar("s", blocks.Num(0)),
			blocks.For("i", blocks.Num(1), blocks.Num(10),
				blocks.Body(blocks.ChangeVar("s", blocks.Var("i")))),
			blocks.Report(blocks.Var("s")))},
		{"until", blocks.NewScript(
			blocks.DeclareLocal("n"),
			blocks.SetVar("n", blocks.Num(10)),
			blocks.Until(blocks.LessThan(blocks.Var("n"), blocks.Num(1)),
				blocks.Body(blocks.ChangeVar("n", blocks.Num(-3)))),
			blocks.Report(blocks.Var("n")))},
		{"warp-until", blocks.NewScript(
			// Regression: a warped until used to hang the tree-walker
			// (the body's Nothing result landed in the cleared condition
			// slot) while the vm ran it fine — the first divergence the
			// evo engine found.
			blocks.DeclareLocal("n"),
			blocks.Warp(blocks.Body(
				blocks.SetVar("n", blocks.Num(5)),
				blocks.Until(blocks.LessThan(blocks.Var("n"), blocks.Num(0)),
					blocks.Body(blocks.ChangeVar("n", blocks.Num(-1)))))),
			blocks.Report(blocks.Var("n")))},
		{"foreach", blocks.NewScript(
			blocks.DeclareLocal("s"),
			blocks.SetVar("s", blocks.Txt("")),
			blocks.ForEach("w",
				blocks.ListOf(blocks.Txt("a"), blocks.Txt("b"), blocks.Txt("c")),
				blocks.Body(blocks.SetVar("s",
					blocks.Join(blocks.Var("s"), blocks.Var("w"))))),
			blocks.Report(blocks.Var("s")))},
		{"warp", blocks.NewScript(
			blocks.DeclareLocal("x"),
			blocks.SetVar("x", blocks.Num(0)),
			blocks.Warp(blocks.Body(
				blocks.Repeat(blocks.Num(100),
					blocks.Body(blocks.ChangeVar("x", blocks.Num(1)))))),
			blocks.Report(blocks.Var("x")))},
		{"self-referential-list", blocks.NewScript(
			// Regression: a list added to itself used to blow the stack
			// in value.List.String (unrecoverable, killing the whole
			// process) — found by the evo engine's make-check soak. The
			// cycle must render as a [...] back-reference on both tiers.
			blocks.DeclareLocal("l"),
			blocks.SetVar("l", blocks.ListOf(blocks.Num(1), blocks.Num(2))),
			blocks.AddToList(blocks.Var("l"), blocks.Var("l")),
			blocks.Report(blocks.Var("l")))},
		{"lists", blocks.NewScript(
			blocks.DeclareLocal("l"),
			blocks.SetVar("l", blocks.Numbers(blocks.Num(1), blocks.Num(5))),
			blocks.AddToList(blocks.Num(99), blocks.Var("l")),
			blocks.DeleteFromList(blocks.Num(1), blocks.Var("l")),
			blocks.InsertInList(blocks.Num(7), blocks.Num(2), blocks.Var("l")),
			blocks.ReplaceInList(blocks.Num(3), blocks.Var("l"), blocks.Txt("x")),
			blocks.Report(blocks.Join(
				blocks.Var("l"),
				blocks.LengthOf(blocks.Var("l")),
				blocks.ItemOf(blocks.Num(2), blocks.Var("l")),
				blocks.ListContains(blocks.Var("l"), blocks.Num(99)))))},
		{"stop-this", blocks.NewScript(
			blocks.DeclareLocal("x"),
			blocks.SetVar("x", blocks.Num(1)),
			blocks.Stop(),
			blocks.SetVar("x", blocks.Num(2)),
			blocks.Report(blocks.Var("x")))},
		{"hof-map", rep(blocks.Map(
			blocks.RingOf(blocks.Product(blocks.Empty(), blocks.Num(10))),
			blocks.Numbers(blocks.Num(1), blocks.Num(20))))},
		{"hof-keep", rep(blocks.Keep(
			blocks.RingOf(blocks.GreaterThan(blocks.Empty(), blocks.Num(5))),
			blocks.Numbers(blocks.Num(1), blocks.Num(12))))},
		{"hof-combine", rep(blocks.Combine(
			blocks.Numbers(blocks.Num(1), blocks.Num(50)), sumRing()))},
		{"ring-call", rep(blocks.Call(
			blocks.RingOf(blocks.Sum(blocks.Empty(), blocks.Empty())),
			blocks.Num(3), blocks.Num(4)))},
		{"mapreduce-wordcount", rep(wordCount("the quick fox the lazy dog the end"))},
		{"mapreduce-climate", rep(blocks.MapReduce(
			blocks.RingOf(blocks.Quotient(
				blocks.Product(blocks.Num(5),
					blocks.Difference(blocks.Empty(), blocks.Num(32))),
				blocks.Num(9))),
			blocks.RingOf(blocks.Quotient(
				blocks.Combine(blocks.Empty(), sumRing()),
				blocks.LengthOf(blocks.Empty()))),
			blocks.ListOf(blocks.Num(32), blocks.Num(212), blocks.Num(122))))},
		{"mapreduce-async", rep(blocks.MapReduce(
			blocks.RingOf(blocks.ListOf(
				blocks.Modulus(blocks.Empty(), blocks.Num(7)), blocks.Num(1))),
			blocks.RingOf(blocks.Combine(blocks.Empty(), sumRing())),
			blocks.Numbers(blocks.Num(1), blocks.Num(200))))},
		{"mapreduce-dynamic-ring", blocks.NewScript(
			blocks.DeclareLocal("r"),
			blocks.SetVar("r", blocks.RingOf(
				blocks.Product(blocks.Empty(), blocks.Num(10)))),
			blocks.Report(blocks.MapReduce(
				blocks.Var("r"),
				blocks.RingOf(blocks.LengthOf(blocks.Empty())),
				blocks.Numbers(blocks.Num(1), blocks.Num(8)))))},
		{"splice-stage", blocks.NewScript(
			blocks.DeclareLocal("x"),
			blocks.SetVar("x", blocks.Num(1)),
			blocks.Forward(blocks.Num(10)),
			blocks.TurnRight(blocks.Num(90)),
			blocks.Forward(blocks.Num(5)),
			blocks.ChangeVar("x", blocks.Num(41)),
			blocks.Report(blocks.Var("x")))},
		{"columnar-upgrade", blocks.NewScript(
			// numbers-from now builds a columnar list; replacing an item
			// with text upgrades it to boxed mid-script, and every list
			// primitive must observe the same contents on both tiers.
			blocks.DeclareLocal("l"),
			blocks.SetVar("l", blocks.Numbers(blocks.Num(1), blocks.Num(40))),
			blocks.ReplaceInList(blocks.Num(10), blocks.Var("l"), blocks.Txt("ten")),
			blocks.AddToList(blocks.Txt("tail"), blocks.Var("l")),
			blocks.Report(blocks.Join(
				blocks.LengthOf(blocks.Var("l")),
				blocks.ItemOf(blocks.Num(10), blocks.Var("l")),
				blocks.ItemOf(blocks.Num(41), blocks.Var("l")),
				blocks.ListContains(blocks.Var("l"), blocks.Txt("ten")))))},
		{"columnar-mutate-mid-foreach", blocks.NewScript(
			// Mutating the list being iterated — including the column→boxed
			// upgrade happening mid-iteration — must behave identically.
			blocks.DeclareLocal("l"),
			blocks.DeclareLocal("s"),
			blocks.SetVar("l", blocks.Numbers(blocks.Num(1), blocks.Num(6))),
			blocks.SetVar("s", blocks.Txt("")),
			blocks.ForEach("x", blocks.Var("l"), blocks.Body(
				blocks.If(blocks.Equals(blocks.Var("x"), blocks.Num(3)),
					blocks.Body(blocks.ReplaceInList(
						blocks.Num(5), blocks.Var("l"), blocks.Txt("five")))),
				blocks.SetVar("s", blocks.Join(blocks.Var("s"), blocks.Var("x"), blocks.Txt("."))))),
			blocks.Report(blocks.Join(blocks.Var("s"), blocks.Var("l"))))},
		{"splice-gotoxy-loop", blocks.NewScript(
			blocks.Repeat(blocks.Num(4), blocks.Body(
				blocks.Forward(blocks.Num(25)),
				blocks.TurnRight(blocks.Num(90)))),
			blocks.GotoXY(blocks.Num(7), blocks.Num(-3)),
			blocks.Report(blocks.Txt("done")))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { oracle.AssertSame(t, tc.script) })
	}
}

// TestDifferentialErrors pins failure text: the bytecode machine must
// produce the tree-walker's exact error strings, whether the failure is in
// a lowered opcode, a spliced tree call, or the mapReduce engine.
func TestDifferentialErrors(t *testing.T) {
	cases := []struct {
		name   string
		script *blocks.Script
	}{
		{"division-by-zero", rep(blocks.Quotient(blocks.Num(1), blocks.Num(0)))},
		{"modulus-by-zero", rep(blocks.Modulus(blocks.Num(1), blocks.Num(0)))},
		{"unset-variable", blocks.NewScript(
			blocks.Report(blocks.Var("nope")))},
		{"item-out-of-range", rep(blocks.ItemOf(
			blocks.Num(9), blocks.ListOf(blocks.Num(1))))},
		{"mapreduce-nonring-map", rep(blocks.MapReduce(
			blocks.Num(1), sumRing(), blocks.ListOf()))},
		{"mapreduce-nonring-reduce", rep(blocks.MapReduce(
			sumRing(), blocks.Num(1), blocks.ListOf()))},
		{"mapreduce-nonlist-input", rep(blocks.MapReduce(
			sumRing(), sumRing(), blocks.Num(1)))},
		{"mapreduce-map-error", rep(blocks.MapReduce(
			blocks.RingOf(blocks.Quotient(blocks.Empty(), blocks.Num(0))),
			sumRing(),
			blocks.ListOf(blocks.Num(1), blocks.Num(2))))},
		{"mapreduce-reduce-error", rep(blocks.MapReduce(
			blocks.RingOf(blocks.ListOf(blocks.Empty(), blocks.Num(1))),
			blocks.RingOf(blocks.Quotient(blocks.Num(1), blocks.Num(0))),
			blocks.ListOf(blocks.Txt("a"), blocks.Txt("b"))))},
		{"mapreduce-async-map-error", rep(blocks.MapReduce(
			blocks.RingOf(blocks.Quotient(blocks.Num(1),
				blocks.Difference(blocks.Empty(), blocks.Num(70)))),
			sumRing(),
			blocks.Numbers(blocks.Num(1), blocks.Num(100))))},
		{"hof-map-nonring", rep(blocks.Map(
			blocks.Num(1), blocks.ListOf(blocks.Num(1))))},
		{"numbers-from-infinity", rep(blocks.Numbers(
			// Regression: "Infinity" used to parse to +Inf, whose span
			// truncated to a negative int and allocated until OOM. Every
			// tier must now reject it with the same wording.
			blocks.Num(1), blocks.Txt("Infinity")))},
		{"numbers-overflow-bound", rep(blocks.Numbers(
			// Arithmetic can still produce a non-finite bound even though
			// text no longer can; the finite-bounds guard catches it.
			blocks.Num(1),
			blocks.Product(blocks.Num(1e308), blocks.Num(10))))},
		{"numbers-huge-span", rep(blocks.Numbers(
			blocks.Num(1), blocks.Num(1e18)))},
		{"error-inside-loop", blocks.NewScript(
			blocks.DeclareLocal("x"),
			blocks.SetVar("x", blocks.Num(3)),
			blocks.Until(blocks.LessThan(blocks.Var("x"), blocks.Num(0)),
				blocks.Body(
					blocks.SetVar("x", blocks.Difference(blocks.Var("x"), blocks.Num(1))),
					blocks.If(blocks.Equals(blocks.Var("x"), blocks.Num(1)),
						blocks.Body(blocks.SetVar("x",
							blocks.Quotient(blocks.Num(1), blocks.Num(0))))))),
			blocks.Report(blocks.Var("x")))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			oracle.AssertSame(t, tc.script)
			// The case exists to pin an error; make sure there is one.
			if out, _ := oracle.Run(tc.script, true); out.Err == "<nil>" {
				t.Fatal("expected an error, got none")
			}
		})
	}
}

// TestDifferentialMapReduceAsyncValue pins the async (polled) mapReduce
// path's value: an input past the sync threshold runs on worker goroutines
// while the bytecode loop spins opMRPoll, and the sorted result must match
// the tree primitive's byte for byte.
func TestDifferentialMapReduceAsyncValue(t *testing.T) {
	script := rep(blocks.MapReduce(
		blocks.RingOf(blocks.ListOf(
			blocks.Modulus(blocks.Empty(), blocks.Num(3)), blocks.Num(1))),
		blocks.RingOf(blocks.Combine(blocks.Empty(), sumRing())),
		blocks.Numbers(blocks.Num(1), blocks.Num(300))))
	out, _ := oracle.Run(script, true)
	if out.Err != "<nil>" {
		t.Fatal(out.Err)
	}
	if out.Value != "[[0 100] [1 100] [2 100]]" {
		t.Fatalf("async mapReduce = %s", out.Value)
	}
	oracle.AssertSame(t, script)
}
