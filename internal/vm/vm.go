package vm

import (
	"hash/maphash"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/blocks"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/value"
)

// Metric handles, aliased so the hot paths read short.
var (
	mOps       = obs.VMOps
	mYields    = obs.VMYields
	mTreeCalls = obs.VMTreeCalls
	mLowerings = obs.VMLowerings
)

func enabledMetrics() bool { return obs.Enabled() }

var enabled atomic.Bool

// SetEnabled turns the bytecode machine on or off process-wide; off means
// every new process tree-walks (running executors are unaffected). The
// differential harness flips this to compare the two engines.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether new processes execute on the bytecode machine.
func Enabled() bool { return enabled.Load() }

// lowerCache, when installed, resolves a script to its lowered program
// through a shared cache (the progcache "script" tier, keyed by the
// structural hash). nil falls back to lowering in place.
var lowerCache func(*blocks.Script) *Program

// SetProgramCache installs the shared lowered-program cache hook.
func SetProgramCache(f func(*blocks.Script) *Program) { lowerCache = f }

// programMutator, when installed, rewrites every freshly lowered program
// before it is returned — after constant folding, so the corruption
// cannot be folded away. It exists for the evolutionary stress engine's
// self-test: inject a deliberate op-level bug and prove the cross-tier
// oracle catches and shrinks it. Both caches (the memo here and the
// progcache script tier) hold pre-mutation programs, so installing or
// clearing a mutator is only sound after resetting both.
var programMutator func(*Program)

// SetProgramMutator installs (nil clears) the post-lowering program
// mutator. Test/stress hook only — never set in production paths.
func SetProgramMutator(f func(*Program)) { programMutator = f }

func init() {
	enabled.Store(true)
	interp.SetSpawnHook(hookSpawn)
}

// hookSpawn is consulted by interp.Machine for every spawned script
// process: it installs a bytecode executor when the script lowers to
// something worth running. Tracing machines keep the tree-walker — the
// per-block trace hook has no bytecode equivalent.
func hookSpawn(m *interp.Machine, p *interp.Process, script *blocks.Script) {
	if !enabled.Load() || m == nil || m.TraceBlock != nil || script == nil {
		return
	}
	prog := lookup(script)
	if prog == nil || prog.NativeStmts == 0 {
		return
	}
	p.InstallExec(newRun(prog, p))
}

// lookup resolves script to a Program via the two cache levels: a fast
// in-package memo (one buffer encode, two seeded 64-bit hashes, for the
// rebuilt-AST-per-request pattern) in front of the shared progcache tier
// (cryptographic structural hash, byte-budgeted, singleflight). Scripts
// whose literals defeat structural hashing (opaque payloads,
// environment-carrying rings) skip both and lower in place.
func lookup(s *blocks.Script) *Program {
	k, ok := memoHash(s)
	if !ok {
		return LowerScript(s)
	}
	if prog := memoGet(k); prog != nil {
		return prog
	}
	var prog *Program
	if lowerCache != nil {
		prog = lowerCache(s)
	} else {
		prog = LowerScript(s)
	}
	if prog != nil {
		memoPut(k, prog)
	}
	return prog
}

// The memo: bounded, flushed whole when full (churn here means the
// workload is not the repeated-script pattern the memo serves). Entries
// are keyed by two independently seeded 64-bit structural hashes over a
// canonical byte encoding of the script; with both seeds drawn at
// process start, a cross-script collision needs ~2^128 luck against
// unknown seeds, so no exemplar comparison is kept. Mutating a script
// after it ran is still safe: the cached program was derived from the
// content the key encodes, so any later script matching the key has that
// same content and the program is correct for it.
const memoMax = 512

type memoKey struct{ h1, h2 uint64 }

var (
	memoMu    sync.RWMutex
	memoSeed1 = maphash.MakeSeed()
	memoSeed2 = maphash.MakeSeed()
	memo      = make(map[memoKey]*Program)
)

func memoGet(k memoKey) *Program {
	memoMu.RLock()
	defer memoMu.RUnlock()
	return memo[k]
}

func memoPut(k memoKey, prog *Program) {
	memoMu.Lock()
	defer memoMu.Unlock()
	if len(memo) >= memoMax {
		memo = make(map[memoKey]*Program)
	}
	memo[k] = prog
}

// memoReset clears the memo (tests).
func memoReset() {
	memoMu.Lock()
	defer memoMu.Unlock()
	memo = make(map[memoKey]*Program)
}

// ResetMemo flushes the in-process lowered-program memo so the next
// lookup lowers from scratch. Differential harnesses call it between
// engine flips so a comparison never starts from a stale entry; anyone
// installing a program mutator must also reset the progcache script tier,
// which holds programs the memo does not.
func ResetMemo() { memoReset() }

// Structural hashing. The encoder flattens the AST into one byte buffer
// (stack-backed for realistic script sizes) and hashes it twice; tag
// bytes separate node kinds so that shapes cannot collide by
// concatenation, and every variable-length run is length-prefixed.
// ok=false bails on values a content key cannot certify (Opaque
// payloads, rings carrying environments).
const (
	tagEnd byte = iota + 1
	tagBlock
	tagScript
	tagLiteral
	tagEmpty
	tagVarGet
	tagRingNode
	tagScriptNode
	tagNilNode
	tagNothing
	tagBool
	tagNumber
	tagText
	tagList
	tagNilVal
)

type memoHasher struct {
	buf []byte
	ok  bool
}

// memoBufPool recycles encode buffers: the recursive encoder defeats the
// escape analysis that would keep a stack array on the stack, and this
// hash runs once per spawned script process.
var memoBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 512)
	return &b
}}

func memoHash(s *blocks.Script) (memoKey, bool) {
	bp := memoBufPool.Get().(*[]byte)
	w := memoHasher{buf: (*bp)[:0], ok: true}
	w.node(s)
	var k memoKey
	if w.ok {
		k = memoKey{
			h1: maphash.Bytes(memoSeed1, w.buf),
			h2: maphash.Bytes(memoSeed2, w.buf),
		}
	}
	*bp = w.buf
	memoBufPool.Put(bp)
	return k, w.ok
}

func (w *memoHasher) u64(v uint64) {
	w.buf = append(w.buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// length: one byte for the common small case, escaped to 8 bytes above.
func (w *memoHasher) length(n int) {
	if n < 0xff {
		w.buf = append(w.buf, byte(n))
		return
	}
	w.buf = append(w.buf, 0xff)
	w.u64(uint64(n))
}

func (w *memoHasher) str(s string) {
	w.length(len(s))
	w.buf = append(w.buf, s...)
}

func (w *memoHasher) node(n blocks.Node) {
	if !w.ok {
		return
	}
	switch e := n.(type) {
	case nil:
		w.buf = append(w.buf, tagNilNode)
	case *blocks.Block:
		w.buf = append(w.buf, tagBlock)
		w.str(e.Op)
		w.length(len(e.Inputs))
		for _, in := range e.Inputs {
			w.node(in)
		}
	case *blocks.Script:
		w.buf = append(w.buf, tagScript)
		if e == nil {
			w.buf = append(w.buf, tagNilNode)
			return
		}
		w.length(len(e.Blocks))
		for _, b := range e.Blocks {
			w.node(b)
		}
	case blocks.Literal:
		w.buf = append(w.buf, tagLiteral)
		w.val(e.Val)
	case blocks.EmptySlot:
		w.buf = append(w.buf, tagEmpty)
	case blocks.VarGet:
		w.buf = append(w.buf, tagVarGet)
		w.str(e.Name)
	case blocks.RingNode:
		w.buf = append(w.buf, tagRingNode)
		w.length(len(e.Params))
		for _, p := range e.Params {
			w.str(p)
		}
		w.node(e.Body)
	case blocks.ScriptNode:
		w.buf = append(w.buf, tagScriptNode)
		w.node(e.Script)
	default:
		w.ok = false
	}
}

func (w *memoHasher) val(v value.Value) {
	if !w.ok {
		return
	}
	switch e := v.(type) {
	case nil:
		w.buf = append(w.buf, tagNilVal)
	case value.Nothing:
		w.buf = append(w.buf, tagNothing)
	case value.Bool:
		w.buf = append(w.buf, tagBool)
		if e {
			w.buf = append(w.buf, 1)
		} else {
			w.buf = append(w.buf, 0)
		}
	case value.Number:
		w.buf = append(w.buf, tagNumber)
		w.u64(math.Float64bits(float64(e)))
	case value.Text:
		w.buf = append(w.buf, tagText)
		w.str(string(e))
	case *value.List:
		w.buf = append(w.buf, tagList)
		w.length(e.Len())
		for _, it := range e.Items() {
			w.val(it)
		}
	default:
		w.ok = false
	}
}
