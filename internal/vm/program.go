// Package vm is the flat bytecode machine of the execution engine: whole
// scripts lower to a linear op array executed over a value stack with an
// explicit control stack and real interpreter frames, in the style of
// gno's machine.go — preallocated slices and a dispatch loop instead of
// one heap-allocated context per AST node per evaluation.
//
// The machine deliberately drives the same interp.Process the tree-walker
// would: frames are interp.Frames, yields set the same cooperative flag,
// stops and errors land in the same fields, and every construct the
// lowering pass cannot express splices back through the tree evaluator
// via a CallTree op (interp.BeginSplice/StepSplice). Scheduling,
// governance (deadlines, step budgets, Kill), and observable semantics —
// values AND error strings — are therefore identical by construction,
// and pinned by the differential + fuzz harnesses in this package.
package vm

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/blocks"
	"repro/internal/interp"
	"repro/internal/value"
)

// Code is a bytecode opcode.
type Code uint8

// The op catalog. Jump targets are absolute op indices in A. Ops that can
// fail carry the block selector they wrap their error with, matching the
// tree-walker's "%s: %w" convention exactly.
const (
	opInvalid Code = iota

	// Values.
	opConst     // push Consts[A]
	opConstList // push Consts[A].(*value.List).Clone() — container literals copy per evaluation
	opNothing   // push Nothing
	opPop       // drop the top of stack (a discarded statement value)
	opVarGet    // push frame.Get(Names[A]); the error is NOT wrapped (tree parity)
	opMakeRing  // push the reified closure of RingTemplates[A] capturing the current frame
	opMakeScrip // push &blocks.Ring{Body: Scripts[A], Env: frame} (a C-slot script value)
	opHofArg    // push the implicit argument: ctrl[A] is the hof scope, B the static cursor

	// Frames.
	opPushFrame // frame = NewFrame(frame)
	opPopFrame  // frame = saved parent

	// Variables.
	opDeclare   // pop B values; Declare(v.String(), Nothing) each, in evaluation order
	opSetVar    // pop v, pop name; frame.Set — wraps "doSetVar"
	opChangeVar // pop delta, pop name; numeric add — wraps "doChangeVar"

	// Control.
	opJump      // pc = A
	opJumpFalse // pop cond; !cond -> pc = A; ToBool error wraps Names[B]
	opJumpTrue  // pop cond; cond -> pc = A; ToBool error wraps Names[B]
	opYield     // request a cooperative yield (the loop top honors warp)
	opReport    // pop v; the process reports v and the program halts
	opStop      // doStopThis: stop the process
	opHalt      // end of script
	opEnterWarp // doWarp entry
	opExitWarp  // doWarp exit

	// Loops (control stack).
	opRepeatInit  // pop n ("doRepeat"); n<1 -> jump A, else push counter
	opRepeatNext  // decrement; continue -> jump A (loop head), else pop ctrl
	opWaitInit    // pop n ("doWait"); n<=0 -> jump A, else push remaining
	opWaitTick    // consume one wait timestep, yield; exhausted -> pop ctrl, jump A
	opForInit     // pop to, from, var name ("doFor"); push loop frame + ctrl
	opForNext     // bounds-check; exit -> pop ctrl+frame, jump A; else declare counter
	opForEachInit // pop list, var name ("doForEach"); push ctrl
	opForEachNext // exhausted -> pop ctrl, jump A; else push iter frame, declare item

	// Inlined sequential higher-order blocks.
	opMapInit     // pop list ("reportMap"); push ctrl with result accumulator
	opMapNext     // collect previous result; exhausted -> push out, jump A; else stage next arg
	opKeepInit    // pop list ("reportKeep")
	opKeepNext    // collect previous verdict; exhausted -> push out, jump A
	opCombineInit // pop list ("reportCombine"); empty -> push 0, jump A
	opCombineNext // fold previous result; exhausted -> push acc, jump A
	opHofParams   // push a call frame declaring Metas[B].params from ctrl[A]'s args

	// Table-driven eager operators.
	opUnary    // pop 1, apply unaryTable[A]
	opBinary   // pop 2, apply binaryTable[A]
	opTernary  // pop 3, apply ternaryTable[A]
	opVariadic // pop B, apply variadicTable[A]

	// Fallback: evaluate Nodes[A] through the tree-walker in the current
	// frame; B==1 discards the value (statement position).
	opCallTree

	// Engine dispatch: a mapReduce call whose rings are literal, adapted
	// once at lower time (see SetMapReduceLowerer). Begin pops the input
	// list and either completes synchronously (small input: push result,
	// jump A) or starts the engine on worker goroutines and pushes a
	// polling ctrl entry; Poll checks the in-flight job, yielding between
	// rounds exactly like the tree primitive's Again loop.
	opMRBegin // pop list; MRCalls[A]; sync -> push v, jump B
	opMRPoll  // resolved -> pop ctrl, push v, jump A; else yield
)

// Op is one instruction.
type Op struct {
	Code Code
	A, B int32
}

// ringMeta carries the formal parameters of an inlined parameterized ring.
type ringMeta struct {
	params []string
}

// Program is a lowered script: immutable once built and shared freely
// across machines (the progcache script tier hands one instance to every
// session running a structurally identical script).
type Program struct {
	Ops           []Op
	Consts        []value.Value
	Names         []string
	Nodes         []blocks.Node     // opCallTree splice roots
	RingTemplates []blocks.RingNode // opMakeRing
	Scripts       []*blocks.Script  // opMakeScrip
	Metas         []ringMeta
	MRCalls       []MRCall // opMRBegin engine adapters

	// NativeStmts counts statements lowered to bytecode; TreeStmts counts
	// statements spliced whole through the tree-walker. A program with no
	// native statements is not worth installing.
	NativeStmts int
	TreeStmts   int
}

// Cost prices the program for the cache byte budget.
func (p *Program) Cost() int64 {
	return int64(len(p.Ops))*12 + int64(len(p.Consts)+len(p.Names)+len(p.Nodes))*32 + 256
}

// MRCall dispatches one lowered mapReduce site over an evaluated input.
// It returns either a synchronous result (poll nil), or a poll function
// for an engine job started on worker goroutines: poll reports
// (result, resolved, error) and is invoked once per scheduler round. err
// carries the input type error, with the exact text the tree primitive
// produces.
type MRCall func(p *interp.Process, list value.Value) (v value.Value, poll func() (value.Value, bool, error), err error)

// mapReduceHook adapts a pair of literal, shipped rings to an engine
// dispatch at lower time — installed by the core package (the engine
// adapters live above this one in the dependency order), nil until then.
// Precompiling the ring kernels once per lowered program is what lets a
// cached program skip the per-evaluation ring hashing and compile-tier
// lookup the tree primitive pays.
var mapReduceHook func(mapRing, reduceRing *blocks.Ring) MRCall

// SetMapReduceLowerer installs the mapReduce engine adapter used by the
// lowering pass. Lowered programs capture the adapter's closures, so it
// must be installed once at init time, before any script is lowered.
func SetMapReduceLowerer(h func(mapRing, reduceRing *blocks.Ring) MRCall) {
	mapReduceHook = h
}

// primEntry is one table-driven operator: the tree primitive's exact
// logic over already-evaluated inputs, plus the selector its errors wrap
// with. cmd entries are command blocks: they push no value.
type primEntry struct {
	name string
	cmd  bool
	fn   func(args []value.Value) (value.Value, error)
}

func asList(v value.Value) (*value.List, error) {
	if l, ok := v.(*value.List); ok {
		return l, nil
	}
	return nil, fmt.Errorf("expecting a list but getting a %s", v.Kind())
}

func numBin(f func(a, b float64) float64) func(args []value.Value) (value.Value, error) {
	return func(args []value.Value) (value.Value, error) {
		a, err := value.ToNumber(args[0])
		if err != nil {
			return nil, err
		}
		b, err := value.ToNumber(args[1])
		if err != nil {
			return nil, err
		}
		return value.Num(f(float64(a), float64(b))), nil
	}
}

// Table indices are referenced by name from the lowering pass; the
// fnIndex maps selector -> (arity class, index).
var unaryTable = []primEntry{
	{name: "reportRound", fn: func(args []value.Value) (value.Value, error) {
		a, err := value.ToNumber(args[0])
		if err != nil {
			return nil, err
		}
		return value.Num(math.Round(float64(a))), nil
	}},
	{name: "reportNot", fn: func(args []value.Value) (value.Value, error) {
		a, err := value.ToBool(args[0])
		if err != nil {
			return nil, err
		}
		return value.BoolVal(bool(!a)), nil
	}},
	{name: "reportListLength", fn: func(args []value.Value) (value.Value, error) {
		l, err := asList(args[0])
		if err != nil {
			return nil, err
		}
		return value.Number(float64(l.Len())), nil
	}},
	{name: "reportStringSize", fn: func(args []value.Value) (value.Value, error) {
		return value.NumInt(len([]rune(args[0].String()))), nil
	}},
}

var binaryTable = []primEntry{
	{name: "reportSum", fn: numBin(func(a, b float64) float64 { return a + b })},
	{name: "reportDifference", fn: numBin(func(a, b float64) float64 { return a - b })},
	{name: "reportProduct", fn: numBin(func(a, b float64) float64 { return a * b })},
	{name: "reportQuotient", fn: func(args []value.Value) (value.Value, error) {
		a, err := value.ToNumber(args[0])
		if err != nil {
			return nil, err
		}
		b, err := value.ToNumber(args[1])
		if err != nil {
			return nil, err
		}
		if b == 0 {
			return nil, fmt.Errorf("division by zero")
		}
		return value.Num(float64(a / b)), nil
	}},
	{name: "reportModulus", fn: func(args []value.Value) (value.Value, error) {
		a, err := value.ToNumber(args[0])
		if err != nil {
			return nil, err
		}
		b, err := value.ToNumber(args[1])
		if err != nil {
			return nil, err
		}
		if b == 0 {
			return nil, fmt.Errorf("modulus by zero")
		}
		m := math.Mod(float64(a), float64(b))
		if m != 0 && (m < 0) != (float64(b) < 0) {
			m += float64(b)
		}
		return value.Num(m), nil
	}},
	{name: "reportMonadic", fn: func(args []value.Value) (value.Value, error) {
		fn := strings.ToLower(args[0].String())
		a, err := value.ToNumber(args[1])
		if err != nil {
			return nil, err
		}
		x := float64(a)
		var r float64
		switch fn {
		case "sqrt":
			if x < 0 {
				return nil, fmt.Errorf("square root of a negative number")
			}
			r = math.Sqrt(x)
		case "abs":
			r = math.Abs(x)
		case "floor":
			r = math.Floor(x)
		case "ceiling":
			r = math.Ceil(x)
		case "sin":
			r = math.Sin(x * math.Pi / 180)
		case "cos":
			r = math.Cos(x * math.Pi / 180)
		case "tan":
			r = math.Tan(x * math.Pi / 180)
		case "asin":
			r = math.Asin(x) * 180 / math.Pi
		case "acos":
			r = math.Acos(x) * 180 / math.Pi
		case "atan":
			r = math.Atan(x) * 180 / math.Pi
		case "ln":
			r = math.Log(x)
		case "log":
			r = math.Log10(x)
		case "e^":
			r = math.Exp(x)
		case "10^":
			r = math.Pow(10, x)
		default:
			return nil, fmt.Errorf("unknown function %q", fn)
		}
		return value.Num(r), nil
	}},
	{name: "reportLessThan", fn: func(args []value.Value) (value.Value, error) {
		lt, err := value.Less(args[0], args[1])
		if err != nil {
			return nil, err
		}
		return value.BoolVal(lt), nil
	}},
	{name: "reportGreaterThan", fn: func(args []value.Value) (value.Value, error) {
		gt, err := value.Greater(args[0], args[1])
		if err != nil {
			return nil, err
		}
		return value.BoolVal(gt), nil
	}},
	{name: "reportEquals", fn: func(args []value.Value) (value.Value, error) {
		return value.BoolVal(value.Equal(args[0], args[1])), nil
	}},
	{name: "reportAnd", fn: func(args []value.Value) (value.Value, error) {
		a, err := value.ToBool(args[0])
		if err != nil {
			return nil, err
		}
		b, err := value.ToBool(args[1])
		if err != nil {
			return nil, err
		}
		return value.BoolVal(bool(a && b)), nil
	}},
	{name: "reportOr", fn: func(args []value.Value) (value.Value, error) {
		a, err := value.ToBool(args[0])
		if err != nil {
			return nil, err
		}
		b, err := value.ToBool(args[1])
		if err != nil {
			return nil, err
		}
		return value.BoolVal(bool(a || b)), nil
	}},
	{name: "reportLetter", fn: func(args []value.Value) (value.Value, error) {
		i, err := value.ToInt(args[0])
		if err != nil {
			return nil, err
		}
		s := []rune(args[1].String())
		if i < 1 || i > len(s) {
			return value.Str(""), nil
		}
		return value.Str(string(s[i-1])), nil
	}},
	{name: "reportTextSplit", fn: func(args []value.Value) (value.Value, error) {
		text := args[0].String()
		delim := args[1].String()
		var parts []string
		switch delim {
		case "whitespace", " ":
			parts = strings.Fields(text)
		case "":
			for _, r := range text {
				parts = append(parts, string(r))
			}
		case "line":
			parts = strings.Split(text, "\n")
		default:
			parts = strings.Split(text, delim)
		}
		if err := checkListLen(len(parts)); err != nil {
			return nil, err
		}
		return value.FromStrings(parts), nil
	}},
	{name: "reportNumbers", fn: func(args []value.Value) (value.Value, error) {
		from, err := value.ToNumber(args[0])
		if err != nil {
			return nil, err
		}
		to, err := value.ToNumber(args[1])
		if err != nil {
			return nil, err
		}
		step := 1.0
		if from > to {
			step = -1
		}
		if err := interp.CheckNumbersBounds(float64(from), float64(to)); err != nil {
			return nil, err
		}
		return value.Range(float64(from), float64(to), step), nil
	}},
	{name: "reportListItem", fn: func(args []value.Value) (value.Value, error) {
		i, err := value.ToInt(args[0])
		if err != nil {
			return nil, err
		}
		l, err := asList(args[1])
		if err != nil {
			return nil, err
		}
		return l.Item(i)
	}},
	{name: "reportListContainsItem", fn: func(args []value.Value) (value.Value, error) {
		l, err := asList(args[0])
		if err != nil {
			return nil, err
		}
		return value.Bool(l.Contains(args[1])), nil
	}},
	{name: "doAddToList", cmd: true, fn: func(args []value.Value) (value.Value, error) {
		l, err := asList(args[1])
		if err != nil {
			return nil, err
		}
		if err := checkListLen(l.Len() + 1); err != nil {
			return nil, err
		}
		l.Add(args[0])
		return nil, nil
	}},
	{name: "doDeleteFromList", cmd: true, fn: func(args []value.Value) (value.Value, error) {
		l, err := asList(args[1])
		if err != nil {
			return nil, err
		}
		i, err := value.ToInt(args[0])
		if err != nil {
			return nil, err
		}
		return nil, l.DeleteAt(i)
	}},
}

var ternaryTable = []primEntry{
	{name: "reportIfElse", fn: func(args []value.Value) (value.Value, error) {
		cond, err := value.ToBool(args[0])
		if err != nil {
			return nil, err
		}
		if cond {
			return args[1], nil
		}
		return args[2], nil
	}},
	{name: "doInsertInList", cmd: true, fn: func(args []value.Value) (value.Value, error) {
		l, err := asList(args[2])
		if err != nil {
			return nil, err
		}
		i, err := value.ToInt(args[1])
		if err != nil {
			return nil, err
		}
		if err := checkListLen(l.Len() + 1); err != nil {
			return nil, err
		}
		return nil, l.InsertAt(i, args[0])
	}},
	{name: "doReplaceInList", cmd: true, fn: func(args []value.Value) (value.Value, error) {
		l, err := asList(args[1])
		if err != nil {
			return nil, err
		}
		i, err := value.ToInt(args[0])
		if err != nil {
			return nil, err
		}
		return nil, l.SetItem(i, args[2])
	}},
}

var variadicTable = []primEntry{
	{name: "reportJoinWords", fn: func(args []value.Value) (value.Value, error) {
		total := 0
		for _, v := range args {
			total += len(v.String())
		}
		if err := checkTextLen(total); err != nil {
			return nil, err
		}
		var b strings.Builder
		for _, v := range args {
			b.WriteString(v.String())
		}
		return value.Text(b.String()), nil
	}},
	{name: "reportNewList", fn: func(args []value.Value) (value.Value, error) {
		return value.NewList(args...), nil
	}},
}

// fnRef locates a selector in the operator tables.
type fnRef struct {
	code  Code // opUnary / opBinary / opTernary / opVariadic
	idx   int32
	arity int // fixed arity; -1 for variadic
	cmd   bool
}

var fnIndex = map[string]fnRef{}

// SwapBinaryOps builds a program mutator that rewrites every lowered
// binary op implementing selector `from` so it executes `to` instead — a
// deliberate, surgical VM bug for the stress engine's self-test (install
// with SetProgramMutator). ok is false when either selector is not a
// table-driven binary primitive.
func SwapBinaryOps(from, to string) (func(*Program), bool) {
	f, okf := fnIndex[from]
	t, okt := fnIndex[to]
	if !okf || !okt || f.code != opBinary || t.code != opBinary {
		return nil, false
	}
	return func(p *Program) {
		for i := range p.Ops {
			if p.Ops[i].Code == opBinary && p.Ops[i].A == f.idx {
				p.Ops[i].A = t.idx
			}
		}
	}, true
}

func init() {
	reg := func(code Code, arity int, tbl []primEntry) {
		for i, e := range tbl {
			fnIndex[e.name] = fnRef{code: code, idx: int32(i), arity: arity, cmd: e.cmd}
		}
	}
	reg(opUnary, 1, unaryTable)
	reg(opBinary, 2, binaryTable)
	reg(opTernary, 3, ternaryTable)
	reg(opVariadic, -1, variadicTable)
}
