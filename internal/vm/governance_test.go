// Governance under the bytecode machine: the cooperative contract —
// wall-clock deadlines, step budgets, and Kill — must hold exactly as it
// does for the tree-walker, including while a lowered loop is spinning and
// while an asynchronous mapReduce job is being polled from bytecode.
package vm_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/blocks"
	"repro/internal/interp"
	"repro/internal/value"
	"repro/internal/vm"
)

// foreverProject is a green-flag script that counts forever — entirely
// lowerable, so under vm.Enabled() the process runs on the bytecode
// machine with no tree splices.
func foreverProject() *blocks.Project {
	pr := blocks.NewProject("vm-governance")
	sp := blocks.NewSprite("S")
	sp.Variables["x"] = value.Number(0)
	sp.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.Forever(blocks.Body(
			blocks.ChangeVar("x", blocks.Num(1))))))
	pr.AddSprite(sp)
	return pr
}

func startForever(t *testing.T) *interp.Machine {
	t.Helper()
	vm.MemoReset()
	vm.SetEnabled(true)
	m := interp.NewMachine(foreverProject(), nil)
	if procs := m.GreenFlag(); len(procs) != 1 {
		t.Fatalf("GreenFlag started %d processes, want 1", len(procs))
	}
	return m
}

func TestVMDeadlineKillsForever(t *testing.T) {
	m := startForever(t)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := m.RunContext(ctx, interp.RunLimits{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if n := len(m.Processes()); n != 0 {
		t.Fatalf("%d processes alive after deadline kill", n)
	}
}

func TestVMStepBudget(t *testing.T) {
	m := startForever(t)
	err := m.RunContext(context.Background(), interp.RunLimits{MaxSteps: 5000})
	if !errors.Is(err, interp.ErrStepLimit) {
		t.Fatalf("err = %v, want ErrStepLimit", err)
	}
	if m.Steps() > 5000+int64(m.SliceOps) {
		t.Fatalf("steps = %d, want <= budget + one slice", m.Steps())
	}
	if n := len(m.Processes()); n != 0 {
		t.Fatalf("%d processes alive after budget kill", n)
	}
}

func TestVMKillMidLoop(t *testing.T) {
	m := startForever(t)
	procs := m.Processes()
	fired := false
	procs[0].OnDone = func(*interp.Process) { fired = true }
	if err := m.Run(5); !errors.Is(err, interp.ErrRoundLimit) {
		t.Fatalf("warm-up err = %v, want round limit", err)
	}
	m.Kill()
	if !fired {
		t.Fatal("OnDone hook did not fire on Kill")
	}
	if m.Step() {
		t.Fatal("machine still stepping after Kill")
	}
	if n := len(m.Processes()); n != 0 {
		t.Fatalf("%d processes alive after Kill", n)
	}
}

// TestVMKillDuringAsyncMapReduce spawns a mapReduce big enough for the
// polled engine path, steps once so the bytecode loop is parked on
// opMRPoll, then kills the machine. The worker goroutines must be
// abandoned cleanly: no hang, no touch of the dead process.
func TestVMKillDuringAsyncMapReduce(t *testing.T) {
	vm.MemoReset()
	vm.SetEnabled(true)
	pr := blocks.NewProject("vm-governance")
	sp := blocks.NewSprite("S")
	sp.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.Report(blocks.MapReduce(
			blocks.RingOf(blocks.ListOf(
				blocks.Modulus(blocks.Empty(), blocks.Num(5)), blocks.Num(1))),
			blocks.RingOf(blocks.LengthOf(blocks.Empty())),
			blocks.Numbers(blocks.Num(1), blocks.Num(500))))))
	pr.AddSprite(sp)
	m := interp.NewMachine(pr, nil)
	if procs := m.GreenFlag(); len(procs) != 1 {
		t.Fatalf("GreenFlag started %d processes, want 1", len(procs))
	}
	m.Step() // job started; the process yielded from opMRPoll (or finished)
	m.Kill()
	if m.Step() {
		t.Fatal("machine still stepping after Kill")
	}
	if n := len(m.Processes()); n != 0 {
		t.Fatalf("%d processes alive after Kill", n)
	}
}
