// FuzzLowerProject: the evo byte-genome generator (internal/evo/gen) feeds
// the same random — but deterministic and terminating — program to the
// tree-walker and the bytecode machine, and the two must agree on value,
// error string, stage snapshot, and trace. The generator leans on the
// lowerable statement set plus stage motion (which forces tree splices),
// inlined hofs, and mapReduce, so the fuzzer explores the lowering,
// folding, and fallback seams rather than just arithmetic.
//
// Seeds come from two places: a handful of fixed genomes, and every
// shrunk reproducer the evolutionary stress engine has ever persisted to
// internal/evo/corpus — a divergence found once by evolution stays a
// regression seed for the fuzzer forever.
package vm_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/evo/gen"
	"repro/internal/evo/oracle"
)

// corpusDir is where the stress engine persists shrunk divergences,
// relative to this package directory.
const corpusDir = "../evo/corpus"

// corpusSeeds loads every persisted reproducer genome; a missing corpus
// directory simply contributes no seeds.
func corpusSeeds(tb testing.TB) [][]byte {
	entries, err := os.ReadDir(corpusDir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		tb.Fatal(err)
	}
	var out [][]byte
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".bytes" {
			continue
		}
		b, err := os.ReadFile(filepath.Join(corpusDir, e.Name()))
		if err != nil {
			tb.Fatal(err)
		}
		out = append(out, b)
	}
	return out
}

func FuzzLowerProject(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("hello fuzzer"))
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0xff})
	for _, g := range gen.Seeds() {
		f.Add([]byte(g))
	}
	for _, b := range corpusSeeds(f) {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			t.Skip("bounded input")
		}
		oracle.AssertSame(t, gen.Script(gen.Genome(data)))
	})
}

// TestCorpusReproducers replays every persisted reproducer through the
// tree/vm oracle as a plain test, independent of the fuzz harness: the
// corpus is the regression suite the stress engine writes for us, and a
// failure here names the offending genome directly.
func TestCorpusReproducers(t *testing.T) {
	for _, b := range corpusSeeds(t) {
		b := b
		t.Run(gen.Genome(b).String(), func(t *testing.T) {
			oracle.AssertSame(t, gen.Script(gen.Genome(b)))
		})
	}
}
