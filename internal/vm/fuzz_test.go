// FuzzLowerProject: a byte-driven script generator feeds the same random —
// but deterministic and terminating — program to the tree-walker and the
// bytecode machine, and the two must agree on value, error string, and
// stage snapshot. The generator leans on the lowerable statement set plus
// stage motion (which forces tree splices), so the fuzzer explores the
// lowering, folding, and fallback seams rather than just arithmetic.
package vm_test

import (
	"strings"
	"testing"

	"repro/internal/blocks"
)

// fuzzGen decodes a byte string into a bounded script. Out-of-data reads
// return zero, so every input decodes to something; the node budget bounds
// script size and the loop shapes are all finitely bounded, so every
// generated program terminates.
type fuzzGen struct {
	data  []byte
	pos   int
	nodes int
}

func (g *fuzzGen) next() byte {
	if g.pos >= len(g.data) {
		return 0
	}
	b := g.data[g.pos]
	g.pos++
	return b
}

var fuzzVars = []string{"a", "b", "c"}

func (g *fuzzGen) varName() string { return fuzzVars[int(g.next())%len(fuzzVars)] }

func (g *fuzzGen) expr(depth int) blocks.Node {
	g.nodes++
	if depth <= 0 || g.nodes > 64 {
		switch g.next() % 4 {
		case 0:
			return blocks.Num(float64(int8(g.next())))
		case 1:
			return blocks.Txt(string(rune('a' + g.next()%5)))
		case 2:
			return blocks.Var(g.varName())
		default:
			return blocks.BoolLit(g.next()%2 == 0)
		}
	}
	switch g.next() % 14 {
	case 0:
		return blocks.Sum(g.expr(depth-1), g.expr(depth-1))
	case 1:
		return blocks.Difference(g.expr(depth-1), g.expr(depth-1))
	case 2:
		return blocks.Product(g.expr(depth-1), g.expr(depth-1))
	case 3:
		return blocks.Quotient(g.expr(depth-1), g.expr(depth-1))
	case 4:
		return blocks.Modulus(g.expr(depth-1), g.expr(depth-1))
	case 5:
		return blocks.LessThan(g.expr(depth-1), g.expr(depth-1))
	case 6:
		return blocks.Not(g.expr(depth - 1))
	case 7:
		return blocks.Ternary(g.expr(depth-1), g.expr(depth-1), g.expr(depth-1))
	case 8:
		return blocks.Join(g.expr(depth-1), g.expr(depth-1))
	case 9:
		return blocks.Numbers(blocks.Num(1), blocks.Num(float64(g.next()%6)))
	case 10:
		return blocks.LengthOf(g.expr(depth - 1))
	case 11:
		return blocks.Map(
			blocks.RingOf(blocks.Sum(blocks.Empty(), g.expr(depth-1))),
			blocks.Numbers(blocks.Num(1), blocks.Num(float64(1+g.next()%5))))
	case 12:
		return blocks.Combine(
			blocks.Numbers(blocks.Num(1), blocks.Num(float64(1+g.next()%6))),
			blocks.RingOf(blocks.Sum(blocks.Empty(), blocks.Empty())))
	default:
		return blocks.MapReduce(
			blocks.RingOf(blocks.ListOf(
				blocks.Modulus(blocks.Empty(), blocks.Num(float64(2+g.next()%3))),
				blocks.Num(1))),
			blocks.RingOf(blocks.LengthOf(blocks.Empty())),
			blocks.Numbers(blocks.Num(1), blocks.Num(float64(g.next()%8))))
	}
}

func (g *fuzzGen) body(n int) blocks.Node {
	var bs []*blocks.Block
	for i := 0; i < n; i++ {
		bs = append(bs, g.stmt())
	}
	return blocks.ScriptNode{Script: blocks.NewScript(bs...)}
}

func (g *fuzzGen) stmt() *blocks.Block {
	g.nodes++
	if g.nodes > 64 {
		return blocks.SetVar(g.varName(), blocks.Num(0))
	}
	switch g.next() % 10 {
	case 0:
		return blocks.SetVar(g.varName(), g.expr(2))
	case 1:
		return blocks.ChangeVar(g.varName(), g.expr(2))
	case 2:
		return blocks.If(g.expr(2), g.body(1+int(g.next()%2)))
	case 3:
		return blocks.IfElse(g.expr(1), g.body(1), g.body(1))
	case 4:
		return blocks.Repeat(blocks.Num(float64(g.next()%4)), g.body(1+int(g.next()%2)))
	case 5:
		return blocks.For(g.varName(), blocks.Num(1),
			blocks.Num(float64(g.next()%5)), g.body(1))
	case 6:
		return blocks.ForEach(g.varName(),
			blocks.Numbers(blocks.Num(1), blocks.Num(float64(g.next()%4))),
			g.body(1))
	case 7:
		return blocks.Warp(g.body(1 + int(g.next()%2)))
	case 8:
		// Not lowerable: forces a tree splice in the middle of bytecode.
		return blocks.Forward(blocks.Num(float64(int8(g.next()))))
	default:
		return blocks.TurnRight(blocks.Num(float64(int8(g.next()))))
	}
}

// scriptFromBytes decodes data into a script: declared variables, a
// bounded run of statements, and a final report of one expression.
func scriptFromBytes(data []byte) *blocks.Script {
	g := &fuzzGen{data: data}
	bs := []*blocks.Block{
		blocks.DeclareLocal(fuzzVars...),
		blocks.SetVar("a", blocks.Num(1)),
		blocks.SetVar("b", blocks.Num(2)),
		blocks.SetVar("c", blocks.Txt("x")),
	}
	for n := int(g.next() % 6); n > 0; n-- {
		bs = append(bs, g.stmt())
	}
	bs = append(bs, blocks.Report(g.expr(3)))
	return blocks.NewScript(bs...)
}

func FuzzLowerProject(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte("hello fuzzer"))
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0xff})
	f.Add([]byte{4, 8, 2, 13, 3, 9, 5, 7, 12, 1, 0, 6, 11, 10, 4, 8})
	f.Add([]byte{5, 4, 4, 4, 4, 7, 7, 8, 9, 13, 13, 13, 2, 2, 2, 255, 128, 64})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			t.Skip("bounded input")
		}
		script := scriptFromBytes(data)
		tv, terr, tm := runEngine(t, script, false)
		bv, berr, bm := runEngine(t, script, true)
		if ts, bs := errString(terr), errString(berr); ts != bs {
			t.Fatalf("error mismatch on %s:\n tree: %s\n   vm: %s",
				script.Describe(), ts, bs)
		}
		if ts, bs := valString(tv), valString(bv); ts != bs {
			t.Fatalf("value mismatch on %s:\n tree: %s\n   vm: %s",
				script.Describe(), ts, bs)
		}
		tsnap := strings.Join(tm.Stage.Snapshot(), "\n")
		bsnap := strings.Join(bm.Stage.Snapshot(), "\n")
		if tsnap != bsnap {
			t.Fatalf("stage mismatch on %s:\n tree:\n%s\n vm:\n%s",
				script.Describe(), tsnap, bsnap)
		}
	})
}
