package vm

import (
	"fmt"
	"sync"

	"repro/internal/blocks"
	"repro/internal/interp"
	"repro/internal/value"
)

// ctrlEntry is one slot of the control stack: a loop counter, a wait
// countdown, or an inlined higher-order call in flight.
type ctrlEntry struct {
	list    *value.List
	out     *value.List
	args    [2]value.Value // hof call arguments; args[0] doubles as combine's accumulator
	name    string
	idx     int
	rem     int                               // doWait timesteps left
	poll    func() (value.Value, bool, error) // opMRPoll in-flight engine job
	n       float64                           // doRepeat remaining count
	i, to   float64                           // doFor bounds
	step    float64
	nargs   int
	started bool
}

// run executes one Program on behalf of one Process. It implements
// interp.Exec: the machine's scheduler calls Step exactly as it would run
// a tree-walking slice, and governance (budgets, deadlines, Kill) flows
// through the same Process state.
type run struct {
	prog  *Program
	frame *interp.Frame
	pc    int

	stack []value.Value
	ctrl  []ctrlEntry
	fsave []*interp.Frame

	halted        bool
	splicing      bool
	spliceDiscard bool

	scratch [3]value.Value

	// Metric deltas batched per slice and flushed on Step return.
	mOps, mYields, mTree int64

	// Inline storage sized for the common shallow script: deeper programs
	// spill to the heap via append. Kept small on purpose — the whole run
	// struct is one allocation per process and zeroing it is on the
	// spawn path.
	stack0 [8]value.Value
	ctrl0  [2]ctrlEntry
	fsave0 [2]*interp.Frame
}

// runPool recycles run structs: the struct is one ~0.5KiB pointer-dense
// allocation per spawned process, and eval-style servers spawn one
// process per request. A run returns to the pool the moment it halts
// (release detaches it from its process first, so no live reference
// remains).
var runPool = sync.Pool{New: func() any { return new(run) }}

func newRun(prog *Program, p *interp.Process) *run {
	r := runPool.Get().(*run)
	r.prog = prog
	r.frame = p.RootFrame()
	r.stack = r.stack0[:0]
	r.ctrl = r.ctrl0[:0]
	r.fsave = r.fsave0[:0]
	return r
}

// release detaches the halted run from its finished process and recycles
// it. The process keeps reporting Done through its nil context, and the
// cleared struct drops every value reference the run pinned.
func (r *run) release(p *interp.Process) {
	p.DetachExec()
	*r = run{}
	runPool.Put(r)
}

func (r *run) Done() bool { return r.halted }

func (r *run) push(v value.Value) { r.stack = append(r.stack, v) }

func (r *run) pop() value.Value {
	v := r.stack[len(r.stack)-1]
	r.stack = r.stack[:len(r.stack)-1]
	return v
}

func (r *run) pushFrame() {
	r.fsave = append(r.fsave, r.frame)
	r.frame = interp.NewFrame(r.frame)
}

func (r *run) popFrame() {
	r.frame = r.fsave[len(r.fsave)-1]
	r.fsave = r.fsave[:len(r.fsave)-1]
}

func wrap(name string, err error) error { return fmt.Errorf("%s: %w", name, err) }

// Step runs at most maxOps bytecode operations (0 = unlimited), honoring
// the cooperative contract: a pending yield outside warp hands the thread
// back, exactly like the tree-walker's slice loop. The return value is
// the ops consumed — the unit machine step budgets count.
func (r *run) Step(p *interp.Process, maxOps int) int {
	ops := 0
	for {
		if r.halted || p.Stopped() || p.Err() != nil {
			r.halted = true
			break
		}
		if p.YieldPending() {
			if !p.Warped() {
				r.mYields++
				break
			}
			p.ClearYield()
		}
		if maxOps > 0 && ops >= maxOps {
			break
		}
		if r.splicing {
			budget := 0
			if maxOps > 0 {
				budget = maxOps - ops
			}
			v, n, done, escaped := p.StepSplice(budget)
			ops += n
			if !done {
				continue // loop top decides: yield out or budget out
			}
			r.splicing = false
			if escaped {
				r.halted = true
				break
			}
			if !r.spliceDiscard {
				r.push(v)
			}
			continue
		}
		op := r.prog.Ops[r.pc]
		r.pc++
		ops++
		if err := r.exec1(p, op); err != nil {
			p.Fail(err)
			r.halted = true
			break
		}
	}
	r.mOps += int64(ops)
	r.flush()
	if r.halted {
		r.release(p)
	}
	return ops
}

func (r *run) flush() {
	if enabledMetrics() && (r.mOps != 0 || r.mYields != 0 || r.mTree != 0) {
		mOps.Add(r.mOps)
		mYields.Add(r.mYields)
		mTreeCalls.Add(r.mTree)
	}
	r.mOps, r.mYields, r.mTree = 0, 0, 0
}

func (r *run) exec1(p *interp.Process, op Op) error {
	switch op.Code {
	case opConst:
		r.push(r.prog.Consts[op.A])

	case opConstList:
		r.push(r.prog.Consts[op.A].(*value.List).Clone())

	case opNothing:
		r.push(value.TheNothing)

	case opPop:
		r.stack = r.stack[:len(r.stack)-1]

	case opVarGet:
		v, err := r.frame.Get(r.prog.Names[op.A])
		if err != nil {
			return err // not wrapped: tree VarGet errors propagate raw
		}
		r.push(v)

	case opMakeRing:
		r.push(p.Reify(r.prog.RingTemplates[op.A], r.frame))

	case opMakeScrip:
		r.push(&blocks.Ring{Body: r.prog.Scripts[op.A], Env: r.frame})

	case opHofArg:
		c := &r.ctrl[op.A]
		switch {
		case c.nargs == 1:
			r.push(c.args[0])
		case int(op.B) < c.nargs:
			r.push(c.args[op.B])
		default:
			r.push(value.TheNothing)
		}

	case opPushFrame:
		r.pushFrame()

	case opPopFrame:
		r.popFrame()

	case opDeclare:
		n := int(op.B)
		base := len(r.stack) - n
		for _, v := range r.stack[base:] {
			r.frame.Declare(v.String(), value.Nothing{})
		}
		r.stack = r.stack[:base]

	case opSetVar:
		v := r.pop()
		name := r.pop()
		if err := r.frame.Set(name.String(), v); err != nil {
			return wrap("doSetVar", err)
		}

	case opChangeVar:
		d := r.pop()
		name := r.pop()
		ns := name.String()
		cur, err := r.frame.Get(ns)
		if err != nil {
			return wrap("doChangeVar", err)
		}
		n, err := value.ToNumber(cur)
		if err != nil {
			return wrap("doChangeVar", err)
		}
		delta, err := value.ToNumber(d)
		if err != nil {
			return wrap("doChangeVar", err)
		}
		if err := r.frame.Set(ns, value.Num(float64(n+delta))); err != nil {
			return wrap("doChangeVar", err)
		}

	case opJump:
		r.pc = int(op.A)

	case opJumpFalse:
		cond, err := value.ToBool(r.pop())
		if err != nil {
			return wrap(r.prog.Names[op.B], err)
		}
		if !cond {
			r.pc = int(op.A)
		}

	case opJumpTrue:
		cond, err := value.ToBool(r.pop())
		if err != nil {
			return wrap(r.prog.Names[op.B], err)
		}
		if cond {
			r.pc = int(op.A)
		}

	case opYield:
		p.RequestYield()

	case opReport:
		p.ReportResult(r.pop())
		r.halted = true

	case opStop:
		p.Stop()
		r.halted = true

	case opHalt:
		r.halted = true

	case opEnterWarp:
		p.EnterWarp()

	case opExitWarp:
		p.ExitWarp()

	case opRepeatInit:
		n, err := value.ToNumber(r.pop())
		if err != nil {
			return wrap("doRepeat", err)
		}
		if float64(n) < 1 {
			r.pc = int(op.A)
		} else {
			r.ctrl = append(r.ctrl, ctrlEntry{n: float64(n)})
		}

	case opRepeatNext:
		c := &r.ctrl[len(r.ctrl)-1]
		c.n--
		if c.n >= 1 {
			r.pc = int(op.A)
		} else {
			r.ctrl = r.ctrl[:len(r.ctrl)-1]
		}

	case opWaitInit:
		n, err := value.ToNumber(r.pop())
		if err != nil {
			return wrap("doWait", err)
		}
		if n <= 0 {
			r.pc = int(op.A)
		} else {
			r.ctrl = append(r.ctrl, ctrlEntry{rem: int(n)})
		}

	case opWaitTick:
		c := &r.ctrl[len(r.ctrl)-1]
		if c.rem <= 0 {
			r.ctrl = r.ctrl[:len(r.ctrl)-1]
			r.pc = int(op.A)
		} else {
			c.rem--
			p.MarkWaitConsumed()
			p.RequestYield()
		}

	case opForInit:
		to := r.pop()
		from := r.pop()
		name := r.pop()
		fv, err := value.ToNumber(from)
		if err != nil {
			return wrap("doFor", err)
		}
		tv, err := value.ToNumber(to)
		if err != nil {
			return wrap("doFor", err)
		}
		step := 1.0
		if fv > tv {
			step = -1
		}
		r.pushFrame()
		ns := name.String()
		r.frame.Declare(ns, value.Num(float64(fv)))
		r.ctrl = append(r.ctrl, ctrlEntry{i: float64(fv), to: float64(tv), step: step, name: ns})

	case opForNext:
		c := &r.ctrl[len(r.ctrl)-1]
		if (c.step > 0 && c.i > c.to) || (c.step < 0 && c.i < c.to) {
			r.ctrl = r.ctrl[:len(r.ctrl)-1]
			r.popFrame()
			r.pc = int(op.A)
		} else {
			r.frame.Declare(c.name, value.Num(c.i))
			c.i += c.step
		}

	case opForEachInit:
		lv := r.pop()
		name := r.pop()
		l, err := asList(lv)
		if err != nil {
			return wrap("doForEach", err)
		}
		r.ctrl = append(r.ctrl, ctrlEntry{list: l, name: name.String()})

	case opForEachNext:
		c := &r.ctrl[len(r.ctrl)-1]
		if c.idx >= c.list.Len() {
			r.ctrl = r.ctrl[:len(r.ctrl)-1]
			r.pc = int(op.A)
		} else {
			item := c.list.MustItem(c.idx + 1)
			c.idx++
			r.pushFrame()
			r.frame.Declare(c.name, item)
		}

	case opMapInit:
		l, err := asList(r.pop())
		if err != nil {
			return wrap("reportMap", err)
		}
		r.ctrl = append(r.ctrl, ctrlEntry{list: l, out: value.NewListCap(l.Len()), nargs: 1})

	case opMapNext:
		c := &r.ctrl[len(r.ctrl)-1]
		if c.started {
			c.out.Add(r.pop())
		}
		if c.idx >= c.list.Len() {
			out := c.out
			r.ctrl = r.ctrl[:len(r.ctrl)-1]
			r.push(out)
			r.pc = int(op.A)
		} else {
			c.args[0] = c.list.MustItem(c.idx + 1)
			c.idx++
			c.started = true
		}

	case opKeepInit:
		l, err := asList(r.pop())
		if err != nil {
			return wrap("reportKeep", err)
		}
		r.ctrl = append(r.ctrl, ctrlEntry{list: l, out: value.NewList(), nargs: 1})

	case opKeepNext:
		c := &r.ctrl[len(r.ctrl)-1]
		if c.started {
			keep, err := value.ToBool(r.pop())
			if err != nil {
				return wrap("reportKeep", err)
			}
			if keep {
				c.out.Add(c.list.MustItem(c.idx))
			}
		}
		if c.idx >= c.list.Len() {
			out := c.out
			r.ctrl = r.ctrl[:len(r.ctrl)-1]
			r.push(out)
			r.pc = int(op.A)
		} else {
			c.args[0] = c.list.MustItem(c.idx + 1)
			c.idx++
			c.started = true
		}

	case opCombineInit:
		l, err := asList(r.pop())
		if err != nil {
			return wrap("reportCombine", err)
		}
		e := ctrlEntry{list: l, nargs: 2}
		if l.Len() > 0 {
			e.args[0] = l.MustItem(1)
			e.idx = 1
		}
		r.ctrl = append(r.ctrl, e)

	case opCombineNext:
		c := &r.ctrl[len(r.ctrl)-1]
		// The tree checks emptiness on every entry, before folding.
		if c.list.Len() == 0 {
			r.ctrl = r.ctrl[:len(r.ctrl)-1]
			r.push(value.Number(0))
			r.pc = int(op.A)
			break
		}
		if c.started {
			c.args[0] = r.pop()
		}
		if c.idx >= c.list.Len() {
			acc := c.args[0]
			r.ctrl = r.ctrl[:len(r.ctrl)-1]
			r.push(acc)
			r.pc = int(op.A)
		} else {
			c.args[1] = c.list.MustItem(c.idx + 1)
			c.idx++
			c.started = true
		}

	case opHofParams:
		c := &r.ctrl[op.A]
		meta := r.prog.Metas[op.B]
		r.pushFrame()
		for i, name := range meta.params {
			if i < c.nargs {
				r.frame.Declare(name, c.args[i])
			} else {
				r.frame.Declare(name, value.Nothing{})
			}
		}

	case opUnary:
		e := &unaryTable[op.A]
		r.scratch[0] = r.pop()
		v, err := e.fn(r.scratch[:1])
		if err != nil {
			return wrap(e.name, err)
		}
		r.push(v)

	case opBinary:
		e := &binaryTable[op.A]
		r.scratch[1] = r.pop()
		r.scratch[0] = r.pop()
		v, err := e.fn(r.scratch[:2])
		if err != nil {
			return wrap(e.name, err)
		}
		if !e.cmd {
			r.push(v)
		}

	case opTernary:
		e := &ternaryTable[op.A]
		r.scratch[2] = r.pop()
		r.scratch[1] = r.pop()
		r.scratch[0] = r.pop()
		v, err := e.fn(r.scratch[:3])
		if err != nil {
			return wrap(e.name, err)
		}
		if !e.cmd {
			r.push(v)
		}

	case opVariadic:
		e := &variadicTable[op.A]
		n := int(op.B)
		base := len(r.stack) - n
		v, err := e.fn(r.stack[base:])
		r.stack = r.stack[:base]
		if err != nil {
			return wrap(e.name, err)
		}
		if !e.cmd {
			r.push(v)
		}

	case opCallTree:
		r.mTree++
		p.BeginSplice(r.prog.Nodes[op.A], r.frame)
		r.splicing = true
		r.spliceDiscard = op.B == 1

	case opMRBegin:
		v, poll, err := r.prog.MRCalls[op.A](p, r.pop())
		if err != nil {
			// The tree evaluator prefixes primitive failures with the
			// block op; match its words exactly.
			return wrap("reportMapReduce", err)
		}
		if poll == nil {
			r.push(v)
			r.pc = int(op.B)
		} else {
			r.ctrl = append(r.ctrl, ctrlEntry{poll: poll})
		}

	case opMRPoll:
		c := &r.ctrl[len(r.ctrl)-1]
		v, resolved, err := c.poll()
		if err != nil {
			r.ctrl = r.ctrl[:len(r.ctrl)-1]
			return wrap("reportMapReduce", err)
		}
		if resolved {
			r.ctrl = r.ctrl[:len(r.ctrl)-1]
			r.push(v)
			r.pc = int(op.A)
		} else {
			// One poll per scheduler round, like the tree primitive's
			// PushYield/Again loop (the Step loop honors warp).
			p.RequestYield()
		}

	default:
		return fmt.Errorf("vm: invalid opcode %d", op.Code)
	}
	return nil
}

func checkListLen(n int) error { return interp.CheckListLen(n) }
func checkTextLen(n int) error { return interp.CheckTextLen(n) }
