package codegen

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/blocks"
)

func TestGoParallelMapProgramShape(t *testing.T) {
	src, err := GoParallelMapProgram(times10MapBlock(), []float64{3, 7, 8}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"package main",
		"var in = []float64{3, 7, 8}",
		"return (x * 10)",
		"go func() {",
		"var wg sync.WaitGroup",
		"close(jobs)",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q", want)
		}
	}
	if _, err := GoParallelMapProgram(blocks.Sum(blocks.Num(1), blocks.Num(1)), nil, 4); err == nil {
		t.Error("non-parallelMap block should error")
	}
}

// TestGoParallelMapProgramRuns generates Go from the block and runs it
// with the host toolchain: blocks → Go source → go run → 30/70/80.
func TestGoParallelMapProgramRuns(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("no go toolchain on host")
	}
	src, err := GoParallelMapProgram(times10MapBlock(), []float64{3, 7, 8}, 4)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	file := filepath.Join(dir, "main.go")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(goBin, "run", file)
	cmd.Env = append(os.Environ(), "GOFLAGS=", "GO111MODULE=off")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run failed: %v\n%s\n--- source ---\n%s", err, out, src)
	}
	for _, want := range []string{"30", "70", "80"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output %q missing %s", out, want)
		}
	}
}
