package codegen

import (
	"strings"
	"testing"

	"repro/internal/blocks"
	"repro/internal/value"
)

// Edge-path tests complementing the main codegen suite.

func TestCTypeStrings(t *testing.T) {
	cases := map[CType]string{
		CInt:         "int",
		CDouble:      "double",
		CBool:        "int",
		CCharPtr:     "char *",
		CIntArray:    "int[]",
		CDoubleArray: "double[]",
		CListPtr:     "node_t *",
		CUnknown:     "/*unknown*/ double",
	}
	for ty, want := range cases {
		if got := ty.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(ty), got, want)
		}
	}
}

func TestCSetVarStateless(t *testing.T) {
	// The bare CLang (no emitter) assigns without declaring.
	tr := New(CLang())
	stmt, err := tr.Stmt(blocks.SetVar("x", blocks.Num(5)), 1)
	if err != nil || stmt != "    x = 5;" {
		t.Errorf("stateless setvar = %q, %v", stmt, err)
	}
	if _, err := tr.Stmt(blocks.NewBlock("doSetVar",
		blocks.Reporter(blocks.Sum(blocks.Num(1), blocks.Num(1))), blocks.Num(5)), 0); err == nil {
		t.Error("non-name target should error")
	}
}

func TestCMonadicAllFunctions(t *testing.T) {
	tr := New(CLang())
	cases := map[string]string{
		"sqrt":    "sqrt(x)",
		"abs":     "fabs(x)",
		"floor":   "floor(x)",
		"ceiling": "ceil(x)",
		"ln":      "log(x)",
		"log":     "log10(x)",
		"sin":     "sin((x) * M_PI / 180)",
		"cos":     "cos((x) * M_PI / 180)",
		"tan":     "tan((x) * M_PI / 180)",
	}
	for fn, want := range cases {
		got, err := tr.Expr(blocks.Reporter(blocks.Monadic(fn, blocks.Var("x"))))
		if err != nil || got != want {
			t.Errorf("monadic %s = %q, %v; want %q", fn, got, err, want)
		}
	}
}

func TestLiteralEdgeCases(t *testing.T) {
	tr := New(CLang())
	// Boolean literals.
	if got, _ := tr.Expr(blocks.BoolLit(true)); got != "1" {
		t.Errorf("true = %q", got)
	}
	if got, _ := tr.Expr(blocks.BoolLit(false)); got != "0" {
		t.Errorf("false = %q", got)
	}
	// List literal (as a value, not a reportNewList block).
	got, err := tr.Expr(blocks.Lit(value.NewList(value.Number(1), value.Number(2))))
	if err != nil || got != "{1, 2}" {
		t.Errorf("list literal = %q, %v", got, err)
	}
	// Lists of non-translatable values error.
	if _, err := tr.Expr(blocks.Lit(value.NewList(&value.Opaque{Tag: "x"}))); err == nil {
		t.Error("opaque in list literal should error")
	}
	if _, err := tr.Expr(blocks.Lit(&value.Opaque{Tag: "x"})); err == nil {
		t.Error("opaque literal should error")
	}
	// JS quotes strings with escapes.
	jt := New(JSLang())
	if got, _ := jt.Expr(blocks.Txt(`say "hi"`)); got != `"say \"hi\""` {
		t.Errorf("js quote = %q", got)
	}
}

func TestRingExprInline(t *testing.T) {
	// A bare ring in expression position translates to its body with
	// parameters as implicits.
	tr := New(CLang())
	got, err := tr.Expr(blocks.RingOf(blocks.Sum(blocks.Var("k"), blocks.Num(1)), "k"))
	if err != nil || got != "(k + 1)" {
		t.Errorf("ring expr = %q, %v", got, err)
	}
	// A command ring cannot be an expression.
	if _, err := tr.Expr(blocks.RingScript(blocks.NewScript(blocks.Stop()))); err == nil {
		t.Error("command ring as expression should error")
	}
	// Nil input cannot be translated.
	if _, err := tr.Expr(nil); err == nil {
		t.Error("nil node should error")
	}
}

func TestMultipleImplicits(t *testing.T) {
	// Two empty slots with two implicit names bind positionally; extra
	// empties clamp to the last name.
	tr := New(CLang()).WithImplicits("a", "b")
	got, err := tr.Expr(blocks.Reporter(blocks.Sum(blocks.Empty(), blocks.Empty())))
	if err != nil || got != "(a + b)" {
		t.Errorf("two implicits = %q, %v", got, err)
	}
	tr = New(CLang()).WithImplicits("a", "b")
	got, _ = tr.Expr(blocks.Reporter(blocks.Sum(blocks.Empty(),
		blocks.Reporter(blocks.Sum(blocks.Empty(), blocks.Empty())))))
	if got != "(a + (b + b))" {
		t.Errorf("exhausted implicits = %q", got)
	}
}

func TestBodyOfVariants(t *testing.T) {
	tr := New(CLang())
	// RingNode with a script body is accepted as a C-slot.
	body, err := tr.BodyOf(blocks.RingScript(blocks.NewScript(
		blocks.ChangeVar("x", blocks.Num(1)))), 0)
	if err != nil || !strings.Contains(body, "x += 1;") {
		t.Errorf("ring body = %q, %v", body, err)
	}
	// Empty slot body is an empty body.
	body, err = tr.BodyOf(blocks.Empty(), 0)
	if err != nil || body != "" {
		t.Errorf("empty body = %q, %v", body, err)
	}
	// Ring with a reporter body is not a script body.
	if _, err := tr.BodyOf(blocks.RingOf(blocks.Num(1)), 0); err == nil {
		t.Error("reporter ring body should error")
	}
	// A plain literal is not a body.
	if _, err := tr.BodyOf(blocks.Num(1), 0); err == nil {
		t.Error("literal body should error")
	}
}

func TestScanDetectsIncludes(t *testing.T) {
	// Monadic inside a ring inside an if: scan must find math.h.
	e := NewCEmitter()
	src, err := e.Program(blocks.NewScript(
		blocks.SetVar("x", blocks.Num(2)),
		blocks.If(blocks.GreaterThan(blocks.Var("x"), blocks.Num(0)), blocks.Body(
			blocks.SetVar("x", blocks.Reporter(blocks.Monadic("sqrt", blocks.Var("x")))))),
		blocks.Wait(blocks.Num(1)),
	))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "#include <math.h>") {
		t.Error("math.h missing")
	}
	if !strings.Contains(src, "#include <unistd.h>") {
		t.Error("unistd.h missing (doWait → sleep)")
	}
}

func TestIsEmptyListLiteralPaths(t *testing.T) {
	if !isEmptyListLiteral(blocks.ListOf()) {
		t.Error("empty reportNewList")
	}
	if isEmptyListLiteral(blocks.ListOf(blocks.Num(1))) {
		t.Error("non-empty reportNewList")
	}
	if !isEmptyListLiteral(blocks.Lit(value.NewList())) {
		t.Error("empty list literal")
	}
	if isEmptyListLiteral(blocks.Num(1)) {
		t.Error("number is not a list")
	}
}

func TestPythonParallelMapIdiom(t *testing.T) {
	got, err := New(PythonLang()).Expr(blocks.ParallelMap(
		blocks.RingOf(blocks.Product(blocks.Empty(), blocks.Num(2))),
		blocks.Var("data"), blocks.Empty()))
	if err != nil {
		t.Fatal(err)
	}
	if got != "multiprocessing.Pool().map(lambda x: (x * 2), data)" {
		t.Errorf("python parallelMap = %q", got)
	}
}

func TestPythonForEachStatement(t *testing.T) {
	tr := New(PythonLang())
	src, err := tr.Stmt(blocks.ForEach("w", blocks.Var("words"),
		blocks.Body(blocks.Say(blocks.Var("w")))), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "for w in words:") || !strings.Contains(src, "    print(w)") {
		t.Errorf("python forEach = %q", src)
	}
}

func TestUnmappedStatementErrors(t *testing.T) {
	tr := New(GoLang())
	if _, err := tr.Stmt(blocks.Broadcast(blocks.Txt("x")), 0); err == nil {
		t.Error("unmapped statement should error")
	}
	if _, err := tr.Script(blocks.NewScript(blocks.Broadcast(blocks.Txt("x"))), 0); err == nil {
		t.Error("script with unmapped statement should error")
	}
}

func TestFillBadPlaceholders(t *testing.T) {
	// A malformed body placeholder index is a translator bug surfaced
	// as an error, not a panic.
	lang := CLang()
	lang.Stmt["zorp"] = "<&x>"
	tr := New(lang)
	if _, err := tr.Stmt(blocks.NewBlock("zorp", blocks.Body()), 0); err == nil {
		t.Error("bad body placeholder should error")
	}
}
