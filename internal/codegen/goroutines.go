package codegen

import (
	"fmt"

	"repro/internal/blocks"
)

// GoParallelMapProgram translates a parallelMap block into a standalone Go
// program: the ring becomes a function, the worker pool becomes goroutines
// draining a shared channel — the §6 code-mapping pipeline pointed at the
// language this reproduction is written in, demonstrating the paper's
// closing claim that "this same approach can be used to generate the
// back-end code for any target system."
func GoParallelMapProgram(b *blocks.Block, data []float64, workers int) (string, error) {
	expr, err := goMapFunction(b)
	if err != nil {
		return "", err
	}
	if workers < 1 {
		workers = 4
	}
	return fmt.Sprintf(`// Go translation of the Snap! parallelMap block.
package main

import (
	"fmt"
	"sync"
)

var in = []float64{%s}

const workers = %d

func f(x float64) float64 {
	return %s
}

func main() {
	out := make([]float64, len(in))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = f(in[i])
			}
		}()
	}
	for i := range in {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, v := range out {
		fmt.Println(v)
	}
}
`, cDataArray(data), workers, expr), nil
}

func goMapFunction(b *blocks.Block) (string, error) {
	if b.Op != "reportParallelMap" {
		return "", fmt.Errorf("expected a parallelMap block, got %q", b.Op)
	}
	ring, ok := b.Input(0).(blocks.RingNode)
	if !ok {
		return "", fmt.Errorf("parallelMap's first input must be a ring")
	}
	body, ok := ring.Body.(blocks.Node)
	if !ok {
		return "", fmt.Errorf("parallelMap ring must be a reporter")
	}
	var node blocks.Node = body
	if len(ring.Params) == 1 {
		node = renameVar(body, ring.Params[0])
	}
	return New(GoLang()).WithImplicits("x").Expr(node)
}
