package codegen

import (
	"strings"
	"testing"

	"repro/internal/blocks"
)

// parallelSquares is a script using the §3.3 block: for each x of a list,
// print x² — translated to an OpenMP parallel-for.
func parallelSquares(parallel bool) *blocks.Script {
	body := blocks.Body(blocks.Say(blocks.Product(blocks.Var("x"), blocks.Var("x"))))
	var fe *blocks.Block
	if parallel {
		fe = blocks.ParallelForEach("x", blocks.Var("data"), blocks.Empty(), body)
	} else {
		fe = blocks.ParallelForEachSeq("x", blocks.Var("data"), body)
	}
	return blocks.NewScript(
		blocks.SetVar("data", blocks.ListOf(blocks.Num(1), blocks.Num(2), blocks.Num(3), blocks.Num(4))),
		fe,
	)
}

func TestOpenMPEmitterParallelForEach(t *testing.T) {
	src, err := NewOpenMPEmitter().Program(parallelSquares(true))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"#include <omp.h>",
		"#pragma omp parallel for",
		"for (int _i = 0; _i < (int)(sizeof(data)/sizeof(data[0])); _i++) {",
		"double x = data[_i];",
		`printf("%g\n", (double)((x * x)));`,
	} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q in:\n%s", want, src)
		}
	}
}

func TestOpenMPEmitterSequentialMode(t *testing.T) {
	// Sequential mode: same loop, no pragma, no omp.h — the one-toggle
	// contrast.
	src, err := NewOpenMPEmitter().Program(parallelSquares(false))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(src, "#pragma omp") || strings.Contains(src, "omp.h") {
		t.Errorf("sequential mode must not emit OpenMP:\n%s", src)
	}
	if !strings.Contains(src, "for (int _i = 0;") {
		t.Errorf("sequential loop missing:\n%s", src)
	}
}

func TestOpenMPEmitterErrors(t *testing.T) {
	bad := blocks.NewScript(blocks.NewBlock("doParallelForEach",
		blocks.Reporter(blocks.Sum(blocks.Num(1), blocks.Num(2))),
		blocks.Var("d"), blocks.Empty(), blocks.Body(), blocks.BoolLit(true)))
	if _, err := NewOpenMPEmitter().Program(bad); err == nil {
		t.Error("non-name item var should error")
	}
}

// TestOpenMPParallelForEachCompiles compiles and runs both modes; output
// must contain the four squares (order may differ under the pragma).
func TestOpenMPParallelForEachCompiles(t *testing.T) {
	for _, parallel := range []bool{true, false} {
		src, err := NewOpenMPEmitter().Program(parallelSquares(parallel))
		if err != nil {
			t.Fatal(err)
		}
		flags := []string{}
		if parallel {
			flags = append(flags, "-fopenmp")
		}
		out := compileAndRun(t, src, flags...)
		for _, want := range []string{"1", "4", "9", "16"} {
			if !strings.Contains(out, want) {
				t.Errorf("parallel=%v: output %q missing %s", parallel, out, want)
			}
		}
	}
}
