package codegen

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/blocks"
)

// These tests execute the generated JavaScript and Python with the host
// interpreters when available — the full §6 claim: the code-mapping output
// is real, runnable code in every target language, not pseudo-code. They
// skip cleanly on hosts without node/python3.

// fig16WithPrint is the Figure 16 script plus a final say of the result
// list, so the generated program prints [30, 70, 80].
func fig16WithPrint() *blocks.Script {
	s := Figure16Script()
	s.Append(blocks.Say(blocks.Var("b")))
	return s
}

func runInterpreter(t *testing.T, interpreter, ext, src string) string {
	t.Helper()
	bin, err := exec.LookPath(interpreter)
	if err != nil {
		t.Skipf("no %s on host", interpreter)
	}
	dir := t.TempDir()
	file := filepath.Join(dir, "prog"+ext)
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, file).CombinedOutput()
	if err != nil {
		t.Fatalf("%s failed: %v\n%s\n--- source ---\n%s", interpreter, err, out, src)
	}
	return string(out)
}

func TestGeneratedPythonRuns(t *testing.T) {
	tr := New(PythonLang())
	src, err := tr.Script(fig16WithPrint(), 0)
	if err != nil {
		t.Fatal(err)
	}
	out := runInterpreter(t, "python3", ".py", src)
	if !strings.Contains(out, "[30, 70, 80]") {
		t.Errorf("python printed %q, want [30, 70, 80]", out)
	}
}

func TestGeneratedJavaScriptRuns(t *testing.T) {
	tr := New(JSLang())
	src, err := tr.Script(fig16WithPrint(), 0)
	if err != nil {
		t.Fatal(err)
	}
	out := runInterpreter(t, "node", ".js", src)
	if !strings.Contains(out, "30") || !strings.Contains(out, "70") || !strings.Contains(out, "80") {
		t.Errorf("node printed %q, want the 30/70/80 list", out)
	}
}

func TestGeneratedPythonControlFlow(t *testing.T) {
	// A denser program: conditionals, until-loop, text ops.
	script := blocks.NewScript(
		blocks.SetVar("n", blocks.Num(1)),
		blocks.SetVar("steps", blocks.Num(0)),
		// Collatz from 7: count steps to reach 1.
		blocks.SetVar("n", blocks.Num(7)),
		blocks.Until(blocks.Equals(blocks.Var("n"), blocks.Num(1)), blocks.Body(
			blocks.IfElse(blocks.Equals(blocks.Modulus(blocks.Var("n"), blocks.Num(2)), blocks.Num(0)),
				blocks.Body(blocks.SetVar("n", blocks.Quotient(blocks.Var("n"), blocks.Num(2)))),
				blocks.Body(blocks.SetVar("n",
					blocks.Sum(blocks.Product(blocks.Num(3), blocks.Var("n")), blocks.Num(1))))),
			blocks.ChangeVar("steps", blocks.Num(1)),
		)),
		blocks.Say(blocks.Var("steps")),
	)
	tr := New(PythonLang())
	src, err := tr.Script(script, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := runInterpreter(t, "python3", ".py", src)
	if !strings.Contains(out, "16") { // Collatz(7) takes 16 steps
		t.Errorf("python printed %q, want 16 (Collatz steps for 7)", out)
	}
}

func TestGeneratedJSSequentialMap(t *testing.T) {
	// The stock map block maps to Array.prototype.map.
	script := blocks.NewScript(
		blocks.SetVar("out", blocks.Reporter(blocks.Map(
			blocks.RingOf(blocks.Product(blocks.Empty(), blocks.Num(10))),
			blocks.ListOf(blocks.Num(3), blocks.Num(7), blocks.Num(8))))),
		blocks.Say(blocks.Var("out")),
	)
	tr := New(JSLang())
	src, err := tr.Script(script, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := runInterpreter(t, "node", ".js", src)
	if !strings.Contains(out, "30") || !strings.Contains(out, "80") {
		t.Errorf("node printed %q", out)
	}
}
