// Package codegen implements Snap!'s experimental code-mapping feature as
// used in §6 of the paper: the translation of visual block programs into
// text-based source code — "through the use of this feature, parallel
// programs in Snap! are translated to OpenMP code ready to compile and run
// in traditional parallel computing environments."
//
// Each target language is a table of templates keyed by opcode, with
// placeholders marking where translated inputs are spliced in — exactly
// Figure 15's mapping constructs, where "<#1>, <#2>... signify the mapping
// of the first location in the block to be filled in, the second, and so
// forth. The remainder of the characters are copied to the output
// verbatim." Because block programs nest, "the value substituted for a
// particular placeholder may itself have resulted from the translation of
// a nested block."
//
// Placeholder forms:
//
//	<#n>  the n-th input, translated as an expression
//	<$n>  the n-th input rendered raw as an identifier (variable names)
//	<&n>  the n-th input, a script body, translated as indented statements
//
// Mappings exist for C (c.go), OpenMP C (openmp.go), JavaScript, Python,
// and Go (langs.go) — "currently, mappings exist for JavaScript, C,
// Smalltalk, and Python. Code mappings for new textual languages can
// easily be specified by the user by creating the corresponding mapping
// block": NewLang plus template registration is that mapping block.
package codegen

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/blocks"
	"repro/internal/value"
)

// GenFunc is a custom generator for opcodes whose translation needs more
// than a template (variadic joins, list construction, parallel loops).
type GenFunc func(t *Translator, b *blocks.Block, indent int) (string, error)

// Lang describes one target language's mapping tables.
type Lang struct {
	// Name identifies the language ("c", "js", "python", "go").
	Name string
	// Expr maps reporter opcodes to expression templates.
	Expr map[string]string
	// Stmt maps command opcodes to statement templates.
	Stmt map[string]string
	// Custom overrides both for opcodes needing bespoke generation.
	Custom map[string]GenFunc
	// QuoteText renders a text literal.
	QuoteText func(string) string
	// BoolLit renders the two boolean literals.
	TrueLit, FalseLit string
	// IndentUnit is one level of indentation.
	IndentUnit string
	// StmtSuffix terminates a simple expression statement (";" in C).
	StmtSuffix string
	// EmptyBody fills an empty C-slot ("pass" in Python, "" elsewhere).
	EmptyBody string
	// LineComment starts a comment line.
	LineComment string
}

// Ident sanitizes a Snap! variable name (which may contain spaces) into a
// legal identifier.
func Ident(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// Translator walks a block AST emitting target-language text.
type Translator struct {
	Lang *Lang
	// implicits are the names bound to empty slots during ring-body
	// translation — the textual analogue of the interpreter's implicit
	// arguments.
	implicits   []string
	implicitIdx int
}

// New builds a translator for the language.
func New(l *Lang) *Translator { return &Translator{Lang: l} }

// ForLang builds a translator by language name: "c", "js", "python", "go".
func ForLang(name string) (*Translator, error) {
	switch strings.ToLower(name) {
	case "c":
		return New(CLang()), nil
	case "js", "javascript":
		return New(JSLang()), nil
	case "python", "py":
		return New(PythonLang()), nil
	case "go", "golang":
		return New(GoLang()), nil
	}
	return nil, fmt.Errorf("no code mapping for language %q", name)
}

// WithImplicits returns a child translator whose empty slots render as the
// given parameter names — used to translate ring bodies into function
// bodies, Listing 2's mappedCode().
func (t *Translator) WithImplicits(names ...string) *Translator {
	return &Translator{Lang: t.Lang, implicits: names}
}

func (t *Translator) takeImplicit() (string, error) {
	if len(t.implicits) == 0 {
		return "", fmt.Errorf("empty slot outside a ring has no meaning in text")
	}
	if len(t.implicits) == 1 {
		return t.implicits[0], nil
	}
	if t.implicitIdx < len(t.implicits) {
		name := t.implicits[t.implicitIdx]
		t.implicitIdx++
		return name, nil
	}
	return t.implicits[len(t.implicits)-1], nil
}

// Expr translates a slot node to an expression string.
func (t *Translator) Expr(n blocks.Node) (string, error) {
	switch x := n.(type) {
	case blocks.Literal:
		return t.literal(x.Val)
	case blocks.VarGet:
		return Ident(x.Name), nil
	case blocks.EmptySlot:
		return t.takeImplicit()
	case blocks.RingNode:
		// A bare ring in expression position translates to its body's
		// code with its parameters as implicits.
		sub := t.WithImplicits(x.Params...)
		if body, ok := x.Body.(blocks.Node); ok {
			return sub.Expr(body)
		}
		return "", fmt.Errorf("cannot translate a command ring as an expression")
	case *blocks.Block:
		return t.exprBlock(x)
	case nil:
		return "", fmt.Errorf("cannot translate an absent input")
	default:
		return "", fmt.Errorf("cannot translate %T as an expression", n)
	}
}

func (t *Translator) literal(v value.Value) (string, error) {
	switch x := v.(type) {
	case nil, value.Nothing:
		return "", fmt.Errorf("cannot translate an empty literal")
	case value.Number:
		return x.String(), nil
	case value.Bool:
		if x {
			return t.Lang.TrueLit, nil
		}
		return t.Lang.FalseLit, nil
	case value.Text:
		return t.Lang.QuoteText(string(x)), nil
	case *value.List:
		parts := make([]string, x.Len())
		for i, item := range x.Items() {
			s, err := t.literal(item)
			if err != nil {
				return "", err
			}
			parts[i] = s
		}
		return "{" + strings.Join(parts, ", ") + "}", nil
	default:
		return "", fmt.Errorf("cannot translate a %s literal", v.Kind())
	}
}

func (t *Translator) exprBlock(b *blocks.Block) (string, error) {
	if gen, ok := t.Lang.Custom[b.Op]; ok {
		return gen(t, b, 0)
	}
	tpl, ok := t.Lang.Expr[b.Op]
	if !ok {
		return "", fmt.Errorf("no %s mapping for block %q", t.Lang.Name, b.Op)
	}
	return t.fill(tpl, b, 0)
}

// Stmt translates one command block at the given indent.
func (t *Translator) Stmt(b *blocks.Block, indent int) (string, error) {
	if gen, ok := t.Lang.Custom[b.Op]; ok {
		return gen(t, b, indent)
	}
	if tpl, ok := t.Lang.Stmt[b.Op]; ok {
		return t.fill(tpl, b, indent)
	}
	// A reporter used as a statement (its value discarded).
	if _, ok := t.Lang.Expr[b.Op]; ok {
		e, err := t.exprBlock(b)
		if err != nil {
			return "", err
		}
		return t.indent(indent) + e + t.Lang.StmtSuffix, nil
	}
	return "", fmt.Errorf("no %s mapping for block %q", t.Lang.Name, b.Op)
}

// Script translates a script as statements at the given indent.
func (t *Translator) Script(s *blocks.Script, indent int) (string, error) {
	if s == nil || len(s.Blocks) == 0 {
		if t.Lang.EmptyBody != "" {
			return t.indent(indent) + t.Lang.EmptyBody, nil
		}
		return "", nil
	}
	lines := make([]string, 0, len(s.Blocks))
	for _, b := range s.Blocks {
		chunk, err := t.Stmt(b, indent)
		if err != nil {
			return "", err
		}
		if chunk != "" {
			lines = append(lines, chunk)
		}
	}
	return strings.Join(lines, "\n"), nil
}

// BodyOf translates a body input (a ScriptNode or RingNode C-slot) at the
// given indent.
func (t *Translator) BodyOf(n blocks.Node, indent int) (string, error) {
	switch x := n.(type) {
	case blocks.ScriptNode:
		return t.Script(x.Script, indent)
	case blocks.RingNode:
		if s, ok := x.Body.(*blocks.Script); ok {
			return t.Script(s, indent)
		}
		return "", fmt.Errorf("expected a script body")
	case blocks.EmptySlot:
		return t.Script(nil, indent)
	default:
		return "", fmt.Errorf("expected a script body, got %T", n)
	}
}

func (t *Translator) indent(n int) string {
	return strings.Repeat(t.Lang.IndentUnit, n)
}

// fill substitutes a template's placeholders. Template lines are indented
// at the statement's level; a line consisting solely of a body placeholder
// <&n> is replaced by the body translated one level deeper.
func (t *Translator) fill(tpl string, b *blocks.Block, indent int) (string, error) {
	lines := strings.Split(tpl, "\n")
	out := make([]string, 0, len(lines))
	for _, line := range lines {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "<&") && strings.HasSuffix(trimmed, ">") {
			idx, err := strconv.Atoi(trimmed[2 : len(trimmed)-1])
			if err != nil {
				return "", fmt.Errorf("bad body placeholder %q", trimmed)
			}
			body, err := t.BodyOf(b.Input(idx-1), indent+1)
			if err != nil {
				return "", err
			}
			if body != "" {
				out = append(out, body)
			}
			continue
		}
		filled, err := t.fillInline(line, b)
		if err != nil {
			return "", err
		}
		out = append(out, t.indent(indent)+filled)
	}
	return strings.Join(out, "\n"), nil
}

// fillInline substitutes <#n> and <$n> within a single template line.
func (t *Translator) fillInline(line string, b *blocks.Block) (string, error) {
	var out strings.Builder
	for i := 0; i < len(line); {
		if line[i] == '<' && i+3 <= len(line) && (line[i+1] == '#' || line[i+1] == '$') {
			end := strings.IndexByte(line[i:], '>')
			if end > 2 {
				numStr := line[i+2 : i+end]
				if idx, err := strconv.Atoi(numStr); err == nil {
					in := b.Input(idx - 1)
					var s string
					var terr error
					if line[i+1] == '$' {
						s, terr = rawIdent(in)
					} else {
						s, terr = t.Expr(in)
					}
					if terr != nil {
						return "", terr
					}
					out.WriteString(s)
					i += end + 1
					continue
				}
			}
		}
		out.WriteByte(line[i])
		i++
	}
	return out.String(), nil
}

// rawIdent renders an input that names something (a variable) as an
// identifier.
func rawIdent(n blocks.Node) (string, error) {
	switch x := n.(type) {
	case blocks.Literal:
		return Ident(x.Val.String()), nil
	case blocks.VarGet:
		return Ident(x.Name), nil
	default:
		return "", fmt.Errorf("expected a name, got %T", n)
	}
}
