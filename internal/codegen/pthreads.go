package codegen

import (
	"fmt"
	"strings"

	"repro/internal/blocks"
)

// This file generates the pthreads translation of parallelMap — the foil
// §6.1 holds OpenMP against: "OpenMP is attractive because the difference
// between the sequential C version and the parallel OpenMP C version is
// very small and easily understood. This is in stark contrast to the
// complexity of other text-based approaches, such as pthreads." Experiment
// E15 makes that contrast quantitative by generating all three programs
// from the same block and counting what the parallelism costs in each
// dialect.

func mapFunctionFromBlock(b *blocks.Block) (string, error) {
	if b.Op != "reportParallelMap" {
		return "", fmt.Errorf("expected a parallelMap block, got %q", b.Op)
	}
	ring, ok := b.Input(0).(blocks.RingNode)
	if !ok {
		return "", fmt.Errorf("parallelMap's first input must be a ring")
	}
	body, ok := ring.Body.(blocks.Node)
	if !ok {
		return "", fmt.Errorf("parallelMap ring must be a reporter")
	}
	var node blocks.Node = body
	if len(ring.Params) == 1 {
		node = renameVar(body, ring.Params[0])
	}
	return New(CLang()).WithImplicits("x").Expr(node)
}

func cDataArray(data []float64) string {
	var vals strings.Builder
	for i, d := range data {
		if i > 0 {
			vals.WriteString(", ")
		}
		fmt.Fprintf(&vals, "%g", d)
	}
	return vals.String()
}

// SequentialMapProgram generates the plain sequential C loop for the same
// map — the baseline both parallel dialects are diffed against.
func SequentialMapProgram(b *blocks.Block, data []float64) (string, error) {
	expr, err := mapFunctionFromBlock(b)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf(`/* Sequential C translation of the Snap! map. */
#include <stdio.h>

static double in[] = { %s };
#define N ((int)(sizeof(in)/sizeof(in[0])))
static double out[N];

double f(double x) {
    return %s;
}

int main(void) {
    for (int i = 0; i < N; i++) {
        out[i] = f(in[i]);
    }
    for (int i = 0; i < N; i++) {
        printf("%%g\n", out[i]);
    }
    return 0;
}
`, cDataArray(data), expr), nil
}

// PthreadsParallelMapProgram generates the pthreads translation of a
// parallelMap block: explicit thread handles, per-thread range structs,
// create/join error handling — everything the OpenMP pragma hides.
func PthreadsParallelMapProgram(b *blocks.Block, data []float64, threads int) (string, error) {
	expr, err := mapFunctionFromBlock(b)
	if err != nil {
		return "", err
	}
	if threads < 1 {
		threads = 4
	}
	return fmt.Sprintf(`/* pthreads translation of the Snap! parallelMap block. */
#include <pthread.h>
#include <stdio.h>
#include <stdlib.h>

static double in[] = { %s };
#define N ((int)(sizeof(in)/sizeof(in[0])))
#define NTHREADS %d
static double out[N];

typedef struct {
    int lo;
    int hi;
} range_t;

double f(double x) {
    return %s;
}

static void *worker(void *arg) {
    range_t *r = (range_t *)arg;
    for (int i = r->lo; i < r->hi; i++) {
        out[i] = f(in[i]);
    }
    return NULL;
}

int main(void) {
    pthread_t threads[NTHREADS];
    range_t ranges[NTHREADS];
    int chunk = (N + NTHREADS - 1) / NTHREADS;

    for (int t = 0; t < NTHREADS; t++) {
        ranges[t].lo = t * chunk;
        ranges[t].hi = (t + 1) * chunk;
        if (ranges[t].lo > N) {
            ranges[t].lo = N;
        }
        if (ranges[t].hi > N) {
            ranges[t].hi = N;
        }
        if (pthread_create(&threads[t], NULL, worker, &ranges[t]) != 0) {
            fprintf(stderr, "pthread_create failed for thread %%d\n", t);
            exit(1);
        }
    }
    for (int t = 0; t < NTHREADS; t++) {
        if (pthread_join(threads[t], NULL) != 0) {
            fprintf(stderr, "pthread_join failed for thread %%d\n", t);
            exit(1);
        }
    }

    for (int i = 0; i < N; i++) {
        printf("%%g\n", out[i]);
    }
    return 0;
}
`, cDataArray(data), threads, expr), nil
}

// CountLines reports the non-blank, non-comment-only line count of a C
// source — the programmability metric of E15.
func CountLines(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		s := strings.TrimSpace(line)
		if s == "" || strings.HasPrefix(s, "/*") || strings.HasPrefix(s, "*") || strings.HasPrefix(s, "//") {
			continue
		}
		n++
	}
	return n
}
