package codegen

import (
	"strings"
	"testing"

	"repro/internal/blocks"
	"repro/internal/value"
)

func mustExpr(t *testing.T, lang *Lang, n blocks.Node) string {
	t.Helper()
	s, err := New(lang).Expr(n)
	if err != nil {
		t.Fatalf("translate %s: %v", n.Describe(), err)
	}
	return s
}

func TestCExpressions(t *testing.T) {
	cases := []struct {
		n    blocks.Node
		want string
	}{
		{blocks.Sum(blocks.Num(1), blocks.Num(2)), "(1 + 2)"},
		{blocks.Product(blocks.Var("x"), blocks.Num(10)), "(x * 10)"},
		{blocks.ItemOf(blocks.Var("i"), blocks.Var("a")), "a[i - 1]"},
		{blocks.LengthOf(blocks.Var("a")), "(sizeof(a)/sizeof(a[0]))"},
		{blocks.And(blocks.LessThan(blocks.Var("x"), blocks.Num(3)), blocks.BoolLit(true)),
			"((x < 3) && 1)"},
		{blocks.Monadic("sqrt", blocks.Num(2)), "sqrt(2)"},
		{blocks.Not(blocks.Equals(blocks.Num(1), blocks.Num(2))), "(!(1 == 2))"},
	}
	lang := CLang()
	for _, c := range cases {
		if got := mustExpr(t, lang, c.n); got != c.want {
			t.Errorf("%s -> %q, want %q", c.n.Describe(), got, c.want)
		}
	}
}

func TestCExpressionErrors(t *testing.T) {
	tr := New(CLang())
	if _, err := tr.Expr(blocks.EmptySlot{}); err == nil {
		t.Error("bare empty slot should not translate")
	}
	if _, err := tr.Expr(blocks.Reporter(blocks.NewBlock("getTimer"))); err == nil {
		t.Error("unmapped opcode should error")
	}
	if _, err := tr.Expr(blocks.Lit(value.Nothing{})); err == nil {
		t.Error("empty literal should error")
	}
	if _, err := tr.Expr(blocks.Monadic("zorp", blocks.Num(1))); err == nil {
		t.Error("unknown monadic function should error")
	}
}

func TestIdentSanitization(t *testing.T) {
	cases := map[string]string{
		"plain":       "plain",
		"two words":   "two_words",
		"3rd":         "_3rd",
		"héllo":       "h_llo",
		"":            "_",
		"a-b":         "a_b",
		"CamelCase_9": "CamelCase_9",
	}
	for in, want := range cases {
		if got := Ident(in); got != want {
			t.Errorf("Ident(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestListing5Shape is experiment E7: the Figure 16 script must translate
// to C carrying every structural landmark of the paper's Listing 5.
func TestListing5Shape(t *testing.T) {
	src, err := Listing5()
	if err != nil {
		t.Fatal(err)
	}
	landmarks := []string{
		"#include <stdio.h>",
		"#include <stdlib.h>",
		"typedef struct node {",
		"struct node *next;",
		"} node_t;",
		"void append(int d, node_t *p) {",
		"p->next = (node_t *) malloc(sizeof(node_t));",
		"int main()",
		"int a[] = {3, 7, 8};",
		"node_t *b = (node_t *) malloc(sizeof(node_t));",
		"(sizeof(a)/sizeof(a[0]))",
		"int i; for (i = 1; i <= ",
		"append((a[i - 1] * 10), b);",
		"return (0);",
	}
	for _, l := range landmarks {
		if !strings.Contains(src, l) {
			t.Errorf("Listing 5 output missing landmark %q\n--- got ---\n%s", l, src)
		}
	}
}

func TestTypeInference(t *testing.T) {
	cases := []struct {
		n    blocks.Node
		want CType
	}{
		{blocks.Num(3), CInt},
		{blocks.Num(3.5), CDouble},
		{blocks.Txt("hi"), CCharPtr},
		{blocks.BoolLit(true), CBool},
		{blocks.Sum(blocks.Num(1), blocks.Num(2)), CInt},
		{blocks.Sum(blocks.Num(1), blocks.Num(2.5)), CDouble},
		{blocks.Quotient(blocks.Num(4), blocks.Num(2)), CDouble},
		{blocks.LessThan(blocks.Num(1), blocks.Num(2)), CBool},
		{blocks.ListOf(blocks.Num(1), blocks.Num(2)), CIntArray},
		{blocks.ListOf(blocks.Num(1.5)), CDoubleArray},
		{blocks.ListOf(), CListPtr},
		{blocks.ListOf(blocks.Txt("s")), CListPtr},
		{blocks.Join(blocks.Txt("a"), blocks.Txt("b")), CCharPtr},
		{blocks.LengthOf(blocks.Var("a")), CInt},
		{blocks.Reporter(blocks.NewBlock("getTimer")), CUnknown},
	}
	for _, c := range cases {
		if got := InferType(c.n, nil); got != c.want {
			t.Errorf("InferType(%s) = %v, want %v", c.n.Describe(), got, c.want)
		}
	}
	env := map[string]CType{"a": CIntArray}
	if got := InferType(blocks.ItemOf(blocks.Num(1), blocks.Var("a")), env); got != CInt {
		t.Errorf("item of int array = %v", got)
	}
	if got := InferType(blocks.Var("a"), env); got != CIntArray {
		t.Errorf("var lookup = %v", got)
	}
}

func TestCEmitterDeclarations(t *testing.T) {
	e := NewCEmitter()
	script := blocks.NewScript(
		blocks.SetVar("n", blocks.Num(5)),
		blocks.SetVar("n", blocks.Num(6)), // second assignment: no decl
		blocks.SetVar("x", blocks.Num(1.5)),
		blocks.SetVar("s", blocks.Txt("hi")),
		blocks.SetVar("flag", blocks.BoolLit(true)),
	)
	src, err := e.Program(script)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"int n = 5;", "n = 6;", "double x = 1.5;", `char *s = "hi";`, "int flag = 1;",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q in:\n%s", want, src)
		}
	}
	if strings.Count(src, "int n") != 1 {
		t.Error("variable declared twice")
	}
}

func TestCControlFlow(t *testing.T) {
	e := NewCEmitter()
	script := blocks.NewScript(
		blocks.SetVar("n", blocks.Num(0)),
		blocks.Repeat(blocks.Num(3), blocks.Body(
			blocks.ChangeVar("n", blocks.Num(1)))),
		blocks.If(blocks.GreaterThan(blocks.Var("n"), blocks.Num(2)), blocks.Body(
			blocks.Say(blocks.Var("n")))),
		blocks.IfElse(blocks.BoolLit(false),
			blocks.Body(blocks.SetVar("n", blocks.Num(1))),
			blocks.Body(blocks.SetVar("n", blocks.Num(2)))),
		blocks.Until(blocks.Equals(blocks.Var("n"), blocks.Num(9)), blocks.Body(
			blocks.ChangeVar("n", blocks.Num(1)))),
	)
	src, err := e.Program(script)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"for (int _r = 0; _r < 3; _r++) {",
		"n += 1;",
		"if ((n > 2)) {",
		`printf("%g\n", (double)(n));`,
		"} else {",
		"while (!((n == 9))) {",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q in:\n%s", want, src)
		}
	}
}

func TestJSMapping(t *testing.T) {
	lang := JSLang()
	if got := mustExpr(t, lang, blocks.Map(
		blocks.RingOf(blocks.Product(blocks.Empty(), blocks.Num(10))),
		blocks.Var("data"))); got != "data.map(function (x) { return (x * 10); })" {
		t.Errorf("js map = %q", got)
	}
	// parallelMap renders the Parallel.js idiom of Listing 1.
	got := mustExpr(t, lang, blocks.ParallelMap(
		blocks.RingOf(blocks.Sum(blocks.Empty(), blocks.Empty())),
		blocks.Var("data"), blocks.Num(2)))
	want := "new Parallel(data, {maxWorkers: 2}).map(function (x) { return (x + x); })"
	if got != want {
		t.Errorf("js parallelMap = %q, want %q", got, want)
	}
	// Default worker count spells out Listing 2's fallback chain.
	got = mustExpr(t, lang, blocks.ParallelMap(
		blocks.RingOf(blocks.Empty()), blocks.Var("d"), blocks.Empty()))
	if !strings.Contains(got, "navigator.hardwareConcurrency || 4") {
		t.Errorf("js parallelMap default workers = %q", got)
	}
	tr := New(lang)
	stmt, err := tr.Stmt(blocks.SetVar("x", blocks.ListOf(blocks.Num(1), blocks.Num(2))), 0)
	if err != nil || stmt != "let x = [1, 2];" {
		t.Errorf("js setvar = %q, %v", stmt, err)
	}
}

func TestPythonMapping(t *testing.T) {
	tr := New(PythonLang())
	script := blocks.NewScript(
		blocks.SetVar("total", blocks.Num(0)),
		blocks.For("i", blocks.Num(1), blocks.Num(10), blocks.Body(
			blocks.ChangeVar("total", blocks.Var("i")))),
		blocks.If(blocks.GreaterThan(blocks.Var("total"), blocks.Num(50)), blocks.Body(
			blocks.Say(blocks.Var("total")))),
	)
	src, err := tr.Script(script, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"total = 0",
		"for i in range(1, 10 + 1):",
		"    total += i",
		"if (total > 50):",
		"    print(total)",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q in:\n%s", want, src)
		}
	}
	// Empty bodies need pass.
	src, err = tr.Script(blocks.NewScript(
		blocks.If(blocks.BoolLit(true), blocks.Body())), 0)
	if err != nil || !strings.Contains(src, "pass") {
		t.Errorf("python empty body: %q, %v", src, err)
	}
	// Comprehension-style map.
	got := mustExpr(t, PythonLang(), blocks.Map(
		blocks.RingOf(blocks.Product(blocks.Empty(), blocks.Num(10))), blocks.Var("d")))
	if got != "[(x * 10) for x in d]" {
		t.Errorf("python map = %q", got)
	}
}

func TestGoMapping(t *testing.T) {
	tr := New(GoLang())
	src, err := tr.Script(blocks.NewScript(
		blocks.SetVar("xs", blocks.ListOf(blocks.Num(1), blocks.Num(2))),
		blocks.For("i", blocks.Num(1), blocks.Num(3), blocks.Body(
			blocks.Say(blocks.Var("i")))),
	), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"xs := []float64{1, 2}",
		"for i := 1; i <= 3; i++ {",
		"fmt.Println(i)",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q in:\n%s", want, src)
		}
	}
}

func TestForLangLookup(t *testing.T) {
	for _, name := range []string{"c", "js", "javascript", "python", "py", "go", "golang"} {
		if _, err := ForLang(name); err != nil {
			t.Errorf("ForLang(%q): %v", name, err)
		}
	}
	if _, err := ForLang("smalltalk-80"); err == nil {
		t.Error("unknown language should error")
	}
}

func TestNamedParamRing(t *testing.T) {
	// A ring with a named parameter translates with the parameter
	// renamed to the implicit slot.
	got := mustExpr(t, JSLang(), blocks.Map(
		blocks.RingOf(blocks.Sum(blocks.Var("n"), blocks.Num(1)), "n"),
		blocks.Var("d")))
	if got != "d.map(function (x) { return (x + 1); })" {
		t.Errorf("named-param ring = %q", got)
	}
}

func TestTextQuoting(t *testing.T) {
	if got := mustExpr(t, CLang(), blocks.Txt("he said \"hi\"\n")); got != `"he said \"hi\"\n"` {
		t.Errorf("c quote = %q", got)
	}
	if got := mustExpr(t, PythonLang(), blocks.Txt("a'b")); got != `"a'b"` {
		t.Errorf("python quote = %q", got)
	}
}

func TestStatementFromReporter(t *testing.T) {
	// A reporter in statement position becomes an expression statement.
	tr := New(CLang())
	stmt, err := tr.Stmt(blocks.Sum(blocks.Num(1), blocks.Num(2)), 1)
	if err != nil || stmt != "    (1 + 2);" {
		t.Errorf("reporter stmt = %q, %v", stmt, err)
	}
}
