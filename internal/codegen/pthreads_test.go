package codegen

import (
	"strings"
	"testing"

	"repro/internal/blocks"
)

func times10MapBlock() *blocks.Block {
	return blocks.ParallelMap(
		blocks.RingOf(blocks.Product(blocks.Empty(), blocks.Num(10))),
		blocks.ListOf(blocks.Num(3), blocks.Num(7), blocks.Num(8)),
		blocks.Num(4))
}

func TestPthreadsProgramShape(t *testing.T) {
	src, err := PthreadsParallelMapProgram(times10MapBlock(), []float64{3, 7, 8}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"#include <pthread.h>",
		"pthread_create(&threads[t], NULL, worker, &ranges[t])",
		"pthread_join(threads[t], NULL)",
		"return (x * 10);",
		"typedef struct {",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q", want)
		}
	}
	if _, err := PthreadsParallelMapProgram(blocks.Sum(blocks.Num(1), blocks.Num(1)), nil, 4); err == nil {
		t.Error("non-parallelMap block should error")
	}
}

func TestSequentialProgramShape(t *testing.T) {
	src, err := SequentialMapProgram(times10MapBlock(), []float64{3, 7, 8})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(src, "pthread") || strings.Contains(src, "omp") {
		t.Error("sequential program must carry no parallel machinery")
	}
	if !strings.Contains(src, "out[i] = f(in[i]);") {
		t.Error("sequential loop missing")
	}
}

// TestSection61Contrast is experiment E15: the OpenMP version should be
// within a couple of lines of the sequential program, while the pthreads
// version costs substantially more — §6.1's "stark contrast".
func TestSection61Contrast(t *testing.T) {
	blk := times10MapBlock()
	data := []float64{3, 7, 8}
	seq, err := SequentialMapProgram(blk, data)
	if err != nil {
		t.Fatal(err)
	}
	omp, err := ParallelMapProgram(blk, data, 4)
	if err != nil {
		t.Fatal(err)
	}
	pth, err := PthreadsParallelMapProgram(blk, data, 4)
	if err != nil {
		t.Fatal(err)
	}
	seqN, ompN, pthN := CountLines(seq), CountLines(omp), CountLines(pth)
	if ompN-seqN > 4 {
		t.Errorf("OpenMP adds %d lines over sequential (%d vs %d); the paper promises a small diff",
			ompN-seqN, ompN, seqN)
	}
	if pthN-seqN < 15 {
		t.Errorf("pthreads adds only %d lines (%d vs %d); expected the stark contrast",
			pthN-seqN, pthN, seqN)
	}
	if pthN <= ompN {
		t.Errorf("pthreads (%d lines) should exceed OpenMP (%d lines)", pthN, ompN)
	}
}

func TestPthreadsAndSequentialCompile(t *testing.T) {
	blk := times10MapBlock()
	data := []float64{3, 7, 8}
	seq, err := SequentialMapProgram(blk, data)
	if err != nil {
		t.Fatal(err)
	}
	out := compileAndRun(t, seq)
	if !strings.Contains(out, "30") || !strings.Contains(out, "80") {
		t.Errorf("sequential printed %q", out)
	}
	pth, err := PthreadsParallelMapProgram(blk, data, 4)
	if err != nil {
		t.Fatal(err)
	}
	out = compileAndRun(t, pth, "-lpthread")
	for _, want := range []string{"30", "70", "80"} {
		if !strings.Contains(out, want) {
			t.Errorf("pthreads printed %q, missing %s", out, want)
		}
	}
}

func TestCountLines(t *testing.T) {
	src := "/* comment */\n\nint x;\n// line comment\n  * doc\ny = 1;\n"
	if got := CountLines(src); got != 2 {
		t.Errorf("CountLines = %d, want 2", got)
	}
}
