package codegen

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/blocks"
)

// f2cRing is the Figure 19 mapper: ((5 × (_ − 32)) ÷ 9).
func f2cRing() blocks.RingNode {
	return blocks.RingOf(
		blocks.Quotient(
			blocks.Product(blocks.Num(5),
				blocks.Difference(blocks.Empty(), blocks.Num(32))),
			blocks.Num(9))).(blocks.RingNode)
}

// avgRing is the Figure 20 reducer: sum-combine over the values divided by
// their count.
func avgRing() blocks.RingNode {
	return blocks.RingOf(
		blocks.Quotient(
			blocks.Combine(blocks.Empty(),
				blocks.RingOf(blocks.Sum(blocks.Empty(), blocks.Empty()))),
			blocks.LengthOf(blocks.Empty()))).(blocks.RingNode)
}

func climateBlock() *blocks.Block {
	return blocks.MapReduce(f2cRing(), avgRing(),
		blocks.ListOf(blocks.Num(32), blocks.Num(212), blocks.Num(122)))
}

// TestFigure19MapperCode checks the mapper translation against the exact
// expression of Figure 19: out->val = ((5 * (in->val - 32)) / 9).
func TestFigure19MapperCode(t *testing.T) {
	expr, err := MapperCode(f2cRing())
	if err != nil {
		t.Fatal(err)
	}
	// Our quotient mapping inserts a double cast for C integer-division
	// safety; strip it for the landmark comparison.
	normalized := strings.ReplaceAll(expr, "(double)(9)", "9")
	if normalized != "((5 * (in->val - 32)) / 9)" {
		t.Errorf("mapper = %q, want Figure 19's ((5 * (in->val - 32)) / 9)", expr)
	}
}

func TestMapperCodeNamedParam(t *testing.T) {
	ring := blocks.RingOf(blocks.Sum(blocks.Var("t"), blocks.Num(1)), "t").(blocks.RingNode)
	expr, err := MapperCode(ring)
	if err != nil {
		t.Fatal(err)
	}
	if expr != "(in->val + 1)" {
		t.Errorf("named-param mapper = %q", expr)
	}
	bad := blocks.RingOf(blocks.Empty(), "a", "b").(blocks.RingNode)
	if _, err := MapperCode(bad); err == nil {
		t.Error("two-parameter mapper should be rejected")
	}
}

func TestClassifyReducer(t *testing.T) {
	if k := ClassifyReducer(avgRing()); k != ReduceAvg {
		t.Errorf("avg ring classified as %v", k)
	}
	sum := blocks.RingOf(blocks.Combine(blocks.Empty(),
		blocks.RingOf(blocks.Sum(blocks.Empty(), blocks.Empty())))).(blocks.RingNode)
	if k := ClassifyReducer(sum); k != ReduceSum {
		t.Errorf("sum ring classified as %v", k)
	}
	count := blocks.RingOf(blocks.LengthOf(blocks.Empty())).(blocks.RingNode)
	if k := ClassifyReducer(count); k != ReduceCount {
		t.Errorf("count ring classified as %v", k)
	}
	odd := blocks.RingOf(blocks.Product(blocks.Empty(), blocks.Num(2))).(blocks.RingNode)
	if k := ClassifyReducer(odd); k != ReduceUnknown {
		t.Errorf("odd ring classified as %v", k)
	}
	if ReduceAvg.String() != "avg" || ReduceUnknown.String() != "unknown" {
		t.Error("reduce kind names")
	}
}

// TestListing6and7 is experiment E8: the generated map/reduce functions
// file and driver must carry the structural landmarks of Listings 6 and 7.
func TestListing6and7(t *testing.T) {
	files, err := MapReduceFiles(climateBlock(), []float64{32, 212, 122}, 4)
	if err != nil {
		t.Fatal(err)
	}
	l6 := files["mapreduce.c"]
	for _, want := range []string{
		`#include "kvp.h"`,
		"float avg(float *a, size_t count) {",
		"return (*a + ((count-1)*avg(a+1,count-1))/count);",
		"int map (KVP *in, KVP *out) {",
		"strncpy (out->key, in->key, MAXKEY);",
		"out->val = ((5 * (in->val - 32)) / (double)(9));",
		"int reduce (KVP *in, KVP *out) {",
		"out->val = avg(in->val);",
	} {
		if !strings.Contains(l6, want) {
			t.Errorf("Listing 6 missing %q\n%s", want, l6)
		}
	}
	l7 := files["main.c"]
	for _, want := range []string{
		"/* OpenMP driver for Parallel Snap! MapReduce code output. */",
		"#include <omp.h>",
		"KVP *inputlist, *midlist, *outputlist;",
		"#pragma omp parallel for shared(nkvp, inputlist, midlist)",
		"qsort(midlist, nkvp, sizeof(KVP), compare);",
		"#pragma omp parallel for shared(nkvp, midlist, outputlist)",
		"free(inputlist);",
	} {
		if !strings.Contains(l7, want) {
			t.Errorf("Listing 7 missing %q", want)
		}
	}
	if !strings.Contains(files["kvp.h"], "typedef struct KVP") {
		t.Error("kvp.h missing the record type")
	}
	if !strings.Contains(files["Makefile"], "-fopenmp") {
		t.Error("Makefile must link OpenMP")
	}
	for _, want := range []string{"#SBATCH --job-name=snap-mapreduce", "OMP_NUM_THREADS=4", "--cpus-per-task=4"} {
		if !strings.Contains(files["job.sbatch"], want) {
			t.Errorf("batch script missing %q", want)
		}
	}
}

func TestMapReduceFilesErrors(t *testing.T) {
	if _, err := MapReduceFiles(blocks.Sum(blocks.Num(1), blocks.Num(2)), nil, 1); err == nil {
		t.Error("non-mapReduce block should error")
	}
	b := blocks.MapReduce(blocks.Num(1), avgRing(), blocks.ListOf())
	if _, err := MapReduceFiles(b, nil, 1); err == nil {
		t.Error("non-ring mapper should error")
	}
	b = blocks.MapReduce(f2cRing(), blocks.Num(1), blocks.ListOf())
	if _, err := MapReduceFiles(b, nil, 1); err == nil {
		t.Error("non-ring reducer should error")
	}
	odd := blocks.RingOf(blocks.Product(blocks.Empty(), blocks.Num(2)))
	b = blocks.MapReduce(f2cRing(), odd, blocks.ListOf())
	if _, err := MapReduceFiles(b, nil, 1); err == nil {
		t.Error("unknown reducer shape should error")
	}
}

func TestParallelMapProgram(t *testing.T) {
	b := blocks.ParallelMap(
		blocks.RingOf(blocks.Product(blocks.Empty(), blocks.Num(10))),
		blocks.ListOf(blocks.Num(3), blocks.Num(7), blocks.Num(8)),
		blocks.Num(4))
	src, err := ParallelMapProgram(b, []float64{3, 7, 8}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"#pragma omp parallel for shared(in, out)",
		"return (x * 10);",
		"omp_set_num_threads(4);",
		"static double in[] = { 3, 7, 8 };",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q in:\n%s", want, src)
		}
	}
	if _, err := ParallelMapProgram(blocks.Sum(blocks.Num(1), blocks.Num(1)), nil, 1); err == nil {
		t.Error("non-parallelMap block should error")
	}
}

func TestListings3And4Present(t *testing.T) {
	if !strings.Contains(Listing3, `printf(" hello(%d), ", ID);`) {
		t.Error("Listing 3 shape")
	}
	if !strings.Contains(Listing4, "#pragma omp parallel") ||
		!strings.Contains(Listing4, "omp_get_thread_num()") {
		t.Error("Listing 4 shape")
	}
}

// compileC compiles and runs a C source with the host toolchain; the test
// is skipped when no compiler or OpenMP support is available.
func compileAndRun(t *testing.T, src string, flags ...string) string {
	t.Helper()
	cc, err := exec.LookPath("cc")
	if err != nil {
		t.Skip("no C compiler on host")
	}
	dir := t.TempDir()
	cfile := filepath.Join(dir, "prog.c")
	if err := os.WriteFile(cfile, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(dir, "prog")
	args := append([]string{"-O1", "-o", bin, cfile, "-lm"}, flags...)
	out, err := exec.Command(cc, args...).CombinedOutput()
	if err != nil {
		if strings.Contains(string(out), "fopenmp") {
			t.Skip("host compiler lacks OpenMP support")
		}
		t.Fatalf("compile failed: %v\n%s\n--- source ---\n%s", err, out, src)
	}
	run, err := exec.Command(bin).CombinedOutput()
	if err != nil {
		t.Fatalf("run failed: %v\n%s", err, run)
	}
	return string(run)
}

// TestListing5Compiles compiles and runs the generated Listing 5 C with the
// host gcc — the generated code must be real C, not pseudo-code.
func TestListing5Compiles(t *testing.T) {
	src, err := Listing5()
	if err != nil {
		t.Fatal(err)
	}
	compileAndRun(t, src) // exit 0 is the assertion (return (0))
}

// TestRunnableOpenMPProgram compiles the runnable MapReduce program with
// -fopenmp and checks the computed climate average: (0+100+50)/3 = 50.
func TestRunnableOpenMPProgram(t *testing.T) {
	files, err := MapReduceFiles(climateBlock(), []float64{32, 212, 122}, 4)
	if err != nil {
		t.Fatal(err)
	}
	out := compileAndRun(t, files["runnable.c"], "-fopenmp")
	if !strings.Contains(out, "50") {
		t.Errorf("runnable MapReduce printed %q, want the 50°C average", out)
	}
}

// TestParallelMapProgramCompiles compiles and runs the OpenMP translation
// of the Figure 5 parallelMap: outputs 30, 70, 80.
func TestParallelMapProgramCompiles(t *testing.T) {
	b := blocks.ParallelMap(
		blocks.RingOf(blocks.Product(blocks.Empty(), blocks.Num(10))),
		blocks.ListOf(blocks.Num(3), blocks.Num(7), blocks.Num(8)),
		blocks.Num(4))
	src, err := ParallelMapProgram(b, []float64{3, 7, 8}, 4)
	if err != nil {
		t.Fatal(err)
	}
	out := compileAndRun(t, src, "-fopenmp")
	if !strings.Contains(out, "30") || !strings.Contains(out, "70") || !strings.Contains(out, "80") {
		t.Errorf("OpenMP parallelMap printed %q, want 30 70 80", out)
	}
}

// TestListing4Compiles compiles the paper's hello-world OpenMP program
// (with stdio added, as the paper's fragment omits the include).
func TestListing4Compiles(t *testing.T) {
	// gcc tolerates the paper's `void main`; only stdio needs adding.
	src := "#include <stdio.h>\n" + Listing4
	out := compileAndRun(t, src, "-fopenmp")
	if !strings.Contains(out, "hello(") {
		t.Errorf("Listing 4 printed %q", out)
	}
}
