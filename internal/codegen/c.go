package codegen

import (
	"fmt"
	"strings"

	"repro/internal/blocks"
	"repro/internal/value"
)

// This file is the Snap!→C mapping of Figures 15–16 and Listing 5. Lists
// map to the linked-list-of-int representation the paper generates (the
// node_t struct with an append function), array literals map to C array
// declarations, "item _ of _" maps to a[i - 1], and "length of _" maps to
// sizeof(a)/sizeof(a[0]) — all visible verbatim in Listing 5.

// CType is the static type assigned to a Snap! value when mapped to C —
// the dynamic-to-static type mapping §6.3 lists as required "to generate
// correct source code as well as to achieve good performance".
type CType int

// The inferred C types.
const (
	CUnknown CType = iota
	CInt
	CDouble
	CBool
	CCharPtr
	CIntArray
	CDoubleArray
	CListPtr // node_t*
)

// String renders the C spelling of the type.
func (t CType) String() string {
	switch t {
	case CInt:
		return "int"
	case CDouble:
		return "double"
	case CBool:
		return "int"
	case CCharPtr:
		return "char *"
	case CIntArray:
		return "int[]"
	case CDoubleArray:
		return "double[]"
	case CListPtr:
		return "node_t *"
	}
	return "/*unknown*/ double"
}

// InferType performs bottom-up static type inference over an expression
// node: number literals are int when integral, double otherwise; operators
// promote; predicates are boolean; text is char*. Variables resolve through
// the supplied environment (may be nil).
func InferType(n blocks.Node, env map[string]CType) CType {
	switch x := n.(type) {
	case blocks.Literal:
		switch v := x.Val.(type) {
		case value.Number:
			if v.IsInt() {
				return CInt
			}
			return CDouble
		case value.Bool:
			return CBool
		case value.Text:
			return CCharPtr
		case *value.List:
			elem := CInt
			for _, it := range v.Items() {
				if num, ok := it.(value.Number); !ok || !num.IsInt() {
					elem = CDouble
				}
			}
			if elem == CInt {
				return CIntArray
			}
			return CDoubleArray
		}
		return CUnknown
	case blocks.VarGet:
		if env != nil {
			if t, ok := env[Ident(x.Name)]; ok {
				return t
			}
		}
		return CUnknown
	case *blocks.Block:
		switch x.Op {
		case "reportSum", "reportDifference", "reportProduct", "reportModulus":
			a, b := InferType(x.Input(0), env), InferType(x.Input(1), env)
			if a == CInt && b == CInt {
				return CInt
			}
			return CDouble
		case "reportQuotient", "reportMonadic", "reportRandom":
			return CDouble
		case "reportRound", "reportListLength", "reportStringSize":
			return CInt
		case "reportLessThan", "reportEquals", "reportGreaterThan",
			"reportAnd", "reportOr", "reportNot", "reportListContainsItem":
			return CBool
		case "reportJoinWords", "reportLetter":
			return CCharPtr
		case "reportNewList":
			if len(x.Inputs) == 0 {
				return CListPtr
			}
			elem := CInt
			for _, in := range x.Inputs {
				switch InferType(in, env) {
				case CInt:
				case CDouble:
					elem = CDouble
				default:
					return CListPtr
				}
			}
			if elem == CInt {
				return CIntArray
			}
			return CDoubleArray
		case "reportNumbers", "reportMap", "reportParallelMap":
			return CListPtr
		case "reportListItem":
			lt := InferType(x.Input(1), env)
			switch lt {
			case CIntArray:
				return CInt
			case CDoubleArray:
				return CDouble
			}
			return CDouble
		}
	}
	return CUnknown
}

func cQuote(s string) string {
	r := strings.NewReplacer("\\", `\\`, "\"", `\"`, "\n", `\n`, "\t", `\t`)
	return `"` + r.Replace(s) + `"`
}

// CLang returns the Snap!→C mapping table of Figure 15.
func CLang() *Lang {
	l := &Lang{
		Name:        "c",
		TrueLit:     "1",
		FalseLit:    "0",
		IndentUnit:  "    ",
		StmtSuffix:  ";",
		QuoteText:   cQuote,
		LineComment: "//",
		Expr: map[string]string{
			"reportSum":         "(<#1> + <#2>)",
			"reportDifference":  "(<#1> - <#2>)",
			"reportProduct":     "(<#1> * <#2>)",
			"reportQuotient":    "(<#1> / (double)(<#2>))",
			"reportModulus":     "(<#1> % <#2>)",
			"reportRound":       "round(<#1>)",
			"reportLessThan":    "(<#1> < <#2>)",
			"reportEquals":      "(<#1> == <#2>)",
			"reportGreaterThan": "(<#1> > <#2>)",
			"reportAnd":         "(<#1> && <#2>)",
			"reportOr":          "(<#1> || <#2>)",
			"reportNot":         "(!<#1>)",
			"reportListItem":    "<$2>[<#1> - 1]",
			"reportListLength":  "(sizeof(<$1>)/sizeof(<$1>[0]))",
			"reportRandom":      "(<#1> + rand() % (int)(<#2> - <#1> + 1))",
		},
		Stmt: map[string]string{
			"doChangeVar": "<$1> += <#2>;",
			"doIf":        "if (<#1>) {\n<&2>\n}",
			"doIfElse":    "if (<#1>) {\n<&2>\n} else {\n<&3>\n}",
			"doRepeat":    "for (int _r = 0; _r < <#1>; _r++) {\n<&2>\n}",
			"doForever":   "while (1) {\n<&1>\n}",
			"doUntil":     "while (!(<#1>)) {\n<&2>\n}",
			"doFor":       "int <$1>; for (<$1> = <#2>; <$1> <= <#3>; <$1>++){\n<&4>\n}",
			"doAddToList": "append(<#1>, <$2>);",
			"doWait":      "sleep(<#1>);",
			"doReport":    "return <#1>;",
			"bubble":      `printf("%g\n", (double)(<#1>));`,
		},
		Custom: map[string]GenFunc{},
	}
	l.Custom["reportMonadic"] = cMonadic
	l.Custom["reportNewList"] = cNewList
	l.Custom["doSetVar"] = cSetVar
	l.Custom["doDeclareVariables"] = func(*Translator, *blocks.Block, int) (string, error) {
		return "", nil // declarations are emitted at first assignment
	}
	return l
}

func cMonadic(t *Translator, b *blocks.Block, _ int) (string, error) {
	fn, err := rawIdent(b.Input(0))
	if err != nil {
		return "", err
	}
	arg, err := t.Expr(b.Input(1))
	if err != nil {
		return "", err
	}
	switch fn {
	case "sqrt":
		return "sqrt(" + arg + ")", nil
	case "abs":
		return "fabs(" + arg + ")", nil
	case "floor":
		return "floor(" + arg + ")", nil
	case "ceiling":
		return "ceil(" + arg + ")", nil
	case "ln":
		return "log(" + arg + ")", nil
	case "log":
		return "log10(" + arg + ")", nil
	case "e_":
		return "exp(" + arg + ")", nil
	case "sin", "cos", "tan":
		return fn + "((" + arg + ") * M_PI / 180)", nil
	}
	return "", fmt.Errorf("no C mapping for function %q", fn)
}

// cNewList renders a literal list block as a C brace initializer; dynamic
// list construction must go through the node_t append path instead.
func cNewList(t *Translator, b *blocks.Block, _ int) (string, error) {
	parts := make([]string, len(b.Inputs))
	for i := range b.Inputs {
		lit, ok := b.Input(i).(blocks.Literal)
		if !ok {
			return "", fmt.Errorf("C arrays need literal elements; use add-to-list for dynamic lists")
		}
		s, err := t.literal(lit.Val)
		if err != nil {
			return "", err
		}
		parts[i] = s
	}
	return "{" + strings.Join(parts, ", ") + "}", nil
}

// CEmitter assembles whole C programs: it tracks variable declarations so
// "set a to (list 3 7 8)" emits `int a[] = {3, 7, 8};` the first time and a
// plain assignment afterwards — the declaration style of Listing 5.
type CEmitter struct {
	t        *Translator
	declared map[string]CType
	// needsList is set when the program touches the node_t list type.
	needsList bool
	// needsMath/needsUnistd/needsOMP widen the include set.
	needsMath, needsUnistd, needsOMP bool
}

// NewCEmitter builds an emitter around a fresh C translator.
func NewCEmitter() *CEmitter {
	e := &CEmitter{declared: map[string]CType{}}
	lang := CLang()
	lang.Custom["doSetVar"] = e.setVar
	e.t = New(lang)
	return e
}

// cSetVar is the stateless fallback (plain assignment) used when a bare
// CLang translator is driven without an emitter.
func cSetVar(t *Translator, b *blocks.Block, indent int) (string, error) {
	name, err := rawIdent(b.Input(0))
	if err != nil {
		return "", err
	}
	rhs, err := t.Expr(b.Input(1))
	if err != nil {
		return "", err
	}
	return strings.Repeat(t.Lang.IndentUnit, indent) + name + " = " + rhs + ";", nil
}

// setVar emits a declaration on first assignment, choosing the static type
// by inference (§6.3's dynamic→static type mapping).
func (e *CEmitter) setVar(t *Translator, b *blocks.Block, indent int) (string, error) {
	name, err := rawIdent(b.Input(0))
	if err != nil {
		return "", err
	}
	ind := strings.Repeat(t.Lang.IndentUnit, indent)
	rhsNode := b.Input(1)
	ty := InferType(rhsNode, e.declared)

	if _, seen := e.declared[name]; !seen {
		e.declared[name] = ty
		switch ty {
		case CIntArray, CDoubleArray:
			rhs, err := t.Expr(rhsNode)
			if err != nil {
				return "", err
			}
			elem := "int"
			if ty == CDoubleArray {
				elem = "double"
			}
			return fmt.Sprintf("%s%s %s[] = %s;", ind, elem, name, rhs), nil
		case CListPtr:
			e.needsList = true
			// An empty or dynamic list becomes the malloc'd list head
			// of Listing 5.
			if isEmptyListLiteral(rhsNode) {
				return fmt.Sprintf("%snode_t *%s = (node_t *) malloc(sizeof(node_t));", ind, name), nil
			}
			rhs, err := t.Expr(rhsNode)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%snode_t *%s = %s;", ind, name, rhs), nil
		case CCharPtr:
			rhs, err := t.Expr(rhsNode)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%schar *%s = %s;", ind, name, rhs), nil
		case CBool, CInt:
			rhs, err := t.Expr(rhsNode)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%sint %s = %s;", ind, name, rhs), nil
		default:
			rhs, err := t.Expr(rhsNode)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%sdouble %s = %s;", ind, name, rhs), nil
		}
	}
	rhs, err := t.Expr(rhsNode)
	if err != nil {
		return "", err
	}
	return ind + name + " = " + rhs + ";", nil
}

func isEmptyListLiteral(n blocks.Node) bool {
	if b, ok := n.(*blocks.Block); ok {
		return b.Op == "reportNewList" && len(b.Inputs) == 0
	}
	if l, ok := n.(blocks.Literal); ok {
		if lst, ok2 := l.Val.(*value.List); ok2 {
			return lst.Len() == 0
		}
	}
	return false
}

// cListSupport is the node_t machinery of Listing 5, verbatim in shape.
const cListSupport = `typedef struct node {
    int data;
    struct node *next;
} node_t;

void append(int d, node_t *p) {
    while (p->next != NULL)
        p = p->next;
    p->next = (node_t *) malloc(sizeof(node_t));
    p = p->next;
    p->data = d;
    p->next = NULL;
}
`

// Program translates a whole script into a complete, compilable C program —
// the output of the "code of" block under the "map to C" mapping
// (Figure 16 → Listing 5).
func (e *CEmitter) Program(s *blocks.Script) (string, error) {
	scan(s, e)
	body, err := e.t.Script(s, 1)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("#include <stdio.h>\n#include <stdlib.h>\n")
	if e.needsMath {
		b.WriteString("#include <math.h>\n")
	}
	if e.needsUnistd {
		b.WriteString("#include <unistd.h>\n")
	}
	if e.needsOMP {
		b.WriteString("#include <omp.h>\n")
	}
	b.WriteString("\n")
	if e.needsList {
		b.WriteString(cListSupport)
		b.WriteString("\n")
	}
	b.WriteString("int main()\n{\n")
	if body != "" {
		b.WriteString(body)
		b.WriteString("\n")
	}
	b.WriteString("    return (0);\n}\n")
	return b.String(), nil
}

// scan walks the script to detect which support code the program needs.
func scan(s *blocks.Script, e *CEmitter) {
	var walk func(n blocks.Node)
	walk = func(n blocks.Node) {
		switch x := n.(type) {
		case *blocks.Block:
			switch x.Op {
			case "doAddToList", "reportNewList":
				e.needsList = true
			case "reportMonadic", "reportRound":
				e.needsMath = true
			case "doWait":
				e.needsUnistd = true
			}
			for _, in := range x.Inputs {
				walk(in)
			}
		case blocks.ScriptNode:
			for _, blk := range x.Script.Blocks {
				walk(blk)
			}
		case blocks.RingNode:
			if body, ok := x.Body.(blocks.Node); ok {
				walk(body)
			}
			if body, ok := x.Body.(*blocks.Script); ok {
				for _, blk := range body.Blocks {
					walk(blk)
				}
			}
		}
	}
	for _, blk := range s.Blocks {
		walk(blk)
	}
}

// Figure16Script is the Snap! script of Figure 16: the non-parallel map
// example written out explicitly "so that the code translation is easier
// to follow" — build list a, empty list b, loop i over a appending
// (item i of a) × 10 to b.
func Figure16Script() *blocks.Script {
	return blocks.NewScript(
		blocks.DeclareLocal("a", "b"),
		blocks.SetVar("a", blocks.ListOf(blocks.Num(3), blocks.Num(7), blocks.Num(8))),
		blocks.SetVar("b", blocks.ListOf()),
		blocks.For("i", blocks.Num(1), blocks.LengthOf(blocks.Var("a")),
			blocks.Body(
				blocks.AddToList(
					blocks.Product(blocks.ItemOf(blocks.Var("i"), blocks.Var("a")), blocks.Num(10)),
					blocks.Var("b")),
			)),
	)
}

// Listing5 generates the C translation of Figure 16 — the paper's
// Listing 5.
func Listing5() (string, error) {
	return NewCEmitter().Program(Figure16Script())
}
