package codegen

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/blocks"
)

// This file holds the JavaScript, Python, and Go mapping tables — "to
// change the back-end language to which the Snap! scripts are being
// mapped ... the 'map to C' block is changed to a 'map to JavaScript'
// block" (§6.2). Each table is one such mapping block.

func jsQuote(s string) string {
	return strconv.Quote(s)
}

// JSLang returns the Snap!→JavaScript mapping. Its parallelMap mapping
// emits Parallel.js code in the exact shape of the paper's Listing 1.
func JSLang() *Lang {
	l := &Lang{
		Name:        "js",
		TrueLit:     "true",
		FalseLit:    "false",
		IndentUnit:  "    ",
		StmtSuffix:  ";",
		QuoteText:   jsQuote,
		LineComment: "//",
		Expr: map[string]string{
			"reportSum":              "(<#1> + <#2>)",
			"reportDifference":       "(<#1> - <#2>)",
			"reportProduct":          "(<#1> * <#2>)",
			"reportQuotient":         "(<#1> / <#2>)",
			"reportModulus":          "(((<#1> % <#2>) + <#2>) % <#2>)",
			"reportRound":            "Math.round(<#1>)",
			"reportLessThan":         "(<#1> < <#2>)",
			"reportEquals":           "(<#1> == <#2>)",
			"reportGreaterThan":      "(<#1> > <#2>)",
			"reportAnd":              "(<#1> && <#2>)",
			"reportOr":               "(<#1> || <#2>)",
			"reportNot":              "(!<#1>)",
			"reportJoinWords":        "(String(<#1>) + String(<#2>))",
			"reportListItem":         "<#2>[<#1> - 1]",
			"reportListLength":       "<#1>.length",
			"reportListContainsItem": "<#1>.includes(<#2>)",
			"reportStringSize":       "String(<#1>).length",
			"reportTextSplit":        "String(<#1>).split(<#2>)",
		},
		Stmt: map[string]string{
			"doSetVar":    "let <$1> = <#2>;",
			"doChangeVar": "<$1> += <#2>;",
			"doIf":        "if (<#1>) {\n<&2>\n}",
			"doIfElse":    "if (<#1>) {\n<&2>\n} else {\n<&3>\n}",
			"doRepeat":    "for (let _r = 0; _r < <#1>; _r++) {\n<&2>\n}",
			"doForever":   "while (true) {\n<&1>\n}",
			"doUntil":     "while (!(<#1>)) {\n<&2>\n}",
			"doFor":       "for (let <$1> = <#2>; <$1> <= <#3>; <$1>++) {\n<&4>\n}",
			"doAddToList": "<$2>.push(<#1>);",
			"doReport":    "return <#1>;",
			"bubble":      "console.log(<#1>);",
		},
		Custom: map[string]GenFunc{},
	}
	l.Custom["doDeclareVariables"] = func(*Translator, *blocks.Block, int) (string, error) {
		return "", nil // declarations happen at first assignment
	}
	l.Custom["reportNewList"] = func(t *Translator, b *blocks.Block, _ int) (string, error) {
		parts := make([]string, len(b.Inputs))
		for i := range b.Inputs {
			s, err := t.Expr(b.Input(i))
			if err != nil {
				return "", err
			}
			parts[i] = s
		}
		return "[" + strings.Join(parts, ", ") + "]", nil
	}
	l.Custom["reportMap"] = func(t *Translator, b *blocks.Block, _ int) (string, error) {
		fn, err := ringAsLambda(t, b.Input(0), "function (x) { return %s; }")
		if err != nil {
			return "", err
		}
		list, err := t.Expr(b.Input(1))
		if err != nil {
			return "", err
		}
		return list + ".map(" + fn + ")", nil
	}
	// parallelMap emits the Parallel.js idiom of Listing 1:
	//   new Parallel(list, {maxWorkers: n}).map(fn)
	l.Custom["reportParallelMap"] = func(t *Translator, b *blocks.Block, _ int) (string, error) {
		fn, err := ringAsLambda(t, b.Input(0), "function (x) { return %s; }")
		if err != nil {
			return "", err
		}
		list, err := t.Expr(b.Input(1))
		if err != nil {
			return "", err
		}
		workersExpr := "navigator.hardwareConcurrency || 4"
		if _, empty := b.Input(2).(blocks.EmptySlot); !empty {
			workersExpr, err = t.Expr(b.Input(2))
			if err != nil {
				return "", err
			}
		}
		return fmt.Sprintf("new Parallel(%s, {maxWorkers: %s}).map(%s)", list, workersExpr, fn), nil
	}
	return l
}

// ringAsLambda translates a ring input into an anonymous function using
// the given wrapper format, with x as the parameter.
func ringAsLambda(t *Translator, n blocks.Node, wrapper string) (string, error) {
	ring, ok := n.(blocks.RingNode)
	if !ok {
		return "", fmt.Errorf("expected a ring")
	}
	body, ok := ring.Body.(blocks.Node)
	if !ok {
		return "", fmt.Errorf("expected a reporter ring")
	}
	if len(ring.Params) == 1 {
		body = renameVar(body, ring.Params[0])
	}
	expr, err := t.WithImplicits("x").Expr(body)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf(wrapper, expr), nil
}

func pyQuote(s string) string {
	return strconv.Quote(s)
}

// PythonLang returns the Snap!→Python mapping.
func PythonLang() *Lang {
	l := &Lang{
		Name:        "python",
		TrueLit:     "True",
		FalseLit:    "False",
		IndentUnit:  "    ",
		StmtSuffix:  "",
		EmptyBody:   "pass",
		QuoteText:   pyQuote,
		LineComment: "#",
		Expr: map[string]string{
			"reportSum":              "(<#1> + <#2>)",
			"reportDifference":       "(<#1> - <#2>)",
			"reportProduct":          "(<#1> * <#2>)",
			"reportQuotient":         "(<#1> / <#2>)",
			"reportModulus":          "(<#1> % <#2>)",
			"reportRound":            "round(<#1>)",
			"reportLessThan":         "(<#1> < <#2>)",
			"reportEquals":           "(<#1> == <#2>)",
			"reportGreaterThan":      "(<#1> > <#2>)",
			"reportAnd":              "(<#1> and <#2>)",
			"reportOr":               "(<#1> or <#2>)",
			"reportNot":              "(not <#1>)",
			"reportJoinWords":        "(str(<#1>) + str(<#2>))",
			"reportListItem":         "<#2>[<#1> - 1]",
			"reportListLength":       "len(<#1>)",
			"reportListContainsItem": "(<#2> in <#1>)",
			"reportStringSize":       "len(str(<#1>))",
			"reportTextSplit":        "str(<#1>).split(<#2>)",
			"reportNumbers":          "list(range(<#1>, <#2> + 1))",
		},
		Stmt: map[string]string{
			"doSetVar":    "<$1> = <#2>",
			"doChangeVar": "<$1> += <#2>",
			"doIf":        "if <#1>:\n<&2>",
			"doIfElse":    "if <#1>:\n<&2>\nelse:\n<&3>",
			"doRepeat":    "for _r in range(<#1>):\n<&2>",
			"doForever":   "while True:\n<&1>",
			"doUntil":     "while not (<#1>):\n<&2>",
			"doFor":       "for <$1> in range(<#2>, <#3> + 1):\n<&4>",
			"doForEach":   "for <$1> in <#2>:\n<&3>",
			"doAddToList": "<$2>.append(<#1>)",
			"doReport":    "return <#1>",
			"bubble":      "print(<#1>)",
		},
		Custom: map[string]GenFunc{},
	}
	l.Custom["doDeclareVariables"] = func(*Translator, *blocks.Block, int) (string, error) {
		return "", nil // declarations happen at first assignment
	}
	l.Custom["reportNewList"] = func(t *Translator, b *blocks.Block, _ int) (string, error) {
		parts := make([]string, len(b.Inputs))
		for i := range b.Inputs {
			s, err := t.Expr(b.Input(i))
			if err != nil {
				return "", err
			}
			parts[i] = s
		}
		return "[" + strings.Join(parts, ", ") + "]", nil
	}
	l.Custom["reportMap"] = func(t *Translator, b *blocks.Block, _ int) (string, error) {
		fn, err := ringAsLambda(t, b.Input(0), "%s")
		if err != nil {
			return "", err
		}
		list, err := t.Expr(b.Input(1))
		if err != nil {
			return "", err
		}
		return "[" + fn + " for x in " + list + "]", nil
	}
	l.Custom["reportParallelMap"] = func(t *Translator, b *blocks.Block, _ int) (string, error) {
		fn, err := ringAsLambda(t, b.Input(0), "lambda x: %s")
		if err != nil {
			return "", err
		}
		list, err := t.Expr(b.Input(1))
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("multiprocessing.Pool().map(%s, %s)", fn, list), nil
	}
	return l
}

// GoLang returns the Snap!→Go mapping — a language the paper did not ship
// but whose mapping "can easily be specified by the user by creating the
// corresponding mapping block".
func GoLang() *Lang {
	l := &Lang{
		Name:        "go",
		TrueLit:     "true",
		FalseLit:    "false",
		IndentUnit:  "\t",
		StmtSuffix:  "",
		QuoteText:   strconv.Quote,
		LineComment: "//",
		Expr: map[string]string{
			"reportSum":         "(<#1> + <#2>)",
			"reportDifference":  "(<#1> - <#2>)",
			"reportProduct":     "(<#1> * <#2>)",
			"reportQuotient":    "(<#1> / <#2>)",
			"reportRound":       "math.Round(<#1>)",
			"reportLessThan":    "(<#1> < <#2>)",
			"reportEquals":      "(<#1> == <#2>)",
			"reportGreaterThan": "(<#1> > <#2>)",
			"reportAnd":         "(<#1> && <#2>)",
			"reportOr":          "(<#1> || <#2>)",
			"reportNot":         "(!<#1>)",
			"reportListItem":    "<#2>[<#1>-1]",
			"reportListLength":  "len(<#1>)",
		},
		Stmt: map[string]string{
			"doSetVar":    "<$1> := <#2>",
			"doChangeVar": "<$1> += <#2>",
			"doIf":        "if <#1> {\n<&2>\n}",
			"doIfElse":    "if <#1> {\n<&2>\n} else {\n<&3>\n}",
			"doRepeat":    "for _r := 0; _r < <#1>; _r++ {\n<&2>\n}",
			"doForever":   "for {\n<&1>\n}",
			"doUntil":     "for !(<#1>) {\n<&2>\n}",
			"doFor":       "for <$1> := <#2>; <$1> <= <#3>; <$1>++ {\n<&4>\n}",
			"doAddToList": "<$2> = append(<$2>, <#1>)",
			"doReport":    "return <#1>",
			"bubble":      "fmt.Println(<#1>)",
		},
		Custom: map[string]GenFunc{},
	}
	l.Custom["doDeclareVariables"] = func(*Translator, *blocks.Block, int) (string, error) {
		return "", nil // declarations happen at first assignment
	}
	l.Custom["reportNewList"] = func(t *Translator, b *blocks.Block, _ int) (string, error) {
		parts := make([]string, len(b.Inputs))
		for i := range b.Inputs {
			s, err := t.Expr(b.Input(i))
			if err != nil {
				return "", err
			}
			parts[i] = s
		}
		return "[]float64{" + strings.Join(parts, ", ") + "}", nil
	}
	return l
}
