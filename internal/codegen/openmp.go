package codegen

import (
	"fmt"
	"strings"

	"repro/internal/blocks"
	"repro/internal/value"
)

// This file implements §6's Snap!→OpenMP pipeline: the mapReduce block is
// translated to a text file of functions carrying OpenMP pragma
// annotations (Listing 6), a driver containing main (Listing 7), the kvp.h
// record header, and — per §6.3's future-work list, which we implement —
// the Makefile that automates compilation/linking and an outline batch
// submission script for supercomputer schedulers.

// Listing3 is the paper's sequential hello-world C program.
const Listing3 = `void main() {
    int ID = 0;
    printf(" hello(%d), ", ID);
    printf(" world(%d) \n", ID);
}
`

// Listing4 is the paper's OpenMP version: "by adding a simple directive
// (or pragma) and a function call to obtain the thread ID, the previous
// example readily compiles into a parallel program."
const Listing4 = `#include "omp.h"
void main() {
    #pragma omp parallel
    {
        int ID = omp_get_thread_num();
        printf(" hello(%d), ", ID);
        printf(" world(%d) \n", ID);
    }
}
`

// KVPHeader is kvp.h: the key/value record both Listing 6 and Listing 7
// include.
const KVPHeader = `#ifndef KVP_H
#define KVP_H

#include <stddef.h>

#define MAXKEY 64

typedef struct KVP {
    char  key[MAXKEY];
    float val;
} KVP;

int map(KVP *in, KVP *out);
int reduce(KVP *in, KVP *out);
int compare(const void *a, const void *b);
int input(int *nkvp, KVP **list);
int output(int nkvp, KVP *list);

#endif
`

// ReduceKind classifies the reduce ring into one of the reducer shapes the
// generator knows how to emit.
type ReduceKind int

// The recognized reducers.
const (
	ReduceUnknown ReduceKind = iota
	ReduceAvg                // quotient of a sum-combine by the length
	ReduceSum                // sum-combine
	ReduceCount              // length of the value list
)

// String names the reducer.
func (k ReduceKind) String() string {
	switch k {
	case ReduceAvg:
		return "avg"
	case ReduceSum:
		return "sum"
	case ReduceCount:
		return "count"
	}
	return "unknown"
}

// ClassifyReducer pattern-matches a reduce ring's body against the shapes
// the mapReduce examples use: average (Figure 20), sum (word count), and
// count.
func ClassifyReducer(r blocks.RingNode) ReduceKind {
	body, ok := r.Body.(*blocks.Block)
	if !ok {
		return ReduceUnknown
	}
	switch body.Op {
	case "reportQuotient":
		num, okN := body.Input(0).(*blocks.Block)
		den, okD := body.Input(1).(*blocks.Block)
		if okN && okD && isSumCombine(num) && den.Op == "reportListLength" {
			return ReduceAvg
		}
	case "reportCombine":
		if isSumCombine(body) {
			return ReduceSum
		}
	case "reportListLength":
		return ReduceCount
	}
	return ReduceUnknown
}

func isSumCombine(b *blocks.Block) bool {
	if b.Op != "reportCombine" {
		return false
	}
	ring, ok := b.Input(1).(blocks.RingNode)
	if !ok {
		return false
	}
	inner, ok := ring.Body.(*blocks.Block)
	return ok && inner.Op == "reportSum"
}

// MapperCode translates a map ring's body into the C expression of the
// generated map function, with the ring's argument spelled "in->val" —
// producing exactly Figure 19's `out->val = ((5 * (in->val - 32)) / 9);`
// for the Fahrenheit-to-Celsius ring.
func MapperCode(r blocks.RingNode) (string, error) {
	t := New(CLang())
	var sub *Translator
	if len(r.Params) > 0 {
		// Named parameter: rename it to in->val.
		sub = t.WithImplicits("in->val")
		// Translate with the param treated as a variable; substitute
		// after the fact is fragile, so reject multi-param rings.
		if len(r.Params) > 1 {
			return "", fmt.Errorf("map ring must take one input")
		}
		body, ok := r.Body.(blocks.Node)
		if !ok {
			return "", fmt.Errorf("map ring must be a reporter")
		}
		expr, err := sub.Expr(renameVar(body, r.Params[0]))
		if err != nil {
			return "", err
		}
		return expr, nil
	}
	sub = t.WithImplicits("in->val")
	body, ok := r.Body.(blocks.Node)
	if !ok {
		return "", fmt.Errorf("map ring must be a reporter")
	}
	return sub.Expr(body)
}

// renameVar rewrites references to the named variable into empty slots so
// the implicit-argument mechanism renders them.
func renameVar(n blocks.Node, name string) blocks.Node {
	switch x := n.(type) {
	case blocks.VarGet:
		if x.Name == name {
			return blocks.EmptySlot{}
		}
		return x
	case *blocks.Block:
		out := &blocks.Block{Op: x.Op, Inputs: make([]blocks.Node, len(x.Inputs))}
		for i, in := range x.Inputs {
			out.Inputs[i] = renameVar(in, name)
		}
		return out
	default:
		return n
	}
}

// Listing6 generates the combined map and reduce functions file — the
// paper's Listing 6, shape-for-shape, including the recursive avg() helper
// exactly as the paper prints it. (The paper's avg() mis-parenthesizes the
// running average and its reduce calls avg(in->val) on a scalar; both are
// schematic in the original. The display artifact reproduces them
// faithfully; RunnableProgram below is the version that actually compiles
// and computes — the paper-vs-built delta is recorded in EXPERIMENTS.md.)
func Listing6(mapExpr string, kind ReduceKind) string {
	var reduceBody string
	switch kind {
	case ReduceAvg:
		reduceBody = "out->val = avg(in->val);"
	case ReduceSum:
		reduceBody = "out->val = sum(in->val);"
	case ReduceCount:
		reduceBody = "out->val = count(in->val);"
	default:
		reduceBody = "out->val = in->val;"
	}
	var b strings.Builder
	b.WriteString("#include <math.h>\n#include <string.h>\n#include \"kvp.h\"\n\n")
	b.WriteString(`float avg(float *a, size_t count) {
    if (count == 1)
        return *a;
    return (*a + ((count-1)*avg(a+1,count-1))/count);
}

`)
	b.WriteString("int map (KVP *in, KVP *out) {\n")
	b.WriteString("    strncpy (out->key, in->key, MAXKEY);\n")
	b.WriteString("    out->val = " + mapExpr + ";\n")
	b.WriteString("    return 0;\n}\n\n")
	b.WriteString("int reduce (KVP *in, KVP *out) {\n")
	b.WriteString("    strncpy (out->key, in->key, MAXKEY);\n")
	b.WriteString("    " + reduceBody + "\n")
	b.WriteString("    return 0;\n}\n")
	return b.String()
}

// Listing7 is the OpenMP driver containing main — the paper's Listing 7,
// shape-for-shape: parallel-for map phase, qsort on keys, parallel-for
// reduce phase.
const Listing7 = `/* OpenMP driver for Parallel Snap! MapReduce code output. */
#include <omp.h>
#include <stdlib.h>
#include <string.h>
#include <stdio.h>
#include "kvp.h"

int main(int argc, char *argv[]) {
    int nkvp;
    KVP *inputlist, *midlist, *outputlist;

    if (input(&nkvp, &inputlist) != 0) {
        return 1;
    }
    midlist = malloc(nkvp * sizeof(struct KVP));

    /* Run mapper */
    #pragma omp parallel for shared(nkvp, inputlist, midlist)
    for (int i = 0; i < nkvp; i++) {
        map(&inputlist[i], &midlist[i]);
    }

    /* Sort on keys */
    qsort(midlist, nkvp, sizeof(KVP), compare);
    outputlist = malloc(nkvp * sizeof(struct KVP));

    /* Run reducer */
    #pragma omp parallel for shared(nkvp, midlist, outputlist)
    for (int i = 0; i < nkvp; i++) {
        reduce(&midlist[i], &outputlist[i]);
    }

    if (output(nkvp, outputlist) != 0) {
        exit(1);
    }

    free(inputlist);
    free(outputlist);

    return 0;
}
`

// RunnableProgram generates a single-file, genuinely compilable and
// runnable OpenMP MapReduce program for the given mapper expression,
// reducer kind, and embedded dataset. It keeps Listing 7's structure —
// parallel map, qsort, reduce — but performs the reduce per key group so
// the output is the actual MapReduce result (the paper's elementwise
// driver is schematic). This is what the gcc-gated integration test
// compiles with -fopenmp and runs.
func RunnableProgram(mapExpr string, kind ReduceKind, data []float64) string {
	var reduceExpr string
	switch kind {
	case ReduceSum:
		reduceExpr = "s"
	case ReduceCount:
		reduceExpr = "(float)n"
	default: // avg
		reduceExpr = "s / n"
	}
	var vals strings.Builder
	for i, d := range data {
		if i > 0 {
			vals.WriteString(", ")
		}
		fmt.Fprintf(&vals, "%g", d)
	}
	return fmt.Sprintf(`/* OpenMP driver for Parallel Snap! MapReduce code output. */
#include <omp.h>
#include <stdlib.h>
#include <string.h>
#include <stdio.h>

#define MAXKEY 64
typedef struct KVP {
    char  key[MAXKEY];
    float val;
} KVP;

static float dataset[] = { %s };

int input(int *nkvp, KVP **list) {
    *nkvp = (int)(sizeof(dataset)/sizeof(dataset[0]));
    *list = malloc(*nkvp * sizeof(KVP));
    for (int i = 0; i < *nkvp; i++) {
        (*list)[i].key[0] = '\0';
        (*list)[i].val = dataset[i];
    }
    return 0;
}

int map(KVP *in, KVP *out) {
    strncpy(out->key, in->key, MAXKEY);
    out->val = %s;
    return 0;
}

int compare(const void *a, const void *b) {
    return strncmp(((const KVP *)a)->key, ((const KVP *)b)->key, MAXKEY);
}

void group_reduce(KVP *in, int n, KVP *out) {
    float s = 0;
    strncpy(out->key, in->key, MAXKEY);
    for (int i = 0; i < n; i++)
        s += in[i].val;
    out->val = %s;
}

int output(int nkvp, KVP *list) {
    for (int i = 0; i < nkvp; i++)
        printf("%%s %%g\n", list[i].key, list[i].val);
    return 0;
}

int main(int argc, char *argv[]) {
    int nkvp;
    KVP *inputlist, *midlist, *outputlist;

    if (input(&nkvp, &inputlist) != 0) {
        return 1;
    }
    midlist = malloc(nkvp * sizeof(KVP));

    /* Run mapper */
    #pragma omp parallel for shared(nkvp, inputlist, midlist)
    for (int i = 0; i < nkvp; i++) {
        map(&inputlist[i], &midlist[i]);
    }

    /* Sort on keys */
    qsort(midlist, nkvp, sizeof(KVP), compare);
    outputlist = malloc(nkvp * sizeof(KVP));

    /* Run reducer per key group */
    int groups = 0;
    for (int i = 0; i < nkvp; ) {
        int j = i;
        while (j < nkvp && strncmp(midlist[j].key, midlist[i].key, MAXKEY) == 0)
            j++;
        group_reduce(&midlist[i], j - i, &outputlist[groups++]);
        i = j;
    }

    if (output(groups, outputlist) != 0) {
        exit(1);
    }

    free(inputlist);
    free(midlist);
    free(outputlist);

    return 0;
}
`, vals.String(), mapExpr, reduceExpr)
}

// Makefile automates "the compilation and linking of the textual output
// from the code mapping process in order to fulfill the same requirements
// as are currently filled by the Makefile in command-line programming
// environments" (§6.3).
const Makefile = `CC      = gcc
CFLAGS  = -O2 -std=c99 -fopenmp
LDLIBS  = -lm

all: mapreduce

mapreduce: main.o mapreduce.o
	$(CC) $(CFLAGS) -o $@ $^ $(LDLIBS)

main.o: main.c kvp.h
	$(CC) $(CFLAGS) -c main.c

mapreduce.o: mapreduce.c kvp.h
	$(CC) $(CFLAGS) -c mapreduce.c

clean:
	rm -f *.o mapreduce
`

// BatchScript generates the outline batch submission script of §6.3:
// "The Snap! environment can be extended to generate an outline of the
// batch submission script, if not its entirety."
func BatchScript(jobName string, nodes, threads, walltimeMinutes int) string {
	return fmt.Sprintf(`#!/bin/bash
#SBATCH --job-name=%s
#SBATCH --nodes=%d
#SBATCH --ntasks=1
#SBATCH --cpus-per-task=%d
#SBATCH --time=00:%02d:00
#SBATCH --output=%s.%%j.out

export OMP_NUM_THREADS=%d

make
./mapreduce < input.dat > output.dat
`, jobName, nodes, threads, walltimeMinutes, jobName, threads)
}

// MapReduceFiles translates a mapReduce block into the full §6 artifact
// set: kvp.h, mapreduce.c (Listing 6), main.c (Listing 7), a runnable
// single-file program, the Makefile, and the batch script.
func MapReduceFiles(b *blocks.Block, data []float64, threads int) (map[string]string, error) {
	if b.Op != "reportMapReduce" {
		return nil, fmt.Errorf("expected a mapReduce block, got %q", b.Op)
	}
	mapRing, ok := b.Input(0).(blocks.RingNode)
	if !ok {
		return nil, fmt.Errorf("mapReduce's first input must be a ring")
	}
	reduceRing, ok := b.Input(1).(blocks.RingNode)
	if !ok {
		return nil, fmt.Errorf("mapReduce's second input must be a ring")
	}
	mapExpr, err := MapperCode(mapRing)
	if err != nil {
		return nil, err
	}
	kind := ClassifyReducer(reduceRing)
	if kind == ReduceUnknown {
		return nil, fmt.Errorf("unrecognized reduce ring shape: supported are average, sum, and count")
	}
	return map[string]string{
		"kvp.h":       KVPHeader,
		"mapreduce.c": Listing6(mapExpr, kind),
		"main.c":      Listing7,
		"runnable.c":  RunnableProgram(mapExpr, kind, data),
		"Makefile":    Makefile,
		"job.sbatch":  BatchScript("snap-mapreduce", 1, threads, 10),
	}, nil
}

// ParallelMapProgram translates a parallelMap block into a standalone
// OpenMP program: the worker function generated from the ring (Listing 2's
// mappedCode), applied across the data by a parallel-for.
func ParallelMapProgram(b *blocks.Block, data []float64, threads int) (string, error) {
	if b.Op != "reportParallelMap" {
		return "", fmt.Errorf("expected a parallelMap block, got %q", b.Op)
	}
	ring, ok := b.Input(0).(blocks.RingNode)
	if !ok {
		return "", fmt.Errorf("parallelMap's first input must be a ring")
	}
	t := New(CLang()).WithImplicits("x")
	body, ok := ring.Body.(blocks.Node)
	if !ok {
		return "", fmt.Errorf("parallelMap ring must be a reporter")
	}
	var node blocks.Node = body
	if len(ring.Params) == 1 {
		node = renameVar(body, ring.Params[0])
	}
	expr, err := t.Expr(node)
	if err != nil {
		return "", err
	}
	var vals strings.Builder
	for i, d := range data {
		if i > 0 {
			vals.WriteString(", ")
		}
		fmt.Fprintf(&vals, "%g", d)
	}
	return fmt.Sprintf(`/* OpenMP translation of the Snap! parallelMap block. */
#include <omp.h>
#include <stdio.h>

static double in[] = { %s };
#define N ((int)(sizeof(in)/sizeof(in[0])))
static double out[N];

double f(double x) {
    return %s;
}

int main(void) {
    omp_set_num_threads(%d);
    #pragma omp parallel for shared(in, out)
    for (int i = 0; i < N; i++) {
        out[i] = f(in[i]);
    }
    for (int i = 0; i < N; i++) {
        printf("%%g\n", out[i]);
    }
    return 0;
}
`, vals.String(), expr, threads), nil
}

// OpenMPEmitter extends the C emitter so whole scripts containing the
// parallelForEach block translate to OpenMP C: the block's nested script
// becomes the body of a `#pragma omp parallel for` loop over the list,
// with the item variable bound per iteration — the §6 promise applied to
// the §3.3 block.
type OpenMPEmitter struct {
	*CEmitter
}

// NewOpenMPEmitter builds an emitter whose language table adds the
// parallel blocks to the C mapping.
func NewOpenMPEmitter() *OpenMPEmitter {
	e := &OpenMPEmitter{CEmitter: NewCEmitter()}
	lang := e.t.Lang
	lang.Name = "openmp"
	lang.Custom["doParallelForEach"] = e.parallelForEach
	return e
}

// parallelForEach generates the pragma loop. Sequential mode (flag false)
// generates the same loop without the pragma — the one-toggle contrast the
// block teaches.
func (e *OpenMPEmitter) parallelForEach(t *Translator, b *blocks.Block, indent int) (string, error) {
	itemVar, err := rawIdent(b.Input(0))
	if err != nil {
		return "", err
	}
	listExpr, err := t.Expr(b.Input(1))
	if err != nil {
		return "", err
	}
	parallel := true
	if lit, ok := b.Input(4).(blocks.Literal); ok {
		if bv, ok2 := lit.Val.(value.Bool); ok2 {
			parallel = bool(bv)
		}
	}
	e.declared[itemVar] = CDouble
	body, err := t.BodyOf(b.Input(3), indent+1)
	if err != nil {
		return "", err
	}
	ind := strings.Repeat(t.Lang.IndentUnit, indent)
	var out strings.Builder
	if parallel {
		e.needsOMP = true
		out.WriteString(ind + "#pragma omp parallel for\n")
	}
	fmt.Fprintf(&out, "%sfor (int _i = 0; _i < (int)(sizeof(%s)/sizeof(%s[0])); _i++) {\n",
		ind, listExpr, listExpr)
	fmt.Fprintf(&out, "%s%sdouble %s = %s[_i];\n", ind, t.Lang.IndentUnit, itemVar, listExpr)
	if body != "" {
		out.WriteString(body + "\n")
	}
	out.WriteString(ind + "}")
	return out.String(), nil
}
