package omp

import (
	"testing"
	"testing/quick"
)

func TestSimulateMakespanUniform(t *testing.T) {
	unit := func(int) int64 { return 1 }
	for _, cfg := range []ForConfig{
		{Threads: 4, Schedule: Static},
		{Threads: 4, Schedule: Static, Chunk: 8},
		{Threads: 4, Schedule: Dynamic, Chunk: 4},
		{Threads: 4, Schedule: Guided},
	} {
		mk, per := SimulateMakespan(100, cfg, unit)
		// Chunk granularity may leave one thread up to a chunk over
		// the 25-iteration ideal.
		slack := int64(cfg.Chunk)
		if mk < 25 || mk > 25+slack {
			t.Errorf("%v chunk=%d: makespan = %d, want 25..%d",
				cfg.Schedule, cfg.Chunk, mk, 25+slack)
		}
		var total int64
		for _, c := range per {
			total += c
		}
		if total != 100 {
			t.Errorf("%v: total = %d", cfg.Schedule, total)
		}
	}
}

func TestSimulateMakespanSkewOrdering(t *testing.T) {
	// On linearly skewed work: plain static worst, chunked static
	// better, dynamic/guided near-ideal — the E11 result.
	cost := func(i int) int64 { return int64(i) }
	const n, threads = 4000, 4
	static, _ := SimulateMakespan(n, ForConfig{Threads: threads, Schedule: Static}, cost)
	chunked, _ := SimulateMakespan(n, ForConfig{Threads: threads, Schedule: Static, Chunk: 64}, cost)
	dynamic, _ := SimulateMakespan(n, ForConfig{Threads: threads, Schedule: Dynamic, Chunk: 16}, cost)
	guided, _ := SimulateMakespan(n, ForConfig{Threads: threads, Schedule: Guided}, cost)
	if !(static > chunked && chunked > dynamic) {
		t.Errorf("expected static(%d) > static,64(%d) > dynamic,16(%d)", static, chunked, dynamic)
	}
	total := int64(n * (n - 1) / 2)
	ideal := total / threads
	if dynamic > ideal*105/100 || guided > ideal*105/100 {
		t.Errorf("dynamic=%d guided=%d should be within 5%% of ideal %d", dynamic, guided, ideal)
	}
}

func TestSimulateMakespanEdges(t *testing.T) {
	cost := func(int) int64 { return 1 }
	mk, per := SimulateMakespan(0, ForConfig{Threads: 4}, cost)
	if mk != 0 || len(per) != 1 {
		// threads clamp to n then to 1 for empty loops
		t.Errorf("empty: %d %v", mk, per)
	}
	mk, per = SimulateMakespan(2, ForConfig{Threads: 8, Schedule: Guided}, cost)
	if len(per) != 2 || mk != 1 {
		t.Errorf("clamped: %d %v", mk, per)
	}
	mk, _ = SimulateMakespan(5, ForConfig{Schedule: Dynamic}, cost)
	if mk < 1 {
		t.Errorf("default threads: %d", mk)
	}
}

// Property: simulated totals are conserved and the makespan respects the
// total/threads lower bound, for every schedule and chunk.
func TestPropertySimulateBounds(t *testing.T) {
	f := func(nRaw, tRaw, cRaw, sRaw uint8) bool {
		n := int(nRaw)%300 + 1
		threads := int(tRaw)%8 + 1
		chunk := int(cRaw) % 12
		sched := Schedule(int(sRaw) % 3)
		cost := func(i int) int64 { return int64(i%7 + 1) }
		var total int64
		for i := 0; i < n; i++ {
			total += cost(i)
		}
		mk, per := SimulateMakespan(n, ForConfig{Threads: threads, Schedule: sched, Chunk: chunk}, cost)
		var sum int64
		for _, c := range per {
			sum += c
		}
		if sum != total {
			return false
		}
		eff := threads
		if eff > n {
			eff = n
		}
		lower := (total + int64(eff) - 1) / int64(eff)
		return mk >= lower && mk <= total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
