package omp

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestParallelRunsEveryThread(t *testing.T) {
	seen := make([]bool, 5)
	Parallel(5, func(tid int, team *Team) {
		seen[tid] = true
		if team.Size() != 5 {
			t.Errorf("team size = %d", team.Size())
		}
	})
	for tid, ok := range seen {
		if !ok {
			t.Errorf("thread %d never ran", tid)
		}
	}
}

func TestParallelDefaultsAndPanic(t *testing.T) {
	ran := atomic.Int64{}
	Parallel(0, func(int, *Team) { ran.Add(1) })
	if int(ran.Load()) != DefaultThreads() {
		t.Errorf("default team ran %d threads, want %d", ran.Load(), DefaultThreads())
	}
	defer func() {
		if recover() == nil {
			t.Error("panic inside a region must propagate after the join")
		}
	}()
	Parallel(2, func(tid int, _ *Team) {
		if tid == 1 {
			panic("thread fault")
		}
	})
}

func TestBarrier(t *testing.T) {
	const threads = 4
	var phase1, phase2 atomic.Int64
	Parallel(threads, func(tid int, team *Team) {
		phase1.Add(1)
		team.Barrier()
		// After the barrier every thread must observe all phase-1
		// increments.
		if phase1.Load() != threads {
			t.Errorf("thread %d passed the barrier early (%d/%d)",
				tid, phase1.Load(), threads)
		}
		phase2.Add(1)
		team.Barrier() // reusable
		if phase2.Load() != threads {
			t.Errorf("second barrier leaked")
		}
	})
}

func TestCriticalExcludes(t *testing.T) {
	counter := 0 // unsynchronized on purpose; critical must protect it
	Parallel(8, func(_ int, team *Team) {
		for i := 0; i < 1000; i++ {
			team.Critical(func() { counter++ })
		}
	})
	if counter != 8000 {
		t.Errorf("critical section lost updates: %d", counter)
	}
}

func TestSingleAndMaster(t *testing.T) {
	var single, master atomic.Int64
	Parallel(6, func(tid int, team *Team) {
		team.Single(0, func() { single.Add(1) })
		team.Single(1, func() { single.Add(1) })
		team.Master(tid, func() { master.Add(1) })
	})
	if single.Load() != 2 {
		t.Errorf("single regions ran %d times, want 2", single.Load())
	}
	if master.Load() != 1 {
		t.Errorf("master ran %d times, want 1", master.Load())
	}
}

func TestForCoversAllIterationsEverySchedule(t *testing.T) {
	for _, sched := range []Schedule{Static, Dynamic, Guided} {
		for _, chunk := range []int{0, 1, 3, 16} {
			if sched == Dynamic && chunk == 0 {
				continue // defaulted below anyway
			}
			n := 101
			hits := make([]int32, n)
			For(n, ForConfig{Threads: 4, Schedule: sched, Chunk: chunk}, func(i, tid int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("%v chunk=%d: iteration %d ran %d times",
						sched, chunk, i, h)
				}
			}
		}
	}
}

func TestForEdgeCases(t *testing.T) {
	ran := false
	For(0, ForConfig{Threads: 4}, func(int, int) { ran = true })
	For(-5, ForConfig{Threads: 4}, func(int, int) { ran = true })
	if ran {
		t.Error("empty loops must not run the body")
	}
	// More threads than iterations.
	var count atomic.Int64
	For(2, ForConfig{Threads: 16, Schedule: Dynamic}, func(int, int) { count.Add(1) })
	if count.Load() != 2 {
		t.Errorf("n=2 ran %d iterations", count.Load())
	}
}

func TestReduceFloat64(t *testing.T) {
	for _, sched := range []Schedule{Static, Dynamic, Guided} {
		sum := ReduceFloat64(1000, ForConfig{Threads: 4, Schedule: sched}, 0,
			func(i, _ int) float64 { return float64(i + 1) },
			func(a, b float64) float64 { return a + b })
		if sum != 500500 {
			t.Errorf("%v: sum 1..1000 = %g", sched, sum)
		}
	}
	// Max reduction with a different identity.
	max := ReduceFloat64(100, ForConfig{Threads: 3}, -1e300,
		func(i, _ int) float64 { return float64((i * 37) % 89) },
		func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		})
	if max != 88 {
		t.Errorf("max = %g, want 88", max)
	}
	// Empty reduction yields the identity.
	if got := ReduceFloat64(0, ForConfig{}, 42,
		func(int, int) float64 { return 0 },
		func(a, b float64) float64 { return a + b }); got != 42 {
		t.Errorf("empty reduce = %g", got)
	}
}

func TestSections(t *testing.T) {
	var a, b, c atomic.Int64
	Sections(2,
		func() { a.Add(1) },
		func() { b.Add(1) },
		func() { c.Add(1) },
	)
	if a.Load() != 1 || b.Load() != 1 || c.Load() != 1 {
		t.Error("each section must run exactly once")
	}
	Sections(0) // no sections, default threads: must not hang
}

func TestScheduleNames(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" ||
		Guided.String() != "guided" || Schedule(7).String() != "schedule(7)" {
		t.Error("schedule names")
	}
}

// Property: every schedule visits each index exactly once for arbitrary
// sizes, thread counts, and chunk sizes.
func TestPropertyForCoverage(t *testing.T) {
	f := func(nRaw, tRaw, cRaw uint8, sRaw uint8) bool {
		n := int(nRaw)%200 + 1
		threads := int(tRaw)%8 + 1
		chunk := int(cRaw) % 10
		sched := Schedule(int(sRaw) % 3)
		hits := make([]int32, n)
		For(n, ForConfig{Threads: threads, Schedule: sched, Chunk: chunk},
			func(i, _ int) { atomic.AddInt32(&hits[i], 1) })
		for _, h := range hits {
			if h != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: reduction equals the sequential fold for any schedule.
func TestPropertyReduce(t *testing.T) {
	f := func(xs []uint8, tRaw, sRaw uint8) bool {
		threads := int(tRaw)%6 + 1
		sched := Schedule(int(sRaw) % 3)
		var want float64
		for _, x := range xs {
			want += float64(x)
		}
		got := ReduceFloat64(len(xs), ForConfig{Threads: threads, Schedule: sched}, 0,
			func(i, _ int) float64 { return float64(xs[i]) },
			func(a, b float64) float64 { return a + b })
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
