package omp

import (
	"sync"
	"testing"
)

func TestAtomicFloat64Add(t *testing.T) {
	var a AtomicFloat64
	Parallel(8, func(int, *Team) {
		for i := 0; i < 1000; i++ {
			a.Add(0.5)
		}
	})
	if got := a.Load(); got != 4000 {
		t.Errorf("atomic adds lost updates: %g, want 4000", got)
	}
	a.Store(-1)
	if a.Load() != -1 {
		t.Error("store/load")
	}
}

func TestAtomicFloat64Max(t *testing.T) {
	var a AtomicFloat64
	a.Store(-1e308)
	Parallel(4, func(tid int, _ *Team) {
		for i := 0; i < 200; i++ {
			a.Max(float64(tid*1000 + i))
		}
	})
	if got := a.Load(); got != 3199 {
		t.Errorf("atomic max = %g, want 3199", got)
	}
	if got := a.Max(5); got != 3199 {
		t.Errorf("max with smaller value = %g", got)
	}
}

func TestOrderedSequencesIterations(t *testing.T) {
	const n = 64
	o := NewOrdered()
	var mu sync.Mutex
	var order []int
	For(n, ForConfig{Threads: 4, Schedule: Dynamic}, func(i, _ int) {
		// Unordered work may race; the ordered region must serialize
		// in iteration order.
		o.Do(i, func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		})
	})
	if len(order) != n {
		t.Fatalf("ordered ran %d regions", len(order))
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("ordered region %d ran out of turn (got iteration %d)", i, got)
		}
	}
}

func TestAtomicReductionMatchesReduceFloat64(t *testing.T) {
	var a AtomicFloat64
	For(1000, ForConfig{Threads: 4, Schedule: Guided}, func(i, _ int) {
		a.Add(float64(i + 1))
	})
	want := ReduceFloat64(1000, ForConfig{Threads: 4}, 0,
		func(i, _ int) float64 { return float64(i + 1) },
		func(x, y float64) float64 { return x + y })
	if a.Load() != want {
		t.Errorf("atomic total %g != reduction %g", a.Load(), want)
	}
}
