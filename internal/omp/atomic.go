package omp

import (
	"math"
	"sync"
	"sync/atomic"
)

// This file adds the remaining OpenMP synchronization constructs the
// generated programs may lean on: `#pragma omp atomic` (lock-free scalar
// updates) and `#pragma omp ordered` (loop iterations executing a region
// in iteration order).

// AtomicFloat64 is a float64 updated with atomic read-modify-write
// operations — the `#pragma omp atomic` update on a double.
type AtomicFloat64 struct {
	bits atomic.Uint64
}

// Load returns the current value.
func (a *AtomicFloat64) Load() float64 {
	return math.Float64frombits(a.bits.Load())
}

// Store sets the value.
func (a *AtomicFloat64) Store(v float64) {
	a.bits.Store(math.Float64bits(v))
}

// Add performs x += v atomically and returns the new value.
func (a *AtomicFloat64) Add(v float64) float64 {
	for {
		old := a.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if a.bits.CompareAndSwap(old, next) {
			return math.Float64frombits(next)
		}
	}
}

// Max performs x = max(x, v) atomically and returns the new value.
func (a *AtomicFloat64) Max(v float64) float64 {
	for {
		old := a.bits.Load()
		cur := math.Float64frombits(old)
		if v <= cur {
			return cur
		}
		if a.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return v
		}
	}
}

// Ordered sequences a region by loop iteration — `#pragma omp ordered`.
// Iterations may execute their unordered work concurrently; each call to
// Do(i, fn) blocks until every iteration below i has completed its ordered
// region, runs fn, then releases iteration i+1.
type Ordered struct {
	mu   sync.Mutex
	cond *sync.Cond
	next int
}

// NewOrdered returns an Ordered starting at iteration 0.
func NewOrdered() *Ordered {
	o := &Ordered{}
	o.cond = sync.NewCond(&o.mu)
	return o
}

// Do runs fn when it is iteration i's turn.
func (o *Ordered) Do(i int, fn func()) {
	o.mu.Lock()
	for o.next != i {
		o.cond.Wait()
	}
	o.mu.Unlock()
	fn()
	o.mu.Lock()
	o.next = i + 1
	o.cond.Broadcast()
	o.mu.Unlock()
}
