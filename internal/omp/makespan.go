package omp

// SimulateMakespan computes, in deterministic virtual time, how the
// configured schedule distributes n iterations with the given per-iteration
// cost across the team, returning per-thread totals and the makespan. The
// static schedules are exact reproductions of the runtime's chunk
// assignment; dynamic and guided are modeled as greedy dispatch — each
// chunk goes to the thread that frees up first — which is their behaviour
// on truly parallel hardware. The benchmark harness reports these virtual
// quantities because wall-clock speedup saturates at 1× on a single-core
// host (the paper likewise reports timestep units, not seconds).
func SimulateMakespan(n int, cfg ForConfig, cost func(i int) int64) (makespan int64, perThread []int64) {
	threads := cfg.Threads
	if threads <= 0 {
		threads = DefaultThreads()
	}
	if threads > n {
		threads = n
	}
	if threads < 1 {
		threads = 1
	}
	perThread = make([]int64, threads)
	if n <= 0 {
		return 0, perThread
	}
	addChunkGreedy := func(lo, hi int) {
		min := 0
		for k := 1; k < threads; k++ {
			if perThread[k] < perThread[min] {
				min = k
			}
		}
		for i := lo; i < hi; i++ {
			perThread[min] += cost(i)
		}
	}
	switch cfg.Schedule {
	case Static:
		if cfg.Chunk <= 0 {
			block := (n + threads - 1) / threads
			for k := 0; k < threads; k++ {
				lo, hi := k*block, (k+1)*block
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					perThread[k] += cost(i)
				}
			}
		} else {
			for start, c := 0, 0; start < n; start, c = start+cfg.Chunk, c+1 {
				end := start + cfg.Chunk
				if end > n {
					end = n
				}
				tid := c % threads
				for i := start; i < end; i++ {
					perThread[tid] += cost(i)
				}
			}
		}
	case Dynamic:
		chunk := cfg.Chunk
		if chunk <= 0 {
			chunk = 1
		}
		for start := 0; start < n; start += chunk {
			end := start + chunk
			if end > n {
				end = n
			}
			addChunkGreedy(start, end)
		}
	case Guided:
		minChunk := cfg.Chunk
		if minChunk <= 0 {
			minChunk = 1
		}
		for next := 0; next < n; {
			remaining := n - next
			chunk := remaining / (2 * threads)
			if chunk < minChunk {
				chunk = minChunk
			}
			end := next + chunk
			if end > n {
				end = n
			}
			addChunkGreedy(next, end)
			next = end
		}
	}
	for _, c := range perThread {
		if c > makespan {
			makespan = c
		}
	}
	return makespan, perThread
}
