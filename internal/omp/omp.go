// Package omp is a Go runtime modeling the OpenMP execution semantics the
// paper's code generator targets (§6.1): fork-join parallel regions,
// worksharing parallel-for loops with static, dynamic, and guided
// schedules, reductions, critical sections, barriers, and single/master
// constructs.
//
// The generated C of §6 runs under a real OpenMP runtime on the authors'
// machines; this package is the executable semantic model that lets every
// generated program's behaviour be exercised inside the Go test suite
// without a C toolchain, and lets the benchmark harness ablate loop
// schedules (experiment E11) — the knob OpenMP programmers reach for first.
package omp

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Schedule selects the worksharing policy of a parallel-for, mirroring
// OpenMP's schedule(static|dynamic|guided[, chunk]) clause.
type Schedule int

// The loop schedules.
const (
	// Static divides iterations into chunks assigned round-robin to
	// threads up front; zero chunk means one contiguous block per
	// thread (OpenMP's default static).
	Static Schedule = iota
	// Dynamic hands out chunks from a shared queue as threads go idle.
	Dynamic
	// Guided hands out exponentially shrinking chunks, trading the
	// scheduling overhead of dynamic against its load balance.
	Guided
)

// String names the schedule in OpenMP spelling.
func (s Schedule) String() string {
	switch s {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	}
	return fmt.Sprintf("schedule(%d)", int(s))
}

// DefaultThreads is the team size when none is requested — OpenMP's
// OMP_NUM_THREADS default of one thread per core.
func DefaultThreads() int {
	if n := runtime.NumCPU(); n > 0 {
		return n
	}
	return 4
}

// Team is one parallel region's thread team: the state behind barriers,
// critical sections, and single constructs.
type Team struct {
	size int

	barrierMu  sync.Mutex
	barrierCv  *sync.Cond
	arrived    int
	generation int

	criticalMu sync.Mutex

	singleMu   sync.Mutex
	singleDone map[int]bool
}

func newTeam(size int) *Team {
	t := &Team{size: size, singleDone: map[int]bool{}}
	t.barrierCv = sync.NewCond(&t.barrierMu)
	return t
}

// Size reports the team's thread count (omp_get_num_threads).
func (t *Team) Size() int { return t.size }

// Barrier blocks until every thread of the team has arrived — the
// `#pragma omp barrier`. It is reusable.
func (t *Team) Barrier() {
	t.barrierMu.Lock()
	gen := t.generation
	t.arrived++
	if t.arrived == t.size {
		t.arrived = 0
		t.generation++
		t.barrierCv.Broadcast()
	} else {
		for gen == t.generation {
			t.barrierCv.Wait()
		}
	}
	t.barrierMu.Unlock()
}

// Critical runs fn under the team's critical-section lock — the
// `#pragma omp critical`.
func (t *Team) Critical(fn func()) {
	t.criticalMu.Lock()
	defer t.criticalMu.Unlock()
	fn()
}

// Single runs fn on exactly one thread of the team per region id — the
// `#pragma omp single nowait`. Threads must pass matching ids (OpenMP
// requires all threads reach the same single constructs in order; the id
// makes that explicit).
func (t *Team) Single(id int, fn func()) {
	t.singleMu.Lock()
	if t.singleDone[id] {
		t.singleMu.Unlock()
		return
	}
	t.singleDone[id] = true
	t.singleMu.Unlock()
	fn()
}

// Master runs fn only on thread 0 — the `#pragma omp master`.
func (t *Team) Master(tid int, fn func()) {
	if tid == 0 {
		fn()
	}
}

// Parallel opens a parallel region with the given team size (0 =
// DefaultThreads): body runs once per thread, receiving the thread id and
// the team. Parallel returns when all threads complete — the implicit join
// of `#pragma omp parallel`. A panic on any thread propagates after join.
func Parallel(threads int, body func(tid int, team *Team)) {
	if threads <= 0 {
		threads = DefaultThreads()
	}
	team := newTeam(threads)
	var wg sync.WaitGroup
	panics := make([]any, threads)
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[tid] = r
				}
			}()
			body(tid, team)
		}(tid)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}

// ForConfig tunes a parallel-for.
type ForConfig struct {
	// Threads is the team size; 0 means DefaultThreads.
	Threads int
	// Schedule picks the worksharing policy.
	Schedule Schedule
	// Chunk is the chunk size; 0 picks the schedule's default
	// (block-per-thread for static, 1 for dynamic, adaptive minimum 1
	// for guided).
	Chunk int
}

// For runs body(i, tid) for every i in [0, n) under the configured
// schedule — `#pragma omp parallel for schedule(...)`.
func For(n int, cfg ForConfig, body func(i, tid int)) {
	if n <= 0 {
		return
	}
	threads := cfg.Threads
	if threads <= 0 {
		threads = DefaultThreads()
	}
	if threads > n {
		threads = n
	}
	switch cfg.Schedule {
	case Static:
		forStatic(n, threads, cfg.Chunk, body)
	case Dynamic:
		chunk := cfg.Chunk
		if chunk <= 0 {
			chunk = 1
		}
		forDynamic(n, threads, chunk, body)
	case Guided:
		forGuided(n, threads, cfg.Chunk, body)
	}
}

func forStatic(n, threads, chunk int, body func(i, tid int)) {
	Parallel(threads, func(tid int, _ *Team) {
		if chunk <= 0 {
			// One contiguous block per thread.
			block := (n + threads - 1) / threads
			lo := tid * block
			hi := lo + block
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				body(i, tid)
			}
			return
		}
		// Round-robin chunks: thread tid owns chunks tid, tid+T, ...
		for start := tid * chunk; start < n; start += threads * chunk {
			end := start + chunk
			if end > n {
				end = n
			}
			for i := start; i < end; i++ {
				body(i, tid)
			}
		}
	})
}

func forDynamic(n, threads, chunk int, body func(i, tid int)) {
	var next atomic.Int64
	Parallel(threads, func(tid int, _ *Team) {
		for {
			start := int(next.Add(int64(chunk))) - chunk
			if start >= n {
				return
			}
			end := start + chunk
			if end > n {
				end = n
			}
			for i := start; i < end; i++ {
				body(i, tid)
			}
		}
	})
}

func forGuided(n, threads, minChunk int, body func(i, tid int)) {
	if minChunk <= 0 {
		minChunk = 1
	}
	var mu sync.Mutex
	next := 0
	Parallel(threads, func(tid int, _ *Team) {
		for {
			mu.Lock()
			remaining := n - next
			if remaining <= 0 {
				mu.Unlock()
				return
			}
			chunk := remaining / (2 * threads)
			if chunk < minChunk {
				chunk = minChunk
			}
			start := next
			next += chunk
			mu.Unlock()
			end := start + chunk
			if end > n {
				end = n
			}
			for i := start; i < end; i++ {
				body(i, tid)
			}
		}
	})
}

// ReduceFloat64 runs a parallel-for with a float64 reduction —
// `#pragma omp parallel for reduction(op: acc)`. identity is op's neutral
// element; op must be associative and commutative.
func ReduceFloat64(n int, cfg ForConfig, identity float64,
	body func(i, tid int) float64, op func(a, b float64) float64) float64 {
	if n <= 0 {
		return identity
	}
	threads := cfg.Threads
	if threads <= 0 {
		threads = DefaultThreads()
	}
	if threads > n {
		threads = n
	}
	if threads < 1 {
		threads = 1
	}
	partial := make([]float64, threads)
	for i := range partial {
		partial[i] = identity
	}
	cfg.Threads = threads
	For(n, cfg, func(i, tid int) {
		partial[tid] = op(partial[tid], body(i, tid))
	})
	acc := identity
	for _, p := range partial {
		acc = op(acc, p)
	}
	return acc
}

// Sections runs each section function on some thread of a team —
// `#pragma omp sections`.
func Sections(threads int, sections ...func()) {
	if threads <= 0 {
		threads = DefaultThreads()
	}
	var next atomic.Int64
	Parallel(threads, func(tid int, _ *Team) {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(sections) {
				return
			}
			sections[i]()
		}
	})
}
