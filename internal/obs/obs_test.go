package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrentHammer drives the Default catalog — counters,
// vec counters, histograms, gauges-at-render, and the span ring — from 64
// goroutines while other goroutines render and read, under -race. The
// registry's contract is that mutation is wait-free and rendering never
// blocks writers; this is the test that holds it to that.
func TestRegistryConcurrentHammer(t *testing.T) {
	prev := Enabled()
	SetEnabled(true)
	t.Cleanup(func() { SetEnabled(prev); ResetSpans() })

	const goroutines = 64
	const iters = 500

	startChunks := PoolChunks.Value()
	startHits := CompileHits.Value()
	startFallbacks := CompileFallbacks.Total()
	startObs := PoolChunkSeconds.Count()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				PoolChunks.Inc()
				CompileHits.Inc()
				CompileFallbacks.With(CompileReasons[i%len(CompileReasons)]).Inc()
				CompileFallbacks.With("no-such-reason").Inc()
				PoolChunkSeconds.Observe(float64(i) * 1e-5)
				MRPhaseSeconds.With("map").Observe(1e-4)
				RecordSpan(Span{ID: fmt.Sprintf("g%d", g), Kind: "test", Dur: time.Microsecond})
				if i%64 == 0 {
					var b strings.Builder
					Default.Render(&b)
					_ = Spans()
					_ = SpansFor("g0")
				}
			}
		}(g)
	}
	wg.Wait()

	const total = goroutines * iters
	if got := PoolChunks.Value() - startChunks; got != total {
		t.Errorf("PoolChunks: got %d increments, want %d", got, total)
	}
	if got := CompileHits.Value() - startHits; got != total {
		t.Errorf("CompileHits: got %d increments, want %d", got, total)
	}
	if got := CompileFallbacks.Total() - startFallbacks; got != 2*total {
		t.Errorf("CompileFallbacks total: got %d, want %d", got, 2*total)
	}
	if got := PoolChunkSeconds.Count() - startObs; got != total {
		t.Errorf("PoolChunkSeconds count: got %d, want %d", got, total)
	}
}

// instrumentedSite mimics every hot-path report site in the engine: one
// atomic load, then the metric mutation only when enabled.
//
//go:noinline
func instrumentedSite() {
	if Enabled() {
		PoolChunks.Inc()
		PoolChunkSeconds.Observe(1e-5)
	}
}

// TestDisabledPathZeroAllocs pins the contract the package doc makes: with
// the switch off, an instrumented site costs one branch and zero
// allocations.
func TestDisabledPathZeroAllocs(t *testing.T) {
	prev := Enabled()
	SetEnabled(false)
	t.Cleanup(func() { SetEnabled(prev) })

	if allocs := testing.AllocsPerRun(1000, instrumentedSite); allocs != 0 {
		t.Fatalf("disabled instrumentation site allocates %.1f per run, want 0", allocs)
	}
}

// TestEnabledPathZeroAllocs: even enabled, counter increments and
// histogram observations are allocation-free — only span recording and
// rendering may allocate.
func TestEnabledPathZeroAllocs(t *testing.T) {
	prev := Enabled()
	SetEnabled(true)
	t.Cleanup(func() { SetEnabled(prev) })

	if allocs := testing.AllocsPerRun(1000, instrumentedSite); allocs != 0 {
		t.Fatalf("enabled counter+histogram site allocates %.1f per run, want 0", allocs)
	}
}

func TestGaugeVecSetAndRender(t *testing.T) {
	r := NewRegistry()
	v := r.NewGaugeVec("test_bytes", "resident bytes", "tier", "project", "ring")
	v.With("project").Set(1024)
	v.With("ring").Add(10)
	v.With("ring").Add(-4)
	v.With("mystery").Set(7) // not pre-registered: lands in other

	if got := v.With("project").Value(); got != 1024 {
		t.Errorf("project = %d, want 1024", got)
	}
	if got := v.With("no-such").Value(); got != 7 {
		t.Errorf("other = %d, want 7", got)
	}

	var b strings.Builder
	r.Render(&b)
	out := b.String()
	for _, want := range []string{
		`test_bytes{tier="project"} 1024`,
		`test_bytes{tier="ring"} 6`,
		`test_bytes{tier="other"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestCounterVecUnknownFallsToOther(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("test_ops_total", "ops", "op", "read", "write")
	v.With("read").Inc()
	v.With("write").Add(2)
	v.With("delete").Inc() // not pre-registered
	v.With("rename").Inc() // not pre-registered

	if got := v.With("read").Value(); got != 1 {
		t.Errorf("read = %d, want 1", got)
	}
	if got := v.With("no-such").Value(); got != 2 {
		t.Errorf("other = %d, want 2 (delete+rename)", got)
	}
	if got := v.Total(); got != 5 {
		t.Errorf("Total = %d, want 5", got)
	}

	var b strings.Builder
	r.Render(&b)
	out := b.String()
	for _, want := range []string{
		`test_ops_total{op="read"} 1`,
		`test_ops_total{op="write"} 2`,
		`test_ops_total{op="other"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_seconds", "t", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5, 0.05} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 5.605; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("Sum = %g, want %g", got, want)
	}
	var b strings.Builder
	r.Render(&b)
	out := b.String()
	for _, want := range []string{
		`test_seconds_bucket{le="0.01"} 1`,
		`test_seconds_bucket{le="0.1"} 3`,
		`test_seconds_bucket{le="1"} 4`,
		`test_seconds_bucket{le="+Inf"} 5`,
		`test_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

// TestRenderDeterministic renders the same registry repeatedly and demands
// byte-identical output — no map-iteration order may leak into a scrape.
func TestRenderDeterministic(t *testing.T) {
	r := NewRegistry()
	r.NewCounterVec("det_fallbacks_total", "f", "reason", "zeta", "alpha", "mid")
	r.NewCounter("det_runs_total", "r")
	r.NewHistogramVec("det_seconds", "s", "phase", []string{"reduce", "map", "shuffle"}, []float64{0.1, 1})
	r.RegisterGauge("det_workers", "w", func() float64 { return 8 })

	var first strings.Builder
	r.Render(&first)
	for i := 0; i < 20; i++ {
		var again strings.Builder
		r.Render(&again)
		if again.String() != first.String() {
			t.Fatalf("render %d differs from first:\n--- first\n%s\n--- again\n%s", i, first.String(), again.String())
		}
	}
	// Families must appear in sorted name order.
	out := first.String()
	iFall := strings.Index(out, "# HELP det_fallbacks_total")
	iRuns := strings.Index(out, "# HELP det_runs_total")
	iSec := strings.Index(out, "# HELP det_seconds")
	iWork := strings.Index(out, "# HELP det_workers")
	if !(iFall >= 0 && iFall < iRuns && iRuns < iSec && iSec < iWork) {
		t.Fatalf("families out of sorted order:\n%s", out)
	}
	// Series within a family sort by label value.
	if a, z := strings.Index(out, `reason="alpha"`), strings.Index(out, `reason="zeta"`); !(a >= 0 && a < z) {
		t.Fatalf("vec series out of sorted order:\n%s", out)
	}
}

func TestDuplicateFamilyPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "d")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a duplicate family did not panic")
		}
	}()
	r.NewCounter("dup_total", "d again")
}

func TestSpanRetention(t *testing.T) {
	SetSpanRetention(4)
	t.Cleanup(func() { SetSpanRetention(512) })

	for i := 0; i < 10; i++ {
		RecordSpan(Span{ID: fmt.Sprintf("s%d", i), Kind: "test"})
	}
	got := Spans()
	if len(got) != 4 {
		t.Fatalf("retained %d spans, want 4", len(got))
	}
	// Oldest-first window over the newest four records.
	for i, s := range got {
		if want := fmt.Sprintf("s%d", 6+i); s.ID != want {
			t.Errorf("span[%d].ID = %q, want %q", i, s.ID, want)
		}
	}
	if sp := SpansFor("s9"); len(sp) != 1 || sp[0].ID != "s9" {
		t.Errorf("SpansFor(s9) = %v, want the one s9 span", sp)
	}
	if sp := SpansFor(""); sp != nil {
		t.Errorf("SpansFor(\"\") = %v, want nil", sp)
	}
	if sp := SpansFor("s0"); sp != nil {
		t.Errorf("SpansFor(s0) = %v, want nil (evicted)", sp)
	}
}

func TestReportTextMentionsNonzeroSeries(t *testing.T) {
	prev := Enabled()
	SetEnabled(true)
	t.Cleanup(func() { SetEnabled(prev); ResetSpans() })

	MRRuns.Inc()
	RecordSpan(Span{ID: "rep", Kind: "session", Dur: 3 * time.Millisecond,
		Attrs: []Attr{{Key: "status", Val: "ok"}}})

	out := ReportText()
	if !strings.Contains(out, "engine_mr_runs_total") {
		t.Errorf("report missing nonzero counter:\n%s", out)
	}
	if !strings.Contains(out, "session") || !strings.Contains(out, "status=ok") {
		t.Errorf("report missing span line:\n%s", out)
	}
}
