package obs

import (
	"strconv"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Attrs are a slice, not a
// map, so span rendering is deterministic.
type Attr struct {
	Key string `json:"key"`
	Val string `json:"val"`
}

// AttrInt builds an integer-valued attribute.
func AttrInt(key string, v int64) Attr {
	return Attr{Key: key, Val: strconv.FormatInt(v, 10)}
}

// Span is one recorded unit of engine work: a governed session, one
// parallel-pool job, or one MapReduce run. ID ties related spans
// together — the runtime stamps its session ID into the machine, the
// parallel blocks thread it into the pool, so a session's span and the
// spans of every worker job it launched share an ID.
type Span struct {
	ID    string        `json:"id"`
	Kind  string        `json:"kind"`
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur"`
	Attrs []Attr        `json:"attrs,omitempty"`
}

// spanRing is the bounded retention buffer: the newest spanRetention
// spans, oldest overwritten first.
var (
	spanMu    sync.Mutex
	spanBuf   []Span
	spanNext  int
	spanCap   = 512
	spanTotal int64
)

// SetSpanRetention bounds how many spans are kept (minimum 1). It also
// clears the buffer, so tests get a clean window.
func SetSpanRetention(n int) {
	if n < 1 {
		n = 1
	}
	spanMu.Lock()
	spanCap = n
	spanBuf = nil
	spanNext = 0
	spanMu.Unlock()
}

// ResetSpans clears retained spans without changing the retention bound.
func ResetSpans() {
	spanMu.Lock()
	spanBuf = nil
	spanNext = 0
	spanMu.Unlock()
}

// RecordSpan retains one span. Callers gate on Enabled(); RecordSpan
// itself records unconditionally so one-shot tools can flush a final
// span after flipping the switch off.
func RecordSpan(s Span) {
	spanMu.Lock()
	defer spanMu.Unlock()
	spanTotal++
	if len(spanBuf) < spanCap {
		spanBuf = append(spanBuf, s)
		return
	}
	spanBuf[spanNext] = s
	spanNext = (spanNext + 1) % spanCap
}

// snapshotLocked returns retained spans oldest-first.
func snapshotLocked() []Span {
	out := make([]Span, 0, len(spanBuf))
	out = append(out, spanBuf[spanNext:]...)
	out = append(out, spanBuf[:spanNext]...)
	return out
}

// Spans returns every retained span, oldest first.
func Spans() []Span {
	spanMu.Lock()
	defer spanMu.Unlock()
	return snapshotLocked()
}

// SpansFor returns the retained spans with the given ID, oldest first —
// the per-job trace behind GET /v1/sessions/{id}.
func SpansFor(id string) []Span {
	if id == "" {
		return nil
	}
	spanMu.Lock()
	defer spanMu.Unlock()
	var out []Span
	for _, s := range snapshotLocked() {
		if s.ID == id {
			out = append(out, s)
		}
	}
	return out
}

// SpanCount reports how many spans have ever been recorded (including
// ones retention has evicted).
func SpanCount() int64 {
	spanMu.Lock()
	defer spanMu.Unlock()
	return spanTotal
}
