package obs

import (
	"fmt"
	"sort"
	"strings"
)

// ReportText renders a human-oriented one-shot summary of the Default
// registry and the retained spans — the body of `snapvm -stats`. Zero
// counters and empty histograms are omitted so a small job prints a
// small report; series appear in sorted name order.
func ReportText() string {
	var b strings.Builder

	r := Default
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	for _, f := range fams {
		for _, m := range f.series {
			label := f.name
			if m.labels != "" {
				label += "{" + m.labels + "}"
			}
			switch {
			case m.c != nil:
				if v := m.c.Value(); v != 0 {
					fmt.Fprintf(&b, "  %-46s %d\n", label, v)
				}
			case m.read != nil:
				if v := m.read(); v != 0 {
					fmt.Fprintf(&b, "  %-46s %g\n", label, v)
				}
			case m.h != nil:
				if n := m.h.Count(); n != 0 {
					mean := m.h.Sum() / float64(n)
					fmt.Fprintf(&b, "  %-46s n=%d mean=%s\n", label, n, formatQuantity(f.name, mean))
				}
			}
		}
	}

	spans := Spans()
	if len(spans) > 0 {
		b.WriteString("  spans:\n")
		for _, s := range spans {
			fmt.Fprintf(&b, "    %-14s %8.3fms", s.Kind, float64(s.Dur.Microseconds())/1000)
			for _, a := range s.Attrs {
				fmt.Fprintf(&b, " %s=%s", a.Key, a.Val)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// formatQuantity renders a histogram mean with its natural unit: the
// *_seconds families as milliseconds, everything else as a plain number.
func formatQuantity(name string, v float64) string {
	if strings.HasSuffix(name, "_seconds") {
		return fmt.Sprintf("%.3fms", v*1000)
	}
	return fmt.Sprintf("%g", v)
}
