package obs

// This file is the engine metric catalog: every series the instrumented
// layers emit, registered once into Default at init. Keeping the catalog
// in one place (instead of scattering registrations across packages)
// makes the full series set auditable — docs/OBSERVABILITY.md mirrors
// this file — and lets the smoke scrape reject unknown series by prefix.
//
// Naming: everything engine-side is `engine_<layer>_<what>[_total]`.
// Bucket boundaries are fixed at registration (no dynamic cardinality):
//
//	DurationBuckets  1µs … 10s, decade steps — covers a compiled-kernel
//	                 chunk (~tens of µs) through a governed session (~s).
//	StepBuckets      1e2 … 1e8 evaluator steps, decade steps.
//	SkewBuckets      1 … 64× mean: 1 means perfectly balanced shuffle
//	                 buckets; ≥8 means one key dominates the reduce.
var (
	DurationBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10}
	StepBuckets     = []float64{1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8}
	SkewBuckets     = []float64{1, 1.5, 2, 4, 8, 16, 64}
)

// CompileReasons is the fixed refusal-reason label set of
// engine_compile_fallbacks_total (anything else lands in "other").
var CompileReasons = []string{
	"empty", "env", "script-body", "ring-value",
	"implicit-slot", "arity", "unsupported-op", "unsupported-node",
}

// The worker pool (internal/workers).
var (
	PoolJobs = Default.NewCounterVec("engine_pool_jobs_total",
		"Parallel pool jobs started, by operation.", "op", "map", "reduce")
	PoolChunks = Default.NewCounter("engine_pool_chunks_total",
		"Chunks dispatched to pool executors.")
	PoolChunkSeconds = Default.NewHistogram("engine_pool_chunk_seconds",
		"Per-chunk handler run time.", DurationBuckets)
	PoolJobSeconds = Default.NewHistogram("engine_pool_job_seconds",
		"Parallel job wall time, start to resolve.", DurationBuckets)
	PoolQueueWaitSeconds = Default.NewHistogram("engine_pool_queue_wait_seconds",
		"Time a submitted task waited before a pool worker (or spill goroutine) started it.", DurationBuckets)
	PoolCascadeEnlists = Default.NewCounter("engine_pool_cascade_enlists_total",
		"Executors enlisted by the cascading spawn beyond the first, across dynamic jobs.")
	PoolClaims = Default.NewCounter("engine_pool_claims_total",
		"Dynamic-assignment chunk claims that found work.")
	PoolClaimsEmpty = Default.NewCounter("engine_pool_claims_empty_total",
		"Dynamic-assignment claims that found the shared queue drained.")
)

// The ring-compiler tier (internal/compile).
var (
	CompileHits = Default.NewCounter("engine_compile_hits_total",
		"Shipped rings lowered to compiled Go kernels.")
	CompileFallbacks = Default.NewCounterVec("engine_compile_fallbacks_total",
		"Shipped rings refused by the compiler (interpreter tier), by refusal reason.",
		"reason", CompileReasons...)
)

// The value layer's columnar lists (internal/value). Lists count the
// homogeneous lists built with a struct-of-arrays column backing; upgrades
// count the columnar lists that fell back to the boxed representation when
// a mutation introduced a non-conforming element.
var (
	ListColumnarLists = Default.NewCounter("engine_list_columnar_lists_total",
		"Homogeneous lists constructed with a columnar (struct-of-arrays) backing.")
	ListColumnarUpgrades = Default.NewCounter("engine_list_columnar_upgrades_total",
		"Columnar lists upgraded to the boxed representation by a non-conforming mutation.")
)

// The MapReduce engine (internal/mapreduce).
var (
	MRRuns = Default.NewCounter("engine_mr_runs_total",
		"MapReduce engine runs.")
	MRPhaseSeconds = Default.NewHistogramVec("engine_mr_phase_seconds",
		"MapReduce phase durations.", "phase", []string{"map", "shuffle", "reduce"}, DurationBuckets)
	MRBucketSkew = Default.NewHistogram("engine_mr_bucket_skew",
		"Shuffle skew per run: largest key group over mean group size.", SkewBuckets)
)

// The content-addressed program cache (internal/progcache). The "tier"
// label is "project" (parsed+linted request bodies), "ring" (memoized
// compile.Ring outcomes), or "script" (whole script bodies lowered to
// internal/vm bytecode). Counters are bumped while Enabled(); the bytes
// gauge tracks residency unconditionally (one atomic store per insert).
var (
	ProgcacheHits = Default.NewCounterVec("engine_progcache_hits_total",
		"Program-cache gets served by a resident entry, by tier.",
		"tier", "project", "ring", "script")
	ProgcacheMisses = Default.NewCounterVec("engine_progcache_misses_total",
		"Program-cache gets that paid the load (parse+lint or lowering), by tier.",
		"tier", "project", "ring", "script")
	ProgcacheSharedLoads = Default.NewCounterVec("engine_progcache_shared_loads_total",
		"Program-cache gets that waited on and shared another caller's in-flight load (singleflight), by tier.",
		"tier", "project", "ring", "script")
	ProgcacheEvictions = Default.NewCounterVec("engine_progcache_evictions_total",
		"Program-cache entries evicted by the byte budget, by tier.",
		"tier", "project", "ring", "script")
	ProgcacheBytes = Default.NewGaugeVec("engine_progcache_bytes",
		"Resident program-cache bytes, by tier.",
		"tier", "project", "ring", "script")
)

// The flat bytecode machine (internal/vm). Ops count executed bytecode
// instructions; yields count cooperative hand-backs from bytecode;
// tree_calls count CallTree splices into the tree-walking evaluator
// (the coverage gap, the bytecode analog of the compile tier's
// engine_compile_fallbacks_total{reason="script-body"} class); lowerings
// count scripts compiled to bytecode (cache misses, not executions).
var (
	VMOps = Default.NewCounter("engine_vm_ops_total",
		"Bytecode operations executed by the flat VM.")
	VMYields = Default.NewCounter("engine_vm_yields_total",
		"Cooperative yields taken while executing bytecode.")
	VMTreeCalls = Default.NewCounter("engine_vm_tree_calls_total",
		"Un-lowerable subtrees spliced from bytecode through the tree-walker.")
	VMLowerings = Default.NewCounter("engine_vm_lowerings_total",
		"Whole scripts lowered to bytecode programs.")
)

// ShardBackendIDs is the fixed backend-slot label set of the per-backend
// shard-router series. Backends are identified by their position in the
// router's -backends list; routers fronting more than eight backends
// spill the excess into the implicit "other" slot (the always-on
// shard.Router.Stats snapshot keeps exact per-backend totals regardless).
var ShardBackendIDs = []string{"0", "1", "2", "3", "4", "5", "6", "7"}

// The shard router (internal/shard, cmd/snapshardd).
var (
	ShardRequests = Default.NewCounterVec("engine_shard_requests_total",
		"Requests forwarded to a backend, by backend slot.",
		"backend", ShardBackendIDs...)
	ShardRetries = Default.NewCounter("engine_shard_retries_total",
		"Forward attempts retried onto another attempt after a connect error.")
	ShardEjections = Default.NewCounterVec("engine_shard_ejections_total",
		"Backends ejected from the ring by health checking, by backend slot.",
		"backend", ShardBackendIDs...)
	ShardReadmissions = Default.NewCounterVec("engine_shard_readmissions_total",
		"Ejected backends re-admitted to the ring after recovering, by backend slot.",
		"backend", ShardBackendIDs...)
	ShardRingRebuilds = Default.NewCounter("engine_shard_ring_rebuilds_total",
		"Consistent-hash ring rebuilds after membership changes.")
	ShardRejected = Default.NewCounter("engine_shard_rejected_total",
		"Requests rejected by cluster-wide admission control (429).")
	ShardInflight = Default.NewGauge("engine_shard_inflight",
		"Requests in flight through the router, cluster-wide.")
)

// Governed sessions (internal/runtime).
var (
	SessionsTotal = Default.NewCounter("engine_sessions_total",
		"Governed sessions finished.")
	SessionSteps = Default.NewHistogram("engine_session_steps",
		"Evaluator steps per finished session.", StepBuckets)
	SessionSlackSeconds = Default.NewHistogram("engine_session_deadline_slack_seconds",
		"Unused wall-clock budget when a deadlined session ended.", DurationBuckets)
)
