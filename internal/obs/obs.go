// Package obs is the engine's observability layer: a dependency-free,
// lock-cheap registry of atomic counters, fixed-bucket histograms, and
// read-on-scrape gauges, plus a bounded ring of per-job trace spans. The
// hot paths — the chunked worker pool, the ring compiler's tier decision,
// the MapReduce phases, and governed runtime sessions — report into it,
// and three surfaces read it out: snapserved's /metrics endpoint (merged
// into the Prometheus text exposition), snapvm's -stats one-shot report,
// and GET /v1/sessions/{id}'s span summary.
//
// The whole layer sits behind one process-wide switch. Instrumented code
// guards every report with a single atomic load:
//
//	if obs.Enabled() {
//	    obs.PoolChunks.Inc()
//	}
//
// so with the switch off (the default, and the benchmark configuration)
// the cost is one predictable branch and zero allocations — the contract
// that keeps the hot-path wins of the earlier perf PRs intact, pinned by
// testing.AllocsPerRun in this package's tests and by `make bench-diff`.
//
// Metric mutation is wait-free where possible: counters are atomic adds,
// histogram buckets are atomic adds into a pre-sized slice, and only the
// histogram's float64 sum pays a CAS loop. Rendering takes no lock that
// blocks writers; it reads the atomics in place. Series are fixed at
// registration time (no dynamic label cardinality) and render in sorted
// name order, so scrapes are deterministic and golden-testable.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// enabled is the process-wide instrumentation switch.
var enabled atomic.Bool

// Enabled reports whether instrumentation is on. This is the one atomic
// load every instrumented site pays on the disabled path.
func Enabled() bool { return enabled.Load() }

// SetEnabled flips the process-wide instrumentation switch. Daemons turn
// it on at startup; benchmarks leave it off.
func SetEnabled(on bool) { enabled.Store(on) }

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Histogram is a fixed-bucket histogram: bounds are the bucket upper
// limits (le), counts[len(bounds)] is the +Inf bucket. Buckets and the
// total are atomic adds; the float64 sum is a CAS loop, the only
// non-wait-free write in the package.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64  // math.Float64bits of the running sum
	total  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reads how many values have been observed.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum reads the running sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// metric is one registered series: exactly one of c, h, read is set.
type metric struct {
	labels string // rendered label set, e.g. `op="map"`, or ""
	c      *Counter
	h      *Histogram
	read   func() float64
}

// family is one metric family: a name, HELP/TYPE metadata, and its
// series. Series sets are fixed at registration; rendering sorts them by
// label so output order never depends on map iteration.
type family struct {
	name, help, typ string
	series          []*metric
}

// Registry holds metric families. Registration happens at package init
// (single-goroutine); mutation and rendering afterwards are concurrent.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry builds an empty registry. Most callers use Default.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Default is the process-wide registry the engine catalog registers into.
var Default = NewRegistry()

func (r *Registry) addFamily(name, help, typ string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic("obs: duplicate metric family " + name)
	}
	f := &family{name: name, help: help, typ: typ}
	r.families[name] = f
	return f
}

// NewCounter registers an unlabeled counter family.
func (r *Registry) NewCounter(name, help string) *Counter {
	f := r.addFamily(name, help, "counter")
	c := &Counter{}
	f.series = []*metric{{c: c}}
	return c
}

// CounterVec is a counter family with one label key and a fixed value
// set. Unknown label values fall into the "other" series rather than
// growing cardinality.
type CounterVec struct {
	byVal map[string]*Counter
	other *Counter
}

// With returns the counter for the given label value ("other" when the
// value was not pre-registered).
func (v *CounterVec) With(val string) *Counter {
	if c, ok := v.byVal[val]; ok {
		return c
	}
	return v.other
}

// Total sums the family across all label values.
func (v *CounterVec) Total() int64 {
	n := v.other.Value()
	for _, c := range v.byVal {
		n += c.Value()
	}
	return n
}

// NewCounterVec registers a counter family labeled by key over the fixed
// value set vals (plus the implicit "other").
func (r *Registry) NewCounterVec(name, help, key string, vals ...string) *CounterVec {
	f := r.addFamily(name, help, "counter")
	v := &CounterVec{byVal: make(map[string]*Counter, len(vals)), other: &Counter{}}
	for _, val := range vals {
		c := &Counter{}
		v.byVal[val] = c
		f.series = append(f.series, &metric{labels: key + "=" + quote(val), c: c})
	}
	f.series = append(f.series, &metric{labels: key + "=" + quote("other"), c: v.other})
	sortSeries(f.series)
	return v
}

// NewHistogram registers an unlabeled histogram family with the given
// bucket upper bounds.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	f := r.addFamily(name, help, "histogram")
	h := &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	f.series = []*metric{{h: h}}
	return h
}

// HistogramVec is a histogram family with one label key over a fixed
// value set.
type HistogramVec struct {
	byVal map[string]*Histogram
	other *Histogram
}

// With returns the histogram for the label value ("other" if unknown).
func (v *HistogramVec) With(val string) *Histogram {
	if h, ok := v.byVal[val]; ok {
		return h
	}
	return v.other
}

// NewHistogramVec registers a histogram family labeled by key over vals
// (plus the implicit "other"), all sharing the same bucket bounds.
func (r *Registry) NewHistogramVec(name, help, key string, vals []string, bounds []float64) *HistogramVec {
	f := r.addFamily(name, help, "histogram")
	v := &HistogramVec{byVal: make(map[string]*Histogram, len(vals))}
	mk := func() *Histogram {
		return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	}
	for _, val := range vals {
		h := mk()
		v.byVal[val] = h
		f.series = append(f.series, &metric{labels: key + "=" + quote(val), h: h})
	}
	v.other = mk()
	f.series = append(f.series, &metric{labels: key + "=" + quote("other"), h: v.other})
	sortSeries(f.series)
	return v
}

// Gauge is a settable instantaneous value (an atomic int64). Unlike the
// read-func gauges below, it is owned by the instrumented layer and
// written on state changes — the shape the program cache's resident-bytes
// series needs, where the state lives behind the cache's own lock.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the current value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// NewGauge registers an unlabeled settable gauge family.
func (r *Registry) NewGauge(name, help string) *Gauge {
	f := r.addFamily(name, help, "gauge")
	g := &Gauge{}
	f.series = []*metric{{read: func() float64 { return float64(g.Value()) }}}
	return g
}

// GaugeVec is a gauge family with one label key over a fixed value set
// (plus the implicit "other"), mirroring CounterVec.
type GaugeVec struct {
	byVal map[string]*Gauge
	other *Gauge
}

// With returns the gauge for the label value ("other" if unknown).
func (v *GaugeVec) With(val string) *Gauge {
	if g, ok := v.byVal[val]; ok {
		return g
	}
	return v.other
}

// NewGaugeVec registers a settable gauge family labeled by key over the
// fixed value set vals (plus the implicit "other").
func (r *Registry) NewGaugeVec(name, help, key string, vals ...string) *GaugeVec {
	f := r.addFamily(name, help, "gauge")
	v := &GaugeVec{byVal: make(map[string]*Gauge, len(vals)), other: &Gauge{}}
	add := func(val string, g *Gauge) {
		f.series = append(f.series, &metric{
			labels: key + "=" + quote(val),
			read:   func() float64 { return float64(g.Value()) },
		})
	}
	for _, val := range vals {
		g := &Gauge{}
		v.byVal[val] = g
		add(val, g)
	}
	add("other", v.other)
	sortSeries(f.series)
	return v
}

// RegisterGauge registers a gauge whose value is read at render time.
func (r *Registry) RegisterGauge(name, help string, read func() float64) {
	f := r.addFamily(name, help, "gauge")
	f.series = []*metric{{read: read}}
}

// RegisterCounterFunc registers a counter whose value is read at render
// time — for monotonic totals owned elsewhere (e.g. the pool's spill
// count).
func (r *Registry) RegisterCounterFunc(name, help string, read func() float64) {
	f := r.addFamily(name, help, "counter")
	f.series = []*metric{{read: read}}
}

// Render writes the registry in Prometheus text exposition format,
// families in sorted name order, series in sorted label order — the
// determinism the scrape-stability golden test pins.
func (r *Registry) Render(b *strings.Builder) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	fams := make([]*family, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	for _, f := range fams {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		for _, m := range f.series {
			switch {
			case m.c != nil:
				writeSeriesInt(b, f.name, m.labels, m.c.Value())
			case m.read != nil:
				writeSeries(b, f.name, m.labels, m.read())
			case m.h != nil:
				renderHistogram(b, f.name, m.labels, m.h)
			}
		}
	}
}

func renderHistogram(b *strings.Builder, name, labels string, h *Histogram) {
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		writeSeriesInt(b, name+"_bucket", joinLabels(labels, "le="+quote(formatFloat(bound))), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	writeSeriesInt(b, name+"_bucket", joinLabels(labels, `le="+Inf"`), cum)
	writeSeries(b, name+"_sum", labels, h.Sum())
	writeSeriesInt(b, name+"_count", labels, h.Count())
}

func writeSeries(b *strings.Builder, name, labels string, v float64) {
	if labels == "" {
		fmt.Fprintf(b, "%s %g\n", name, v)
		return
	}
	fmt.Fprintf(b, "%s{%s} %g\n", name, labels, v)
}

func writeSeriesInt(b *strings.Builder, name, labels string, v int64) {
	if labels == "" {
		fmt.Fprintf(b, "%s %d\n", name, v)
		return
	}
	fmt.Fprintf(b, "%s{%s} %d\n", name, labels, v)
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	if b == "" {
		return a
	}
	return a + "," + b
}

func quote(s string) string { return `"` + s + `"` }

func formatFloat(f float64) string { return fmt.Sprintf("%g", f) }

func sortSeries(s []*metric) {
	sort.Slice(s, func(i, j int) bool { return s[i].labels < s[j].labels })
}
