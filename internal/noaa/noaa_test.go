package noaa

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func smallConfig() Config {
	return Config{Stations: 3, StartYear: 2000, EndYear: 2004, DaysPerYear: 30, Seed: 7}
}

func TestGenerateShape(t *testing.T) {
	ds := Generate(smallConfig())
	if len(ds.Stations) != 3 {
		t.Fatalf("stations = %d", len(ds.Stations))
	}
	if want := 3 * 5 * 30; len(ds.Readings) != want {
		t.Fatalf("readings = %d, want %d", len(ds.Readings), want)
	}
	for _, st := range ds.Stations {
		if st.Latitude < 25 || st.Latitude > 50 {
			t.Errorf("latitude %g out of continental range", st.Latitude)
		}
		if !strings.HasPrefix(st.ID, "USW") {
			t.Errorf("station id %q", st.ID)
		}
	}
	years := ds.Years()
	if len(years) != 5 || years[0] != 2000 || years[4] != 2004 {
		t.Errorf("years = %v", years)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallConfig())
	b := Generate(smallConfig())
	if len(a.Readings) != len(b.Readings) {
		t.Fatal("length mismatch")
	}
	for i := range a.Readings {
		if a.Readings[i] != b.Readings[i] {
			t.Fatalf("reading %d differs: %+v vs %+v", i, a.Readings[i], b.Readings[i])
		}
	}
	c := Generate(Config{Stations: 3, StartYear: 2000, EndYear: 2004, DaysPerYear: 30, Seed: 8})
	if a.Readings[0].TempF == c.Readings[0].TempF {
		t.Error("different seeds should differ")
	}
}

func TestWarmingTrendObservable(t *testing.T) {
	// The whole pedagogical point: averaging year by year reveals the
	// injected warming trend.
	cfg := smallConfig()
	cfg.TrendFPerYear = 0.5
	cfg.DaysPerYear = 120
	ds := Generate(cfg)
	means := ds.MeanCelsiusByYear()
	first, last := means[2000], means[2004]
	if last <= first {
		t.Errorf("no warming visible: %g (2000) vs %g (2004)", first, last)
	}
	wantDelta := 4 * 0.5 * 5 / 9 // four years of trend, in Celsius
	if math.Abs((last-first)-wantDelta) > 0.5 {
		t.Errorf("trend delta = %g, want ≈ %g", last-first, wantDelta)
	}
}

func TestTempsLists(t *testing.T) {
	ds := Generate(smallConfig())
	all := ds.TempsF()
	if all.Len() != len(ds.Readings) {
		t.Error("TempsF length")
	}
	year := ds.TempsFForYear(2001)
	if year.Len() != 3*30 {
		t.Errorf("year 2001 has %d readings", year.Len())
	}
	if ds.TempsFForYear(1900).Len() != 0 {
		t.Error("absent year should be empty")
	}
	if !all.Columnar() || !year.Columnar() {
		t.Error("temperature lists should be columnar")
	}
}

func TestTempsFCSVStreams(t *testing.T) {
	ds := Generate(smallConfig())
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	temps, err := TempsFCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	xs, ok := temps.FloatsView()
	if !ok {
		t.Fatal("streamed temp_f column is not numeric-columnar")
	}
	if len(xs) != len(ds.Readings) {
		t.Fatalf("streamed %d temps, want %d", len(xs), len(ds.Readings))
	}
	for i, r := range ds.Readings {
		if math.Abs(xs[i]-r.TempF) > 0.01 { // 2-decimal CSV rounding
			t.Fatalf("row %d temp differs: %g vs %g", i, xs[i], r.TempF)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := Generate(smallConfig())
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Readings) != len(ds.Readings) {
		t.Fatalf("rows = %d, want %d", len(back.Readings), len(ds.Readings))
	}
	for i := range back.Readings {
		a, b := ds.Readings[i], back.Readings[i]
		if a.StationID != b.StationID || a.Year != b.Year || a.Day != b.Day {
			t.Fatalf("row %d metadata differs", i)
		}
		if math.Abs(a.TempF-b.TempF) > 0.01 { // 2-decimal CSV rounding
			t.Fatalf("row %d temp differs: %g vs %g", i, a.TempF, b.TempF)
		}
	}
	if len(back.Stations) != 3 {
		t.Errorf("stations reconstructed = %d", len(back.Stations))
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"wrong,header,entirely,x\n",
		"station,year,day,temp_f\nUSW,abc,1,50\n",
		"station,year,day,temp_f\nUSW,2000,abc,50\n",
		"station,year,day,temp_f\nUSW,2000,1,warm\n",
	}
	for i, src := range cases {
		if _, err := ReadCSV(strings.NewReader(src)); err == nil {
			t.Errorf("case %d should error", i)
		}
	}
}

func TestDefaults(t *testing.T) {
	ds := Generate(Config{})
	if len(ds.Stations) != 10 {
		t.Errorf("default stations = %d", len(ds.Stations))
	}
	if len(ds.Readings) != 10*10*365 {
		t.Errorf("default readings = %d", len(ds.Readings))
	}
}
