// Package noaa generates and ingests synthetic NOAA-style weather-station
// data for the paper's global climate modeling example (§3.4): per-station
// daily temperatures in Fahrenheit, which students convert to Celsius and
// average with the mapReduce block, looking for "a mean change in the
// temperature of the Earth over time".
//
// The real archive is not bundled (the paper's data gate); the generator
// produces data with the same shape — station metadata, seasonal cycle,
// latitude gradient, a configurable warming trend, and observation noise —
// from a seeded PRNG so every run is reproducible. CSV read/write covers
// §6.3's "for production use, it needs to have a way to consume existing
// data files."
package noaa

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"

	"repro/internal/ingest"
	"repro/internal/value"
)

// Station is one weather station.
type Station struct {
	ID   string
	Name string
	// Latitude in degrees north; drives the station's mean temperature.
	Latitude float64
}

// Reading is one daily observation.
type Reading struct {
	StationID string
	Year      int
	// Day is the day of year, 1..365.
	Day int
	// TempF is the observed temperature in Fahrenheit.
	TempF float64
}

// Dataset is a generated or loaded collection.
type Dataset struct {
	Stations []Station
	Readings []Reading
}

// Config drives generation.
type Config struct {
	// Stations is the station count (default 10).
	Stations int
	// StartYear..EndYear inclusive (default 1990..1999).
	StartYear, EndYear int
	// DaysPerYear lets tests shrink the data (default 365).
	DaysPerYear int
	// BaseTempF is the mean temperature at latitude 35°N (default 55).
	BaseTempF float64
	// TrendFPerYear is the warming trend (default 0.05 °F/year).
	TrendFPerYear float64
	// NoiseF is the observation noise amplitude (default 5 °F).
	NoiseF float64
	// Seed makes generation reproducible (default 1).
	Seed int64
}

func (c *Config) fill() {
	if c.Stations <= 0 {
		c.Stations = 10
	}
	if c.StartYear == 0 {
		c.StartYear = 1990
	}
	if c.EndYear < c.StartYear {
		c.EndYear = c.StartYear + 9
	}
	if c.DaysPerYear <= 0 {
		c.DaysPerYear = 365
	}
	if c.BaseTempF == 0 {
		c.BaseTempF = 55
	}
	if c.TrendFPerYear == 0 {
		c.TrendFPerYear = 0.05
	}
	if c.NoiseF == 0 {
		c.NoiseF = 5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Generate builds a synthetic dataset.
func Generate(cfg Config) *Dataset {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{}
	for i := 0; i < cfg.Stations; i++ {
		lat := 25 + rng.Float64()*25 // continental US latitudes
		ds.Stations = append(ds.Stations, Station{
			ID:       fmt.Sprintf("USW%05d", 10000+i),
			Name:     fmt.Sprintf("Station %d", i+1),
			Latitude: lat,
		})
	}
	for _, st := range ds.Stations {
		latEffect := (35 - st.Latitude) * 1.2 // colder as you go north
		for year := cfg.StartYear; year <= cfg.EndYear; year++ {
			trend := cfg.TrendFPerYear * float64(year-cfg.StartYear)
			for day := 1; day <= cfg.DaysPerYear; day++ {
				season := -18 * math.Cos(2*math.Pi*float64(day)/float64(cfg.DaysPerYear))
				noise := (rng.Float64()*2 - 1) * cfg.NoiseF
				ds.Readings = append(ds.Readings, Reading{
					StationID: st.ID,
					Year:      year,
					Day:       day,
					TempF:     cfg.BaseTempF + latEffect + season + trend + noise,
				})
			}
		}
	}
	return ds
}

// TempsF returns every reading's Fahrenheit temperature as a Snap! list —
// the input list of the Figure 13 mapReduce block. The list is columnar
// (one flat []float64), so the mapReduce engine's columnar kernels run
// over it without boxing a Value per reading.
func (d *Dataset) TempsF() *value.List {
	xs := make([]float64, len(d.Readings))
	for i, r := range d.Readings {
		xs[i] = r.TempF
	}
	return value.AdoptFloats(xs)
}

// TempsFForYear filters one year's readings into a columnar list.
func (d *Dataset) TempsFForYear(year int) *value.List {
	var xs []float64
	for _, r := range d.Readings {
		if r.Year == year {
			xs = append(xs, r.TempF)
		}
	}
	return value.AdoptFloats(xs)
}

// TempsFCSV streams just the temp_f column of a readings CSV (the WriteCSV
// format) into a columnar list, without materializing a Dataset — the
// direct file-to-mapReduce path of §6.3.
func TempsFCSV(r io.Reader) (*value.List, error) {
	return ingest.CSVColumn(r, "temp_f")
}

// Years lists the distinct years present, ascending.
func (d *Dataset) Years() []int {
	seen := map[int]bool{}
	var ys []int
	for _, r := range d.Readings {
		if !seen[r.Year] {
			seen[r.Year] = true
			ys = append(ys, r.Year)
		}
	}
	for i := 1; i < len(ys); i++ {
		for j := i; j > 0 && ys[j] < ys[j-1]; j-- {
			ys[j], ys[j-1] = ys[j-1], ys[j]
		}
	}
	return ys
}

// MeanCelsiusByYear computes each year's mean temperature in Celsius — the
// series the students plot to observe the warming trend.
func (d *Dataset) MeanCelsiusByYear() map[int]float64 {
	sum := map[int]float64{}
	n := map[int]int{}
	for _, r := range d.Readings {
		sum[r.Year] += (r.TempF - 32) * 5 / 9
		n[r.Year]++
	}
	out := map[int]float64{}
	for y, s := range sum {
		out[y] = s / float64(n[y])
	}
	return out
}

// WriteCSV writes readings as "station,year,day,tempF" rows with a header.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"station", "year", "day", "temp_f"}); err != nil {
		return err
	}
	for _, r := range d.Readings {
		rec := []string{
			r.StationID,
			strconv.Itoa(r.Year),
			strconv.Itoa(r.Day),
			strconv.FormatFloat(r.TempF, 'f', 2, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV ingests a dataset written by WriteCSV (or any file with the same
// header) — §6.3's data-file ingestion.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("read CSV header: %w", err)
	}
	if len(header) < 4 || header[0] != "station" {
		return nil, fmt.Errorf("unexpected CSV header %v", header)
	}
	ds := &Dataset{}
	stations := map[string]bool{}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		year, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("line %d: bad year %q", line, rec[1])
		}
		day, err := strconv.Atoi(rec[2])
		if err != nil {
			return nil, fmt.Errorf("line %d: bad day %q", line, rec[2])
		}
		temp, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad temperature %q", line, rec[3])
		}
		if !stations[rec[0]] {
			stations[rec[0]] = true
			ds.Stations = append(ds.Stations, Station{ID: rec[0], Name: rec[0]})
		}
		ds.Readings = append(ds.Readings, Reading{
			StationID: rec[0], Year: year, Day: day, TempF: temp,
		})
	}
	return ds, nil
}
