package blocks

import (
	"math"

	"repro/internal/value"
)

// This file is the programmatic stand-in for Snap!'s palette: one
// constructor per block. Dragging a block from the palette and dropping a
// value into a slot corresponds to calling the constructor with the slot's
// Node. The constructors return *Block (commands and reporters alike);
// reporters are dropped into other blocks' slots.

// --- literals and slots ---

// smallNums interns the literal nodes for the integers 0..255 — the
// numbers people actually type into slots. Literal nodes are immutable,
// so every fixture and every request-built AST can share one boxed node
// per value instead of allocating it again.
var smallNums = func() [256]Node {
	var ns [256]Node
	for i := range ns {
		ns[i] = Literal{Val: value.Number(i)}
	}
	return ns
}()

// Num is a number typed into a slot.
func Num(f float64) Node {
	if i := int(f); float64(i) == f && i >= 0 && i < len(smallNums) && !math.Signbit(f) {
		return smallNums[i]
	}
	return Literal{Val: value.Number(f)}
}

// Txt is text typed into a slot.
func Txt(s string) Node { return Literal{Val: value.Text(s)} }

// BoolLit is a boolean slot constant.
func BoolLit(b bool) Node { return Literal{Val: value.Bool(b)} }

// Lit wraps an arbitrary value as a literal.
func Lit(v value.Value) Node { return Literal{Val: v} }

// Empty is an unfilled slot.
func Empty() Node { return EmptySlot{} }

// Var reads a variable.
func Var(name string) Node { return VarGet{Name: name} }

// Reporter re-types a reporter block as a Node for dropping into a slot.
func Reporter(b *Block) Node { return b }

// RingOf ringifies a reporter body with optional named parameters
// (the gray ring of §3.1).
func RingOf(body Node, params ...string) Node {
	return RingNode{Body: body, Params: params}
}

// RingScript ringifies a command script.
func RingScript(s *Script, params ...string) Node {
	return RingNode{Body: s, Params: params}
}

// Body wraps a script for a C-shaped slot.
func Body(bs ...*Block) Node { return ScriptNode{Script: NewScript(bs...)} }

// --- operators ---

// Sum is the + block.
func Sum(a, b Node) *Block { return NewBlock("reportSum", a, b) }

// Difference is the − block.
func Difference(a, b Node) *Block { return NewBlock("reportDifference", a, b) }

// Product is the × block.
func Product(a, b Node) *Block { return NewBlock("reportProduct", a, b) }

// Quotient is the ÷ block.
func Quotient(a, b Node) *Block { return NewBlock("reportQuotient", a, b) }

// Modulus is the mod block.
func Modulus(a, b Node) *Block { return NewBlock("reportModulus", a, b) }

// Round is the round block.
func Round(a Node) *Block { return NewBlock("reportRound", a) }

// Monadic is the "sqrt/abs/floor/ceiling/sin/cos/ln/e^ of" multi-function
// block; fn picks the function.
func Monadic(fn string, a Node) *Block { return NewBlock("reportMonadic", Txt(fn), a) }

// Random is the "pick random _ to _" block.
func Random(a, b Node) *Block { return NewBlock("reportRandom", a, b) }

// LessThan is the < predicate.
func LessThan(a, b Node) *Block { return NewBlock("reportLessThan", a, b) }

// Equals is the = predicate.
func Equals(a, b Node) *Block { return NewBlock("reportEquals", a, b) }

// GreaterThan is the > predicate.
func GreaterThan(a, b Node) *Block { return NewBlock("reportGreaterThan", a, b) }

// And is the and predicate.
func And(a, b Node) *Block { return NewBlock("reportAnd", a, b) }

// Or is the or predicate.
func Or(a, b Node) *Block { return NewBlock("reportOr", a, b) }

// Not is the not predicate.
func Not(a Node) *Block { return NewBlock("reportNot", a) }

// Ternary is the reporter-shaped conditional "if _ then _ else _": it
// reports one of two values. Both branch slots are evaluated before the
// block applies, the same eager slot semantics as And/Or.
func Ternary(cond, then, els Node) *Block { return NewBlock("reportIfElse", cond, then, els) }

// Join is the "join _ _" text block.
func Join(parts ...Node) *Block { return NewBlock("reportJoinWords", parts...) }

// Letter is "letter _ of _".
func Letter(i, text Node) *Block { return NewBlock("reportLetter", i, text) }

// StringSize is "length of _" (text).
func StringSize(text Node) *Block { return NewBlock("reportStringSize", text) }

// Split is "split _ by _".
func Split(text, delim Node) *Block { return NewBlock("reportTextSplit", text, delim) }

// --- variables ---

// SetVar is "set _ to _".
func SetVar(name string, val Node) *Block { return NewBlock("doSetVar", Txt(name), val) }

// ChangeVar is "change _ by _".
func ChangeVar(name string, delta Node) *Block { return NewBlock("doChangeVar", Txt(name), delta) }

// DeclareLocal is "script variables _ ...".
func DeclareLocal(names ...string) *Block {
	ins := make([]Node, len(names))
	for i, n := range names {
		ins[i] = Txt(n)
	}
	return NewBlock("doDeclareVariables", ins...)
}

// --- lists ---

// ListOf is "list _ _ ..." — builds a new list.
func ListOf(items ...Node) *Block { return NewBlock("reportNewList", items...) }

// Numbers is "numbers from _ to _".
func Numbers(from, to Node) *Block { return NewBlock("reportNumbers", from, to) }

// ItemOf is "item _ of _".
func ItemOf(i, list Node) *Block { return NewBlock("reportListItem", i, list) }

// LengthOf is "length of _" (list).
func LengthOf(list Node) *Block { return NewBlock("reportListLength", list) }

// ListContains is "_ contains _".
func ListContains(list, item Node) *Block { return NewBlock("reportListContainsItem", list, item) }

// AddToList is "add _ to _".
func AddToList(item, list Node) *Block { return NewBlock("doAddToList", item, list) }

// DeleteFromList is "delete _ of _".
func DeleteFromList(i, list Node) *Block { return NewBlock("doDeleteFromList", i, list) }

// InsertInList is "insert _ at _ of _".
func InsertInList(item, i, list Node) *Block { return NewBlock("doInsertInList", item, i, list) }

// ReplaceInList is "replace item _ of _ with _".
func ReplaceInList(i, list, item Node) *Block { return NewBlock("doReplaceInList", i, list, item) }

// --- control ---

// If is "if _ { _ }".
func If(cond Node, body Node) *Block { return NewBlock("doIf", cond, body) }

// IfElse is "if _ { _ } else { _ }".
func IfElse(cond, then, els Node) *Block { return NewBlock("doIfElse", cond, then, els) }

// Repeat is "repeat _ { _ }".
func Repeat(n Node, body Node) *Block { return NewBlock("doRepeat", n, body) }

// Forever is "forever { _ }".
func Forever(body Node) *Block { return NewBlock("doForever", body) }

// Until is "repeat until _ { _ }".
func Until(cond Node, body Node) *Block { return NewBlock("doUntil", cond, body) }

// For is "for _ = _ to _ { _ }", with an upvar.
func For(varName string, from, to Node, body Node) *Block {
	return NewBlock("doFor", Txt(varName), from, to, body)
}

// Wait is "wait _ timesteps": it consumes n rounds of the virtual clock.
// The concession stand's "it takes three timesteps to fill a glass" is
// Wait(Num(3)).
func Wait(n Node) *Block { return NewBlock("doWait", n) }

// Report is "report _" — returns a value from a custom block or ring.
func Report(v Node) *Block { return NewBlock("doReport", v) }

// Stop is "stop this script".
func Stop() *Block { return NewBlock("doStopThis") }

// Warp is "warp { _ }": runs the body without yielding between blocks.
func Warp(body Node) *Block { return NewBlock("doWarp", body) }

// --- higher-order (sequential, stock Snap!) ---

// Map is the stock sequential map block of Figure 4.
func Map(ring, list Node) *Block { return NewBlock("reportMap", ring, list) }

// Keep is "keep items such that _ from _".
func Keep(ring, list Node) *Block { return NewBlock("reportKeep", ring, list) }

// Combine is "combine _ using _" (a fold).
func Combine(list, ring Node) *Block { return NewBlock("reportCombine", list, ring) }

// ForEach is the stock sequential "for each _ in _ { _ }".
func ForEach(itemVar string, list Node, body Node) *Block {
	return NewBlock("doForEach", Txt(itemVar), list, body)
}

// --- the paper's parallel blocks (§3) ---

// ParallelMap is the parallelMap block of §3.2: like Map but executed by
// HTML5-Web-Worker-style workers. workers is the optional rightmost input;
// pass Empty() for the default (hardware concurrency, else 4).
func ParallelMap(ring, list, workers Node) *Block {
	return NewBlock("reportParallelMap", ring, list, workers)
}

// ParallelForEach is the parallelForEach block of §3.3 in parallel mode:
// clones of the running sprite each execute body on one list item.
// parallelism is the input box right of the "in parallel" label; pass
// Empty() to default to the length of the list.
func ParallelForEach(itemVar string, list, parallelism Node, body Node) *Block {
	return NewBlock("doParallelForEach", Txt(itemVar), list, parallelism, body, BoolLit(true))
}

// ParallelForEachSeq is the same block with the parallel input collapsed:
// sequential mode, "the Pitcher sprite should execute the script as a normal
// forEach block by looping over the input array" (§3.3).
func ParallelForEachSeq(itemVar string, list Node, body Node) *Block {
	return NewBlock("doParallelForEach", Txt(itemVar), list, Empty(), body, BoolLit(false))
}

// MapReduce is the mapReduce block of §3.4: mapRing maps each item to a
// (key value) pair, reduceRing reduces the values grouped per key, list is
// the input data.
func MapReduce(mapRing, reduceRing, list Node) *Block {
	return NewBlock("reportMapReduce", mapRing, reduceRing, list)
}

// --- rings as calls ---

// Call is "call _ with inputs _ ..." — invokes a reporter ring.
func Call(ring Node, args ...Node) *Block {
	return NewBlock("evaluate", append([]Node{ring}, args...)...)
}

// Run is "run _ with inputs _ ..." — invokes a command ring.
func Run(ring Node, args ...Node) *Block {
	return NewBlock("doRun", append([]Node{ring}, args...)...)
}

// CallCustom invokes a custom (BYOB) block by name.
func CallCustom(name string, args ...Node) *Block {
	return NewBlock("evaluateCustomBlock", append([]Node{Txt(name)}, args...)...)
}

// --- events, cloning, sprites ---

// Broadcast is "broadcast _".
func Broadcast(msg Node) *Block { return NewBlock("doBroadcast", msg) }

// BroadcastAndWait is "broadcast _ and wait".
func BroadcastAndWait(msg Node) *Block { return NewBlock("doBroadcastAndWait", msg) }

// CreateCloneOf is "create a clone of _"; use "myself" for self-cloning,
// the mechanism parallelForEach uses to spawn its pitchers.
func CreateCloneOf(name Node) *Block { return NewBlock("createClone", name) }

// DeleteThisClone is "delete this clone".
func DeleteThisClone() *Block { return NewBlock("removeClone") }

// --- motion and looks (enough for the stage demos) ---

// Forward is "move _ steps".
func Forward(n Node) *Block { return NewBlock("forward", n) }

// TurnRight is "turn ↻ _ degrees".
func TurnRight(deg Node) *Block { return NewBlock("turn", deg) }

// TurnLeft is "turn ↺ _ degrees".
func TurnLeft(deg Node) *Block { return NewBlock("turnLeft", deg) }

// GotoXY is "go to x: _ y: _".
func GotoXY(x, y Node) *Block { return NewBlock("gotoXY", x, y) }

// Say is "say _".
func Say(v Node) *Block { return NewBlock("bubble", v) }

// Think is "think _".
func Think(v Node) *Block { return NewBlock("doThink", v) }

// --- sensing ---

// Timer is the "timer" reporter: elapsed virtual timesteps, the clock in
// the upper-left corner of Figure 7.
func Timer() *Block { return NewBlock("getTimer") }

// ResetTimer is "reset timer".
func ResetTimer() *Block { return NewBlock("doResetTimer") }

// MyName reports the running sprite's (or clone's) name.
func MyName() *Block { return NewBlock("reportMyName") }

// --- files (§6.3 data ingestion/export) ---

// ReadFile is "contents of file _".
func ReadFile(name Node) *Block { return NewBlock("reportReadFile", name) }

// FileLines is "lines of file _" — a list of the file's lines.
func FileLines(name Node) *Block { return NewBlock("reportFileLines", name) }

// WriteFile is "write _ to file _" (content, name order follows the label).
func WriteFile(name, content Node) *Block { return NewBlock("doWriteFile", name, content) }

// AppendToFile is "append _ to file _".
func AppendToFile(name, content Node) *Block { return NewBlock("doAppendToFile", name, content) }
