package blocks

import (
	"testing"

	"repro/internal/value"
)

func TestDescribe(t *testing.T) {
	// The Figure 4 program: map (× _ 10) over (list 3 7 8).
	b := Map(RingOf(Product(Empty(), Num(10))), ListOf(Num(3), Num(7), Num(8)))
	want := "reportMap(ring(reportProduct(_, 10)), reportNewList(3, 7, 8))"
	if got := b.Describe(); got != want {
		t.Errorf("Describe = %q, want %q", got, want)
	}
}

func TestDescribeEdgeCases(t *testing.T) {
	if (Literal{}).Describe() != "_" {
		t.Error("nil literal should describe as _")
	}
	if (Literal{Val: value.Text("hi")}).Describe() != `"hi"` {
		t.Error("text literal should be quoted")
	}
	if NewBlock("getTimer").Describe() != "getTimer" {
		t.Error("niladic block describe")
	}
	b := &Block{Op: "x", Inputs: []Node{nil}}
	if b.Describe() != "x(_)" {
		t.Errorf("nil input describe = %q", b.Describe())
	}
	var s *Script
	if s.Describe() != "{}" {
		t.Error("nil script describe")
	}
	r := RingNode{Params: []string{"n"}, Body: Var("n")}
	if r.Describe() != "ring[n](n)" {
		t.Errorf("ring describe = %q", r.Describe())
	}
	if (RingNode{}).Describe() != "ring(_)" {
		t.Error("empty ring describe")
	}
	if HatGreenFlag.String() != "whenGreenFlag" || HatKind(42).String() != "hat(42)" {
		t.Error("hat kind names")
	}
}

func TestBlockInput(t *testing.T) {
	b := Sum(Num(1), nil)
	if _, ok := b.Input(1).(EmptySlot); !ok {
		t.Error("nil input should read as EmptySlot")
	}
	if _, ok := b.Input(5).(EmptySlot); !ok {
		t.Error("out-of-range input should read as EmptySlot")
	}
	if b.Arity() != 2 {
		t.Error("arity")
	}
}

func TestScript(t *testing.T) {
	s := NewScript(SetVar("x", Num(1)))
	s.Append(ChangeVar("x", Num(2)))
	if s.Len() != 2 {
		t.Error("script length")
	}
	var nilS *Script
	if nilS.Len() != 0 {
		t.Error("nil script length")
	}
}

func TestRingValue(t *testing.T) {
	r := &Ring{Body: Product(Empty(), Num(10))}
	if r.Kind() != value.KindRing {
		t.Error("ring kind")
	}
	if r.Clone() != value.Value(r) {
		t.Error("ring clones to itself")
	}
	if r.String() == "" || (&Ring{}).String() != "(ring)" {
		t.Error("ring string")
	}
	// Rings must be storable in lists (first-class procedures).
	l := value.NewList(r)
	if l.MustItem(1) != value.Value(r) {
		t.Error("ring in list")
	}
}

func TestProjectSpriteCustoms(t *testing.T) {
	p := NewProject("demo")
	sp := p.AddSprite(NewSprite("Dragon"))
	sp.AddScript(HatGreenFlag, "", NewScript(Forward(Num(10))))
	sp.AddScript(HatKeyPress, "right arrow", NewScript(TurnRight(Num(15))))
	if p.Sprite("Dragon") != sp || p.Sprite("Missing") != nil {
		t.Error("sprite lookup")
	}
	global := &CustomBlock{Name: "double", Params: []string{"n"}, IsReporter: true}
	local := &CustomBlock{Name: "double", Params: []string{"n"}, IsReporter: true}
	p.Customs["double"] = global
	if p.LookupCustom(sp, "double") != global {
		t.Error("global custom lookup")
	}
	sp.Customs["double"] = local
	if p.LookupCustom(sp, "double") != local {
		t.Error("sprite-local custom should shadow global")
	}
	if p.LookupCustom(nil, "nope") != nil {
		t.Error("missing custom should be nil")
	}
}

func TestParallelBlockShapes(t *testing.T) {
	// parallelMap with the optional worker-count input revealed (§3.2).
	pm := ParallelMap(RingOf(Product(Empty(), Num(10))), Var("data"), Num(4))
	if pm.Op != "reportParallelMap" || pm.Arity() != 3 {
		t.Error("parallelMap shape")
	}
	// parallelForEach in parallel mode with default parallelism (§3.3).
	pfe := ParallelForEach("cup", Var("cups"), Empty(), Body(Say(Var("cup"))))
	if pfe.Op != "doParallelForEach" || pfe.Arity() != 5 {
		t.Error("parallelForEach shape")
	}
	if mode := pfe.Input(4).(Literal).Val.(value.Bool); !bool(mode) {
		t.Error("parallel mode flag")
	}
	seq := ParallelForEachSeq("cup", Var("cups"), Body(Say(Var("cup"))))
	if mode := seq.Input(4).(Literal).Val.(value.Bool); bool(mode) {
		t.Error("sequential mode flag")
	}
	// mapReduce (§3.4).
	mr := MapReduce(RingOf(Empty()), RingOf(Empty()), Var("data"))
	if mr.Op != "reportMapReduce" || mr.Arity() != 3 {
		t.Error("mapReduce shape")
	}
}
