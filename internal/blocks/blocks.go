// Package blocks defines the block AST that stands in for Snap!'s visual
// programs: blocks with input slots, scripts (vertical stacks of blocks),
// rings (first-class procedures), custom block definitions ("Build Your Own
// Blocks"), sprites, and projects.
//
// In the paper the user assembles these structures with the mouse; here they
// are assembled with the builder API in builder.go, or loaded from the
// Snap!-style XML supported by package xmlio. Either way the result is the
// same data structure the interpreter executes and the code generator
// translates, so everything the paper claims about block programs — their
// semantics, their parallel extensions, and their translation to OpenMP —
// is exercised without a GUI.
package blocks

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// Node is anything that can occupy an input slot of a block: another block
// (a reporter), a literal, an empty slot, a variable reference, a ring, or
// a nested script (a C-shaped slot).
type Node interface {
	// Describe renders a compact, human-readable spelling of the node,
	// used in error messages and golden tests.
	Describe() string
}

// Block is a single block: a command (stackable) or a reporter (oval),
// identified by its selector ("opcode") with zero or more input slots.
type Block struct {
	// Op is the block selector, e.g. "reportSum" or "doSayFor". The full
	// opcode vocabulary is defined by the interpreter and the codegen
	// mapping tables.
	Op string
	// Inputs are the filled (or empty) slots, in order.
	Inputs []Node
}

// NewBlock builds a block with the given selector and inputs.
func NewBlock(op string, inputs ...Node) *Block {
	return &Block{Op: op, Inputs: inputs}
}

// Describe implements Node.
func (b *Block) Describe() string {
	if len(b.Inputs) == 0 {
		return b.Op
	}
	parts := make([]string, len(b.Inputs))
	for i, in := range b.Inputs {
		if in == nil {
			parts[i] = "_"
			continue
		}
		parts[i] = in.Describe()
	}
	return fmt.Sprintf("%s(%s)", b.Op, strings.Join(parts, ", "))
}

// Input returns the i-th (0-based) input, or an EmptySlot when the slot is
// missing — mirroring how Snap! treats an unfilled slot.
func (b *Block) Input(i int) Node {
	if i < 0 || i >= len(b.Inputs) || b.Inputs[i] == nil {
		return EmptySlot{}
	}
	return b.Inputs[i]
}

// Arity reports the number of declared inputs.
func (b *Block) Arity() int { return len(b.Inputs) }

// Script is a vertical stack of command blocks executed in order.
type Script struct {
	Blocks []*Block
}

// NewScript builds a script from the given blocks.
func NewScript(bs ...*Block) *Script { return &Script{Blocks: bs} }

// Describe implements Node.
func (s *Script) Describe() string {
	if s == nil || len(s.Blocks) == 0 {
		return "{}"
	}
	parts := make([]string, len(s.Blocks))
	for i, b := range s.Blocks {
		parts[i] = b.Describe()
	}
	return "{" + strings.Join(parts, "; ") + "}"
}

// Len reports the number of blocks in the script.
func (s *Script) Len() int {
	if s == nil {
		return 0
	}
	return len(s.Blocks)
}

// Append adds blocks to the end of the script.
func (s *Script) Append(bs ...*Block) { s.Blocks = append(s.Blocks, bs...) }

// Literal is a constant dropped into a slot: a number typed into an oval,
// text typed into a rectangle, a boolean chosen from a dropdown.
type Literal struct {
	Val value.Value
}

// Describe implements Node.
func (l Literal) Describe() string {
	if l.Val == nil {
		return "_"
	}
	if l.Val.Kind() == value.KindText {
		return fmt.Sprintf("%q", l.Val.String())
	}
	return l.Val.String()
}

// EmptySlot is an unfilled input. Inside a ring, empty slots are where the
// ring's arguments are inserted at call time ("the empty input signals where
// the list inputs are to be inserted into the function", §3.1).
type EmptySlot struct{}

// Describe implements Node.
func (EmptySlot) Describe() string { return "_" }

// VarGet reads a variable (a Snap! orange oval dropped into a slot).
type VarGet struct {
	Name string
}

// Describe implements Node.
func (v VarGet) Describe() string { return v.Name }

// RingNode is the gray ring: it delays evaluation of its body, so the body
// itself — not its value — becomes the input (§3.1's discussion of why the
// multiplication block must be ringified before being handed to map).
// Params names the ring's formal parameters; a body may instead use empty
// slots, which bind to arguments positionally.
type RingNode struct {
	// Body is either a Node (a reporter ring) or a *Script (a command
	// ring, the "ringified" script of a C-slot).
	Body Node
	// Params are optional named formal parameters.
	Params []string
}

// Describe implements Node.
func (r RingNode) Describe() string {
	body := "_"
	if r.Body != nil {
		body = r.Body.Describe()
	}
	if len(r.Params) > 0 {
		return fmt.Sprintf("ring[%s](%s)", strings.Join(r.Params, " "), body)
	}
	return fmt.Sprintf("ring(%s)", body)
}

// ScriptNode is a C-shaped slot holding a nested script (the mouth of a
// repeat/forever/if block, or the body of parallelForEach).
type ScriptNode struct {
	Script *Script
}

// Describe implements Node.
func (s ScriptNode) Describe() string { return s.Script.Describe() }

// Ring is the runtime closure a RingNode evaluates to: a first-class
// procedure value (Snap! calls reification "ringifying"). It captures the
// defining environment so rings are true lexical closures.
type Ring struct {
	// Body is the ring's body: a Node for reporter rings, a *Script for
	// command rings.
	Body Node
	// Params are the formal parameter names; empty means arguments bind
	// to empty slots positionally.
	Params []string
	// Env is an opaque handle to the captured environment. The
	// interpreter owns its concrete type; codegen and the engines treat
	// rings it did not create as opaque.
	Env any
	// Receiver optionally records the sprite the ring was reified in.
	Receiver string
}

// Kind implements value.Value.
func (*Ring) Kind() value.Kind { return value.KindRing }

// String implements value.Value.
func (r *Ring) String() string {
	if r.Body == nil {
		return "(ring)"
	}
	return "(ring " + r.Body.Describe() + ")"
}

// Clone implements value.Value. Procedures are immutable once reified, so a
// ring clones to itself; this matches how the paper's implementation ships
// the *source text* of the function to a Web Worker rather than the closure
// (Listing 2 re-creates the function from mappedCode()).
func (r *Ring) Clone() value.Value { return r }

// CustomBlock is a user-defined block ("Build Your Own Blocks"), the
// feature that gave Snap! its original name (§2).
type CustomBlock struct {
	// Name is the block's spec, e.g. "fahrenheit to celsius".
	Name string
	// Params are the formal parameter names.
	Params []string
	// Body is the definition script. For reporter blocks the script
	// reports via a doReport block.
	Body *Script
	// IsReporter distinguishes oval (reporter) from jigsaw (command)
	// custom blocks.
	IsReporter bool
}

// HatKind says which event a script's hat block listens for.
type HatKind int

// The events a hat block may bind to (§2's event-driven model).
const (
	HatGreenFlag  HatKind = iota // "when green flag clicked"
	HatKeyPress                  // "when <key> key pressed"
	HatBroadcast                 // "when I receive <message>"
	HatCloneStart                // "when I start as a clone"
)

// String names the hat kind.
func (h HatKind) String() string {
	switch h {
	case HatGreenFlag:
		return "whenGreenFlag"
	case HatKeyPress:
		return "whenKeyPressed"
	case HatBroadcast:
		return "whenIReceive"
	case HatCloneStart:
		return "whenCloneStarts"
	}
	return fmt.Sprintf("hat(%d)", int(h))
}

// HatScript is a script together with the event that launches it.
type HatScript struct {
	Hat HatKind
	// Arg is the key name for HatKeyPress or the message for
	// HatBroadcast.
	Arg    string
	Script *Script
}

// Sprite is a Snap! sprite: a named character with its own scripts,
// variables and (via package stage) a position on the stage. A project's
// sprites all run concurrently (§2: "activated scripts run concurrently,
// both within a sprite's own collection of scripts and across all sprites").
type Sprite struct {
	Name    string
	Scripts []*HatScript
	// Variables are the sprite-local variables and their initial values.
	Variables map[string]value.Value
	// Customs are sprite-local custom blocks.
	Customs map[string]*CustomBlock
	// X, Y is the starting stage position.
	X, Y float64
}

// NewSprite builds an empty sprite.
func NewSprite(name string) *Sprite {
	return &Sprite{
		Name:      name,
		Variables: map[string]value.Value{},
		Customs:   map[string]*CustomBlock{},
	}
}

// AddScript attaches a hat script to the sprite.
func (s *Sprite) AddScript(hat HatKind, arg string, script *Script) {
	s.Scripts = append(s.Scripts, &HatScript{Hat: hat, Arg: arg, Script: script})
}

// Project is a complete Snap! project: global variables, global custom
// blocks, and a collection of sprites.
type Project struct {
	Name    string
	Globals map[string]value.Value
	Customs map[string]*CustomBlock
	Sprites []*Sprite
}

// NewProject builds an empty project.
func NewProject(name string) *Project {
	return &Project{
		Name:    name,
		Globals: map[string]value.Value{},
		Customs: map[string]*CustomBlock{},
	}
}

// AddSprite appends a sprite and returns it for chaining.
func (p *Project) AddSprite(s *Sprite) *Sprite {
	p.Sprites = append(p.Sprites, s)
	return s
}

// Sprite returns the sprite with the given name, or nil.
func (p *Project) Sprite(name string) *Sprite {
	for _, s := range p.Sprites {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// LookupCustom resolves a custom block by name, checking the sprite first
// and falling back to project globals, the way Snap! scopes BYOB blocks.
func (p *Project) LookupCustom(sprite *Sprite, name string) *CustomBlock {
	if sprite != nil {
		if cb, ok := sprite.Customs[name]; ok {
			return cb
		}
	}
	if p == nil {
		return nil
	}
	return p.Customs[name]
}
