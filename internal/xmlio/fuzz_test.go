package xmlio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/demos"
)

// FuzzDecodeProject feeds arbitrary bytes to the project decoder: it must
// reject garbage with an error, never a panic, and anything it accepts
// must re-encode without panicking.
func FuzzDecodeProject(f *testing.F) {
	var buf bytes.Buffer
	if err := EncodeProject(&buf, demos.Concession(true)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`<project name="x"><variables/><blocks/><sprites/></project>`)
	f.Add(`<project><sprites><sprite name="S"><scripts><script hat="whenGreenFlag"><block s="forward"><l kind="number">10</l></block></script></scripts></sprite></sprites></project>`)
	f.Add(`<notxml`)
	f.Add(``)
	// Deep nesting must be rejected by the decoder's depth limit, not
	// crash the stack — this path serves untrusted network input.
	f.Add(`<project name="d"><sprites><sprite name="S"><scripts><script>` +
		strings.Repeat(`<block s="f">`, 400) + strings.Repeat(`</block>`, 400) +
		`</script></scripts></sprite></sprites></project>`)
	f.Fuzz(func(t *testing.T, src string) {
		p, err := DecodeProject(strings.NewReader(src))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := EncodeProject(&out, p); err != nil {
			t.Errorf("accepted project failed to re-encode: %v", err)
		}
	})
}
