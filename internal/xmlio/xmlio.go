// Package xmlio serializes projects to and from a Snap!-style XML format.
// Snap! stores projects as XML documents (the paper's §6 pipeline begins
// from such a project, and Snap!'s reference manual defines the format);
// this package provides the same capability for pblocks projects so block
// programs can be saved, shared, and fed to the cmd-line tools — the
// "consume existing data files ... without compromising the user-friendly
// interface" requirement of §6.3.
//
// The format follows Snap!'s conventions: <project>, <sprite>, <script>
// elements; <block s="selector"> for blocks with child elements per input;
// <l> for literals; <ring> for ringified expressions. A `kind` attribute
// distinguishes number/text/bool literals so round-trips are exact (Snap!
// itself re-parses numerals; we prefer fidelity).
package xmlio

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/blocks"
	"repro/internal/value"
)

// node is the generic XML element tree both directions share.
type node struct {
	XMLName  xml.Name
	S        string `xml:"s,attr,omitempty"`
	Name     string `xml:"name,attr,omitempty"`
	Kind     string `xml:"kind,attr,omitempty"`
	Params   string `xml:"params,attr,omitempty"`
	Hat      string `xml:"hat,attr,omitempty"`
	Arg      string `xml:"arg,attr,omitempty"`
	X        string `xml:"x,attr,omitempty"`
	Y        string `xml:"y,attr,omitempty"`
	Type     string `xml:"type,attr,omitempty"`
	Text     string `xml:",chardata"`
	Children []node `xml:",any"`
}

func elem(name string, children ...node) node {
	return node{XMLName: xml.Name{Local: name}, Children: children}
}

// --- encoding ---

// EncodeProject writes a project as XML.
func EncodeProject(w io.Writer, p *blocks.Project) error {
	root := elem("project")
	root.Name = p.Name
	root.Children = append(root.Children, encodeVariables(p.Globals))
	customs := elem("blocks")
	for _, name := range sortedCustomNames(p.Customs) {
		customs.Children = append(customs.Children, encodeCustom(p.Customs[name]))
	}
	root.Children = append(root.Children, customs)
	sprites := elem("sprites")
	for _, sp := range p.Sprites {
		sprites.Children = append(sprites.Children, encodeSprite(sp))
	}
	root.Children = append(root.Children, sprites)

	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(root); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

func sortedCustomNames(m map[string]*blocks.CustomBlock) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

func encodeVariables(vars map[string]value.Value) node {
	out := elem("variables")
	for _, name := range sortedVarNames(vars) {
		v := elem("variable", encodeValue(vars[name]))
		v.Name = name
		out.Children = append(out.Children, v)
	}
	return out
}

func sortedVarNames(m map[string]value.Value) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

func encodeCustom(cb *blocks.CustomBlock) node {
	out := elem("block-definition", encodeScriptNode(cb.Body))
	out.S = cb.Name
	out.Params = strings.Join(cb.Params, " ")
	if cb.IsReporter {
		out.Type = "reporter"
	} else {
		out.Type = "command"
	}
	return out
}

func encodeSprite(sp *blocks.Sprite) node {
	out := elem("sprite")
	out.Name = sp.Name
	out.X = formatFloat(sp.X)
	out.Y = formatFloat(sp.Y)
	out.Children = append(out.Children, encodeVariables(sp.Variables))
	customs := elem("blocks")
	for _, name := range sortedCustomNames(sp.Customs) {
		customs.Children = append(customs.Children, encodeCustom(sp.Customs[name]))
	}
	out.Children = append(out.Children, customs)
	scripts := elem("scripts")
	for _, hs := range sp.Scripts {
		s := encodeScriptNode(hs.Script)
		s.Hat = hs.Hat.String()
		s.Arg = hs.Arg
		scripts.Children = append(scripts.Children, s)
	}
	out.Children = append(out.Children, scripts)
	return out
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func encodeScriptNode(s *blocks.Script) node {
	out := elem("script")
	if s == nil {
		return out
	}
	for _, b := range s.Blocks {
		out.Children = append(out.Children, encodeBlock(b))
	}
	return out
}

func encodeBlock(b *blocks.Block) node {
	out := elem("block")
	out.S = b.Op
	for _, in := range b.Inputs {
		out.Children = append(out.Children, encodeInput(in))
	}
	return out
}

func encodeInput(n blocks.Node) node {
	switch x := n.(type) {
	case nil:
		return elem("empty")
	case blocks.EmptySlot:
		return elem("empty")
	case blocks.Literal:
		return encodeValue(x.Val)
	case blocks.VarGet:
		v := elem("varref")
		v.Name = x.Name
		return v
	case *blocks.Block:
		return encodeBlock(x)
	case blocks.ScriptNode:
		return encodeScriptNode(x.Script)
	case blocks.RingNode:
		r := elem("ring")
		r.Params = strings.Join(x.Params, " ")
		switch body := x.Body.(type) {
		case *blocks.Script:
			r.Children = append(r.Children, encodeScriptNode(body))
		case blocks.Node:
			r.Children = append(r.Children, encodeInput(body))
		}
		return r
	default:
		bad := elem("unsupported")
		bad.Text = fmt.Sprintf("%T", n)
		return bad
	}
}

func encodeValue(v value.Value) node {
	switch x := v.(type) {
	case nil, value.Nothing:
		return elem("l")
	case value.Number:
		l := elem("l")
		l.Kind = "number"
		l.Text = x.String()
		return l
	case value.Text:
		l := elem("l")
		l.Kind = "text"
		l.Text = string(x)
		return l
	case value.Bool:
		l := elem("bool")
		l.Text = x.String()
		return l
	case *value.List:
		out := elem("list")
		for _, it := range x.Items() {
			out.Children = append(out.Children, elem("item", encodeValue(it)))
		}
		return out
	default:
		bad := elem("unsupported")
		bad.Text = v.Kind().String()
		return bad
	}
}

// --- decoding ---

// DecodeProject reads a project from XML.
func DecodeProject(r io.Reader) (*blocks.Project, error) {
	var root node
	if err := xml.NewDecoder(r).Decode(&root); err != nil {
		return nil, fmt.Errorf("parse project XML: %w", err)
	}
	if root.XMLName.Local != "project" {
		return nil, fmt.Errorf("expected <project>, got <%s>", root.XMLName.Local)
	}
	p := blocks.NewProject(root.Name)
	for _, child := range root.Children {
		switch child.XMLName.Local {
		case "variables":
			vars, err := decodeVariables(child)
			if err != nil {
				return nil, err
			}
			p.Globals = vars
		case "blocks":
			for _, def := range child.Children {
				cb, err := decodeCustom(def)
				if err != nil {
					return nil, err
				}
				p.Customs[cb.Name] = cb
			}
		case "sprites":
			for _, sn := range child.Children {
				sp, err := decodeSprite(sn)
				if err != nil {
					return nil, err
				}
				p.Sprites = append(p.Sprites, sp)
			}
		}
	}
	return p, nil
}

func decodeVariables(n node) (map[string]value.Value, error) {
	out := map[string]value.Value{}
	for _, v := range n.Children {
		if v.XMLName.Local != "variable" {
			continue
		}
		if len(v.Children) == 0 {
			out[v.Name] = value.Nothing{}
			continue
		}
		val, err := decodeValue(v.Children[0])
		if err != nil {
			return nil, fmt.Errorf("variable %q: %w", v.Name, err)
		}
		out[v.Name] = val
	}
	return out, nil
}

func decodeCustom(n node) (*blocks.CustomBlock, error) {
	if n.XMLName.Local != "block-definition" {
		return nil, fmt.Errorf("expected <block-definition>, got <%s>", n.XMLName.Local)
	}
	cb := &blocks.CustomBlock{Name: n.S, IsReporter: n.Type == "reporter"}
	if n.Params != "" {
		cb.Params = strings.Fields(n.Params)
	}
	for _, c := range n.Children {
		if c.XMLName.Local == "script" {
			s, err := decodeScript(c)
			if err != nil {
				return nil, err
			}
			cb.Body = s
		}
	}
	return cb, nil
}

func decodeSprite(n node) (*blocks.Sprite, error) {
	if n.XMLName.Local != "sprite" {
		return nil, fmt.Errorf("expected <sprite>, got <%s>", n.XMLName.Local)
	}
	sp := blocks.NewSprite(n.Name)
	sp.X, _ = strconv.ParseFloat(n.X, 64)
	sp.Y, _ = strconv.ParseFloat(n.Y, 64)
	for _, c := range n.Children {
		switch c.XMLName.Local {
		case "variables":
			vars, err := decodeVariables(c)
			if err != nil {
				return nil, err
			}
			sp.Variables = vars
		case "blocks":
			for _, def := range c.Children {
				cb, err := decodeCustom(def)
				if err != nil {
					return nil, err
				}
				sp.Customs[cb.Name] = cb
			}
		case "scripts":
			for _, sn := range c.Children {
				script, err := decodeScript(sn)
				if err != nil {
					return nil, err
				}
				hat, err := parseHat(sn.Hat)
				if err != nil {
					return nil, err
				}
				sp.Scripts = append(sp.Scripts, &blocks.HatScript{
					Hat: hat, Arg: sn.Arg, Script: script,
				})
			}
		}
	}
	return sp, nil
}

func parseHat(s string) (blocks.HatKind, error) {
	switch s {
	case "", blocks.HatGreenFlag.String():
		return blocks.HatGreenFlag, nil
	case blocks.HatKeyPress.String():
		return blocks.HatKeyPress, nil
	case blocks.HatBroadcast.String():
		return blocks.HatBroadcast, nil
	case blocks.HatCloneStart.String():
		return blocks.HatCloneStart, nil
	}
	return 0, fmt.Errorf("unknown hat kind %q", s)
}

func decodeScript(n node) (*blocks.Script, error) {
	s := blocks.NewScript()
	for _, c := range n.Children {
		if c.XMLName.Local != "block" {
			return nil, fmt.Errorf("scripts contain <block> elements, got <%s>", c.XMLName.Local)
		}
		b, err := decodeBlock(c)
		if err != nil {
			return nil, err
		}
		s.Append(b)
	}
	return s, nil
}

func decodeBlock(n node) (*blocks.Block, error) {
	if n.S == "" {
		return nil, fmt.Errorf("<block> without selector")
	}
	b := blocks.NewBlock(n.S)
	for _, c := range n.Children {
		in, err := decodeInput(c)
		if err != nil {
			return nil, fmt.Errorf("block %q: %w", n.S, err)
		}
		b.Inputs = append(b.Inputs, in)
	}
	return b, nil
}

func decodeInput(n node) (blocks.Node, error) {
	switch n.XMLName.Local {
	case "empty":
		return blocks.EmptySlot{}, nil
	case "l", "bool", "list":
		v, err := decodeValue(n)
		if err != nil {
			return nil, err
		}
		return blocks.Literal{Val: v}, nil
	case "varref":
		return blocks.VarGet{Name: n.Name}, nil
	case "block":
		return decodeBlock(n)
	case "script":
		s, err := decodeScript(n)
		if err != nil {
			return nil, err
		}
		return blocks.ScriptNode{Script: s}, nil
	case "ring":
		r := blocks.RingNode{}
		if n.Params != "" {
			r.Params = strings.Fields(n.Params)
		}
		if len(n.Children) != 1 {
			return nil, fmt.Errorf("<ring> needs exactly one body")
		}
		body := n.Children[0]
		if body.XMLName.Local == "script" {
			s, err := decodeScript(body)
			if err != nil {
				return nil, err
			}
			r.Body = s
			return r, nil
		}
		inner, err := decodeInput(body)
		if err != nil {
			return nil, err
		}
		r.Body = inner
		return r, nil
	}
	return nil, fmt.Errorf("unknown input element <%s>", n.XMLName.Local)
}

func decodeValue(n node) (value.Value, error) {
	switch n.XMLName.Local {
	case "l":
		text := strings.TrimSpace(n.Text)
		switch n.Kind {
		case "number":
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, fmt.Errorf("bad number literal %q", text)
			}
			return value.Number(f), nil
		case "text":
			return value.Text(n.Text), nil
		case "":
			if text == "" {
				return value.Nothing{}, nil
			}
			// Untyped literal (hand-written XML): numeric if it
			// parses, text otherwise — Snap!'s own rule. ParseNumber
			// (not bare ParseFloat) so "Infinity"/"NaN"/hex forms stay
			// text, matching what value.ToNumber accepts at runtime.
			if f, err := value.ParseNumber(text); err == nil {
				return value.Number(f), nil
			}
			return value.Text(n.Text), nil
		default:
			return nil, fmt.Errorf("unknown literal kind %q", n.Kind)
		}
	case "bool":
		switch strings.TrimSpace(n.Text) {
		case "true":
			return value.Bool(true), nil
		case "false":
			return value.Bool(false), nil
		}
		return nil, fmt.Errorf("bad bool literal %q", n.Text)
	case "list":
		items := make([]value.Value, 0, len(n.Children))
		for _, item := range n.Children {
			if item.XMLName.Local != "item" || len(item.Children) != 1 {
				return nil, fmt.Errorf("malformed <list> item")
			}
			v, err := decodeValue(item.Children[0])
			if err != nil {
				return nil, err
			}
			items = append(items, v)
		}
		// AdoptSlice columnarizes long homogeneous literals (data lists).
		return value.AdoptSlice(items), nil
	}
	return nil, fmt.Errorf("unknown value element <%s>", n.XMLName.Local)
}
