package xmlio

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/interp"
	"repro/internal/vclock"
)

// The projects/ directory at the repository root ships ready-to-run XML
// project files (the artifacts a Snap! user would save); these tests keep
// them loadable and behaviorally correct.

func projectPath(t *testing.T, name string) string {
	t.Helper()
	p := filepath.Join("..", "..", "projects", name)
	if _, err := os.Stat(p); err != nil {
		t.Skipf("project file %s not present: %v", name, err)
	}
	return p
}

func loadShipped(t *testing.T, name string) *interp.Machine {
	t.Helper()
	f, err := os.Open(projectPath(t, name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p, err := DecodeProject(f)
	if err != nil {
		t.Fatalf("decode %s: %v", name, err)
	}
	return interp.NewMachine(p, vclock.NewPaperInterference())
}

func TestShippedConcessionParallel(t *testing.T) {
	m := loadShipped(t, "concession-parallel.xml")
	m.GreenFlag()
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := m.Stage.Timer.Elapsed(); got != 3 {
		t.Errorf("shipped parallel project = %d timesteps, want 3", got)
	}
}

func TestShippedConcessionSequential(t *testing.T) {
	m := loadShipped(t, "concession-sequential.xml")
	m.GreenFlag()
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := m.Stage.Timer.Elapsed(); got != 12 {
		t.Errorf("shipped sequential project = %d timesteps, want 12", got)
	}
}

func TestShippedDragon(t *testing.T) {
	m := loadShipped(t, "dragon.xml")
	m.GreenFlag()
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	d := m.Stage.Actor("Dragon")
	if d == nil || d.X != 50 {
		t.Errorf("shipped dragon should fly to x=50")
	}
	m.PressKey("left arrow")
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if d.Heading != 75 {
		t.Errorf("heading = %g, want 75", d.Heading)
	}
}
