package xmlio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/blocks"
	"repro/internal/demos"
	"repro/internal/interp"
	"repro/internal/value"
	"repro/internal/vclock"
)

func roundTrip(t *testing.T, p *blocks.Project) *blocks.Project {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeProject(&buf, p); err != nil {
		t.Fatalf("encode: %v", err)
	}
	p2, err := DecodeProject(&buf)
	if err != nil {
		t.Fatalf("decode: %v\n%s", err, buf.String())
	}
	return p2
}

func TestRoundTripEmptyProject(t *testing.T) {
	p2 := roundTrip(t, blocks.NewProject("empty"))
	if p2.Name != "empty" || len(p2.Sprites) != 0 {
		t.Errorf("round trip changed the project: %+v", p2)
	}
}

func TestRoundTripGlobals(t *testing.T) {
	p := blocks.NewProject("vars")
	p.Globals["n"] = value.Number(3.5)
	p.Globals["s"] = value.Text("hello world")
	p.Globals["numeric text"] = value.Text("42")
	p.Globals["b"] = value.Bool(true)
	p.Globals["nested"] = value.NewList(
		value.Number(1), value.NewList(value.Text("x")), value.Bool(false))
	p.Globals["none"] = value.Nothing{}
	p2 := roundTrip(t, p)
	for name, want := range p.Globals {
		got, ok := p2.Globals[name]
		if !ok {
			t.Errorf("global %q lost", name)
			continue
		}
		if got.Kind() != want.Kind() || got.String() != want.String() {
			t.Errorf("global %q = %v (%v), want %v (%v)",
				name, got, got.Kind(), want, want.Kind())
		}
	}
	// kind attribute keeps text "42" as text, not number.
	if p2.Globals["numeric text"].Kind() != value.KindText {
		t.Error("typed literal lost its textiness")
	}
}

func TestRoundTripScriptsAndBlocks(t *testing.T) {
	p := blocks.NewProject("scripts")
	sp := p.AddSprite(blocks.NewSprite("S"))
	sp.X, sp.Y = -12.5, 40
	sp.Variables["local"] = value.Number(1)
	sp.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.SetVar("local", blocks.Sum(blocks.Var("local"), blocks.Num(1))),
		blocks.If(blocks.GreaterThan(blocks.Var("local"), blocks.Num(0)),
			blocks.Body(blocks.Say(blocks.Txt("positive")))),
		blocks.Report(blocks.Map(
			blocks.RingOf(blocks.Product(blocks.Empty(), blocks.Num(10))),
			blocks.ListOf(blocks.Num(3), blocks.Num(7), blocks.Num(8)))),
	))
	sp.AddScript(blocks.HatKeyPress, "space", blocks.NewScript(
		blocks.TurnRight(blocks.Num(15)),
	))
	p2 := roundTrip(t, p)
	sp2 := p2.Sprite("S")
	if sp2 == nil {
		t.Fatal("sprite lost")
	}
	if sp2.X != -12.5 || sp2.Y != 40 {
		t.Errorf("position = (%g, %g)", sp2.X, sp2.Y)
	}
	if len(sp2.Scripts) != 2 {
		t.Fatalf("scripts = %d", len(sp2.Scripts))
	}
	if sp2.Scripts[1].Hat != blocks.HatKeyPress || sp2.Scripts[1].Arg != "space" {
		t.Error("hat metadata lost")
	}
	// Structural equality via Describe.
	if got, want := sp2.Scripts[0].Script.Describe(), sp.Scripts[0].Script.Describe(); got != want {
		t.Errorf("script changed:\n got %s\nwant %s", got, want)
	}
}

func TestRoundTripCustomBlocks(t *testing.T) {
	p := blocks.NewProject("byob")
	p.Customs["double"] = &blocks.CustomBlock{
		Name: "double", Params: []string{"n"}, IsReporter: true,
		Body: blocks.NewScript(blocks.Report(blocks.Sum(blocks.Var("n"), blocks.Var("n")))),
	}
	sp := p.AddSprite(blocks.NewSprite("S"))
	sp.Customs["local cmd"] = &blocks.CustomBlock{
		Name: "local cmd", Body: blocks.NewScript(blocks.Forward(blocks.Num(1))),
	}
	p2 := roundTrip(t, p)
	cb := p2.Customs["double"]
	if cb == nil || !cb.IsReporter || len(cb.Params) != 1 || cb.Params[0] != "n" {
		t.Fatalf("custom block lost: %+v", cb)
	}
	if cb.Body.Describe() != p.Customs["double"].Body.Describe() {
		t.Error("custom body changed")
	}
	lc := p2.Sprite("S").Customs["local cmd"]
	if lc == nil || lc.IsReporter {
		t.Error("sprite-local custom block lost")
	}
}

// TestRoundTripConcessionRuns round-trips the full concession-stand
// project — parallel blocks, rings, C-slots, broadcasts — and re-runs it:
// the reloaded project must still reproduce the paper's 3-timestep result.
func TestRoundTripConcessionRuns(t *testing.T) {
	p2 := roundTrip(t, demos.Concession(true))
	m := interp.NewMachine(p2, vclock.NewPaperInterference())
	m.GreenFlag()
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := m.Stage.Timer.Elapsed(); got != 3 {
		t.Errorf("reloaded concession stand = %d timesteps, want 3", got)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		`not xml at all <<<`,
		`<notproject/>`,
		`<project><sprites><sprite><scripts><script><block/></script></scripts></sprite></sprites></project>`,
		`<project><sprites><sprite><scripts><script hat="whenMartiansLand"><block s="doStopThis"/></script></scripts></sprite></sprites></project>`,
		`<project><variables><variable name="x"><l kind="number">pear</l></variable></variables></project>`,
		`<project><variables><variable name="x"><bool>maybe</bool></variable></variables></project>`,
		`<project><variables><variable name="x"><l kind="alien">z</l></variable></variables></project>`,
		`<project><sprites><sprite><scripts><script><block s="f"><ring/></block></script></scripts></sprite></sprites></project>`,
		`<project><sprites><sprite><scripts><script><zorp/></script></scripts></sprite></sprites></project>`,
		`<project><variables><variable name="x"><list><item/></list></variable></variables></project>`,
	}
	for i, src := range cases {
		if _, err := DecodeProject(strings.NewReader(src)); err == nil {
			t.Errorf("case %d should fail to decode", i)
		}
	}
}

func TestDecodeUntypedLiteral(t *testing.T) {
	// Hand-written XML without kind attributes parses with Snap!'s
	// numeric-if-it-parses rule.
	src := `<project name="hand">
  <variables>
    <variable name="n"><l>42</l></variable>
    <variable name="s"><l>hello</l></variable>
  </variables>
</project>`
	p, err := DecodeProject(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if p.Globals["n"].Kind() != value.KindNumber {
		t.Error("bare 42 should parse as a number")
	}
	if p.Globals["s"].Kind() != value.KindText {
		t.Error("bare hello should parse as text")
	}
}

func TestEncodeIsStable(t *testing.T) {
	p := demos.Concession(false)
	var a, b bytes.Buffer
	if err := EncodeProject(&a, p); err != nil {
		t.Fatal(err)
	}
	if err := EncodeProject(&b, p); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("encoding must be deterministic")
	}
	if !strings.Contains(a.String(), `s="doParallelForEach"`) {
		t.Error("parallel block missing from XML")
	}
}
