// Package survey reproduces the assessment of §5: the survey run at the
// 18th Annual Women in Computing Day (WCD) at Virginia Tech, and the
// event's session logistics (four groups of 24–25 students rotating
// through four 50-minute activities).
//
// The paper reports only aggregate percentages; the raw responses are a
// data gate. The canonical dataset below is synthesized so that the
// paper's tabulation comes out exactly: 29% / 54% / 17% on the career
// question, 57% of the non-CS respondents on the benefit question, and
// 86% / 9% / 6% on the impression question (the paper's impression row
// sums to 101% — rounding in the original; our dataset reproduces the
// same rounded figures).
package survey

import (
	"fmt"
	"math"
)

// CareerAnswer is question 1: "whether computer science would be a
// potential career choice for them".
type CareerAnswer int

// The career answers.
const (
	CareerCS CareerAnswer = iota
	CareerOther
	CareerNoAnswer
)

// Impression is question 3: impression of computer science after the
// activity, versus before.
type Impression int

// The impression answers.
const (
	MoreFavorable Impression = iota
	LessFavorable
	SameOrNoOpinion
)

// Response is one middle schooler's survey form.
type Response struct {
	Career CareerAnswer
	// BenefitsCareer is question 2, asked of those whose career choice
	// is not CS: would CS benefit their chosen career?
	BenefitsCareer bool
	Impression     Impression
}

// Tabulation is the aggregate §5 reports.
type Tabulation struct {
	N int
	// Career percentages (rounded to whole percent, as the paper
	// reports them).
	CareerCSPct, CareerOtherPct, CareerNoAnswerPct int
	// BenefitPct is the share of non-CS-career respondents who said CS
	// would benefit their chosen career.
	BenefitPct int
	// Impression percentages.
	MoreFavorablePct, LessFavorablePct, SamePct int
}

// Tabulate computes the paper's three result rows from raw responses.
func Tabulate(responses []Response) Tabulation {
	t := Tabulation{N: len(responses)}
	if t.N == 0 {
		return t
	}
	var cs, other, noAns, benefit, more, less, same int
	for _, r := range responses {
		switch r.Career {
		case CareerCS:
			cs++
		case CareerOther:
			other++
			if r.BenefitsCareer {
				benefit++
			}
		default:
			noAns++
		}
		switch r.Impression {
		case MoreFavorable:
			more++
		case LessFavorable:
			less++
		default:
			same++
		}
	}
	pct := func(part, whole int) int {
		if whole == 0 {
			return 0
		}
		return int(math.Round(100 * float64(part) / float64(whole)))
	}
	t.CareerCSPct = pct(cs, t.N)
	t.CareerOtherPct = pct(other, t.N)
	t.CareerNoAnswerPct = pct(noAns, t.N)
	t.BenefitPct = pct(benefit, other)
	t.MoreFavorablePct = pct(more, t.N)
	t.LessFavorablePct = pct(less, t.N)
	t.SamePct = pct(same, t.N)
	return t
}

// String renders the tabulation as the three sentences of §5.
func (t Tabulation) String() string {
	return fmt.Sprintf(
		"career: %d%% CS, %d%% other, %d%% no answer; "+
			"%d%% of non-CS say CS benefits their career; "+
			"impression: %d%% more favorable, %d%% less, %d%% same",
		t.CareerCSPct, t.CareerOtherPct, t.CareerNoAnswerPct,
		t.BenefitPct,
		t.MoreFavorablePct, t.LessFavorablePct, t.SamePct)
}

// CanonicalWCD synthesizes the N=104 response set ("approximately 100
// seventh-grade girls") whose tabulation reproduces §5's percentages
// exactly: 30 CS / 56 other / 18 no answer; 32 of the 56 say CS benefits
// their career; 89 more favorable / 9 less / 6 same.
func CanonicalWCD() []Response {
	var out []Response
	add := func(n int, r Response) {
		for i := 0; i < n; i++ {
			out = append(out, r)
		}
	}
	// Impressions are distributed across the career groups; only the
	// totals matter to the tabulation: 89 more, 9 less, 6 same.
	add(28, Response{Career: CareerCS, Impression: MoreFavorable})
	add(2, Response{Career: CareerCS, Impression: SameOrNoOpinion})
	add(32, Response{Career: CareerOther, BenefitsCareer: true, Impression: MoreFavorable})
	add(17, Response{Career: CareerOther, Impression: MoreFavorable})
	add(5, Response{Career: CareerOther, Impression: LessFavorable})
	add(2, Response{Career: CareerOther, Impression: SameOrNoOpinion})
	add(12, Response{Career: CareerNoAnswer, Impression: MoreFavorable})
	add(4, Response{Career: CareerNoAnswer, Impression: LessFavorable})
	add(2, Response{Career: CareerNoAnswer, Impression: SameOrNoOpinion})
	return out
}

// --- WCD session logistics ---

// SessionPlan is the event schedule: groups rotating through activities.
type SessionPlan struct {
	// Groups maps group index -> the activity index it attends in each
	// of the four 50-minute slots.
	Groups [][]int
	// Activities are the activity names; parallel Snap! is one of them.
	Activities []string
	// MinutesPerSession is the slot length (50 in §5).
	MinutesPerSession int
}

// PlanWCD builds the §5 rotation: nGroups groups cycling through
// len(activities) sessions so every group attends every activity exactly
// once — "each group cycle[s] through four parallel 50-minute activity
// sessions".
func PlanWCD(nGroups int, activities []string, minutes int) (*SessionPlan, error) {
	if nGroups != len(activities) {
		return nil, fmt.Errorf("rotation needs as many groups (%d) as activities (%d)",
			nGroups, len(activities))
	}
	p := &SessionPlan{Activities: activities, MinutesPerSession: minutes}
	for g := 0; g < nGroups; g++ {
		row := make([]int, len(activities))
		for slot := range row {
			row[slot] = (g + slot) % len(activities)
		}
		p.Groups = append(p.Groups, row)
	}
	return p, nil
}

// Validate checks the rotation invariants: every group sees every activity
// exactly once, and no two groups share an activity in the same slot.
func (p *SessionPlan) Validate() error {
	for g, row := range p.Groups {
		seen := map[int]bool{}
		for _, a := range row {
			if seen[a] {
				return fmt.Errorf("group %d repeats activity %d", g, a)
			}
			seen[a] = true
		}
		if len(seen) != len(p.Activities) {
			return fmt.Errorf("group %d misses an activity", g)
		}
	}
	for slot := 0; slot < len(p.Activities); slot++ {
		seen := map[int]bool{}
		for g, row := range p.Groups {
			if seen[row[slot]] {
				return fmt.Errorf("slot %d double-books activity %d (group %d)",
					slot, row[slot], g)
			}
			seen[row[slot]] = true
		}
	}
	return nil
}

// SessionsTaught reports, for the named activity, how many separate
// cohorts its instructors teach — §5's "every 50 minutes, our task
// entailed teaching a new set of 24-25 girls".
func (p *SessionPlan) SessionsTaught(activity string) int {
	idx := -1
	for i, a := range p.Activities {
		if a == activity {
			idx = i
		}
	}
	if idx < 0 {
		return 0
	}
	count := 0
	for _, row := range p.Groups {
		for _, a := range row {
			if a == idx {
				count++
			}
		}
	}
	return count
}
