package survey

import (
	"testing"
	"testing/quick"
)

// TestSurveySection5 is experiment E9: the canonical WCD dataset must
// tabulate to exactly the percentages §5 reports.
func TestSurveySection5(t *testing.T) {
	tab := Tabulate(CanonicalWCD())
	if tab.N != 104 {
		t.Errorf("N = %d, want 104 (approximately 100 middle schoolers)", tab.N)
	}
	if tab.CareerCSPct != 29 || tab.CareerOtherPct != 54 || tab.CareerNoAnswerPct != 17 {
		t.Errorf("career = %d/%d/%d, paper reports 29/54/17",
			tab.CareerCSPct, tab.CareerOtherPct, tab.CareerNoAnswerPct)
	}
	if tab.BenefitPct != 57 {
		t.Errorf("benefit = %d%%, paper reports 57%%", tab.BenefitPct)
	}
	if tab.MoreFavorablePct != 86 || tab.LessFavorablePct != 9 || tab.SamePct != 6 {
		t.Errorf("impression = %d/%d/%d, paper reports 86/9/6",
			tab.MoreFavorablePct, tab.LessFavorablePct, tab.SamePct)
	}
}

func TestTabulationString(t *testing.T) {
	s := Tabulate(CanonicalWCD()).String()
	want := "career: 29% CS, 54% other, 17% no answer; " +
		"57% of non-CS say CS benefits their career; " +
		"impression: 86% more favorable, 9% less, 6% same"
	if s != want {
		t.Errorf("String() = %q", s)
	}
}

func TestTabulateEmptyAndEdge(t *testing.T) {
	tab := Tabulate(nil)
	if tab.N != 0 || tab.CareerCSPct != 0 || tab.BenefitPct != 0 {
		t.Error("empty tabulation should be zero")
	}
	// All-CS respondents: benefit question has no denominators.
	tab = Tabulate([]Response{{Career: CareerCS}})
	if tab.BenefitPct != 0 {
		t.Error("benefit with no non-CS respondents should be 0")
	}
	if tab.CareerCSPct != 100 {
		t.Error("single CS respondent should be 100%")
	}
}

// Property: the career percentages always describe a partition — each in
// [0,100] and summing to 100 ± rounding slack.
func TestPropertyPercentagesPartition(t *testing.T) {
	f := func(picks []uint8) bool {
		if len(picks) == 0 {
			return true
		}
		rs := make([]Response, len(picks))
		for i, p := range picks {
			rs[i] = Response{
				Career:         CareerAnswer(p % 3),
				BenefitsCareer: p%2 == 0,
				Impression:     Impression(p % 3),
			}
		}
		tab := Tabulate(rs)
		sum := tab.CareerCSPct + tab.CareerOtherPct + tab.CareerNoAnswerPct
		if sum < 98 || sum > 102 {
			return false
		}
		sum = tab.MoreFavorablePct + tab.LessFavorablePct + tab.SamePct
		return sum >= 98 && sum <= 102
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPlanWCD(t *testing.T) {
	activities := []string{"parallel Snap!", "robotics", "crypto", "design"}
	p, err := PlanWCD(4, activities, 50)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("rotation invalid: %v", err)
	}
	// §5: "every 50 minutes, our task entailed teaching a new set of
	// 24-25 girls" — the Snap! activity teaches four cohorts.
	if got := p.SessionsTaught("parallel Snap!"); got != 4 {
		t.Errorf("Snap! sessions = %d, want 4", got)
	}
	if p.SessionsTaught("underwater basket weaving") != 0 {
		t.Error("unknown activity should teach zero sessions")
	}
	if p.MinutesPerSession != 50 {
		t.Error("session length")
	}
}

func TestPlanWCDErrors(t *testing.T) {
	if _, err := PlanWCD(3, []string{"a", "b"}, 50); err == nil {
		t.Error("mismatched groups/activities should error")
	}
}

func TestValidateCatchesBadPlans(t *testing.T) {
	p := &SessionPlan{
		Activities: []string{"a", "b"},
		Groups:     [][]int{{0, 0}, {1, 0}},
	}
	if err := p.Validate(); err == nil {
		t.Error("repeated activity should fail validation")
	}
	p = &SessionPlan{
		Activities: []string{"a", "b"},
		Groups:     [][]int{{0, 1}, {0, 1}},
	}
	if err := p.Validate(); err == nil {
		t.Error("double-booked slot should fail validation")
	}
}
