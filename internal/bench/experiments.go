// Package bench implements the reproduction harness: one runner per
// experiment in DESIGN.md's index (E1–E16), each regenerating a figure,
// listing, or result row of the paper as text. cmd/snapbench prints them;
// the root-level benchmarks time them.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/blocks"
	"repro/internal/codegen"
	"repro/internal/demos"
	"repro/internal/dist"
	"repro/internal/interp"
	"repro/internal/mapreduce"
	"repro/internal/noaa"
	"repro/internal/omp"
	"repro/internal/sched"
	"repro/internal/survey"
	"repro/internal/value"
	"repro/internal/workers"
)

// Experiment is one reproducible artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func() (string, error)
}

// All returns the experiments in index order.
func All() []Experiment {
	return []Experiment{
		{"e1", "Figure 4: sequential map block", E1},
		{"e2", "Figures 5-6: parallelMap block", E2},
		{"e3", "Figures 7, 9: concession stand, parallel mode", E3},
		{"e4", "Figure 10 + footnote 5: concession stand, sequential mode", E4},
		{"e5", "Figures 11-12: word count via mapReduce", E5},
		{"e6", "Figure 13: NOAA climate averaging via mapReduce", E6},
		{"e7", "Figure 16 / Listing 5: Snap! to C code mapping", E7},
		{"e8", "Figures 18-20 / Listings 6-7: mapReduce to OpenMP", E8},
		{"e9", "Section 5: WCD survey tabulation", E9},
		{"e10", "Section 3.2: worker assignment-policy load balance", E10},
		{"e11", "Section 6 ablation: OpenMP loop schedules", E11},
		{"e12", "Section 6.3: batch submission workflow", E12},
		{"e13", "Section 2: time-sliced concurrency (dragon scripts)", E13},
		{"e14", "Section 6.3 future work: inter-node MapReduce scaling", E14},
		{"e15", "Section 6.1: OpenMP vs pthreads programmability contrast", E15},
		{"e16", "Section 6.3 ablation: FIFO vs EASY-backfill scheduling", E16},
	}
}

// Lookup finds an experiment by id ("e1".."e16").
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == strings.ToLower(id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// E1 reproduces Figure 4: map (× _ 10) over (3 7 8) → (30 70 80).
func E1() (string, error) {
	v, err := demos.EvalBlock(demos.Fig4SeqMap())
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("map (x 10) over [3 7 8]  ->  %s   (paper: [30 70 80])\n", v), nil
}

// E2 reproduces Figures 5–6: parallelMap over 1..100 with ×10, showing the
// first ten input/output pairs (Figure 6) and a worker-count sweep.
func E2() (string, error) {
	var b strings.Builder
	v, err := demos.EvalBlock(demos.Fig5ParallelMap(
		blocks.Numbers(blocks.Num(1), blocks.Num(100)), blocks.Num(4)))
	if err != nil {
		return "", err
	}
	l := v.(*value.List)
	b.WriteString("first ten input/output pairs (Figure 6):\n")
	b.WriteString("  in:  ")
	for i := 1; i <= 10; i++ {
		fmt.Fprintf(&b, "%4d", i)
	}
	b.WriteString("\n  out: ")
	for i := 1; i <= 10; i++ {
		fmt.Fprintf(&b, "%4s", l.MustItem(i).String())
	}
	b.WriteString("\n\nworker-count sweep (result must be identical):\n")
	for _, w := range []int{1, 2, 4, 8} {
		vw, err := demos.EvalBlock(demos.Fig5ParallelMap(
			blocks.Numbers(blocks.Num(1), blocks.Num(100)), blocks.Num(float64(w))))
		if err != nil {
			return "", err
		}
		match := "ok"
		if !value.Equal(v, vw) {
			match = "MISMATCH"
		}
		fmt.Fprintf(&b, "  workers=%d: len=%d  %s\n", w, vw.(*value.List).Len(), match)
	}
	return b.String(), nil
}

func concessionReport(parallel bool, paperTimer int64) (string, error) {
	res, err := demos.RunConcession(parallel)
	if err != nil {
		return "", err
	}
	mode := "sequential"
	if parallel {
		mode = "parallel"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "mode: %s\n", mode)
	cups := make([]string, 0, len(res.FillTimes))
	for cup := range res.FillTimes {
		cups = append(cups, cup)
	}
	sort.Strings(cups)
	for _, cup := range cups {
		fmt.Fprintf(&b, "  %s full at timestep %d\n", cup, res.FillTimes[cup])
	}
	fmt.Fprintf(&b, "timer at completion: %d timesteps  (paper: %d)\n", res.Timer, paperTimer)
	return b.String(), nil
}

// E3 reproduces Figures 7 and 9: the parallel concession stand finishing
// in 3 timesteps.
func E3() (string, error) { return concessionReport(true, 3) }

// E4 reproduces Figure 10 and footnote 5: the sequential concession stand
// finishing in 12 timesteps (9 pouring + 3 interference), cups filling at
// timesteps 3, 7, and 12.
func E4() (string, error) { return concessionReport(false, 12) }

// E5 reproduces Figures 11–12: word count as a sorted list of unique words
// with counts.
func E5() (string, error) {
	sentence := "I want to be what I was when I wanted to be what I am now"
	v, err := demos.EvalBlock(demos.WordCountBlock(sentence))
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "input: %q\n", sentence)
	b.WriteString("word counts (sorted by word, Figure 12):\n")
	for _, it := range v.(*value.List).Items() {
		pair := it.(*value.List)
		fmt.Fprintf(&b, "  %-8s %s\n", pair.MustItem(1), pair.MustItem(2))
	}
	return b.String(), nil
}

// E6 reproduces Figure 13 on synthetic NOAA data: Fahrenheit→Celsius map,
// average reduce, per year — the warming trend the students look for.
func E6() (string, error) {
	ds := noaa.Generate(noaa.Config{
		Stations: 5, StartYear: 1990, EndYear: 1999, DaysPerYear: 60,
		TrendFPerYear: 0.5, Seed: 42,
	})
	var b strings.Builder
	b.WriteString("year   mean °C (mapReduce block over NOAA-style data)\n")
	var first, last float64
	years := ds.Years()
	for _, year := range years {
		temps := ds.TempsFForYear(year)
		res, err := mapreduce.Run(temps, mapreduce.FahrenheitToCelsius,
			mapreduce.AvgReduce, mapreduce.Config{Workers: 4})
		if err != nil {
			return "", err
		}
		c, err := value.ToNumber(res[0].Val)
		if err != nil {
			return "", err
		}
		if year == years[0] {
			first = float64(c)
		}
		if year == years[len(years)-1] {
			last = float64(c)
		}
		fmt.Fprintf(&b, "%d   %6.2f\n", year, float64(c))
	}
	fmt.Fprintf(&b, "trend over %d years: %+.2f °C (injected warming recovered)\n",
		len(years)-1, last-first)
	return b.String(), nil
}

// E7 regenerates Listing 5: the C translation of the Figure 16 script.
func E7() (string, error) {
	src, err := codegen.Listing5()
	if err != nil {
		return "", err
	}
	return "Snap! script (Figure 16):\n  " +
		codegen.Figure16Script().Describe() +
		"\n\ngenerated C (Listing 5):\n" + src, nil
}

// E8 regenerates the OpenMP MapReduce artifacts of Figures 18–20 and
// Listings 6–7.
func E8() (string, error) {
	block := blocks.MapReduce(
		blocks.RingOf(blocks.Quotient(
			blocks.Product(blocks.Num(5), blocks.Difference(blocks.Empty(), blocks.Num(32))),
			blocks.Num(9))),
		blocks.RingOf(blocks.Quotient(
			blocks.Combine(blocks.Empty(), blocks.RingOf(blocks.Sum(blocks.Empty(), blocks.Empty()))),
			blocks.LengthOf(blocks.Empty()))),
		blocks.ListOf(blocks.Num(32), blocks.Num(212), blocks.Num(122)))
	files, err := codegen.MapReduceFiles(block, []float64{32, 212, 122}, 4)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, name := range []string{"kvp.h", "mapreduce.c", "main.c", "Makefile", "job.sbatch"} {
		fmt.Fprintf(&b, "--- %s ---\n%s\n", name, files[name])
	}
	return b.String(), nil
}

// E9 reproduces the §5 survey percentages.
func E9() (string, error) {
	tab := survey.Tabulate(survey.CanonicalWCD())
	var b strings.Builder
	fmt.Fprintf(&b, "respondents: %d (paper: ~100 seventh-grade girls)\n", tab.N)
	fmt.Fprintf(&b, "career choice:      CS %d%%   other %d%%   no answer %d%%   (paper: 29/54/17)\n",
		tab.CareerCSPct, tab.CareerOtherPct, tab.CareerNoAnswerPct)
	fmt.Fprintf(&b, "CS benefits career: %d%% of non-CS respondents            (paper: 57)\n",
		tab.BenefitPct)
	fmt.Fprintf(&b, "impression of CS:   more %d%%   less %d%%   same %d%%        (paper: 86/9/6)\n",
		tab.MoreFavorablePct, tab.LessFavorablePct, tab.SamePct)
	return b.String(), nil
}

// E10 measures how the three element-assignment policies of the worker
// pool balance skewed work: element i costs i units, so a contiguous block
// split is maximally unfair while dynamic self-balances. Reported per
// policy: each worker's virtual cost, the imbalance ratio (max/mean), and
// the virtual speedup (total cost / makespan) — the speedup a multi-core
// browser would see.
func E10() (string, error) {
	const n, w = 4000, 4
	in := value.Range(1, n, 1)
	burn := func(v value.Value) (value.Value, error) {
		x, err := value.ToNumber(v)
		if err != nil {
			return nil, err
		}
		// Real work proportional to the element value, so dynamic
		// assignment genuinely self-balances.
		acc := 0.0
		for i := 0; i < int(x); i++ {
			acc += float64(i)
		}
		_ = acc
		return x, nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "N=%d skewed elements (cost of element i = i), %d workers\n", n, w)
	fmt.Fprintf(&b, "%-12s %-40s %9s %9s\n", "policy", "per-worker cost (virtual)", "imbalance", "speedup")
	cost := func(i int) int64 { return int64(i + 1) }
	for _, policy := range []workers.Assignment{workers.Block, workers.Interleaved, workers.Dynamic} {
		// Execute the real pool (the code path under test)...
		p := workers.New(in, workers.Options{
			MaxWorkers: w, Assignment: policy, Cost: cost,
		})
		job := p.Map(burn)
		if _, err := job.Wait(); err != nil {
			return "", err
		}
		// ...and report the deterministic virtual-time distribution
		// (wall-clock balance is meaningless on a single-core host;
		// the paper likewise reports virtual timesteps).
		max, costs := workers.VirtualMakespan(n, w, policy, cost)
		var total int64
		for _, c := range costs {
			total += c
		}
		mean := float64(total) / float64(len(costs))
		cells := make([]string, len(costs))
		for i, c := range costs {
			cells[i] = fmt.Sprintf("%d", c)
		}
		fmt.Fprintf(&b, "%-12s %-40s %8.2fx %8.2fx\n",
			policy, strings.Join(cells, " "),
			float64(max)/mean, float64(total)/float64(max))
	}
	b.WriteString("(virtual speedup = total cost / busiest worker; ideal = worker count)\n")
	return b.String(), nil
}

// E11 ablates the OpenMP loop schedules on the same skewed workload via
// the omp runtime: per schedule, the per-thread virtual cost and makespan.
func E11() (string, error) {
	const n, threads = 4000, 4
	var b strings.Builder
	fmt.Fprintf(&b, "N=%d iterations (cost of iteration i = i), %d threads\n", n, threads)
	fmt.Fprintf(&b, "%-16s %-40s %9s %9s %10s\n", "schedule", "per-thread cost (virtual)", "imbalance", "speedup", "wall")
	cost := func(i int) int64 { return int64(i) }
	for _, cfg := range []omp.ForConfig{
		{Threads: threads, Schedule: omp.Static},
		{Threads: threads, Schedule: omp.Static, Chunk: 64},
		{Threads: threads, Schedule: omp.Dynamic, Chunk: 16},
		{Threads: threads, Schedule: omp.Guided},
	} {
		// Execute the real runtime (timing the code path)...
		start := time.Now()
		omp.For(n, cfg, func(i, tid int) {
			acc := 0.0
			for k := 0; k < i; k++ {
				acc += float64(k)
			}
			_ = acc
		})
		wall := time.Since(start)
		// ...and report the schedule's deterministic virtual-time
		// distribution.
		max, costs := omp.SimulateMakespan(n, cfg, cost)
		var total int64
		for _, c := range costs {
			total += c
		}
		mean := float64(total) / float64(threads)
		cells := make([]string, len(costs))
		for i, c := range costs {
			cells[i] = fmt.Sprintf("%d", c)
		}
		name := cfg.Schedule.String()
		if cfg.Chunk > 0 {
			name = fmt.Sprintf("%s,%d", name, cfg.Chunk)
		}
		fmt.Fprintf(&b, "%-16s %-40s %8.2fx %8.2fx %10s\n",
			name, strings.Join(cells, " "),
			float64(max)/mean, float64(total)/float64(max), wall.Round(time.Microsecond))
	}
	b.WriteString("(wall time is host-dependent; imbalance and virtual speedup are the result)\n")
	return b.String(), nil
}

// E12 walks the §6.3 batch workflow: generate the script, submit to a
// simulated cluster behind a blocking job, monitor, collect.
func E12() (string, error) {
	var b strings.Builder
	script := codegen.BatchScript("snap-mapreduce", 2, 8, 10)
	b.WriteString("generated batch script:\n")
	for _, line := range strings.Split(strings.TrimSpace(script), "\n") {
		b.WriteString("  " + line + "\n")
	}
	c := sched.NewCluster(3, sched.Backfill)
	c.Submit(sched.JobSpec{Name: "blocker", Nodes: 2, Walltime: 4, Duration: 4})
	j, err := c.SubmitScript(script, 3, func() string { return "average temperature: 50 C" })
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "\nsubmitted as job %d; state while nodes busy: %s\n", j.ID, j.State)
	for c.Now() < 100 && j.State != sched.Completed && j.State != sched.Failed {
		c.Tick()
		if j.State == sched.Running && j.StartTick == c.Now() {
			fmt.Fprintf(&b, "tick %d: job started\n", c.Now())
		}
	}
	out, err := c.Collect(j)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "tick %d: job %s; collected output: %q\n", c.Now(), j.State, out)
	return b.String(), nil
}

// E13 demonstrates §2's concurrency: three scripts of one sprite
// interleave under the round-robin time-sliced scheduler.
func E13() (string, error) {
	p := blocks.NewProject("dragon-interleave")
	p.Globals["log"] = value.NewList()
	sp := p.AddSprite(blocks.NewSprite("Dragon"))
	for _, tag := range []string{"flap", "roar", "fly"} {
		sp.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
			blocks.Repeat(blocks.Num(4), blocks.Body(
				blocks.AddToList(blocks.Txt(tag), blocks.Var("log")))),
		))
	}
	m := interp.NewMachine(p, nil)
	m.GreenFlag()
	if err := m.Run(0); err != nil {
		return "", err
	}
	logv, _ := m.GlobalFrame().Get("log")
	var b strings.Builder
	b.WriteString("three concurrent scripts, one interpreter thread (Snap!'s model):\n")
	fmt.Fprintf(&b, "  execution order: %s\n", logv)
	fmt.Fprintf(&b, "  scheduler rounds: %d\n", m.Round())
	b.WriteString("  each round runs every live script for one time slice — multi-tasking,\n")
	b.WriteString("  'the illusion of parallel execution' (§2)\n")
	return b.String(), nil
}

// E14 characterizes the inter-node MapReduce of package dist (the paper's
// closing future-work item): for a fixed word-count workload, how shuffle
// volume and reduce-side balance move with the node count — and that the
// result never changes.
func E14() (string, error) {
	text := strings.Repeat("the quick brown fox jumps over the lazy dog again and again ", 50)
	in := value.FromStrings(strings.Fields(text))
	single, err := mapreduce.Run(in, mapreduce.WordCount, mapreduce.SumReduce,
		mapreduce.Config{Workers: 2})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "word count over %d words, %d distinct keys\n", in.Len(), len(single))
	fmt.Fprintf(&b, "%-7s %-10s %-12s %-12s %-10s %s\n",
		"nodes", "shuffled", "bytes", "gathered", "imbalance", "result")
	for _, nodes := range []int{1, 2, 4, 8} {
		res, stats, err := dist.MapReduce(in, mapreduce.WordCount, mapreduce.SumReduce,
			dist.Config{Nodes: nodes, WorkersPerNode: 2})
		if err != nil {
			return "", err
		}
		match := "identical"
		if len(res) != len(single) {
			match = "MISMATCH"
		} else {
			for i := range res {
				if res[i].Key != single[i].Key || !value.Equal(res[i].Val, single[i].Val) {
					match = "MISMATCH"
				}
			}
		}
		fmt.Fprintf(&b, "%-7d %-10d %-12d %-12d %-9.2fx %s\n",
			nodes, stats.ShuffleMessages, stats.ShuffleBytes,
			stats.GatherMessages, stats.Imbalance(), match)
	}
	b.WriteString("(shuffle grows with node count — pairs mapped off their reducer's node;\n")
	b.WriteString(" single node shuffles nothing; result is node-count invariant)\n")
	return b.String(), nil
}

// E15 quantifies §6.1's programmability claim: generate the same map from
// the same block as sequential C, OpenMP C, and pthreads C, and count the
// lines the parallelism costs in each dialect — "the difference between
// the sequential C version and the parallel OpenMP C version is very
// small ... in stark contrast to the complexity of other text-based
// approaches, such as pthreads."
func E15() (string, error) {
	blk := blocks.ParallelMap(
		blocks.RingOf(blocks.Product(blocks.Empty(), blocks.Num(10))),
		blocks.ListOf(blocks.Num(3), blocks.Num(7), blocks.Num(8)),
		blocks.Num(4))
	data := []float64{3, 7, 8}
	seq, err := codegen.SequentialMapProgram(blk, data)
	if err != nil {
		return "", err
	}
	omp, err := codegen.ParallelMapProgram(blk, data, 4)
	if err != nil {
		return "", err
	}
	pth, err := codegen.PthreadsParallelMapProgram(blk, data, 4)
	if err != nil {
		return "", err
	}
	seqN, ompN, pthN := codegen.CountLines(seq), codegen.CountLines(omp), codegen.CountLines(pth)
	var b strings.Builder
	b.WriteString("same block, three generated dialects (non-blank lines):\n")
	fmt.Fprintf(&b, "  sequential C : %3d lines   (baseline)\n", seqN)
	fmt.Fprintf(&b, "  OpenMP C     : %3d lines   (+%d over sequential)\n", ompN, ompN-seqN)
	fmt.Fprintf(&b, "  pthreads C   : %3d lines   (+%d over sequential)\n", pthN, pthN-seqN)
	b.WriteString("\nthe OpenMP delta is the pragma and the thread-count call; the pthreads\n")
	b.WriteString("delta is handles, range structs, create/join, and error paths —\n")
	b.WriteString("the 'stark contrast' of section 6.1, measured.\n")
	return b.String(), nil
}

// E16 compares the two queueing policies of the batch-scheduler substrate
// on a synthetic job mix: EASY backfill should cut mean wait time without
// delaying any job's reservation — the behaviour a Snap!-submitted job
// would actually experience on a shared machine (§6.3's "monitor waiting
// in the queue until execution").
func E16() (string, error) {
	type jobShape struct {
		name     string
		nodes    int
		duration int
	}
	// A mix of wide and narrow jobs; the wide ones create the holes
	// backfill exploits.
	mix := []jobShape{
		{"wide-a", 8, 6}, {"narrow-1", 1, 2}, {"narrow-2", 2, 3},
		{"wide-b", 8, 4}, {"narrow-3", 1, 1}, {"narrow-4", 2, 2},
		{"wide-c", 6, 5}, {"narrow-5", 1, 3}, {"narrow-6", 1, 2},
		{"narrow-7", 2, 4},
	}
	run := func(policy sched.Policy) (makespan int64, meanWait float64, err error) {
		c := sched.NewCluster(8, policy)
		var jobs []*sched.Job
		for _, shape := range mix {
			j, err := c.Submit(sched.JobSpec{
				Name: shape.name, Nodes: shape.nodes,
				Walltime: shape.duration + 1, Duration: shape.duration,
			})
			if err != nil {
				return 0, 0, err
			}
			jobs = append(jobs, j)
		}
		if err := c.RunUntilDone(10000); err != nil {
			return 0, 0, err
		}
		var wait int64
		for _, j := range jobs {
			if j.EndTick > makespan {
				makespan = j.EndTick
			}
			wait += j.StartTick - j.SubmitTick
		}
		return makespan, float64(wait) / float64(len(jobs)), nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "job mix: %d jobs on an 8-node cluster (wide jobs force queue holes)\n", len(mix))
	fmt.Fprintf(&b, "%-10s %10s %12s\n", "policy", "makespan", "mean wait")
	var fifoSpan, bfSpan int64
	for _, policy := range []sched.Policy{sched.FIFO, sched.Backfill} {
		span, wait, err := run(policy)
		if err != nil {
			return "", err
		}
		if policy == sched.FIFO {
			fifoSpan = span
		} else {
			bfSpan = span
		}
		fmt.Fprintf(&b, "%-10s %10d %12.1f\n", policy, span, wait)
	}
	fmt.Fprintf(&b, "backfill saves %d ticks of makespan by filling reservation holes\n",
		fifoSpan-bfSpan)
	return b.String(), nil
}
