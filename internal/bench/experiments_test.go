package bench

import (
	"strings"
	"testing"
)

func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		out, err := e.Run()
		if err != nil {
			t.Errorf("%s (%s): %v", e.ID, e.Title, err)
			continue
		}
		if strings.TrimSpace(out) == "" {
			t.Errorf("%s produced no output", e.ID)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("e3"); !ok {
		t.Error("e3 should exist")
	}
	if _, ok := Lookup("E10"); !ok {
		t.Error("lookup should be case-insensitive")
	}
	if _, ok := Lookup("e99"); ok {
		t.Error("e99 should not exist")
	}
}

func TestExperimentLandmarks(t *testing.T) {
	landmarks := map[string][]string{
		"e1":  {"[30 70 80]"},
		"e2":  {"10  20  30", "workers=8: len=100  ok"},
		"e3":  {"timer at completion: 3 timesteps", "Cup3 full at timestep 3"},
		"e4":  {"timer at completion: 12 timesteps", "Cup1 full at timestep 3", "Cup2 full at timestep 7", "Cup3 full at timestep 12"},
		"e5":  {"I        4", "to       2"},
		"e6":  {"1990", "1999", "warming recovered"},
		"e7":  {"int a[] = {3, 7, 8};", "append((a[i - 1] * 10), b);"},
		"e8":  {"#pragma omp parallel for", "typedef struct KVP", "--job-name=snap-mapreduce"},
		"e9":  {"29%", "54%", "57%", "86%"},
		"e10": {"block", "dynamic", "speedup"},
		"e11": {"static", "guided", "dynamic,16"},
		"e12": {"collected output", "COMPLETED"},
		"e13": {"flap roar fly flap roar fly"},
		"e14": {"nodes", "identical", "shuffles nothing"},
		"e15": {"sequential C", "OpenMP C", "pthreads C", "stark contrast"},
		"e16": {"fifo", "backfill", "makespan"},
	}
	for id, wants := range landmarks {
		e, ok := Lookup(id)
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		out, err := e.Run()
		if err != nil {
			t.Errorf("%s: %v", id, err)
			continue
		}
		for _, w := range wants {
			if !strings.Contains(out, w) {
				t.Errorf("%s output missing landmark %q\n--- output ---\n%s", id, w, out)
			}
		}
	}
}
