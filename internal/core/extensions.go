package core

// This file implements the "future work" §6.3/§8 direction the paper
// closes on — "we also wish to extend Snap! to extract even more
// intra-node parallelism" — by parallelizing the remaining stock
// higher-order blocks the same way parallelMap parallelizes map:
//
//	parallelKeep    — the keep (filter) block on the worker pool
//	parallelCombine — the combine (fold) block as a parallel reduction
//
// Both follow the Listing 2 integration exactly: kick the job off, stash
// it in the context's input array, poll-and-yield.

import (
	"fmt"

	"repro/internal/blocks"
	"repro/internal/interp"
	"repro/internal/value"
	"repro/internal/workers"
)

func init() {
	interp.RegisterPrimitive("reportParallelKeep", primParallelKeep)
	interp.RegisterPrimitive("reportParallelCombine", primParallelCombine)
}

// ParallelKeep builds the parallelKeep block: keep items of list for which
// the ringed predicate holds, evaluating the predicate on workers.
func ParallelKeep(ring, list, workersIn blocks.Node) *blocks.Block {
	return blocks.NewBlock("reportParallelKeep", ring, list, workersIn)
}

// ParallelCombine builds the parallelCombine block: fold list with the
// ringed binary function as a parallel reduction. The function must be
// associative (the reduction tree is not left-linear).
func ParallelCombine(list, ring, workersIn blocks.Node) *blocks.Block {
	return blocks.NewBlock("reportParallelCombine", list, ring, workersIn)
}

// primParallelKeep maps the predicate across the list on workers, then
// filters in input order — parallel test, deterministic result.
func primParallelKeep(p *interp.Process, ctx *interp.Context) (value.Value, interp.Control, error) {
	const argc = 3
	if len(ctx.Inputs) < argc+1 {
		ring, ok := ctx.Inputs[0].(*blocks.Ring)
		if !ok {
			return nil, interp.Done, fmt.Errorf("parallelKeep needs a ringed predicate, got %s", ctx.Inputs[0].Kind())
		}
		list, err := asList(ctx.Inputs[1])
		if err != nil {
			return nil, interp.Done, err
		}
		count, err := workerCount(ctx.Inputs[2])
		if err != nil {
			return nil, interp.Done, err
		}
		pool := workers.New(list, workers.Options{MaxWorkers: count})
		job := pool.MapChunks(RingChunkHandler(ring))
		cancelOnDeath(p, job)
		ctx.Inputs = append(ctx.Inputs, &value.Opaque{Tag: "parallelKeepJob", Payload: job})
	} else {
		job := ctx.Inputs[argc].(*value.Opaque).Payload.(*workers.Job)
		if job.Resolved() {
			verdicts, err := job.Wait()
			if err != nil {
				return nil, interp.Done, err
			}
			list, err := asList(ctx.Inputs[1])
			if err != nil {
				return nil, interp.Done, err
			}
			out := value.NewList()
			for i := 1; i <= list.Len(); i++ {
				keep, err := value.ToBool(verdicts.MustItem(i))
				if err != nil {
					return nil, interp.Done, fmt.Errorf("predicate did not report a boolean: %w", err)
				}
				if keep {
					out.Add(list.MustItem(i))
				}
			}
			return out, interp.Done, nil
		}
	}
	p.PushYield()
	return nil, interp.Again, nil
}

// primParallelCombine runs the pool's chunked parallel reduction with the
// user's binary ring.
func primParallelCombine(p *interp.Process, ctx *interp.Context) (value.Value, interp.Control, error) {
	const argc = 3
	if len(ctx.Inputs) < argc+1 {
		list, err := asList(ctx.Inputs[0])
		if err != nil {
			return nil, interp.Done, err
		}
		ring, ok := ctx.Inputs[1].(*blocks.Ring)
		if !ok {
			return nil, interp.Done, fmt.Errorf("parallelCombine needs a ringed function, got %s", ctx.Inputs[1].Kind())
		}
		count, err := workerCount(ctx.Inputs[2])
		if err != nil {
			return nil, interp.Done, err
		}
		// The compiled tier when the ring lowers, interp.CallFunction
		// otherwise; Reduce already clones each operand across the worker
		// boundary, so the call itself need not.
		call := ringCallFunc(ShipRing(ring))
		reduceFn := func(a, b value.Value) (value.Value, error) {
			return call([]value.Value{a, b})
		}
		pool := workers.New(list, workers.Options{MaxWorkers: count})
		job := pool.Reduce(reduceFn)
		cancelOnDeath(p, job)
		ctx.Inputs = append(ctx.Inputs, &value.Opaque{Tag: "parallelCombineJob", Payload: job})
	} else {
		job := ctx.Inputs[argc].(*value.Opaque).Payload.(*workers.Job)
		if job.Resolved() {
			res, err := job.Wait()
			if err != nil {
				return nil, interp.Done, err
			}
			if res.Len() == 0 {
				return value.Number(0), interp.Done, nil
			}
			v, _ := res.Item(1)
			if value.IsNothing(v) {
				// Empty input folds to 0, matching the sequential
				// combine block.
				return value.Number(0), interp.Done, nil
			}
			return v, interp.Done, nil
		}
	}
	p.PushYield()
	return nil, interp.Again, nil
}
