package core

import (
	"strings"
	"testing"

	"repro/internal/blocks"
	"repro/internal/compile"
	"repro/internal/interp"
	"repro/internal/value"
	"repro/internal/workers"
)

// TestRingChunkHandlerTierSelection pins which bodies take which tier:
// a pure arithmetic ring must lower, a ring using pick-random (or any
// other refused block) must not — it still runs, on the interpreter tier.
func TestRingChunkHandlerTierSelection(t *testing.T) {
	pure := &blocks.Ring{Body: blocks.Product(blocks.Empty(), blocks.Num(10))}
	if _, ok := compile.Ring(ShipRing(pure)); !ok {
		t.Fatal("pure arithmetic ring should compile")
	}
	rng := &blocks.Ring{Body: blocks.Random(blocks.Num(1), blocks.Num(10))}
	if _, ok := compile.Ring(ShipRing(rng)); ok {
		t.Fatal("pick-random ring must stay on the interpreter tier")
	}
}

// TestParallelMapCompiledTierMatchesInterpreter runs the same parallelMap
// through a compilable ring and a deliberately-uncompilable wrapper of the
// same computation, end to end through the machine; results must agree.
func TestParallelMapCompiledTierMatchesInterpreter(t *testing.T) {
	compiledRing := blocks.RingOf(blocks.Sum(
		blocks.Product(blocks.Empty(), blocks.Empty()), blocks.Num(1)))
	// x*x + 1 again, but via the sequential map block over a one-element
	// list — reportMap compiles too, so force the interpreter tier with a
	// pick-random of a degenerate range (always 0) added on.
	interpRing := blocks.RingOf(blocks.Sum(
		blocks.Sum(blocks.Product(blocks.Empty(), blocks.Empty()), blocks.Num(1)),
		blocks.Reporter(blocks.Random(blocks.Num(0), blocks.Num(0)))))

	m := newMachine()
	cv, err := m.EvalReporter(blocks.ParallelMap(compiledRing,
		blocks.Numbers(blocks.Num(1), blocks.Num(64)), blocks.Num(4)))
	if err != nil {
		t.Fatal(err)
	}
	m = newMachine()
	iv, err := m.EvalReporter(blocks.ParallelMap(interpRing,
		blocks.Numbers(blocks.Num(1), blocks.Num(64)), blocks.Num(4)))
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(cv, iv) {
		t.Fatalf("compiled tier %s != interpreter tier %s", cv, iv)
	}
}

// TestParallelMapCompiledErrorFormat pins the element-attributed error
// contract across the compiled tier.
func TestParallelMapCompiledErrorFormat(t *testing.T) {
	m := newMachine()
	_, err := m.EvalReporter(blocks.ParallelMap(
		blocks.RingOf(blocks.Quotient(blocks.Num(1), blocks.Empty())),
		blocks.ListOf(blocks.Num(1), blocks.Num(0), blocks.Num(2)),
		blocks.Num(2)))
	if err == nil || !strings.Contains(err.Error(), "element 2: reportQuotient: division by zero") {
		t.Fatalf("got %v", err)
	}
}

// TestParallelMapConcurrentPickRandom is the regression test for the
// workerRand data race: pick-random inside a parallelMap ring runs on many
// detached worker processes at once, each of which must own its random
// stream. Run under -race (make check does).
func TestParallelMapConcurrentPickRandom(t *testing.T) {
	m := newMachine()
	v, err := m.EvalReporter(blocks.ParallelMap(
		blocks.RingOf(blocks.Random(blocks.Num(1), blocks.Num(6))),
		blocks.Numbers(blocks.Num(1), blocks.Num(400)),
		blocks.Num(8)))
	if err != nil {
		t.Fatal(err)
	}
	l := v.(*value.List)
	if l.Len() != 400 {
		t.Fatalf("len = %d", l.Len())
	}
	for i := 1; i <= l.Len(); i++ {
		n, err := value.ToNumber(l.MustItem(i))
		if err != nil {
			t.Fatal(err)
		}
		if n < 1 || n > 6 {
			t.Fatalf("element %d out of range: %v", i, n)
		}
	}
}

// TestRingChunkHandlerInterpreterTierReusesProcess drives the interpreter
// tier directly through MapChunks, confirming chunked dispatch produces
// ordered results and honors cancellation wiring end to end.
func TestRingChunkHandlerInterpreterTier(t *testing.T) {
	ring := &blocks.Ring{Body: blocks.Sum(
		blocks.Empty(),
		blocks.Reporter(blocks.Random(blocks.Num(0), blocks.Num(0))))}
	if _, ok := compile.Ring(ShipRing(ring)); ok {
		t.Fatal("test ring unexpectedly compiled; pick a refused body")
	}
	items := make([]value.Value, 100)
	for i := range items {
		items[i] = value.Number(float64(i))
	}
	p := workers.New(value.NewList(items...), workers.Options{MaxWorkers: 4})
	got, err := p.MapChunks(RingChunkHandler(ring)).Wait()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		n, _ := value.ToNumber(got.MustItem(i + 1))
		if int(n) != i {
			t.Fatalf("item %d = %v", i+1, n)
		}
	}
}

// TestParallelCombineCompiledReducer exercises the compiled reduce path of
// parallelCombine against the known closed-form sum.
func TestParallelCombineCompiledReducer(t *testing.T) {
	m := newMachine()
	v, err := m.EvalReporter(ParallelCombine(
		blocks.Numbers(blocks.Num(1), blocks.Num(1000)),
		blocks.RingOf(blocks.Sum(blocks.Empty(), blocks.Empty())),
		blocks.Num(4)))
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "500500" {
		t.Fatalf("sum 1..1000 = %s", v)
	}
}

// TestMapReduceCompiledMapper exercises the compiled tier inside the
// mapReduce engine: word-length histogram via an explicit (key value) pair
// mapper that compiles, reduced by a compiled length-of reducer.
func TestMapReduceCompiledMapper(t *testing.T) {
	mapRing := blocks.RingOf(blocks.ListOf(blocks.Empty(), blocks.Num(1)))
	reduceRing := blocks.RingOf(blocks.LengthOf(blocks.Empty()))
	if _, ok := compile.Ring(ShipRing(&blocks.Ring{
		Body: blocks.ListOf(blocks.Empty(), blocks.Num(1)),
	})); !ok {
		t.Fatal("pair mapper should compile")
	}
	m := newMachine()
	v, err := m.EvalReporter(blocks.MapReduce(mapRing, reduceRing,
		blocks.ListOf(blocks.Txt("a"), blocks.Txt("b"), blocks.Txt("a"),
			blocks.Txt("c"), blocks.Txt("a"))))
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "[[a 3] [b 1] [c 1]]" {
		t.Fatalf("word count = %s", v)
	}
}

// TestDetachedRandomStreamsDiffer spot-checks the satellite fix itself: two
// detached processes must draw from different, independently seeded
// streams rather than one shared rand.Rand.
func TestDetachedRandomStreamsDiffer(t *testing.T) {
	ring := &blocks.Ring{Body: blocks.Random(blocks.Num(1), blocks.Num(1000000))}
	a, err := interp.CallFunction(ring, nil, WorkerBudget)
	if err != nil {
		t.Fatal(err)
	}
	different := false
	for i := 0; i < 8 && !different; i++ {
		b, err := interp.CallFunction(ring, nil, WorkerBudget)
		if err != nil {
			t.Fatal(err)
		}
		different = !value.Equal(a, b)
	}
	if !different {
		t.Fatal("detached random streams look identical across processes")
	}
}
