package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/blocks"
	"repro/internal/interp"
	"repro/internal/mapreduce"
	"repro/internal/value"
	"repro/internal/workers"
)

func init() {
	interp.RegisterPrimitive("reportMapReduce", primMapReduce)
}

// mrJob is the in-flight mapReduce block operation: the engine runs on
// worker goroutines while the interpreter polls, exactly like parallelMap's
// Parallel object.
type mrJob struct {
	resolved atomic.Bool
	result   value.Value
	err      error
}

// RingMapper adapts a user map ring to the engine's Mapper contract of
// §3.4: "The function returns a two-element list with the item as the key
// and the result as the value." A ring returning a two-element list
// supplies (key, value) explicitly; a ring returning a scalar maps to the
// single shared key, which is how a whole-dataset reduction (the climate
// average) is expressed.
func RingMapper(r *blocks.Ring) mapreduce.Mapper {
	call := ringCallFunc(ShipRing(r))
	return func(item value.Value) ([]mapreduce.KVP, error) {
		v, err := call([]value.Value{item})
		if err != nil {
			return nil, err
		}
		if l, ok := v.(*value.List); ok && l.Len() == 2 {
			return []mapreduce.KVP{{Key: l.MustItem(1).String(), Val: l.MustItem(2)}}, nil
		}
		return []mapreduce.KVP{{Key: "", Val: v}}, nil
	}
}

// RingReducer adapts a user reduce ring: it is called once per key with the
// list of that key's values.
func RingReducer(r *blocks.Ring) mapreduce.Reducer {
	call := ringCallFunc(ShipRing(r))
	return func(key string, vals *value.List) (value.Value, error) {
		return call([]value.Value{vals})
	}
}

// primMapReduce implements the mapReduce block of §3.4 with the same
// poll-and-yield integration as parallelMap: kick the engine off on worker
// goroutines, stash the job in the context inputs, and poll. The block
// reports a sorted list of (key value) pairs — Figure 12's "sorted list of
// unique words from the input with the number of times the words appear" —
// or, when every pair mapped to the single shared key, the lone reduced
// value (the climate example's average temperature).
func primMapReduce(p *interp.Process, ctx *interp.Context) (value.Value, interp.Control, error) {
	const argc = 3
	if len(ctx.Inputs) < argc+1 {
		mapRing, ok := ctx.Inputs[0].(*blocks.Ring)
		if !ok {
			return nil, interp.Done, fmt.Errorf("mapReduce needs a ringed map function, got %s", ctx.Inputs[0].Kind())
		}
		reduceRing, ok := ctx.Inputs[1].(*blocks.Ring)
		if !ok {
			return nil, interp.Done, fmt.Errorf("mapReduce needs a ringed reduce function, got %s", ctx.Inputs[1].Kind())
		}
		list, err := asList(ctx.Inputs[2])
		if err != nil {
			return nil, interp.Done, err
		}
		job := &mrJob{}
		input := list.Clone().(*value.List) // ship the data, not the list
		mf, rf := RingMapper(mapRing), RingReducer(reduceRing)
		label := traceLabel(p)
		go func() {
			res, err := mapreduce.Run(input, mf, rf, mapreduce.Config{Workers: workers.DefaultWorkers(), Label: label})
			if err != nil {
				job.err = err
			} else if len(res) == 1 && res[0].Key == "" {
				job.result = res[0].Val
			} else {
				job.result = res.List()
			}
			job.resolved.Store(true)
		}()
		ctx.Inputs = append(ctx.Inputs, &value.Opaque{Tag: "mapReduceJob", Payload: job})
	} else {
		job := ctx.Inputs[argc].(*value.Opaque).Payload.(*mrJob)
		if job.resolved.Load() {
			if job.err != nil {
				return nil, interp.Done, job.err
			}
			return job.result, interp.Done, nil
		}
	}
	p.PushYield()
	return nil, interp.Again, nil
}
