package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/blocks"
	"repro/internal/compile"
	"repro/internal/interp"
	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/value"
	"repro/internal/vm"
	"repro/internal/workers"
)

func init() {
	interp.RegisterPrimitive("reportMapReduce", primMapReduce)
	vm.SetMapReduceLowerer(lowerMapReduce)
}

// syncMapReduceMax is the largest input list the mapReduce block runs
// synchronously inside its own primitive step. Below this the per-job
// overhead of the asynchronous path (goroutine spawn, input clone, and at
// least one poll/yield round trip through the scheduler) dwarfs the work
// itself; above it the job moves to worker goroutines so the cooperative
// interpreter keeps stepping other processes while it runs.
const syncMapReduceMax = 64

// mrResult converts an engine result to the block's reported value: a
// sorted list of (key value) pairs, or — when every pair mapped to the
// single shared key — the lone reduced value (the climate average).
func mrResult(res mapreduce.Result) value.Value {
	if len(res) == 1 && res[0].Key == "" {
		return res[0].Val
	}
	return res.List()
}

// mrJob is the in-flight mapReduce block operation: the engine runs on
// worker goroutines while the interpreter polls, exactly like parallelMap's
// Parallel object.
type mrJob struct {
	resolved atomic.Bool
	result   value.Value
	err      error
}

// start kicks the engine off on worker goroutines over a private clone of
// the input ("ship the data, not the list").
func (job *mrJob) start(list *value.List, mf mapreduce.Mapper, rf mapreduce.Reducer, label string) {
	input := list.Clone().(*value.List)
	go func() {
		res, err := mapreduce.Run(input, mf, rf, mapreduce.Config{Workers: workers.DefaultWorkers(), Label: label})
		if err != nil {
			job.err = err
		} else {
			job.result = mrResult(res)
		}
		job.resolved.Store(true)
	}()
}

// seqKernels is one pooled pair of sequential map/reduce kernels for
// mapreduce.RunSeq: each caller reuses its call environment, so a pair
// serves one evaluation at a time and goes back to the pool.
type seqKernels struct {
	m compile.MapFn
	r compile.Fn
}

// lowerMapReduce is the bytecode machine's engine adapter (see
// vm.SetMapReduceLowerer): the ring kernels compile once per lowered
// program, and each dispatch either completes synchronously (small input)
// or starts the same polled job the tree primitive uses.
//
// When both rings compile, small inputs take mapreduce.RunSeq with pooled
// sequential kernels — pooled, not shared, because the lowered program
// (and so this closure) is cached by content and may be executing on many
// machines at once. The engine proper handles interpreter-tier rings, and
// every run with observability on, so spans and phase metrics stay
// complete.
func lowerMapReduce(mapRing, reduceRing *blocks.Ring) vm.MRCall {
	mf, rf := RingMapper(mapRing), RingReducer(reduceRing)
	var seqPool *sync.Pool
	if mfac, ok := compile.SeqMapperRing(ShipRing(mapRing)); ok {
		if rfac, ok := compile.SeqRing(ShipRing(reduceRing)); ok {
			seqPool = &sync.Pool{New: func() any { return &seqKernels{m: mfac(), r: rfac()} }}
		}
	}
	return func(p *interp.Process, lv value.Value) (value.Value, func() (value.Value, bool, error), error) {
		list, err := asList(lv)
		if err != nil {
			return nil, nil, err
		}
		if list.Len() <= syncMapReduceMax {
			var res mapreduce.Result
			if seqPool != nil && !obs.Enabled() {
				k := seqPool.Get().(*seqKernels)
				res, err = mapreduce.RunSeq(list, k.m, k.r)
				seqPool.Put(k)
			} else {
				res, err = mapreduce.Run(list, mf, rf, mapreduce.Config{Workers: 1, Label: traceLabel(p)})
			}
			if err != nil {
				return nil, nil, err
			}
			return mrResult(res), nil, nil
		}
		job := &mrJob{}
		job.start(list, mf, rf, traceLabel(p))
		return nil, func() (value.Value, bool, error) {
			if !job.resolved.Load() {
				return nil, false, nil
			}
			return job.result, true, job.err
		}, nil
	}
}

// RingMapper adapts a user map ring to the engine's Mapper contract of
// §3.4: "The function returns a two-element list with the item as the key
// and the result as the value." A ring returning a two-element list
// supplies (key, value) explicitly; a ring returning a scalar maps to the
// single shared key, which is how a whole-dataset reduction (the climate
// average) is expressed.
func RingMapper(r *blocks.Ring) mapreduce.Mapper {
	call := ringCallFunc(ShipRing(r))
	return func(item value.Value) ([]mapreduce.KVP, error) {
		v, err := call([]value.Value{item})
		if err != nil {
			return nil, err
		}
		if l, ok := v.(*value.List); ok && l.Len() == 2 {
			return []mapreduce.KVP{{Key: l.MustItem(1).String(), Val: l.MustItem(2)}}, nil
		}
		return []mapreduce.KVP{{Key: "", Val: v}}, nil
	}
}

// RingReducer adapts a user reduce ring: it is called once per key with the
// list of that key's values.
func RingReducer(r *blocks.Ring) mapreduce.Reducer {
	call := ringCallFunc(ShipRing(r))
	return func(key string, vals *value.List) (value.Value, error) {
		return call([]value.Value{vals})
	}
}

// primMapReduce implements the mapReduce block of §3.4 with the same
// poll-and-yield integration as parallelMap: kick the engine off on worker
// goroutines, stash the job in the context inputs, and poll. The block
// reports a sorted list of (key value) pairs — Figure 12's "sorted list of
// unique words from the input with the number of times the words appear" —
// or, when every pair mapped to the single shared key, the lone reduced
// value (the climate example's average temperature).
func primMapReduce(p *interp.Process, ctx *interp.Context) (value.Value, interp.Control, error) {
	const argc = 3
	if len(ctx.Inputs) < argc+1 {
		mapRing, ok := ctx.Inputs[0].(*blocks.Ring)
		if !ok {
			return nil, interp.Done, fmt.Errorf("mapReduce needs a ringed map function, got %s", ctx.Inputs[0].Kind())
		}
		reduceRing, ok := ctx.Inputs[1].(*blocks.Ring)
		if !ok {
			return nil, interp.Done, fmt.Errorf("mapReduce needs a ringed reduce function, got %s", ctx.Inputs[1].Kind())
		}
		list, err := asList(ctx.Inputs[2])
		if err != nil {
			return nil, interp.Done, err
		}
		mf, rf := RingMapper(mapRing), RingReducer(reduceRing)
		label := traceLabel(p)
		if list.Len() <= syncMapReduceMax {
			// Small inputs run the engine synchronously on this goroutine:
			// the goroutine hand-off plus the poll/yield scheduler rounds
			// cost more than the whole job. Nothing runs concurrently with
			// the caller, and the map phase clones each item before the
			// mapper sees it, so the defensive whole-list clone is also
			// unnecessary.
			res, err := mapreduce.Run(list, mf, rf, mapreduce.Config{Workers: 1, Label: label})
			if err != nil {
				return nil, interp.Done, err
			}
			return mrResult(res), interp.Done, nil
		}
		job := &mrJob{}
		job.start(list, mf, rf, label)
		ctx.Inputs = append(ctx.Inputs, &value.Opaque{Tag: "mapReduceJob", Payload: job})
	} else {
		job := ctx.Inputs[argc].(*value.Opaque).Payload.(*mrJob)
		if job.resolved.Load() {
			if job.err != nil {
				return nil, interp.Done, job.err
			}
			return job.result, interp.Done, nil
		}
	}
	p.PushYield()
	return nil, interp.Again, nil
}
