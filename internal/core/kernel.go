package core

// This file is the worker-boundary integration of the ring-compiler tier
// (package compile). Every parallel block ships its ring the same way —
// core.ShipRing strips the environment, Listing 2's "rebuild the function
// from source" — and then picks an execution tier for the worker side:
//
//	compiled:    compile.Ring lowered the body to a direct Go closure; the
//	             per-element cost is the closure call plus the two boundary
//	             clones. No Process, no Context, no step dispatch.
//	interpreted: the body uses something the compiler refuses; each worker
//	             chunk checks one pooled interp.Caller out, resets it per
//	             element, and pays the full cooperative evaluator — but the
//	             Process/Frame scaffolding is amortized across the chunk
//	             instead of rebuilt per element.
//
// Both tiers keep the postMessage discipline: arguments are cloned in and
// results cloned out, so workers stay share-nothing.

import (
	"fmt"

	"repro/internal/blocks"
	"repro/internal/interp"
	"repro/internal/progcache"
	"repro/internal/value"
	"repro/internal/workers"
)

// RingChunkHandler builds the chunk-level worker handler for a user ring:
// the compiled tier when the body lowers, else the chunk-amortized
// interpreter tier. This is what parallelMap and parallelKeep dispatch.
//
// The tier decision goes through the Tier B program cache
// (progcache.CompileShipped): the first dispatch of a distinct ring pays
// the full compile.Ring walk — landing on engine_compile_hits_total or
// engine_compile_fallbacks_total{reason} exactly once — and every later
// dispatch of the same structure (same session or not) replays the
// memoized outcome, compiled kernel and refusal alike.
func RingChunkHandler(r *blocks.Ring) workers.ChunkHandler {
	shipped := ShipRing(r)
	if fn, ok := progcache.CompileShipped(shipped); ok {
		return func(j *workers.Job, base int, dst, src []value.Value) error {
			var argbuf [1]value.Value
			for i, in := range src {
				if j.Canceled() {
					return workers.ErrCanceled
				}
				argbuf[0] = value.CloneValue(in)
				out, err := fn(argbuf[:])
				if err != nil {
					return fmt.Errorf("element %d: %w", base+i+1, err)
				}
				dst[i] = value.CloneValue(out)
			}
			return nil
		}
	}
	return func(j *workers.Job, base int, dst, src []value.Value) error {
		c := interp.GetCaller()
		defer c.Release()
		var argbuf [1]value.Value
		for i, in := range src {
			if j.Canceled() {
				return workers.ErrCanceled
			}
			argbuf[0] = value.CloneValue(in)
			out, err := c.Call(shipped, argbuf[:], WorkerBudget)
			if err != nil {
				return fmt.Errorf("element %d: %w", base+i+1, err)
			}
			dst[i] = value.CloneValue(out)
		}
		return nil
	}
}

// ringCallFunc builds the plain call-shaped view of a shipped ring used by
// the mapReduce adapters and parallelCombine's reducer: the compiled
// closure when available, else interp.CallFunction. Callers sit behind a
// worker boundary that already cloned the arguments, so the compiled tier's
// no-clone contract is safe here.
func ringCallFunc(shipped *blocks.Ring) func(args []value.Value) (value.Value, error) {
	if fn, ok := progcache.CompileShipped(shipped); ok {
		return fn
	}
	return func(args []value.Value) (value.Value, error) {
		return interp.CallFunction(shipped, args, WorkerBudget)
	}
}
