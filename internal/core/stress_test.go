package core

import (
	"testing"

	"repro/internal/blocks"
	"repro/internal/interp"
	"repro/internal/value"
)

func TestParallelMapLargeList(t *testing.T) {
	m := newMachine()
	v, err := m.EvalReporter(blocks.ParallelMap(
		times10Ring(),
		blocks.Numbers(blocks.Num(1), blocks.Num(5000)),
		blocks.Num(8)))
	if err != nil {
		t.Fatal(err)
	}
	l := v.(*value.List)
	if l.Len() != 5000 {
		t.Fatalf("len = %d", l.Len())
	}
	if l.MustItem(5000).(value.Number) != 50000 {
		t.Errorf("last = %v", l.MustItem(5000))
	}
}

func TestNestedParallelMap(t *testing.T) {
	// A parallelMap whose results feed another parallelMap.
	m := newMachine()
	inner := blocks.ParallelMap(times10Ring(),
		blocks.Numbers(blocks.Num(1), blocks.Num(10)), blocks.Num(2))
	outer := blocks.ParallelMap(
		blocks.RingOf(blocks.Sum(blocks.Empty(), blocks.Num(1))),
		blocks.Reporter(inner), blocks.Num(2))
	v, err := m.EvalReporter(outer)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "[11 21 31 41 51 61 71 81 91 101]" {
		t.Errorf("nested parallelMap = %s", v)
	}
}

func TestParallelMapInsideWarp(t *testing.T) {
	// A warped script polls the parallel job without yielding; the
	// slice budget must still let the workers finish (the machine keeps
	// stepping, workers run on their own goroutines).
	m := newMachine()
	script := blocks.NewScript(
		blocks.DeclareLocal("r"),
		blocks.Warp(blocks.Body(
			blocks.SetVar("r", blocks.Reporter(blocks.ParallelMap(
				times10Ring(), blocks.Numbers(blocks.Num(1), blocks.Num(50)),
				blocks.Num(2)))))),
		blocks.Report(blocks.LengthOf(blocks.Var("r"))),
	)
	v, err := m.RunScript(script)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "50" {
		t.Errorf("warped parallelMap len = %s", v)
	}
}

func TestNestedParallelForEach(t *testing.T) {
	// parallelForEach inside parallelForEach: worker clones spawn their
	// own worker clones (clones of clones).
	p := blocks.NewProject("nested")
	p.Globals["acc"] = value.NewList()
	sp := p.AddSprite(blocks.NewSprite("S"))
	sp.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.ParallelForEach("i", blocks.Numbers(blocks.Num(1), blocks.Num(3)),
			blocks.Empty(), blocks.Body(
				blocks.ParallelForEach("j", blocks.Numbers(blocks.Num(1), blocks.Num(2)),
					blocks.Empty(), blocks.Body(
						blocks.AddToList(
							blocks.Reporter(blocks.Join(blocks.Var("i"), blocks.Txt("."), blocks.Var("j"))),
							blocks.Var("acc")))))),
	))
	m := interp.NewMachine(p, nil)
	m.GreenFlag()
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	acc, _ := m.GlobalFrame().Get("acc")
	l := acc.(*value.List)
	if l.Len() != 6 {
		t.Fatalf("acc = %s, want all 6 (i,j) pairs", acc)
	}
	for _, want := range []string{"1.1", "1.2", "2.1", "2.2", "3.1", "3.2"} {
		if !l.Contains(value.Text(want)) {
			t.Errorf("missing pair %s in %s", want, acc)
		}
	}
	if m.Stage.CloneCount("S") != 0 {
		t.Error("all nested clones should be cleaned up")
	}
}

func TestManyConcurrentParallelMaps(t *testing.T) {
	// Several sprites each running their own parallelMap concurrently:
	// jobs must not interfere.
	p := blocks.NewProject("many")
	for i := 0; i < 8; i++ {
		name := string(rune('A' + i))
		sp := p.AddSprite(blocks.NewSprite(name))
		sp.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
			blocks.Say(blocks.LengthOf(blocks.Reporter(blocks.ParallelMap(
				times10Ring(), blocks.Numbers(blocks.Num(1), blocks.Num(100)),
				blocks.Num(2))))),
		))
	}
	m := interp.NewMachine(p, nil)
	m.GreenFlag()
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	for _, a := range m.Stage.Actors() {
		if a.Saying != "100" {
			t.Errorf("%s says %q, want 100", a.Label(), a.Saying)
		}
	}
}
