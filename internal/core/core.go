// Package core implements the paper's primary contribution: the explicitly
// parallel blocks added to Snap! — parallelMap (§3.2), parallelForEach in
// its parallel and sequential modes (§3.3), and mapReduce (§3.4) — together
// with their integration into the cooperative interpreter via the
// poll-and-yield pattern of §4's Listing 2.
//
// parallelMap and mapReduce achieve true parallelism: the user's ring is
// shipped to Web-Worker-equivalent goroutines (package workers) and runs
// concurrently with the interpreter thread, which keeps polling the job's
// resolved flag and yielding — keeping the "browser" responsive, the
// paper's stated motivation for Web Workers. parallelForEach demonstrates
// parallelism inside the stage world by spawning sprite clones that execute
// the nested script concurrently under the scheduler.
//
// Importing this package (even blank) registers the blocks with the
// interpreter.
package core

import (
	"errors"
	"fmt"

	"repro/internal/blocks"
	"repro/internal/interp"
	"repro/internal/value"
	"repro/internal/workers"
)

func init() {
	interp.RegisterPrimitive("reportParallelMap", primParallelMap)
	interp.RegisterPrimitive("doParallelForEach", primParallelForEach)
	interp.RegisterPrimitive("snapWorkerLoop", primWorkerLoop)
}

// WorkerBudget caps the evaluator steps of one function call inside a
// worker, guarding against non-terminating user functions.
const WorkerBudget = 1 << 20

// ShipRing prepares a ring for transfer to a worker. Closures do not
// survive a postMessage: the paper's Listing 2 rebuilds the function from
// its mapped source code, losing the captured environment. We reproduce
// that by stripping the environment — the shipped function sees only its
// own parameters, exactly like a function reconstructed from source text.
// (This is also what makes the worker share-nothing: the machine's frames
// never cross the boundary.)
func ShipRing(r *blocks.Ring) *blocks.Ring {
	return &blocks.Ring{Body: r.Body, Params: r.Params}
}

// RingHandler wraps a shipped ring as a worker handler: each incoming list
// element becomes the function's argument, Listing 2's
// `new Function(aContext.inputs[0], body)`.
func RingHandler(r *blocks.Ring) workers.Handler {
	shipped := ShipRing(r)
	return func(v value.Value) (value.Value, error) {
		return interp.CallFunction(shipped, []value.Value{v}, WorkerBudget)
	}
}

// workerCount resolves the optional worker-count input of parallelMap:
// the user's number when given, else Listing 2's
// `aCount || navigator.hardwareConcurrency || 4`.
func workerCount(v value.Value) (int, error) {
	if value.IsNothing(v) || v.String() == "" {
		return workers.DefaultWorkers(), nil
	}
	n, err := value.ToInt(v)
	if err != nil {
		return 0, err
	}
	if n < 1 {
		return workers.DefaultWorkers(), nil
	}
	return n, nil
}

// primParallelMap is Listing 2, transliterated:
//
//	Use the context input array to store the parallel job:
//	  [0] - ringified reporter obj
//	  [1] - list
//	  [2] - number of workers (default = #CPU's or 4)
//	  ------------------------------------------------
//	  [3] - Parallel object
//
// On first entry it wraps the ring, builds the Parallel pool, kicks off the
// map, and stashes the job at inputs[3]; on every subsequent entry it
// checks whether the workers are done, returning the result list when so —
// and in either case pushes a yield so the rest of the system keeps
// running.
func primParallelMap(p *interp.Process, ctx *interp.Context) (value.Value, interp.Control, error) {
	const argc = 3
	if len(ctx.Inputs) < argc+1 { // if (this.context.inputs.length < 4)
		ring, ok := ctx.Inputs[0].(*blocks.Ring)
		if !ok {
			return nil, interp.Done, fmt.Errorf("parallelMap needs a ringed function, got %s", ctx.Inputs[0].Kind())
		}
		list, err := asList(ctx.Inputs[1])
		if err != nil {
			return nil, interp.Done, err
		}
		count, err := workerCount(ctx.Inputs[2])
		if err != nil {
			return nil, interp.Done, err
		}
		pool := workers.New(list, workers.Options{MaxWorkers: count, Label: traceLabel(p)}) // new Parallel(aList.asArray(), {maxWorkers: workers})
		job := pool.MapChunks(RingChunkHandler(ring))                                       // p.map(aFunction)
		cancelOnDeath(p, job)
		ctx.Inputs = append(ctx.Inputs, &value.Opaque{Tag: "parallelJob", Payload: job})
	} else {
		job := ctx.Inputs[argc].(*value.Opaque).Payload.(*workers.Job)
		if job.Resolved() { // if (p.operation._resolved)
			res, err := job.Wait()
			if err != nil {
				return nil, interp.Done, err
			}
			return res, interp.Done, nil // return new List(p.data)
		}
	}
	p.PushYield() // this.pushContext('doYield'); this.pushContext();
	return nil, interp.Again, nil
}

// cancelOnDeath cancels an in-flight worker job when the polling process
// dies before the job resolves — pressing the stop button terminates the
// workers, like Worker.terminate() in the browser. The hook chains with
// any OnDone already installed.
func cancelOnDeath(p *interp.Process, job *workers.Job) {
	prev := p.OnDone
	p.OnDone = func(pp *interp.Process) {
		if prev != nil {
			prev(pp)
		}
		job.Cancel()
	}
}

// traceLabel is the trace ID the process's machine carries (the session
// ID under snapserved), stamped onto worker jobs so their spans and the
// session's span correlate.
func traceLabel(p *interp.Process) string {
	if p.Machine != nil {
		return p.Machine.TraceID
	}
	return ""
}

func asList(v value.Value) (*value.List, error) {
	if l, ok := v.(*value.List); ok {
		return l, nil
	}
	return nil, fmt.Errorf("expecting a list but getting a %s", v.Kind())
}

// --- parallelForEach ---

// feWork is the shared work queue a parallelForEach block's clones draw
// from. All clones run on the single interpreter thread, so no locking is
// needed — this is Snap!-style concurrency on the stage, not worker
// parallelism.
type feWork struct {
	list    *value.List
	next    int
	itemVar string
	body    *blocks.Ring
}

func (w *feWork) take() (value.Value, bool) {
	if w.next >= w.list.Len() {
		return nil, false
	}
	w.next++
	return w.list.MustItem(w.next), true
}

type feState struct {
	procs []*interp.Process
}

// primParallelForEach implements the block of §3.3. In parallel mode ("in
// parallel" label visible) it spawns clones of the running sprite, each
// executing the nested script on a different element of the input list; if
// the parallelism input is empty "it defaults to the length of the input
// list". In sequential mode (collapsed input) the sprite "should execute
// the script as a normal forEach block by looping over the input array".
func primParallelForEach(p *interp.Process, ctx *interp.Context) (value.Value, interp.Control, error) {
	const argc = 5
	parallel, err := value.ToBool(ctx.Inputs[4])
	if err != nil {
		return nil, interp.Done, err
	}
	if !parallel {
		return seqForEach(p, ctx, argc)
	}
	if len(ctx.Inputs) <= argc {
		if p.Machine == nil || p.Actor == nil {
			return nil, interp.Done, errors.New("parallelForEach needs a sprite and a stage")
		}
		list, err := asList(ctx.Inputs[1])
		if err != nil {
			return nil, interp.Done, err
		}
		body, ok := ctx.Inputs[3].(*blocks.Ring)
		if !ok {
			return nil, interp.Done, errors.New("parallelForEach needs a script body")
		}
		clones := list.Len()
		if !value.IsNothing(ctx.Inputs[2]) && ctx.Inputs[2].String() != "" {
			n, err := value.ToInt(ctx.Inputs[2])
			if err != nil {
				return nil, interp.Done, err
			}
			if n > 0 {
				clones = n
			}
		}
		if clones > list.Len() {
			clones = list.Len()
		}
		work := &feWork{list: list, itemVar: ctx.Inputs[0].String(), body: body}
		st := &feState{}
		for i := 0; i < clones; i++ {
			cloneActor := p.Machine.CloneSilent(p.Actor)
			f := interp.NewFrame(p.RootFrame())
			f.Declare("__work__", &value.Opaque{Tag: "feWork", Payload: work})
			proc := p.Machine.SpawnExpr(p.Sprite, cloneActor,
				blocks.NewBlock("snapWorkerLoop"), f)
			st.procs = append(st.procs, proc)
		}
		ctx.Inputs = append(ctx.Inputs, &value.Opaque{Tag: "feState", Payload: st})
		p.PushYield()
		return nil, interp.Again, nil
	}
	st := ctx.Inputs[argc].(*value.Opaque).Payload.(*feState)
	for _, proc := range st.procs {
		if !proc.Done() {
			p.PushYield()
			return nil, interp.Again, nil
		}
	}
	for _, proc := range st.procs {
		if proc.Err() != nil {
			return nil, interp.Done, proc.Err()
		}
	}
	return nil, interp.Done, nil
}

// seqForEach is sequential mode: the plain forEach loop, re-entrant with a
// cursor in scratch.
func seqForEach(p *interp.Process, ctx *interp.Context, argc int) (value.Value, interp.Control, error) {
	type seqState struct{ i int }
	var st *seqState
	if len(ctx.Inputs) <= argc {
		st = &seqState{}
		ctx.Inputs = append(ctx.Inputs, &value.Opaque{Tag: "seqState", Payload: st})
	} else {
		st = ctx.Inputs[argc].(*value.Opaque).Payload.(*seqState)
	}
	list, err := asList(ctx.Inputs[1])
	if err != nil {
		return nil, interp.Done, err
	}
	if st.i >= list.Len() {
		return nil, interp.Done, nil
	}
	body, ok := ctx.Inputs[3].(*blocks.Ring)
	if !ok {
		return nil, interp.Done, errors.New("parallelForEach needs a script body")
	}
	item := list.MustItem(st.i + 1)
	st.i++
	iter := interp.NewFrame(ringFrame(body, p))
	iter.Declare(ctx.Inputs[0].String(), item)
	if !p.Warped() {
		p.PushYield()
	}
	if err := p.PushBodyInFrame(body, iter); err != nil {
		return nil, interp.Done, err
	}
	return nil, interp.Again, nil
}

func ringFrame(r *blocks.Ring, p *interp.Process) *interp.Frame {
	if f, ok := r.Env.(*interp.Frame); ok {
		return f
	}
	return p.RootFrame()
}

// primWorkerLoop drives one parallelForEach clone: repeatedly take the next
// list element, bind it, run the nested script, and when the queue drains,
// delete the clone — "each clone of the Pitcher sprite executes the same
// nested script on a different element of the input list".
func primWorkerLoop(p *interp.Process, ctx *interp.Context) (value.Value, interp.Control, error) {
	wv, err := ctx.Frame.Get("__work__")
	if err != nil {
		return nil, interp.Done, err
	}
	work := wv.(*value.Opaque).Payload.(*feWork)
	item, ok := work.take()
	if !ok {
		if p.Machine != nil && p.Actor != nil && p.Actor.IsClone() {
			p.Machine.RemoveClone(p.Actor) // stops this process too
			return nil, interp.Replaced, nil
		}
		return nil, interp.Done, nil
	}
	iter := interp.NewFrame(ringFrame(work.body, p))
	iter.Declare(work.itemVar, item)
	if err := p.PushBodyInFrame(work.body, iter); err != nil {
		return nil, interp.Done, err
	}
	return nil, interp.Again, nil
}
