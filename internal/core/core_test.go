package core

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/blocks"
	"repro/internal/interp"
	"repro/internal/value"
)

func newMachine() *interp.Machine {
	return interp.NewMachine(blocks.NewProject("core-test"), nil)
}

func times10Ring() blocks.Node {
	return blocks.RingOf(blocks.Product(blocks.Empty(), blocks.Num(10)))
}

// TestParallelMapSection32 reproduces §3.2 / Figures 5–6: parallelMap with
// ×10 over 1..100; the first ten outputs are 10,20,...,100.
func TestParallelMapSection32(t *testing.T) {
	m := newMachine()
	v, err := m.EvalReporter(blocks.ParallelMap(
		times10Ring(),
		blocks.Numbers(blocks.Num(1), blocks.Num(100)),
		blocks.Num(4)))
	if err != nil {
		t.Fatal(err)
	}
	l := v.(*value.List)
	if l.Len() != 100 {
		t.Fatalf("len = %d", l.Len())
	}
	for i := 1; i <= 10; i++ {
		if got := l.MustItem(i).(value.Number); got != value.Number(10*i) {
			t.Errorf("output %d = %v, want %d", i, got, 10*i)
		}
	}
}

func TestParallelMapDefaultWorkers(t *testing.T) {
	// The optional input left empty: Listing 2's
	// `aCount || navigator.hardwareConcurrency || 4`.
	m := newMachine()
	v, err := m.EvalReporter(blocks.ParallelMap(
		times10Ring(),
		blocks.ListOf(blocks.Num(3), blocks.Num(7), blocks.Num(8)),
		blocks.Empty()))
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "[30 70 80]" {
		t.Errorf("parallelMap = %s, want [30 70 80]", v)
	}
}

func TestParallelMapMatchesSequentialMap(t *testing.T) {
	// The parallel block must agree with the stock sequential map block
	// of Figure 4 — same visual contract, parallel backend.
	m := newMachine()
	seq, err := m.EvalReporter(blocks.Map(times10Ring(),
		blocks.Numbers(blocks.Num(1), blocks.Num(50))))
	if err != nil {
		t.Fatal(err)
	}
	m = newMachine()
	par, err := m.EvalReporter(blocks.ParallelMap(times10Ring(),
		blocks.Numbers(blocks.Num(1), blocks.Num(50)), blocks.Num(8)))
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(seq, par) {
		t.Errorf("sequential %s != parallel %s", seq, par)
	}
}

func TestParallelMapErrors(t *testing.T) {
	m := newMachine()
	if _, err := m.EvalReporter(blocks.ParallelMap(
		blocks.Num(5), blocks.ListOf(blocks.Num(1)), blocks.Empty())); err == nil {
		t.Error("non-ring function should error")
	}
	m = newMachine()
	if _, err := m.EvalReporter(blocks.ParallelMap(
		times10Ring(), blocks.Num(5), blocks.Empty())); err == nil {
		t.Error("non-list input should error")
	}
	m = newMachine()
	if _, err := m.EvalReporter(blocks.ParallelMap(
		times10Ring(), blocks.ListOf(blocks.Txt("pear")), blocks.Num(2))); err == nil {
		t.Error("worker-side type error should surface on the block")
	}
	m = newMachine()
	if _, err := m.EvalReporter(blocks.ParallelMap(
		times10Ring(), blocks.ListOf(blocks.Num(1)), blocks.Num(2.5))); err == nil {
		t.Error("fractional worker count should error")
	}
}

func TestParallelMapWorkersCannotTouchStage(t *testing.T) {
	// A ring that says something needs the stage; inside a worker that
	// must fail, like DOM access from a real Web Worker.
	m := newMachine()
	ring := blocks.RingScript(blocks.NewScript(blocks.Say(blocks.Txt("hi"))))
	_, err := m.EvalReporter(blocks.ParallelMap(ring,
		blocks.ListOf(blocks.Num(1)), blocks.Num(1)))
	if err == nil || !strings.Contains(err.Error(), "web worker") {
		t.Errorf("err = %v, want web-worker restriction", err)
	}
}

func TestParallelMapShipsNoClosure(t *testing.T) {
	// Listing 2 rebuilds the function from source text, so captured
	// variables do not transfer. Our ShipRing reproduces that: the
	// worker must not see the machine's variables.
	m := newMachine()
	m.GlobalFrame().Declare("k", value.Number(5))
	script := blocks.NewScript(
		blocks.Report(blocks.ParallelMap(
			blocks.RingOf(blocks.Sum(blocks.Var("k"), blocks.Empty())),
			blocks.ListOf(blocks.Num(1)),
			blocks.Num(1))),
	)
	if _, err := m.RunScript(script); err == nil {
		t.Error("captured variable should not be visible inside the worker")
	}
}

func TestParallelMapKeepsSchedulerAlive(t *testing.T) {
	// While workers grind, other scripts keep running — the browser
	// stays responsive (§4.1). A second script must make progress
	// before the parallelMap completes... which we can at least witness
	// as both completing without deadlock and the log containing the
	// other script's entries.
	p := blocks.NewProject("busy")
	p.Globals["log"] = value.NewList()
	p.Globals["out"] = value.Nothing{}
	a := p.AddSprite(blocks.NewSprite("A"))
	a.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.SetVar("out", blocks.Reporter(blocks.ParallelMap(
			times10Ring(), blocks.Numbers(blocks.Num(1), blocks.Num(200)), blocks.Num(2)))),
	))
	b := p.AddSprite(blocks.NewSprite("B"))
	b.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.Repeat(blocks.Num(5), blocks.Body(
			blocks.AddToList(blocks.Txt("tick"), blocks.Var("log")))),
	))
	m := interp.NewMachine(p, nil)
	m.GreenFlag()
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	logv, _ := m.GlobalFrame().Get("log")
	if logv.(*value.List).Len() != 5 {
		t.Errorf("concurrent script starved: log = %s", logv)
	}
	outv, _ := m.GlobalFrame().Get("out")
	if outv.(*value.List).Len() != 200 {
		t.Errorf("parallelMap result wrong length")
	}
}

func TestParallelForEachParallelMode(t *testing.T) {
	// Clones each handle one element; the shared queue covers the whole
	// list even with fewer clones than elements.
	p := blocks.NewProject("pfe")
	p.Globals["acc"] = value.NewList()
	sp := p.AddSprite(blocks.NewSprite("Pitcher"))
	sp.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.ParallelForEach("item",
			blocks.Numbers(blocks.Num(1), blocks.Num(6)),
			blocks.Num(2), // only two clones for six items
			blocks.Body(blocks.AddToList(blocks.Var("item"), blocks.Var("acc")))),
	))
	m := interp.NewMachine(p, nil)
	m.GreenFlag()
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	acc, _ := m.GlobalFrame().Get("acc")
	if acc.(*value.List).Len() != 6 {
		t.Fatalf("acc = %s, want all six items handled", acc)
	}
	if m.Stage.CloneCount("Pitcher") != 0 {
		t.Error("worker clones should delete themselves when the queue drains")
	}
}

func TestParallelForEachDefaultsToListLength(t *testing.T) {
	// "If empty, it defaults to the length of the input list."
	p := blocks.NewProject("pfe")
	p.Globals["peak"] = value.Number(0)
	sp := p.AddSprite(blocks.NewSprite("Pitcher"))
	sp.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.ParallelForEach("item",
			blocks.Numbers(blocks.Num(1), blocks.Num(3)),
			blocks.Empty(),
			blocks.Body(
				// Record the clone population while working: with
				// default parallelism every element gets its own
				// clone alive simultaneously.
				blocks.Wait(blocks.Num(1)),
			)),
		blocks.Report(blocks.Txt("done")),
	))
	m := interp.NewMachine(p, nil)
	m.GreenFlag()
	// Step a few rounds, then observe the clone population mid-flight.
	m.Step()
	m.Step()
	if got := m.Stage.CloneCount("Pitcher"); got != 3 {
		t.Errorf("mid-run clone count = %d, want 3 (one per element)", got)
	}
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if m.Stage.CloneCount("Pitcher") != 0 {
		t.Error("clones should be gone at completion")
	}
}

func TestParallelForEachSequentialMode(t *testing.T) {
	p := blocks.NewProject("pfe-seq")
	p.Globals["acc"] = value.NewList()
	sp := p.AddSprite(blocks.NewSprite("Pitcher"))
	sp.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.ParallelForEachSeq("item",
			blocks.Numbers(blocks.Num(1), blocks.Num(4)),
			blocks.Body(blocks.AddToList(blocks.Var("item"), blocks.Var("acc")))),
	))
	m := interp.NewMachine(p, nil)
	m.GreenFlag()
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	acc, _ := m.GlobalFrame().Get("acc")
	if acc.String() != "[1 2 3 4]" {
		t.Errorf("sequential mode must preserve order: %s", acc)
	}
	if m.Stage.CloneCount("Pitcher") != 0 {
		t.Error("sequential mode must not spawn clones")
	}
}

func TestParallelForEachErrors(t *testing.T) {
	run := func(b *blocks.Block) error {
		p := blocks.NewProject("x")
		sp := p.AddSprite(blocks.NewSprite("S"))
		sp.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(b))
		m := interp.NewMachine(p, nil)
		m.GreenFlag()
		return m.Run(0)
	}
	if err := run(blocks.ParallelForEach("i", blocks.Num(5), blocks.Empty(),
		blocks.Body())); err == nil {
		t.Error("non-list should error")
	}
	if err := run(blocks.NewBlock("doParallelForEach", blocks.Txt("i"),
		blocks.ListOf(blocks.Num(1)), blocks.Empty(), blocks.Num(9),
		blocks.BoolLit(true))); err == nil {
		t.Error("non-script body should error")
	}
	if err := run(blocks.ParallelForEach("i", blocks.ListOf(blocks.Num(1)),
		blocks.Txt("pear"), blocks.Body())); err == nil {
		t.Error("bad parallelism input should error")
	}
}

func TestParallelForEachBodyErrorSurfaces(t *testing.T) {
	p := blocks.NewProject("x")
	sp := p.AddSprite(blocks.NewSprite("S"))
	sp.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.ParallelForEach("i", blocks.ListOf(blocks.Num(1)), blocks.Empty(),
			blocks.Body(blocks.Say(blocks.Quotient(blocks.Num(1), blocks.Num(0))))),
	))
	m := interp.NewMachine(p, nil)
	m.GreenFlag()
	if err := m.Run(0); err == nil {
		t.Error("clone error should surface on the block")
	}
}

func TestMapReduceBlockWordCount(t *testing.T) {
	// Figures 11–12: word count over a sentence; sorted unique words
	// with counts.
	m := newMachine()
	mapRing := blocks.RingOf(blocks.ListOf(blocks.Empty(), blocks.Num(1)))
	reduceRing := blocks.RingOf(blocks.Combine(
		blocks.Empty(), blocks.RingOf(blocks.Sum(blocks.Empty(), blocks.Empty()))))
	v, err := m.EvalReporter(blocks.MapReduce(mapRing, reduceRing,
		blocks.Split(blocks.Txt("b a b c a b"), blocks.Txt(" "))))
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "[[a 2] [b 3] [c 1]]" {
		t.Errorf("word count = %s, want [[a 2] [b 3] [c 1]]", v)
	}
}

func TestMapReduceBlockClimate(t *testing.T) {
	// Figure 13: F→C conversion in the map ring, average in the reduce
	// ring; scalar mappers share one key so the block reports the lone
	// average.
	m := newMachine()
	mapRing := blocks.RingOf(
		blocks.Quotient(
			blocks.Product(blocks.Num(5),
				blocks.Difference(blocks.Empty(), blocks.Num(32))),
			blocks.Num(9)))
	reduceRing := blocks.RingOf(
		blocks.Quotient(
			blocks.Combine(blocks.Empty(),
				blocks.RingOf(blocks.Sum(blocks.Empty(), blocks.Empty()))),
			blocks.LengthOf(blocks.Empty())))
	v, err := m.EvalReporter(blocks.MapReduce(mapRing, reduceRing,
		blocks.ListOf(blocks.Num(32), blocks.Num(212), blocks.Num(122))))
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "50" {
		t.Errorf("average °C = %s, want 50", v)
	}
}

func TestMapReduceBlockErrors(t *testing.T) {
	m := newMachine()
	ring := blocks.RingOf(blocks.Empty())
	if _, err := m.EvalReporter(blocks.MapReduce(blocks.Num(1), ring,
		blocks.ListOf())); err == nil {
		t.Error("non-ring mapper should error")
	}
	m = newMachine()
	if _, err := m.EvalReporter(blocks.MapReduce(ring, blocks.Num(1),
		blocks.ListOf())); err == nil {
		t.Error("non-ring reducer should error")
	}
	m = newMachine()
	if _, err := m.EvalReporter(blocks.MapReduce(ring, ring,
		blocks.Num(1))); err == nil {
		t.Error("non-list input should error")
	}
	m = newMachine()
	badMap := blocks.RingOf(blocks.Quotient(blocks.Empty(), blocks.Num(0)))
	if _, err := m.EvalReporter(blocks.MapReduce(badMap, ring,
		blocks.ListOf(blocks.Num(1)))); err == nil {
		t.Error("worker-side mapper error should surface")
	}
}

func TestMapReduceInputIsShippedNotShared(t *testing.T) {
	// The engine receives a clone of the input list; mutating the list
	// after the block starts cannot corrupt the run. (Here we just
	// verify the input survives unmodified.)
	m := newMachine()
	m.GlobalFrame().Declare("data", value.FromStrings([]string{"x", "y"}))
	script := blocks.NewScript(
		blocks.Report(blocks.MapReduce(
			blocks.RingOf(blocks.ListOf(blocks.Empty(), blocks.Num(1))),
			blocks.RingOf(blocks.LengthOf(blocks.Empty())),
			blocks.Var("data"))),
	)
	v, err := m.RunScript(script)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "[[x 1] [y 1]]" {
		t.Errorf("result = %s", v)
	}
	data, _ := m.GlobalFrame().Get("data")
	if data.String() != "[x y]" {
		t.Errorf("input mutated: %s", data)
	}
}

func TestShipRingStripsEnvironment(t *testing.T) {
	r := &blocks.Ring{Body: blocks.Num(1), Params: []string{"x"}, Env: 42, Receiver: "S"}
	s := ShipRing(r)
	if s.Env != nil || s.Receiver != "" {
		t.Error("shipped ring must carry no environment")
	}
	if s.Body != r.Body || len(s.Params) != 1 {
		t.Error("shipped ring must keep body and params")
	}
}

func TestWorkerCountResolution(t *testing.T) {
	if n, err := workerCount(value.Nothing{}); err != nil || n < 1 {
		t.Error("empty input should default")
	}
	if n, err := workerCount(value.Number(0)); err != nil || n < 1 {
		t.Error("zero should default")
	}
	if n, err := workerCount(value.Number(7)); err != nil || n != 7 {
		t.Error("explicit count should pass through")
	}
	if _, err := workerCount(value.Text("pear")); err == nil {
		t.Error("garbage should error")
	}
}

// Property: parallelMap equals sequential map for any ×k function, any
// input, any worker count.
func TestPropertyParallelMapEqualsMap(t *testing.T) {
	f := func(xs []int8, k int8, wRaw uint8) bool {
		w := int(wRaw%6) + 1
		items := make([]blocks.Node, len(xs))
		for i, x := range xs {
			items[i] = blocks.Num(float64(x))
		}
		ring := blocks.RingOf(blocks.Product(blocks.Empty(), blocks.Num(float64(k))))
		m := newMachine()
		seq, err := m.EvalReporter(blocks.Map(ring, blocks.ListOf(items...)))
		if err != nil {
			return false
		}
		m = newMachine()
		par, err := m.EvalReporter(blocks.ParallelMap(ring,
			blocks.ListOf(items...), blocks.Num(float64(w))))
		if err != nil {
			return false
		}
		return value.Equal(seq, par)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
