package core

import (
	"testing"
	"testing/quick"

	"repro/internal/blocks"
	"repro/internal/value"
)

func TestParallelKeep(t *testing.T) {
	m := newMachine()
	v, err := m.EvalReporter(ParallelKeep(
		blocks.RingOf(blocks.GreaterThan(blocks.Empty(), blocks.Num(5))),
		blocks.Numbers(blocks.Num(1), blocks.Num(10)),
		blocks.Num(3)))
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "[6 7 8 9 10]" {
		t.Errorf("parallelKeep = %s", v)
	}
}

func TestParallelKeepMatchesSequentialKeep(t *testing.T) {
	pred := blocks.RingOf(blocks.Equals(
		blocks.Modulus(blocks.Empty(), blocks.Num(3)), blocks.Num(0)))
	m := newMachine()
	seq, err := m.EvalReporter(blocks.Keep(pred, blocks.Numbers(blocks.Num(1), blocks.Num(50))))
	if err != nil {
		t.Fatal(err)
	}
	m = newMachine()
	par, err := m.EvalReporter(ParallelKeep(pred,
		blocks.Numbers(blocks.Num(1), blocks.Num(50)), blocks.Num(4)))
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(seq, par) {
		t.Errorf("keep %s != parallelKeep %s", seq, par)
	}
}

func TestParallelKeepErrors(t *testing.T) {
	m := newMachine()
	if _, err := m.EvalReporter(ParallelKeep(blocks.Num(1),
		blocks.ListOf(), blocks.Empty())); err == nil {
		t.Error("non-ring predicate should error")
	}
	m = newMachine()
	if _, err := m.EvalReporter(ParallelKeep(
		blocks.RingOf(blocks.Empty()), blocks.Num(1), blocks.Empty())); err == nil {
		t.Error("non-list should error")
	}
	m = newMachine()
	// Predicate that reports a number, not a boolean.
	if _, err := m.EvalReporter(ParallelKeep(
		blocks.RingOf(blocks.Sum(blocks.Empty(), blocks.Num(1))),
		blocks.ListOf(blocks.Num(1)), blocks.Num(1))); err == nil {
		t.Error("non-boolean predicate result should error")
	}
}

func TestParallelCombineSum(t *testing.T) {
	m := newMachine()
	v, err := m.EvalReporter(ParallelCombine(
		blocks.Numbers(blocks.Num(1), blocks.Num(100)),
		blocks.RingOf(blocks.Sum(blocks.Empty(), blocks.Empty())),
		blocks.Num(4)))
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "5050" {
		t.Errorf("parallelCombine sum = %s, want 5050", v)
	}
}

func TestParallelCombineEmptyAndErrors(t *testing.T) {
	m := newMachine()
	v, err := m.EvalReporter(ParallelCombine(
		blocks.ListOf(),
		blocks.RingOf(blocks.Sum(blocks.Empty(), blocks.Empty())),
		blocks.Empty()))
	if err != nil || v.String() != "0" {
		t.Errorf("empty parallelCombine = %v, %v (want 0, matching combine)", v, err)
	}
	m = newMachine()
	if _, err := m.EvalReporter(ParallelCombine(
		blocks.Num(1), blocks.RingOf(blocks.Empty()), blocks.Empty())); err == nil {
		t.Error("non-list should error")
	}
	m = newMachine()
	if _, err := m.EvalReporter(ParallelCombine(
		blocks.ListOf(blocks.Num(1)), blocks.Num(2), blocks.Empty())); err == nil {
		t.Error("non-ring should error")
	}
	m = newMachine()
	// A non-associative misuse still reports *something*; a failing ring
	// (division by zero) must surface.
	if _, err := m.EvalReporter(ParallelCombine(
		blocks.ListOf(blocks.Num(1), blocks.Num(0)),
		blocks.RingOf(blocks.Quotient(blocks.Empty(), blocks.Empty())),
		blocks.Num(2))); err == nil {
		t.Error("worker-side error should surface")
	}
}

// Property: parallelCombine with + equals the sequential combine for any
// input and worker count (associativity makes chunked reduction exact for
// integer-valued sums).
func TestPropertyParallelCombine(t *testing.T) {
	f := func(xs []int8, wRaw uint8) bool {
		w := int(wRaw%6) + 1
		items := make([]blocks.Node, len(xs))
		var want float64
		for i, x := range xs {
			items[i] = blocks.Num(float64(x))
			want += float64(x)
		}
		if len(xs) == 0 {
			return true
		}
		m := newMachine()
		v, err := m.EvalReporter(ParallelCombine(
			blocks.ListOf(items...),
			blocks.RingOf(blocks.Sum(blocks.Empty(), blocks.Empty())),
			blocks.Num(float64(w))))
		if err != nil {
			return false
		}
		n, err := value.ToNumber(v)
		return err == nil && float64(n) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
