package stage

import (
	"math"
	"strings"
	"testing"

	"repro/internal/vclock"
)

func TestActorMotion(t *testing.T) {
	s := New(nil)
	a := s.AddActor("Dragon", 0, 0)
	if a.Heading != 90 {
		t.Fatalf("default heading = %g, want 90 (facing right)", a.Heading)
	}
	a.MoveForward(10)
	if math.Abs(a.X-10) > 1e-9 || math.Abs(a.Y) > 1e-9 {
		t.Errorf("after forward 10: (%g,%g)", a.X, a.Y)
	}
	a.Turn(-90) // face up
	a.MoveForward(5)
	if math.Abs(a.X-10) > 1e-9 || math.Abs(a.Y-5) > 1e-9 {
		t.Errorf("after turn+forward: (%g,%g)", a.X, a.Y)
	}
	if a.Heading != 0 {
		t.Errorf("heading = %g, want 0", a.Heading)
	}
	a.Turn(-30)
	if a.Heading != 330 {
		t.Errorf("heading wraps to %g, want 330", a.Heading)
	}
	a.GotoXY(-3, 4)
	if a.X != -3 || a.Y != 4 {
		t.Error("gotoXY failed")
	}
}

func TestCloning(t *testing.T) {
	s := New(nil)
	p := s.AddActor("Pitcher", 1, 2)
	p.Heading = 45
	c := s.Clone(p)
	if !c.IsClone() || c.Parent != p {
		t.Fatal("clone parentage")
	}
	if c.X != 1 || c.Y != 2 || c.Heading != 45 {
		t.Error("clone should copy parent state")
	}
	if c.Label() == p.Label() {
		t.Error("clone label must be distinguishable")
	}
	if s.CloneCount("Pitcher") != 1 {
		t.Error("clone count")
	}
	s.Remove(c)
	if s.CloneCount("Pitcher") != 0 {
		t.Error("clone count after removal")
	}
	if len(s.Actors()) != 1 {
		t.Error("actor roster after removal")
	}
	s.Remove(c) // removing twice is harmless
}

func TestSayAndTrace(t *testing.T) {
	c := vclock.New()
	s := New(c)
	a := s.AddActor("Cup", 0, 0)
	c.Tick()
	a.Say("full!")
	if a.Saying != "full!" {
		t.Error("saying not set")
	}
	lines := s.TraceLines()
	if len(lines) != 1 || !strings.Contains(lines[0], `[t=1] Cup says "full!"`) {
		t.Errorf("trace = %v", lines)
	}
	a.Say("") // clearing the balloon is not traced
	if len(s.TraceLines()) != 1 {
		t.Error("clearing balloon should not trace")
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	s := New(nil)
	b := s.AddActor("B", 1, 1)
	s.AddActor("A", 0, 0)
	b.Say("hi")
	snap := s.Snapshot()
	if len(snap) != 2 || snap[0] != "A@(0,0)" || snap[1] != `B@(1,1) saying "hi"` {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestActorLookup(t *testing.T) {
	s := New(nil)
	a := s.AddActor("X", 0, 0)
	if s.Actor("X") != a || s.Actor("Y") != nil {
		t.Error("lookup")
	}
}

func TestRender(t *testing.T) {
	s := New(nil)
	s.AddActor("Pitcher", -240, 180) // top-left corner
	cup := s.AddActor("Cup1", 240, -180)
	cup.Say("full!")
	hidden := s.AddActor("Ghost", 0, 0)
	hidden.Visible = false
	out := s.Render(20, 6)
	lines := strings.Split(out, "\n")
	if !strings.HasPrefix(lines[0], "+----") {
		t.Errorf("missing border: %q", lines[0])
	}
	if !strings.Contains(lines[1], "P") {
		t.Errorf("Pitcher missing from top row: %q", lines[1])
	}
	if !strings.Contains(lines[6], "C") {
		t.Errorf("Cup missing from bottom row: %q", lines[6])
	}
	if strings.Contains(out, "G") {
		t.Error("hidden actor rendered")
	}
	if !strings.Contains(out, `Cup1: "full!"`) {
		t.Errorf("balloon missing:\n%s", out)
	}
	// Clamped minimum size must not panic.
	if s.Render(1, 1) == "" {
		t.Error("tiny render empty")
	}
}
