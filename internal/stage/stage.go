// Package stage models the Snap! stage at run time: the white area in the
// upper right of Figure 2 where sprites appear, exhibit their behavior, and
// display their output. There are no pixels here — a sprite's observable
// state is its position, heading, visibility, and what it is saying — but
// that state is exactly what the paper's demos (the dragon of Figure 3, the
// concession stand of Figures 7–10) read back to show parallelism working.
package stage

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/value"
	"repro/internal/vclock"
)

// Actor is a live sprite (or clone of one) on the stage.
type Actor struct {
	// Name is the sprite name; clones share their parent's name and are
	// distinguished by ID.
	Name string
	// ID is unique per actor across the stage's lifetime.
	ID int
	// Parent is the actor this one was cloned from; nil for originals.
	Parent *Actor

	X, Y    float64
	Heading float64 // degrees, 90 = right, Snap! convention (0 = up)
	Visible bool
	Saying  string

	stage *Stage
}

// IsClone reports whether the actor is a temporary clone.
func (a *Actor) IsClone() bool { return a.Parent != nil }

// Rehome returns the actor to the state AddActor would have minted it in
// at (x, y) — pose, visibility, speech — keeping its identity. Scratch
// runners reuse one actor per machine instead of growing the actor list
// on every run.
func (a *Actor) Rehome(x, y float64) {
	a.X, a.Y = x, y
	a.Heading = 90
	a.Visible = true
	a.Saying = ""
}

// MoveForward moves n steps along the current heading.
func (a *Actor) MoveForward(n float64) {
	rad := (90 - a.Heading) * math.Pi / 180
	a.X += n * math.Cos(rad)
	a.Y += n * math.Sin(rad)
	a.stage.trace("%s moves %g", a.Label(), n)
}

// Turn turns clockwise by deg degrees.
func (a *Actor) Turn(deg float64) {
	a.Heading = math.Mod(a.Heading+deg, 360)
	if a.Heading < 0 {
		a.Heading += 360
	}
	a.stage.trace("%s turns %g", a.Label(), deg)
}

// GotoXY teleports the actor.
func (a *Actor) GotoXY(x, y float64) {
	a.X, a.Y = x, y
	a.stage.trace("%s goes to (%g, %g)", a.Label(), x, y)
}

// Say sets the speech balloon, the principal output channel of a Snap!
// program. Saying the empty string clears the balloon.
func (a *Actor) Say(text string) {
	a.Saying = text
	if text != "" {
		a.stage.trace("%s says %q", a.Label(), text)
	}
}

// Label renders "Name" for originals and "Name#ID" for clones.
func (a *Actor) Label() string {
	if a.IsClone() {
		return fmt.Sprintf("%s#%d", a.Name, a.ID)
	}
	return a.Name
}

// Stage is the shared world all actors live in.
type Stage struct {
	mu     sync.Mutex
	actors []*Actor
	nextID int

	Clock *vclock.Clock
	Timer *vclock.Timer

	// Trace accumulates one line per observable action, in order. Tests
	// and the examples assert against it; it is the textual equivalent
	// of watching the stage.
	Trace []string

	// MaxTrace bounds the trace when positive: once the trace holds
	// MaxTrace lines, further lines are counted but dropped. A hosted
	// session's output log must not grow with its (budgeted but large)
	// step count; the prefix is what a beginner looks at anyway.
	MaxTrace int

	// Vars are stage-global watchers (the "timer" style readouts).
	Vars map[string]value.Value

	dropped int
}

// New creates an empty stage over the given clock.
func New(clock *vclock.Clock) *Stage {
	if clock == nil {
		clock = vclock.New()
	}
	// Vars stays nil until a watcher is set: reads on a nil map are legal,
	// and most machines (every eval-style session) never set one.
	return &Stage{
		Clock: clock,
		Timer: vclock.NewTimer(clock),
	}
}

// Reset empties the stage — actors, trace, watchers, timer, and clock —
// restoring the state New returns while keeping allocated capacity, so
// eval-style servers can recycle a stage per request. Trace is dropped
// rather than truncated: callers may still hold the old slice.
func (s *Stage) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.actors {
		s.actors[i] = nil
	}
	s.actors = s.actors[:0]
	s.nextID = 0
	s.Trace = nil
	s.MaxTrace = 0
	s.Vars = nil
	s.dropped = 0
	s.Clock.Reset()
	s.Timer.Reset()
}

// AddActor places a new original sprite on the stage.
func (s *Stage) AddActor(name string, x, y float64) *Actor {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	a := &Actor{Name: name, ID: s.nextID, X: x, Y: y, Heading: 90, Visible: true, stage: s}
	s.actors = append(s.actors, a)
	return a
}

// Clone spawns a clone of the given actor, copying its visible state — the
// mechanism parallelForEach uses "in a novel way to visually demonstrate
// parallel behavior" (§3.3).
func (s *Stage) Clone(parent *Actor) *Actor {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	c := &Actor{
		Name: parent.Name, ID: s.nextID, Parent: parent,
		X: parent.X, Y: parent.Y, Heading: parent.Heading,
		Visible: parent.Visible, stage: s,
	}
	s.actors = append(s.actors, c)
	s.traceLocked("%s is cloned as %s", parent.Label(), c.Label())
	return c
}

// Remove deletes an actor (clone deletion; originals may be removed too).
func (s *Stage) Remove(a *Actor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, x := range s.actors {
		if x == a {
			s.actors = append(s.actors[:i], s.actors[i+1:]...)
			s.traceLocked("%s is removed", a.Label())
			return
		}
	}
}

// Actors returns a snapshot of the live actors.
func (s *Stage) Actors() []*Actor {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Actor, len(s.actors))
	copy(out, s.actors)
	return out
}

// Actor returns the first live actor with the given name, or nil.
func (s *Stage) Actor(name string) *Actor {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.actors {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// CloneCount reports how many clones of the named sprite are live.
func (s *Stage) CloneCount(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, a := range s.actors {
		if a.Name == name && a.IsClone() {
			n++
		}
	}
	return n
}

// Snapshot renders the stage as sorted "label@(x,y) saying" lines, a
// deterministic text rendering of what Figure 9's screenshots show.
func (s *Stage) Snapshot() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.actors))
	for _, a := range s.actors {
		line := fmt.Sprintf("%s@(%g,%g)", a.Label(), round2(a.X), round2(a.Y))
		if a.Saying != "" {
			line += fmt.Sprintf(" saying %q", a.Saying)
		}
		out = append(out, line)
	}
	sort.Strings(out)
	return out
}

func round2(f float64) float64 { return math.Round(f*100) / 100 }

func (s *Stage) trace(format string, args ...any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.traceLocked(format, args...)
}

func (s *Stage) traceLocked(format string, args ...any) {
	if s.MaxTrace > 0 && len(s.Trace) >= s.MaxTrace {
		s.dropped++
		return
	}
	s.Trace = append(s.Trace, fmt.Sprintf("[t=%d] ", s.Clock.Now())+fmt.Sprintf(format, args...))
}

// TraceDropped reports how many trace lines the MaxTrace bound discarded.
func (s *Stage) TraceDropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// TraceLines returns a copy of the trace.
func (s *Stage) TraceLines() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.Trace))
	copy(out, s.Trace)
	return out
}

// Render draws the stage as ASCII art: a cols×rows grid over Snap!'s
// standard stage coordinates (x ∈ [-240, 240], y ∈ [-180, 180]), each
// visible actor marked by the first rune of its name, speech balloons
// listed below — a terminal-sized stand-in for the white area of Figure 2.
func (s *Stage) Render(cols, rows int) string {
	if cols < 8 {
		cols = 8
	}
	if rows < 4 {
		rows = 4
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	grid := make([][]rune, rows)
	for r := range grid {
		grid[r] = make([]rune, cols)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	var balloons []string
	for _, a := range s.actors {
		if !a.Visible {
			continue
		}
		col := int((a.X + 240) / 480 * float64(cols-1))
		row := int((180 - a.Y) / 360 * float64(rows-1))
		if col < 0 {
			col = 0
		}
		if col >= cols {
			col = cols - 1
		}
		if row < 0 {
			row = 0
		}
		if row >= rows {
			row = rows - 1
		}
		mark := '?'
		for _, r := range a.Name {
			mark = r
			break
		}
		grid[row][col] = mark
		if a.Saying != "" {
			balloons = append(balloons, fmt.Sprintf("%s: %q", a.Label(), a.Saying))
		}
	}
	var b []byte
	border := make([]byte, cols+2)
	border[0], border[cols+1] = '+', '+'
	for i := 1; i <= cols; i++ {
		border[i] = '-'
	}
	b = append(b, border...)
	b = append(b, '\n')
	for _, row := range grid {
		b = append(b, '|')
		b = append(b, string(row)...)
		b = append(b, '|', '\n')
	}
	b = append(b, border...)
	b = append(b, '\n')
	sort.Strings(balloons)
	for _, line := range balloons {
		b = append(b, "  "+line+"\n"...)
	}
	return string(b)
}
