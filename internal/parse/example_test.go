package parse_test

import (
	"fmt"

	"repro/internal/blocks"
	_ "repro/internal/core"
	"repro/internal/interp"
	"repro/internal/parse"
)

// Parse the textual spelling of Figure 4's map program and run it.
func ExampleExpr() {
	node, err := parse.Expr("(map (ring (* _ 10)) (list 3 7 8))")
	if err != nil {
		panic(err)
	}
	m := interp.NewMachine(blocks.NewProject("example"), nil)
	v, err := m.EvalReporter(node.(*blocks.Block))
	if err != nil {
		panic(err)
	}
	fmt.Println(v)
	// Output: [30 70 80]
}

// Parse a multi-command script with a loop and run it.
func ExampleScript() {
	script, err := parse.Script(`
		(declare total)
		(set total 0)
		(for i 1 100 (do (change total $i)))
		(report $total)`)
	if err != nil {
		panic(err)
	}
	m := interp.NewMachine(blocks.NewProject("example"), nil)
	v, err := m.RunScript(script)
	if err != nil {
		panic(err)
	}
	fmt.Println(v)
	// Output: 5050
}

// Print a block program back into the textual language.
func ExamplePrintNode() {
	text, err := parse.PrintNode(blocks.ParallelMap(
		blocks.RingOf(blocks.Product(blocks.Empty(), blocks.Num(10))),
		blocks.ListOf(blocks.Num(3), blocks.Num(7), blocks.Num(8)),
		blocks.Num(4)))
	if err != nil {
		panic(err)
	}
	fmt.Println(text)
	// Output: (parallelmap (ring (* _ 10)) (list 3 7 8) 4)
}
