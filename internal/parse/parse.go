// Package parse reads the textual representation of block programs — the
// complement of the §6 code-mapping feature (§1 notes Snap!'s experimental
// "textual representation of the blocks"). Programs are s-expressions:
//
//	(map (ring (* _ 10)) (list 3 7 8))
//	(do (set sum 0)
//	    (for i 1 10 (do (change sum $i)))
//	    (report $sum))
//
// Tokens: numbers, "strings", true/false, `_` (an empty slot), `$name`
// (read variable name), bare symbols (operators, or names in name
// positions). Special forms: (ring body...), (lambda (params) body...),
// (do commands...). Everything else lowers through the operator table to
// the block constructors of package blocks, so parsed programs are
// indistinguishable from built ones: the interpreter runs them, the code
// generators translate them, xmlio round-trips them.
package parse

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/blocks"
	"repro/internal/value"
)

// --- s-expression reader ---

type sexpr interface{ pos() int }

type atom struct {
	at   int
	text string
	str  bool // quoted string literal
}

func (a atom) pos() int { return a.at }

type list struct {
	at    int
	items []sexpr
}

func (l list) pos() int { return l.at }

// maxNesting bounds s-expression depth. The reader and the lowerer both
// recurse over the tree, and this parser sits on the network ingestion
// path: without a cap, a few megabytes of "(" exhaust the goroutine stack,
// which is a fatal, unrecoverable crash rather than an error.
const maxNesting = 10_000

type reader struct {
	src   []rune
	i     int
	depth int
}

func (r *reader) error(at int, format string, args ...any) error {
	line, col := 1, 1
	for j := 0; j < at && j < len(r.src); j++ {
		if r.src[j] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Errorf("%d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func (r *reader) skipSpace() {
	for r.i < len(r.src) {
		c := r.src[r.i]
		if c == ';' { // comment to end of line
			for r.i < len(r.src) && r.src[r.i] != '\n' {
				r.i++
			}
			continue
		}
		if !unicode.IsSpace(c) {
			return
		}
		r.i++
	}
}

func (r *reader) read() (sexpr, error) {
	r.skipSpace()
	if r.i >= len(r.src) {
		return nil, r.error(r.i, "unexpected end of input")
	}
	at := r.i
	switch c := r.src[r.i]; {
	case c == '(':
		r.depth++
		if r.depth > maxNesting {
			return nil, r.error(at, "forms nested deeper than %d", maxNesting)
		}
		defer func() { r.depth-- }()
		r.i++
		var items []sexpr
		for {
			r.skipSpace()
			if r.i >= len(r.src) {
				return nil, r.error(at, "unclosed parenthesis")
			}
			if r.src[r.i] == ')' {
				r.i++
				return list{at: at, items: items}, nil
			}
			item, err := r.read()
			if err != nil {
				return nil, err
			}
			items = append(items, item)
		}
	case c == ')':
		return nil, r.error(at, "unexpected ')'")
	case c == '"':
		r.i++
		var b strings.Builder
		for {
			if r.i >= len(r.src) {
				return nil, r.error(at, "unterminated string")
			}
			c := r.src[r.i]
			r.i++
			if c == '"' {
				return atom{at: at, text: b.String(), str: true}, nil
			}
			if c == '\\' && r.i < len(r.src) {
				esc := r.src[r.i]
				r.i++
				switch esc {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				default:
					b.WriteRune(esc)
				}
				continue
			}
			b.WriteRune(c)
		}
	default:
		var b strings.Builder
		for r.i < len(r.src) {
			c := r.src[r.i]
			if unicode.IsSpace(c) || c == '(' || c == ')' || c == ';' {
				break
			}
			b.WriteRune(c)
			r.i++
		}
		return atom{at: at, text: b.String()}, nil
	}
}

// readAll reads every top-level form.
func readAll(src string) ([]sexpr, *reader, error) {
	r := &reader{src: []rune(src)}
	var out []sexpr
	for {
		r.skipSpace()
		if r.i >= len(r.src) {
			return out, r, nil
		}
		form, err := r.read()
		if err != nil {
			return nil, r, err
		}
		out = append(out, form)
	}
}

// --- lowering to blocks ---

// opSpec describes one operator: its opcode's builder and arity bounds.
type opSpec struct {
	min, max int // max < 0 means variadic
	build    func(args []blocks.Node) (*blocks.Block, error)
}

func simple(op string, arity int) opSpec {
	return opSpec{min: arity, max: arity, build: func(args []blocks.Node) (*blocks.Block, error) {
		return blocks.NewBlock(op, args...), nil
	}}
}

func variadic(op string, min int) opSpec {
	return opSpec{min: min, max: -1, build: func(args []blocks.Node) (*blocks.Block, error) {
		return blocks.NewBlock(op, args...), nil
	}}
}

// nameArg converts an argument in name position (set, for, foreach) back
// to its text.
func nameArg(n blocks.Node) (string, error) {
	switch x := n.(type) {
	case blocks.VarGet:
		return x.Name, nil
	case blocks.Literal:
		if t, ok := x.Val.(value.Text); ok {
			return string(t), nil
		}
	}
	return "", fmt.Errorf("expected a name")
}

func named(op string, arity int) opSpec {
	return opSpec{min: arity, max: arity, build: func(args []blocks.Node) (*blocks.Block, error) {
		name, err := nameArg(args[0])
		if err != nil {
			return nil, err
		}
		out := append([]blocks.Node{blocks.Txt(name)}, args[1:]...)
		return blocks.NewBlock(op, out...), nil
	}}
}

var ops = map[string]opSpec{
	"+":      simple("reportSum", 2),
	"-":      simple("reportDifference", 2),
	"*":      simple("reportProduct", 2),
	"/":      simple("reportQuotient", 2),
	"mod":    simple("reportModulus", 2),
	"round":  simple("reportRound", 1),
	"sqrt":   {min: 1, max: 1, build: monadic("sqrt")},
	"abs":    {min: 1, max: 1, build: monadic("abs")},
	"floor":  {min: 1, max: 1, build: monadic("floor")},
	"random": simple("reportRandom", 2),
	"<":      simple("reportLessThan", 2),
	"=":      simple("reportEquals", 2),
	">":      simple("reportGreaterThan", 2),
	"and":    simple("reportAnd", 2),
	"or":     simple("reportOr", 2),
	"not":    simple("reportNot", 1),
	"join":   variadic("reportJoinWords", 1),
	"letter": simple("reportLetter", 2),
	"split":  simple("reportTextSplit", 2),

	"list":     variadic("reportNewList", 0),
	"numbers":  simple("reportNumbers", 2),
	"item":     simple("reportListItem", 2),
	"length":   simple("reportListLength", 1),
	"contains": simple("reportListContainsItem", 2),
	"add":      simple("doAddToList", 2),
	"delete":   simple("doDeleteFromList", 2),
	"insert":   simple("doInsertInList", 3),
	"replace":  simple("doReplaceInList", 3),

	"set":     named("doSetVar", 2),
	"change":  named("doChangeVar", 2),
	"declare": {min: 1, max: -1, build: buildDeclare},

	"if":      simple("doIf", 2),
	"ifelse":  simple("doIfElse", 3),
	"repeat":  simple("doRepeat", 2),
	"forever": simple("doForever", 1),
	"until":   simple("doUntil", 2),
	"for":     named("doFor", 4),
	"wait":    simple("doWait", 1),
	"report":  simple("doReport", 1),
	"stop":    simple("doStopThis", 0),
	"warp":    simple("doWarp", 1),

	"map":     simple("reportMap", 2),
	"keep":    simple("reportKeep", 2),
	"combine": simple("reportCombine", 2),
	"foreach": named("doForEach", 3),

	"parallelmap":     simple("reportParallelMap", 3),
	"parallelkeep":    simple("reportParallelKeep", 3),
	"parallelcombine": simple("reportParallelCombine", 3),
	"mapreduce":       simple("reportMapReduce", 3),
	"parallelforeach": {min: 4, max: 4, build: buildParallelForEach(true)},
	"seqforeach":      {min: 3, max: 3, build: buildParallelForEach(false)},

	"call": variadic("evaluate", 1),
	"run":  variadic("doRun", 1),

	"broadcast":     simple("doBroadcast", 1),
	"broadcastwait": simple("doBroadcastAndWait", 1),
	"say":           simple("bubble", 1),
	"think":         simple("doThink", 1),
	"forward":       simple("forward", 1),
	"turn":          simple("turn", 1),
	"goto":          simple("gotoXY", 2),
	"timer":         simple("getTimer", 0),
	"resettimer":    simple("doResetTimer", 0),
	"clone":         simple("createClone", 1),
	"removeclone":   simple("removeClone", 0),

	"readfile":   simple("reportReadFile", 1),
	"filelines":  simple("reportFileLines", 1),
	"writefile":  simple("doWriteFile", 2),
	"appendfile": simple("doAppendToFile", 2),
	"turnleft":   simple("turnLeft", 1),
}

func monadic(fn string) func(args []blocks.Node) (*blocks.Block, error) {
	return func(args []blocks.Node) (*blocks.Block, error) {
		return blocks.Monadic(fn, args[0]), nil
	}
}

func buildDeclare(args []blocks.Node) (*blocks.Block, error) {
	ins := make([]blocks.Node, len(args))
	for i, a := range args {
		name, err := nameArg(a)
		if err != nil {
			return nil, fmt.Errorf("declare: %w", err)
		}
		ins[i] = blocks.Txt(name)
	}
	return blocks.NewBlock("doDeclareVariables", ins...), nil
}

func buildParallelForEach(parallel bool) func(args []blocks.Node) (*blocks.Block, error) {
	return func(args []blocks.Node) (*blocks.Block, error) {
		name, err := nameArg(args[0])
		if err != nil {
			return nil, fmt.Errorf("parallelforeach: %w", err)
		}
		if parallel {
			// (parallelforeach item list parallelism body)
			return blocks.NewBlock("doParallelForEach",
				blocks.Txt(name), args[1], args[2], args[3], blocks.BoolLit(true)), nil
		}
		// (seqforeach item list body)
		return blocks.NewBlock("doParallelForEach",
			blocks.Txt(name), args[1], blocks.Empty(), args[2], blocks.BoolLit(false)), nil
	}
}

// lower converts one s-expression into a block input node.
func (r *reader) lower(s sexpr) (blocks.Node, error) {
	switch x := s.(type) {
	case atom:
		return r.lowerAtom(x)
	case list:
		return r.lowerList(x)
	}
	return nil, r.error(s.pos(), "unknown form")
}

func (r *reader) lowerAtom(a atom) (blocks.Node, error) {
	if a.str {
		return blocks.Txt(a.text), nil
	}
	switch a.text {
	case "_":
		return blocks.Empty(), nil
	case "true":
		return blocks.BoolLit(true), nil
	case "false":
		return blocks.BoolLit(false), nil
	}
	if strings.HasPrefix(a.text, "$") {
		if len(a.text) == 1 {
			return nil, r.error(a.at, "$ needs a variable name")
		}
		return blocks.Var(a.text[1:]), nil
	}
	if f, err := strconv.ParseFloat(a.text, 64); err == nil {
		return blocks.Num(f), nil
	}
	// Bare symbols stand for names (variable slots of set/for/foreach);
	// lower as VarGet so nameArg can recover the spelling, and reading
	// them in value position still reads the variable.
	return blocks.Var(a.text), nil
}

func (r *reader) lowerList(l list) (blocks.Node, error) {
	if len(l.items) == 0 {
		return nil, r.error(l.at, "empty form")
	}
	head, ok := l.items[0].(atom)
	if !ok || head.str {
		return nil, r.error(l.items[0].pos(), "a form must start with an operator symbol")
	}
	switch head.text {
	case "do":
		script, err := r.lowerScript(l.items[1:])
		if err != nil {
			return nil, err
		}
		return blocks.ScriptNode{Script: script}, nil
	case "ring":
		if len(l.items) != 2 {
			return nil, r.error(l.at, "ring takes exactly one body")
		}
		body, err := r.lower(l.items[1])
		if err != nil {
			return nil, err
		}
		if sn, ok := body.(blocks.ScriptNode); ok {
			return blocks.RingScript(sn.Script), nil
		}
		return blocks.RingOf(body), nil
	case "lambda":
		if len(l.items) != 3 {
			return nil, r.error(l.at, "lambda takes a parameter list and one body")
		}
		plist, ok := l.items[1].(list)
		if !ok {
			return nil, r.error(l.items[1].pos(), "lambda parameters must be a list")
		}
		var params []string
		for _, p := range plist.items {
			pa, ok := p.(atom)
			if !ok || pa.str {
				return nil, r.error(p.pos(), "lambda parameter must be a symbol")
			}
			params = append(params, pa.text)
		}
		body, err := r.lower(l.items[2])
		if err != nil {
			return nil, err
		}
		if sn, ok := body.(blocks.ScriptNode); ok {
			return blocks.RingScript(sn.Script, params...), nil
		}
		return blocks.RingOf(body, params...), nil
	}
	spec, ok := ops[head.text]
	if !ok {
		return nil, r.error(head.at, "unknown operator %q", head.text)
	}
	args := make([]blocks.Node, 0, len(l.items)-1)
	for _, item := range l.items[1:] {
		n, err := r.lower(item)
		if err != nil {
			return nil, err
		}
		args = append(args, n)
	}
	if len(args) < spec.min || (spec.max >= 0 && len(args) > spec.max) {
		if spec.max < 0 {
			return nil, r.error(l.at, "%s needs at least %d inputs, got %d", head.text, spec.min, len(args))
		}
		return nil, r.error(l.at, "%s needs %d inputs, got %d", head.text, spec.max, len(args))
	}
	b, err := spec.build(args)
	if err != nil {
		return nil, r.error(l.at, "%s: %v", head.text, err)
	}
	return b, nil
}

func (r *reader) lowerScript(forms []sexpr) (*blocks.Script, error) {
	script := blocks.NewScript()
	for _, form := range forms {
		n, err := r.lower(form)
		if err != nil {
			return nil, err
		}
		b, ok := n.(*blocks.Block)
		if !ok {
			return nil, r.error(form.pos(), "scripts contain command blocks, not %T", n)
		}
		script.Append(b)
	}
	return script, nil
}

// Expr parses a single expression (a reporter or command form).
func Expr(src string) (blocks.Node, error) {
	forms, r, err := readAll(src)
	if err != nil {
		return nil, err
	}
	if len(forms) != 1 {
		return nil, fmt.Errorf("expected exactly one expression, got %d", len(forms))
	}
	return r.lower(forms[0])
}

// Script parses a sequence of top-level command forms into a script.
func Script(src string) (*blocks.Script, error) {
	forms, r, err := readAll(src)
	if err != nil {
		return nil, err
	}
	return r.lowerScript(forms)
}

// Ops lists the operator vocabulary, sorted — the textual palette.
func Ops() []string {
	names := make([]string, 0, len(ops)+3)
	for n := range ops {
		names = append(names, n)
	}
	names = append(names, "do", "ring", "lambda")
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}
