package parse

import (
	"bytes"
	"testing"

	"repro/internal/interp"
	"repro/internal/vclock"
	"repro/internal/xmlio"
)

// concessionText is the full concession stand of Figures 7–9, written in
// the textual project language.
const concessionText = `
(project "concession-text"
  (global cups (list "Cup1" "Cup2" "Cup3"))
  (sprite "Pitcher"
    (at -150 100)
    (when green-flag (do
      (resettimer)
      (parallelforeach cup $cups _ (do
        (wait 3)
        (broadcast $cup))))))
  (sprite "Cup1" (when (receive "Cup1") (do (say "full!"))))
  (sprite "Cup2" (when (receive "Cup2") (do (say "full!"))))
  (sprite "Cup3" (when (receive "Cup3") (do (say "full!")))))
`

func TestProjectConcessionRunsAt3Timesteps(t *testing.T) {
	p, err := Project(concessionText)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.NewMachine(p, vclock.NewPaperInterference())
	m.GreenFlag()
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := m.Stage.Timer.Elapsed(); got != 3 {
		t.Errorf("textual concession stand = %d timesteps, want 3", got)
	}
	for _, cup := range []string{"Cup1", "Cup2", "Cup3"} {
		if m.Stage.Actor(cup).Saying != "full!" {
			t.Errorf("%s not filled", cup)
		}
	}
}

func TestProjectRoundTripsThroughXML(t *testing.T) {
	p, err := Project(concessionText)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := xmlio.EncodeProject(&buf, p); err != nil {
		t.Fatal(err)
	}
	p2, err := xmlio.DecodeProject(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.NewMachine(p2, vclock.NewPaperInterference())
	m.GreenFlag()
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := m.Stage.Timer.Elapsed(); got != 3 {
		t.Errorf("text → XML → machine = %d timesteps, want 3", got)
	}
}

func TestProjectWithDefineAndLocalsAndKeys(t *testing.T) {
	src := `
(project "features"
  (global score 0)
  (define (double n) reporter (do (report (+ $n $n))))
  (sprite "Player"
    (at 10 20)
    (local lives 3)
    (when green-flag (do (set score (call (lambda (x) (+ $x $x)) 21))))
    (when (key "space") (do (change score 1)))
    (when clone-start (do (removeclone)))))
`
	p, err := Project(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Customs["double"] == nil || !p.Customs["double"].IsReporter {
		t.Error("custom block lost")
	}
	sp := p.Sprite("Player")
	if sp == nil || sp.X != 10 || sp.Y != 20 {
		t.Fatal("sprite geometry lost")
	}
	if sp.Variables["lives"].String() != "3" {
		t.Error("local variable lost")
	}
	m := interp.NewMachine(p, nil)
	m.GreenFlag()
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	score, _ := m.GlobalFrame().Get("score")
	if score.String() != "42" {
		t.Errorf("score = %s", score)
	}
	m.PressKey("space")
	m.Run(0)
	score, _ = m.GlobalFrame().Get("score")
	if score.String() != "43" {
		t.Errorf("score after key = %s", score)
	}
}

func TestProjectErrors(t *testing.T) {
	bad := []string{
		``,
		`(+ 1 2)`,
		`(project)`,
		`(project "x" (zorp))`,
		`(project "x" 5)`,
		`(project "x" (global))`,
		`(project "x" (global "quoted" 1))`,
		`(project "x" (global g (+ 1 2)))`,
		`(project "x" (global g (numbers 1 3)))`,
		`(project "x" (sprite))`,
		`(project "x" (sprite "S" (zorp)))`,
		`(project "x" (sprite "S" (at 1)))`,
		`(project "x" (sprite "S" (at "a" "b")))`,
		`(project "x" (sprite "S" (when bogus (do))))`,
		`(project "x" (sprite "S" (when (key) (do))))`,
		`(project "x" (sprite "S" (when (zorp "a") (do))))`,
		`(project "x" (sprite "S" (when green-flag (+ 1 2))))`,
		`(project "x" (define (f) reporter 5))`,
		`(project "x" (define (f) maybe (do)))`,
		`(project "x" (define f reporter (do)))`,
		`(project "x") (project "y")`,
	}
	for _, src := range bad {
		if _, err := Project(src); err == nil {
			t.Errorf("Project(%q) should fail", src)
		}
	}
}
