package parse

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/blocks"
	"repro/internal/value"
)

// This file is the inverse of the reader: it prints block ASTs back into
// the textual language, so projects convert XML ↔ text and the parser can
// be property-tested as parse(print(x)) ≡ x.

// opNames inverts the ops table: opcode → textual operator. Built once at
// init from representative blocks.
var opNames = map[string]string{}

func init() {
	// Invert by probing each builder with placeholder inputs.
	for name, spec := range ops {
		n := spec.min
		if n < 1 {
			n = 1
		}
		args := make([]blocks.Node, n)
		for i := range args {
			args[i] = blocks.Var("x") // satisfies name positions too
		}
		b, err := spec.build(args)
		if err != nil {
			continue
		}
		// Prefer the shortest spelling when several map to one opcode
		// (none currently collide except via explicit aliases).
		if old, ok := opNames[b.Op]; !ok || len(name) < len(old) {
			opNames[b.Op] = name
		}
	}
}

// PrintNode renders an input node in the textual language.
func PrintNode(n blocks.Node) (string, error) {
	switch x := n.(type) {
	case blocks.Literal:
		return printValue(x.Val)
	case blocks.EmptySlot:
		return "_", nil
	case blocks.VarGet:
		return "$" + x.Name, nil
	case *blocks.Block:
		return printBlock(x)
	case blocks.ScriptNode:
		inner, err := printScriptBody(x.Script)
		if err != nil {
			return "", err
		}
		return "(do" + inner + ")", nil
	case blocks.RingNode:
		var body string
		var err error
		switch b := x.Body.(type) {
		case *blocks.Script:
			inner, e := printScriptBody(b)
			if e != nil {
				return "", e
			}
			body = "(do" + inner + ")"
		case blocks.Node:
			body, err = PrintNode(b)
			if err != nil {
				return "", err
			}
		default:
			return "", fmt.Errorf("empty ring body")
		}
		if len(x.Params) > 0 {
			return fmt.Sprintf("(lambda (%s) %s)", strings.Join(x.Params, " "), body), nil
		}
		return "(ring " + body + ")", nil
	case nil:
		return "_", nil
	}
	return "", fmt.Errorf("cannot print %T", n)
}

func printValue(v value.Value) (string, error) {
	switch x := v.(type) {
	case nil, value.Nothing:
		return "_", nil
	case value.Number:
		return x.String(), nil
	case value.Bool:
		return x.String(), nil
	case value.Text:
		return strconv.Quote(string(x)), nil
	case *value.List:
		parts := make([]string, 0, x.Len()+1)
		parts = append(parts, "list")
		for _, it := range x.Items() {
			s, err := printValue(it)
			if err != nil {
				return "", err
			}
			parts = append(parts, s)
		}
		return "(" + strings.Join(parts, " ") + ")", nil
	}
	return "", fmt.Errorf("cannot print a %s literal", v.Kind())
}

func printBlock(b *blocks.Block) (string, error) {
	// Name-position opcodes print their first input as a bare symbol.
	nameFirst := map[string]bool{
		"doSetVar": true, "doChangeVar": true, "doFor": true,
		"doForEach": true,
	}
	switch b.Op {
	case "doParallelForEach":
		name, ok := literalText(b.Input(0))
		if !ok {
			return "", fmt.Errorf("unprintable parallelForEach item var")
		}
		parallel := true
		if lit, ok := b.Input(4).(blocks.Literal); ok {
			if bv, ok2 := lit.Val.(value.Bool); ok2 {
				parallel = bool(bv)
			}
		}
		list, err := PrintNode(b.Input(1))
		if err != nil {
			return "", err
		}
		body, err := PrintNode(b.Input(3))
		if err != nil {
			return "", err
		}
		if parallel {
			par, err := PrintNode(b.Input(2))
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("(parallelforeach %s %s %s %s)", name, list, par, body), nil
		}
		return fmt.Sprintf("(seqforeach %s %s %s)", name, list, body), nil
	case "doDeclareVariables":
		parts := []string{"declare"}
		for i := range b.Inputs {
			name, ok := literalText(b.Input(i))
			if !ok {
				return "", fmt.Errorf("unprintable declaration")
			}
			parts = append(parts, name)
		}
		return "(" + strings.Join(parts, " ") + ")", nil
	case "reportMonadic":
		fn, ok := literalText(b.Input(0))
		if !ok {
			return "", fmt.Errorf("unprintable monadic selector")
		}
		if _, known := ops[fn]; !known {
			return "", fmt.Errorf("monadic %q has no textual operator", fn)
		}
		arg, err := PrintNode(b.Input(1))
		if err != nil {
			return "", err
		}
		return "(" + fn + " " + arg + ")", nil
	}
	name, ok := opNames[b.Op]
	if !ok {
		return "", fmt.Errorf("opcode %q has no textual operator", b.Op)
	}
	parts := []string{name}
	for i := range b.Inputs {
		if i == 0 && nameFirst[b.Op] {
			n, ok := literalText(b.Input(0))
			if !ok {
				return "", fmt.Errorf("unprintable name position in %s", b.Op)
			}
			parts = append(parts, n)
			continue
		}
		s, err := PrintNode(b.Input(i))
		if err != nil {
			return "", err
		}
		parts = append(parts, s)
	}
	return "(" + strings.Join(parts, " ") + ")", nil
}

func literalText(n blocks.Node) (string, bool) {
	if lit, ok := n.(blocks.Literal); ok && lit.Val != nil {
		return lit.Val.String(), true
	}
	return "", false
}

func printScriptBody(s *blocks.Script) (string, error) {
	if s == nil || len(s.Blocks) == 0 {
		return "", nil
	}
	var b strings.Builder
	for _, blk := range s.Blocks {
		line, err := printBlock(blk)
		if err != nil {
			return "", err
		}
		b.WriteString(" " + line)
	}
	return b.String(), nil
}

// PrintScript renders a script one command per line.
func PrintScript(s *blocks.Script) (string, error) {
	if s == nil {
		return "", nil
	}
	lines := make([]string, 0, len(s.Blocks))
	for _, blk := range s.Blocks {
		line, err := printBlock(blk)
		if err != nil {
			return "", err
		}
		lines = append(lines, line)
	}
	return strings.Join(lines, "\n"), nil
}

// PrintProject renders a whole project in the textual project form, with
// globals and sprites in stable order.
func PrintProject(p *blocks.Project) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "(project %q\n", p.Name)
	globals := make([]string, 0, len(p.Globals))
	for name := range p.Globals {
		globals = append(globals, name)
	}
	sort.Strings(globals)
	for _, name := range globals {
		v, err := printValue(p.Globals[name])
		if err != nil {
			return "", fmt.Errorf("global %q: %w", name, err)
		}
		if v == "_" {
			fmt.Fprintf(&b, "  (global %s)\n", name)
		} else {
			fmt.Fprintf(&b, "  (global %s %s)\n", name, v)
		}
	}
	customs := make([]string, 0, len(p.Customs))
	for name := range p.Customs {
		customs = append(customs, name)
	}
	sort.Strings(customs)
	for _, name := range customs {
		cb := p.Customs[name]
		kind := "command"
		if cb.IsReporter {
			kind = "reporter"
		}
		body, err := printScriptBody(cb.Body)
		if err != nil {
			return "", fmt.Errorf("custom %q: %w", name, err)
		}
		sig := append([]string{cb.Name}, cb.Params...)
		fmt.Fprintf(&b, "  (define (%s) %s (do%s))\n", strings.Join(sig, " "), kind, body)
	}
	for _, sp := range p.Sprites {
		fmt.Fprintf(&b, "  (sprite %q\n", sp.Name)
		if sp.X != 0 || sp.Y != 0 {
			fmt.Fprintf(&b, "    (at %s %s)\n", trimFloat(sp.X), trimFloat(sp.Y))
		}
		locals := make([]string, 0, len(sp.Variables))
		for name := range sp.Variables {
			locals = append(locals, name)
		}
		sort.Strings(locals)
		for _, name := range locals {
			v, err := printValue(sp.Variables[name])
			if err != nil {
				return "", fmt.Errorf("local %q: %w", name, err)
			}
			if v == "_" {
				fmt.Fprintf(&b, "    (local %s)\n", name)
			} else {
				fmt.Fprintf(&b, "    (local %s %s)\n", name, v)
			}
		}
		for _, hs := range sp.Scripts {
			hat := ""
			switch hs.Hat {
			case blocks.HatGreenFlag:
				hat = "green-flag"
			case blocks.HatCloneStart:
				hat = "clone-start"
			case blocks.HatKeyPress:
				hat = fmt.Sprintf("(key %q)", hs.Arg)
			case blocks.HatBroadcast:
				hat = fmt.Sprintf("(receive %q)", hs.Arg)
			}
			body, err := printScriptBody(hs.Script)
			if err != nil {
				return "", fmt.Errorf("sprite %q: %w", sp.Name, err)
			}
			fmt.Fprintf(&b, "    (when %s (do%s))\n", hat, body)
		}
		b.WriteString("  )\n")
	}
	b.WriteString(")\n")
	return b.String(), nil
}

func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
