package parse

import (
	"testing"

	"repro/internal/blocks"
	"repro/internal/demos"
	"repro/internal/interp"
	"repro/internal/value"
	"repro/internal/vclock"
)

func TestPrintNodeBasics(t *testing.T) {
	cases := []struct {
		n    blocks.Node
		want string
	}{
		{blocks.Num(3.5), "3.5"},
		{blocks.Txt("hi"), `"hi"`},
		{blocks.BoolLit(true), "true"},
		{blocks.Empty(), "_"},
		{blocks.Var("x"), "$x"},
		{blocks.Sum(blocks.Num(1), blocks.Num(2)), "(+ 1 2)"},
		{blocks.Map(blocks.RingOf(blocks.Product(blocks.Empty(), blocks.Num(10))),
			blocks.ListOf(blocks.Num(3), blocks.Num(7), blocks.Num(8))),
			"(map (ring (* _ 10)) (list 3 7 8))"},
		{blocks.SetVar("x", blocks.Num(5)), "(set x 5)"},
		{blocks.Monadic("sqrt", blocks.Num(2)), "(sqrt 2)"},
		{blocks.RingOf(blocks.Sum(blocks.Var("a"), blocks.Var("b")), "a", "b"),
			"(lambda (a b) (+ $a $b))"},
	}
	for _, c := range cases {
		got, err := PrintNode(c.n)
		if err != nil {
			t.Errorf("print %s: %v", c.n.Describe(), err)
			continue
		}
		if got != c.want {
			t.Errorf("print = %q, want %q", got, c.want)
		}
	}
}

func TestPrintErrors(t *testing.T) {
	if _, err := PrintNode(blocks.Reporter(blocks.NewBlock("snapWorkerLoop"))); err == nil {
		t.Error("internal opcode should be unprintable")
	}
	if _, err := PrintNode(blocks.Lit(&value.Opaque{Tag: "x"})); err == nil {
		t.Error("opaque literal should be unprintable")
	}
	if _, err := PrintNode(blocks.Monadic("zorp", blocks.Num(1))); err == nil {
		t.Error("unknown monadic selector should be unprintable")
	}
}

// roundTripNode checks parse(print(n)) evaluates identically to n.
func roundTripNode(t *testing.T, b *blocks.Block) {
	t.Helper()
	text, err := PrintNode(b)
	if err != nil {
		t.Fatalf("print %s: %v", b.Describe(), err)
	}
	back, err := Expr(text)
	if err != nil {
		t.Fatalf("reparse %q: %v", text, err)
	}
	m1 := interp.NewMachine(blocks.NewProject("a"), nil)
	v1, err1 := m1.EvalReporter(b)
	m2 := interp.NewMachine(blocks.NewProject("b"), nil)
	v2, err2 := m2.EvalReporter(back.(*blocks.Block))
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("round trip changed errors: %v vs %v", err1, err2)
	}
	if err1 == nil && !value.Equal(v1, v2) {
		t.Fatalf("round trip changed value: %s vs %s (text %q)", v1, v2, text)
	}
}

func TestRoundTripExpressions(t *testing.T) {
	for _, b := range []*blocks.Block{
		blocks.Sum(blocks.Product(blocks.Num(2), blocks.Num(3)), blocks.Num(4)),
		blocks.Map(blocks.RingOf(blocks.Product(blocks.Empty(), blocks.Num(10))),
			blocks.Numbers(blocks.Num(1), blocks.Num(5))),
		blocks.ParallelMap(blocks.RingOf(blocks.Sum(blocks.Empty(), blocks.Num(1))),
			blocks.Numbers(blocks.Num(1), blocks.Num(10)), blocks.Num(2)),
		blocks.Combine(blocks.Numbers(blocks.Num(1), blocks.Num(10)),
			blocks.RingOf(blocks.Sum(blocks.Empty(), blocks.Empty()))),
		blocks.Join(blocks.Txt("a"), blocks.Num(1), blocks.BoolLit(false)),
		blocks.Call(blocks.RingOf(blocks.Product(blocks.Var("n"), blocks.Var("n")), "n"),
			blocks.Num(9)),
	} {
		roundTripNode(t, b)
	}
}

// TestPrintProjectRoundTrip prints the concession stand and re-parses it;
// the reloaded project must reproduce the paper's 3 timesteps.
func TestPrintProjectRoundTrip(t *testing.T) {
	text, err := PrintProject(demos.Concession(true))
	if err != nil {
		t.Fatalf("print: %v", err)
	}
	back, err := Project(text)
	if err != nil {
		t.Fatalf("reparse: %v\n--- text ---\n%s", err, text)
	}
	m := interp.NewMachine(back, vclock.NewPaperInterference())
	m.GreenFlag()
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := m.Stage.Timer.Elapsed(); got != 3 {
		t.Errorf("printed+reparsed concession = %d timesteps, want 3\n%s", got, text)
	}
}

func TestPrintProjectWithCustomsAndLocals(t *testing.T) {
	p := blocks.NewProject("full")
	p.Globals["g"] = value.NewList(value.Number(1), value.Text("two"))
	p.Globals["empty"] = value.Nothing{}
	p.Customs["double"] = &blocks.CustomBlock{
		Name: "double", Params: []string{"n"}, IsReporter: true,
		Body: blocks.NewScript(blocks.Report(blocks.Sum(blocks.Var("n"), blocks.Var("n")))),
	}
	sp := p.AddSprite(blocks.NewSprite("S"))
	sp.X, sp.Y = 5, -7
	sp.Variables["lives"] = value.Number(3)
	sp.AddScript(blocks.HatKeyPress, "space", blocks.NewScript(
		blocks.ChangeVar("lives", blocks.Num(-1))))
	text, err := PrintProject(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Project(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if back.Customs["double"] == nil || len(back.Customs["double"].Params) != 1 {
		t.Error("custom block lost in round trip")
	}
	sp2 := back.Sprite("S")
	if sp2 == nil || sp2.X != 5 || sp2.Y != -7 {
		t.Error("sprite geometry lost")
	}
	if sp2.Variables["lives"].String() != "3" {
		t.Error("local lost")
	}
	g, ok := back.Globals["g"].(*value.List)
	if !ok || g.String() != "[1 two]" {
		t.Errorf("global list lost: %v", back.Globals["g"])
	}
}

func TestPrintScript(t *testing.T) {
	s := blocks.NewScript(
		blocks.DeclareLocal("x"),
		blocks.SetVar("x", blocks.Num(1)),
		blocks.Repeat(blocks.Num(3), blocks.Body(blocks.ChangeVar("x", blocks.Num(2)))),
	)
	text, err := PrintScript(s)
	if err != nil {
		t.Fatal(err)
	}
	want := "(declare x)\n(set x 1)\n(repeat 3 (do (change x 2)))"
	if text != want {
		t.Errorf("script = %q, want %q", text, want)
	}
	back, err := Script(text)
	if err != nil || back.Len() != 3 {
		t.Errorf("reparse: %v", err)
	}
}
