package parse

import (
	"strings"
	"testing"

	"repro/internal/blocks"
	"repro/internal/interp"
	"repro/internal/lint"
)

// FuzzExpr feeds arbitrary text to the parser: it must never panic, and
// anything it accepts must lower to a well-formed node that the evaluator
// either runs or rejects cleanly (no panics downstream either).
func FuzzExpr(f *testing.F) {
	for _, seed := range []string{
		"(+ 1 2)",
		"(map (ring (* _ 10)) (list 3 7 8))",
		"(parallelmap (ring (* _ 10)) (numbers 1 9) 4)",
		`(join "a" "b")`,
		"(lambda (x) (+ $x 1))",
		"(do (set x 1) (change x 2))",
		"((((((",
		")",
		"$",
		`"unterminated`,
		"(ring)",
		"; just a comment",
		"(if true (do (say \"hi\")))",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		node, err := Expr(src)
		if err != nil {
			return
		}
		b, ok := node.(*blocks.Block)
		if !ok {
			return
		}
		if b.Describe() == "" {
			t.Errorf("accepted input %q produced an indescribable block", src)
		}
		// Anything parsed must evaluate or fail cleanly within a small
		// budget (cap with a round limit — parsed programs may loop).
		m := interp.NewMachine(blocks.NewProject("fuzz"), nil)
		m.SliceOps = 200
		sp := blocks.NewSprite("S")
		m.SpawnScript(sp, m.Stage.AddActor("S", 0, 0), blocks.NewScript(b))
		_ = m.Run(50)
		m.StopAll()
		m.Step()
	})
}

// FuzzProject feeds arbitrary text to the whole-project reader — the
// entry point of the network ingestion path (POST /v1/run). It must never
// panic, and accepted projects must survive linting and a bounded run.
func FuzzProject(f *testing.F) {
	for _, seed := range []string{
		`(project "p" (sprite "S" (when green-flag (do (forward 1)))))`,
		`(project "p" (global n 3) (sprite "S" (at 10 20) (local x 0)
		   (when green-flag (do (change x 1)))))`,
		`(project "p" (define (double n) (report (* $n 2)))
		   (sprite "S" (when green-flag (do (say (double 21))))))`,
		`(project "p" (sprite "A") (sprite "B" (when key-press "space" (do (forward 1)))))`,
		`(project "p" (sprite "S" (when green-flag (do
		   (report (parallelmap (lambda (x) (* $x 2)) (numbers 1 9) 4))))))`,
		`(project`,
		`(project "p" (sprite))`,
		`(sprite "loose")`,
		`(project "p" (global))`,
		strings.Repeat("(", 500) + strings.Repeat(")", 500),
		"; only a comment",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Project(src)
		if err != nil {
			return
		}
		lint.Project(p)
		m := interp.NewMachine(p, nil)
		m.SliceOps = 200
		m.GreenFlag()
		_ = m.Run(50)
		m.StopAll()
		m.Step()
	})
}

// TestDeepNestingIsAnErrorNotACrash pins the maxNesting guard: megabytes
// of open parens used to exhaust the goroutine stack (fatal), now they
// parse-error.
func TestDeepNestingIsAnErrorNotACrash(t *testing.T) {
	for _, src := range []string{
		strings.Repeat("(", 1_000_000),
		strings.Repeat("(list ", 200_000) + "1" + strings.Repeat(")", 200_000),
	} {
		if _, err := Expr(src); err == nil {
			t.Error("deeply nested input parsed without error")
		} else if !strings.Contains(err.Error(), "nested deeper") {
			t.Errorf("want nesting-depth error, got: %v", err)
		}
		if _, err := Project(src); err == nil {
			t.Error("deeply nested project parsed without error")
		}
	}
	// The cap must not reject real programs of reasonable depth.
	ok := strings.Repeat("(join \"a\" ", 500) + "\"b\"" + strings.Repeat(")", 500)
	if _, err := Expr(ok); err != nil {
		t.Errorf("500-deep expression should parse: %v", err)
	}
}

// FuzzScript does the same for command sequences.
func FuzzScript(f *testing.F) {
	f.Add("(set x 1) (change x 2) (report $x)")
	f.Add("(declare a b) (set a (list)) (add 1 $a)")
	f.Add("(repeat 3 (do (forward 1)))")
	f.Fuzz(func(t *testing.T, src string) {
		script, err := Script(src)
		if err != nil {
			return
		}
		m := interp.NewMachine(blocks.NewProject("fuzz"), nil)
		m.SliceOps = 200
		sp := blocks.NewSprite("S")
		m.SpawnScript(sp, m.Stage.AddActor("S", 0, 0), script)
		_ = m.Run(50)
		m.StopAll()
		m.Step()
	})
}
