package parse

import (
	"testing"

	"repro/internal/blocks"
	"repro/internal/interp"
)

// FuzzExpr feeds arbitrary text to the parser: it must never panic, and
// anything it accepts must lower to a well-formed node that the evaluator
// either runs or rejects cleanly (no panics downstream either).
func FuzzExpr(f *testing.F) {
	for _, seed := range []string{
		"(+ 1 2)",
		"(map (ring (* _ 10)) (list 3 7 8))",
		"(parallelmap (ring (* _ 10)) (numbers 1 9) 4)",
		`(join "a" "b")`,
		"(lambda (x) (+ $x 1))",
		"(do (set x 1) (change x 2))",
		"((((((",
		")",
		"$",
		`"unterminated`,
		"(ring)",
		"; just a comment",
		"(if true (do (say \"hi\")))",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		node, err := Expr(src)
		if err != nil {
			return
		}
		b, ok := node.(*blocks.Block)
		if !ok {
			return
		}
		if b.Describe() == "" {
			t.Errorf("accepted input %q produced an indescribable block", src)
		}
		// Anything parsed must evaluate or fail cleanly within a small
		// budget (cap with a round limit — parsed programs may loop).
		m := interp.NewMachine(blocks.NewProject("fuzz"), nil)
		m.SliceOps = 200
		sp := blocks.NewSprite("S")
		m.SpawnScript(sp, m.Stage.AddActor("S", 0, 0), blocks.NewScript(b))
		_ = m.Run(50)
		m.StopAll()
		m.Step()
	})
}

// FuzzScript does the same for command sequences.
func FuzzScript(f *testing.F) {
	f.Add("(set x 1) (change x 2) (report $x)")
	f.Add("(declare a b) (set a (list)) (add 1 $a)")
	f.Add("(repeat 3 (do (forward 1)))")
	f.Fuzz(func(t *testing.T, src string) {
		script, err := Script(src)
		if err != nil {
			return
		}
		m := interp.NewMachine(blocks.NewProject("fuzz"), nil)
		m.SliceOps = 200
		sp := blocks.NewSprite("S")
		m.SpawnScript(sp, m.Stage.AddActor("S", 0, 0), script)
		_ = m.Run(50)
		m.StopAll()
		m.Step()
	})
}
