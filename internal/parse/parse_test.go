package parse

import (
	"testing"

	"repro/internal/blocks"
	_ "repro/internal/core" // parallel blocks for parsed programs
	"repro/internal/interp"
	"repro/internal/value"
)

// evalExpr parses and evaluates one expression.
func evalExpr(t *testing.T, src string) value.Value {
	t.Helper()
	n, err := Expr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	b, ok := n.(*blocks.Block)
	if !ok {
		t.Fatalf("%q did not lower to a block (%T)", src, n)
	}
	m := interp.NewMachine(blocks.NewProject("parse"), nil)
	v, err := m.EvalReporter(b)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestExpressions(t *testing.T) {
	cases := map[string]string{
		"(+ 1 2)":                            "3",
		"(* (- 10 4) 7)":                     "42",
		"(/ 7 2)":                            "3.5",
		"(mod 7 3)":                          "1",
		"(sqrt 49)":                          "7",
		"(round 2.6)":                        "3",
		"(< 1 2)":                            "true",
		"(and true (not false))":             "true",
		`(join "a" "b" "c")`:                 "abc",
		`(letter 2 "cat")`:                   "a",
		`(split "a b" " ")`:                  "[a b]",
		"(list 3 7 8)":                       "[3 7 8]",
		"(numbers 1 5)":                      "[1 2 3 4 5]",
		"(item 2 (list 5 6 7))":              "6",
		"(length (list 1 2))":                "2",
		"(contains (list 1 2) 2)":            "true",
		"(map (ring (* _ 10)) (list 3 7 8))": "[30 70 80]",
		"(keep (ring (> _ 1)) (list 1 2 3))": "[2 3]",
		"(combine (numbers 1 100) (ring (+ _ _)))":           "5050",
		"(call (lambda (a b) (+ $a $b)) 3 4)":                "7",
		"(parallelmap (ring (* _ 10)) (list 3 7 8) 4)":       "[30 70 80]",
		"(parallelmap (ring (* _ 10)) (list 3 7 8) _)":       "[30 70 80]",
		"(parallelcombine (numbers 1 100) (ring (+ _ _)) 4)": "5050",
		"(parallelkeep (ring (> _ 5)) (numbers 1 8) 2)":      "[6 7 8]",
	}
	for src, want := range cases {
		if got := evalExpr(t, src).String(); got != want {
			t.Errorf("%s = %s, want %s", src, got, want)
		}
	}
}

func TestFigure4Textually(t *testing.T) {
	// The textual spelling of Figure 4's program is one line.
	if got := evalExpr(t, "(map (ring (* _ 10)) (list 3 7 8))").String(); got != "[30 70 80]" {
		t.Errorf("Figure 4 = %s", got)
	}
}

func TestScriptParsing(t *testing.T) {
	script, err := Script(`
; sum the first ten numbers
(declare sum)
(set sum 0)
(for i 1 10 (do
    (change sum $i)))
(report $sum)
`)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.NewMachine(blocks.NewProject("p"), nil)
	v, err := m.RunScript(script)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "55" {
		t.Errorf("sum = %s", v)
	}
}

func TestMapReduceTextually(t *testing.T) {
	script, err := Script(`
(report (mapreduce
    (ring (list _ 1))
    (ring (combine _ (ring (+ _ _))))
    (split "b a b" " ")))
`)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.NewMachine(blocks.NewProject("p"), nil)
	v, err := m.RunScript(script)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "[[a 1] [b 2]]" {
		t.Errorf("mapreduce = %s", v)
	}
}

func TestParallelForEachTextually(t *testing.T) {
	script, err := Script(`
(declare acc)
(set acc (list))
(seqforeach x (numbers 1 3) (do (add (* $x $x) $acc)))
(report $acc)
`)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.NewMachine(blocks.NewProject("p"), nil)
	v, err := m.RunScript(script)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "[1 4 9]" {
		t.Errorf("squares = %s", v)
	}
}

func TestControlForms(t *testing.T) {
	script, err := Script(`
(declare n log)
(set n 0)
(set log (list))
(repeat 3 (do (change n 1)))
(ifelse (= $n 3)
    (do (add "three" $log))
    (do (add "not three" $log)))
(until (> $n 5) (do (change n 1)))
(if (> $n 5) (do (add "big" $log)))
(warp (do (change n 100)))
(report (join $n "/" (item 1 $log) "/" (item 2 $log)))
`)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.NewMachine(blocks.NewProject("p"), nil)
	v, err := m.RunScript(script)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "106/three/big" {
		t.Errorf("control forms = %s", v)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"(",
		")",
		"(+ 1",
		`("not an op" 1)`,
		"(zorp 1)",
		"(+ 1 2 3)",
		"(+ 1)",
		"(ring)",
		"(ring 1 2)",
		"(lambda x (+ 1 1))",
		`(lambda ("x") 1)`,
		"(lambda (x) 1 2)",
		"()",
		`(set 5 1)`,
		"($)",
		`"unterminated`,
		"(declare 5)",
		"(+ 1 2) (+ 3 4)", // Expr wants exactly one
	}
	for _, src := range bad {
		if _, err := Expr(src); err == nil {
			t.Errorf("Expr(%q) should fail", src)
		}
	}
	if _, err := Script("(+ 1 2) 5"); err == nil {
		t.Error("a bare literal is not a command")
	}
	if _, err := Script("(do (bogus))"); err == nil {
		t.Error("bad nested form should fail")
	}
}

func TestStringEscapes(t *testing.T) {
	v := evalExpr(t, `(join "a\nb" "\t" "q\"q")`)
	if v.String() != "a\nb\tq\"q" {
		t.Errorf("escapes = %q", v.String())
	}
}

func TestComments(t *testing.T) {
	v := evalExpr(t, `
; leading comment
(+ 1 ; inline comment
   2)`)
	if v.String() != "3" {
		t.Errorf("comments = %s", v)
	}
}

func TestOpsListing(t *testing.T) {
	names := Ops()
	if len(names) < 40 {
		t.Errorf("vocabulary too small: %d", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Errorf("ops not sorted at %d: %s <= %s", i, names[i], names[i-1])
		}
	}
}

func TestParsedProgramCodegens(t *testing.T) {
	// Parsed programs flow into the §6 pipeline like built ones.
	n, err := Expr("(parallelmap (ring (* _ 10)) (list 3 7 8) 4)")
	if err != nil {
		t.Fatal(err)
	}
	b := n.(*blocks.Block)
	if b.Op != "reportParallelMap" {
		t.Fatalf("op = %s", b.Op)
	}
	if _, ok := b.Input(0).(blocks.RingNode); !ok {
		t.Error("ring input should be a RingNode for codegen")
	}
}

func TestWhitespaceAndUnicode(t *testing.T) {
	v := evalExpr(t, "(join \"héllo\" \" \" \"wörld\")")
	if v.String() != "héllo wörld" {
		t.Errorf("unicode = %q", v.String())
	}
}
