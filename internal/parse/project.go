package parse

import (
	"fmt"

	"repro/internal/blocks"
	"repro/internal/value"
)

// This file extends the textual language from scripts to whole projects,
// so a complete Snap!-style project — sprites, hats, globals, custom
// blocks — can be written as text, converted to XML, or run directly:
//
//	(project "concession"
//	  (global cups (list "Cup1" "Cup2" "Cup3"))
//	  (sprite "Pitcher"
//	    (at -150 100)
//	    (when green-flag (do
//	      (resettimer)
//	      (parallelforeach cup $cups _ (do
//	        (wait 3)
//	        (broadcast $cup))))))
//	  (sprite "Cup1"
//	    (when (receive "Cup1") (do (say "full!")))))
//
// Hat forms: green-flag, (key "right arrow"), (receive "msg"), clone-start.

// Project parses a textual project definition.
func Project(src string) (*blocks.Project, error) {
	forms, r, err := readAll(src)
	if err != nil {
		return nil, err
	}
	if len(forms) != 1 {
		return nil, fmt.Errorf("expected exactly one (project ...) form, got %d forms", len(forms))
	}
	top, ok := forms[0].(list)
	if !ok || len(top.items) < 2 {
		return nil, fmt.Errorf("expected (project \"name\" ...)")
	}
	head, ok := top.items[0].(atom)
	if !ok || head.text != "project" {
		return nil, fmt.Errorf("expected (project ...), got %v", top.items[0])
	}
	nameAtom, ok := top.items[1].(atom)
	if !ok {
		return nil, r.error(top.items[1].pos(), "project name must be a string or symbol")
	}
	p := blocks.NewProject(nameAtom.text)
	for _, form := range top.items[2:] {
		l, ok := form.(list)
		if !ok || len(l.items) == 0 {
			return nil, r.error(form.pos(), "project bodies are (global ...), (define ...), or (sprite ...) forms")
		}
		kind, ok := l.items[0].(atom)
		if !ok {
			return nil, r.error(l.items[0].pos(), "expected a form keyword")
		}
		switch kind.text {
		case "global":
			if err := r.parseGlobal(p, l); err != nil {
				return nil, err
			}
		case "define":
			cb, err := r.parseDefine(l)
			if err != nil {
				return nil, err
			}
			p.Customs[cb.Name] = cb
		case "sprite":
			sp, err := r.parseSprite(l)
			if err != nil {
				return nil, err
			}
			p.AddSprite(sp)
		default:
			return nil, r.error(kind.at, "unknown project form %q", kind.text)
		}
	}
	return p, nil
}

// parseGlobal handles (global name initial-value?).
func (r *reader) parseGlobal(p *blocks.Project, l list) error {
	if len(l.items) < 2 || len(l.items) > 3 {
		return r.error(l.at, "global takes a name and an optional initial value")
	}
	nameAtom, ok := l.items[1].(atom)
	if !ok || nameAtom.str {
		return r.error(l.items[1].pos(), "global name must be a symbol")
	}
	if len(l.items) == 2 {
		p.Globals[nameAtom.text] = value.Nothing{}
		return nil
	}
	v, err := r.constValue(l.items[2])
	if err != nil {
		return err
	}
	p.Globals[nameAtom.text] = v
	return nil
}

// constValue evaluates the constant expressions allowed as initial values:
// literals and (list ...) of constants.
func (r *reader) constValue(s sexpr) (value.Value, error) {
	switch x := s.(type) {
	case atom:
		if x.str {
			return value.Text(x.text), nil
		}
		n, err := r.lowerAtom(x)
		if err != nil {
			return nil, err
		}
		if lit, ok := n.(blocks.Literal); ok {
			return lit.Val, nil
		}
		return nil, r.error(x.at, "globals take constant initial values, not %q", x.text)
	case list:
		if len(x.items) == 0 {
			return nil, r.error(x.at, "empty form")
		}
		head, ok := x.items[0].(atom)
		if !ok || head.text != "list" {
			return nil, r.error(x.at, "globals take constants or (list ...) initial values")
		}
		items := make([]value.Value, 0, len(x.items)-1)
		for _, item := range x.items[1:] {
			v, err := r.constValue(item)
			if err != nil {
				return nil, err
			}
			items = append(items, v)
		}
		// AdoptSlice turns a long homogeneous literal (a data-file-sized
		// numeric global) into a columnar list in the shared AST.
		return value.AdoptSlice(items), nil
	}
	return nil, r.error(s.pos(), "bad constant")
}

// parseDefine handles (define (name params...) reporter|command body-do).
func (r *reader) parseDefine(l list) (*blocks.CustomBlock, error) {
	if len(l.items) != 4 {
		return nil, r.error(l.at, "define takes (name params...), reporter|command, and a (do ...) body")
	}
	sig, ok := l.items[1].(list)
	if !ok || len(sig.items) == 0 {
		return nil, r.error(l.items[1].pos(), "define needs a (name params...) signature")
	}
	cb := &blocks.CustomBlock{}
	for i, item := range sig.items {
		a, ok := item.(atom)
		if !ok || a.str {
			return nil, r.error(item.pos(), "signature elements must be symbols")
		}
		if i == 0 {
			cb.Name = a.text
		} else {
			cb.Params = append(cb.Params, a.text)
		}
	}
	kindAtom, ok := l.items[2].(atom)
	if !ok || (kindAtom.text != "reporter" && kindAtom.text != "command") {
		return nil, r.error(l.items[2].pos(), "define kind must be reporter or command")
	}
	cb.IsReporter = kindAtom.text == "reporter"
	body, err := r.lower(l.items[3])
	if err != nil {
		return nil, err
	}
	sn, ok := body.(blocks.ScriptNode)
	if !ok {
		return nil, r.error(l.items[3].pos(), "define body must be a (do ...) form")
	}
	cb.Body = sn.Script
	return cb, nil
}

// parseSprite handles (sprite "Name" (at x y)? (local name val?)* (when hat script)*).
func (r *reader) parseSprite(l list) (*blocks.Sprite, error) {
	if len(l.items) < 2 {
		return nil, r.error(l.at, "sprite needs a name")
	}
	nameAtom, ok := l.items[1].(atom)
	if !ok {
		return nil, r.error(l.items[1].pos(), "sprite name must be a string")
	}
	sp := blocks.NewSprite(nameAtom.text)
	for _, form := range l.items[2:] {
		fl, ok := form.(list)
		if !ok || len(fl.items) == 0 {
			return nil, r.error(form.pos(), "sprite bodies are (at ...), (local ...), or (when ...) forms")
		}
		kind, ok := fl.items[0].(atom)
		if !ok {
			return nil, r.error(fl.items[0].pos(), "expected a form keyword")
		}
		switch kind.text {
		case "at":
			if len(fl.items) != 3 {
				return nil, r.error(fl.at, "at takes x and y")
			}
			x, errX := r.constValue(fl.items[1])
			y, errY := r.constValue(fl.items[2])
			if errX != nil || errY != nil {
				return nil, r.error(fl.at, "at takes numeric constants")
			}
			xn, errX := value.ToNumber(x)
			yn, errY := value.ToNumber(y)
			if errX != nil || errY != nil {
				return nil, r.error(fl.at, "at takes numeric constants")
			}
			sp.X, sp.Y = float64(xn), float64(yn)
		case "local":
			if len(fl.items) < 2 || len(fl.items) > 3 {
				return nil, r.error(fl.at, "local takes a name and an optional initial value")
			}
			na, ok := fl.items[1].(atom)
			if !ok || na.str {
				return nil, r.error(fl.items[1].pos(), "local name must be a symbol")
			}
			if len(fl.items) == 3 {
				v, err := r.constValue(fl.items[2])
				if err != nil {
					return nil, err
				}
				sp.Variables[na.text] = v
			} else {
				sp.Variables[na.text] = value.Nothing{}
			}
		case "when":
			if len(fl.items) != 3 {
				return nil, r.error(fl.at, "when takes a hat and a (do ...) script")
			}
			hat, arg, err := r.parseHat(fl.items[1])
			if err != nil {
				return nil, err
			}
			body, err := r.lower(fl.items[2])
			if err != nil {
				return nil, err
			}
			sn, ok := body.(blocks.ScriptNode)
			if !ok {
				return nil, r.error(fl.items[2].pos(), "when body must be a (do ...) form")
			}
			sp.AddScript(hat, arg, sn.Script)
		default:
			return nil, r.error(kind.at, "unknown sprite form %q", kind.text)
		}
	}
	return sp, nil
}

func (r *reader) parseHat(s sexpr) (blocks.HatKind, string, error) {
	switch x := s.(type) {
	case atom:
		switch x.text {
		case "green-flag":
			return blocks.HatGreenFlag, "", nil
		case "clone-start":
			return blocks.HatCloneStart, "", nil
		}
		return 0, "", r.error(x.at, "unknown hat %q (green-flag, clone-start, (key ...), (receive ...))", x.text)
	case list:
		if len(x.items) != 2 {
			return 0, "", r.error(x.at, "hat forms take one argument")
		}
		kind, ok := x.items[0].(atom)
		if !ok {
			return 0, "", r.error(x.items[0].pos(), "expected key or receive")
		}
		arg, ok := x.items[1].(atom)
		if !ok {
			return 0, "", r.error(x.items[1].pos(), "hat argument must be a string")
		}
		switch kind.text {
		case "key":
			return blocks.HatKeyPress, arg.text, nil
		case "receive":
			return blocks.HatBroadcast, arg.text, nil
		}
		return 0, "", r.error(kind.at, "unknown hat form %q", kind.text)
	}
	return 0, "", r.error(s.pos(), "bad hat")
}
