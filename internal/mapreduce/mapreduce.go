// Package mapreduce implements the MapReduce engine behind the paper's
// mapReduce block (§3.4): a map phase over key/value pairs, a sort of the
// intermediate results by key ("as required by the semantics of
// MapReduce", footnote 6), grouping, and a reduce phase — with both map and
// reduce executing in parallel across workers. "Although conceptually
// simple, MapReduce implementations can be quite complex to set up and use.
// Fortunately, these details are hidden in the implementation."
package mapreduce

import (
	"fmt"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/value"
	"repro/internal/workers"
)

// KVP is a key/value pair, the record type flowing through every phase —
// the struct KVP of the paper's generated kvp.h (Listings 6–7).
type KVP struct {
	Key string
	Val value.Value
}

// String renders "key: value".
func (k KVP) String() string {
	if k.Val == nil {
		return k.Key + ":"
	}
	return k.Key + ": " + k.Val.String()
}

// Mapper transforms one input item into zero or more intermediate pairs.
// The paper's mappers are one-in-one-out ("the map function is executed for
// each item in the supplied list, mapping the item to a value"); returning
// a slice additionally supports the general Hadoop-style contract.
type Mapper func(item value.Value) ([]KVP, error)

// Reducer folds all values that share a key into one value. "Unlike the map
// function, the computation it performs may depend upon previous items."
type Reducer func(key string, vals *value.List) (value.Value, error)

// Config tunes a run.
type Config struct {
	// Workers is the parallelism of the map and reduce phases;
	// 0 means workers.DefaultWorkers().
	Workers int
	// Label tags the run's trace span (see internal/obs); the mapReduce
	// block passes the owning session's trace ID through here.
	Label string
}

// Result is the output of a run: one reduced pair per distinct key, sorted
// by key — the "sorted list of unique words ... with the number of times
// the words appear" of Figure 12.
type Result []KVP

// List converts the result to a Snap! list of (key value) pairs. All the
// pair lists are carved out of one backing array (capped sub-slices, so a
// pair growing past its two cells reallocates privately instead of
// clobbering its neighbor).
func (r Result) List() *value.List {
	backing := make([]value.Value, 2*len(r))
	outer := make([]value.Value, len(r))
	for i, kv := range r {
		pair := backing[2*i : 2*i+2 : 2*i+2]
		pair[0], pair[1] = value.Text(kv.Key), kv.Val
		outer[i] = value.AdoptSlice(pair)
	}
	return value.AdoptSlice(outer)
}

// Strings renders each pair.
func (r Result) Strings() []string {
	out := make([]string, len(r))
	for i, kv := range r {
		out[i] = kv.String()
	}
	return out
}

// Run executes the full pipeline: parallel map, sort by key, group,
// parallel reduce. Items cross the worker boundary by structured clone in
// both phases, matching the Web-Worker discipline of §4.
func Run(input *value.List, m Mapper, r Reducer, cfg Config) (Result, error) {
	if m == nil {
		m = Identity
	}
	if r == nil {
		r = IdentityReduce
	}
	w := cfg.Workers
	if w <= 0 {
		w = workers.DefaultWorkers()
	}
	// Columnar fast path: a column-backed input with column-native
	// kernels runs the whole pipeline over flat arrays (see columnar.go).
	if plan, ok := planColumnRun(input, m, r); ok {
		return plan.run(w, cfg)
	}
	// Phase telemetry: one atomic load up front; everything else only
	// runs (and only allocates) while the observability switch is on.
	tracing := obs.Enabled()
	var tStart, tMapDone, tShuffleDone time.Time
	if tracing {
		obs.MRRuns.Inc()
		tStart = time.Now()
	}
	mid, err := mapPhase(input, m, w)
	if err != nil {
		return nil, err
	}
	if tracing {
		tMapDone = time.Now()
		obs.MRPhaseSeconds.With("map").Observe(tMapDone.Sub(tStart).Seconds())
	}
	// "The elements of the intermediate result are sorted by the value
	// of the key in between the map function and the reduce function"
	// (footnote 6). Hash-group first and sort only the distinct keys:
	// the observable output — keys in sorted order, each key's values in
	// map-emission order — is identical to stable-sorting all n records,
	// but the sort is over k distinct keys instead of n pairs, which for
	// low-cardinality workloads (word count, the single-key climate
	// average) removes the dominant O(n log n) term of the shuffle.
	groups := groupByKey(mid)
	if tracing {
		tShuffleDone = time.Now()
		obs.MRPhaseSeconds.With("shuffle").Observe(tShuffleDone.Sub(tMapDone).Seconds())
		if skew, ok := bucketSkew(groups, len(mid)); ok {
			obs.MRBucketSkew.Observe(skew)
		}
	}
	out, err := reducePhase(groups, r, w)
	if tracing {
		end := time.Now()
		obs.MRPhaseSeconds.With("reduce").Observe(end.Sub(tShuffleDone).Seconds())
		status := "ok"
		if err != nil {
			status = "error"
		}
		obs.RecordSpan(obs.Span{
			ID:    cfg.Label,
			Kind:  "mapReduce",
			Start: tStart,
			Dur:   end.Sub(tStart),
			Attrs: []obs.Attr{
				obs.AttrInt("items", int64(input.Len())),
				obs.AttrInt("pairs", int64(len(mid))),
				obs.AttrInt("keys", int64(len(groups))),
				obs.AttrInt("workers", int64(w)),
				{Key: "status", Val: status},
			},
		})
	}
	return out, err
}

// RunSeq executes the whole pipeline synchronously on the calling
// goroutine with direct single-result kernel calls (the compile tier's Fn
// shape), fusing map and shuffle into one pass. It exists for the
// mapReduce block's small-input fast path: Run with Workers 1 still pays a
// per-item argument slice, an intermediate KVP slice per call, and a fresh
// call environment inside the adapter closures; RunSeq calls each kernel
// with one reused argument buffer and buckets the pair as it is emitted.
//
// mcall is a keyed kernel with the block's mapper convention already
// applied (compile.SeqMapperRing); rcall is called with each key's value
// list. Observable behavior — item/value clone discipline, panic
// containment, error wording, key order — is pin-identical to
// Run(input, RingMapper(m), RingReducer(r), Config{Workers: 1}).
//
// RunSeq records no telemetry; callers fall back to Run when the
// observability switch is on so spans and phase metrics stay complete.
func RunSeq(input *value.List, mcall func(args []value.Value) (string, value.Value, error), rcall func(args []value.Value) (value.Value, error)) (out Result, err error) {
	// Items() on a column-backed input materializes the memoized boxed
	// view once — the same one-boxing-per-element cost a boxed list paid
	// at construction — and CloneValue's scalar elision keeps the per-call
	// clone free. Boxing per iteration instead (closures over the raw
	// column) measures strictly worse here: the kernels take []Value args,
	// so every element gets boxed either way, and the view is boxed once.
	items := input.Items()
	n := len(items)
	// One recover for the whole run replaces the per-call defer of
	// safeMap/safeReduce; the cursors pin which call blew up so the error
	// text stays identical.
	phase, cur, curKey := "mapper", 0, ""
	defer func() {
		if r := recover(); r != nil {
			inner := fmt.Errorf("%s panic: %v", phase, r)
			if phase == "mapper" {
				err = fmt.Errorf("map item %d: %w", cur+1, inner)
			} else {
				err = fmt.Errorf("reduce key %q: %w", curKey, inner)
			}
			out = nil
		}
	}()
	// Every kernel call emits exactly one pair, so the pair count is n and
	// the emission buffers fit the sync path's stack arrays.
	var argv [1]value.Value
	var keyStore [smallShuffle]string
	var valStore [smallShuffle]value.Value
	keys, vals := keyStore[:0], valStore[:0]
	if n > smallShuffle {
		keys, vals = make([]string, 0, n), make([]value.Value, 0, n)
	}
	for ; cur < n; cur++ {
		argv[0] = value.CloneValue(items[cur])
		key, v, cerr := mcall(argv[:])
		if cerr != nil {
			return nil, fmt.Errorf("map item %d: %w", cur+1, cerr)
		}
		keys = append(keys, key)
		vals = append(vals, value.CloneValue(v))
	}
	// Shuffle: count each key's pairs (linear scan with a last-pair memo,
	// as groupSmall), sort the distinct keys, then lay every group's values
	// out in one backing array in emission order. The per-group lists are
	// capped sub-slices, so a reducer growing its list reallocates
	// privately.
	type bucket struct {
		key          string
		n, off, fill int
	}
	var bstore [smallShuffle]bucket
	buckets := bstore[:0]
	last := -1
	for _, k := range keys {
		g := last
		if g < 0 || buckets[g].key != k {
			g = -1
			for j := range buckets {
				if buckets[j].key == k {
					g = j
					break
				}
			}
			if g < 0 {
				g = len(buckets)
				buckets = append(buckets, bucket{key: k})
			}
			last = g
		}
		buckets[g].n++
	}
	slices.SortFunc(buckets, func(a, b bucket) int { return strings.Compare(a.key, b.key) })
	off := 0
	for j := range buckets {
		buckets[j].off = off
		off += buckets[j].n
	}
	backing := make([]value.Value, n)
	last = -1
	for i, k := range keys {
		g := last
		if g < 0 || buckets[g].key != k {
			for j := range buckets {
				if buckets[j].key == k {
					g = j
					break
				}
			}
			last = g
		}
		b := &buckets[g]
		backing[b.off+b.fill] = vals[i]
		b.fill++
	}
	phase = "reducer"
	out = make(Result, len(buckets))
	for i := range buckets {
		b := &buckets[i]
		curKey = b.key
		argv[0] = value.AdoptSlice(backing[b.off : b.off+b.n : b.off+b.n])
		v, cerr := rcall(argv[:])
		if cerr != nil {
			return nil, fmt.Errorf("reduce key %q: %w", b.key, cerr)
		}
		if v == nil {
			v = value.TheNothing
		}
		out[i] = KVP{Key: b.key, Val: value.CloneValue(v)}
	}
	return out, nil
}

// bucketSkew measures shuffle imbalance: the largest key group's size
// over the mean group size. 1 is perfectly balanced; the single-key
// pattern (climate average) reports the group count.
func bucketSkew(groups []group, pairs int) (float64, bool) {
	if len(groups) == 0 || pairs == 0 {
		return 0, false
	}
	maxLen := 0
	for _, g := range groups {
		if n := g.vals.Len(); n > maxLen {
			maxLen = n
		}
	}
	mean := float64(pairs) / float64(len(groups))
	return float64(maxLen) / mean, true
}

// MapOnly runs just the parallel map phase, returning the unsorted
// intermediate pairs. Package dist uses it to run the map phase locally on
// each simulated cluster node before shuffling by key.
func MapOnly(input *value.List, m Mapper, workers int) ([]KVP, error) {
	if m == nil {
		m = Identity
	}
	if workers <= 0 {
		workers = 1
	}
	return mapPhase(input, m, workers)
}

// ReduceSorted sorts intermediate pairs by key, groups them, and runs the
// parallel reduce phase — the second half of Run, exposed for distributed
// execution.
func ReduceSorted(mid []KVP, r Reducer, workers int) (Result, error) {
	if r == nil {
		r = IdentityReduce
	}
	if workers <= 0 {
		workers = 1
	}
	// Same hash-group-then-sort-keys shuffle as Run; mid is left
	// untouched, so no defensive copy is needed.
	return reducePhase(groupByKey(mid), r, workers)
}

// phaseGrain is how many records one executor claims per fetch-add in the
// map and reduce phases, amortizing the shared counter the way the worker
// pool's dynamic assignment does; small enough that skewed groups still
// balance across workers.
func phaseGrain(n, w int) int {
	g := n / (w * 4)
	if g < 1 {
		g = 1
	}
	if g > 64 {
		g = 64
	}
	return g
}

// runPhase executes fn(i) for i in [0, n) across w executors on the
// persistent worker pool, each claiming grain-sized chunks off a shared
// counter. fn returning an error stops that executor; the first error in
// executor order is returned.
func runPhase(n, w int, fn func(i int) error) error {
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	if n == 0 {
		return nil
	}
	// One executor needs no pool dispatch, shared counter, or WaitGroup —
	// a plain loop on the calling goroutine has the same semantics.
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	grain := phaseGrain(n, w)
	errs := make([]error, w)
	var next atomic.Int64
	var wg sync.WaitGroup
	pool := workers.SharedPool()
	wg.Add(w)
	for k := 0; k < w; k++ {
		worker := k
		pool.Submit(func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(grain))) - grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					if err := fn(i); err != nil {
						errs[worker] = err
						return
					}
				}
			}
		})
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func mapPhase(input *value.List, m Mapper, w int) ([]KVP, error) {
	n := input.Len()
	items := input.Items()
	if w <= 1 || n <= 1 {
		// Sequential map: emit straight into the intermediate slice
		// instead of per-item parts that are flattened afterwards.
		mid := make([]KVP, 0, n)
		for i := 0; i < n; i++ {
			kvs, err := safeMap(m, value.CloneValue(items[i]))
			if err != nil {
				return nil, fmt.Errorf("map item %d: %w", i+1, err)
			}
			for j := range kvs {
				kvs[j].Val = value.CloneValue(kvs[j].Val)
			}
			mid = append(mid, kvs...)
		}
		return mid, nil
	}
	parts := make([][]KVP, n)
	err := runPhase(n, w, func(i int) error {
		item := items[i]
		kvs, err := safeMap(m, value.CloneValue(item))
		if err != nil {
			return fmt.Errorf("map item %d: %w", i+1, err)
		}
		for j := range kvs {
			kvs[j].Val = value.CloneValue(kvs[j].Val)
		}
		parts[i] = kvs
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	mid := make([]KVP, 0, total)
	for _, p := range parts {
		mid = append(mid, p...)
	}
	return mid, nil
}

func safeMap(m Mapper, item value.Value) (kvs []KVP, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("mapper panic: %v", r)
		}
	}()
	return m(item)
}

type group struct {
	key  string
	vals *value.List
}

// smallShuffle is the pair count below which the shuffle groups by linear
// scan instead of a hash index: for a handful of distinct keys the scan is
// cache-resident and skips the map allocation and per-key hashing.
const smallShuffle = 64

// groupByKey is the shuffle: it buckets the intermediate pairs by key in
// one pass (appending each value in emission order) and then sorts the
// distinct keys. Equivalent to stable-sorting mid by key and grouping
// adjacent runs, but the comparison sort touches only the k unique keys.
func groupByKey(mid []KVP) []group {
	var groups []group
	if len(mid) <= smallShuffle {
		groups = groupSmall(mid)
	} else {
		groups = groupHashed(mid)
	}
	slices.SortFunc(groups, func(a, b group) int { return strings.Compare(a.key, b.key) })
	return groups
}

// groupSmall buckets by scanning the group slice directly. The first pass
// counts each key's pairs so the second allocates every value list at its
// exact size; the memo of the previous pair's group keeps single-key and
// run-keyed workloads O(n).
func groupSmall(mid []KVP) []group {
	type bucket struct {
		key string
		n   int
	}
	var store [smallShuffle]bucket
	counts := store[:0]
	last := -1
	for _, kv := range mid {
		g := last
		if g < 0 || counts[g].key != kv.Key {
			g = -1
			for j := range counts {
				if counts[j].key == kv.Key {
					g = j
					break
				}
			}
			if g < 0 {
				g = len(counts)
				counts = append(counts, bucket{key: kv.Key})
			}
			last = g
		}
		counts[g].n++
	}
	groups := make([]group, len(counts))
	for i, b := range counts {
		groups[i] = group{key: b.key, vals: value.NewListCap(b.n)}
	}
	last = -1
	for _, kv := range mid {
		g := last
		if g < 0 || groups[g].key != kv.Key {
			for j := range groups {
				if groups[j].key == kv.Key {
					g = j
					break
				}
			}
			last = g
		}
		groups[g].vals.Add(kv.Val)
	}
	return groups
}

func groupHashed(mid []KVP) []group {
	idx := make(map[string]int)
	var groups []group
	// last memoizes the group of the previous pair: mappers that emit one
	// key for everything (the global-average pattern) or keys in runs pay
	// one map lookup per run instead of one per pair.
	last := -1
	for _, kv := range mid {
		g := last
		if g < 0 || groups[g].key != kv.Key {
			var ok bool
			g, ok = idx[kv.Key]
			if !ok {
				g = len(groups)
				idx[kv.Key] = g
				groups = append(groups, group{key: kv.Key, vals: value.NewList()})
			}
			last = g
		}
		groups[g].vals.Add(kv.Val)
	}
	return groups
}

func reducePhase(groups []group, r Reducer, w int) (Result, error) {
	n := len(groups)
	out := make(Result, n)
	err := runPhase(n, w, func(i int) error {
		g := groups[i]
		// The group lists are engine-built in groupByKey and their values
		// were already cloned when they crossed out of the map phase, so
		// the reducer sees private data without another defensive clone.
		v, err := safeReduce(r, g.key, g.vals)
		if err != nil {
			return fmt.Errorf("reduce key %q: %w", g.key, err)
		}
		if v == nil {
			v = value.TheNothing
		}
		out[i] = KVP{Key: g.key, Val: value.CloneValue(v)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func safeReduce(r Reducer, key string, vals *value.List) (v value.Value, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("reducer panic: %v", rec)
		}
	}()
	return r(key, vals)
}

// --- stock mappers and reducers ---

// Identity maps each item to itself under its display string as key — the
// identity function §3.4 notes "passes its input argument through
// unchanged".
func Identity(item value.Value) ([]KVP, error) {
	return []KVP{{Key: item.String(), Val: item}}, nil
}

// SingleKey maps every item to one shared key (the empty string), putting
// the whole dataset in one reduction group — how the climate example's
// single average is expressed.
func SingleKey(item value.Value) ([]KVP, error) {
	return []KVP{{Key: "", Val: item}}, nil
}

// WordCount maps a word to (word, 1) — the canonical example of Figure 11.
func WordCount(item value.Value) ([]KVP, error) {
	return []KVP{{Key: item.String(), Val: value.NumInt(1)}}, nil
}

// FahrenheitToCelsius maps a °F reading to ("", °C) for a global average,
// the Figure 13 mapper: out->val = ((5 * (in->val - 32)) / 9).
func FahrenheitToCelsius(item value.Value) ([]KVP, error) {
	f, err := value.ToNumber(item)
	if err != nil {
		return nil, err
	}
	return []KVP{{Key: "", Val: (5 * (f - 32)) / 9}}, nil
}

// IdentityReduce reports the group's values unchanged (a single value
// collapses to itself).
func IdentityReduce(key string, vals *value.List) (value.Value, error) {
	if vals.Len() == 1 {
		return vals.MustItem(1), nil
	}
	return vals, nil
}

// SumReduce adds the group's values — the word-count reducer.
func SumReduce(key string, vals *value.List) (value.Value, error) {
	var sum value.Number
	for _, v := range vals.Items() {
		n, err := value.ToNumber(v)
		if err != nil {
			return nil, err
		}
		sum += n
	}
	return sum, nil
}

// CountReduce reports the group's size.
func CountReduce(key string, vals *value.List) (value.Value, error) {
	return value.NumInt(vals.Len()), nil
}

// AvgReduce averages the group — the Figure 20 reducer. For small groups
// it uses the same recursive running-average formulation as the paper's
// generated avg() — avg(a, n) = (a[0] + (n-1)·avg(a+1, n-1)) / n — with the
// parenthesization corrected: the C in Listing 6 reads
// `*a + ((count-1)*avg(...))/count`, which drops the division of the first
// element and is not an average. Large groups switch to an iterative mean
// to bound recursion depth.
func AvgReduce(key string, vals *value.List) (value.Value, error) {
	fs, err := vals.Floats()
	if err != nil {
		return nil, err
	}
	if len(fs) == 0 {
		return value.Number(0), nil
	}
	if len(fs) > 4096 {
		var sum float64
		for _, f := range fs {
			sum += f
		}
		return value.Number(sum / float64(len(fs))), nil
	}
	return value.Number(recAvg(fs)), nil
}

func recAvg(a []float64) float64 {
	if len(a) == 1 {
		return a[0]
	}
	return (a[0] + float64(len(a)-1)*recAvg(a[1:])) / float64(len(a))
}
