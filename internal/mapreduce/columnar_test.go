package mapreduce

import (
	"strings"
	"testing"

	"repro/internal/value"
)

// boxedCopy rebuilds a columnar list as a plain boxed list with identical
// contents, so the same run can be driven down the generic pipeline.
func boxedCopy(l *value.List) *value.List {
	return value.NewList(l.Items()...)
}

// TestColumnarFastPathParity runs every registered (mapper, reducer)
// kernel pair over a column-backed input and over a boxed copy of the same
// data; the columnar plan engages only for the former, and the results
// must agree pair for pair.
func TestColumnarFastPathParity(t *testing.T) {
	nums := value.FromFloats([]float64{32, 212, 122, 32, -40, 98.6})
	words := value.FromStrings(strings.Fields("the quick fox the lazy dog the end"))
	cases := []struct {
		name  string
		input *value.List
		m     Mapper
		r     Reducer
	}{
		{"wordcount-strings", words, WordCount, SumReduce},
		{"wordcount-floats", nums, WordCount, SumReduce},
		{"climate", nums, FahrenheitToCelsius, AvgReduce},
		{"identity", nums, Identity, IdentityReduce},
		{"singlekey-count", nums, SingleKey, CountReduce},
		{"singlekey-sum", nums, SingleKey, SumReduce},
		{"identity-avg", nums, Identity, AvgReduce},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, ok := planColumnRun(c.input, c.m, c.r); !ok {
				t.Fatal("columnar plan did not engage for a registered kernel pair")
			}
			for _, w := range []int{1, 4} {
				fast, err := Run(c.input, c.m, c.r, Config{Workers: w})
				if err != nil {
					t.Fatal(err)
				}
				slow, err := Run(boxedCopy(c.input), c.m, c.r, Config{Workers: w})
				if err != nil {
					t.Fatal(err)
				}
				fs, ss := fast.Strings(), slow.Strings()
				if len(fs) != len(ss) {
					t.Fatalf("w=%d: columnar %v vs boxed %v", w, fs, ss)
				}
				for i := range fs {
					if fs[i] != ss[i] {
						t.Fatalf("w=%d row %d: columnar %q vs boxed %q", w, i, fs[i], ss[i])
					}
				}
			}
		})
	}
}

// TestColumnarPlanRefusals pins when the fast path must NOT engage: boxed
// input, unregistered kernels, and a column kind the mapper has no kernel
// for all fall back to the generic pipeline.
func TestColumnarPlanRefusals(t *testing.T) {
	nums := value.FromFloats([]float64{1, 2, 3})
	if _, ok := planColumnRun(value.NewList(value.Number(1)), WordCount, SumReduce); ok {
		t.Error("plan engaged for a boxed input")
	}
	closure := func(item value.Value) ([]KVP, error) { return Identity(item) }
	if _, ok := planColumnRun(nums, closure, SumReduce); ok {
		t.Error("plan engaged for an unregistered mapper")
	}
	if _, ok := planColumnRun(nums, WordCount, func(k string, vs *value.List) (value.Value, error) {
		return SumReduce(k, vs)
	}); ok {
		t.Error("plan engaged for an unregistered reducer")
	}
}

// TestColumnarErrorParity pins failure wording across the two pipelines: a
// text column with a non-numeric cell must fail FahrenheitToCelsius with
// the generic path's exact error string.
func TestColumnarErrorParity(t *testing.T) {
	bad := value.FromStrings([]string{"32", "hot", "212"})
	_, fastErr := Run(bad, FahrenheitToCelsius, AvgReduce, Config{Workers: 2})
	_, slowErr := Run(boxedCopy(bad), FahrenheitToCelsius, AvgReduce, Config{Workers: 2})
	if fastErr == nil || slowErr == nil {
		t.Fatalf("expected errors, got %v / %v", fastErr, slowErr)
	}
	if fastErr.Error() != slowErr.Error() {
		t.Fatalf("error wording diverged:\n  columnar: %s\n  boxed:    %s", fastErr, slowErr)
	}
}
