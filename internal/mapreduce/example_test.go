package mapreduce_test

import (
	"fmt"
	"strings"

	"repro/internal/mapreduce"
	"repro/internal/value"
)

// The Figure 11 word count: map each word to (word, 1), sum per key.
func ExampleRun() {
	words := value.FromStrings(strings.Fields("to be or not to be"))
	res, err := mapreduce.Run(words, mapreduce.WordCount, mapreduce.SumReduce,
		mapreduce.Config{Workers: 4})
	if err != nil {
		panic(err)
	}
	for _, kv := range res {
		fmt.Println(kv)
	}
	// Output:
	// be: 2
	// not: 1
	// or: 1
	// to: 2
}

// The Figure 13 climate exercise: Fahrenheit→Celsius in the map phase, a
// single average in the reduce phase.
func ExampleFahrenheitToCelsius() {
	temps := value.FromFloats([]float64{32, 212, 122})
	res, err := mapreduce.Run(temps, mapreduce.FahrenheitToCelsius,
		mapreduce.AvgReduce, mapreduce.Config{Workers: 2})
	if err != nil {
		panic(err)
	}
	fmt.Println(res[0].Val)
	// Output: 50
}
