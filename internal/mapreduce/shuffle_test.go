package mapreduce

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/value"
)

// referenceGroup is the original shuffle — stable sort of all pairs by key,
// then grouping adjacent runs — kept here as the executable specification
// the hash-based groupByKey must match.
func referenceGroup(mid []KVP) []group {
	sorted := make([]KVP, len(mid))
	copy(sorted, mid)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var groups []group
	for _, kv := range sorted {
		if len(groups) == 0 || groups[len(groups)-1].key != kv.Key {
			groups = append(groups, group{key: kv.Key, vals: value.NewList()})
		}
		groups[len(groups)-1].vals.Add(kv.Val)
	}
	return groups
}

func TestGroupByKeyMatchesSortedReference(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rnd.Intn(300)
		keys := rnd.Intn(20) + 1
		mid := make([]KVP, n)
		for i := range mid {
			mid[i] = KVP{
				Key: fmt.Sprintf("k%02d", rnd.Intn(keys)),
				Val: value.NumInt(i),
			}
		}
		got := groupByKey(mid)
		want := referenceGroup(mid)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d groups, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i].key != want[i].key {
				t.Fatalf("trial %d group %d: key %q, want %q", trial, i, got[i].key, want[i].key)
			}
			if got[i].vals.String() != want[i].vals.String() {
				t.Fatalf("trial %d key %q: vals %s, want %s — same-key values must stay in map-emission order",
					trial, got[i].key, got[i].vals, want[i].vals)
			}
		}
	}
}
