package mapreduce

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

// fig11Input is the word list of the paper's Figure 11 word-count example.
func fig11Input(sentence string) *value.List {
	return value.FromStrings(strings.Fields(sentence))
}

func TestWordCountFigure11(t *testing.T) {
	// "The result of the word count example is a sorted list of unique
	// words from the input with the number of times the words appear."
	in := fig11Input("the quick brown fox jumps over the lazy dog the end")
	res, err := Run(in, WordCount, SumReduce, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"brown: 1", "dog: 1", "end: 1", "fox: 1", "jumps: 1",
		"lazy: 1", "over: 1", "quick: 1", "the: 3",
	}
	got := res.Strings()
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d = %q, want %q", i, got[i], want[i])
		}
	}
	// Output as a Snap! list of (key value) pairs.
	if l := res.List(); l.Len() != 9 || l.MustItem(9).String() != "[the 3]" {
		t.Errorf("List() = %s", res.List())
	}
}

func TestClimateFigure13(t *testing.T) {
	// F→C conversion then average: 32°F, 212°F, 122°F → 0, 100, 50 °C,
	// average 50°C.
	in := value.FromFloats([]float64{32, 212, 122})
	res, err := Run(in, FahrenheitToCelsius, AvgReduce, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("res = %v", res)
	}
	n, _ := value.ToNumber(res[0].Val)
	if math.Abs(float64(n)-50) > 1e-9 {
		t.Errorf("average = %v, want 50", n)
	}
}

func TestIdentityFunctions(t *testing.T) {
	// §3.4: "the map or reduce functions can express the identity
	// function which passes its input argument through unchanged."
	in := value.FromStrings([]string{"b", "a", "b"})
	res, err := Run(in, nil, nil, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Identity map keys by display string; identity reduce keeps groups.
	if len(res) != 2 || res[0].Key != "a" || res[1].Key != "b" {
		t.Fatalf("res = %v", res)
	}
	if res[1].Val.String() != "[b b]" {
		t.Errorf("identity reduce of group = %s", res[1].Val)
	}
	if res[0].Val.String() != "a" {
		t.Errorf("singleton group should collapse: %s", res[0].Val)
	}
}

func TestSingleKeyAndCount(t *testing.T) {
	in := value.FromFloats([]float64{1, 2, 3, 4})
	res, err := Run(in, SingleKey, CountReduce, Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Val.String() != "4" {
		t.Fatalf("count = %v", res)
	}
}

func TestEmptyInput(t *testing.T) {
	res, err := Run(value.NewList(), WordCount, SumReduce, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("empty input should reduce to nothing, got %v", res)
	}
}

func TestMapperErrorAndPanic(t *testing.T) {
	in := value.FromFloats([]float64{1})
	if _, err := Run(in, func(value.Value) ([]KVP, error) {
		return nil, errors.New("bad")
	}, SumReduce, Config{}); err == nil {
		t.Error("mapper error should propagate")
	}
	if _, err := Run(in, func(value.Value) ([]KVP, error) {
		panic("boom")
	}, SumReduce, Config{}); err == nil {
		t.Error("mapper panic should propagate as error")
	}
	if _, err := Run(in, WordCount, func(string, *value.List) (value.Value, error) {
		return nil, errors.New("bad")
	}, Config{}); err == nil {
		t.Error("reducer error should propagate")
	}
	if _, err := Run(in, WordCount, func(string, *value.List) (value.Value, error) {
		panic("boom")
	}, Config{}); err == nil {
		t.Error("reducer panic should propagate as error")
	}
	if _, err := Run(value.FromStrings([]string{"x"}), FahrenheitToCelsius, AvgReduce, Config{}); err == nil {
		t.Error("non-numeric F→C should error")
	}
}

func TestMultiEmitMapper(t *testing.T) {
	// Hadoop-style: one item may emit several pairs (split a line into
	// words inside the mapper).
	lines := value.FromStrings([]string{"a b", "b c"})
	mapper := func(item value.Value) ([]KVP, error) {
		var out []KVP
		for _, w := range strings.Fields(item.String()) {
			out = append(out, KVP{Key: w, Val: value.Number(1)})
		}
		return out, nil
	}
	res, err := Run(lines, mapper, SumReduce, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(res.Strings(), ", ")
	if got != "a: 1, b: 2, c: 1" {
		t.Errorf("multi-emit = %q", got)
	}
}

func TestRecursiveAvgMatchesMean(t *testing.T) {
	vals := value.FromFloats([]float64{2, 4, 6, 8, 10})
	v, err := AvgReduce("", vals)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(v.(value.Number))-6) > 1e-9 {
		t.Errorf("avg = %v, want 6", v)
	}
	// Large group takes the iterative path.
	big := make([]float64, 10000)
	for i := range big {
		big[i] = 5
	}
	v, err = AvgReduce("", value.FromFloats(big))
	if err != nil || math.Abs(float64(v.(value.Number))-5) > 1e-9 {
		t.Errorf("large avg = %v, %v", v, err)
	}
	// Empty group.
	v, _ = AvgReduce("", value.NewList())
	if v.String() != "0" {
		t.Errorf("empty avg = %s", v)
	}
}

func TestKVPString(t *testing.T) {
	if (KVP{Key: "k", Val: value.Number(1)}).String() != "k: 1" {
		t.Error("kvp string")
	}
	if (KVP{Key: "k"}).String() != "k:" {
		t.Error("nil-val kvp string")
	}
}

// Property: word count totals match input length, keys are sorted and
// unique, independent of worker count.
func TestPropertyWordCount(t *testing.T) {
	words := []string{"apple", "pear", "fig", "plum"}
	f := func(picks []uint8, wRaw uint8) bool {
		w := int(wRaw%8) + 1
		in := value.NewListCap(len(picks))
		for _, p := range picks {
			in.Add(value.Text(words[int(p)%len(words)]))
		}
		res, err := Run(in, WordCount, SumReduce, Config{Workers: w})
		if err != nil {
			return false
		}
		total := 0.0
		prev := ""
		for i, kv := range res {
			n, err := value.ToNumber(kv.Val)
			if err != nil {
				return false
			}
			total += float64(n)
			if i > 0 && kv.Key <= prev {
				return false // must be sorted and unique
			}
			prev = kv.Key
		}
		return int(total) == len(picks)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the parallel pipeline is deterministic — every worker count
// produces identical results.
func TestPropertyWorkerCountInvariance(t *testing.T) {
	f := func(xs []uint8) bool {
		in := value.NewListCap(len(xs))
		for _, x := range xs {
			in.Add(value.Number(float64(x % 16)))
		}
		base, err := Run(in, WordCount, SumReduce, Config{Workers: 1})
		if err != nil {
			return false
		}
		for _, w := range []int{2, 5} {
			res, err := Run(in, WordCount, SumReduce, Config{Workers: w})
			if err != nil || len(res) != len(base) {
				return false
			}
			for i := range res {
				if res[i].Key != base[i].Key || !value.Equal(res[i].Val, base[i].Val) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
