package mapreduce

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/value"
)

// RunSeq documents that its observable behavior is pin-identical to
// Run(input, m, r, Config{Workers: 1}) for one-pair-per-item mappers.
// These tests hold it to that: the same keyed kernel is run through both
// engines and the results — pair-for-pair, error wording included — must
// match on every edge the evolutionary generator seeds (empty input,
// single item, single key, multi-key, the smallShuffle boundary) and on
// the failure modes (mapper/reducer errors and panics).

// seqKernelsFor adapts a one-pair Mapper/Reducer to RunSeq's kernel
// shapes, mirroring what compile.SeqMapperRing/SeqRing produce.
func seqKernelsFor(m Mapper, r Reducer) (func(args []value.Value) (string, value.Value, error), func(args []value.Value) (value.Value, error)) {
	mcall := func(args []value.Value) (string, value.Value, error) {
		kvs, err := m(args[0])
		if err != nil {
			return "", nil, err
		}
		return kvs[0].Key, kvs[0].Val, nil
	}
	rcall := func(args []value.Value) (value.Value, error) {
		return r("", args[0].(*value.List))
	}
	return mcall, rcall
}

// assertParity runs both engines over the same input and fails on any
// observable difference.
func assertParity(t *testing.T, input *value.List, m Mapper, r Reducer) {
	t.Helper()
	mcall, rcall := seqKernelsFor(m, r)
	seqRes, seqErr := RunSeq(input, mcall, rcall)
	asyncRes, asyncErr := Run(input, m, r, Config{Workers: 1})
	if (seqErr == nil) != (asyncErr == nil) {
		t.Fatalf("error parity: RunSeq err = %v, Run err = %v", seqErr, asyncErr)
	}
	if seqErr != nil {
		if seqErr.Error() != asyncErr.Error() {
			t.Fatalf("error wording: RunSeq %q, Run %q", seqErr, asyncErr)
		}
		return
	}
	if len(seqRes) != len(asyncRes) {
		t.Fatalf("result length: RunSeq %d pairs, Run %d pairs\nseq:   %v\nasync: %v",
			len(seqRes), len(asyncRes), seqRes.Strings(), asyncRes.Strings())
	}
	for i := range seqRes {
		if got, want := seqRes[i].String(), asyncRes[i].String(); got != want {
			t.Errorf("pair %d: RunSeq %q, Run %q", i, got, want)
		}
	}
}

func TestRunSeqParityEdges(t *testing.T) {
	many := make([]string, 0, smallShuffle+8)
	for i := 0; i < smallShuffle+8; i++ {
		many = append(many, fmt.Sprintf("w%02d", i%7))
	}
	cases := []struct {
		name  string
		input *value.List
		m     Mapper
		r     Reducer
	}{
		// The two edges ISSUE.md pins explicitly: an empty input must
		// produce an empty (not nil-error) result from both engines, and
		// a single-key workload must keep its values in emission order.
		{"empty input", value.NewList(), WordCount, SumReduce},
		{"empty input identity", value.NewList(), Identity, IdentityReduce},
		{"single item", value.FromStrings([]string{"only"}), WordCount, SumReduce},
		{"single key", value.FromFloats([]float64{3, 1, 2}), SingleKey, IdentityReduce},
		{"single key avg", value.FromFloats([]float64{32, 212, 122}), FahrenheitToCelsius, AvgReduce},
		{"multi key", fig11Input("the quick brown fox jumps over the lazy dog the end"), WordCount, SumReduce},
		{"at smallShuffle boundary", value.FromStrings(many[:smallShuffle]), WordCount, SumReduce},
		{"past smallShuffle boundary", value.FromStrings(many), WordCount, SumReduce},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			assertParity(t, tc.input, tc.m, tc.r)
		})
	}
}

func TestRunSeqParityEmptyShape(t *testing.T) {
	// Beyond agreeing with Run, the empty-input result must be a usable
	// empty Result: zero pairs, a zero-length Snap! list, no error.
	mcall, rcall := seqKernelsFor(WordCount, SumReduce)
	res, err := RunSeq(value.NewList(), mcall, rcall)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("res = %v, want empty", res.Strings())
	}
	if l := res.List(); l.Len() != 0 {
		t.Fatalf("List() = %s, want empty list", l)
	}
}

func TestRunSeqParityErrors(t *testing.T) {
	failMap := func(item value.Value) ([]KVP, error) {
		if item.String() == "boom" {
			return nil, fmt.Errorf("no mapping for %s", item)
		}
		return WordCount(item)
	}
	panicMap := func(item value.Value) ([]KVP, error) {
		if item.String() == "boom" {
			panic("mapper exploded")
		}
		return WordCount(item)
	}
	failReduce := func(key string, vals *value.List) (value.Value, error) {
		return nil, fmt.Errorf("no reduction")
	}
	panicReduce := func(key string, vals *value.List) (value.Value, error) {
		panic("reducer exploded")
	}
	in := value.FromStrings([]string{"ok", "ok", "boom", "ok"})
	cases := []struct {
		name string
		m    Mapper
		r    Reducer
		want string
	}{
		{"mapper error", failMap, SumReduce, `map item 3: no mapping for boom`},
		{"mapper panic", panicMap, SumReduce, `map item 3: mapper panic: mapper exploded`},
		{"reducer error", WordCount, failReduce, `reduce key "boom": no reduction`},
		{"reducer panic", WordCount, panicReduce, `reduce key "boom": reducer panic: reducer exploded`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			assertParity(t, in, tc.m, tc.r)
			mcall, rcall := seqKernelsFor(tc.m, tc.r)
			_, err := RunSeq(in, mcall, rcall)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("RunSeq err = %v, want containing %q", err, tc.want)
			}
		})
	}
}
