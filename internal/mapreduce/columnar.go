package mapreduce

// Columnar fast path: when the input list carries a raw []float64 or
// []string column (see value.List) and both kernels have registered
// column-native variants, the whole pipeline runs over flat arrays — no
// per-item boxing, no per-pair KVP slices, no per-group value lists. The
// observable contract (key order, error wording, panic containment,
// telemetry shape) is pin-identical to the generic Run; the registry is
// the assertion that a column kernel computes exactly what its boxed
// counterpart computes, which holds for every stock mapper/reducer
// registered below.

import (
	"fmt"
	"reflect"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/value"
	"repro/internal/workers"
)

// FloatMapper is the columnar form of a one-in-one-out Mapper over a
// numeric column: it maps one float to one (key, value) pair.
type FloatMapper func(x float64) (key string, val float64, err error)

// StringMapper is the columnar form of a one-in-one-out Mapper over a text
// column, for mappers whose emitted values are numeric (word→1 counting,
// parse-and-convert pipelines).
type StringMapper func(s string) (key string, val float64, err error)

// FloatReducer is the columnar form of a Reducer whose group values are
// all numeric. vals is a read-only view carved from one backing array.
type FloatReducer func(key string, vals []float64) (value.Value, error)

var (
	floatMappers  = map[uintptr]FloatMapper{}
	stringMappers = map[uintptr]StringMapper{}
	floatReducers = map[uintptr]FloatReducer{}
)

// fnPtr keys the registries by code pointer, which is unique per top-level
// function — the shape every stock kernel has. Closures from one factory
// share a code pointer, so they must not be registered.
func fnPtr(fn any) uintptr { return reflect.ValueOf(fn).Pointer() }

// RegisterFloatMapper declares fm as the columnar equivalent of m. The
// caller asserts exact behavioral equivalence (keys, values, errors).
// Registration is init-time only; the registries are read concurrently
// without locking afterwards.
func RegisterFloatMapper(m Mapper, fm FloatMapper) { floatMappers[fnPtr(m)] = fm }

// RegisterStringMapper declares sm as the columnar equivalent of m over
// text columns, under the same equivalence contract.
func RegisterStringMapper(m Mapper, sm StringMapper) { stringMappers[fnPtr(m)] = sm }

// RegisterFloatReducer declares fr as the columnar equivalent of r, under
// the same equivalence contract.
func RegisterFloatReducer(r Reducer, fr FloatReducer) { floatReducers[fnPtr(r)] = fr }

func init() {
	RegisterFloatMapper(Identity, func(x float64) (string, float64, error) {
		return value.Number(x).String(), x, nil
	})
	RegisterFloatMapper(SingleKey, func(x float64) (string, float64, error) {
		return "", x, nil
	})
	RegisterFloatMapper(WordCount, func(x float64) (string, float64, error) {
		return value.Number(x).String(), 1, nil
	})
	RegisterFloatMapper(FahrenheitToCelsius, func(x float64) (string, float64, error) {
		return "", (5 * (x - 32)) / 9, nil
	})
	RegisterStringMapper(WordCount, func(s string) (string, float64, error) {
		return s, 1, nil
	})
	RegisterStringMapper(FahrenheitToCelsius, func(s string) (string, float64, error) {
		n, err := value.ParseNumber(s)
		if err != nil {
			return "", 0, err
		}
		return "", (5 * (float64(n) - 32)) / 9, nil
	})
	RegisterFloatReducer(SumReduce, func(key string, vals []float64) (value.Value, error) {
		// Accumulate in emission order, exactly as the boxed SumReduce
		// folds value.Number addition.
		var sum float64
		for _, v := range vals {
			sum += v
		}
		return value.Number(sum), nil
	})
	RegisterFloatReducer(CountReduce, func(key string, vals []float64) (value.Value, error) {
		return value.NumInt(len(vals)), nil
	})
	RegisterFloatReducer(AvgReduce, func(key string, vals []float64) (value.Value, error) {
		if len(vals) == 0 {
			return value.Number(0), nil
		}
		if len(vals) > 4096 {
			var sum float64
			for _, f := range vals {
				sum += f
			}
			return value.Number(sum / float64(len(vals))), nil
		}
		return value.Number(recAvg(vals)), nil
	})
	RegisterFloatReducer(IdentityReduce, func(key string, vals []float64) (value.Value, error) {
		if len(vals) == 1 {
			return value.Num(vals[0]), nil
		}
		return value.FromFloats(vals), nil
	})
}

// columnRun is a planned columnar pipeline: a mapper over column index
// plus a column reducer.
type columnRun struct {
	n    int
	mapf func(i int) (string, float64, error)
	fr   FloatReducer
}

// planColumnRun reports whether input, m, and r can run the columnar
// pipeline: the input must carry a column and both kernels must have
// registered column variants for that column's type.
func planColumnRun(input *value.List, m Mapper, r Reducer) (columnRun, bool) {
	fr, ok := floatReducers[fnPtr(r)]
	if !ok {
		return columnRun{}, false
	}
	if xs, isNum := input.FloatsView(); isNum {
		fm, ok := floatMappers[fnPtr(m)]
		if !ok {
			return columnRun{}, false
		}
		return columnRun{
			n:    len(xs),
			mapf: func(i int) (string, float64, error) { return fm(xs[i]) },
			fr:   fr,
		}, true
	}
	if ss, isStr := input.StringsView(); isStr {
		sm, ok := stringMappers[fnPtr(m)]
		if !ok {
			return columnRun{}, false
		}
		return columnRun{
			n:    len(ss),
			mapf: func(i int) (string, float64, error) { return sm(ss[i]) },
			fr:   fr,
		}, true
	}
	return columnRun{}, false
}

// colGroup is one shuffle bucket of the columnar pipeline; its values live
// in a shared backing array at [off, off+n).
type colGroup struct {
	key          string
	n, off, fill int
}

// run executes the columnar pipeline with the same phase structure,
// telemetry, and error discipline as the generic Run.
func (c columnRun) run(w int, cfg Config) (Result, error) {
	tracing := obs.Enabled()
	var tStart, tMapDone, tShuffleDone time.Time
	if tracing {
		obs.MRRuns.Inc()
		tStart = time.Now()
	}
	keys := make([]string, c.n)
	vals := make([]float64, c.n)
	if err := c.mapColumn(w, keys, vals); err != nil {
		return nil, err
	}
	if tracing {
		tMapDone = time.Now()
		obs.MRPhaseSeconds.With("map").Observe(tMapDone.Sub(tStart).Seconds())
	}
	groups, backing := shuffleColumns(keys, vals)
	if tracing {
		tShuffleDone = time.Now()
		obs.MRPhaseSeconds.With("shuffle").Observe(tShuffleDone.Sub(tMapDone).Seconds())
		if len(groups) > 0 && c.n > 0 {
			maxLen := 0
			for _, g := range groups {
				if g.n > maxLen {
					maxLen = g.n
				}
			}
			obs.MRBucketSkew.Observe(float64(maxLen) * float64(len(groups)) / float64(c.n))
		}
	}
	out := make(Result, len(groups))
	err := runPhase(len(groups), w, func(i int) error {
		g := groups[i]
		v, rerr := safeColReduce(c.fr, g.key, backing[g.off:g.off+g.n:g.off+g.n])
		if rerr != nil {
			return fmt.Errorf("reduce key %q: %w", g.key, rerr)
		}
		if v == nil {
			v = value.TheNothing
		}
		out[i] = KVP{Key: g.key, Val: value.CloneValue(v)}
		return nil
	})
	if err != nil {
		out = nil
	}
	if tracing {
		end := time.Now()
		obs.MRPhaseSeconds.With("reduce").Observe(end.Sub(tShuffleDone).Seconds())
		status := "ok"
		if err != nil {
			status = "error"
		}
		obs.RecordSpan(obs.Span{
			ID:    cfg.Label,
			Kind:  "mapReduce",
			Start: tStart,
			Dur:   end.Sub(tStart),
			Attrs: []obs.Attr{
				obs.AttrInt("items", int64(c.n)),
				obs.AttrInt("pairs", int64(c.n)),
				obs.AttrInt("keys", int64(len(groups))),
				obs.AttrInt("workers", int64(w)),
				{Key: "status", Val: status},
			},
		})
	}
	return out, err
}

// mapColumn fills keys[i], vals[i] = mapf(i) across w executors, chunked
// like runPhase. Panic containment is per chunk (one deferred recover per
// claim instead of per item), with the in-flight index pinned so the error
// text matches the generic phase exactly.
func (c columnRun) mapColumn(w int, keys []string, vals []float64) error {
	n := c.n
	runChunk := func(lo, hi int) (err error) {
		cur := lo
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("map item %d: %w", cur+1, fmt.Errorf("mapper panic: %v", r))
			}
		}()
		for ; cur < hi; cur++ {
			k, v, merr := c.mapf(cur)
			if merr != nil {
				return fmt.Errorf("map item %d: %w", cur+1, merr)
			}
			keys[cur], vals[cur] = k, v
		}
		return nil
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		return runChunk(0, n)
	}
	grain := phaseGrain(n, w)
	errs := make([]error, w)
	var next atomic.Int64
	var wg sync.WaitGroup
	pool := workers.SharedPool()
	wg.Add(w)
	for k := 0; k < w; k++ {
		worker := k
		pool.Submit(func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(grain))) - grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				if err := runChunk(lo, hi); err != nil {
					errs[worker] = err
					return
				}
			}
		})
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// shuffleColumns groups the emitted pairs by key — same semantics as
// groupByKey (values in emission order, distinct keys sorted) — laying
// every group's values out in one float backing array.
func shuffleColumns(keys []string, vals []float64) ([]colGroup, []float64) {
	var groups []colGroup
	gidx := make([]int32, len(keys))
	idx := make(map[string]int, 8)
	// last memoizes the previous pair's group: single-key and run-keyed
	// workloads pay one map lookup per run instead of one per pair.
	last := -1
	for i, k := range keys {
		g := last
		if g < 0 || groups[g].key != k {
			var ok bool
			g, ok = idx[k]
			if !ok {
				g = len(groups)
				idx[k] = g
				groups = append(groups, colGroup{key: k})
			}
			last = g
		}
		groups[g].n++
		gidx[i] = int32(g)
	}
	// Sort the distinct keys, then renumber the per-pair group indices
	// through the permutation before the scatter pass.
	perm := make([]int32, len(groups))
	slices.SortFunc(groups, func(a, b colGroup) int { return strings.Compare(a.key, b.key) })
	for sorted, g := range groups {
		perm[idx[g.key]] = int32(sorted)
	}
	off := 0
	for j := range groups {
		groups[j].off = off
		off += groups[j].n
	}
	backing := make([]float64, len(vals))
	for i, v := range vals {
		g := &groups[perm[gidx[i]]]
		backing[g.off+g.fill] = v
		g.fill++
	}
	return groups, backing
}

func safeColReduce(fr FloatReducer, key string, vals []float64) (v value.Value, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("reducer panic: %v", rec)
		}
	}()
	return fr(key, vals)
}
