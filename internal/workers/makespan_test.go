package workers

import (
	"testing"
	"testing/quick"
)

func TestVirtualMakespanUniformCosts(t *testing.T) {
	unit := func(int) int64 { return 1 }
	for _, policy := range []Assignment{Block, Interleaved, Dynamic} {
		mk, per := VirtualMakespan(100, 4, policy, unit)
		if mk != 25 {
			t.Errorf("%v: makespan = %d, want 25", policy, mk)
		}
		var total int64
		for _, c := range per {
			total += c
		}
		if total != 100 {
			t.Errorf("%v: total = %d", policy, total)
		}
	}
}

func TestVirtualMakespanSkew(t *testing.T) {
	// Linear skew: block is unfair (last block is heaviest), dynamic and
	// interleaved balance.
	cost := func(i int) int64 { return int64(i + 1) }
	blockMk, _ := VirtualMakespan(1000, 4, Block, cost)
	interMk, _ := VirtualMakespan(1000, 4, Interleaved, cost)
	dynMk, _ := VirtualMakespan(1000, 4, Dynamic, cost)
	total := int64(1000 * 1001 / 2)
	ideal := total / 4
	if blockMk <= interMk || blockMk <= dynMk {
		t.Errorf("block (%d) should be worse than interleaved (%d) and dynamic (%d)",
			blockMk, interMk, dynMk)
	}
	if dynMk > ideal+1000 {
		t.Errorf("dynamic makespan %d far from ideal %d", dynMk, ideal)
	}
}

func TestVirtualMakespanEdges(t *testing.T) {
	cost := func(int) int64 { return 1 }
	mk, per := VirtualMakespan(0, 4, Dynamic, cost)
	if mk != 0 || len(per) != 4 {
		t.Errorf("empty: %d %v", mk, per)
	}
	mk, per = VirtualMakespan(3, 8, Block, cost)
	if len(per) != 3 || mk != 1 {
		t.Errorf("workers clamp to n: %d %v", mk, per)
	}
	mk, _ = VirtualMakespan(5, 0, Interleaved, cost)
	if mk != 5 {
		t.Errorf("w=0 clamps to 1: %d", mk)
	}
}

// Property: for every policy, per-worker costs sum to the total and the
// makespan is at least total/w (a lower bound no schedule can beat).
func TestPropertyMakespanBounds(t *testing.T) {
	f := func(nRaw, wRaw, pRaw uint8) bool {
		n := int(nRaw)%300 + 1
		w := int(wRaw)%8 + 1
		policy := Assignment(int(pRaw) % 3)
		cost := func(i int) int64 { return int64(i%13 + 1) }
		var total int64
		for i := 0; i < n; i++ {
			total += cost(i)
		}
		mk, per := VirtualMakespan(n, w, policy, cost)
		var sum int64
		for _, c := range per {
			sum += c
		}
		if sum != total {
			return false
		}
		eff := w
		if eff > n {
			eff = n
		}
		lower := (total + int64(eff) - 1) / int64(eff)
		return mk >= lower && mk <= total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
