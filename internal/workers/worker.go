// Package workers emulates HTML5 Web Workers and the Parallel.js library
// the paper builds on (§4.1). A Worker is an isolated thread of execution
// that shares no memory with its creator: every message crossing the
// boundary is structured-cloned, exactly as the browser's postMessage does.
// On top of workers, the Parallel type reproduces the Parallel.js API used
// in Listing 1 — construct with data and a maxWorkers option, then map or
// reduce a function across the data on the worker pool.
//
// "Each HTML5 Web Worker corresponds to a single thread and runs
// independently from other workers and independently from the
// user-interface thread" — here each worker is a goroutine, and the
// share-nothing discipline is enforced by cloning rather than by process
// isolation, which preserves the observable semantics.
package workers

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/value"
)

// DefaultWorkers is the worker count used when the caller does not specify
// one: the hardware concurrency when known, else 4 — Listing 2's
// "navigator.hardwareConcurrency || 4".
func DefaultWorkers() int {
	if n := runtime.NumCPU(); n > 0 {
		return n
	}
	return 4
}

// PaperDefaultWorkers is the parallelMap block's default of §3.2:
// "By default, four Web Workers are created."
const PaperDefaultWorkers = 4

// Message is what crosses a worker boundary: a payload value plus an
// optional error (workers report failures via onerror in the browser).
type Message struct {
	Data value.Value
	Err  error
}

// Handler is the worker's script: it receives each incoming message's data
// and returns the reply, like an onmessage that always posts a response.
type Handler func(value.Value) (value.Value, error)

// Worker is one emulated Web Worker.
type Worker struct {
	id     int
	inbox  chan value.Value
	outbox chan Message
	done   chan struct{}
	once   sync.Once

	// processed counts messages handled. It is incremented on the worker
	// goroutine and read concurrently from pool stats, so it must be
	// atomic: the old plain int64 was a data race under -race.
	processed atomic.Int64
}

// Spawn starts a worker running the given handler. The worker loops,
// cloning each incoming value, applying the handler, cloning the result
// back out — the double structured-clone of real postMessage round trips.
func Spawn(id int, h Handler) *Worker {
	w := &Worker{
		id:     id,
		inbox:  make(chan value.Value, 16),
		outbox: make(chan Message, 16),
		done:   make(chan struct{}),
	}
	go w.loop(h)
	return w
}

func (w *Worker) loop(h Handler) {
	for {
		select {
		case <-w.done:
			close(w.outbox)
			return
		case v, ok := <-w.inbox:
			if !ok {
				close(w.outbox)
				return
			}
			in := safeClone(v)
			out, err := runHandler(h, in)
			w.processed.Add(1)
			if err != nil {
				w.outbox <- Message{Err: err}
				continue
			}
			w.outbox <- Message{Data: safeClone(out)}
		}
	}
}

// runHandler converts a panicking handler into an error, the way a thrown
// exception inside a Web Worker surfaces as an onerror event instead of
// crashing the page.
func runHandler(h Handler, in value.Value) (out value.Value, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("worker script error: %v", r)
		}
	}()
	return h(in)
}

// safeClone is the worker-boundary structured clone: a deep copy for
// mutable containers, elided (the same box returned) for immutable
// scalars — see value.CloneValue for why sharing scalar boxes preserves
// the share-nothing semantics.
func safeClone(v value.Value) value.Value {
	return value.CloneValue(v)
}

// PostMessage sends data to the worker. The value is cloned on the worker
// side; the caller may keep mutating its copy.
func (w *Worker) PostMessage(v value.Value) { w.inbox <- v }

// Receive blocks for the next reply from the worker. ok is false once the
// worker has terminated and drained.
func (w *Worker) Receive() (Message, bool) {
	m, ok := <-w.outbox
	return m, ok
}

// Terminate stops the worker. Pending queued messages may be dropped,
// matching Worker.terminate() semantics.
func (w *Worker) Terminate() {
	w.once.Do(func() { close(w.done) })
}

// ID reports the worker's index within its pool.
func (w *Worker) ID() int { return w.id }

// Processed reports how many messages the worker has handled so far. Safe
// to call while the worker is running.
func (w *Worker) Processed() int64 { return w.processed.Load() }

// ErrTerminated is returned by pool operations after Terminate.
var ErrTerminated = errors.New("worker pool terminated")
