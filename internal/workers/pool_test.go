package workers

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/value"
)

func ident(v value.Value) (value.Value, error) { return v, nil }

// TestMapEmptyListResolvesImmediately is the regression test for the n==0
// bugfix: mapping an empty list must complete the job synchronously with
// an empty result list, with no goroutine scaffolding.
func TestMapEmptyListResolvesImmediately(t *testing.T) {
	p := New(value.NewList(), Options{MaxWorkers: 4})
	job := p.Map(double)
	if !job.Resolved() {
		t.Fatal("empty map should resolve synchronously, before any poll")
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatalf("result = %s, want empty list", res)
	}
}

// TestReduceEmptyListResolvesImmediately pins the analogous Reduce path.
func TestReduceEmptyListResolvesImmediately(t *testing.T) {
	p := New(value.NewList(), Options{MaxWorkers: 4})
	job := p.Reduce(func(a, b value.Value) (value.Value, error) { return a, nil })
	if !job.Resolved() {
		t.Fatal("empty reduce should resolve synchronously")
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || !value.IsNothing(res.MustItem(1)) {
		t.Fatalf("result = %s, want [Nothing]", res)
	}
}

// TestMapGrainEquivalence checks that every grain setting produces the
// same ordered result as the strict per-element queue: chunked dynamic
// assignment must be invisible except in performance.
func TestMapGrainEquivalence(t *testing.T) {
	in := value.Range(1, 103, 1) // odd size to exercise ragged final chunks
	want := ""
	for _, grain := range []int{0, 1, 2, 7, 64, 1000} {
		for _, w := range []int{1, 2, 5} {
			p := New(in, Options{MaxWorkers: w, Grain: grain})
			res, err := p.Map(double).Wait()
			if err != nil {
				t.Fatalf("grain=%d w=%d: %v", grain, w, err)
			}
			if want == "" {
				want = res.String()
			}
			if got := res.String(); got != want {
				t.Fatalf("grain=%d w=%d: result diverged", grain, w)
			}
			// Every element must be accounted to exactly one worker.
			var total int64
			job := p.Map(double)
			job.Wait()
			for _, l := range job.WorkerLoads() {
				total += l
			}
			if total != int64(in.Len()) {
				t.Fatalf("grain=%d w=%d: loads sum %d, want %d", grain, w, total, in.Len())
			}
		}
	}
}

// TestMapPoliciesEquivalent checks Block and Interleaved still agree with
// Dynamic on the pooled execution path.
func TestMapPoliciesEquivalent(t *testing.T) {
	in := value.Range(1, 50, 1)
	want, err := New(in, Options{MaxWorkers: 3}).Map(double).Wait()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []Assignment{Block, Interleaved} {
		res, err := New(in, Options{MaxWorkers: 3, Assignment: a}).Map(double).Wait()
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if res.String() != want.String() {
			t.Fatalf("%s result diverged from dynamic", a)
		}
	}
}

// TestCostForcesPerElementGrain pins the E10 contract: with cost
// instrumentation on, assignment stays per-element so the ablation's
// element-level accounting is exact.
func TestCostForcesPerElementGrain(t *testing.T) {
	in := value.Range(1, 40, 1)
	p := New(in, Options{MaxWorkers: 4, Grain: 16, Cost: func(i int) int64 { return 1 }})
	if g := p.grain(in.Len(), 4); g != 1 {
		t.Fatalf("grain with Cost set = %d, want 1", g)
	}
	job := p.Map(double)
	if _, err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range job.WorkerCosts() {
		total += c
	}
	if total != 40 {
		t.Fatalf("cost sum = %d, want 40", total)
	}
}

// TestPoolReuse checks that a stream of jobs runs on the persistent
// workers rather than spawning per-job goroutines: with an idle pool and
// sequential jobs, nothing should spill beyond the pool size per job.
func TestPoolReuse(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	var ran atomic.Int64
	var wg sync.WaitGroup
	for round := 0; round < 50; round++ {
		wg.Add(1)
		pool.Submit(func() {
			ran.Add(1)
			wg.Done()
		})
		wg.Wait()
		// Give the pool worker time to loop back into its receive;
		// wg.Done unblocks us before the worker has re-parked, and a
		// handoff only succeeds against a parked worker.
		runtime.Gosched()
		runtime.Gosched()
	}
	if ran.Load() != 50 {
		t.Fatalf("ran %d tasks, want 50", ran.Load())
	}
	if sp := pool.Spilled(); sp > 25 {
		t.Errorf("sequential submissions spilled %d/50 times; pool is not being reused", sp)
	}
}

// TestPoolSpillUnderSaturation checks the no-deadlock property: more
// concurrent tasks than workers must all run (the excess on fresh
// goroutines), including tasks submitted from inside pool tasks.
func TestPoolSpillUnderSaturation(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	var wg sync.WaitGroup
	inner := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		pool.Submit(func() {
			defer wg.Done()
			// Nested submission while (possibly) occupying a pool
			// worker: must make progress, not queue behind us.
			done := make(chan struct{})
			pool.Submit(func() { close(done) })
			<-done
			<-inner
		})
	}
	close(inner)
	wg.Wait()
}

// TestMapManyConcurrentJobs runs several jobs against the shared pool at
// once; results must not interleave across jobs.
func TestMapManyConcurrentJobs(t *testing.T) {
	var wg sync.WaitGroup
	for j := 0; j < 8; j++ {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			in := value.Range(float64(j*100), float64(j*100+99), 1)
			res, err := New(in, Options{MaxWorkers: 3}).Map(ident).Wait()
			if err != nil {
				t.Error(err)
				return
			}
			if res.Len() != 100 || res.MustItem(1).String() != fmt.Sprint(j*100) {
				t.Errorf("job %d corrupted: %s", j, res.MustItem(1))
			}
		}()
	}
	wg.Wait()
}

// TestWorkerProcessedConcurrentRead reads the processed counter while the
// worker is handling messages — the data race the atomic fixed; the race
// detector in `make check` guards it.
func TestWorkerProcessedConcurrentRead(t *testing.T) {
	w := Spawn(0, ident)
	defer w.Terminate()
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				_ = w.Processed()
			}
		}
	}()
	for i := 0; i < 100; i++ {
		w.PostMessage(value.NumInt(i))
		if _, ok := w.Receive(); !ok {
			t.Fatal("worker terminated early")
		}
	}
	close(stop)
	if got := w.Processed(); got != 100 {
		t.Fatalf("processed = %d, want 100", got)
	}
}
