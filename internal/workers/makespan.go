package workers

// VirtualMakespan computes, in deterministic virtual time, how the three
// assignment policies distribute n elements with the given per-element
// cost across w workers, returning each worker's total cost and the
// makespan (the busiest worker's total).
//
// For Block and Interleaved the assignment is static, so this is exact.
// For Dynamic the model is greedy list scheduling — each element goes to
// the worker that frees up first — which is what the shared-queue policy
// converges to on truly parallel hardware. The benchmark harness reports these
// virtual quantities because wall-clock speedup is host-dependent (and
// saturates at 1× on a single-core host), exactly as the paper reports its
// own results in virtual timestep units.
func VirtualMakespan(n, w int, policy Assignment, cost func(i int) int64) (makespan int64, perWorker []int64) {
	if w < 1 {
		w = 1
	}
	if w > n && n > 0 {
		w = n
	}
	perWorker = make([]int64, w)
	if n <= 0 {
		return 0, perWorker
	}
	switch policy {
	case Block:
		chunk := (n + w - 1) / w
		for k := 0; k < w; k++ {
			lo, hi := k*chunk, (k+1)*chunk
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				perWorker[k] += cost(i)
			}
		}
	case Interleaved:
		for i := 0; i < n; i++ {
			perWorker[i%w] += cost(i)
		}
	case Dynamic:
		// Greedy: the next element goes to the least-loaded worker.
		for i := 0; i < n; i++ {
			min := 0
			for k := 1; k < w; k++ {
				if perWorker[k] < perWorker[min] {
					min = k
				}
			}
			perWorker[min] += cost(i)
		}
	}
	for _, c := range perWorker {
		if c > makespan {
			makespan = c
		}
	}
	return makespan, perWorker
}
