package workers

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Pool is a persistent, reusable set of goroutines that execute submitted
// tasks. Before the pool existed, every Parallel.Map/Reduce and every
// mapreduce phase spawned fresh goroutines and tore them down again — per
// operation, on a hot path the interpreter polls thousands of times. A
// Pool keeps its goroutines parked on a channel between operations, so a
// steady stream of parallel blocks reuses the same threads, the way a
// browser keeps its Web Workers alive between postMessage rounds.
//
// Submission uses a direct handoff: a task is given to an idle worker if
// one is waiting, and otherwise runs on a fresh goroutine ("spill"). The
// spill rule is what makes the pool safe under nested parallelism — a
// handler running on a pool worker may itself start a parallel job, and
// queuing that inner job behind the blocked outer tasks would deadlock.
// Spilling degenerates to exactly the old spawn-per-task behavior, so the
// pool is never slower than what it replaced.
type Pool struct {
	tasks   chan func()
	size    int
	spilled atomic.Int64
	closed  atomic.Bool
}

// NewPool starts a pool of size persistent workers.
func NewPool(size int) *Pool {
	if size < 1 {
		size = 1
	}
	p := &Pool{tasks: make(chan func()), size: size}
	for i := 0; i < size; i++ {
		go p.loop()
	}
	return p
}

func (p *Pool) loop() {
	for f := range p.tasks {
		f()
	}
}

// Submit runs f on an idle pool worker when one is available, and on a
// fresh goroutine otherwise. It never blocks and never queues.
func (p *Pool) Submit(f func()) {
	if obs.Enabled() {
		// Queue wait: handoff-to-start latency, whether a parked worker
		// picks the task up or a spill goroutine has to be scheduled.
		// The wrapping closure allocates, but only on the enabled path,
		// and once per submission — not per element.
		inner, submitted := f, time.Now()
		f = func() {
			obs.PoolQueueWaitSeconds.Observe(time.Since(submitted).Seconds())
			inner()
		}
	}
	if !p.closed.Load() {
		select {
		case p.tasks <- f:
			return
		default:
		}
	}
	p.spilled.Add(1)
	go f()
}

// Size reports the number of persistent workers.
func (p *Pool) Size() int { return p.size }

// Spilled reports how many submissions ran on fresh goroutines because no
// pool worker was idle — a contention diagnostic.
func (p *Pool) Spilled() int64 { return p.spilled.Load() }

// Close retires the persistent workers. Tasks submitted after Close still
// run (on fresh goroutines); Close exists so tests can create and discard
// pools without leaking goroutines. Close must be called at most once and
// must not race with in-flight Submit calls (quiesce the pool first, the
// same contract as closing any channel).
func (p *Pool) Close() {
	if p.closed.CompareAndSwap(false, true) {
		close(p.tasks)
	}
}

var (
	sharedOnce sync.Once
	sharedP    *Pool
	// sharedPtr mirrors sharedP for lock-free reads from the metric
	// gauges below, which must not force the pool into existence (and
	// must not race with the once that builds it).
	sharedPtr atomic.Pointer[Pool]
)

func init() {
	obs.Default.RegisterGauge("engine_pool_workers",
		"Persistent workers in the shared pool (0 until first use).",
		func() float64 {
			if p := sharedPtr.Load(); p != nil {
				return float64(p.Size())
			}
			return 0
		})
	obs.Default.RegisterCounterFunc("engine_pool_spilled_total",
		"Shared-pool submissions that ran on fresh goroutines because no worker was idle.",
		func() float64 {
			if p := sharedPtr.Load(); p != nil {
				return float64(p.Spilled())
			}
			return 0
		})
}

// SharedPool returns the process-wide persistent pool, sized to the
// hardware concurrency, creating it on first use. It is never closed: the
// paper's runtime keeps its Web Workers for the life of the page.
func SharedPool() *Pool {
	sharedOnce.Do(func() {
		sharedP = NewPool(DefaultWorkers())
		sharedPtr.Store(sharedP)
	})
	return sharedP
}

// ConfigureSharedPool creates the process-wide pool with the given worker
// count instead of the hardware default. It reports whether it won: false
// means the pool was already built (by an earlier call or a SharedPool
// use), in which case the existing pool — and its size — stay in force.
// Daemons call this once at startup, before any parallel block runs.
func ConfigureSharedPool(size int) bool {
	won := false
	sharedOnce.Do(func() {
		sharedP = NewPool(size)
		sharedPtr.Store(sharedP)
		won = true
	})
	return won
}
