package workers

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/value"
)

// Assignment selects how list elements are handed to workers when there are
// more elements than workers. Parallel.js says workers "systematically
// process the remaining elements from the list until completed" — a shared
// work queue, our Dynamic policy. Block and Interleaved are the static
// alternatives ablated in experiment E10.
type Assignment int

// The element-assignment policies.
const (
	// Dynamic hands each idle worker the next unprocessed element
	// (a shared queue; self-balancing under skew).
	Dynamic Assignment = iota
	// Block gives worker k the k-th contiguous chunk.
	Block
	// Interleaved gives worker k elements k, k+W, k+2W, ...
	Interleaved
)

// String names the policy.
func (a Assignment) String() string {
	switch a {
	case Dynamic:
		return "dynamic"
	case Block:
		return "block"
	case Interleaved:
		return "interleaved"
	}
	return fmt.Sprintf("assignment(%d)", int(a))
}

// Options configures a Parallel pool, mirroring Parallel.js's options
// object ({maxWorkers: 2} in Listing 1).
type Options struct {
	// MaxWorkers caps the worker count; 0 means DefaultWorkers().
	MaxWorkers int
	// Assignment picks the element-assignment policy; default Dynamic.
	Assignment Assignment
	// NoClone disables the structured clone at the worker boundary.
	// Real Web Workers cannot do this; the option exists only for the
	// clone-cost ablation bench and must stay off elsewhere.
	NoClone bool
	// Cost, when set, assigns a virtual cost to element i (0-based).
	// Each worker accumulates the cost of the elements it processes,
	// readable via Job.WorkerCosts — the instrumentation behind the
	// load-balance experiment E10. Setting Cost forces Grain to 1 so the
	// per-element assignment the ablation studies stays observable.
	Cost func(i int) int64
	// Grain is how many elements one dynamic fetch-add claims. 0 picks
	// an automatic grain that amortizes the shared-counter contention
	// while leaving enough chunks for load balance; 1 reproduces the
	// strict per-element queue of Parallel.js (and of E10).
	Grain int
	// Label tags the job's trace span (see internal/obs) so a session's
	// worker jobs can be found from its ID. Empty is fine; it only
	// matters when observability is enabled.
	Label string
}

// Parallel reproduces the Parallel.js entry point:
//
//	p := workers.New(list, workers.Options{MaxWorkers: 2})
//	job := p.Map(double)
//
// matching Listing 1's `new Parallel([1,2,3,4], {maxWorkers: 2}); p.map(...)`.
type Parallel struct {
	data *value.List
	opts Options
}

// New builds a pool over data.
func New(data *value.List, opts Options) *Parallel {
	if opts.MaxWorkers <= 0 {
		opts.MaxWorkers = DefaultWorkers()
	}
	return &Parallel{data: data, opts: opts}
}

// Data returns the pool's input list (Listing 1 reads p.data after the map;
// before any operation this is the input, afterwards use Job.Wait).
func (p *Parallel) Data() *value.List { return p.data }

// MaxWorkers reports the effective worker count for this pool.
func (p *Parallel) MaxWorkers() int { return p.opts.MaxWorkers }

// Job is an in-flight parallel operation. Listing 2 polls
// `p.operation._resolved` from the Snap! scheduler; Resolved is that flag.
type Job struct {
	resolved atomic.Bool
	canceled atomic.Bool
	done     chan struct{}

	mu     sync.Mutex
	result *value.List
	err    error

	loads []int64 // elements processed per worker, for E10
	costs []int64 // virtual cost processed per worker, for E10

	chunks atomic.Int64 // chunks run, counted only while obs is enabled
}

func newJob(workers int) *Job {
	return &Job{
		done:  make(chan struct{}),
		loads: make([]int64, workers),
		costs: make([]int64, workers),
	}
}

// Resolved reports, without blocking, whether the job has finished — the
// poll the paper's reportParallelMap performs on every runStep.
func (j *Job) Resolved() bool { return j.resolved.Load() }

// ErrCanceled resolves a job whose work was canceled before completion —
// the Worker.terminate() of a pool operation (pressing the red stop button
// while workers grind).
var ErrCanceled = errors.New("parallel job canceled")

// Cancel asks the job's workers to stop after their current element. The
// job then resolves with ErrCanceled. Canceling a resolved job is a no-op.
func (j *Job) Cancel() { j.canceled.Store(true) }

// Wait blocks until the job resolves and returns its result.
func (j *Job) Wait() (*value.List, error) {
	<-j.done
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// WorkerLoads reports how many elements each worker processed. Only valid
// after the job resolves.
func (j *Job) WorkerLoads() []int64 {
	out := make([]int64, len(j.loads))
	for i := range j.loads {
		out[i] = atomic.LoadInt64(&j.loads[i])
	}
	return out
}

// WorkerCosts reports each worker's accumulated virtual cost (see
// Options.Cost). Only valid after the job resolves.
func (j *Job) WorkerCosts() []int64 {
	out := make([]int64, len(j.costs))
	for i := range j.costs {
		out[i] = atomic.LoadInt64(&j.costs[i])
	}
	return out
}

func (j *Job) finish(result *value.List, err error) {
	j.mu.Lock()
	j.result, j.err = result, err
	j.mu.Unlock()
	j.resolved.Store(true)
	close(j.done)
}

// grain resolves the effective dynamic-assignment grain for n elements on
// w workers: the configured Grain, forced to 1 when per-element cost
// instrumentation is on (the E10 ablation observes element-level
// assignment), else an automatic chunk that amortizes the shared
// fetch-add while leaving ~4 chunks per worker for balance.
func (p *Parallel) grain(n, w int) int {
	if p.opts.Cost != nil {
		return 1
	}
	if p.opts.Grain > 0 {
		return p.opts.Grain
	}
	g := n / (w * 4)
	if g > 64 {
		g = 64
	}
	// Floor the grain so a chunk is worth its shared-counter claim even
	// when the per-element work is a compiled kernel of a few tens of
	// nanoseconds — but never so high that a worker cannot get at least
	// one chunk of an evenly split list.
	lo := (n + w - 1) / w
	if lo > 8 {
		lo = 8
	}
	if g < lo {
		g = lo
	}
	if g < 1 {
		g = 1
	}
	return g
}

// ChunkHandler processes one contiguous chunk of a parallel map: src holds
// the input elements starting at 0-based list index base, and every result
// must be stored into the parallel dst slice. The handler owns the worker
// boundary for its chunk — cloning elements in and results out, amortizing
// any per-worker setup (a reusable interpreter Process, a compiled kernel's
// argument buffer) across the whole chunk instead of paying it per element.
// It should poll j.Canceled() between elements and bail with ErrCanceled;
// any other error fails the job (wrap it as "element %d: ..." with the
// 1-based index base+i+1 to match the per-element contract).
type ChunkHandler func(j *Job, base int, dst, src []value.Value) error

// Canceled reports whether Cancel has been called. ChunkHandlers poll this
// between elements so a long chunk still stops promptly.
func (j *Job) Canceled() bool { return j.canceled.Load() }

// Map applies fn to every element of the pool's data on the worker pool and
// resolves to the list of results in input order. Each element is
// structured-cloned into its worker and each result cloned back out, the
// postMessage discipline. Map is the per-element adapter over MapChunks;
// callers that can amortize work across a whole chunk use MapChunks
// directly.
func (p *Parallel) Map(fn Handler) *Job {
	clone := !p.opts.NoClone
	return p.MapChunks(func(j *Job, base int, dst, src []value.Value) error {
		for i, in := range src {
			if j.Canceled() {
				return ErrCanceled
			}
			if clone {
				in = safeClone(in)
			}
			out, err := runHandler(fn, in)
			if err != nil {
				return fmt.Errorf("element %d: %w", base+i+1, err)
			}
			if clone {
				out = safeClone(out)
			}
			dst[i] = out
		}
		return nil
	})
}

// MapChunks is the chunk-level map primitive behind Map. The work runs on
// the persistent SharedPool: one executor per requested worker, each
// claiming chunks in grain-sized slices off a shared atomic counter
// (Dynamic) or by its static schedule (Block gets one contiguous chunk per
// worker, Interleaved degenerates to single-element chunks). The last
// executor to finish resolves the job, so an operation costs zero goroutine
// spawns when the pool has idle workers.
func (p *Parallel) MapChunks(fn ChunkHandler) *Job {
	n := p.data.Len()
	w := p.opts.MaxWorkers
	if w > n && n > 0 {
		w = n
	}
	if w < 1 {
		w = 1
	}
	job := newJob(w)
	if n == 0 {
		// Nothing to map: resolve synchronously with an empty result
		// instead of spinning up executor scaffolding.
		job.finish(value.NewList(), nil)
		return job
	}
	// tracing gates every instrumented site in this operation on one
	// atomic load taken up front, so the disabled path costs a branch and
	// zero allocations, and one job's metrics are internally consistent
	// even if the switch flips mid-flight.
	tracing := obs.Enabled()
	var jobStart time.Time
	if tracing {
		jobStart = time.Now()
		obs.PoolJobs.With("map").Inc()
	}
	items := p.data.Items()
	results := make([]value.Value, n)
	var firstErr atomic.Value

	// runChunk hands [lo,hi) to the handler; true means keep claiming.
	runChunk := func(worker, lo, hi int) bool {
		if job.canceled.Load() {
			return false
		}
		var err error
		if tracing {
			chunkStart := time.Now()
			err = safeChunk(fn, job, lo, results[lo:hi], items[lo:hi])
			obs.PoolChunkSeconds.Observe(time.Since(chunkStart).Seconds())
			obs.PoolChunks.Inc()
			job.chunks.Add(1)
		} else {
			err = safeChunk(fn, job, lo, results[lo:hi], items[lo:hi])
		}
		if err != nil {
			if !errors.Is(err, ErrCanceled) {
				firstErr.CompareAndSwap(nil, err)
			}
			return false
		}
		atomic.AddInt64(&job.loads[worker], int64(hi-lo))
		if p.opts.Cost != nil {
			var c int64
			for i := lo; i < hi; i++ {
				c += p.opts.Cost(i)
			}
			atomic.AddInt64(&job.costs[worker], c)
		}
		return true
	}

	var pending atomic.Int32
	finishIfLast := func() {
		if pending.Add(-1) != 0 {
			return
		}
		var res *value.List
		var err error
		switch {
		case firstErr.Load() != nil:
			err = firstErr.Load().(error)
		case job.canceled.Load():
			err = ErrCanceled
		default:
			res = value.NewList(results...)
		}
		if tracing {
			p.traceJobEnd(job, "parallel.map", jobStart, n, w, err)
		}
		job.finish(res, err)
	}

	pool := SharedPool()
	switch p.opts.Assignment {
	case Dynamic:
		grain := p.grain(n, w)
		var next atomic.Int64
		claim := func(worker int) bool {
			lo := int(next.Add(int64(grain))) - grain
			if lo >= n {
				if tracing {
					obs.PoolClaimsEmpty.Inc()
				}
				return false
			}
			if tracing {
				obs.PoolClaims.Inc()
			}
			hi := lo + grain
			if hi > n {
				hi = n
			}
			return runChunk(worker, lo, hi)
		}
		if p.opts.Cost != nil {
			// Instrumented mode (E10): every requested worker must
			// participate so the load-balance ablation observes the
			// full w-way assignment, not however many executors the
			// cascade below happened to wake.
			pending.Store(int32(w))
			for k := 0; k < w; k++ {
				worker := k
				pool.Submit(func() {
					defer finishIfLast()
					for claim(worker) {
					}
				})
			}
			break
		}
		// Cascading spawn: executor k enlists executor k+1 only while
		// unclaimed work remains. On idle cores the chain unrolls to
		// all w executors almost immediately; on a saturated machine a
		// fast executor drains the queue before the chain grows, so a
		// small job pays for the wakeups it can use instead of w of
		// them. pending is incremented before each Submit, so the job
		// cannot resolve while a link of the chain is still in flight.
		var launch func(worker int)
		launch = func(worker int) {
			pending.Add(1)
			if tracing && worker > 0 {
				obs.PoolCascadeEnlists.Inc()
			}
			pool.Submit(func() {
				defer finishIfLast()
				if worker+1 < w && int(next.Load()) < n {
					launch(worker + 1)
				}
				for claim(worker) {
				}
			})
		}
		launch(0)
	case Block:
		chunk := (n + w - 1) / w
		active := 0
		for k := 0; k < w; k++ {
			if k*chunk < n {
				active++
			}
		}
		pending.Store(int32(active))
		for k := 0; k < w; k++ {
			lo, hi := k*chunk, (k+1)*chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				continue
			}
			worker, lo, hi := k, lo, hi
			pool.Submit(func() {
				defer finishIfLast()
				runChunk(worker, lo, hi)
			})
		}
	case Interleaved:
		pending.Store(int32(w))
		for k := 0; k < w; k++ {
			worker := k
			pool.Submit(func() {
				defer finishIfLast()
				for i := worker; i < n; i += w {
					if !runChunk(worker, i, i+1) {
						return
					}
				}
			})
		}
	}
	return job
}

// traceJobEnd records a finished job's wall time and its trace span.
// Only called on the tracing path, so the allocations here never touch a
// disabled run.
func (p *Parallel) traceJobEnd(job *Job, kind string, start time.Time, n, w int, err error) {
	dur := time.Since(start)
	obs.PoolJobSeconds.Observe(dur.Seconds())
	status := "ok"
	switch {
	case errors.Is(err, ErrCanceled):
		status = "canceled"
	case err != nil:
		status = "error"
	}
	obs.RecordSpan(obs.Span{
		ID:    p.opts.Label,
		Kind:  kind,
		Start: start,
		Dur:   dur,
		Attrs: []obs.Attr{
			obs.AttrInt("n", int64(n)),
			obs.AttrInt("workers", int64(w)),
			obs.AttrInt("chunks", job.chunks.Load()),
			{Key: "assignment", Val: p.opts.Assignment.String()},
			{Key: "status", Val: status},
		},
	})
}

// safeChunk guards the pool's executors against a panicking ChunkHandler
// the way runHandler guards per-element handlers.
func safeChunk(fn ChunkHandler, j *Job, base int, dst, src []value.Value) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("worker script error: %v", r)
		}
	}()
	return fn(j, base, dst, src)
}

// ReduceFunc combines two values; it must be associative for the parallel
// reduction to be deterministic up to association.
type ReduceFunc func(a, b value.Value) (value.Value, error)

// Reduce folds the pool's data with fn: each worker folds a contiguous
// chunk on the persistent SharedPool, then the last worker to finish folds
// the partials left-to-right and resolves the job. The empty list resolves
// to Nothing.
func (p *Parallel) Reduce(fn ReduceFunc) *Job {
	n := p.data.Len()
	w := p.opts.MaxWorkers
	if w > n && n > 0 {
		w = n
	}
	if w < 1 {
		w = 1
	}
	job := newJob(w)
	if n == 0 {
		job.finish(value.NewList(value.Nothing{}), nil)
		return job
	}
	tracing := obs.Enabled()
	var jobStart time.Time
	if tracing {
		jobStart = time.Now()
		obs.PoolJobs.With("reduce").Inc()
	}
	items := p.data.Items()
	clone := !p.opts.NoClone

	partials := make([]value.Value, w)
	errs := make([]error, w)
	chunk := (n + w - 1) / w
	active := 0
	for k := 0; k < w; k++ {
		if k*chunk < n {
			active++
		}
	}
	var pending atomic.Int32
	pending.Store(int32(active))
	finish := func(res *value.List, err error) {
		if tracing {
			p.traceJobEnd(job, "parallel.reduce", jobStart, n, w, err)
		}
		job.finish(res, err)
	}
	finishIfLast := func() {
		if pending.Add(-1) != 0 {
			return
		}
		for _, err := range errs {
			if err != nil {
				finish(nil, err)
				return
			}
		}
		var acc value.Value
		for _, part := range partials {
			if part == nil {
				continue
			}
			if acc == nil {
				acc = part
				continue
			}
			out, err := runReduce(fn, acc, part)
			if err != nil {
				finish(nil, err)
				return
			}
			acc = out
		}
		finish(value.NewList(acc), nil)
	}

	pool := SharedPool()
	for k := 0; k < w; k++ {
		lo, hi := k*chunk, (k+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		worker, lo, hi := k, lo, hi
		pool.Submit(func() {
			defer finishIfLast()
			if tracing {
				chunkStart := time.Now()
				defer func() {
					obs.PoolChunkSeconds.Observe(time.Since(chunkStart).Seconds())
					obs.PoolChunks.Inc()
					job.chunks.Add(1)
				}()
			}
			acc := items[lo]
			if clone {
				acc = safeClone(acc)
			}
			atomic.AddInt64(&job.loads[worker], 1)
			for i := lo + 1; i < hi; i++ {
				if job.canceled.Load() {
					errs[worker] = ErrCanceled
					return
				}
				in := items[i]
				if clone {
					in = safeClone(in)
				}
				out, err := runReduce(fn, acc, in)
				if err != nil {
					errs[worker] = err
					return
				}
				acc = out
				atomic.AddInt64(&job.loads[worker], 1)
			}
			partials[worker] = acc
		})
	}
	return job
}

func runReduce(fn ReduceFunc, a, b value.Value) (out value.Value, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("worker script error: %v", r)
		}
	}()
	return fn(a, b)
}
