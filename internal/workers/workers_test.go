package workers

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func double(v value.Value) (value.Value, error) {
	n, err := value.ToNumber(v)
	if err != nil {
		return nil, err
	}
	return n + n, nil
}

func TestWorkerRoundTrip(t *testing.T) {
	w := Spawn(0, double)
	defer w.Terminate()
	w.PostMessage(value.Number(21))
	m, ok := w.Receive()
	if !ok || m.Err != nil {
		t.Fatalf("receive: %v %v", ok, m.Err)
	}
	if m.Data.(value.Number) != 42 {
		t.Errorf("got %v", m.Data)
	}
	if w.ID() != 0 {
		t.Error("id")
	}
}

func TestWorkerIsolation(t *testing.T) {
	// Mutating the sent list after PostMessage must not be visible to
	// the worker (structured clone on send), and mutating the received
	// list must not touch the worker's copy (clone on receive).
	probe := make(chan *value.List, 1)
	w := Spawn(0, func(v value.Value) (value.Value, error) {
		l := v.(*value.List)
		probe <- l
		return l, nil
	})
	defer w.Terminate()
	sent := value.NewList(value.Number(1))
	w.PostMessage(sent)
	inside := <-probe
	m, _ := w.Receive()
	sent.Add(value.Number(2))
	if inside.Len() != 1 {
		t.Error("worker saw caller's mutation: no clone on send")
	}
	m.Data.(*value.List).Add(value.Number(3))
	if inside.Len() != 1 {
		t.Error("caller's mutation of reply reached worker: no clone on receive")
	}
}

func TestWorkerHandlesNilAndPanic(t *testing.T) {
	w := Spawn(0, func(v value.Value) (value.Value, error) {
		if value.IsNothing(v) {
			return nil, nil // handler may return nil; becomes Nothing
		}
		panic("boom")
	})
	defer w.Terminate()
	w.PostMessage(nil)
	m, _ := w.Receive()
	if m.Err != nil || !value.IsNothing(m.Data) {
		t.Errorf("nil round trip: %v %v", m.Data, m.Err)
	}
	w.PostMessage(value.Number(1))
	m, _ = w.Receive()
	if m.Err == nil {
		t.Error("panic should surface as error, like worker onerror")
	}
}

func TestWorkerTerminate(t *testing.T) {
	w := Spawn(0, double)
	w.Terminate()
	w.Terminate() // idempotent
	if _, ok := w.Receive(); ok {
		t.Error("terminated worker should close its outbox")
	}
}

// TestListing1 reproduces Listing 1 of the paper:
//
//	var p = new Parallel([1,2,3,4], {maxWorkers: 2});
//	p.map(mydouble);  // -> [2,4,6,8]
func TestListing1(t *testing.T) {
	p := New(value.FromInts([]int{1, 2, 3, 4}), Options{MaxWorkers: 2})
	if p.MaxWorkers() != 2 {
		t.Error("maxWorkers")
	}
	if p.Data().Len() != 4 {
		t.Error("data accessor")
	}
	got, err := p.Map(double).Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "[2 4 6 8]" {
		t.Errorf("p.data = %s, want [2 4 6 8]", got)
	}
}

func TestMapPreservesOrderAcrossPolicies(t *testing.T) {
	in := value.Range(1, 100, 1)
	for _, policy := range []Assignment{Dynamic, Block, Interleaved} {
		p := New(in, Options{MaxWorkers: 7, Assignment: policy})
		got, err := p.Map(double).Wait()
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		for i := 1; i <= 100; i++ {
			if got.MustItem(i).(value.Number) != value.Number(2*i) {
				t.Fatalf("%v: item %d = %v", policy, i, got.MustItem(i))
			}
		}
	}
}

func TestMapMoreWorkersThanItems(t *testing.T) {
	p := New(value.FromInts([]int{5}), Options{MaxWorkers: 16})
	got, err := p.Map(double).Wait()
	if err != nil || got.Len() != 1 || got.MustItem(1).(value.Number) != 10 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestMapEmptyList(t *testing.T) {
	p := New(value.NewList(), Options{MaxWorkers: 4})
	got, err := p.Map(double).Wait()
	if err != nil || got.Len() != 0 {
		t.Fatalf("empty map: %v, %v", got, err)
	}
}

func TestMapError(t *testing.T) {
	p := New(value.NewList(value.Number(1), value.Text("pear")), Options{MaxWorkers: 2})
	_, err := p.Map(double).Wait()
	if err == nil {
		t.Fatal("expected error from non-numeric element")
	}
}

func TestMapPanicBecomesError(t *testing.T) {
	p := New(value.FromInts([]int{1, 2}), Options{MaxWorkers: 2})
	_, err := p.Map(func(value.Value) (value.Value, error) { panic("kaboom") }).Wait()
	if err == nil {
		t.Fatal("panic in map fn should resolve the job with an error")
	}
}

func TestJobPolling(t *testing.T) {
	// The Listing 2 integration polls Resolved; it must eventually flip
	// and Wait must agree.
	release := make(chan struct{})
	p := New(value.FromInts([]int{1}), Options{MaxWorkers: 1})
	job := p.Map(func(v value.Value) (value.Value, error) {
		<-release
		return v, nil
	})
	if job.Resolved() {
		t.Fatal("job resolved before work ran")
	}
	close(release)
	if _, err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	if !job.Resolved() {
		t.Fatal("job must be resolved after Wait")
	}
}

func TestWorkerLoadsAccountForAllElements(t *testing.T) {
	for _, policy := range []Assignment{Dynamic, Block, Interleaved} {
		p := New(value.Range(1, 50, 1), Options{MaxWorkers: 4, Assignment: policy})
		job := p.Map(double)
		if _, err := job.Wait(); err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, l := range job.WorkerLoads() {
			total += l
		}
		if total != 50 {
			t.Errorf("%v: loads sum to %d, want 50", policy, total)
		}
	}
}

func TestBlockAssignmentIsContiguous(t *testing.T) {
	p := New(value.Range(1, 8, 1), Options{MaxWorkers: 2, Assignment: Block})
	job := p.Map(double)
	job.Wait()
	loads := job.WorkerLoads()
	if loads[0] != 4 || loads[1] != 4 {
		t.Errorf("block loads = %v, want [4 4]", loads)
	}
}

func TestReduceSum(t *testing.T) {
	add := func(a, b value.Value) (value.Value, error) {
		x, err := value.ToNumber(a)
		if err != nil {
			return nil, err
		}
		y, err := value.ToNumber(b)
		if err != nil {
			return nil, err
		}
		return x + y, nil
	}
	for _, w := range []int{1, 2, 3, 8} {
		p := New(value.Range(1, 100, 1), Options{MaxWorkers: w})
		got, err := p.Reduce(add).Wait()
		if err != nil {
			t.Fatal(err)
		}
		if got.MustItem(1).(value.Number) != 5050 {
			t.Errorf("w=%d: sum = %v, want 5050", w, got.MustItem(1))
		}
	}
}

func TestReduceEmptyAndErrors(t *testing.T) {
	p := New(value.NewList(), Options{MaxWorkers: 2})
	got, err := p.Reduce(func(a, b value.Value) (value.Value, error) { return a, nil }).Wait()
	if err != nil || !value.IsNothing(got.MustItem(1)) {
		t.Errorf("empty reduce: %v, %v", got, err)
	}
	p2 := New(value.FromInts([]int{1, 2, 3}), Options{MaxWorkers: 1})
	if _, err := p2.Reduce(func(a, b value.Value) (value.Value, error) {
		return nil, errors.New("nope")
	}).Wait(); err == nil {
		t.Error("reduce error should propagate")
	}
	p3 := New(value.FromInts([]int{1, 2}), Options{MaxWorkers: 1})
	if _, err := p3.Reduce(func(a, b value.Value) (value.Value, error) {
		panic("kaboom")
	}).Wait(); err == nil {
		t.Error("reduce panic should propagate as error")
	}
}

func TestAssignmentString(t *testing.T) {
	if Dynamic.String() != "dynamic" || Block.String() != "block" ||
		Interleaved.String() != "interleaved" || Assignment(9).String() != "assignment(9)" {
		t.Error("assignment names")
	}
}

func TestDefaultWorkers(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Error("default workers must be positive")
	}
	p := New(value.NewList(), Options{})
	if p.MaxWorkers() != DefaultWorkers() {
		t.Error("zero MaxWorkers should default")
	}
}

// Property: for any input and worker count, parallel map with structured
// clones equals sequential map (determinism / order preservation), and the
// input list is unmodified.
func TestPropertyMapEqualsSequential(t *testing.T) {
	f := func(xs []int8, wRaw uint8) bool {
		w := int(wRaw%8) + 1
		in := value.NewListCap(len(xs))
		for _, x := range xs {
			in.Add(value.Number(float64(x)))
		}
		before := in.String()
		p := New(in, Options{MaxWorkers: w})
		got, err := p.Map(double).Wait()
		if err != nil {
			return false
		}
		if in.String() != before {
			return false
		}
		for i, x := range xs {
			if got.MustItem(i+1).(value.Number) != value.Number(2*float64(x)) {
				return false
			}
		}
		return got.Len() == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: reduce with an associative op matches the sequential fold for
// every policy-independent worker count.
func TestPropertyReduceSum(t *testing.T) {
	add := func(a, b value.Value) (value.Value, error) {
		return a.(value.Number) + b.(value.Number), nil
	}
	f := func(xs []int8, wRaw uint8) bool {
		if len(xs) == 0 {
			return true
		}
		w := int(wRaw%8) + 1
		var want float64
		in := value.NewListCap(len(xs))
		for _, x := range xs {
			want += float64(x)
			in.Add(value.Number(float64(x)))
		}
		got, err := New(in, Options{MaxWorkers: w}).Reduce(add).Wait()
		if err != nil {
			return false
		}
		return float64(got.MustItem(1).(value.Number)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkCloneCost(b *testing.B) {
	// Ablation: what the share-nothing postMessage discipline costs
	// versus sharing references (which real workers cannot do).
	in := value.Range(1, 1000, 1)
	for _, noClone := range []bool{false, true} {
		name := "clone"
		if noClone {
			name = "share"
		}
		b.Run(name, func(b *testing.B) {
			p := New(in, Options{MaxWorkers: 4, NoClone: noClone})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.Map(double).Wait(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func ExampleParallel_Map() {
	// Listing 1 of the paper, in Go.
	p := New(value.FromInts([]int{1, 2, 3, 4}), Options{MaxWorkers: 2})
	data, _ := p.Map(double).Wait()
	fmt.Println(data)
	// Output: [2 4 6 8]
}

func TestJobCancel(t *testing.T) {
	// A slow map canceled mid-flight resolves with ErrCanceled.
	release := make(chan struct{})
	var started atomic.Bool
	p := New(value.Range(1, 100, 1), Options{MaxWorkers: 2})
	job := p.Map(func(v value.Value) (value.Value, error) {
		if started.CompareAndSwap(false, true) {
			<-release // first element blocks until the test cancels
		}
		return v, nil
	})
	job.Cancel()
	close(release)
	if _, err := job.Wait(); !errors.Is(err, ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled", err)
	}
	// Canceling after resolution is a no-op.
	p2 := New(value.FromInts([]int{1}), Options{MaxWorkers: 1})
	j2 := p2.Map(double)
	if _, err := j2.Wait(); err != nil {
		t.Fatal(err)
	}
	j2.Cancel()
	if res, err := j2.Wait(); err != nil || res.Len() != 1 {
		t.Errorf("cancel after resolve changed the result: %v, %v", res, err)
	}
	// Reduce cancellation.
	release3 := make(chan struct{})
	var started3 atomic.Bool
	p3 := New(value.Range(1, 1000, 1), Options{MaxWorkers: 1})
	j3 := p3.Reduce(func(a, b value.Value) (value.Value, error) {
		if started3.CompareAndSwap(false, true) {
			<-release3
		}
		return a, nil
	})
	j3.Cancel()
	close(release3)
	if _, err := j3.Wait(); !errors.Is(err, ErrCanceled) {
		t.Errorf("reduce cancel err = %v", err)
	}
}
