package workers

import (
	"fmt"
	"strconv"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/value"
)

// counterSnapshot captures the pool counters whose deltas the concurrent
// dispatch test checks for internal consistency.
type counterSnapshot struct {
	jobsMap, chunks, chunkObs, jobObs, claims int64
}

func snapCounters() counterSnapshot {
	return counterSnapshot{
		jobsMap:  obs.PoolJobs.With("map").Value(),
		chunks:   obs.PoolChunks.Value(),
		chunkObs: obs.PoolChunkSeconds.Count(),
		jobObs:   obs.PoolJobSeconds.Count(),
		claims:   obs.PoolClaims.Value(),
	}
}

// TestConcurrentChunkDispatchMetrics runs many dynamic-assignment map jobs
// from concurrent goroutines with observability on and checks that the
// metrics a scrape would see are internally consistent: every job counted
// once, every chunk timed exactly once, every dynamic claim matched by a
// dispatched chunk, and every job's span present with a chunk tally that
// agrees with the counters. Run under -race this also hammers the
// instrumented dispatch path itself.
func TestConcurrentChunkDispatchMetrics(t *testing.T) {
	prev := obs.Enabled()
	obs.SetEnabled(true)
	obs.ResetSpans()
	t.Cleanup(func() { obs.SetEnabled(prev); obs.ResetSpans() })

	const jobs = 12
	const n = 500
	before := snapCounters()

	var wg sync.WaitGroup
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			p := New(intList(n), Options{
				MaxWorkers: 4,
				Grain:      16,
				Label:      "job-" + strconv.Itoa(j),
			})
			got, err := p.MapChunks(doubleChunk).Wait()
			if err != nil {
				t.Errorf("job %d: %v", j, err)
				return
			}
			if got.Len() != n {
				t.Errorf("job %d: %d results, want %d", j, got.Len(), n)
			}
		}(j)
	}
	wg.Wait()

	after := snapCounters()
	if got := after.jobsMap - before.jobsMap; got != jobs {
		t.Errorf("map jobs counted: %d, want %d", got, jobs)
	}
	if got := after.jobObs - before.jobObs; got != jobs {
		t.Errorf("job durations observed: %d, want %d", got, jobs)
	}
	chunks := after.chunks - before.chunks
	if chunks < jobs {
		t.Errorf("chunks dispatched: %d, want at least one per job (%d)", chunks, jobs)
	}
	if got := after.chunkObs - before.chunkObs; got != chunks {
		t.Errorf("chunk durations observed: %d, chunks counted: %d — must agree", got, chunks)
	}
	if got := after.claims - before.claims; got != chunks {
		t.Errorf("dynamic claims that found work: %d, chunks run: %d — must agree", got, chunks)
	}

	// Every job left exactly one span under its label, status ok, and the
	// span chunk tallies sum to the chunk counter delta.
	var spanChunks int64
	for j := 0; j < jobs; j++ {
		spans := obs.SpansFor("job-" + strconv.Itoa(j))
		if len(spans) != 1 {
			t.Fatalf("job %d: %d spans, want 1", j, len(spans))
		}
		sp := spans[0]
		if sp.Kind != "parallel.map" {
			t.Errorf("job %d: span kind %q", j, sp.Kind)
		}
		attrs := map[string]string{}
		for _, a := range sp.Attrs {
			attrs[a.Key] = a.Val
		}
		if attrs["status"] != "ok" {
			t.Errorf("job %d: span status %q, want ok", j, attrs["status"])
		}
		if attrs["n"] != fmt.Sprint(n) {
			t.Errorf("job %d: span n=%q, want %d", j, attrs["n"], n)
		}
		c, err := strconv.ParseInt(attrs["chunks"], 10, 64)
		if err != nil || c < 1 {
			t.Errorf("job %d: span chunks=%q, want a positive count", j, attrs["chunks"])
		}
		spanChunks += c
	}
	if spanChunks != chunks {
		t.Errorf("span chunk tallies sum to %d, counters say %d", spanChunks, chunks)
	}
}

// TestReduceMetricsAndSpan covers the reduce path: job + chunk counters
// and the parallel.reduce span.
func TestReduceMetricsAndSpan(t *testing.T) {
	prev := obs.Enabled()
	obs.SetEnabled(true)
	obs.ResetSpans()
	t.Cleanup(func() { obs.SetEnabled(prev); obs.ResetSpans() })

	beforeJobs := obs.PoolJobs.With("reduce").Value()
	p := New(intList(100), Options{MaxWorkers: 4, Label: "reduce-job"})
	sum := func(a, b value.Value) (value.Value, error) {
		x, _ := value.ToNumber(a)
		y, _ := value.ToNumber(b)
		return value.Number(x + y), nil
	}
	got, err := p.Reduce(sum).Wait()
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Item(1); v.String() != "5050" {
		t.Fatalf("reduce result %s, want 5050", v)
	}
	if d := obs.PoolJobs.With("reduce").Value() - beforeJobs; d != 1 {
		t.Errorf("reduce jobs counted: %d, want 1", d)
	}
	spans := obs.SpansFor("reduce-job")
	if len(spans) != 1 || spans[0].Kind != "parallel.reduce" {
		t.Fatalf("spans for reduce-job: %+v, want one parallel.reduce span", spans)
	}
}

// TestDisabledJobLeavesCountersUntouched pins the gate: with the switch
// off, running a job moves no counters and records no spans.
func TestDisabledJobLeavesCountersUntouched(t *testing.T) {
	prev := obs.Enabled()
	obs.SetEnabled(false)
	obs.ResetSpans()
	t.Cleanup(func() { obs.SetEnabled(prev); obs.ResetSpans() })

	before := snapCounters()
	spanCount := obs.SpanCount()
	p := New(intList(200), Options{MaxWorkers: 4, Label: "dark-job"})
	if _, err := p.MapChunks(doubleChunk).Wait(); err != nil {
		t.Fatal(err)
	}
	if after := snapCounters(); after != before {
		t.Errorf("disabled run moved counters: %+v -> %+v", before, after)
	}
	if obs.SpanCount() != spanCount {
		t.Errorf("disabled run recorded spans")
	}
}
