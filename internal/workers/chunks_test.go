package workers

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/value"
)

func intList(n int) *value.List {
	items := make([]value.Value, n)
	for i := range items {
		items[i] = value.Number(float64(i + 1))
	}
	return value.NewList(items...)
}

// doubleChunk is the chunk-shaped equivalent of the per-element double
// handler the other tests use.
func doubleChunk(j *Job, base int, dst, src []value.Value) error {
	for i, in := range src {
		n, err := value.ToNumber(in)
		if err != nil {
			return fmt.Errorf("element %d: %w", base+i+1, err)
		}
		dst[i] = value.Number(float64(n) * 2)
	}
	return nil
}

func TestMapChunksAllPolicies(t *testing.T) {
	for _, policy := range []Assignment{Dynamic, Block, Interleaved} {
		for _, n := range []int{0, 1, 7, 64, 257} {
			p := New(intList(n), Options{MaxWorkers: 4, Assignment: policy})
			got, err := p.MapChunks(doubleChunk).Wait()
			if err != nil {
				t.Fatalf("%v n=%d: %v", policy, n, err)
			}
			if got.Len() != n {
				t.Fatalf("%v n=%d: got %d results", policy, n, got.Len())
			}
			for i := 0; i < n; i++ {
				v, _ := got.Item(i + 1)
				if v.String() != fmt.Sprint(2*(i+1)) {
					t.Fatalf("%v n=%d item %d: got %s", policy, n, i+1, v)
				}
			}
		}
	}
}

func TestMapChunksBaseIsListIndex(t *testing.T) {
	// Every chunk must see base equal to the list offset of src[0],
	// whatever the assignment policy carved.
	for _, policy := range []Assignment{Dynamic, Block, Interleaved} {
		p := New(intList(100), Options{MaxWorkers: 3, Assignment: policy, Grain: 7})
		job := p.MapChunks(func(j *Job, base int, dst, src []value.Value) error {
			for i, in := range src {
				n, err := value.ToNumber(in)
				if err != nil {
					return err
				}
				// items are 1..100, so item at list index k is k+1
				if int(n) != base+i+1 {
					return fmt.Errorf("base %d + offset %d saw element %v", base, i, in)
				}
				dst[i] = in
			}
			return nil
		})
		if _, err := job.Wait(); err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
	}
}

func TestMapChunksErrorKeepsElementFormat(t *testing.T) {
	p := New(intList(20), Options{MaxWorkers: 2})
	job := p.MapChunks(func(j *Job, base int, dst, src []value.Value) error {
		for i, in := range src {
			if in.String() == "13" {
				return fmt.Errorf("element %d: unlucky", base+i+1)
			}
			dst[i] = in
		}
		return nil
	})
	_, err := job.Wait()
	if err == nil || !strings.Contains(err.Error(), "element 13: unlucky") {
		t.Fatalf("got %v", err)
	}
}

func TestMapChunksPanicBecomesWorkerScriptError(t *testing.T) {
	p := New(intList(8), Options{MaxWorkers: 2})
	job := p.MapChunks(func(j *Job, base int, dst, src []value.Value) error {
		panic("kaboom")
	})
	_, err := job.Wait()
	if err == nil || !strings.Contains(err.Error(), "worker script error: kaboom") {
		t.Fatalf("got %v", err)
	}
}

func TestMapChunksCancelMidChunk(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var once atomic.Bool
	p := New(intList(1000), Options{MaxWorkers: 2, Grain: 1000})
	job := p.MapChunks(func(j *Job, base int, dst, src []value.Value) error {
		for i, in := range src {
			if once.CompareAndSwap(false, true) {
				close(started)
				<-release
			}
			if j.Canceled() {
				return ErrCanceled
			}
			dst[i] = in
		}
		return nil
	})
	<-started
	job.Cancel()
	close(release)
	_, err := job.Wait()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
}

func TestMapChunksLoadsSumToN(t *testing.T) {
	const n = 123
	p := New(intList(n), Options{MaxWorkers: 4, Grain: 10})
	job := p.MapChunks(doubleChunk)
	if _, err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, l := range job.WorkerLoads() {
		sum += l
	}
	if sum != n {
		t.Fatalf("loads sum to %d, want %d", sum, n)
	}
}

func TestMapAdapterStillClonesBoundary(t *testing.T) {
	// The per-element Map adapter must keep the postMessage discipline:
	// a handler mutating its input list must not affect the caller's data.
	inner := value.NewList(value.Number(1))
	p := New(value.NewList(inner), Options{MaxWorkers: 1})
	job := p.Map(func(v value.Value) (value.Value, error) {
		if l, ok := v.(*value.List); ok {
			l.Add(value.Number(99))
		}
		return v, nil
	})
	out, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if inner.Len() != 1 {
		t.Fatalf("input list mutated through the worker boundary: %s", inner)
	}
	got, _ := out.Item(1)
	if l, ok := got.(*value.List); !ok || l.Len() != 2 {
		t.Fatalf("result should reflect the handler's mutation: %s", got)
	}
}
