// Package lint statically checks block projects before they run — the
// guard rails a beginner-facing environment needs. Snap! itself reports
// most mistakes only when a script reaches them (the red halo); for a
// curriculum where "every 50 minutes a new set of 24-25" students starts
// from scratch (§5), catching the common failures up front matters:
//
//   - references to variables no scope declares
//   - broadcasts of messages no hat listens for
//   - calls to undefined custom blocks, or with the wrong input count
//   - blocks whose opcode the runtime does not implement, or with the
//     wrong number of inputs
//   - cloning sprites that do not exist
//   - variables captured inside a worker-bound ring (parallelMap,
//     mapReduce, ...): closures do not ship to workers (§4, Listing 2
//     rebuilds the function from source), so those reads fail at run time
package lint

import (
	"fmt"

	"repro/internal/blocks"
	"repro/internal/interp"
)

// Severity grades a finding.
type Severity int

// The severities.
const (
	Warning Severity = iota
	Error
)

// String names the severity.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Finding is one diagnostic.
type Finding struct {
	Severity Severity
	// Sprite names the sprite owning the script ("" for project-level).
	Sprite string
	// Code classifies the finding (undefined-variable, unknown-message,
	// bad-arity, unknown-block, undefined-custom, worker-capture,
	// unknown-clone-target).
	Code string
	// Where is the offending block's spelling.
	Where string
	// Message explains the problem.
	Message string
}

// String renders "severity [code] sprite: message".
func (f Finding) String() string {
	sprite := f.Sprite
	if sprite == "" {
		sprite = "project"
	}
	return fmt.Sprintf("%s [%s] %s: %s", f.Severity, f.Code, sprite, f.Message)
}

// arities maps opcodes to their declared input count. Negative values mark
// variadic opcodes, encoded as -(min+1): -1 means "any number", -2 means
// "at least one".
var arities = map[string]int{
	"reportSum": 2, "reportDifference": 2, "reportProduct": 2,
	"reportQuotient": 2, "reportModulus": 2, "reportRound": 1,
	"reportMonadic": 2, "reportRandom": 2,
	"reportLessThan": 2, "reportEquals": 2, "reportGreaterThan": 2,
	"reportAnd": 2, "reportOr": 2, "reportNot": 1, "reportIfElse": 3,
	"reportJoinWords": -2, "reportLetter": 2, "reportStringSize": 1,
	"reportTextSplit": 2,
	"reportNewList":   -1, "reportNumbers": 2, "reportListItem": 2,
	"reportListLength": 1, "reportListContainsItem": 2,
	"doAddToList": 2, "doDeleteFromList": 2, "doInsertInList": 3,
	"doReplaceInList": 3,
	"doSetVar":        2, "doChangeVar": 2, "doDeclareVariables": -2,
	"doIf": 2, "doIfElse": 3, "doRepeat": 2, "doForever": 1,
	"doUntil": 2, "doFor": 4, "doWait": 1, "doWarp": 1,
	"doReport": 1, "doStopThis": 0,
	"reportMap": 2, "reportKeep": 2, "reportCombine": 2, "doForEach": 3,
	"reportParallelMap": 3, "doParallelForEach": 5, "reportMapReduce": 3,
	"reportParallelKeep": 3, "reportParallelCombine": 3,
	"evaluate": -2, "doRun": -2, "evaluateCustomBlock": -2,
	"doBroadcast": 1, "doBroadcastAndWait": 1,
	"createClone": 1, "removeClone": 0,
	"forward": 1, "turn": 1, "turnLeft": 1, "gotoXY": 2,
	"bubble": 1, "doThink": 1, "getTimer": 0, "doResetTimer": 0,
	"reportMyName":   0,
	"reportReadFile": 1, "reportFileLines": 1,
	"doWriteFile": 2, "doAppendToFile": 2,
	"snapWorkerLoop": 0,
}

// workerRingOps maps opcodes to the indices of ring inputs that ship to
// workers (where closures are stripped).
var workerRingOps = map[string][]int{
	"reportParallelMap":     {0},
	"reportParallelKeep":    {0},
	"reportParallelCombine": {1},
	"reportMapReduce":       {0, 1},
}

// workerUnavailableOps maps opcodes that fail at run time when executed on
// a worker to the resource they need. Workers are share-nothing: no stage,
// no sprites, no file system, no custom-block table — the runtime raises
// "not available inside a web worker" when a shipped ring reaches one of
// these; the linter catches it statically. (parallelForEach bodies are NOT
// worker-bound — they run on stage clones under the scheduler — so only
// the rings of workerRingOps are checked.)
var workerUnavailableOps = map[string]string{
	"forward": "the stage", "turn": "the stage", "turnLeft": "the stage",
	"gotoXY": "the stage", "bubble": "the stage", "doThink": "the stage",
	"getTimer": "the stage", "doResetTimer": "the stage",
	"reportMyName": "the stage", "createClone": "the stage",
	"removeClone": "the stage", "doBroadcast": "the stage",
	"doBroadcastAndWait": "the stage",
	"reportReadFile":     "files", "reportFileLines": "files",
	"doWriteFile": "files", "doAppendToFile": "files",
	"evaluateCustomBlock": "custom blocks",
}

// checkWorkerAvailable flags a block that needs a resource workers do not
// have, inside a ring that ships to workers.
func (l *linter) checkWorkerAvailable(sp *blocks.Sprite, b *blocks.Block) {
	if what, ok := workerUnavailableOps[b.Op]; ok {
		l.report(sp, Warning, "worker-unavailable", b,
			"%q needs %s, which is not available inside a web worker; this block will fail at run time", b.Op, what)
	}
}

// Project checks a whole project.
func Project(p *blocks.Project) []Finding {
	l := &linter{project: p, messages: map[string]bool{}}
	// Collect the hats listened for, for the unknown-message check.
	for _, sp := range p.Sprites {
		for _, hs := range sp.Scripts {
			if hs.Hat == blocks.HatBroadcast {
				l.messages[hs.Arg] = true
			}
		}
	}
	for _, sp := range p.Sprites {
		for _, hs := range sp.Scripts {
			scope := l.spriteScope(sp)
			l.script(sp, hs.Script, scope, false)
		}
		for _, cb := range sp.Customs {
			l.custom(sp, cb)
		}
	}
	for _, cb := range p.Customs {
		l.custom(nil, cb)
	}
	return l.findings
}

type linter struct {
	project  *blocks.Project
	messages map[string]bool
	findings []Finding
}

func (l *linter) report(sp *blocks.Sprite, sev Severity, code string, where blocks.Node, format string, args ...any) {
	name := ""
	if sp != nil {
		name = sp.Name
	}
	w := ""
	if where != nil {
		w = where.Describe()
	}
	l.findings = append(l.findings, Finding{
		Severity: sev, Sprite: name, Code: code, Where: w,
		Message: fmt.Sprintf(format, args...),
	})
}

// scope is the set of visible variable names.
type scope map[string]bool

func (s scope) with(names ...string) scope {
	out := make(scope, len(s)+len(names))
	for n := range s {
		out[n] = true
	}
	for _, n := range names {
		out[n] = true
	}
	return out
}

func (l *linter) spriteScope(sp *blocks.Sprite) scope {
	s := scope{}
	for name := range l.project.Globals {
		s[name] = true
	}
	if sp != nil {
		for name := range sp.Variables {
			s[name] = true
		}
	}
	return s
}

func (l *linter) custom(sp *blocks.Sprite, cb *blocks.CustomBlock) {
	s := l.spriteScope(sp).with(cb.Params...)
	l.script(sp, cb.Body, s, false)
}

// script walks a script in order, extending the scope at declarations.
// inWorker marks ring bodies that will execute on a worker with the
// environment stripped.
func (l *linter) script(sp *blocks.Sprite, s *blocks.Script, sc scope, inWorker bool) scope {
	if s == nil {
		return sc
	}
	for _, b := range s.Blocks {
		sc = l.block(sp, b, sc, inWorker)
	}
	return sc
}

// literalName extracts a name from a literal-text input.
func literalName(n blocks.Node) (string, bool) {
	if lit, ok := n.(blocks.Literal); ok && lit.Val != nil {
		return lit.Val.String(), true
	}
	return "", false
}

func (l *linter) block(sp *blocks.Sprite, b *blocks.Block, sc scope, inWorker bool) scope {
	// Opcode and arity.
	if !interp.HasPrimitive(b.Op) {
		l.report(sp, Error, "unknown-block", b, "no implementation for block %q", b.Op)
		return sc
	}
	if want, ok := arities[b.Op]; ok {
		got := len(b.Inputs)
		if want >= 0 && got != want {
			l.report(sp, Error, "bad-arity", b, "%s takes %d inputs, has %d", b.Op, want, got)
		} else if want < 0 && got < -want-1 {
			l.report(sp, Error, "bad-arity", b, "%s takes at least %d inputs, has %d", b.Op, -want-1, got)
		}
	}
	if inWorker {
		// Shipped command-ring scripts flow through here with inWorker
		// set; reporter-ring bodies take the checkWorkerBody path.
		l.checkWorkerAvailable(sp, b)
	}

	// Opcode-specific checks and scope effects.
	switch b.Op {
	case "doDeclareVariables":
		var names []string
		for _, in := range b.Inputs {
			if name, ok := literalName(in); ok {
				names = append(names, name)
			}
		}
		return sc.with(names...)
	case "doSetVar", "doChangeVar":
		if name, ok := literalName(b.Input(0)); ok && !sc[name] {
			l.report(sp, Error, "undefined-variable", b,
				"variable %q is not declared in any visible scope", name)
		}
		l.inputs(sp, b, sc, inWorker, 1)
		return sc
	case "doFor", "doForEach":
		name, _ := literalName(b.Input(0))
		l.inputsExcept(sp, b, sc, inWorker, map[int]scope{arityBodyIndex(b.Op): sc.with(name)}, 0)
		return sc
	case "doParallelForEach":
		name, _ := literalName(b.Input(0))
		// The body runs on stage clones (full closure), not workers.
		l.checkNode(sp, b.Input(1), sc, inWorker)
		l.checkNode(sp, b.Input(2), sc, inWorker)
		l.bodyNode(sp, b.Input(3), sc.with(name), inWorker)
		return sc
	case "doBroadcast", "doBroadcastAndWait":
		if msg, ok := literalName(b.Input(0)); ok && !l.messages[msg] {
			l.report(sp, Warning, "unknown-message", b,
				"no script listens for message %q", msg)
		}
		l.inputs(sp, b, sc, inWorker, 1)
		return sc
	case "createClone":
		if name, ok := literalName(b.Input(0)); ok && name != "myself" && name != "" {
			if l.project.Sprite(name) == nil {
				l.report(sp, Error, "unknown-clone-target", b,
					"no sprite named %q to clone", name)
			}
		}
		return sc
	case "evaluateCustomBlock":
		name, ok := literalName(b.Input(0))
		if !ok {
			l.inputs(sp, b, sc, inWorker, 0)
			return sc
		}
		cb := l.project.LookupCustom(sp, name)
		if cb == nil {
			l.report(sp, Error, "undefined-custom", b, "undefined custom block %q", name)
		} else if got := len(b.Inputs) - 1; got != len(cb.Params) {
			l.report(sp, Error, "bad-arity", b,
				"custom block %q takes %d inputs, has %d", name, len(cb.Params), got)
		}
		l.inputs(sp, b, sc, inWorker, 1)
		return sc
	}

	if ringIdxs, ok := workerRingOps[b.Op]; ok {
		workerSet := map[int]bool{}
		for _, i := range ringIdxs {
			workerSet[i] = true
		}
		for i := range b.Inputs {
			l.checkNodeWorker(sp, b.Input(i), sc, inWorker || workerSet[i], workerSet[i])
		}
		return sc
	}

	l.inputs(sp, b, sc, inWorker, 0)
	return sc
}

// arityBodyIndex says which input of a loop opcode is the body slot.
func arityBodyIndex(op string) int {
	if op == "doFor" {
		return 3
	}
	return 2 // doForEach
}

// inputs checks inputs from index `from` onward under the current scope.
func (l *linter) inputs(sp *blocks.Sprite, b *blocks.Block, sc scope, inWorker bool, from int) {
	for i := from; i < len(b.Inputs); i++ {
		l.checkNode(sp, b.Input(i), sc, inWorker)
	}
}

// inputsExcept checks inputs with per-index scope overrides.
func (l *linter) inputsExcept(sp *blocks.Sprite, b *blocks.Block, sc scope, inWorker bool, overrides map[int]scope, skip int) {
	for i := skip; i < len(b.Inputs); i++ {
		use := sc
		if o, ok := overrides[i]; ok {
			use = o
		}
		l.checkNode(sp, b.Input(i), use, inWorker)
	}
}

func (l *linter) bodyNode(sp *blocks.Sprite, n blocks.Node, sc scope, inWorker bool) {
	switch x := n.(type) {
	case blocks.ScriptNode:
		l.script(sp, x.Script, sc, inWorker)
	case blocks.RingNode:
		if s, ok := x.Body.(*blocks.Script); ok {
			l.script(sp, s, sc.with(x.Params...), inWorker)
			return
		}
		l.checkNode(sp, n, sc, inWorker)
	default:
		l.checkNode(sp, n, sc, inWorker)
	}
}

func (l *linter) checkNode(sp *blocks.Sprite, n blocks.Node, sc scope, inWorker bool) {
	l.checkNodeWorker(sp, n, sc, inWorker, false)
}

// checkNodeWorker walks an input node. enteringWorker marks a ring that is
// about to be shipped: inside it, free variables are errors because the
// environment does not transfer.
func (l *linter) checkNodeWorker(sp *blocks.Sprite, n blocks.Node, sc scope, inWorker, enteringWorker bool) {
	switch x := n.(type) {
	case blocks.VarGet:
		if !sc[x.Name] {
			if inWorker {
				l.report(sp, Error, "worker-capture", x,
					"variable %q is read inside a worker-bound ring; closures do not ship to workers — pass it as a ring parameter", x.Name)
				return
			}
			l.report(sp, Error, "undefined-variable", x,
				"variable %q is not declared in any visible scope", x.Name)
		}
	case *blocks.Block:
		l.block(sp, x, sc, inWorker)
	case blocks.RingNode:
		inner := sc.with(x.Params...)
		useWorker := inWorker || enteringWorker
		switch body := x.Body.(type) {
		case *blocks.Script:
			if enteringWorker {
				// A shipped command ring sees only its parameters
				// and its own declarations.
				inner = scope{}.with(x.Params...)
			}
			l.script(sp, body, inner, useWorker)
		case blocks.Node:
			// Ring params shield their names even in workers: track
			// by removing them from the "free" condition. Inside a
			// worker, params are the ONLY visible names.
			if useWorker {
				l.checkWorkerBody(sp, body, x.Params)
				return
			}
			l.checkNodeWorker(sp, body, inner, false, false)
		}
	case blocks.ScriptNode:
		l.script(sp, x.Script, sc, inWorker)
	}
}

// collectDeclared gathers names declared by doDeclareVariables and loop
// binders anywhere in a subtree — visible inside a shipped ring body even
// though the outer environment is not.
func collectDeclared(n blocks.Node, into []string) []string {
	switch x := n.(type) {
	case *blocks.Block:
		switch x.Op {
		case "doDeclareVariables":
			for _, in := range x.Inputs {
				if name, ok := literalName(in); ok {
					into = append(into, name)
				}
			}
		case "doFor", "doForEach", "doParallelForEach":
			if name, ok := literalName(x.Input(0)); ok {
				into = append(into, name)
			}
		}
		for i := range x.Inputs {
			into = collectDeclared(x.Input(i), into)
		}
	case blocks.ScriptNode:
		for _, blk := range x.Script.Blocks {
			into = collectDeclared(blk, into)
		}
	case blocks.RingNode:
		if s, ok := x.Body.(*blocks.Script); ok {
			for _, blk := range s.Blocks {
				into = collectDeclared(blk, into)
			}
		} else if b, ok := x.Body.(blocks.Node); ok {
			into = collectDeclared(b, into)
		}
	}
	return into
}

// checkWorkerBody walks a shipped ring body where only the ring's own
// parameters (and names the body itself declares) are visible.
func (l *linter) checkWorkerBody(sp *blocks.Sprite, n blocks.Node, params []string) {
	params = collectDeclared(n, append([]string{}, params...))
	visible := scope{}.with(params...)
	switch x := n.(type) {
	case blocks.VarGet:
		if !visible[x.Name] {
			l.report(sp, Error, "worker-capture", x,
				"variable %q is read inside a worker-bound ring; closures do not ship to workers — pass it as a ring parameter", x.Name)
		}
	case *blocks.Block:
		l.checkWorkerAvailable(sp, x)
		for i := range x.Inputs {
			l.checkWorkerBody(sp, x.Input(i), params)
		}
	case blocks.RingNode:
		inner := append(append([]string{}, params...), x.Params...)
		switch body := x.Body.(type) {
		case *blocks.Script:
			for _, blk := range body.Blocks {
				l.checkWorkerBody(sp, blk, inner)
			}
		case blocks.Node:
			l.checkWorkerBody(sp, body, inner)
		}
	case blocks.ScriptNode:
		for _, blk := range x.Script.Blocks {
			l.checkWorkerBody(sp, blk, params)
		}
	}
}
