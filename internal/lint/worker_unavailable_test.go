package lint

import (
	"strings"
	"testing"

	"repro/internal/blocks"
)

// workerRingWith wraps a reporter body in a parallelMap and hands it to the
// linter — the canonical worker-bound position.
func workerRingWith(body blocks.Node) *blocks.Project {
	return spriteWith(blocks.NewScript(
		blocks.Say(blocks.ParallelMap(
			blocks.RingOf(body),
			blocks.ListOf(blocks.Num(1)), blocks.Empty())),
	))
}

func TestWorkerUnavailableStageBlock(t *testing.T) {
	// `timer` inside a parallelMap ring: the worker has no stage.
	fs := Project(workerRingWith(blocks.Reporter(blocks.NewBlock("getTimer"))))
	if findingCodes(fs)["worker-unavailable"] != 1 {
		t.Fatalf("findings = %v", fs)
	}
	f := fs[0]
	if f.Severity != Warning {
		t.Errorf("severity = %v, want warning", f.Severity)
	}
	if !strings.Contains(f.Message, "not available inside a web worker") {
		t.Errorf("message = %q", f.Message)
	}
}

func TestWorkerUnavailableFileBlock(t *testing.T) {
	fs := Project(workerRingWith(
		blocks.Reporter(blocks.NewBlock("reportFileLines", blocks.Txt("data.txt")))))
	if findingCodes(fs)["worker-unavailable"] != 1 {
		t.Fatalf("findings = %v", fs)
	}
	if !strings.Contains(fs[0].Message, "files") {
		t.Errorf("message = %q", fs[0].Message)
	}
}

func TestWorkerUnavailableCustomBlock(t *testing.T) {
	p := blocks.NewProject("t")
	p.Customs["double"] = &blocks.CustomBlock{
		Name: "double", Params: []string{"n"},
		Body: blocks.NewScript(blocks.Report(blocks.Product(blocks.Var("n"), blocks.Num(2)))),
	}
	sp := p.AddSprite(blocks.NewSprite("S"))
	sp.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.Say(blocks.ParallelMap(
			blocks.RingOf(blocks.Reporter(blocks.NewBlock("evaluateCustomBlock",
				blocks.Txt("double"), blocks.Empty()))),
			blocks.ListOf(blocks.Num(1)), blocks.Empty())),
	))
	fs := Project(p)
	if findingCodes(fs)["worker-unavailable"] != 1 {
		t.Fatalf("findings = %v", fs)
	}
	if !strings.Contains(fs[0].Message, "custom blocks") {
		t.Errorf("message = %q", fs[0].Message)
	}
}

func TestWorkerUnavailableAllWorkerRingOps(t *testing.T) {
	// The warning must fire from every worker-bound ring position:
	// parallelMap, parallelKeep, parallelCombine, and both mapReduce rings.
	timer := func() blocks.Node { return blocks.RingOf(blocks.Reporter(blocks.NewBlock("getTimer"))) }
	clean := func() blocks.Node { return blocks.RingOf(blocks.Sum(blocks.Empty(), blocks.Empty())) }
	list := func() blocks.Node { return blocks.ListOf(blocks.Num(1)) }
	cases := []struct {
		name  string
		block *blocks.Block
		want  int
	}{
		{"parallelMap", blocks.ParallelMap(timer(), list(), blocks.Empty()), 1},
		{"parallelKeep", blocks.NewBlock("reportParallelKeep", timer(), list(), blocks.Empty()), 1},
		{"parallelCombine", blocks.NewBlock("reportParallelCombine", list(), timer(), blocks.Empty()), 1},
		{"mapReduce both rings", blocks.MapReduce(timer(), timer(), list()), 2},
		{"mapReduce one clean", blocks.MapReduce(clean(), timer(), list()), 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := Project(spriteWith(blocks.NewScript(blocks.Say(tc.block))))
			if got := findingCodes(fs)["worker-unavailable"]; got != tc.want {
				t.Errorf("got %d warnings, want %d: %v", got, tc.want, fs)
			}
		})
	}
}

func TestWorkerUnavailableNotFlaggedOutsideWorkers(t *testing.T) {
	// The same blocks on the interpreter thread are fine.
	fs := Project(spriteWith(blocks.NewScript(
		blocks.Say(blocks.Reporter(blocks.NewBlock("getTimer"))),
		blocks.NewBlock("doResetTimer"),
	)))
	if findingCodes(fs)["worker-unavailable"] != 0 {
		t.Errorf("stage blocks outside workers flagged: %v", fs)
	}
	// Sequential map's ring runs on the interpreter thread too.
	fs = Project(spriteWith(blocks.NewScript(
		blocks.Say(blocks.Map(
			blocks.RingOf(blocks.Reporter(blocks.NewBlock("getTimer"))),
			blocks.ListOf(blocks.Num(1)))),
	)))
	if findingCodes(fs)["worker-unavailable"] != 0 {
		t.Errorf("sequential map ring flagged: %v", fs)
	}
}

func TestWorkerUnavailableNotFlaggedInParallelForEachBody(t *testing.T) {
	// parallelForEach bodies run on stage CLONES, not workers — stage
	// blocks there are the whole point (§3.3's pitcher sprites move).
	fs := Project(spriteWith(blocks.NewScript(
		blocks.ParallelForEach("item", blocks.ListOf(blocks.Num(1)), blocks.Empty(),
			blocks.Body(blocks.NewBlock("forward", blocks.Num(10)))),
	)))
	if findingCodes(fs)["worker-unavailable"] != 0 {
		t.Errorf("parallelForEach body flagged: %v", fs)
	}
}

func TestWorkerUnavailableInNestedRing(t *testing.T) {
	// A stage block buried in an inner sequential-map ring inside the
	// shipped ring still fails on the worker; the walk must reach it.
	fs := Project(workerRingWith(blocks.Reporter(blocks.Map(
		blocks.RingOf(blocks.Reporter(blocks.NewBlock("getTimer"))),
		blocks.Empty()))))
	if findingCodes(fs)["worker-unavailable"] != 1 {
		t.Errorf("nested ring not flagged: %v", fs)
	}
}
