package lint

import (
	"strings"
	"testing"

	"repro/internal/blocks"
	_ "repro/internal/core" // registered opcodes for HasPrimitive
	"repro/internal/demos"
)

func findingCodes(fs []Finding) map[string]int {
	out := map[string]int{}
	for _, f := range fs {
		out[f.Code]++
	}
	return out
}

func TestCleanProjectsLintClean(t *testing.T) {
	for _, p := range []*blocks.Project{
		demos.Concession(true),
		demos.Concession(false),
		demos.Dragon(3),
		demos.Balloons([]float64{0, 100}, 3),
		blocks.NewProject("empty"),
	} {
		if fs := Project(p); len(fs) != 0 {
			t.Errorf("%s: unexpected findings: %v", p.Name, fs)
		}
	}
}

func spriteWith(script *blocks.Script) *blocks.Project {
	p := blocks.NewProject("t")
	sp := p.AddSprite(blocks.NewSprite("S"))
	sp.AddScript(blocks.HatGreenFlag, "", script)
	return p
}

func TestUndefinedVariable(t *testing.T) {
	fs := Project(spriteWith(blocks.NewScript(
		blocks.Say(blocks.Var("ghost")),
	)))
	if findingCodes(fs)["undefined-variable"] != 1 {
		t.Errorf("findings = %v", fs)
	}
	// Declared-in-order variables are fine; use-before-declare is not
	// flagged position-sensitively within one script only when declared
	// later — our walk is in order, so this IS flagged.
	fs = Project(spriteWith(blocks.NewScript(
		blocks.Say(blocks.Var("x")),
		blocks.DeclareLocal("x"),
	)))
	if findingCodes(fs)["undefined-variable"] != 1 {
		t.Errorf("use-before-declare should flag: %v", fs)
	}
	// Proper order is clean.
	fs = Project(spriteWith(blocks.NewScript(
		blocks.DeclareLocal("x"),
		blocks.SetVar("x", blocks.Num(1)),
		blocks.Say(blocks.Var("x")),
	)))
	if len(fs) != 0 {
		t.Errorf("clean script flagged: %v", fs)
	}
}

func TestSetUndeclared(t *testing.T) {
	fs := Project(spriteWith(blocks.NewScript(
		blocks.SetVar("ghost", blocks.Num(1)),
	)))
	if findingCodes(fs)["undefined-variable"] != 1 {
		t.Errorf("findings = %v", fs)
	}
}

func TestGlobalsAndSpriteVarsVisible(t *testing.T) {
	p := blocks.NewProject("t")
	p.Globals["g"] = nil
	sp := p.AddSprite(blocks.NewSprite("S"))
	sp.Variables["local"] = nil
	sp.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.SetVar("g", blocks.Var("local")),
	))
	if fs := Project(p); len(fs) != 0 {
		t.Errorf("globals/sprite vars should be visible: %v", fs)
	}
}

func TestLoopVariablesVisible(t *testing.T) {
	fs := Project(spriteWith(blocks.NewScript(
		blocks.For("i", blocks.Num(1), blocks.Num(3), blocks.Body(
			blocks.Say(blocks.Var("i")))),
		blocks.ForEach("item", blocks.ListOf(blocks.Num(1)), blocks.Body(
			blocks.Say(blocks.Var("item")))),
		blocks.ParallelForEach("cup", blocks.ListOf(blocks.Num(1)), blocks.Empty(),
			blocks.Body(blocks.Say(blocks.Var("cup")))),
	)))
	if len(fs) != 0 {
		t.Errorf("loop vars should be visible in bodies: %v", fs)
	}
	// ...but not after the loop.
	fs = Project(spriteWith(blocks.NewScript(
		blocks.For("i", blocks.Num(1), blocks.Num(3), blocks.Body()),
		blocks.Say(blocks.Var("i")),
	)))
	if findingCodes(fs)["undefined-variable"] != 1 {
		t.Errorf("loop var must not leak: %v", fs)
	}
}

func TestUnknownMessage(t *testing.T) {
	fs := Project(spriteWith(blocks.NewScript(
		blocks.Broadcast(blocks.Txt("nobody-listens")),
	)))
	if findingCodes(fs)["unknown-message"] != 1 {
		t.Errorf("findings = %v", fs)
	}
	// A listener anywhere silences it; dynamic messages are not flagged.
	p := blocks.NewProject("t")
	a := p.AddSprite(blocks.NewSprite("A"))
	a.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.Broadcast(blocks.Txt("go")),
		blocks.DeclareLocal("m"),
		blocks.Broadcast(blocks.Var("m")),
	))
	b := p.AddSprite(blocks.NewSprite("B"))
	b.AddScript(blocks.HatBroadcast, "go", blocks.NewScript())
	if fs := Project(p); len(fs) != 0 {
		t.Errorf("listened message flagged: %v", fs)
	}
}

func TestUnknownBlockAndArity(t *testing.T) {
	fs := Project(spriteWith(blocks.NewScript(
		blocks.NewBlock("flyToTheMoon"),
	)))
	if findingCodes(fs)["unknown-block"] != 1 {
		t.Errorf("findings = %v", fs)
	}
	fs = Project(spriteWith(blocks.NewScript(
		blocks.NewBlock("doWait"), // missing input
	)))
	if findingCodes(fs)["bad-arity"] != 1 {
		t.Errorf("findings = %v", fs)
	}
	fs = Project(spriteWith(blocks.NewScript(
		blocks.NewBlock("doReport", blocks.NewBlock("reportSum", blocks.Num(1))),
	)))
	if findingCodes(fs)["bad-arity"] != 1 {
		t.Errorf("nested arity: %v", fs)
	}
}

func TestUndefinedCustomAndArity(t *testing.T) {
	fs := Project(spriteWith(blocks.NewScript(
		blocks.CallCustom("nope", blocks.Num(1)),
	)))
	if findingCodes(fs)["undefined-custom"] != 1 {
		t.Errorf("findings = %v", fs)
	}
	p := blocks.NewProject("t")
	p.Customs["double"] = &blocks.CustomBlock{
		Name: "double", Params: []string{"n"}, IsReporter: true,
		Body: blocks.NewScript(blocks.Report(blocks.Sum(blocks.Var("n"), blocks.Var("n")))),
	}
	sp := p.AddSprite(blocks.NewSprite("S"))
	sp.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.CallCustom("double", blocks.Num(1), blocks.Num(2)),
	))
	fs = Project(p)
	if findingCodes(fs)["bad-arity"] != 1 {
		t.Errorf("custom arity: %v", fs)
	}
	// Custom bodies are linted too (undefined var inside).
	p2 := blocks.NewProject("t2")
	p2.Customs["bad"] = &blocks.CustomBlock{
		Name: "bad", Body: blocks.NewScript(blocks.Say(blocks.Var("ghost"))),
	}
	fs = Project(p2)
	if findingCodes(fs)["undefined-variable"] != 1 {
		t.Errorf("custom body: %v", fs)
	}
}

func TestUnknownCloneTarget(t *testing.T) {
	fs := Project(spriteWith(blocks.NewScript(
		blocks.CreateCloneOf(blocks.Txt("Ghost")),
	)))
	if findingCodes(fs)["unknown-clone-target"] != 1 {
		t.Errorf("findings = %v", fs)
	}
	fs = Project(spriteWith(blocks.NewScript(
		blocks.CreateCloneOf(blocks.Txt("myself")),
	)))
	if len(fs) != 0 {
		t.Errorf("myself flagged: %v", fs)
	}
}

func TestWorkerCapture(t *testing.T) {
	// Reading an outer variable inside a parallelMap ring: flagged.
	p := blocks.NewProject("t")
	p.Globals["k"] = nil
	sp := p.AddSprite(blocks.NewSprite("S"))
	sp.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.Say(blocks.ParallelMap(
			blocks.RingOf(blocks.Sum(blocks.Var("k"), blocks.Empty())),
			blocks.ListOf(blocks.Num(1)), blocks.Empty())),
	))
	fs := Project(p)
	if findingCodes(fs)["worker-capture"] != 1 {
		t.Errorf("findings = %v", fs)
	}
	if !strings.Contains(fs[0].Message, "ring parameter") {
		t.Errorf("message should suggest the fix: %s", fs[0].Message)
	}
	// Ring parameters are fine.
	p2 := blocks.NewProject("t")
	sp2 := p2.AddSprite(blocks.NewSprite("S"))
	sp2.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.Say(blocks.ParallelMap(
			blocks.RingOf(blocks.Sum(blocks.Var("n"), blocks.Num(1)), "n"),
			blocks.ListOf(blocks.Num(1)), blocks.Empty())),
	))
	if fs := Project(p2); len(fs) != 0 {
		t.Errorf("param read flagged: %v", fs)
	}
	// The list input is NOT worker-bound: outer variables fine there.
	p3 := blocks.NewProject("t")
	p3.Globals["data"] = nil
	sp3 := p3.AddSprite(blocks.NewSprite("S"))
	sp3.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.Say(blocks.ParallelMap(
			blocks.RingOf(blocks.Sum(blocks.Empty(), blocks.Num(1))),
			blocks.Var("data"), blocks.Empty())),
	))
	if fs := Project(p3); len(fs) != 0 {
		t.Errorf("list input flagged: %v", fs)
	}
}

func TestWorkerCaptureMapReduceBothRings(t *testing.T) {
	p := blocks.NewProject("t")
	p.Globals["k"] = nil
	sp := p.AddSprite(blocks.NewSprite("S"))
	sp.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.Say(blocks.MapReduce(
			blocks.RingOf(blocks.Sum(blocks.Var("k"), blocks.Empty())),
			blocks.RingOf(blocks.Product(blocks.Var("k"), blocks.Empty())),
			blocks.ListOf(blocks.Num(1)))),
	))
	fs := Project(p)
	if findingCodes(fs)["worker-capture"] != 2 {
		t.Errorf("both rings should flag: %v", fs)
	}
}

func TestWorkerBodyOwnDeclarationsOK(t *testing.T) {
	// A shipped command ring may declare and use its own locals.
	p := blocks.NewProject("t")
	sp := p.AddSprite(blocks.NewSprite("S"))
	sp.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.Say(blocks.ParallelMap(
			blocks.RingScript(blocks.NewScript(
				blocks.DeclareLocal("tmp"),
				blocks.SetVar("tmp", blocks.Sum(blocks.Empty(), blocks.Num(1))),
				blocks.Report(blocks.Var("tmp")),
			)),
			blocks.ListOf(blocks.Num(1)), blocks.Empty())),
	))
	if fs := Project(p); len(fs) != 0 {
		t.Errorf("worker-local declarations flagged: %v", fs)
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Severity: Error, Sprite: "S", Code: "x", Message: "boom"}
	if f.String() != "error [x] S: boom" {
		t.Errorf("string = %q", f.String())
	}
	f = Finding{Severity: Warning, Code: "y", Message: "hmm"}
	if f.String() != "warning [y] project: hmm" {
		t.Errorf("string = %q", f.String())
	}
}

func TestWorkerBodyNestedForms(t *testing.T) {
	// A shipped command ring whose body uses a loop binder (for) and a
	// nested ring: all locally-bound names are fine.
	p := blocks.NewProject("t")
	sp := p.AddSprite(blocks.NewSprite("S"))
	sp.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.Say(blocks.ParallelMap(
			blocks.RingScript(blocks.NewScript(
				blocks.DeclareLocal("acc"),
				blocks.SetVar("acc", blocks.Num(0)),
				blocks.For("i", blocks.Num(1), blocks.Empty(), blocks.Body(
					blocks.ChangeVar("acc", blocks.Var("i")))),
				blocks.Report(blocks.Reporter(blocks.Call(
					blocks.RingOf(blocks.Sum(blocks.Var("k"), blocks.Num(1)), "k"),
					blocks.Var("acc")))),
			)),
			blocks.ListOf(blocks.Num(3)), blocks.Num(1))),
	))
	if fs := Project(p); len(fs) != 0 {
		t.Errorf("locally-bound worker body flagged: %v", fs)
	}
	// ...but a genuinely free variable deep inside still flags.
	p2 := blocks.NewProject("t")
	p2.Globals["outer"] = nil
	sp2 := p2.AddSprite(blocks.NewSprite("S"))
	sp2.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.Say(blocks.ParallelMap(
			blocks.RingScript(blocks.NewScript(
				blocks.If(blocks.GreaterThan(blocks.Empty(), blocks.Num(0)), blocks.Body(
					blocks.Report(blocks.Var("outer")))),
			)),
			blocks.ListOf(blocks.Num(1)), blocks.Num(1))),
	))
	if findingCodes(Project(p2))["worker-capture"] == 0 {
		t.Error("free variable in nested worker body should flag")
	}
}

func TestWorkerReporterRingWithNestedRing(t *testing.T) {
	// A shipped reporter ring containing an inner combine ring: inner
	// ring params are visible inside it.
	p := blocks.NewProject("t")
	sp := p.AddSprite(blocks.NewSprite("S"))
	sp.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.Say(blocks.ParallelMap(
			blocks.RingOf(blocks.Combine(blocks.Empty(),
				blocks.RingOf(blocks.Sum(blocks.Var("a"), blocks.Var("b")), "a", "b"))),
			blocks.ListOf(blocks.ListOf(blocks.Num(1))), blocks.Num(1))),
	))
	if fs := Project(p); len(fs) != 0 {
		t.Errorf("nested ring params flagged: %v", fs)
	}
}

func TestParallelForEachBodyIsNotWorkerBound(t *testing.T) {
	// parallelForEach clones run on the stage with full closures: outer
	// variables in the body are legal.
	p := blocks.NewProject("t")
	p.Globals["shared"] = nil
	sp := p.AddSprite(blocks.NewSprite("S"))
	sp.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.ParallelForEach("item", blocks.ListOf(blocks.Num(1)), blocks.Empty(),
			blocks.Body(blocks.SetVar("shared", blocks.Var("item")))),
	))
	if fs := Project(p); len(fs) != 0 {
		t.Errorf("stage-clone body flagged: %v", fs)
	}
}
