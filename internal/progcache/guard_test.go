// Package progcache_test holds the cross-package immutability guard: the
// cached artifacts progcache hands out are shared by every session, so
// sessions must never write through them. The test lives in an external
// test package because it drives the real runtime (runtime -> core ->
// progcache would cycle otherwise).
package progcache_test

import (
	"context"
	"sync"
	"testing"

	"repro/internal/parse"
	"repro/internal/runtime"
	"repro/internal/value"
)

// mutatorSrc hits both mutation routes out of a shared AST: a global list
// (declared in Project.Globals, mutated by doAddToList) and a local
// variable seeded from the sprite's Variables map.
const mutatorSrc = `
	(project "mutator"
	  (global g (list 1 2 3))
	  (sprite "S"
	    (local n 0)
	    (when green-flag (do
	      (add "extra" g)
	      (add "more" g)
	      (change n 1)
	      (say (length g))))))`

// TestCachedProjectImmutableAcrossSessions hammers one cached Project
// from 16 concurrent sessions, each of which appends to a global list.
// If the interpreter failed to clone initial values out of the shared
// AST, sessions would race on one *value.List (caught by -race) and the
// cached project would grow — poisoning every later cache hit.
func TestCachedProjectImmutableAcrossSessions(t *testing.T) {
	project, err := parse.Project(mutatorSrc)
	if err != nil {
		t.Fatal(err)
	}
	orig, isList := project.Globals["g"].(*value.List)
	if !isList || orig.Len() != 3 {
		t.Fatalf("global g = %v, want a 3-item list", project.Globals["g"])
	}

	mgr := runtime.NewManager(runtime.Config{MaxConcurrent: 16, MaxQueue: 16})
	const sessions = 16
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := mgr.Run(context.Background(), project, runtime.Limits{})
			if err != nil {
				t.Error(err)
				return
			}
			res, done := s.Result()
			if !done || res.Status != runtime.StatusOK {
				t.Errorf("session = %+v, want done", res)
				return
			}
			// Each session saw its own 5-item copy...
			if len(res.Trace) == 0 {
				t.Error("session produced no trace")
			}
		}()
	}
	wg.Wait()

	// ...and the shared AST never grew.
	if got := orig.Len(); got != 3 {
		t.Fatalf("cached project's global list grew to %d items; sessions wrote through the shared AST", got)
	}
}

// columnarSrc declares a global list literal long enough (32 numbers) that
// the parser builds it with a columnar backing in the shared AST. Each
// session appends text to its copy — the mutation that upgrades a columnar
// list to boxed — and reads an item, which materializes the shared list's
// memoized boxed view concurrently with the other 15 sessions.
const columnarSrc = `
	(project "columnar-mutator"
	  (global g (list 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16
	                  17 18 19 20 21 22 23 24 25 26 27 28 29 30 31 32))
	  (sprite "S"
	    (when green-flag (do
	      (add "extra" g)
	      (say (join (length g) " " (item 1 g)))))))`

// TestCachedColumnarListImmutableAcrossSessions is the PR 5 shared-AST
// guard re-run against a column-backed literal: 16 sessions each trigger
// the column->boxed upgrade on their clone while reading the shared list.
// The cached list must stay columnar, unchanged, and race-free (-race).
func TestCachedColumnarListImmutableAcrossSessions(t *testing.T) {
	project, err := parse.Project(columnarSrc)
	if err != nil {
		t.Fatal(err)
	}
	orig, isList := project.Globals["g"].(*value.List)
	if !isList || orig.Len() != 32 {
		t.Fatalf("global g = %v, want a 32-item list", project.Globals["g"])
	}
	if !orig.Columnar() {
		t.Fatal("32-number literal did not parse to a columnar list")
	}

	mgr := runtime.NewManager(runtime.Config{MaxConcurrent: 16, MaxQueue: 16})
	const sessions = 16
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := mgr.Run(context.Background(), project, runtime.Limits{})
			if err != nil {
				t.Error(err)
				return
			}
			res, done := s.Result()
			if !done || res.Status != runtime.StatusOK {
				t.Errorf("session = %+v, want done", res)
				return
			}
			// Reads of the shared literal race only on the atomic view.
			_ = orig.Items()
			if got := orig.MustItem(32).String(); got != "32" {
				t.Errorf("shared item 32 = %s", got)
			}
		}()
	}
	wg.Wait()

	if got := orig.Len(); got != 32 {
		t.Fatalf("cached columnar list grew to %d items", got)
	}
	if !orig.Columnar() {
		t.Fatal("cached list lost its columnar backing; a session upgraded the shared AST copy")
	}
}
