package progcache

import (
	"crypto/sha256"
	"encoding/binary"
	"math"

	"repro/internal/blocks"
	"repro/internal/value"
)

// This file defines the content addresses. Tier A's key is trivial — the
// request body is already a canonical byte string, so it is hashed raw
// with its declared format. Tier B's key is a canonical binary encoding
// of a shipped ring's structure: every node and value is written with an
// explicit type tag and every variable-length field with a length
// prefix, so two rings collide only if they are structurally identical.
// (Describe() strings are NOT used: they are for humans and would
// conflate e.g. the text "5" with the number 5.)
//
// Hashing is deliberately partial, mirroring the compiler: a ring whose
// literals carry opaque host values (or a captured environment) has no
// stable content address, and hashRing reports ok=false — the caller
// then skips the cache entirely rather than risking a collision.

// node/value type tags of the canonical encoding.
const (
	tagBlock byte = iota + 1
	tagScript
	tagLiteral
	tagEmptySlot
	tagVarGet
	tagRingNode
	tagScriptNode
	tagNilNode

	tagNothing
	tagBool
	tagNumber
	tagText
	tagList
	tagRingValue
)

// hasher accumulates the canonical encoding in one buffer that is hashed
// at the end: a streaming hash.Hash costs an interface call (and usually a
// heap-escaping slice header) per field, which dominates hashing the
// tens-to-hundreds of bytes a typical ring encodes to. len(buf) doubles as
// the cache-cost proxy for the compiled artifact.
type hasher struct {
	buf []byte
	ok  bool
}

func newHasher() *hasher {
	return &hasher{buf: make([]byte, 0, 256), ok: true}
}

// sum finalizes the content address over the accumulated encoding.
func (w *hasher) sum() (key string, cost int64) {
	d := sha256.Sum256(w.buf)
	return string(d[:]), int64(len(w.buf))
}

func (w *hasher) write(p []byte) { w.buf = append(w.buf, p...) }

func (w *hasher) tag(t byte) { w.buf = append(w.buf, t) }

func (w *hasher) uint64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.buf = append(w.buf, b[:]...)
}

func (w *hasher) str(s string) {
	w.uint64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *hasher) strs(ss []string) {
	w.uint64(uint64(len(ss)))
	for _, s := range ss {
		w.str(s)
	}
}

func (w *hasher) node(n blocks.Node) {
	if !w.ok {
		return
	}
	switch x := n.(type) {
	case nil:
		w.tag(tagNilNode)
	case *blocks.Block:
		w.tag(tagBlock)
		w.str(x.Op)
		w.uint64(uint64(len(x.Inputs)))
		for _, in := range x.Inputs {
			w.node(in)
		}
	case *blocks.Script:
		w.tag(tagScript)
		w.uint64(uint64(x.Len()))
		if x != nil {
			for _, b := range x.Blocks {
				w.node(b)
			}
		}
	case blocks.Literal:
		w.tag(tagLiteral)
		w.value(x.Val)
	case blocks.EmptySlot:
		w.tag(tagEmptySlot)
	case blocks.VarGet:
		w.tag(tagVarGet)
		w.str(x.Name)
	case blocks.RingNode:
		w.tag(tagRingNode)
		w.strs(x.Params)
		w.node(x.Body)
	case blocks.ScriptNode:
		w.tag(tagScriptNode)
		w.node(x.Script)
	default:
		w.ok = false
	}
}

func (w *hasher) value(v value.Value) {
	if !w.ok {
		return
	}
	switch x := v.(type) {
	case nil, value.Nothing:
		w.tag(tagNothing)
	case value.Bool:
		w.tag(tagBool)
		if x {
			w.write([]byte{1})
		} else {
			w.write([]byte{0})
		}
	case value.Number:
		w.tag(tagNumber)
		w.uint64(math.Float64bits(float64(x)))
	case value.Text:
		w.tag(tagText)
		w.str(string(x))
	case *value.List:
		w.tag(tagList)
		w.uint64(uint64(x.Len()))
		for i := 1; i <= x.Len(); i++ {
			w.value(x.MustItem(i))
		}
	case *blocks.Ring:
		// A ring flowing as a literal value (the compiler refuses
		// these, but the refusal itself is cacheable) — only without a
		// captured environment, which has no stable content address.
		if x.Env != nil {
			w.ok = false
			return
		}
		w.tag(tagRingValue)
		w.strs(x.Params)
		w.node(x.Body)
	default:
		w.ok = false // opaque host values have no content address
	}
}

// hashRing computes the structural content address of a shipped ring.
// ok is false when the ring has no stable address (captured environment,
// opaque literals); cost is the number of canonical bytes encoded, the
// byte-budget price of the cached compile outcome.
func hashRing(r *blocks.Ring) (key string, cost int64, ok bool) {
	if r == nil || r.Env != nil {
		return "", 0, false
	}
	w := newHasher()
	w.strs(r.Params)
	w.node(r.Body)
	if !w.ok {
		return "", 0, false
	}
	key, cost = w.sum()
	return key, cost, true
}

// BodyHash is Tier A's content address, exported for the shard router:
// routing requests by the same key the per-backend project cache uses is
// what keeps identical programs landing on the shard whose parse/lint
// (and downstream ring-compile) caches already hold them.
func BodyHash(src, format string) string { return hashBody(src, format) }

// hashBody computes Tier A's content address: the raw project bytes plus
// the declared format (the same bytes under "sblk" and "xml" must not
// collide).
func hashBody(src, format string) string {
	h := sha256.New()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(len(format)))
	h.Write(b[:])
	h.Write([]byte(format))
	h.Write([]byte(src))
	return string(h.Sum(nil))
}

// hashScript computes the structural content address of a whole script
// body, the key of the "script" tier (lowered bytecode programs). ok is
// false when any literal defeats structural hashing (opaque payloads,
// environment-carrying rings); cost prices the canonical encoding.
func hashScript(s *blocks.Script) (key string, cost int64, ok bool) {
	if s == nil {
		return "", 0, false
	}
	w := newHasher()
	w.node(s)
	if !w.ok {
		return "", 0, false
	}
	key, cost = w.sum()
	return key, cost, true
}
