package progcache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/blocks"
	"repro/internal/value"
)

func TestGetHitMissAndStats(t *testing.T) {
	c := newCache("project", 1<<20)
	loads := 0
	load := func() (any, int64) { loads++; return "v", 100 }

	v, out := c.get("k", load)
	if v != "v" || out != OutcomeMiss {
		t.Fatalf("first get = %v, %v; want v, miss", v, out)
	}
	v, out = c.get("k", load)
	if v != "v" || out != OutcomeHit {
		t.Fatalf("second get = %v, %v; want v, hit", v, out)
	}
	if loads != 1 {
		t.Fatalf("loader ran %d times, want 1", loads)
	}
	st := c.snapshot()
	want := Stats{Hits: 1, Misses: 1, Bytes: 100, Entries: 1}
	if st != want {
		t.Fatalf("stats = %+v, want %+v", st, want)
	}
}

func TestLRUEvictionUnderByteBudget(t *testing.T) {
	c := newCache("project", 250)
	at := func(k string) { // cost 100 each: budget fits two entries
		c.get(k, func() (any, int64) { return k, 100 })
	}
	at("a")
	at("b")
	at("a") // touch a: b is now least recently used
	at("c") // 300 bytes > 250: evicts b

	if _, out := c.get("a", func() (any, int64) { return "a", 100 }); out != OutcomeHit {
		t.Fatalf("a should have survived eviction, got %v", out)
	}
	if _, out := c.get("c", func() (any, int64) { return "c", 100 }); out != OutcomeHit {
		t.Fatalf("c should be resident, got %v", out)
	}
	// Reading b now is a miss that re-evicts something; check the counter
	// before perturbing the cache further.
	st := c.snapshot()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if _, out := c.get("b", func() (any, int64) { return "b", 100 }); out != OutcomeMiss {
		t.Fatalf("b should have been evicted, got %v", out)
	}
}

func TestOversizedEntryStillReturnedToCaller(t *testing.T) {
	c := newCache("project", 10)
	v, out := c.get("huge", func() (any, int64) { return "huge-value", 1000 })
	if v != "huge-value" || out != OutcomeMiss {
		t.Fatalf("get = %v, %v; want huge-value, miss", v, out)
	}
	st := c.snapshot()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversized entry should be evicted on insert: %+v", st)
	}
}

func TestSingleflightSharesOneLoad(t *testing.T) {
	const callers = 16
	c := newCache("project", 1<<20)
	var loads atomic.Int64
	gate := make(chan struct{})
	entered := make(chan struct{})

	var wg sync.WaitGroup
	outcomes := make([]Outcome, callers)
	wg.Add(1)
	go func() { // the leader: its load blocks until every follower queued up
		defer wg.Done()
		_, outcomes[0] = c.get("k", func() (any, int64) {
			loads.Add(1)
			close(entered)
			<-gate
			return "v", 10
		})
	}()
	<-entered
	for i := 1; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, out := c.get("k", func() (any, int64) {
				loads.Add(1)
				return "v", 10
			})
			if v != "v" {
				t.Errorf("caller %d got %v", i, v)
			}
			outcomes[i] = out
		}(i)
	}
	// Give the followers a moment to park on the flight, then release.
	// Even if some arrive after the load finishes, they score hits — the
	// invariant under test is that the loader runs exactly once.
	close(gate)
	wg.Wait()

	if n := loads.Load(); n != 1 {
		t.Fatalf("loader ran %d times, want 1", n)
	}
	st := c.snapshot()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
	if got := st.Hits + st.SharedLoads + st.Misses; got != callers {
		t.Fatalf("hits+shared+misses = %d, want %d", got, callers)
	}
}

func TestDisabledTiersPassThrough(t *testing.T) {
	var p *Projects // nil: disabled
	loads := 0
	for i := 0; i < 3; i++ {
		ent, out := p.Get("src", "auto", func() *ProjectEntry {
			loads++
			return &ProjectEntry{ParseErr: "x"}
		})
		if ent == nil || out != OutcomeMiss {
			t.Fatalf("disabled Get = %v, %v", ent, out)
		}
	}
	if loads != 3 {
		t.Fatalf("disabled cache memoized: %d loads, want 3", loads)
	}
	if NewProjects(-1) != nil || NewRings(0) != nil {
		t.Fatal("non-positive budgets must disable the tier")
	}
	if st := p.Stats(); st != (Stats{}) {
		t.Fatalf("disabled stats = %+v, want zero", st)
	}
}

func TestProjectsGetCachesByBodyAndFormat(t *testing.T) {
	p := NewProjects(1 << 20)
	loads := 0
	load := func() *ProjectEntry { loads++; return &ProjectEntry{} }

	p.Get("(project)", "auto", load)
	p.Get("(project)", "auto", load)
	p.Get("(project)", "sblk", load) // same bytes, different format: distinct key
	if loads != 2 {
		t.Fatalf("loads = %d, want 2 (format is part of the key)", loads)
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses", st)
	}
}

// ring builds a shipped reporter ring for hashing tests.
func ring(params []string, body blocks.Node) *blocks.Ring {
	return &blocks.Ring{Body: body, Params: params}
}

func TestHashRingStructural(t *testing.T) {
	num := func(f float64) blocks.Node { return blocks.Literal{Val: value.Number(f)} }
	txt := func(s string) blocks.Node { return blocks.Literal{Val: value.Text(s)} }

	a1, _, ok1 := hashRing(ring([]string{"x"}, blocks.NewBlock("reportSum", blocks.VarGet{Name: "x"}, num(5))))
	a2, _, ok2 := hashRing(ring([]string{"x"}, blocks.NewBlock("reportSum", blocks.VarGet{Name: "x"}, num(5))))
	if !ok1 || !ok2 || a1 != a2 {
		t.Fatal("identical rings must share a content address")
	}

	cases := []*blocks.Ring{
		ring([]string{"y"}, blocks.NewBlock("reportSum", blocks.VarGet{Name: "x"}, num(5))),   // param name
		ring([]string{"x"}, blocks.NewBlock("reportSum", blocks.VarGet{Name: "x"}, num(6))),   // literal value
		ring([]string{"x"}, blocks.NewBlock("reportSum", blocks.VarGet{Name: "x"}, txt("5"))), // text "5" vs number 5
		ring([]string{"x"}, blocks.NewBlock("reportProduct", blocks.VarGet{Name: "x"}, num(5))),
	}
	for i, r := range cases {
		k, _, ok := hashRing(r)
		if !ok {
			t.Fatalf("case %d: not hashable", i)
		}
		if k == a1 {
			t.Fatalf("case %d: collided with the base ring", i)
		}
	}
}

func TestHashRingRefusesUnstableAddresses(t *testing.T) {
	if _, _, ok := hashRing(nil); ok {
		t.Fatal("nil ring must not hash")
	}
	withEnv := &blocks.Ring{Body: blocks.Literal{Val: value.Number(1)}, Env: struct{}{}}
	if _, _, ok := hashRing(withEnv); ok {
		t.Fatal("ring with captured environment must not hash")
	}
	opaque := ring(nil, blocks.Literal{Val: opaqueValue{}})
	if _, _, ok := hashRing(opaque); ok {
		t.Fatal("ring with an opaque literal must not hash")
	}
}

// opaqueValue is a host value the canonical encoding does not know.
type opaqueValue struct{}

func (opaqueValue) Kind() value.Kind   { return value.KindText }
func (opaqueValue) String() string     { return "opaque" }
func (opaqueValue) Clone() value.Value { return opaqueValue{} }

func TestHashBodyIncludesFormat(t *testing.T) {
	if hashBody("<project/>", "xml") == hashBody("<project/>", "auto") {
		t.Fatal("format must be part of the Tier A key")
	}
	// Length-prefixed: format/src boundary cannot be shifted.
	if hashBody("ab", "c") == hashBody("b", "ca") {
		t.Fatal("format/src boundary must be unambiguous")
	}
}

func TestConcurrentGetIsRaceFree(t *testing.T) {
	c := newCache("project", 500) // small budget: force concurrent evictions
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (g+i)%10)
				v, _ := c.get(k, func() (any, int64) { return k, 100 })
				if v != k {
					t.Errorf("got %v for key %s", v, k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
