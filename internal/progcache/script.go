package progcache

import (
	"repro/internal/blocks"
	"repro/internal/vm"
)

// scriptEntryOverhead prices a cached lowered program beyond its encoded
// structure (op slice headers, map slot, LRU node).
const scriptEntryOverhead = 256

// Scripts is the whole-script lowering cache: the bytecode analog of the
// ring tier, keyed by the same structural hash family, so repeated script
// bodies (the request-per-evaluation pattern every front end produces)
// skip the lowering walk entirely. A nil *Scripts lowers in place.
type Scripts struct {
	c *cache
}

// DefaultScriptBudget is the script-tier byte budget. Lowered programs
// are a few hundred bytes to a few KiB; this holds every distinct script
// a realistic session mix keeps hot.
const DefaultScriptBudget int64 = 16 << 20

// NewScripts builds a script-tier cache with the given byte budget
// (<= 0 disables caching).
func NewScripts(budget int64) *Scripts {
	c := newCache("script", budget)
	if c == nil {
		return nil
	}
	return &Scripts{c: c}
}

// DefaultScripts is the process-wide script tier, installed into
// internal/vm as its shared program cache at init.
var DefaultScripts = NewScripts(DefaultScriptBudget)

// Lower memoizes vm.LowerScript for a script body. Scripts without a
// stable content address skip the cache and pay the direct lowering.
func (sc *Scripts) Lower(s *blocks.Script) *vm.Program {
	if sc == nil || sc.c == nil {
		return vm.LowerScript(s)
	}
	key, _, hashable := hashScript(s)
	if !hashable {
		return vm.LowerScript(s)
	}
	v, _ := sc.c.get(key, func() (any, int64) {
		p := vm.LowerScript(s)
		return p, p.Cost() + scriptEntryOverhead
	})
	return v.(*vm.Program)
}

// Stats snapshots the tier's counters (zero value when disabled).
func (sc *Scripts) Stats() Stats {
	if sc == nil || sc.c == nil {
		return Stats{}
	}
	return sc.c.snapshot()
}

// Reset empties the cache (test/bench hook); no-op when disabled.
func (sc *Scripts) Reset() {
	if sc != nil && sc.c != nil {
		sc.c.reset()
	}
}

func init() {
	vm.SetProgramCache(DefaultScripts.Lower)
}
