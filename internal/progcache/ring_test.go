package progcache

import (
	"sync"
	"testing"

	"repro/internal/blocks"
	"repro/internal/obs"
	"repro/internal/value"
)

func TestCompileMemoizesSuccess(t *testing.T) {
	rc := NewRings(1 << 20)
	r := ring([]string{"x"}, blocks.NewBlock("reportSum",
		blocks.VarGet{Name: "x"}, blocks.Literal{Val: value.Number(1)}))

	fn1, ok := rc.Compile(r)
	if !ok || fn1 == nil {
		t.Fatal("x+1 should compile")
	}
	fn2, ok := rc.Compile(r)
	if !ok || fn2 == nil {
		t.Fatal("cached compile lost the function")
	}
	v, err := fn2([]value.Value{value.Number(41)})
	if err != nil {
		t.Fatal(err)
	}
	if n, isNum := v.(value.Number); !isNum || n != 42 {
		t.Fatalf("cached fn(41) = %v, want 42", v)
	}
	st := rc.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 miss / 1 hit", st)
	}
}

// TestCompileMemoizesRefusalOncePerRing is the metering half of the
// tier-decision fix: a refused ring is walked — and its
// engine_compile_fallbacks_total{reason} counter bumped — once per
// distinct ring, not once per dispatch.
func TestCompileMemoizesRefusalOncePerRing(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)

	rc := NewRings(1 << 20)
	// A command-ring (script body) refuses with reason "script-body".
	refused := &blocks.Ring{Body: blocks.NewScript(blocks.NewBlock("doNothing"))}

	before := obs.CompileFallbacks.Total()
	for i := 0; i < 10; i++ {
		if _, ok := rc.Compile(refused); ok {
			t.Fatal("script-bodied ring must refuse to compile")
		}
	}
	if got := obs.CompileFallbacks.Total() - before; got != 1 {
		t.Fatalf("fallback counter bumped %d times for 10 dispatches of one ring, want 1", got)
	}
	st := rc.Stats()
	if st.Misses != 1 || st.Hits != 9 {
		t.Fatalf("stats = %+v, want 1 miss / 9 hits", st)
	}

	// A second, structurally distinct refused ring meters separately.
	other := &blocks.Ring{Body: blocks.NewScript(blocks.NewBlock("doSomethingElse"))}
	rc.Compile(other)
	if got := obs.CompileFallbacks.Total() - before; got != 2 {
		t.Fatalf("distinct ring did not meter: %d bumps, want 2", got)
	}
}

func TestCompileSkipsCacheForUnhashableRings(t *testing.T) {
	rc := NewRings(1 << 20)
	withEnv := &blocks.Ring{Body: blocks.Literal{Val: value.Number(1)}, Env: struct{}{}}
	if _, ok := rc.Compile(withEnv); ok {
		t.Fatal("env-carrying ring must fall back to the interpreter tier")
	}
	if st := rc.Stats(); st.Misses != 0 && st.Entries != 0 {
		t.Fatalf("unhashable ring polluted the cache: %+v", st)
	}
}

func TestCompileConcurrentHammer(t *testing.T) {
	rc := NewRings(1 << 20)
	r := ring([]string{"x"}, blocks.NewBlock("reportProduct",
		blocks.VarGet{Name: "x"}, blocks.Literal{Val: value.Number(2)}))
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				fn, ok := rc.Compile(r)
				if !ok {
					t.Error("2x should compile")
					return
				}
				v, err := fn([]value.Value{value.Number(21)})
				if err != nil || v.(value.Number) != 42 {
					t.Errorf("fn(21) = %v, %v", v, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := rc.Stats()
	if st.Misses != 1 {
		t.Fatalf("ring compiled %d times under contention, want 1", st.Misses)
	}
}
