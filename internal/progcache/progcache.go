// Package progcache is the content-addressed program cache of the
// execution service. The workload it targets is the paper's own: a
// classroom of students repeatedly running near-identical block programs,
// so the service sees the same project bytes — and the same shipped rings
// inside them — over and over. Re-elaborating that work per request is
// pure waste; this package memoizes it in two tiers behind one
// singleflight front:
//
//	Tier A (project): keyed on a hash of the raw request body (project
//	bytes + declared format), stores the parsed *blocks.Project together
//	with its lint findings. A thundering herd of identical submissions
//	parses and lints once; everyone else replays the cached outcome —
//	including cached *rejections* (parse errors, lint-fatal findings),
//	so malformed resubmissions are as cheap as good ones.
//
//	Tier B (ring): keyed on a structural hash of a shipped blocks.Ring,
//	stores the compile.Ring outcome — the compiled Fn on success, the
//	refusal reason on fallback. A session dispatching the same ring job
//	after job (or many sessions running the same program) lowers it
//	once; refused rings stop paying the full lowering walk per job, and
//	their fallbacks{reason} counter stops being re-bumped per dispatch.
//
// Both tiers are LRU caches under a byte budget, safe for concurrent use,
// and instrumented through internal/obs (engine_progcache_* series on
// snapserved /metrics and in snapvm -stats). The cached artifacts are
// shared across sessions, so they are immutable by contract: the
// interpreter deep-clones initial variable values and container literals
// out of a Project before mutating them (see interp), and compiled Fns are
// pure. guard_test.go hammers one cached entry from 16 concurrent
// sessions under -race to keep that contract honest.
package progcache

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// cache is the shared engine: a byte-budget LRU with a singleflight
// front. Values are opaque; the tier wrappers give them types.
//
// Loads run outside the lock, and at most one load per key is in flight
// at a time: concurrent callers for the same missing key wait for the
// leader's result and share it (the "singleflight-shared" outcome). A
// load's outcome is always returned to its callers, even when the entry
// is bigger than the whole budget and gets evicted on insert.
type cache struct {
	tier   string // obs label: "project" or "ring"
	budget int64

	mu       sync.Mutex
	entries  map[string]*list.Element // key -> element holding *entry
	ll       *list.List               // front = most recently used
	inflight map[string]*flight
	bytes    int64
	stats    Stats
}

// entry is one resident cache line.
type entry struct {
	key  string
	val  any
	cost int64
}

// flight is one in-progress load; followers block on done.
type flight struct {
	done chan struct{}
	val  any
}

// Stats is a snapshot of one tier's counters — the always-on source of
// truth the obs series mirror (obs counters are only bumped while
// obs.Enabled(), so tests and tools that flip instrumentation mid-process
// can still read exact totals here).
type Stats struct {
	// Hits found a resident entry; Misses paid the load; SharedLoads
	// waited for another caller's in-flight load and shared its result.
	// Every Get lands in exactly one of the three.
	Hits, Misses, SharedLoads int64
	// Evictions counts entries dropped by the byte budget.
	Evictions int64
	// Bytes and Entries describe current residency.
	Bytes   int64
	Entries int
}

func newCache(tier string, budget int64) *cache {
	if budget <= 0 {
		return nil // disabled: callers treat a nil cache as a pass-through
	}
	return &cache{
		tier:     tier,
		budget:   budget,
		entries:  map[string]*list.Element{},
		ll:       list.New(),
		inflight: map[string]*flight{},
	}
}

// Outcome classifies one Get for the instrumentation.
type Outcome int

// The Get outcomes.
const (
	// OutcomeHit: the entry was resident.
	OutcomeHit Outcome = iota
	// OutcomeMiss: this caller ran the load.
	OutcomeMiss
	// OutcomeShared: another caller's in-flight load was shared.
	OutcomeShared
)

// get returns the value for key, running load (outside the lock, at most
// once concurrently per key) on a miss. cost prices the loaded value for
// the byte budget.
func (c *cache) get(key string, load func() (val any, cost int64)) (any, Outcome) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		val := el.Value.(*entry).val
		c.mu.Unlock()
		count(obs.ProgcacheHits, c.tier)
		return val, OutcomeHit
	}
	if fl, ok := c.inflight[key]; ok {
		c.stats.SharedLoads++
		c.mu.Unlock()
		count(obs.ProgcacheSharedLoads, c.tier)
		<-fl.done
		return fl.val, OutcomeShared
	}
	fl := &flight{done: make(chan struct{})}
	c.inflight[key] = fl
	c.stats.Misses++
	c.mu.Unlock()
	count(obs.ProgcacheMisses, c.tier)

	val, cost := load()
	fl.val = val
	close(fl.done)

	c.mu.Lock()
	delete(c.inflight, key)
	if _, ok := c.entries[key]; !ok { // lost-race double insert can't happen (singleflight), but stay safe
		c.entries[key] = c.ll.PushFront(&entry{key: key, val: val, cost: cost})
		c.bytes += cost
		c.evictLocked()
	}
	c.stats.Bytes = c.bytes
	c.stats.Entries = len(c.entries)
	resident := c.bytes
	c.mu.Unlock()
	obs.ProgcacheBytes.With(c.tier).Set(resident)
	return val, OutcomeMiss
}

// evictLocked drops least-recently-used entries until the budget holds.
func (c *cache) evictLocked() {
	for c.bytes > c.budget {
		back := c.ll.Back()
		if back == nil {
			return
		}
		e := back.Value.(*entry)
		c.ll.Remove(back)
		delete(c.entries, e.key)
		c.bytes -= e.cost
		c.stats.Evictions++
		count(obs.ProgcacheEvictions, c.tier)
	}
}

// snapshot reads the tier's counters.
func (c *cache) snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Bytes = c.bytes
	st.Entries = len(c.entries)
	return st
}

// reset empties the cache and zeroes its stats — a test and benchmark
// hook; the obs counters (monotonic by contract) are left alone.
func (c *cache) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[string]*list.Element{}
	c.ll = list.New()
	c.bytes = 0
	c.stats = Stats{}
	obs.ProgcacheBytes.With(c.tier).Set(0)
}

// count bumps an obs counter when instrumentation is on — the standard
// one-atomic-load disabled path of internal/obs.
func count(v *obs.CounterVec, tier string) {
	if obs.Enabled() {
		v.With(tier).Inc()
	}
}
