package progcache

import (
	"repro/internal/blocks"
)

// ProjectEntry is Tier A's cached elaboration outcome for one request
// body: either a parse failure, or the parsed project with its lint
// findings split by severity. Entries are shared across requests and
// sessions, so every field is immutable by contract — handlers must not
// append to the finding slices in place, and sessions must treat the
// Project as read-only (the interpreter clones mutable state out of it;
// see interp.NewMachine).
type ProjectEntry struct {
	// Project is the parsed AST; nil when parsing failed.
	Project *blocks.Project
	// ParseErr carries the parse failure; empty on success.
	ParseErr string
	// Fatal are error-severity lint findings (the request is rejected);
	// Warnings are echoed with a successful run.
	Fatal    []string
	Warnings []string
}

// projectEntryOverhead is the per-entry byte-budget surcharge covering
// the AST and bookkeeping beyond the raw finding strings. The parsed
// tree generally outweighs its source text, so the source is charged
// at a multiple.
const (
	projectEntryOverhead = 512
	projectASTFactor     = 3
)

func (e *ProjectEntry) cost(src string) int64 {
	n := int64(projectEntryOverhead) + int64(len(src))*projectASTFactor
	for _, f := range e.Fatal {
		n += int64(len(f))
	}
	for _, f := range e.Warnings {
		n += int64(len(f))
	}
	return n
}

// Projects is the Tier A cache. A nil *Projects is a valid pass-through:
// Get just runs the loader.
type Projects struct {
	c *cache
}

// DefaultProjectBudget is the Tier A byte budget the server uses when
// its config leaves the cache size zero: with the default 1 MiB body cap
// it holds at least a few dozen distinct projects, and a classroom's
// worth of the small ones.
const DefaultProjectBudget int64 = 32 << 20

// NewProjects builds a Tier A cache with the given byte budget
// (<= 0 disables caching: every Get runs the loader).
func NewProjects(budget int64) *Projects {
	c := newCache("project", budget)
	if c == nil {
		return nil
	}
	return &Projects{c: c}
}

// Get returns the elaboration outcome for the request body (src, format),
// running load once per distinct body — concurrent callers for the same
// missing body share one load.
func (p *Projects) Get(src, format string, load func() *ProjectEntry) (*ProjectEntry, Outcome) {
	if p == nil || p.c == nil {
		return load(), OutcomeMiss
	}
	v, out := p.c.get(hashBody(src, format), func() (any, int64) {
		ent := load()
		return ent, ent.cost(src)
	})
	return v.(*ProjectEntry), out
}

// Stats snapshots the tier's counters (zero value when disabled).
func (p *Projects) Stats() Stats {
	if p == nil || p.c == nil {
		return Stats{}
	}
	return p.c.snapshot()
}

// Reset empties the cache (test/bench hook); no-op when disabled.
func (p *Projects) Reset() {
	if p != nil && p.c != nil {
		p.c.reset()
	}
}
