package progcache

import (
	"repro/internal/blocks"
	"repro/internal/compile"
)

// ringEntry is Tier B's cached tier decision for one shipped ring: the
// compiled kernel when the body lowers, or the refusal. Either way the
// full lowering walk — and, for refusals, the
// engine_compile_fallbacks_total{reason} bump — is paid once per
// distinct ring, not once per dispatch.
type ringEntry struct {
	fn compile.Fn
	ok bool
}

// ringEntryOverhead prices a cached compile outcome beyond its encoded
// structure (closure tree, map slot, LRU node).
const ringEntryOverhead = 256

// Rings is the Tier B cache. A nil *Rings passes every Compile straight
// through to compile.Ring.
type Rings struct {
	c *cache
}

// DefaultRingBudget is the Tier B byte budget: rings are small (tens to
// hundreds of canonical bytes), so this holds every distinct ring any
// realistic mix of sessions is running.
const DefaultRingBudget int64 = 8 << 20

// NewRings builds a Tier B cache with the given byte budget (<= 0
// disables caching).
func NewRings(budget int64) *Rings {
	c := newCache("ring", budget)
	if c == nil {
		return nil
	}
	return &Rings{c: c}
}

// DefaultRings is the process-wide Tier B cache behind the kernel tier
// decision (core.RingChunkHandler and the mapReduce/combine adapters).
var DefaultRings = NewRings(DefaultRingBudget)

// Compile memoizes compile.Ring for a shipped ring. Rings without a
// stable content address (captured environment, opaque literals) skip
// the cache and pay the direct compile — exactly what compile.Ring
// would refuse anyway for the env case.
func (rc *Rings) Compile(r *blocks.Ring) (compile.Fn, bool) {
	if rc == nil || rc.c == nil {
		return compile.Ring(r)
	}
	key, cost, hashable := hashRing(r)
	if !hashable {
		return compile.Ring(r)
	}
	v, _ := rc.c.get(key, func() (any, int64) {
		fn, ok := compile.Ring(r)
		return ringEntry{fn: fn, ok: ok}, cost + ringEntryOverhead
	})
	ent := v.(ringEntry)
	return ent.fn, ent.ok
}

// Stats snapshots the tier's counters (zero value when disabled).
func (rc *Rings) Stats() Stats {
	if rc == nil || rc.c == nil {
		return Stats{}
	}
	return rc.c.snapshot()
}

// Reset empties the cache (test/bench hook); no-op when disabled.
func (rc *Rings) Reset() {
	if rc != nil && rc.c != nil {
		rc.c.reset()
	}
}

// CompileShipped is the kernel tier's entry point: Compile on the
// process-wide DefaultRings.
func CompileShipped(r *blocks.Ring) (compile.Fn, bool) {
	return DefaultRings.Compile(r)
}
