package shard

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// stubBackend is a scripted backend: a mux with /healthz always-200 plus
// whatever routes a test wires in, counting requests per path.
type stubBackend struct {
	mux *http.ServeMux
	ts  *httptest.Server

	mu   sync.Mutex
	hits map[string]int
}

func newStubBackend(t *testing.T) *stubBackend {
	t.Helper()
	sb := &stubBackend{mux: http.NewServeMux(), hits: map[string]int{}}
	sb.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ok"}`)
	})
	sb.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sb.mu.Lock()
		sb.hits[r.URL.Path]++
		sb.mu.Unlock()
		sb.mux.ServeHTTP(w, r)
	}))
	t.Cleanup(sb.ts.Close)
	return sb
}

func (sb *stubBackend) hitCount(path string) int {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.hits[path]
}

func newTestRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 20 * time.Millisecond
	}
	if cfg.RetryBase == 0 {
		cfg.RetryBase = time.Millisecond
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func postRun(t *testing.T, h http.Handler, body string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/run", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestRetryAfterPropagation: a backend's own 429 — admission control on
// one shard — must reach the client with its Retry-After hint intact.
func TestRetryAfterPropagation(t *testing.T) {
	sb := newStubBackend(t)
	sb.mux.HandleFunc("POST /v1/run", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"overloaded"}`)
	})
	rt := newTestRouter(t, Config{Backends: []string{sb.ts.URL}})
	rec := postRun(t, rt.Handler(), `{"project":"(x)"}`, nil)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q, want the backend's own \"7\"", got)
	}
}

// TestFaultStatusPropagation: a 500 fault response replays byte-identical
// through the router — the router reports backend failures, it does not
// reinterpret them.
func TestFaultStatusPropagation(t *testing.T) {
	const faultBody = `{"id":"s-f","status":"fault","error":"recovered panic"}`
	sb := newStubBackend(t)
	sb.mux.HandleFunc("POST /v1/run", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprint(w, faultBody)
	})
	rt := newTestRouter(t, Config{Backends: []string{sb.ts.URL}})
	rec := postRun(t, rt.Handler(), `{"project":"(x)"}`, nil)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if rec.Body.String() != faultBody {
		t.Errorf("body = %q, want the backend's bytes %q", rec.Body.String(), faultBody)
	}
}

func TestRequestIDMintedAndForwarded(t *testing.T) {
	var gotID string
	var mu sync.Mutex
	sb := newStubBackend(t)
	sb.mux.HandleFunc("POST /v1/run", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		gotID = r.Header.Get("X-Request-ID")
		mu.Unlock()
		fmt.Fprint(w, `{"id":"s-1","status":"ok"}`)
	})
	rt := newTestRouter(t, Config{Backends: []string{sb.ts.URL}})

	// Client-supplied ID is forwarded verbatim and echoed.
	rec := postRun(t, rt.Handler(), `{"project":"(x)"}`, map[string]string{"X-Request-ID": "req-42"})
	mu.Lock()
	forwarded := gotID
	mu.Unlock()
	if forwarded != "req-42" {
		t.Errorf("backend saw X-Request-ID %q, want req-42", forwarded)
	}
	if rec.Header().Get("X-Request-ID") != "req-42" {
		t.Errorf("router echoed %q, want req-42", rec.Header().Get("X-Request-ID"))
	}

	// Absent ID: the router mints one and both sides see the same value.
	rec = postRun(t, rt.Handler(), `{"project":"(x)"}`, nil)
	mu.Lock()
	forwarded = gotID
	mu.Unlock()
	if forwarded == "" || !strings.HasPrefix(forwarded, "r-") {
		t.Errorf("minted request ID %q, want r-<hex>", forwarded)
	}
	if rec.Header().Get("X-Request-ID") != forwarded {
		t.Errorf("echoed %q but forwarded %q", rec.Header().Get("X-Request-ID"), forwarded)
	}
}

// TestConnectErrorFailsOver: a dead backend (nothing listening) yields
// dial errors, which are the retryable class — the request must succeed
// on the survivor and the passive reports must eject the dead slot.
func TestConnectErrorFailsOver(t *testing.T) {
	sb := newStubBackend(t)
	sb.mux.HandleFunc("POST /v1/run", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"id":"s-1","status":"ok"}`)
	})
	// A port with nothing behind it: listen, note the address, close.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + ln.Addr().String()
	ln.Close()

	rt := newTestRouter(t, Config{
		Backends:      []string{deadURL, sb.ts.URL},
		FailThreshold: 2,
		// Slow probes so the test exercises the passive path: the dead
		// backend stays in the ring until forwarding errors eject it.
		HealthInterval: time.Hour,
	})
	failedOver := false
	for i := 0; i < 8; i++ {
		body := fmt.Sprintf(`{"project":"(p%d)"}`, i)
		rec := postRun(t, rt.Handler(), body, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d body %s", i, rec.Code, rec.Body.String())
		}
		if prefs := rt.Ring().Prefer(placementKey([]byte(body))); len(prefs) > 0 && prefs[0] == 0 {
			failedOver = true
		}
	}
	st := rt.Stats()
	if !failedOver && st.Retries == 0 {
		t.Skip("no request hashed onto the dead backend; nothing to assert")
	}
	if st.Retries == 0 {
		t.Error("requests routed to the dead backend but no retry was counted")
	}
	if st.Backends[0].Healthy || st.Backends[0].Ejections == 0 {
		t.Errorf("dead backend not ejected: %+v", st.Backends[0])
	}
	if rt.Ring().Contains(0) {
		t.Error("ejected backend still a ring member")
	}
}

// TestNoReplayAfterBytesForwarded: a backend that dies mid-response is
// NOT retried on a POST — the run may already be executing, and a replay
// would double it. The client gets an honest 502.
func TestNoReplayAfterBytesForwarded(t *testing.T) {
	sb := newStubBackend(t)
	sb.mux.HandleFunc("POST /v1/run", func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler) // kill the connection mid-request
	})
	spare := newStubBackend(t)
	spare.mux.HandleFunc("POST /v1/run", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"id":"s-1","status":"ok"}`)
	})
	rt := newTestRouter(t, Config{
		Backends:       []string{sb.ts.URL, spare.ts.URL},
		HealthInterval: time.Hour,
	})
	// Find a body the aborting backend owns, then submit it.
	var body string
	for i := 0; ; i++ {
		body = fmt.Sprintf(`{"project":"(p%d)"}`, i)
		if rt.Ring().Prefer(placementKey([]byte(body)))[0] == 0 {
			break
		}
	}
	rec := postRun(t, rt.Handler(), body, nil)
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502 (no replay)", rec.Code)
	}
	if n := spare.hitCount("/v1/run"); n != 0 {
		t.Errorf("request was replayed onto the spare backend %d times", n)
	}
	if st := rt.Stats(); st.Retries != 0 {
		t.Errorf("retries = %d, want 0 after a mid-request failure", st.Retries)
	}
}

// TestClusterAdmission: the router's own in-flight budget rejects with
// 429 + a derived Retry-After when every slot is taken.
func TestClusterAdmission(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	sb := newStubBackend(t)
	sb.mux.HandleFunc("POST /v1/run", func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-release
		fmt.Fprint(w, `{"id":"s-1","status":"ok"}`)
	})
	rt := newTestRouter(t, Config{Backends: []string{sb.ts.URL}, MaxInflight: 1})

	done := make(chan *httptest.ResponseRecorder)
	go func() { done <- postRun(t, rt.Handler(), `{"project":"(slow)"}`, nil) }()
	<-started // the single slot is now held

	rec := postRun(t, rt.Handler(), `{"project":"(rejected)"}`, nil)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 from cluster admission", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without a Retry-After hint")
	}
	var eb struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Error == "" {
		t.Errorf("429 body %q is not the standard error shape", rec.Body.String())
	}
	close(release)
	if first := <-done; first.Code != http.StatusOK {
		t.Fatalf("slot-holding request failed: %d", first.Code)
	}
	if st := rt.Stats(); st.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", st.Rejected)
	}
}

// TestSessionRoutesToOwningBackend: the session→shard mapping stamped at
// submit time routes GET /v1/sessions/{id} to the backend that ran it,
// and unknown sessions 404 at the router.
func TestSessionRoutesToOwningBackend(t *testing.T) {
	backends := make([]*stubBackend, 3)
	for i := range backends {
		i := i
		backends[i] = newStubBackend(t)
		backends[i].mux.HandleFunc("POST /v1/run", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintf(w, `{"id":"s-backend%d","status":"ok"}`, i)
		})
		backends[i].mux.HandleFunc("GET /v1/sessions/", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintf(w, `{"id":%q,"state":"done"}`, strings.TrimPrefix(r.URL.Path, "/v1/sessions/"))
		})
	}
	rt := newTestRouter(t, Config{
		Backends: []string{backends[0].ts.URL, backends[1].ts.URL, backends[2].ts.URL},
	})
	rec := postRun(t, rt.Handler(), `{"project":"(whoami)"}`, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("run failed: %d", rec.Code)
	}
	var run struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &run); err != nil {
		t.Fatal(err)
	}
	owner := int(run.ID[len(run.ID)-1] - '0')

	req := httptest.NewRequest("GET", "/v1/sessions/"+run.ID, nil)
	get := httptest.NewRecorder()
	rt.Handler().ServeHTTP(get, req)
	if get.Code != http.StatusOK {
		t.Fatalf("session lookup: %d", get.Code)
	}
	if n := backends[owner].hitCount("/v1/sessions/" + run.ID); n != 1 {
		t.Errorf("owning backend %d saw %d session lookups, want 1", owner, n)
	}
	for i, sb := range backends {
		if i != owner && sb.hitCount("/v1/sessions/"+run.ID) != 0 {
			t.Errorf("non-owning backend %d was asked for the session", i)
		}
	}

	req = httptest.NewRequest("GET", "/v1/sessions/s-nowhere", nil)
	get = httptest.NewRecorder()
	rt.Handler().ServeHTTP(get, req)
	if get.Code != http.StatusNotFound {
		t.Errorf("unknown session = %d, want 404", get.Code)
	}
}

// TestRouterHealthz reports degraded/down as backends disappear.
func TestRouterHealthz(t *testing.T) {
	sb := newStubBackend(t)
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	deadURL := "http://" + ln.Addr().String()
	ln.Close()

	rt := newTestRouter(t, Config{
		Backends:       []string{sb.ts.URL, deadURL},
		HealthInterval: 10 * time.Millisecond,
		FailThreshold:  2,
	})
	deadline := time.Now().Add(3 * time.Second)
	for rt.Stats().Backends[1].Healthy {
		if time.Now().After(deadline) {
			t.Fatal("dead backend never ejected by active probes")
		}
		time.Sleep(10 * time.Millisecond)
	}
	req := httptest.NewRequest("GET", "/healthz", nil)
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200 while one backend survives", rec.Code)
	}
	var hz struct {
		Status string `json:"status"`
		Live   int    `json:"live"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "degraded" || hz.Live != 1 {
		t.Errorf("healthz = %+v, want degraded with 1 live", hz)
	}
}

// TestPlacementKeyMatchesTierA: two bodies with the same program source
// share a key regardless of other envelope fields, and format
// distinguishes otherwise-identical sources — mirroring the Tier A
// contract the per-shard caches key on.
func TestPlacementKeyMatchesTierA(t *testing.T) {
	a := placementKey([]byte(`{"project":"(p)","timeout_ms":100}`))
	b := placementKey([]byte(`{"project":"(p)","max_steps":5}`))
	if a != b {
		t.Error("same program, different envelope: keys differ, cache affinity is lost")
	}
	c := placementKey([]byte(`{"project":"(p)","format":"xml"}`))
	if a == c {
		t.Error("same bytes under different formats must not share a key")
	}
	d := placementKey([]byte(`not json at all`))
	if d != placementKey([]byte(`not json at all`)) {
		t.Error("undecodable bodies must still key deterministically")
	}
}
