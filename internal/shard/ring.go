// Package shard is the routing subsystem that turns N independent
// snapserved daemons into one cluster: a consistent-hash shard router
// (cmd/snapshardd) that fronts the backends and places every program on
// the shard whose caches already know it.
//
// The placement key is the program-cache Tier A content address —
// SHA-256 of the raw project bytes plus the declared format (see
// internal/progcache) — so identical submissions from any number of
// clients always land on the same backend, where the parse/lint cache
// and the downstream ring-compile cache are already hot. Session-scoped
// requests (GET /v1/sessions/{id}) route by the session-ID→shard mapping
// stamped when the run was submitted.
//
// The router is a robustness layer, not a dumb proxy: per-backend health
// checking ejects dead or draining backends from the ring and re-admits
// them when they recover, connect errors are retried with exponential
// backoff and jitter onto the next shard in preference order (never
// replaying a non-idempotent request after a byte reached a backend),
// backend 429 Retry-After and fault statuses propagate unchanged, and a
// cluster-wide in-flight budget sheds load with a derived Retry-After
// when every shard is saturated.
package shard

import (
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/obs"
)

// point is one virtual node: a position on the hash circle owned by a
// backend.
type point struct {
	hash    uint64
	backend int
}

// Ring is the consistent-hash ring: each member backend owns vnodes
// pseudo-random positions on a 64-bit circle, and a key belongs to the
// first position at or clockwise of the key's own hash. Ejecting a
// backend moves only that backend's keys (they slide to their next
// preference); the rest of the keyspace is untouched — the property that
// keeps per-shard program caches hot across membership churn.
type Ring struct {
	n      int
	vnodes int

	mu       sync.RWMutex
	members  []bool
	points   []point
	rebuilds int64
}

// NewRing builds a ring over n backends (indices 0..n-1, all members)
// with the given virtual-node count per backend (minimum 1).
func NewRing(n, vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = 1
	}
	r := &Ring{n: n, vnodes: vnodes, members: make([]bool, n)}
	for i := range r.members {
		r.members[i] = true
	}
	r.rebuildLocked()
	return r
}

// pointHash positions vnode v of backend b on the circle.
func pointHash(b, v int) uint64 {
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(b >> (8 * i))
		buf[8+i] = byte(v >> (8 * i))
	}
	h.Write(buf[:])
	return h.Sum64()
}

// keyHash positions a routing key on the circle.
func keyHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// rebuildLocked regenerates the point set from the current membership.
// Positions depend only on (backend, vnode), so a re-admitted backend
// reclaims exactly the arcs it owned before — its keys come home.
func (r *Ring) rebuildLocked() {
	pts := make([]point, 0, r.n*r.vnodes)
	for b := 0; b < r.n; b++ {
		if !r.members[b] {
			continue
		}
		for v := 0; v < r.vnodes; v++ {
			pts = append(pts, point{hash: pointHash(b, v), backend: b})
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].hash < pts[j].hash })
	r.points = pts
	r.rebuilds++
	if obs.Enabled() {
		obs.ShardRingRebuilds.Inc()
	}
}

// SetMember adds or removes a backend from the ring, rebuilding the point
// set when membership actually changes. It reports whether it did.
func (r *Ring) SetMember(backend int, in bool) bool {
	if backend < 0 || backend >= r.n {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[backend] == in {
		return false
	}
	r.members[backend] = in
	r.rebuildLocked()
	return true
}

// Contains reports whether the backend is currently a member.
func (r *Ring) Contains(backend int) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return backend >= 0 && backend < r.n && r.members[backend]
}

// Live counts current members.
func (r *Ring) Live() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	live := 0
	for _, m := range r.members {
		if m {
			live++
		}
	}
	return live
}

// Rebuilds reports how many times the point set was regenerated
// (including the initial build).
func (r *Ring) Rebuilds() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.rebuilds
}

// Prefer returns the member backends in the key's preference order: the
// owner first, then each next distinct backend walking clockwise. The
// order is the failover chain — a connect error on the owner retries on
// Prefer(key)[1], and so on. Empty when no backend is a member.
func (r *Ring) Prefer(key string) []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	kh := keyHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= kh })
	if start == len(r.points) {
		start = 0 // wrap: the circle's first point owns the top arc
	}
	seen := make([]bool, r.n)
	out := make([]int, 0, r.n)
	for i := 0; i < len(r.points) && len(out) < r.n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.backend] {
			seen[p.backend] = true
			out = append(out, p.backend)
		}
	}
	return out
}
