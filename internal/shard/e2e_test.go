package shard

// The router e2e suite: real snapserved backends on real loopback
// listeners, the router in front, and the cluster behaviors the ISSUE
// demands pinned under -race — failover with zero failed requests when a
// backend dies mid-traffic, ejection and re-admission, per-shard cache
// affinity measurably better than random routing, and routing never
// changing program semantics (single backend, router, and internal/dist
// all agree on the same mapReduce).

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/server"
	"repro/internal/value"
)

// e2eBackend is one real snapserved: server.New behind a real listener,
// killable and restartable on the same address.
type e2eBackend struct {
	t    *testing.T
	addr string
	srv  *server.Server
	hs   *http.Server
}

func startE2EBackend(t *testing.T) *e2eBackend {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b := &e2eBackend{
		t:    t,
		addr: ln.Addr().String(),
		srv:  server.New(server.Config{Runtime: runtime.Config{MaxConcurrent: 8, MaxQueue: 16}}),
	}
	b.serve(ln)
	t.Cleanup(func() { b.hs.Close() })
	return b
}

func (b *e2eBackend) serve(ln net.Listener) {
	b.hs = &http.Server{Handler: b.srv.Handler()}
	go b.hs.Serve(ln) //nolint:errcheck
}

func (b *e2eBackend) url() string { return "http://" + b.addr }

// kill drains the backend the way SIGTERM would: the listener closes
// immediately (new connections get dial errors — the retryable class)
// and in-flight requests finish.
func (b *e2eBackend) kill() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	b.hs.Shutdown(ctx) //nolint:errcheck
}

// restart brings the same server state back on the same address, as a
// recovered daemon would.
func (b *e2eBackend) restart() {
	var ln net.Listener
	var err error
	for i := 0; i < 50; i++ { // the freed port can lag a moment
		if ln, err = net.Listen("tcp", b.addr); err == nil {
			b.serve(ln)
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	b.t.Fatalf("restart %s: %v", b.addr, err)
}

func e2eCluster(t *testing.T, n int, cfg Config) ([]*e2eBackend, *Router) {
	t.Helper()
	backends := make([]*e2eBackend, n)
	urls := make([]string, n)
	for i := range backends {
		backends[i] = startE2EBackend(t)
		urls[i] = backends[i].url()
	}
	cfg.Backends = urls
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return backends, rt
}

func runBody(project string) string {
	b, _ := json.Marshal(map[string]string{"project": project})
	return string(b)
}

func sayProject(i int) string {
	return fmt.Sprintf(`(project "p%d" (sprite "S" (when green-flag (do (say (join "v" (+ %d 1)))))))`, i, i)
}

// postOK posts one run body through h and fails the test on anything but
// 200.
func postOK(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	rec := post(h, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /v1/run = %d: %s", rec.Code, rec.Body.String())
	}
	return rec
}

func post(h http.Handler, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest("POST", "/v1/run", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestE2EFailoverMidTraffic is the acceptance scenario: 3 real backends,
// one killed mid-traffic. Every idempotent-safe request must succeed
// (connect errors retry onto survivors), the ring must eject the dead
// backend and re-admit it after restart, and its keys must come home.
func TestE2EFailoverMidTraffic(t *testing.T) {
	backends, rt := e2eCluster(t, 3, Config{
		VNodes: 64,
		// A long probe interval forces the ejection through the passive
		// path (real traffic hitting connect errors) and still lets the
		// probes re-admit the backend quickly after restart.
		HealthInterval: 100 * time.Millisecond,
		FailThreshold:  2,
		RetryBase:      2 * time.Millisecond,
	})
	h := rt.Handler()

	bodies := make([]string, 8)
	for i := range bodies {
		bodies[i] = runBody(sayProject(i))
	}
	victim := rt.Ring().Prefer(placementKey([]byte(bodies[0])))[0]

	var wg sync.WaitGroup
	var failures sync.Map
	traffic := func(rounds int) {
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					for _, body := range bodies {
						if rec := post(h, body); rec.Code != http.StatusOK {
							failures.Store(fmt.Sprintf("w%d r%d: %d %s", w, r, rec.Code, rec.Body.String()), true)
						}
					}
				}
			}(w)
		}
	}

	traffic(3)
	wg.Wait()

	// The kill, then immediately more traffic: the first requests for
	// the victim's keys hit connect errors, retry onto survivors, and
	// eject the backend.
	backends[victim].kill()
	traffic(3)
	wg.Wait()

	failures.Range(func(k, _ any) bool {
		t.Errorf("failed request during failover: %s", k)
		return true
	})

	st := rt.Stats()
	if st.Backends[victim].Healthy || st.Backends[victim].Ejections == 0 {
		t.Fatalf("victim %d not ejected: %+v", victim, st.Backends[victim])
	}
	if st.Retries == 0 {
		t.Error("no retries counted though the victim owned live keys")
	}
	if got := rt.Ring().Prefer(placementKey([]byte(bodies[0])))[0]; got == victim {
		t.Errorf("victim's keys still route to it after ejection")
	}

	// Recovery: the probes re-admit the backend and its keys come home,
	// where its caches are still warm.
	backends[victim].restart()
	deadline := time.Now().Add(5 * time.Second)
	for !rt.Stats().Backends[victim].Healthy {
		if time.Now().After(deadline) {
			t.Fatal("victim never re-admitted after restart")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if rt.Stats().Backends[victim].Readmissions == 0 {
		t.Error("re-admission not counted")
	}
	if got := rt.Ring().Prefer(placementKey([]byte(bodies[0])))[0]; got != victim {
		t.Errorf("after re-admission key routes to %d, want %d", got, victim)
	}
	postOK(t, h, bodies[0])
}

// TestE2ECacheAffinity pins the reason the placement key is the Tier A
// content address: repeated identical bodies hit exactly one shard's
// program cache. 9 distinct bodies × 8 submissions elaborate 9 times
// across the whole cluster — random routing over 3 backends would pay
// roughly one elaboration per (body, backend) pair, ~3× worse.
func TestE2ECacheAffinity(t *testing.T) {
	backends, rt := e2eCluster(t, 3, Config{VNodes: 64})
	h := rt.Handler()

	const distinct, repeats = 9, 8
	for rep := 0; rep < repeats; rep++ {
		for i := 0; i < distinct; i++ {
			postOK(t, h, runBody(sayProject(i)))
		}
	}

	var hits, misses int64
	usedShards := 0
	for _, b := range backends {
		st := b.srv.CacheStats()
		hits += st.Hits
		misses += st.Misses
		if st.Hits+st.Misses > 0 {
			usedShards++
		}
	}
	if misses != distinct {
		t.Errorf("cluster-wide elaborations = %d, want exactly %d (one per distinct body; random routing would pay ~%d)",
			misses, distinct, distinct*len(backends))
	}
	if hits != distinct*(repeats-1) {
		t.Errorf("cluster-wide cache hits = %d, want %d", hits, distinct*(repeats-1))
	}
	if usedShards < 2 {
		t.Errorf("only %d shards saw traffic; 9 bodies should spread across the ring", usedShards)
	}
}

func mrProject(text string) string {
	return fmt.Sprintf(`(project "mr" (sprite "S" (when green-flag (do (say (mapreduce
		(ring (list _ 1))
		(ring (combine _ (ring (+ _ _))))
		(split %q " ")))))))`, text)
}

// normalizeRun strips the fields that legitimately differ between two
// executions of the same program — session identity and timing, where
// timing includes steps and rounds: a process awaiting an async pool
// result re-polls once per scheduler round, so those counts depend on
// worker timing, not on the program. What remains — status, trace,
// stage, scripts — must be identical or routing changed semantics.
func normalizeRun(t *testing.T, raw []byte) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("decode run response %q: %v", raw, err)
	}
	for _, k := range []string{"id", "queue_ms", "run_ms", "rounds", "steps", "timesteps"} {
		delete(m, k)
	}
	return m
}

// TestE2ERoutingPreservesSemantics is the dist-parity satellite: the same
// mapReduce projects through (a) a single snapserved, (b) the router over
// 3 backends, and (c) internal/dist's simulated cluster must agree.
func TestE2ERoutingPreservesSemantics(t *testing.T) {
	_, rt := e2eCluster(t, 3, Config{VNodes: 64})
	single := startE2EBackend(t)
	direct := func(body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("POST", "/v1/run", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		single.srv.Handler().ServeHTTP(rec, req)
		return rec
	}

	texts := []string{
		"b a b c a",
		"the quick fox the lazy dog the end",
		"x y z x y x",
	}
	for _, text := range texts {
		body := runBody(mrProject(text))
		routed := postOK(t, rt.Handler(), body)
		via := direct(body)
		if via.Code != http.StatusOK {
			t.Fatalf("direct run = %d: %s", via.Code, via.Body.String())
		}
		got, want := normalizeRun(t, routed.Body.Bytes()), normalizeRun(t, via.Body.Bytes())
		if !reflect.DeepEqual(got, want) {
			t.Errorf("text %q: routed result differs from single backend:\nrouted: %v\ndirect: %v", text, got, want)
		}

		// Ground truth from the simulated cluster: the trace line must
		// carry exactly the word counts internal/dist computes.
		in := value.FromStrings(strings.Fields(text))
		distRes, _, err := dist.MapReduce(in, mapreduce.WordCount, mapreduce.SumReduce,
			dist.Config{Nodes: 3, WorkersPerNode: 2})
		if err != nil {
			t.Fatal(err)
		}
		wantLine := fmt.Sprintf("S says %q", distRes.List().String())
		trace, _ := got["trace"].([]any)
		if len(trace) == 0 {
			t.Fatalf("text %q: routed run produced no trace", text)
		}
		if line, _ := trace[len(trace)-1].(string); !strings.Contains(line, wantLine) {
			t.Errorf("text %q: routed trace = %v, want a line containing %q", text, trace, wantLine)
		}
	}

	// Codegen is fully deterministic, so here the routed response must be
	// byte-identical to the single backend's.
	cgScript := `(declare x) (set x 0) (repeat 10 (do (change x 2))) (say $x)`
	cg, _ := json.Marshal(map[string]string{"script": cgScript, "lang": "go"})
	req := httptest.NewRequest("POST", "/v1/codegen", strings.NewReader(string(cg)))
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	reqD := httptest.NewRequest("POST", "/v1/codegen", strings.NewReader(string(cg)))
	recD := httptest.NewRecorder()
	single.srv.Handler().ServeHTTP(recD, reqD)
	if rec.Code != http.StatusOK || recD.Code != http.StatusOK {
		t.Fatalf("codegen = %d routed, %d direct", rec.Code, recD.Code)
	}
	if rec.Body.String() != recD.Body.String() {
		t.Errorf("routed codegen differs from direct:\n%s\nvs\n%s", rec.Body.String(), recD.Body.String())
	}
}

// TestE2EDrainingBackendIsEjected covers the graceful-shutdown handshake:
// a backend whose /healthz says draining (503) leaves the ring before it
// goes away, comes back when it stops draining, and never breaks traffic.
func TestE2EDrainingBackendIsEjected(t *testing.T) {
	backends, rt := e2eCluster(t, 2, Config{
		VNodes:         64,
		HealthInterval: 15 * time.Millisecond,
		FailThreshold:  2,
	})
	h := rt.Handler()
	body := runBody(sayProject(0))
	postOK(t, h, body)

	victim := rt.Ring().Prefer(placementKey([]byte(body)))[0]
	backends[victim].srv.SetDraining(true)

	// The backend itself now advertises draining.
	resp, err := http.Get(backends[victim].url() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Status string `json:"status"`
	}
	err = json.NewDecoder(resp.Body).Decode(&hz)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable || hz.Status != "draining" {
		t.Fatalf("draining healthz = %d %+v, want 503 draining", resp.StatusCode, hz)
	}

	deadline := time.Now().Add(3 * time.Second)
	for rt.Stats().Backends[victim].Healthy {
		if time.Now().After(deadline) {
			t.Fatal("draining backend never ejected")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Traffic continues on the survivor; the drained backend sees none
	// of it even though it would still answer.
	before := rt.Stats().Backends[victim].Requests
	for i := 0; i < 5; i++ {
		postOK(t, h, body)
	}
	if after := rt.Stats().Backends[victim].Requests; after != before {
		t.Errorf("drained backend served %d forwarded requests", after-before)
	}

	backends[victim].srv.SetDraining(false)
	deadline = time.Now().Add(3 * time.Second)
	for !rt.Stats().Backends[victim].Healthy {
		if time.Now().After(deadline) {
			t.Fatal("recovered backend never re-admitted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	postOK(t, h, body)
}

// TestE2ERequestIDCorrelatesSpans covers the request-ID satellite end to
// end: the ID stamped at the router becomes the backend session's trace
// ID, so the engine job spans of the run are addressable by the
// distributed request ID, and the routed session lookup still returns
// them.
func TestE2ERequestIDCorrelatesSpans(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	obs.ResetSpans()

	_, rt := e2eCluster(t, 2, Config{VNodes: 64})
	project := `(project "spans" (sprite "S" (when green-flag (do (report (parallelmap (lambda (x) (* $x 2)) (numbers 1 32) 4))))))`
	req := httptest.NewRequest("POST", "/v1/run", strings.NewReader(runBody(project)))
	req.Header.Set("X-Request-ID", "req-e2e-77")
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("run = %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Request-ID"); got != "req-e2e-77" {
		t.Errorf("router echoed X-Request-ID %q", got)
	}
	var run struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &run); err != nil {
		t.Fatal(err)
	}

	spans := obs.SpansFor("req-e2e-77")
	var kinds []string
	for _, sp := range spans {
		kinds = append(kinds, sp.Kind)
	}
	if len(spans) < 2 {
		t.Fatalf("spans under the request ID = %v, want a session span plus its job spans", kinds)
	}
	hasSession := false
	for _, k := range kinds {
		if k == "session" {
			hasSession = true
		}
	}
	if !hasSession {
		t.Errorf("no session span under the request ID: %v", kinds)
	}

	// The routed session lookup reaches the owning backend and reports
	// the same spans.
	get := httptest.NewRequest("GET", "/v1/sessions/"+run.ID, nil)
	grec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(grec, get)
	if grec.Code != http.StatusOK {
		t.Fatalf("session lookup = %d: %s", grec.Code, grec.Body.String())
	}
	var sess struct {
		Spans []struct {
			Kind string `json:"kind"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(grec.Body.Bytes(), &sess); err != nil {
		t.Fatal(err)
	}
	if len(sess.Spans) < 2 {
		t.Errorf("routed session response carries %d spans, want the correlated set", len(sess.Spans))
	}
}
