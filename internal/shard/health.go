package shard

import (
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// healthTracker decides ring membership. Two signal sources feed it:
//
//   - Active probes: one goroutine per backend GETs /healthz every
//     Interval. Any non-200 answer counts as a failure — which is how a
//     draining backend (503 from snapserved's SIGTERM handler) gets
//     ejected before it goes away.
//   - Passive reports: the proxy reports connect errors it hits while
//     forwarding, so a crashed backend is ejected within the failure
//     threshold of real traffic rather than waiting out a probe cycle.
//
// FailThreshold consecutive failures eject the backend from the ring;
// one successful *probe* re-admits it. Passive forwarding successes only
// reset the failure streak of a healthy backend — they never re-admit an
// ejected one, because a draining backend still answers requests
// perfectly well and must stay out until its /healthz says otherwise.
type healthTracker struct {
	ring      *Ring
	backends  []string
	client    *http.Client
	interval  time.Duration
	threshold int

	stop chan struct{}
	wg   sync.WaitGroup

	mu           sync.Mutex
	fails        []int
	healthy      []bool
	ejections    []int64
	readmissions []int64
}

func newHealthTracker(ring *Ring, backends []string, interval time.Duration, threshold int) *healthTracker {
	probeTimeout := interval
	if probeTimeout < 100*time.Millisecond {
		probeTimeout = 100 * time.Millisecond
	}
	if probeTimeout > 2*time.Second {
		probeTimeout = 2 * time.Second
	}
	ht := &healthTracker{
		ring:     ring,
		backends: backends,
		// Probes open fresh connections so a backend closing its pooled
		// keep-alive conns (e.g. during drain) can't masquerade as a
		// probe failure streak.
		client: &http.Client{
			Timeout:   probeTimeout,
			Transport: &http.Transport{DisableKeepAlives: true},
		},
		interval:     interval,
		threshold:    threshold,
		stop:         make(chan struct{}),
		fails:        make([]int, len(backends)),
		healthy:      make([]bool, len(backends)),
		ejections:    make([]int64, len(backends)),
		readmissions: make([]int64, len(backends)),
	}
	for i := range ht.healthy {
		ht.healthy[i] = true
	}
	return ht
}

// start launches one probe loop per backend.
func (ht *healthTracker) start() {
	for i := range ht.backends {
		ht.wg.Add(1)
		go ht.probeLoop(i)
	}
}

// close stops the probe loops and waits for them.
func (ht *healthTracker) close() {
	close(ht.stop)
	ht.wg.Wait()
}

func (ht *healthTracker) probeLoop(backend int) {
	defer ht.wg.Done()
	t := time.NewTicker(ht.interval)
	defer t.Stop()
	for {
		select {
		case <-ht.stop:
			return
		case <-t.C:
			ht.report(backend, ht.probe(backend), true)
		}
	}
}

// probe asks one backend's /healthz; only a 200 counts as healthy.
func (ht *healthTracker) probe(backend int) bool {
	resp, err := ht.client.Get(ht.backends[backend] + "/healthz")
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// report feeds one observation. fromProbe marks active probe results,
// the only signal allowed to re-admit an ejected backend.
func (ht *healthTracker) report(backend int, ok, fromProbe bool) {
	ht.mu.Lock()
	defer ht.mu.Unlock()
	if ok {
		ht.fails[backend] = 0
		if !ht.healthy[backend] && fromProbe {
			ht.healthy[backend] = true
			ht.readmissions[backend]++
			ht.ring.SetMember(backend, true)
			if obs.Enabled() {
				obs.ShardReadmissions.With(strconv.Itoa(backend)).Inc()
			}
		}
		return
	}
	ht.fails[backend]++
	if ht.healthy[backend] && ht.fails[backend] >= ht.threshold {
		ht.healthy[backend] = false
		ht.ejections[backend]++
		ht.ring.SetMember(backend, false)
		if obs.Enabled() {
			obs.ShardEjections.With(strconv.Itoa(backend)).Inc()
		}
	}
}

// reportConnectError is the proxy's passive failure signal.
func (ht *healthTracker) reportConnectError(backend int) {
	ht.report(backend, false, false)
}

// reportForwardOK is the proxy's passive success signal: it clears the
// failure streak of a healthy backend but never re-admits an ejected one.
func (ht *healthTracker) reportForwardOK(backend int) {
	ht.report(backend, true, false)
}

// snapshot copies the per-backend health state.
func (ht *healthTracker) snapshot() (healthy []bool, ejections, readmissions []int64) {
	ht.mu.Lock()
	defer ht.mu.Unlock()
	healthy = append([]bool(nil), ht.healthy...)
	ejections = append([]int64(nil), ht.ejections...)
	readmissions = append([]int64(nil), ht.readmissions...)
	return healthy, ejections, readmissions
}
