package shard

import (
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// admitter is the cluster-wide admission gate: one bounded in-flight
// budget across every backend the router fronts. Per-backend admission
// (snapserved's own queue + 429) protects a single daemon; this gate
// protects the cluster — when every shard is saturated the router sheds
// load at its own edge instead of queueing doomed work onto backends
// that will reject it anyway.
type admitter struct {
	max      int64
	inflight atomic.Int64
	rejected atomic.Int64

	// ewmaSec tracks recent request latency; the 429 Retry-After hint
	// derives from it, so clients back off roughly one request-service
	// time — long enough for a slot to plausibly free up.
	mu      sync.Mutex
	ewmaSec float64
}

func newAdmitter(max int) *admitter {
	return &admitter{max: int64(max)}
}

// acquire claims an in-flight slot; false means the cluster budget is
// spent and the caller answers 429.
func (a *admitter) acquire() bool {
	if a.inflight.Add(1) > a.max {
		a.inflight.Add(-1)
		a.rejected.Add(1)
		if obs.Enabled() {
			obs.ShardRejected.Inc()
		}
		return false
	}
	if obs.Enabled() {
		obs.ShardInflight.Set(a.inflight.Load())
	}
	return true
}

// release returns a slot and folds the request's duration into the
// latency estimate.
func (a *admitter) release(d time.Duration) {
	n := a.inflight.Add(-1)
	if obs.Enabled() {
		obs.ShardInflight.Set(n)
	}
	sec := d.Seconds()
	a.mu.Lock()
	if a.ewmaSec == 0 {
		a.ewmaSec = sec
	} else {
		a.ewmaSec = 0.8*a.ewmaSec + 0.2*sec
	}
	a.mu.Unlock()
}

// retryAfter derives the 429 hint: one smoothed request-service time,
// rounded up, clamped to [1s, 30s].
func (a *admitter) retryAfter() string {
	a.mu.Lock()
	sec := a.ewmaSec
	a.mu.Unlock()
	secs := int(math.Ceil(sec))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return strconv.Itoa(secs)
}
