package shard

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	mathrand "math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/progcache"
)

// Config parameterizes a Router.
type Config struct {
	// Backends are the snapserved base URLs (e.g. http://10.0.0.1:8080),
	// in slot order — the order is the identity the per-backend metrics
	// and the ring's vnode positions key on, so keep it stable across
	// router restarts.
	Backends []string
	// VNodes is the virtual-node count per backend (default 64).
	VNodes int
	// MaxInflight is the cluster-wide in-flight request budget
	// (default 256).
	MaxInflight int
	// MaxBodyBytes caps request bodies (default 1 MiB, matching
	// snapserved).
	MaxBodyBytes int64
	// HealthInterval is the active /healthz probe period (default 500ms).
	HealthInterval time.Duration
	// FailThreshold is how many consecutive failures eject a backend
	// (default 2).
	FailThreshold int
	// MaxRetries bounds additional forward attempts after a connect
	// error (default 3).
	MaxRetries int
	// RetryBase is the first backoff step; attempt k sleeps
	// RetryBase<<k plus up to 50% jitter (default 25ms).
	RetryBase time.Duration
	// SessionMemory bounds the session-ID→backend map (default 4096).
	SessionMemory int
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// Client overrides the forwarding HTTP client (tests; default is a
	// dedicated client with no global timeout — per-request contexts
	// govern instead, since a governed session may legitimately run for
	// its full wall-clock budget).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 500 * time.Millisecond
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 2
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 25 * time.Millisecond
	}
	if c.SessionMemory <= 0 {
		c.SessionMemory = 4096
	}
	return c
}

// BackendStats is one backend's slice of a Stats snapshot.
type BackendStats struct {
	URL          string
	Healthy      bool
	Requests     int64
	Ejections    int64
	Readmissions int64
}

// Stats is the router's always-on counter snapshot (the obs engine_shard_*
// series mirror it while instrumentation is enabled).
type Stats struct {
	Backends     []BackendStats
	Retries      int64
	Rejected     int64
	RingRebuilds int64
	Inflight     int64
	Sessions     int
}

// Router fronts N snapserved backends with consistent-hash placement,
// health-checked failover, bounded retry, and cluster-wide admission.
type Router struct {
	cfg    Config
	ring   *Ring
	health *healthTracker
	adm    *admitter
	client *http.Client
	mux    *http.ServeMux

	requests []atomic.Int64
	retries  atomic.Int64

	jitterMu sync.Mutex
	jitter   *mathrand.Rand

	mu       sync.Mutex
	sessions map[string]int // session ID -> backend slot
	sessIDs  []string       // insertion order, for bounded eviction
}

// New builds a router over the configured backends and starts its health
// probes. Callers must Close it to stop them.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("shard: no backends configured")
	}
	backends := make([]string, len(cfg.Backends))
	for i, b := range cfg.Backends {
		b = strings.TrimRight(strings.TrimSpace(b), "/")
		if b == "" {
			return nil, fmt.Errorf("shard: empty backend URL at slot %d", i)
		}
		if !strings.Contains(b, "://") {
			b = "http://" + b
		}
		backends[i] = b
	}
	cfg.Backends = backends

	rt := &Router{
		cfg:      cfg,
		ring:     NewRing(len(backends), cfg.VNodes),
		adm:      newAdmitter(cfg.MaxInflight),
		client:   cfg.Client,
		mux:      http.NewServeMux(),
		requests: make([]atomic.Int64, len(backends)),
		jitter:   mathrand.New(mathrand.NewSource(time.Now().UnixNano())),
		sessions: map[string]int{},
	}
	if rt.client == nil {
		// Fresh connection per forward, deliberately: with no pooled
		// keep-alive connections, every pre-byte failure surfaces as a
		// dial error — the one class the router may safely retry on
		// another shard. A reused connection that a dying backend closed
		// under us would instead fail with an EOF indistinguishable from
		// a mid-request death, forcing the router to either fail a
		// request no backend ever saw or risk replaying one a backend
		// did see. Correct failover semantics are worth the handshake.
		rt.client = &http.Client{
			Transport: &http.Transport{DisableKeepAlives: true},
		}
	}
	rt.health = newHealthTracker(rt.ring, backends, cfg.HealthInterval, cfg.FailThreshold)
	rt.health.start()

	rt.mux.HandleFunc("POST /v1/run", rt.handleRun)
	rt.mux.HandleFunc("POST /v1/codegen", rt.handleCodegen)
	rt.mux.HandleFunc("GET /v1/sessions/{id}", rt.handleSession)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	if cfg.EnablePprof {
		rt.mux.HandleFunc("/debug/pprof/", pprof.Index)
		rt.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		rt.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		rt.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		rt.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return rt, nil
}

// Handler returns the routed HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Close stops the health probes.
func (rt *Router) Close() { rt.health.close() }

// Ring exposes the hash ring (tests and the smoke mode).
func (rt *Router) Ring() *Ring { return rt.ring }

// Stats snapshots the router's counters.
func (rt *Router) Stats() Stats {
	healthy, ej, re := rt.health.snapshot()
	st := Stats{
		Retries:      rt.retries.Load(),
		Rejected:     rt.adm.rejected.Load(),
		RingRebuilds: rt.ring.Rebuilds(),
		Inflight:     rt.adm.inflight.Load(),
	}
	for i, url := range rt.cfg.Backends {
		st.Backends = append(st.Backends, BackendStats{
			URL:          url,
			Healthy:      healthy[i],
			Requests:     rt.requests[i].Load(),
			Ejections:    ej[i],
			Readmissions: re[i],
		})
	}
	rt.mu.Lock()
	st.Sessions = len(rt.sessions)
	rt.mu.Unlock()
	return st
}

// errorBody mirrors snapserved's error shape, so clients see one JSON
// dialect no matter which layer answered.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(errorBody{Error: fmt.Sprintf(format, args...)}) //nolint:errcheck
}

// requestID returns the client's X-Request-ID or mints one. The ID rides
// the forwarded request, comes back on the response, and becomes the
// backend session's trace ID — one identifier from client through router
// through engine job spans.
func requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-ID"); id != "" {
		return id
	}
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("shard: no entropy for request IDs: " + err.Error())
	}
	return "r-" + hex.EncodeToString(b[:])
}

// readBody drains the (capped) request body, answering 413 on overflow.
// ok is false when the request was already answered.
func (rt *Router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	r.Body = http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
		} else {
			writeError(w, http.StatusBadRequest, "read request: %v", err)
		}
		return nil, false
	}
	return body, true
}

// routeBody is the slice of a run/codegen request the router needs for
// placement. Everything else in the body is opaque and forwarded as-is.
type routeBody struct {
	Project string `json:"project"`
	Script  string `json:"script"`
	Format  string `json:"format"`
}

// placementKey computes the consistent-hash key for a request body: the
// program-cache Tier A content address of the program source, so a
// request routes to the shard whose caches already hold that program.
// Undecodable bodies key on their raw bytes — the malformed resubmission
// replays its cached 400 on one shard instead of paying a fresh parse
// failure on a random one.
func placementKey(body []byte) string {
	var rb routeBody
	if err := json.Unmarshal(body, &rb); err == nil {
		src := rb.Project
		if src == "" {
			src = rb.Script
		}
		if src != "" {
			return progcache.BodyHash(src, strings.ToLower(rb.Format))
		}
	}
	return progcache.BodyHash(string(body), "raw")
}

// isConnectErr reports whether a forward failed before any byte reached
// the backend — the only failure a non-idempotent request may retry.
func isConnectErr(err error) bool {
	var opErr *net.OpError
	if errors.As(err, &opErr) && opErr.Op == "dial" {
		return true
	}
	return errors.Is(err, syscall.ECONNREFUSED)
}

// backoff sleeps the k-th retry delay (RetryBase<<k plus up to 50%
// jitter), or returns early when the client gives up.
func (rt *Router) backoff(ctx context.Context, attempt int) {
	d := rt.cfg.RetryBase << attempt
	rt.jitterMu.Lock()
	d += time.Duration(rt.jitter.Int63n(int64(d)/2 + 1))
	rt.jitterMu.Unlock()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// attempt forwards one request to one backend and buffers the full
// response. Buffering is what makes retry safe: nothing is written to
// the client until a backend answered, so a failed attempt leaves the
// client connection untouched.
func (rt *Router) attempt(ctx context.Context, backend int, method, path, reqID, contentType string, body []byte) (*http.Response, []byte, error) {
	rt.requests[backend].Add(1)
	if obs.Enabled() {
		obs.ShardRequests.With(strconv.Itoa(backend)).Inc()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, rt.cfg.Backends[backend]+path, rd)
	if err != nil {
		return nil, nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	req.Header.Set("X-Request-ID", reqID)
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	return resp, respBody, nil
}

// copyResponse relays a buffered backend response to the client,
// propagating headers — including Retry-After on a backend's own 429 —
// and the status code unchanged.
func copyResponse(w http.ResponseWriter, resp *http.Response, body []byte) {
	for _, h := range []string{"Content-Type", "Retry-After", "X-Request-ID"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(body) //nolint:errcheck
}

// forwardKeyed routes a buffered POST by its placement key, failing over
// along the ring's preference order. Only connect errors retry: once a
// byte has been forwarded the request may have side effects on the
// backend, and replaying a non-idempotent request is worse than an
// honest 502.
func (rt *Router) forwardKeyed(w http.ResponseWriter, r *http.Request, path string, body []byte) (*http.Response, []byte, int, bool) {
	reqID := requestID(r)
	w.Header().Set("X-Request-ID", reqID)
	prefs := rt.ring.Prefer(placementKey(body))
	if len(prefs) == 0 {
		w.Header().Set("Retry-After", rt.adm.retryAfter())
		writeError(w, http.StatusServiceUnavailable, "no healthy backends")
		return nil, nil, 0, false
	}
	var lastErr error
	for i, backend := range prefs {
		if i > rt.cfg.MaxRetries {
			break
		}
		if i > 0 {
			rt.retries.Add(1)
			if obs.Enabled() {
				obs.ShardRetries.Inc()
			}
			rt.backoff(r.Context(), i-1)
			if r.Context().Err() != nil {
				break
			}
		}
		resp, respBody, err := rt.attempt(r.Context(), backend, r.Method, path, reqID, r.Header.Get("Content-Type"), body)
		if err == nil {
			rt.health.reportForwardOK(backend)
			return resp, respBody, backend, true
		}
		lastErr = err
		if !isConnectErr(err) {
			// A byte may have reached the backend; the run may be
			// executing. Do not replay it elsewhere.
			writeError(w, http.StatusBadGateway, "backend %d failed mid-request: %v", backend, err)
			return nil, nil, 0, false
		}
		rt.health.reportConnectError(backend)
	}
	writeError(w, http.StatusBadGateway, "all placement candidates unreachable: %v", lastErr)
	return nil, nil, 0, false
}

func (rt *Router) handleRun(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	if !rt.adm.acquire() {
		w.Header().Set("Retry-After", rt.adm.retryAfter())
		writeError(w, http.StatusTooManyRequests, "cluster saturated: %d requests in flight", rt.cfg.MaxInflight)
		return
	}
	start := time.Now()
	defer func() { rt.adm.release(time.Since(start)) }()

	resp, respBody, backend, ok := rt.forwardKeyed(w, r, "/v1/run", body)
	if !ok {
		return
	}
	// Stamp the session→shard mapping so GET /v1/sessions/{id} finds the
	// backend that owns this session. Faulted runs (500) carry an ID too.
	var run struct {
		ID string `json:"id"`
	}
	if json.Unmarshal(respBody, &run) == nil && run.ID != "" {
		rt.recordSession(run.ID, backend)
	}
	copyResponse(w, resp, respBody)
}

func (rt *Router) handleCodegen(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	if !rt.adm.acquire() {
		w.Header().Set("Retry-After", rt.adm.retryAfter())
		writeError(w, http.StatusTooManyRequests, "cluster saturated: %d requests in flight", rt.cfg.MaxInflight)
		return
	}
	start := time.Now()
	defer func() { rt.adm.release(time.Since(start)) }()

	resp, respBody, _, ok := rt.forwardKeyed(w, r, "/v1/codegen", body)
	if !ok {
		return
	}
	copyResponse(w, resp, respBody)
}

// handleSession routes by the session→shard mapping stamped at submit
// time. Sessions live on exactly one backend, so there is no failover —
// but the GET is idempotent, so transient transport errors retry against
// the same backend.
func (rt *Router) handleSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	backend, ok := rt.sessionBackend(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no session %q routed through this cluster", id)
		return
	}
	reqID := requestID(r)
	w.Header().Set("X-Request-ID", reqID)
	var lastErr error
	for attempt := 0; attempt <= rt.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			rt.retries.Add(1)
			if obs.Enabled() {
				obs.ShardRetries.Inc()
			}
			rt.backoff(r.Context(), attempt-1)
			if r.Context().Err() != nil {
				break
			}
		}
		resp, respBody, err := rt.attempt(r.Context(), backend, http.MethodGet, "/v1/sessions/"+id, reqID, "", nil)
		if err == nil {
			rt.health.reportForwardOK(backend)
			copyResponse(w, resp, respBody)
			return
		}
		lastErr = err
		if isConnectErr(err) {
			rt.health.reportConnectError(backend)
		}
	}
	writeError(w, http.StatusBadGateway, "session backend unreachable: %v", lastErr)
}

func (rt *Router) recordSession(id string, backend int) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, dup := rt.sessions[id]; !dup {
		rt.sessIDs = append(rt.sessIDs, id)
		for len(rt.sessIDs) > rt.cfg.SessionMemory {
			delete(rt.sessions, rt.sessIDs[0])
			rt.sessIDs = rt.sessIDs[1:]
		}
	}
	rt.sessions[id] = backend
}

func (rt *Router) sessionBackend(id string) (int, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	b, ok := rt.sessions[id]
	return b, ok
}

// healthzBackend is one backend's entry in the router's health report.
type healthzBackend struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	healthy, _, _ := rt.health.snapshot()
	live := 0
	backends := make([]healthzBackend, len(rt.cfg.Backends))
	for i, url := range rt.cfg.Backends {
		backends[i] = healthzBackend{URL: url, Healthy: healthy[i]}
		if healthy[i] {
			live++
		}
	}
	status, code := "ok", http.StatusOK
	switch {
	case live == 0:
		status, code = "down", http.StatusServiceUnavailable
	case live < len(backends):
		status = "degraded"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]any{ //nolint:errcheck
		"status":   status,
		"live":     live,
		"backends": backends,
		"inflight": rt.adm.inflight.Load(),
	}) //nolint:errcheck
}

// handleMetrics renders the router process's engine registry — the
// engine_shard_* families plus whatever else this process touched.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	obs.Default.Render(&b)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte(b.String())) //nolint:errcheck
}
