package shard

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("key-%d", i)
	}
	return out
}

func TestPreferDistinctAndComplete(t *testing.T) {
	r := NewRing(5, 32)
	for _, k := range keys(50) {
		prefs := r.Prefer(k)
		if len(prefs) != 5 {
			t.Fatalf("Prefer(%q) = %v, want all 5 backends", k, prefs)
		}
		seen := map[int]bool{}
		for _, b := range prefs {
			if seen[b] {
				t.Fatalf("Prefer(%q) repeats backend %d: %v", k, b, prefs)
			}
			seen[b] = true
		}
	}
}

func TestPreferDeterministic(t *testing.T) {
	a, b := NewRing(4, 64), NewRing(4, 64)
	for _, k := range keys(100) {
		pa, pb := a.Prefer(k), b.Prefer(k)
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("two identical rings disagree on %q: %v vs %v", k, pa, pb)
			}
		}
	}
}

// TestEjectionMovesOnlyTheEjectedKeys is the consistent-hashing property
// the router exists for: removing one backend must not reshuffle keys
// owned by the others, or every shard's program cache would go cold on
// every membership change.
func TestEjectionMovesOnlyTheEjectedKeys(t *testing.T) {
	r := NewRing(4, 64)
	before := map[string]int{}
	for _, k := range keys(200) {
		before[k] = r.Prefer(k)[0]
	}
	if !r.SetMember(3, false) {
		t.Fatal("removing backend 3 reported no change")
	}
	moved := 0
	for k, owner := range before {
		now := r.Prefer(k)[0]
		if owner != 3 {
			if now != owner {
				t.Errorf("key %q moved %d→%d though its owner stayed in the ring", k, owner, now)
			}
			continue
		}
		moved++
		if now == 3 {
			t.Errorf("key %q still routes to the ejected backend", k)
		}
	}
	if moved == 0 {
		t.Fatal("no key was owned by backend 3; distribution is broken")
	}

	// Re-admission: every key comes home, so the shard's caches are hot
	// again the moment it rejoins.
	if !r.SetMember(3, true) {
		t.Fatal("re-adding backend 3 reported no change")
	}
	for k, owner := range before {
		if now := r.Prefer(k)[0]; now != owner {
			t.Errorf("after re-admission key %q routes to %d, want its original owner %d", k, now, owner)
		}
	}
}

func TestFailoverTargetIsNextPreference(t *testing.T) {
	r := NewRing(4, 64)
	for _, k := range keys(100) {
		prefs := r.Prefer(k)
		r.SetMember(prefs[0], false)
		if got := r.Prefer(k)[0]; got != prefs[1] {
			t.Errorf("key %q: owner ejected, routes to %d, want next preference %d", k, got, prefs[1])
		}
		r.SetMember(prefs[0], true)
	}
}

func TestDistributionNotDegenerate(t *testing.T) {
	r := NewRing(4, 64)
	counts := make([]int, 4)
	for _, k := range keys(2000) {
		counts[r.Prefer(k)[0]]++
	}
	for b, n := range counts {
		if n < 100 { // 5% floor on a fair 25% share
			t.Errorf("backend %d owns only %d/2000 keys; vnode distribution is degenerate", b, n)
		}
	}
}

func TestRebuildCounting(t *testing.T) {
	r := NewRing(3, 8)
	base := r.Rebuilds()
	if base < 1 {
		t.Fatalf("initial build not counted: %d", base)
	}
	r.SetMember(1, false)
	r.SetMember(1, false) // no change, no rebuild
	r.SetMember(1, true)
	if got := r.Rebuilds(); got != base+2 {
		t.Errorf("rebuilds = %d, want %d (two real membership changes)", got, base+2)
	}
	if r.Live() != 3 {
		t.Errorf("Live() = %d, want 3", r.Live())
	}
}

func TestEmptyRing(t *testing.T) {
	r := NewRing(2, 8)
	r.SetMember(0, false)
	r.SetMember(1, false)
	if prefs := r.Prefer("anything"); prefs != nil {
		t.Errorf("empty ring Prefer = %v, want nil", prefs)
	}
	if r.Live() != 0 {
		t.Errorf("Live() = %d, want 0", r.Live())
	}
}
