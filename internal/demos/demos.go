// Package demos builds the example projects the paper demonstrates:
// the dragon of Figures 2–3, the parallel concession stand of Figures 7–10,
// the word-count mapReduce of Figures 11–12, and the NOAA climate
// mapReduce of Figure 13. Tests, examples, and the benchmark harness all
// run these same projects, so the figures are reproduced from one source
// of truth.
package demos

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/blocks"
	_ "repro/internal/core" // register the parallel blocks
	"repro/internal/interp"
	"repro/internal/value"
	"repro/internal/vclock"
)

// CupFillTimesteps is how long one pour takes: "It takes three timesteps
// to fill a glass" (footnote 5).
const CupFillTimesteps = 3

// ConcessionCups are the drink cups awaiting service.
var ConcessionCups = []string{"Cup1", "Cup2", "Cup3"}

// Concession builds the concession-stand project of §3.3. With parallel
// true the Pitcher's script uses the parallelForEach block in parallel mode
// (clones pour simultaneously, Figure 8a); otherwise sequential mode
// (Figure 8b). Each pour waits CupFillTimesteps, then broadcasts the cup's
// name; the cup answers by saying "full!".
func Concession(parallel bool) *blocks.Project {
	p := blocks.NewProject("concession-stand")
	p.Globals["cups"] = value.FromStrings(ConcessionCups)

	pour := blocks.Body(
		blocks.Wait(blocks.Num(CupFillTimesteps)),
		blocks.Broadcast(blocks.Var("cup")),
	)
	var forEach *blocks.Block
	if parallel {
		forEach = blocks.ParallelForEach("cup", blocks.Var("cups"), blocks.Empty(), pour)
	} else {
		forEach = blocks.ParallelForEachSeq("cup", blocks.Var("cups"), pour)
	}
	pitcher := p.AddSprite(blocks.NewSprite("Pitcher"))
	pitcher.X, pitcher.Y = -150, 100
	pitcher.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.ResetTimer(),
		forEach,
	))

	for i, name := range ConcessionCups {
		cup := p.AddSprite(blocks.NewSprite(name))
		cup.X, cup.Y = float64(-100+i*100), -100
		cup.AddScript(blocks.HatBroadcast, name, blocks.NewScript(
			blocks.Say(blocks.Txt("full!")),
		))
	}
	return p
}

// ConcessionResult is what one concession run observed.
type ConcessionResult struct {
	// Timer is the elapsed timesteps when the last cup filled — the
	// clock in the upper-left corner of Figure 7.
	Timer int64
	// FillTimes maps each cup to the timestep its "full!" appeared.
	FillTimes map[string]int64
	// Trace is the stage trace of the whole run.
	Trace []string
}

// RunConcession runs the concession stand to completion on the
// paper-calibrated interference clock and reports what the stage showed.
func RunConcession(parallel bool) (*ConcessionResult, error) {
	m := interp.NewMachine(Concession(parallel), vclock.NewPaperInterference())
	m.GreenFlag()
	if err := m.Run(0); err != nil {
		return nil, err
	}
	res := &ConcessionResult{FillTimes: map[string]int64{}}
	for _, name := range ConcessionCups {
		a := m.Stage.Actor(name)
		if a == nil || a.Saying != "full!" {
			return nil, fmt.Errorf("cup %s was never filled", name)
		}
	}
	for _, line := range m.Stage.TraceLines() {
		res.Trace = append(res.Trace, line)
		if !strings.Contains(line, `says "full!"`) {
			continue
		}
		var t int64
		var who string
		if n, _ := fmt.Sscanf(line, "[t=%d] %s", &t, &who); n == 2 {
			if res.FillTimes[who] == 0 {
				res.FillTimes[who] = t
			}
			if t > res.Timer {
				res.Timer = t
			}
		}
	}
	return res, nil
}

// Dragon builds the project of Figures 2–3: a dragon that flies forward
// forever once the green flag is clicked and turns on the arrow keys. The
// forever loop is bounded by `laps` here so programmatic runs terminate
// (the paper's user presses the stop button instead).
func Dragon(laps int) *blocks.Project {
	p := blocks.NewProject("dragon")
	d := p.AddSprite(blocks.NewSprite("Dragon"))
	d.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.Repeat(blocks.Num(float64(laps)), blocks.Body(
			blocks.Forward(blocks.Num(10)),
		)),
	))
	d.AddScript(blocks.HatKeyPress, "right arrow", blocks.NewScript(
		blocks.TurnRight(blocks.Num(15)),
	))
	d.AddScript(blocks.HatKeyPress, "left arrow", blocks.NewScript(
		blocks.TurnLeft(blocks.Num(15)),
	))
	return p
}

// Fig4SeqMap is Figure 4's reporter: map (× _ 10) over (list 3 7 8).
func Fig4SeqMap() *blocks.Block {
	return blocks.Map(
		blocks.RingOf(blocks.Product(blocks.Empty(), blocks.Num(10))),
		blocks.ListOf(blocks.Num(3), blocks.Num(7), blocks.Num(8)))
}

// Fig5ParallelMap is Figure 5's reporter: parallelMap (× _ 10) over a list
// with an explicit worker count (the optional revealed input).
func Fig5ParallelMap(list blocks.Node, workerInput blocks.Node) *blocks.Block {
	return blocks.ParallelMap(
		blocks.RingOf(blocks.Product(blocks.Empty(), blocks.Num(10))),
		list, workerInput)
}

// WordCountBlock is the mapReduce word-count program of Figure 11: the map
// ring pairs each word with 1, the reduce ring counts each word's
// occurrences, and the input list is the sentence split into words.
func WordCountBlock(sentence string) *blocks.Block {
	mapRing := blocks.RingOf(blocks.ListOf(blocks.Empty(), blocks.Num(1)))
	reduceRing := blocks.RingOf(blocks.Combine(
		blocks.Empty(),
		blocks.RingOf(blocks.Sum(blocks.Empty(), blocks.Empty()))))
	input := blocks.Split(blocks.Txt(sentence), blocks.Txt(" "))
	return blocks.MapReduce(mapRing, reduceRing, input)
}

// ClimateBlock is the Figure 13 mapReduce program: the map ring converts
// Fahrenheit to Celsius — ((5 × (t − 32)) ÷ 9), exactly the Figure 19
// expression — and the reduce ring averages the converted values.
func ClimateBlock(temps blocks.Node) *blocks.Block {
	mapRing := blocks.RingOf(
		blocks.Quotient(
			blocks.Product(blocks.Num(5),
				blocks.Difference(blocks.Empty(), blocks.Num(32))),
			blocks.Num(9)))
	// Average of the group's value list: sum via combine, divided by
	// length. A single argument fills every empty slot with the list.
	reduceRing := blocks.RingOf(
		blocks.Quotient(
			blocks.Combine(blocks.Empty(),
				blocks.RingOf(blocks.Sum(blocks.Empty(), blocks.Empty()))),
			blocks.LengthOf(blocks.Empty())))
	return blocks.MapReduce(mapRing, reduceRing, temps)
}

// evalProject backs every EvalBlock machine. Machines deep-clone global
// values out of their project and never write back into it, so one empty
// project can serve every scratch evaluation instead of allocating two
// maps per click.
var evalProject = blocks.NewProject("eval")

// evalMachines recycles scratch machines across EvalBlock calls: a
// machine is Reset after each evaluation, which rebuilds its scopes as
// fresh frames, so nothing the previous run produced — including ring
// values still holding their captured environment — can see the next one.
var evalMachines = sync.Pool{
	New: func() any { return interp.NewMachine(evalProject, nil) },
}

// EvalBlock runs one reporter in a fresh machine — the "click a reporter"
// gesture.
func EvalBlock(b *blocks.Block) (value.Value, error) {
	m := evalMachines.Get().(*interp.Machine)
	v, err := m.EvalReporter(b)
	m.Reset()
	evalMachines.Put(m)
	return v, err
}
