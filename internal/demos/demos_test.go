package demos

import (
	"strings"
	"testing"

	"repro/internal/blocks"
	"repro/internal/interp"
	"repro/internal/value"
)

// TestConcessionParallelFigure9 is experiment E3: in parallel mode three
// pitcher clones pour simultaneously and the timer reads 3 at completion
// (Figure 9c, "Timestep 3 (final)").
func TestConcessionParallelFigure9(t *testing.T) {
	res, err := RunConcession(true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timer != 3 {
		t.Errorf("parallel concession stand = %d timesteps, paper reports 3", res.Timer)
	}
	for _, cup := range ConcessionCups {
		if res.FillTimes[cup] != 3 {
			t.Errorf("%s filled at t=%d, want 3 (all cups fill together)",
				cup, res.FillTimes[cup])
		}
	}
}

// TestConcessionSequentialFigure10 is experiment E4: sequential mode pours
// one cup at a time and the timer reads 12 — 9 timesteps of pouring plus 3
// of interference (footnote 5). The intermediate screenshots of Figure 10
// are matched too: cups fill at timesteps 3, 7, and 12.
func TestConcessionSequentialFigure10(t *testing.T) {
	res, err := RunConcession(false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timer != 12 {
		t.Errorf("sequential concession stand = %d timesteps, paper reports 12", res.Timer)
	}
	wantFills := map[string]int64{"Cup1": 3, "Cup2": 7, "Cup3": 12}
	for cup, want := range wantFills {
		if res.FillTimes[cup] != want {
			t.Errorf("%s filled at t=%d, want %d (Figure 10 screenshots)",
				cup, res.FillTimes[cup], want)
		}
	}
}

func TestConcessionSpeedup(t *testing.T) {
	seq, err := RunConcession(false)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunConcession(true)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Timer/par.Timer != 4 {
		t.Errorf("speedup = %d/%d, paper shows 12/3 = 4x", seq.Timer, par.Timer)
	}
}

func TestConcessionCloneLifecycle(t *testing.T) {
	res, err := RunConcession(true)
	if err != nil {
		t.Fatal(err)
	}
	clones := 0
	for _, line := range res.Trace {
		if strings.Contains(line, "is cloned as") {
			clones++
		}
	}
	if clones != 3 {
		t.Errorf("parallel mode cloned %d pitchers, want 3", clones)
	}
	seqRes, _ := RunConcession(false)
	for _, line := range seqRes.Trace {
		if strings.Contains(line, "is cloned as") {
			t.Errorf("sequential mode must not clone: %s", line)
		}
	}
}

func TestDragonProject(t *testing.T) {
	m := interp.NewMachine(Dragon(5), nil)
	m.GreenFlag()
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	d := m.Stage.Actor("Dragon")
	if d.X != 50 {
		t.Errorf("dragon flew to x=%g, want 50", d.X)
	}
	m.PressKey("right arrow")
	m.Run(0)
	if d.Heading != 105 {
		t.Errorf("heading = %g", d.Heading)
	}
}

func TestFig4SeqMap(t *testing.T) {
	v, err := EvalBlock(Fig4SeqMap())
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "[30 70 80]" {
		t.Errorf("Figure 4 = %s, want [30 70 80] (Figure 4b)", v)
	}
}

func TestFig5ParallelMap(t *testing.T) {
	v, err := EvalBlock(Fig5ParallelMap(
		blocks.Numbers(blocks.Num(1), blocks.Num(10)), blocks.Num(4)))
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "[10 20 30 40 50 60 70 80 90 100]" {
		t.Errorf("Figure 6 outputs = %s", v)
	}
}

func TestWordCountBlockFigure12(t *testing.T) {
	v, err := EvalBlock(WordCountBlock("I want to be what I was when I wanted to be what I am now"))
	if err != nil {
		t.Fatal(err)
	}
	l := v.(*value.List)
	// Sorted unique words, each with a count; "I" appears 4 times.
	counts := map[string]string{}
	prev := ""
	for _, it := range l.Items() {
		pair := it.(*value.List)
		key := pair.MustItem(1).String()
		if prev != "" && key < prev {
			t.Errorf("output not sorted: %q after %q", key, prev)
		}
		prev = key
		counts[key] = pair.MustItem(2).String()
	}
	if counts["I"] != "4" {
		t.Errorf(`count["I"] = %s, want 4`, counts["I"])
	}
	if counts["to"] != "2" || counts["be"] != "2" || counts["what"] != "2" {
		t.Errorf("counts = %v", counts)
	}
	if counts["now"] != "1" {
		t.Errorf(`count["now"] = %s`, counts["now"])
	}
}

func TestClimateBlockFigure13(t *testing.T) {
	v, err := EvalBlock(ClimateBlock(blocks.ListOf(
		blocks.Num(32), blocks.Num(50), blocks.Num(68))))
	if err != nil {
		t.Fatal(err)
	}
	// 0, 10, 20 °C → average 10.
	if v.String() != "10" {
		t.Errorf("climate average = %s, want 10", v)
	}
}

// TestConcessionGoldenTraces locks the exact observable behavior of both
// modes — any scheduler or clock regression shows up as a trace diff.
func TestConcessionGoldenTraces(t *testing.T) {
	seq, err := RunConcession(false)
	if err != nil {
		t.Fatal(err)
	}
	wantSeq := []string{
		`[t=3] Cup1 says "full!"`,
		`[t=7] Cup2 says "full!"`,
		`[t=12] Cup3 says "full!"`,
	}
	if len(seq.Trace) != len(wantSeq) {
		t.Fatalf("sequential trace = %v", seq.Trace)
	}
	for i, want := range wantSeq {
		if seq.Trace[i] != want {
			t.Errorf("sequential trace[%d] = %q, want %q", i, seq.Trace[i], want)
		}
	}

	par, err := RunConcession(true)
	if err != nil {
		t.Fatal(err)
	}
	wantPar := []string{
		"[t=0] Pitcher is cloned as Pitcher#5",
		"[t=0] Pitcher is cloned as Pitcher#6",
		"[t=0] Pitcher is cloned as Pitcher#7",
		// The pours complete at t=3; each clone finds the queue empty
		// and removes itself, then the cups' broadcast handlers run in
		// the following scheduler round (still t=3 — no waits pending).
		"[t=3] Pitcher#5 is removed",
		"[t=3] Pitcher#6 is removed",
		"[t=3] Pitcher#7 is removed",
		`[t=3] Cup1 says "full!"`,
		`[t=3] Cup2 says "full!"`,
		`[t=3] Cup3 says "full!"`,
	}
	if len(par.Trace) != len(wantPar) {
		t.Fatalf("parallel trace = %v", par.Trace)
	}
	for i, want := range wantPar {
		if par.Trace[i] != want {
			t.Errorf("parallel trace[%d] = %q, want %q", i, par.Trace[i], want)
		}
	}
}

// TestConcessionDeterministic runs each mode repeatedly: the scheduler is
// deterministic, so the trace must be byte-identical every time.
func TestConcessionDeterministic(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		first, err := RunConcession(parallel)
		if err != nil {
			t.Fatal(err)
		}
		for run := 0; run < 3; run++ {
			again, err := RunConcession(parallel)
			if err != nil {
				t.Fatal(err)
			}
			if strings.Join(again.Trace, "\n") != strings.Join(first.Trace, "\n") {
				t.Fatalf("parallel=%v run %d diverged:\n%v\nvs\n%v",
					parallel, run, again.Trace, first.Trace)
			}
		}
	}
}
