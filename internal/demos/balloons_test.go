package demos

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/value"
	"repro/internal/vclock"
)

func TestBalloonsParallelFall(t *testing.T) {
	// Three balloons dropped in parallel over columns 0, 100, 200; the
	// basket sits at column 0: one catch, two splats — and because the
	// falls are parallel, the whole round takes fallTime timesteps, not
	// 3 × fallTime.
	res, err := RunBalloons([]float64{0, 100, 200}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Caught != 1 || res.Splat != 2 {
		t.Errorf("caught/splat = %d/%d, want 1/2", res.Caught, res.Splat)
	}
	if res.Timer != 5 {
		t.Errorf("round took %d timesteps, want 5 (parallel falls share timesteps)", res.Timer)
	}
}

func TestBalloonsBasketSteering(t *testing.T) {
	// Move the basket right before the green flag: it then catches the
	// column-100 balloon instead.
	m := interp.NewMachine(Balloons([]float64{0, 100, 200}, 4), vclock.New())
	m.PressKey("right arrow")
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	m.GreenFlag()
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	caught, _ := m.GlobalFrame().Get("caught")
	splat, _ := m.GlobalFrame().Get("splat")
	if caught.String() != "1" || splat.String() != "2" {
		t.Errorf("after steering: caught=%s splat=%s", caught, splat)
	}
	basket := m.Stage.Actor("Basket")
	if basket.X != 100 {
		t.Errorf("basket at %g, want 100", basket.X)
	}
}

func TestBalloonsNoCatch(t *testing.T) {
	// Basket at column 0, balloons only over 100 and 200: all splat.
	m := interp.NewMachine(Balloons([]float64{100, 200}, 3), vclock.New())
	// basketX starts at columns[0] = 100 in this build... so park it
	// away first.
	m.GlobalFrame().Set("basketX", value.Number(-999))
	m.GreenFlag()
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	splat, _ := m.GlobalFrame().Get("splat")
	if splat.String() != "2" {
		t.Errorf("splat = %s, want 2", splat)
	}
}

func TestBalloonsDeterministic(t *testing.T) {
	a, err := RunBalloons([]float64{0, 100, 200, 300}, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBalloons([]float64{0, 100, 200, 300}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Errorf("game rounds differ: %+v vs %+v", a, b)
	}
}
