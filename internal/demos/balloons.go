package demos

import (
	"fmt"

	"repro/internal/blocks"
	"repro/internal/interp"
	"repro/internal/value"
	"repro/internal/vclock"
)

// Balloons builds the water-balloon game §5 describes as "one of the more
// creative examples of parallelism" from Women in Computing Day: "a video
// game, where the player controlled an on-screen (laundry) basket and
// tried to catch water balloons that were falling from the sky (in
// parallel) before they landed on the heads of people."
//
// Structure: a Balloons sprite uses parallelForEach to drop one balloon
// clone per spawn column simultaneously; each clone falls one step per
// timestep. The Basket sprite moves with the arrow keys. A balloon whose
// column matches the basket's when it reaches catch height broadcasts a
// "caught" event; otherwise it broadcasts "splat". The machine's key
// events steer the basket between drops.
//
// columns are the spawn x-positions; fallTime is how many timesteps a
// balloon falls before resolving.
func Balloons(columns []float64, fallTime int) *blocks.Project {
	p := blocks.NewProject("water-balloons")
	cols := value.NewListCap(len(columns))
	for _, c := range columns {
		cols.Add(value.Number(c))
	}
	p.Globals["columns"] = cols
	p.Globals["caught"] = value.Number(0)
	p.Globals["splat"] = value.Number(0)
	p.Globals["basketX"] = value.Number(columns[0])

	basket := p.AddSprite(blocks.NewSprite("Basket"))
	basket.X = columns[0]
	basket.AddScript(blocks.HatKeyPress, "right arrow", blocks.NewScript(
		blocks.ChangeVar("basketX", blocks.Num(100)),
		blocks.GotoXY(blocks.Var("basketX"), blocks.Num(-150)),
	))
	basket.AddScript(blocks.HatKeyPress, "left arrow", blocks.NewScript(
		blocks.ChangeVar("basketX", blocks.Num(-100)),
		blocks.GotoXY(blocks.Var("basketX"), blocks.Num(-150)),
	))
	basket.AddScript(blocks.HatBroadcast, "caught", blocks.NewScript(
		blocks.ChangeVar("caught", blocks.Num(1)),
	))
	basket.AddScript(blocks.HatBroadcast, "splat", blocks.NewScript(
		blocks.ChangeVar("splat", blocks.Num(1)),
	))

	// The balloon fall: each clone starts at its column at the top and
	// descends one step per timestep until it reaches the basket line,
	// then resolves against basketX.
	step := 300 / float64(fallTime)
	fall := blocks.Body(
		blocks.DeclareLocal("y"),
		blocks.SetVar("y", blocks.Num(150)),
		blocks.GotoXY(blocks.Var("col"), blocks.Var("y")),
		blocks.Repeat(blocks.Num(float64(fallTime)), blocks.Body(
			blocks.Wait(blocks.Num(1)),
			blocks.ChangeVar("y", blocks.Num(-step)),
			blocks.GotoXY(blocks.Var("col"), blocks.Var("y")),
		)),
		blocks.IfElse(blocks.Equals(blocks.Var("col"), blocks.Var("basketX")),
			blocks.Body(blocks.Broadcast(blocks.Txt("caught"))),
			blocks.Body(blocks.Broadcast(blocks.Txt("splat")))),
	)
	dropper := p.AddSprite(blocks.NewSprite("Balloons"))
	dropper.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.ResetTimer(),
		blocks.ParallelForEach("col", blocks.Var("columns"), blocks.Empty(), fall),
	))
	return p
}

// BalloonsResult summarizes one game round.
type BalloonsResult struct {
	Caught, Splat int
	Timer         int64
}

// RunBalloons drops one balloon per column in parallel with the basket
// parked at columns[0] and reports the round: one catch (the basket's
// column), the rest splats, all resolving together — the parallel fall is
// the point of the game.
func RunBalloons(columns []float64, fallTime int) (*BalloonsResult, error) {
	m := interp.NewMachine(Balloons(columns, fallTime), vclock.New())
	m.GreenFlag()
	if err := m.Run(0); err != nil {
		return nil, err
	}
	caught, err := m.GlobalFrame().Get("caught")
	if err != nil {
		return nil, err
	}
	splat, err := m.GlobalFrame().Get("splat")
	if err != nil {
		return nil, err
	}
	nc, err := value.ToInt(caught)
	if err != nil {
		return nil, err
	}
	ns, err := value.ToInt(splat)
	if err != nil {
		return nil, err
	}
	if nc+ns != len(columns) {
		return nil, fmt.Errorf("%d balloons resolved, want %d", nc+ns, len(columns))
	}
	return &BalloonsResult{Caught: nc, Splat: ns, Timer: m.Stage.Timer.Elapsed()}, nil
}
