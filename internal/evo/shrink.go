package evo

import "repro/internal/evo/gen"

// shrink minimizes a diverging genome by delta debugging over the byte
// string: repeatedly remove halving-sized chunks, then lower surviving
// bytes toward zero (small bytes decode to the grammar's cheapest
// choices at every decision point). The predicate is "any divergence
// persists" — the shrunk genome's divergence may legitimately differ in
// detail from the original's, and the caller re-derives the detail
// afterwards. Progress is measured in decoded blocks, not genome bytes:
// a byte edit is only kept when the reproducer's script gets no bigger.
func (e *engine) shrink(g gen.Genome) gen.Genome {
	best := append(gen.Genome(nil), g...)
	bestBlocks := gen.CountBlocks(gen.Script(best))
	budget := e.cfg.ShrinkBudget

	try := func(cand gen.Genome) bool {
		if budget <= 0 {
			return false
		}
		n := gen.CountBlocks(gen.Script(cand))
		if len(cand) >= len(best) && n > bestBlocks {
			return false
		}
		budget--
		if _, bad := e.diverges(cand); bad {
			best = append(best[:0:0], cand...)
			bestBlocks = n
			return true
		}
		return false
	}

	// Removal and byte lowering interact (dropping a span renumbers
	// every later decision), so run both to a joint fixpoint.
	for progress := true; progress && budget > 0; {
		progress = false

		// Chunk removal, halving chunk sizes down to one byte.
		for chunk := len(best) / 2; chunk >= 1; chunk /= 2 {
			for pos := 0; pos+chunk <= len(best) && budget > 0; {
				cand := append(gen.Genome(nil), best[:pos]...)
				cand = append(cand, best[pos+chunk:]...)
				if try(cand) {
					// best shrank in place; retry the same position.
					progress = true
					continue
				}
				pos += chunk
			}
		}

		// Byte lowering: walk every surviving decision down toward its
		// cheapest decoding without changing the genome's length. The
		// small non-zero values matter because a divergence shape can
		// hide behind the grammar's low-numbered cases: zero alone
		// cannot move an error-shaped reproducer onto the smaller
		// value-shaped one.
		for i := 0; i < len(best) && budget > 0; i++ {
			for _, v := range []byte{0, 1, 2} {
				if best[i] <= v {
					break
				}
				cand := append(gen.Genome(nil), best...)
				cand[i] = v
				if try(cand) {
					progress = true
					break
				}
			}
		}
	}

	return best
}
