// Package evo is the evolutionary cross-tier stress engine: a
// generational genetic search over gen byte-genomes whose fitness is
// engine coverage — programs are rewarded for reaching rarely-hit paths
// (tree splices, compile fallbacks by reason, cache evictions, async
// mapReduce, worker dispatch) read from the obs registry — and whose
// every survivor is executed through all four tiers:
//
//	tree    the tree-walking interpreter (vm off)
//	vm      the flat bytecode machine (vm on)
//	kernel  the bytecode machine with observability off, which unlocks
//	        the compiled sequential mapReduce kernels (RunSeq)
//	serve   a live in-process snapserved session over POST /v1/run —
//	        twice, so a cache-replay answer must equal a cold one
//
// Any divergence in values, error strings, stage snapshots, or trace
// lines is shrunk to a minimal reproducer and persisted to a
// content-addressed corpus that reseeds the per-package fuzzers.
package evo

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blocks"
	_ "repro/internal/core" // hof, mapReduce, parallel and stage primitives
	"repro/internal/evo/gen"
	"repro/internal/evo/oracle"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/parse"
	"repro/internal/runtime"
	"repro/internal/server"
)

// Config parameterizes one stress run. The zero value is usable: a small
// deterministic one-generation pass with no corpus persistence.
type Config struct {
	// Seed fixes the whole run: same seed, same population trajectory
	// (concurrent serving-tier stress adds fitness noise but never
	// changes what a divergence means).
	Seed int64
	// Pop is the population size (default 24).
	Pop int
	// Generations bounds the generation count; 0 means run until
	// Duration elapses (or one generation when Duration is also 0).
	Generations int
	// Duration is the soak budget.
	Duration time.Duration
	// MinPrograms keeps the run going past Duration until this many
	// programs have been through the full four-tier oracle.
	MinPrograms int
	// CorpusDir persists shrunk divergences ("" = no persistence).
	CorpusDir string
	// Sessions adds that many concurrent serving-tier stress workers
	// replaying already-vetted survivors against the live server while
	// evolution continues — production concurrency over the same
	// admission queue, cache, and pool.
	Sessions int
	// ShrinkBudget caps oracle evaluations per shrink (default 400).
	ShrinkBudget int
	// Log receives progress lines (nil = silent).
	Log func(format string, args ...any)
}

// Stats summarizes a finished run.
type Stats struct {
	// Programs counts full four-tier differential evaluations.
	Programs int
	// Generations counts completed evolution rounds.
	Generations int
	// Divergences counts confirmed cross-tier divergences (each one is
	// also returned, shrunk, by Run).
	Divergences int
	// SessionRuns counts the extra concurrent serving-tier replays.
	SessionRuns int64
	// SessionRejects counts 429 admission rejections those replays hit
	// (back-pressure, not a bug).
	SessionRejects int64
}

// Divergence is one confirmed cross-tier disagreement.
type Divergence struct {
	// Name labels pinned-script divergences; "" for evolved genomes.
	Name string
	// Genome is the original diverging genome (nil for pinned scripts).
	Genome gen.Genome
	// Shrunk is the minimized genome still reproducing a divergence.
	Shrunk gen.Genome
	// Blocks counts blocks in the shrunk reproducer's script.
	Blocks int
	// Detail is the oracle's description of the disagreement.
	Detail string
	// Addr is the corpus content address ("" when not persisted).
	Addr string
}

func (c Config) withDefaults() Config {
	if c.Pop <= 0 {
		c.Pop = 24
	}
	if c.ShrinkBudget <= 0 {
		c.ShrinkBudget = 2000
	}
	if c.Log == nil {
		c.Log = func(string, ...any) {}
	}
	return c
}

type engine struct {
	cfg Config
	rnd *rand.Rand
	h   http.Handler

	// Coverage-rarity state: how many evaluations have hit each obs
	// signal, and how many times each observable outcome has appeared.
	hits     map[string]int64
	outcomes map[string]int

	// Survivor pool the concurrent serving-tier workers replay from.
	mu        sync.Mutex
	survivors []vetted

	stop    chan struct{}
	wg      sync.WaitGroup
	runs    atomic.Int64
	rejects atomic.Int64

	// Serving-tier mismatches observed by concurrent workers, re-checked
	// serially by the main loop before they count as divergences.
	flagged chan gen.Genome
}

// vetted is a program the four-tier oracle already passed, with the
// tier-invariant observables a replay must reproduce.
type vetted struct {
	src    string
	genome gen.Genome
	errs   string
	stage  string
	trace  string
}

func newEngine(cfg Config) *engine {
	rt := runtime.Config{
		MaxConcurrent: 2 + cfg.Sessions,
		MaxQueue:      2 * (2 + cfg.Sessions),
		QueueWait:     10 * time.Second,
	}
	srv := server.New(server.Config{Runtime: rt})
	return &engine{
		cfg:      cfg,
		rnd:      rand.New(rand.NewSource(cfg.Seed)),
		h:        srv.Handler(),
		hits:     map[string]int64{},
		outcomes: map[string]int{},
		stop:     make(chan struct{}),
		flagged:  make(chan gen.Genome, 64),
	}
}

func (e *engine) close() {
	close(e.stop)
	e.wg.Wait()
}

// post runs one serving-tier request against the in-process handler.
func (e *engine) post(src string) (int, server.RunResponse) {
	body, err := json.Marshal(server.RunRequest{Project: src})
	if err != nil {
		return 0, server.RunResponse{}
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/run", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	e.h.ServeHTTP(w, req)
	var resp server.RunResponse
	_ = json.Unmarshal(w.Body.Bytes(), &resp)
	return w.Code, resp
}

// sessionOutcome maps a serving-tier response onto the oracle contract.
// The serving tier reports no value (the reported value reaches it only
// through the generated trailing say), so Value is neutralized to ref.
func sessionOutcome(ref oracle.Outcome, resp server.RunResponse) oracle.Outcome {
	errStr := "<nil>"
	if resp.Status != runtime.StatusOK {
		errStr = resp.Error
	}
	return oracle.Outcome{
		Value: ref.Value,
		Err:   errStr,
		Stage: strings.Join(resp.Stage, "\n"),
		Trace: strings.Join(resp.Trace, "\n"),
	}
}

// signals snapshots the obs counters the fitness function rewards.
func signals() map[string]int64 {
	m := map[string]int64{
		"vm-tree-calls": obs.VMTreeCalls.Value(),
		"vm-yields":     obs.VMYields.Value(),
		"vm-lowerings":  obs.VMLowerings.Value(),
		"mr-runs":       obs.MRRuns.Value(),
		"pool-jobs":     obs.PoolJobs.Total(),
		"compile-hits":  obs.CompileHits.Value(),
	}
	for _, r := range obs.CompileReasons {
		m["fallback-"+r] = obs.CompileFallbacks.With(r).Value()
	}
	for _, tier := range []string{"project", "ring", "script"} {
		m["evict-"+tier] = obs.ProgcacheEvictions.With(tier).Value()
	}
	return m
}

// score folds coverage deltas and outcome novelty into a fitness value:
// each signal pays out proportionally to how rarely past programs hit it,
// log-damped so a million yields doesn't drown everything else, with a
// mild size penalty so programs stay shrinkable.
func (e *engine) score(before, after map[string]int64, outKey string, size int) float64 {
	var fit float64
	for sig, b := range before {
		d := after[sig] - b
		if d <= 0 {
			continue
		}
		e.hits[sig]++
		fit += (1 + math.Log2(float64(d))) * 16 / float64(1+e.hits[sig])
	}
	e.outcomes[outKey]++
	fit += 24 / float64(e.outcomes[outKey])
	return fit - float64(size)/64
}

// evalScript runs one script through all four tiers. It returns the
// coverage fitness and, on any cross-tier disagreement, the oracle's
// description. The caller owns shrinking and recording.
func (e *engine) evalScript(script *blocks.Script) (fit float64, detail string) {
	src, err := parse.PrintProject(gen.WrapScript(script))
	if err != nil {
		// Unprintable programs cannot reach the serving tier — a
		// generator bug by construction.
		return 0, fmt.Sprintf("program is unprintable: %v", err)
	}

	obs.SetEnabled(true)
	tree, _ := oracle.Run(script, false)
	before := signals()
	bc, _ := oracle.Run(script, true)
	after := signals()
	if d := oracle.Diff("tree", tree, "vm", bc); d != "" {
		return 0, d
	}

	// Kernel tier: obs off is what routes sync mapReduce through the
	// compiled sequential kernels, the one code path the vm tier's
	// instrumented run cannot take.
	obs.SetEnabled(false)
	kern, _ := oracle.Run(script, true)
	obs.SetEnabled(true)
	if d := oracle.Diff("tree", tree, "kernel", kern); d != "" {
		return 0, d
	}

	// Serving tier, twice: the second answer comes through the program
	// cache and must match the first byte for byte on every semantic
	// field (latency fields excluded by construction).
	code1, r1 := e.post(src)
	code2, r2 := e.post(src)
	if code1 != http.StatusOK {
		return 0, fmt.Sprintf("serving tier refused a vetted program: HTTP %d (status %q, error %q)",
			code1, r1.Status, r1.Error)
	}
	if code2 != http.StatusOK {
		return 0, fmt.Sprintf("serving-tier replay refused a cached program: HTTP %d (status %q, error %q)",
			code2, r2.Status, r2.Error)
	}
	s1, s2 := sessionOutcome(tree, r1), sessionOutcome(tree, r2)
	if d := oracle.Diff("serve", s1, "replay", s2); d != "" {
		return 0, "cache-replay divergence: " + d
	}
	if strings.Join(r1.Warnings, "\n") != strings.Join(r2.Warnings, "\n") {
		return 0, fmt.Sprintf("cache-replay warning divergence:\n first: %v\n replay: %v",
			r1.Warnings, r2.Warnings)
	}
	if d := oracle.Diff("tree", tree, "serve", s1); d != "" {
		return 0, d
	}

	return e.score(before, after, tree.Key(), gen.CountBlocks(script)), ""
}

// diverges is the shrinker's predicate: does this genome still produce
// any cross-tier disagreement?
func (e *engine) diverges(g gen.Genome) (string, bool) {
	_, d := e.evalScript(gen.Script(g))
	return d, d != ""
}

// record shrinks and persists one genome divergence.
func (e *engine) record(g gen.Genome, detail string, stats *Stats, out *[]Divergence) {
	stats.Divergences++
	shrunk := e.shrink(g)
	script := gen.Script(shrunk)
	div := Divergence{
		Genome: append(gen.Genome(nil), g...),
		Shrunk: shrunk,
		Blocks: gen.CountBlocks(script),
		Detail: detail,
	}
	if d, still := e.diverges(shrunk); still {
		div.Detail = d
	}
	if e.cfg.CorpusDir != "" {
		addr, err := writeCorpus(e.cfg.CorpusDir, div)
		if err != nil {
			e.cfg.Log("corpus write failed: %v", err)
		} else {
			div.Addr = addr
		}
	}
	e.cfg.Log("DIVERGENCE (%d blocks shrunk): %s", div.Blocks, firstLine(div.Detail))
	*out = append(*out, div)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// sessionWorker replays vetted survivors against the live server while
// the main loop keeps evolving — production concurrency over the same
// admission queue, caches, and worker pool. A replay that disagrees with
// the vetted observables is flagged for serial re-checking; 429s are
// back-pressure, not bugs.
func (e *engine) sessionWorker(seed int64) {
	defer e.wg.Done()
	rnd := rand.New(rand.NewSource(seed))
	for {
		select {
		case <-e.stop:
			return
		default:
		}
		e.mu.Lock()
		n := len(e.survivors)
		var v vetted
		if n > 0 {
			v = e.survivors[rnd.Intn(n)]
		}
		e.mu.Unlock()
		if n == 0 {
			time.Sleep(time.Millisecond)
			continue
		}
		code, resp := e.post(v.src)
		e.runs.Add(1)
		// A short breather keeps the replay load from starving the main
		// loop's own serving-tier runs out of the admission queue.
		time.Sleep(2 * time.Millisecond)
		switch {
		case code == http.StatusTooManyRequests:
			e.rejects.Add(1)
		case code != http.StatusOK,
			errOf(resp) != v.errs,
			strings.Join(resp.Stage, "\n") != v.stage,
			strings.Join(resp.Trace, "\n") != v.trace:
			select {
			case e.flagged <- v.genome:
			default:
			}
		}
	}
}

func errOf(resp server.RunResponse) string {
	if resp.Status != runtime.StatusOK {
		return resp.Error
	}
	return "<nil>"
}

// Run executes the stress engine and returns its stats plus every
// confirmed divergence, shrunk. A healthy engine returns zero
// divergences; anything else is a bug in one of the four tiers (or, with
// an installed program mutator, the injected one).
func Run(cfg Config) (Stats, []Divergence) {
	cfg = cfg.withDefaults()
	e := newEngine(cfg)
	defer e.close()

	prevObs := obs.Enabled()
	defer obs.SetEnabled(prevObs)

	// The grammar guarantees termination but not modest memory or speed:
	// a join-doubling loop is exponential in a linear trip count, and a
	// foreach that inserts into its own list chases its tail until some
	// limit fires. The process-wide value caps turn both into the same
	// deterministic cap error on every tier (the daemon runs with caps
	// anyway). The list cap is deliberately small — positional inserts
	// are O(n), so cap growth keeps tail-chasers out of quadratic time.
	prevList, prevText := interp.ValueCaps()
	interp.SetValueCaps(5_000, 1<<16)
	defer interp.SetValueCaps(prevList, prevText)

	var stats Stats
	var divs []Divergence

	// The mapReduce parity edges run before any evolution: pinned,
	// named, unconditional.
	for _, p := range gen.PinnedScripts() {
		stats.Programs++
		if _, d := e.evalScript(p.Script); d != "" {
			stats.Divergences++
			divs = append(divs, Divergence{Name: p.Name, Detail: d,
				Blocks: gen.CountBlocks(p.Script)})
			cfg.Log("DIVERGENCE in pinned %s: %s", p.Name, firstLine(d))
		}
	}

	for i := 0; i < cfg.Sessions; i++ {
		e.wg.Add(1)
		go e.sessionWorker(cfg.Seed + int64(i) + 1)
	}

	type scored struct {
		g   gen.Genome
		fit float64
	}
	pop := gen.Seeds()
	for len(pop) < cfg.Pop {
		pop = append(pop, gen.Random(e.rnd, 8+e.rnd.Intn(48)))
	}
	pop = pop[:cfg.Pop]

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	done := func() bool {
		if stats.Programs < cfg.MinPrograms {
			return false
		}
		if cfg.Generations > 0 {
			return stats.Generations >= cfg.Generations
		}
		if cfg.Duration > 0 {
			return time.Now().After(deadline)
		}
		return stats.Generations >= 1
	}

	for !done() {
		ranked := make([]scored, 0, len(pop))
		for _, g := range pop {
			stats.Programs++
			g := g
			watchdog := time.AfterFunc(5*time.Second, func() {
				cfg.Log("slow program (still running after 5s): %x", g)
			})
			fit, detail := e.evalScript(gen.Script(g))
			watchdog.Stop()
			if detail != "" {
				e.record(g, detail, &stats, &divs)
				continue
			}
			ranked = append(ranked, scored{g, fit})
			if src, err := parse.PrintProject(gen.Project(g)); err == nil {
				tree, _ := oracle.Run(gen.Script(g), false)
				e.mu.Lock()
				e.survivors = append(e.survivors, vetted{
					src: src, genome: g,
					errs: tree.Err, stage: tree.Stage, trace: tree.Trace,
				})
				if len(e.survivors) > 256 {
					e.survivors = e.survivors[len(e.survivors)-256:]
				}
				e.mu.Unlock()
			}
		}

		// Serial re-check of anything the concurrent workers flagged:
		// only a disagreement that reproduces under the full oracle
		// counts.
		for drained := false; !drained; {
			select {
			case g := <-e.flagged:
				stats.Programs++
				if _, d := e.evalScript(gen.Script(g)); d != "" {
					e.record(g, d, &stats, &divs)
				}
			default:
				drained = true
			}
		}

		stats.Generations++

		// Tournament-free truncation selection: top half breeds.
		for i := 1; i < len(ranked); i++ {
			for j := i; j > 0 && ranked[j].fit > ranked[j-1].fit; j-- {
				ranked[j], ranked[j-1] = ranked[j-1], ranked[j]
			}
		}
		elite := len(ranked) / 2
		if elite < 2 {
			elite = len(ranked)
		}
		next := make([]gen.Genome, 0, cfg.Pop)
		for i := 0; i < elite && i < len(ranked); i++ {
			next = append(next, ranked[i].g)
		}
		for len(next) < cfg.Pop {
			switch {
			case len(ranked) == 0 || e.rnd.Intn(6) == 0:
				next = append(next, gen.Random(e.rnd, 8+e.rnd.Intn(48)))
			case len(ranked) >= 2 && e.rnd.Intn(3) == 0:
				a := ranked[e.rnd.Intn(elite)].g
				b := ranked[e.rnd.Intn(len(ranked))].g
				next = append(next, gen.Crossover(e.rnd, a, b))
			default:
				next = append(next, gen.Mutate(e.rnd, ranked[e.rnd.Intn(max(elite, 1))].g))
			}
		}
		pop = next

		if stats.Generations%10 == 0 {
			cfg.Log("gen %d: %d programs, %d divergences, %d session runs",
				stats.Generations, stats.Programs, stats.Divergences, e.runs.Load())
		}
	}

	stats.SessionRuns = e.runs.Load()
	stats.SessionRejects = e.rejects.Load()
	return stats, divs
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
