package evo

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/evo/gen"
	"repro/internal/runtime"
)

// Governance under stress: the generator's hostile set (non-terminating
// loops, warped and plain) and its evolved (terminating) programs run
// concurrently through one governed manager, and every session must end
// with the status its limits dictate — wall-clock deadline, step budget,
// or mid-run kill — with nothing hung and the manager's books balanced.
// The whole file is exercised under -race by make check.

// govRun runs one project to completion through mgr and returns its
// result, failing the test if the session never finishes.
func govRun(t *testing.T, mgr *runtime.Manager, ctx context.Context, p gen.Pinned, lim runtime.Limits) runtime.Result {
	t.Helper()
	proj := gen.WrapScript(p.Script)
	s, err := mgr.Run(ctx, proj, lim)
	if err != nil {
		t.Fatalf("%s: %v", p.Name, err)
	}
	select {
	case <-s.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("%s: session never finished", p.Name)
	}
	res, done := s.Result()
	if !done {
		t.Fatalf("%s: Done() closed but Result not ready", p.Name)
	}
	return res
}

func TestGovernanceDeadlineUnderChurn(t *testing.T) {
	mgr := runtime.NewManager(runtime.Config{MaxConcurrent: 4, MaxQueue: 64, QueueWait: 30 * time.Second})
	var wg sync.WaitGroup
	for _, h := range gen.Hostile() {
		h := h
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A huge step budget makes the wall clock the only limit
			// that can fire.
			res := govRun(t, mgr, context.Background(), h, runtime.Limits{
				Timeout:  200 * time.Millisecond,
				MaxSteps: 1 << 40,
			})
			if res.Status != runtime.StatusTimeout {
				t.Errorf("%s: status = %s (%s), want %s", h.Name, res.Status, res.Error, runtime.StatusTimeout)
			}
		}()
	}
	wg.Wait()
	if got := mgr.Stats().ByStatus[runtime.StatusTimeout]; got != int64(len(gen.Hostile())) {
		t.Errorf("ByStatus[timeout] = %d, want %d", got, len(gen.Hostile()))
	}
}

func TestGovernanceStepBudgetUnderChurn(t *testing.T) {
	mgr := runtime.NewManager(runtime.Config{MaxConcurrent: 4, MaxQueue: 64, QueueWait: 30 * time.Second})
	var wg sync.WaitGroup
	for _, h := range gen.Hostile() {
		h := h
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A generous deadline makes the step budget the limit that
			// fires; an infinite loop burns 20k steps in well under 30s.
			res := govRun(t, mgr, context.Background(), h, runtime.Limits{
				Timeout:  30 * time.Second,
				MaxSteps: 20_000,
			})
			if res.Status != runtime.StatusSteps {
				t.Errorf("%s: status = %s (%s), want %s", h.Name, res.Status, res.Error, runtime.StatusSteps)
			}
			if res.Steps < 20_000 {
				t.Errorf("%s: killed after %d steps, before the 20000-step budget", h.Name, res.Steps)
			}
		}()
	}
	wg.Wait()
	if got := mgr.Stats().ByStatus[runtime.StatusSteps]; got != int64(len(gen.Hostile())) {
		t.Errorf("ByStatus[step-budget] = %d, want %d", got, len(gen.Hostile()))
	}
}

func TestGovernanceKillMidRun(t *testing.T) {
	// Kill-mid-generation: hostile sessions admitted with generous limits
	// are canceled from outside while running. The cancel must land as
	// StatusCanceled, not hang and not surface as a timeout.
	mgr := runtime.NewManager(runtime.Config{MaxConcurrent: 4, MaxQueue: 16, QueueWait: 30 * time.Second})
	hostile := gen.Hostile()
	var wg sync.WaitGroup
	results := make([]runtime.Result, len(hostile))
	ctx, cancel := context.WithCancel(context.Background())
	for i, h := range hostile {
		i, h := i, h
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = govRun(t, mgr, ctx, h, runtime.Limits{Timeout: 30 * time.Second, MaxSteps: 1 << 40})
		}()
	}
	// Wait until every hostile session holds an execution slot (they
	// never finish on their own), then pull the plug on all of them.
	deadline := time.Now().Add(10 * time.Second)
	for mgr.Stats().Running < len(hostile) {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d hostile sessions running", mgr.Stats().Running, len(hostile))
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	wg.Wait()
	for i, res := range results {
		if res.Status != runtime.StatusCanceled {
			t.Errorf("%s: status = %s (%s), want %s", hostile[i].Name, res.Status, res.Error, runtime.StatusCanceled)
		}
	}
	if got := mgr.Stats().ByStatus[runtime.StatusCanceled]; got != int64(len(hostile)) {
		t.Errorf("ByStatus[canceled] = %d, want %d", got, len(hostile))
	}
}

func TestGovernanceEvolvedChurnStaysClean(t *testing.T) {
	// Evolved programs are terminating by construction: a concurrent
	// batch through a governed manager must land on ok or a program
	// error — any timeout, step-budget, or hang here means either the
	// generator leaked a non-terminating shape or governance misfired.
	mgr := runtime.NewManager(runtime.Config{MaxConcurrent: 4, MaxQueue: 64, QueueWait: 30 * time.Second})
	rnd := rand.New(rand.NewSource(31))
	var genomes []gen.Genome
	for i := 0; i < 24; i++ {
		genomes = append(genomes, gen.Random(rnd, 16+rnd.Intn(48)))
	}
	var wg sync.WaitGroup
	for i, g := range genomes {
		i, g := i, g
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := gen.Pinned{Name: g.String(), Script: gen.Script(g)}
			res := govRun(t, mgr, context.Background(), p, runtime.Limits{Timeout: 20 * time.Second})
			if res.Status != runtime.StatusOK && res.Status != runtime.StatusError {
				t.Errorf("genome %d (%s): status = %s (%s), want ok or error", i, g, res.Status, res.Error)
			}
		}()
	}
	wg.Wait()
	st := mgr.Stats()
	if st.Running != 0 || st.Queued != 0 {
		t.Errorf("manager not idle after churn: running %d, queued %d", st.Running, st.Queued)
	}
	var total int64
	for _, n := range st.ByStatus {
		total += n
	}
	if total != int64(len(genomes)) {
		t.Errorf("ByStatus total = %d, want %d", total, len(genomes))
	}
}
