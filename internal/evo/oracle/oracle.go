// Package oracle is the cross-tier comparison contract shared by the
// differential test harnesses and the evolutionary stress engine: a
// script's observable behavior — reported value, error text (verbatim),
// final stage snapshot, and stage trace log — rendered to strings so two
// tiers' outcomes compare (and content-address) trivially. Any tier that
// claims to execute the block language must reproduce all four fields
// byte for byte.
//
// The package deliberately stops at the interp/vm layer: callers that
// need the hof/mapReduce/parallel/stage primitives registered (every
// realistic script does) import repro/internal/core for its side effects
// themselves, which keeps oracle importable from internal/compile's own
// tests without an import cycle.
package oracle

import (
	"fmt"

	"strings"

	"repro/internal/blocks"
	"repro/internal/interp"
	"repro/internal/value"
	"repro/internal/vm"
)

// Outcome is the complete observable behavior of one script execution.
type Outcome struct {
	// Value is the reported value's rendering ("<no value>" when the
	// script reported nothing).
	Value string
	// Err is the run error's text ("<nil>" on success).
	Err string
	// Stage is the final stage snapshot, lines joined with \n.
	Stage string
	// Trace is the stage output log, lines joined with \n.
	Trace string
}

// Key is a content key for the outcome — divergence novelty and corpus
// addressing both hash it.
func (o Outcome) Key() string {
	return o.Value + "\x00" + o.Err + "\x00" + o.Stage + "\x00" + o.Trace
}

// ErrString renders an error for byte-for-byte comparison; nil reads
// "<nil>". A tier must not merely also fail — it must fail with the
// reference tier's words.
func ErrString(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}

// ValString renders a reported value; nil (no report) reads "<no value>".
func ValString(v value.Value) string {
	if v == nil {
		return "<no value>"
	}
	return v.String()
}

// ValuesAgree reports whether two tier results denote the same value:
// structural equality, or failing that identical rendering (the ring
// compiler's contract — interned scalars and adopted lists may differ in
// identity but never in meaning).
func ValuesAgree(a, b value.Value) bool {
	if a == nil || b == nil {
		return ValString(a) == ValString(b)
	}
	return value.Equal(a, b) || a.String() == b.String()
}

// Capture assembles an Outcome from a finished machine run.
func Capture(m *interp.Machine, v value.Value, err error) Outcome {
	o := Outcome{Value: ValString(v), Err: ErrString(err)}
	if m != nil {
		o.Stage = strings.Join(m.Stage.Snapshot(), "\n")
		o.Trace = strings.Join(m.Stage.TraceLines(), "\n")
	}
	return o
}

// RunEngine executes script on a fresh machine with the bytecode engine
// switched on or off, from a cold program memo, returning the machine for
// stage inspection. The engine is restored to on afterwards (the
// production default).
func RunEngine(script *blocks.Script, bytecode bool) (value.Value, error, *interp.Machine) {
	vm.ResetMemo()
	vm.SetEnabled(bytecode)
	defer vm.SetEnabled(true)
	m := interp.NewMachine(blocks.NewProject("oracle"), nil)
	v, err := m.RunScript(script)
	return v, err, m
}

// Run is RunEngine rendered down to an Outcome.
func Run(script *blocks.Script, bytecode bool) (Outcome, *interp.Machine) {
	v, err, m := RunEngine(script, bytecode)
	return Capture(m, v, err), m
}

// Diff describes the first divergence between two outcomes, or "" when
// they agree on every observable field.
func Diff(aName string, a Outcome, bName string, b Outcome) string {
	if a.Err != b.Err {
		return fmt.Sprintf("error mismatch:\n %6s: %s\n %6s: %s", aName, a.Err, bName, b.Err)
	}
	if a.Value != b.Value {
		return fmt.Sprintf("value mismatch:\n %6s: %s\n %6s: %s", aName, a.Value, bName, b.Value)
	}
	if a.Stage != b.Stage {
		return fmt.Sprintf("stage mismatch:\n %6s:\n%s\n %6s:\n%s", aName, a.Stage, bName, b.Stage)
	}
	if a.Trace != b.Trace {
		return fmt.Sprintf("trace mismatch:\n %6s:\n%s\n %6s:\n%s", aName, a.Trace, bName, b.Trace)
	}
	return ""
}

// Failer is the subset of testing.TB the assertion helper needs — an
// interface so this package stays importable from non-test binaries
// without linking package testing.
type Failer interface {
	Helper()
	Fatalf(format string, args ...any)
}

// AssertSame runs script under both the tree-walker and the bytecode
// machine and fails on any observable divergence.
func AssertSame(t Failer, script *blocks.Script) {
	t.Helper()
	tree, _ := Run(script, false)
	bc, _ := Run(script, true)
	if d := Diff("tree", tree, "vm", bc); d != "" {
		t.Fatalf("%s", d)
	}
}
