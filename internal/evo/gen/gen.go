// Package gen is the evolutionary stress engine's program synthesizer: a
// byte string (the genome) decodes deterministically into a valid,
// terminating, lint-clean block script biased toward the engine's hot
// machinery — inlined sequential hofs, mapReduce on both sides of the
// sync/async threshold, parallelMap, nested bounded loops, text and list
// ops, stage splices, and deterministic error-producing edges.
//
// Byte genomes make the genetic operators trivial (mutation is a byte
// edit, crossover a splice, shrinking a byte-range removal) and make every
// persisted divergence directly consumable by FuzzLowerProject, which
// feeds the same decoder. Out-of-data reads return zero, so every byte
// string decodes to something; the node budget bounds program size and
// every loop shape is finitely bounded, so every generated program
// terminates. Decoding is pure: the same genome always yields the same
// script.
//
// Two invariants keep all four execution tiers comparable:
//
//   - No wait blocks: the stage trace prefixes lines with the virtual
//     timestep, which only advances on doWait, so generated traces carry
//     identical timestamps on every tier.
//   - Worker-bound rings (parallelMap's ring, mapReduce's two rings) are
//     self-contained — empty slots and literals only. Anything else is a
//     lint error (worker-capture) that the serving tier rejects with 400
//     before execution. Error edges inside async-sized mapReduce rings
//     fire on at most one item, so the surfaced error text does not
//     depend on worker scheduling.
package gen

import (
	"encoding/hex"
	"math/rand"

	"repro/internal/blocks"
)

// Genome is a byte string that decodes to a block script.
type Genome []byte

// String renders the genome as hex — the form engine log lines, corpus
// file names, and test names all use.
func (g Genome) String() string { return hex.EncodeToString(g) }

// nodeBudget bounds decoded program size; past it every expression
// degenerates to a leaf and every statement to a trivial assignment.
const nodeBudget = 96

// scalarVars are the declared scalar variables every program may touch;
// listVar holds a list, outVar the reported result.
var scalarVars = []string{"a", "b", "c"}

const (
	listVar = "l"
	outVar  = "out"
)

var genTexts = []string{"", "x", "hello", "a b c", "the quick fox the lazy dog", "3", "-2.5", "x,y,x"}

// genMonadic stays within the printable selector set: the serving tier
// round-trips every program through parse.PrintProject, and unknown
// monadic selectors have no textual spelling.
var genMonadic = []string{"sqrt", "abs", "floor"}

type decoder struct {
	data  []byte
	pos   int
	nodes int
	loops int // live loop-nesting depth; deep nests get clamped trip counts
}

func (d *decoder) next() byte {
	if d.pos >= len(d.data) {
		return 0
	}
	b := d.data[d.pos]
	d.pos++
	return b
}

func (d *decoder) scalar() string { return scalarVars[int(d.next())%len(scalarVars)] }

func (d *decoder) num(n int) blocks.Node { return blocks.Num(float64(int(d.next()) % n)) }

func (d *decoder) text() blocks.Node { return blocks.Txt(genTexts[int(d.next())%len(genTexts)]) }

// leaf is a terminal expression: a small number, a text, a declared
// variable (including the list), or a boolean.
func (d *decoder) leaf() blocks.Node {
	switch d.next() % 6 {
	case 0:
		return blocks.Num(float64(int8(d.next())))
	case 1:
		return d.text()
	case 2:
		return blocks.Var(d.scalar())
	case 3:
		return blocks.Var(listVar)
	default:
		return blocks.BoolLit(d.next()%2 == 0)
	}
}

// expr decodes an expression tree. Leaf cases appear in the main switch
// too, so shallow programs are reachable — which is what lets the
// shrinker reduce a divergence to its minimal expression.
func (d *decoder) expr(depth int) blocks.Node {
	d.nodes++
	if depth <= 0 || d.nodes > nodeBudget {
		return d.leaf()
	}
	switch d.next() % 23 {
	case 0:
		// The zero byte — and therefore every out-of-data read — decodes
		// to a bare leaf, which is what makes the shrinker's byte-zeroing
		// and truncation genuine simplifications.
		return d.leaf()
	case 1:
		return blocks.Difference(d.expr(depth-1), d.expr(depth-1))
	case 2:
		return blocks.Product(d.expr(depth-1), d.expr(depth-1))
	case 3:
		// Division: zero denominators arise naturally from literals and
		// arithmetic, giving both tiers the "division by zero" edge.
		return blocks.Quotient(d.expr(depth-1), d.expr(depth-1))
	case 4:
		return blocks.Modulus(d.expr(depth-1), d.expr(depth-1))
	case 5:
		return blocks.Round(d.expr(depth - 1))
	case 6:
		// Includes "nope": the unknown-function error both tiers must
		// word identically. sqrt of a negative is reachable through the
		// int8 literals.
		return blocks.Monadic(genMonadic[int(d.next())%len(genMonadic)], d.expr(depth-1))
	case 7:
		switch d.next() % 3 {
		case 0:
			return blocks.LessThan(d.expr(depth-1), d.expr(depth-1))
		case 1:
			return blocks.Equals(d.expr(depth-1), d.expr(depth-1))
		default:
			return blocks.GreaterThan(d.expr(depth-1), d.expr(depth-1))
		}
	case 8:
		if d.next()%2 == 0 {
			return blocks.And(d.expr(depth-1), d.expr(depth-1))
		}
		return blocks.Or(d.expr(depth-1), d.expr(depth-1))
	case 9:
		return blocks.Not(d.expr(depth - 1))
	case 10:
		// Ternary (reportIfElse) has no textual spelling, so branchy
		// values go through a letter-indexed pick instead.
		return blocks.ItemOf(d.expr(depth-1), blocks.Split(d.text(), blocks.Txt(" ")))
	case 11:
		return blocks.Join(d.expr(depth-1), d.expr(depth-1))
	case 12:
		return blocks.Letter(d.expr(depth-1), d.expr(depth-1))
	case 13:
		// String size via the per-letter split (reportStringSize has no
		// textual spelling either).
		return blocks.LengthOf(blocks.Split(d.expr(depth-1), blocks.Txt("")))
	case 14:
		return blocks.Split(d.expr(depth-1), blocks.Txt([]string{" ", ",", ""}[int(d.next())%3]))
	case 15:
		return blocks.Numbers(blocks.Num(1), d.num(8))
	case 16:
		n := int(d.next()) % 4
		items := make([]blocks.Node, n)
		for i := range items {
			items[i] = d.expr(depth - 1)
		}
		return blocks.ListOf(items...)
	case 17:
		// Out-of-range indices are part of the point.
		return blocks.ItemOf(d.expr(depth-1), d.listSrc(depth-1))
	case 18:
		if d.next()%2 == 0 {
			return blocks.LengthOf(d.listSrc(depth - 1))
		}
		return blocks.ListContains(d.listSrc(depth-1), d.expr(depth-1))
	case 19:
		return d.hof(depth)
	case 20:
		return blocks.Sum(d.expr(depth-1), d.expr(depth-1))
	default:
		return d.leaf()
	}
}

// listSrc is an expression likely — not certainly — to evaluate to a
// list; a certain miss exercises the "expecting a list" error path.
func (d *decoder) listSrc(depth int) blocks.Node {
	switch d.next() % 4 {
	case 0:
		return blocks.Numbers(blocks.Num(1), d.num(8))
	case 1:
		return blocks.Var(listVar)
	case 2:
		return blocks.Split(d.text(), blocks.Txt(" "))
	default:
		if depth <= 0 {
			return blocks.Var(listVar)
		}
		return d.expr(depth - 1)
	}
}

// innerRing is the literal ring slot of a sequential higher-order block.
// Sequential rings run inline in the calling process, so — unlike worker
// rings — they may capture outer variables and produce errors freely.
func (d *decoder) innerRing(depth, arity int) blocks.Node {
	if d.next()%2 == 0 {
		params := []string{"u", "v"}[:arity]
		return blocks.RingOf(d.expr(depth), params...)
	}
	return blocks.RingOf(blocks.Sum(blocks.Empty(), d.expr(depth)))
}

// hof decodes one higher-order call: the inlined sequential family, a
// direct ring call, or the parallel/mapReduce family.
func (d *decoder) hof(depth int) blocks.Node {
	switch d.next() % 6 {
	case 0:
		return blocks.Map(d.innerRing(depth-1, 1), d.listSrc(depth-1))
	case 1:
		return blocks.Keep(
			blocks.RingOf(blocks.GreaterThan(blocks.Empty(), d.expr(depth-1))),
			d.listSrc(depth-1))
	case 2:
		return blocks.Combine(d.listSrc(depth-1),
			blocks.RingOf(blocks.Sum(blocks.Empty(), blocks.Empty())))
	case 3:
		return blocks.Call(d.innerRing(depth-1, 2), d.expr(depth-1), d.expr(depth-1))
	case 4:
		return d.parallelMap()
	default:
		return d.mapReduce()
	}
}

// workerRing builds a self-contained mapper-shaped ring for the parallel
// tier: empty slots and literals only (anything else is the worker-capture
// lint error), errors impossible — divisors and moduli are nonzero
// literals — so results cannot depend on worker scheduling.
func (d *decoder) workerRing() blocks.Node {
	switch d.next() % 5 {
	case 0:
		return blocks.RingOf(blocks.Product(blocks.Empty(), blocks.Num(float64(1+int(d.next())%9))))
	case 1:
		return blocks.RingOf(blocks.Sum(blocks.Empty(), blocks.Num(float64(int8(d.next())))))
	case 2:
		return blocks.RingOf(blocks.Modulus(blocks.Empty(), blocks.Num(float64(2+int(d.next())%5))))
	case 3:
		return blocks.RingOf(blocks.Join(blocks.Txt("v"), blocks.Empty()))
	default:
		return blocks.RingOf(blocks.ListOf(blocks.Empty(), blocks.Num(1)))
	}
}

// mrMapRing builds a mapReduce map ring. When errors are allowed (sync
// path, or a single-item edge) the division ring fails on exactly one
// item value, keeping the surfaced error deterministic even on workers.
func (d *decoder) mrMapRing(allowError bool) blocks.Node {
	k := float64(2 + int(d.next())%5)
	if allowError && d.next()%4 == 0 {
		at := float64(1 + int(d.next())%70)
		return blocks.RingOf(blocks.Quotient(blocks.Num(1),
			blocks.Difference(blocks.Empty(), blocks.Num(at))))
	}
	switch d.next() % 4 {
	case 0:
		// Keyed count: (item mod k, 1).
		return blocks.RingOf(blocks.ListOf(
			blocks.Modulus(blocks.Empty(), blocks.Num(k)), blocks.Num(1)))
	case 1:
		// String keys.
		return blocks.RingOf(blocks.ListOf(
			blocks.Join(blocks.Txt("k"), blocks.Modulus(blocks.Empty(), blocks.Num(k))),
			blocks.Empty()))
	case 2:
		// Identity-keyed pairs (one key per distinct item).
		return blocks.RingOf(blocks.ListOf(blocks.Empty(), blocks.Empty()))
	default:
		// Scalar result: every item maps to the single shared key.
		return blocks.RingOf(blocks.Product(blocks.Empty(), blocks.Num(k)))
	}
}

func (d *decoder) mrReduceRing(allowError bool) blocks.Node {
	sum := func() blocks.Node {
		return blocks.RingOf(blocks.Sum(blocks.Empty(), blocks.Empty()))
	}
	if allowError && d.next()%5 == 0 {
		return blocks.RingOf(blocks.Quotient(blocks.Num(1), blocks.Num(0)))
	}
	switch d.next() % 3 {
	case 0:
		return blocks.RingOf(blocks.Combine(blocks.Empty(), sum()))
	case 1:
		return blocks.RingOf(blocks.LengthOf(blocks.Empty()))
	default:
		return blocks.RingOf(blocks.Quotient(
			blocks.Combine(blocks.Empty(), sum()),
			blocks.LengthOf(blocks.Empty())))
	}
}

// mrSizes spans the sync/async threshold (64): both engine paths, the
// empty and single-item edges, and inputs big enough to shard.
var mrSizes = []int{0, 1, 3, 8, 40, 63, 64, 65, 100, 200}

func (d *decoder) mapReduce() blocks.Node {
	size := mrSizes[int(d.next())%len(mrSizes)]
	var input blocks.Node
	if size == 0 {
		input = blocks.ListOf()
	} else if d.next()%5 == 0 {
		input = blocks.Split(blocks.Txt("the quick fox the lazy dog the end"), blocks.Txt(" "))
	} else {
		input = blocks.Numbers(blocks.Num(1), blocks.Num(float64(size)))
	}
	allowError := size <= 64
	return blocks.MapReduce(d.mrMapRing(allowError), d.mrReduceRing(allowError), input)
}

func (d *decoder) parallelMap() blocks.Node {
	return blocks.ParallelMap(d.workerRing(),
		blocks.Numbers(blocks.Num(1), blocks.Num(float64(1+int(d.next())%40))),
		blocks.Num(float64(1+int(d.next())%4)))
}

// body decodes n statement slots into a C-slot script.
func (d *decoder) body(n int) blocks.Node {
	var bs []*blocks.Block
	for i := 0; i < n; i++ {
		bs = append(bs, d.stmt()...)
	}
	return blocks.ScriptNode{Script: blocks.NewScript(bs...)}
}

// loopTrip bounds a decoded loop's trip count: nesting multiplies work,
// so deep nests get clamped hard.
func (d *decoder) loopTrip(max int) float64 {
	n := 1 + int(d.next())%max
	if d.loops >= 2 && n > 2 {
		n = 2
	}
	return float64(n)
}

// stmt decodes one statement slot — possibly a short macro of several
// blocks (the bounded-until shape needs its counter initialized).
func (d *decoder) stmt() []*blocks.Block {
	d.nodes++
	if d.nodes > nodeBudget {
		return []*blocks.Block{blocks.SetVar(d.scalar(), blocks.Num(0))}
	}
	one := func(b *blocks.Block) []*blocks.Block { return []*blocks.Block{b} }
	deepLoops := d.loops >= 3
	switch c := d.next() % 16; {
	case c == 0:
		return one(blocks.SetVar(d.scalar(), d.expr(2)))
	case c == 1:
		return one(blocks.ChangeVar(d.scalar(), d.expr(2)))
	case c == 2:
		return one(blocks.If(d.expr(2), d.body(1+int(d.next())%2)))
	case c == 3:
		return one(blocks.IfElse(d.expr(1), d.body(1), d.body(1)))
	case c == 4 && !deepLoops:
		d.loops++
		b := blocks.Repeat(blocks.Num(d.loopTrip(5)), d.body(1+int(d.next())%2))
		d.loops--
		return one(b)
	case c == 5 && !deepLoops:
		d.loops++
		b := blocks.For(d.scalar(), blocks.Num(1), blocks.Num(d.loopTrip(6)), d.body(1))
		d.loops--
		return one(b)
	case c == 6 && !deepLoops:
		d.loops++
		b := blocks.ForEach(d.scalar(), d.listSrc(1), d.body(1))
		d.loops--
		return one(b)
	case c == 7 && !deepLoops:
		// Bounded until: counter initialized just before, stepped down
		// every iteration, and nothing in the body may rewrite it — the
		// trailing Say splices the tree-walker into a lowered loop.
		v := d.scalar()
		start := d.loopTrip(5)
		step := float64(1 + int(d.next())%3)
		return []*blocks.Block{
			blocks.SetVar(v, blocks.Num(start)),
			blocks.Until(blocks.LessThan(blocks.Var(v), blocks.Num(0)),
				blocks.Body(
					blocks.ChangeVar(v, blocks.Num(-step)),
					blocks.Say(blocks.Var(v)))),
		}
	case c == 8:
		return one(blocks.Warp(d.body(1 + int(d.next())%2)))
	case c == 9:
		return one(blocks.Forward(blocks.Num(float64(int8(d.next())))))
	case c == 10:
		return one(blocks.TurnRight(blocks.Num(float64(int8(d.next())))))
	case c == 11:
		return one(blocks.GotoXY(blocks.Num(float64(int8(d.next()))), blocks.Num(float64(int8(d.next())))))
	case c == 12:
		return one(blocks.Say(d.expr(2)))
	case c == 13:
		switch d.next() % 4 {
		case 0:
			return one(blocks.AddToList(d.expr(1), blocks.Var(listVar)))
		case 1:
			return one(blocks.DeleteFromList(d.expr(1), blocks.Var(listVar)))
		case 2:
			return one(blocks.InsertInList(d.expr(1), d.num(9), blocks.Var(listVar)))
		default:
			return one(blocks.ReplaceInList(d.num(9), blocks.Var(listVar), d.expr(1)))
		}
	case c == 14:
		return one(blocks.SetVar(listVar, d.listSrc(2)))
	default:
		return one(blocks.SetVar(d.scalar(), d.expr(2)))
	}
}

// Script decodes a genome: declared and initialized variables, a bounded
// run of statements, and a final result that is set, said (so the serving
// tier — which reports no value — still observes it in the trace and the
// stage snapshot), and reported.
func Script(g Genome) *blocks.Script {
	d := &decoder{data: g}
	bs := []*blocks.Block{
		blocks.DeclareLocal("a", "b", "c", listVar, outVar),
		blocks.SetVar("a", blocks.Num(1)),
		blocks.SetVar("b", blocks.Num(2)),
		blocks.SetVar("c", blocks.Txt("x")),
		blocks.SetVar(listVar, blocks.Numbers(blocks.Num(1), blocks.Num(5))),
	}
	for n := int(d.next()) % 6; n > 0; n-- {
		bs = append(bs, d.stmt()...)
	}
	bs = append(bs,
		blocks.SetVar(outVar, d.expr(3)),
		blocks.Say(blocks.Var(outVar)),
		blocks.Report(blocks.Var(outVar)))
	return blocks.NewScript(bs...)
}

// SpriteName is the sprite every wrapped project runs as — the same name
// the scratch machine uses, so stage snapshots and trace lines align
// across the direct and serving tiers.
const SpriteName = "__main__"

// Project wraps the decoded script as a runnable one-sprite project (the
// serving tier's input), positioned at the scratch machine's origin.
func Project(g Genome) *blocks.Project { return WrapScript(Script(g)) }

// Random draws a fresh genome of n bytes.
func Random(rnd *rand.Rand, n int) Genome {
	g := make(Genome, n)
	for i := range g {
		g[i] = byte(rnd.Intn(256))
	}
	return g
}

// Mutate returns an edited copy: a few point writes, an insertion, a
// deletion, or a duplicated span.
func Mutate(rnd *rand.Rand, g Genome) Genome {
	out := append(Genome(nil), g...)
	for edits := 1 + rnd.Intn(3); edits > 0; edits-- {
		if len(out) == 0 {
			out = append(out, byte(rnd.Intn(256)))
			continue
		}
		switch rnd.Intn(4) {
		case 0: // point write
			out[rnd.Intn(len(out))] = byte(rnd.Intn(256))
		case 1: // insertion
			i := rnd.Intn(len(out) + 1)
			out = append(out[:i], append(Genome{byte(rnd.Intn(256))}, out[i:]...)...)
		case 2: // deletion
			i := rnd.Intn(len(out))
			out = append(out[:i], out[i+1:]...)
		default: // duplicate a span onto the tail
			i := rnd.Intn(len(out))
			j := i + 1 + rnd.Intn(len(out)-i)
			out = append(out, out[i:j]...)
		}
	}
	if len(out) > 256 {
		out = out[:256]
	}
	return out
}

// Crossover splices a prefix of a onto a suffix of b.
func Crossover(rnd *rand.Rand, a, b Genome) Genome {
	ca, cb := 0, 0
	if len(a) > 0 {
		ca = rnd.Intn(len(a) + 1)
	}
	if len(b) > 0 {
		cb = rnd.Intn(len(b) + 1)
	}
	out := append(Genome(nil), a[:ca]...)
	out = append(out, b[cb:]...)
	if len(out) > 256 {
		out = out[:256]
	}
	return out
}

// Seeds are fixed starting genomes: a spread of byte textures that decode
// to structurally different programs, so generation zero already covers
// loops, hofs, splices, and the mapReduce family.
func Seeds() []Genome {
	return []Genome{
		{},
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12},
		{5, 4, 4, 4, 7, 7, 8, 9, 13, 13, 2, 2, 255, 128, 64, 32},
		Genome("the quick fox jumped over the lazy dog"),
		{3, 19, 5, 19, 4, 19, 3, 19, 2, 19, 1, 19, 0, 19},
		{0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0xff, 0x00},
		{2, 7, 1, 7, 2, 7, 3, 7, 4, 12, 9, 10, 11, 12, 13, 14, 15, 0},
	}
}
