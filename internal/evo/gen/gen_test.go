package gen

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/blocks"
	_ "repro/internal/core"
	"repro/internal/interp"
	"repro/internal/parse"
)

func runScript(t *testing.T, g Genome) {
	t.Helper()
	m := interp.NewMachine(blocks.NewProject("gen"), nil)
	_, _ = m.RunScript(Script(g))
}

// TestDecodeDeterministic: the same genome must decode to the same
// script, rendered and counted identically — resume, corpus replay, and
// shrinking all depend on it.
func TestDecodeDeterministic(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		g := Random(rnd, 1+rnd.Intn(96))
		a, erra := parse.PrintProject(Project(g))
		b, errb := parse.PrintProject(Project(g))
		if (erra == nil) != (errb == nil) || a != b {
			t.Fatalf("genome %x decoded differently across calls", g)
		}
		if CountBlocks(Script(g)) != CountBlocks(Script(g)) {
			t.Fatalf("genome %x counted differently across calls", g)
		}
	}
}

// TestEveryGenomePrintsAndParses: the serving tier feeds programs through
// the text syntax, so every genome — random, mutated, crossed, truncated,
// or empty — must decode to a printable, re-parseable project.
func TestEveryGenomePrintsAndParses(t *testing.T) {
	rnd := rand.New(rand.NewSource(22))
	check := func(g Genome) {
		t.Helper()
		src, err := parse.PrintProject(Project(g))
		if err != nil {
			t.Fatalf("genome %x decodes to unprintable project: %v", g, err)
		}
		if _, err := parse.Project(src); err != nil {
			t.Fatalf("genome %x prints unparseable text: %v\n%s", g, err, src)
		}
	}
	check(nil)
	check(Genome{})
	check(Genome{0})
	for _, g := range Seeds() {
		check(g)
	}
	for i := 0; i < 300; i++ {
		g := Random(rnd, rnd.Intn(128))
		check(g)
		check(Mutate(rnd, g))
		check(Crossover(rnd, g, Random(rnd, rnd.Intn(64))))
		if len(g) > 2 {
			check(g[:len(g)/2])
		}
	}
}

// TestDecodedScriptsTerminate: the grammar must be unable to express an
// unbounded loop; a wide random sweep through the tree-walker must finish
// fast. (Hostile() scripts are built outside the genome grammar on
// purpose.)
func TestDecodedScriptsTerminate(t *testing.T) {
	rnd := rand.New(rand.NewSource(33))
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; i < 150; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("termination sweep overran its deadline at genome %d", i)
		}
		g := Random(rnd, 1+rnd.Intn(128))
		runScript(t, g)
	}
}

// TestGenomeOperatorsBounded: mutation and crossover must respect the
// genome size cap so populations can't balloon.
func TestGenomeOperatorsBounded(t *testing.T) {
	rnd := rand.New(rand.NewSource(44))
	big := Random(rnd, 256)
	for i := 0; i < 100; i++ {
		if m := Mutate(rnd, big); len(m) > 256 {
			t.Fatalf("mutate grew genome to %d bytes", len(m))
		}
		if c := Crossover(rnd, big, big); len(c) > 256 {
			t.Fatalf("crossover grew genome to %d bytes", len(c))
		}
	}
}

// TestPinnedScriptsPrint: every pinned parity edge must survive the
// print/parse round trip — they run through the serving tier too.
func TestPinnedScriptsPrint(t *testing.T) {
	for _, p := range PinnedScripts() {
		src, err := parse.PrintProject(WrapScript(p.Script))
		if err != nil {
			t.Fatalf("pinned %s is unprintable: %v", p.Name, err)
		}
		if _, err := parse.Project(src); err != nil {
			t.Fatalf("pinned %s prints unparseable text: %v", p.Name, err)
		}
	}
}

// TestCountBlocks pins the size measure on a known shape: the shrink
// acceptance bound (<=10 blocks) is meaningless if counting drifts.
func TestCountBlocks(t *testing.T) {
	s := Script(Genome{0})
	n := CountBlocks(s)
	if n < 8 || n > 12 {
		t.Fatalf("minimal genome should decode to a ~10-block script, got %d", n)
	}
	if CountBlocks(nil) != 0 {
		t.Fatal("nil script must count as 0 blocks")
	}
}
