package gen

import "repro/internal/blocks"

// Pinned is a named, hand-built script the stress engine evaluates ahead
// of every evolved population — edge cases that byte genomes reach only
// by luck are pinned here so every soak (and the differential test suite)
// covers them unconditionally.
type Pinned struct {
	Name   string
	Script *blocks.Script
}

func sumRing() blocks.Node {
	return blocks.RingOf(blocks.Sum(blocks.Empty(), blocks.Empty()))
}

func countMapRing() blocks.Node {
	return blocks.RingOf(blocks.ListOf(
		blocks.Modulus(blocks.Empty(), blocks.Num(3)), blocks.Num(1)))
}

func sumReduceRing() blocks.Node {
	return blocks.RingOf(blocks.Combine(blocks.Empty(), sumRing()))
}

func rep(b *blocks.Block) *blocks.Script {
	return blocks.NewScript(blocks.Report(b))
}

// PinnedScripts are the mapReduce parity edges: the empty input, the
// single item, the single shared key (through both the sync and async
// engine paths), and both sides of the sync/async threshold at 64.
func PinnedScripts() []Pinned {
	scalarRing := blocks.RingOf(blocks.Product(blocks.Empty(), blocks.Num(2)))
	avgReduce := blocks.RingOf(blocks.Quotient(
		blocks.Combine(blocks.Empty(), sumRing()),
		blocks.LengthOf(blocks.Empty())))
	return []Pinned{
		{"mapreduce-empty-input", rep(blocks.MapReduce(
			countMapRing(), sumReduceRing(), blocks.ListOf()))},
		{"mapreduce-single-item", rep(blocks.MapReduce(
			countMapRing(), sumReduceRing(), blocks.ListOf(blocks.Num(7))))},
		{"mapreduce-single-key-sync", rep(blocks.MapReduce(
			scalarRing, avgReduce,
			blocks.ListOf(blocks.Num(32), blocks.Num(212), blocks.Num(122))))},
		{"mapreduce-single-key-async", rep(blocks.MapReduce(
			blocks.RingOf(blocks.Product(blocks.Empty(), blocks.Num(2))),
			blocks.RingOf(blocks.Combine(blocks.Empty(), sumRing())),
			blocks.Numbers(blocks.Num(1), blocks.Num(100))))},
		{"mapreduce-threshold-64", rep(blocks.MapReduce(
			countMapRing(), sumReduceRing(),
			blocks.Numbers(blocks.Num(1), blocks.Num(64))))},
		{"mapreduce-threshold-65", rep(blocks.MapReduce(
			countMapRing(), sumReduceRing(),
			blocks.Numbers(blocks.Num(1), blocks.Num(65))))},
		{"mapreduce-empty-key-diversity", rep(blocks.MapReduce(
			blocks.RingOf(blocks.ListOf(blocks.Empty(), blocks.Num(1))),
			sumReduceRing(),
			blocks.Split(blocks.Txt(""), blocks.Txt(" "))))},
		// Columnar-list edges (PR 10): numbers-from and split now build
		// column-backed lists, and a non-conforming mutation upgrades them
		// to boxed mid-script. Pin both the upgrade and the
		// mutate-during-iteration shape so every soak covers them.
		{"columnar-upgrade-mutation", blocks.NewScript(
			blocks.DeclareLocal("l"),
			blocks.SetVar("l", blocks.Numbers(blocks.Num(1), blocks.Num(40))),
			blocks.ReplaceInList(blocks.Num(7), blocks.Var("l"), blocks.Txt("seven")),
			blocks.AddToList(blocks.Num(41), blocks.Var("l")),
			blocks.InsertInList(blocks.Txt("head"), blocks.Num(1), blocks.Var("l")),
			blocks.DeleteFromList(blocks.Num(2), blocks.Var("l")),
			blocks.Report(blocks.Join(
				blocks.LengthOf(blocks.Var("l")),
				blocks.ItemOf(blocks.Num(7), blocks.Var("l")),
				blocks.ListContains(blocks.Var("l"), blocks.Txt("seven")))))},
		{"columnar-mutate-mid-iteration", blocks.NewScript(
			blocks.DeclareLocal("l"),
			blocks.DeclareLocal("s"),
			blocks.SetVar("l", blocks.Numbers(blocks.Num(1), blocks.Num(5))),
			blocks.SetVar("s", blocks.Txt("")),
			blocks.ForEach("x", blocks.Var("l"), blocks.Body(
				blocks.If(blocks.Equals(blocks.Var("x"), blocks.Num(2)),
					blocks.Body(blocks.ReplaceInList(
						blocks.Num(4), blocks.Var("l"), blocks.Txt("four")))),
				blocks.SetVar("s", blocks.Join(
					blocks.Var("s"), blocks.Var("x"), blocks.Txt("."))))),
			blocks.Report(blocks.Var("s")))},
		{"columnar-hof-chain", rep(blocks.Combine(
			blocks.Reporter(blocks.Keep(
				blocks.RingOf(blocks.GreaterThan(blocks.Empty(), blocks.Num(10))),
				blocks.Reporter(blocks.Map(
					blocks.RingOf(blocks.Product(blocks.Empty(), blocks.Empty())),
					blocks.Numbers(blocks.Num(1), blocks.Num(40)))))),
			sumRing()))},
	}
}

// Hostile are deliberately non-terminating scripts for the governance
// tests only: they must never enter the differential population (no tier
// comparison can finish them), but a governed session must kill them by
// deadline, step budget, or explicit Cancel.
func Hostile() []Pinned {
	forever := func(bs ...*blocks.Block) *blocks.Block {
		return blocks.NewBlock("doForever", blocks.Body(bs...))
	}
	return []Pinned{
		{"forever-count", blocks.NewScript(
			blocks.DeclareLocal("x"),
			blocks.SetVar("x", blocks.Num(0)),
			forever(blocks.ChangeVar("x", blocks.Num(1))))},
		{"warp-forever", blocks.NewScript(
			blocks.DeclareLocal("x"),
			blocks.SetVar("x", blocks.Num(0)),
			blocks.Warp(blocks.Body(forever(blocks.ChangeVar("x", blocks.Num(1))))))},
		{"until-never", blocks.NewScript(
			blocks.DeclareLocal("x"),
			blocks.SetVar("x", blocks.Num(1)),
			blocks.Until(blocks.LessThan(blocks.Num(1), blocks.Num(0)),
				blocks.Body(blocks.ChangeVar("x", blocks.Num(1)))))},
	}
}

// WrapScript wraps any script as a runnable one-sprite project, the
// serving tier's input shape; the sprite matches the scratch machine's
// name and origin so snapshots align across tiers.
func WrapScript(s *blocks.Script) *blocks.Project {
	p := blocks.NewProject("evo")
	sp := blocks.NewSprite(SpriteName)
	sp.AddScript(blocks.HatGreenFlag, "", s)
	p.AddSprite(sp)
	return p
}

// CountBlocks counts every block in the script, including reporter
// blocks nested in inputs, ring bodies, and C-slot scripts — the size
// measure shrunk reproducers are reported in.
func CountBlocks(s *blocks.Script) int {
	if s == nil {
		return 0
	}
	n := 0
	for _, b := range s.Blocks {
		n += countBlock(b)
	}
	return n
}

func countBlock(b *blocks.Block) int {
	if b == nil {
		return 0
	}
	n := 1
	for _, in := range b.Inputs {
		n += countNode(in)
	}
	return n
}

func countNode(in blocks.Node) int {
	switch x := in.(type) {
	case *blocks.Block:
		return countBlock(x)
	case blocks.ScriptNode:
		return CountBlocks(x.Script)
	case blocks.RingNode:
		if sc, ok := x.Body.(*blocks.Script); ok {
			return CountBlocks(sc)
		}
		return countNode(x.Body)
	}
	return 0
}
