package evo

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/evo/gen"
)

// writeCorpus persists one shrunk divergence under its content address:
// <dir>/<sha256[:16]>.bytes holds the raw shrunk genome (the exact shape
// FuzzLowerProject consumes as a seed) and a sibling .txt holds the
// human-readable detail. Re-finding the same reproducer is a no-op.
func writeCorpus(dir string, d Divergence) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	sum := sha256.Sum256(d.Shrunk)
	addr := hex.EncodeToString(sum[:8])
	if err := os.WriteFile(filepath.Join(dir, addr+".bytes"), d.Shrunk, 0o644); err != nil {
		return "", err
	}
	note := fmt.Sprintf("blocks: %d\n\n%s\n", d.Blocks, d.Detail)
	if err := os.WriteFile(filepath.Join(dir, addr+".txt"), []byte(note), 0o644); err != nil {
		return "", err
	}
	return addr, nil
}

// CorpusGenomes loads every .bytes genome from a corpus directory in
// stable (name-sorted) order — the fuzzers reseed from this so each
// divergence the engine ever found stays a permanent regression seed. A
// missing directory is an empty corpus, not an error.
func CorpusGenomes(dir string) ([]gen.Genome, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".bytes" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	gs := make([]gen.Genome, 0, len(names))
	for _, name := range names {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		gs = append(gs, gen.Genome(b))
	}
	return gs, nil
}
