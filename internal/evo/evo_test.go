package evo

import (
	"strings"
	"testing"

	"repro/internal/evo/gen"
	"repro/internal/evo/oracle"
	"repro/internal/parse"
	"repro/internal/progcache"
	"repro/internal/vm"
)

// TestEngineCleanRun soaks a small deterministic population through all
// four tiers: on a healthy engine every program must agree everywhere,
// including the cache-replay serving run and the concurrent session
// workers.
func TestEngineCleanRun(t *testing.T) {
	stats, divs := Run(Config{
		Seed:        1,
		Pop:         12,
		Generations: 3,
		Sessions:    2,
		Log:         t.Logf,
	})
	for _, d := range divs {
		t.Errorf("divergence (%s, %d blocks): %s", d.Name, d.Blocks, d.Detail)
	}
	if stats.Programs < 36 {
		t.Fatalf("expected >=36 programs through the oracle, got %d", stats.Programs)
	}
	if stats.Generations != 3 {
		t.Fatalf("expected 3 generations, got %d", stats.Generations)
	}
	t.Logf("stats: %+v", stats)
}

// TestEnginePinnedOnly runs just the pinned mapReduce parity edges (the
// empty input, single item, single key, and both threshold sides) through
// the full four-tier oracle.
func TestEnginePinnedOnly(t *testing.T) {
	e := newEngine(Config{Seed: 7}.withDefaults())
	defer e.close()
	for _, p := range gen.PinnedScripts() {
		if _, d := e.evalScript(p.Script); d != "" {
			t.Errorf("pinned %s diverged: %s", p.Name, d)
		}
	}
}

// TestEngineCatchesInjectedVMBug is the acceptance demo: an intentionally
// wrong bytecode op (every lowered Difference silently becomes a Sum) must
// be caught by the differential oracle and shrunk to a minimal reproducer
// of at most 10 blocks.
func TestEngineCatchesInjectedVMBug(t *testing.T) {
	mut, ok := vm.SwapBinaryOps("reportDifference", "reportSum")
	if !ok {
		t.Fatal("SwapBinaryOps refused the difference/sum pair")
	}
	// Cached programs were lowered before the mutator existed; both the
	// vm memo and the shared script cache must restart from scratch, and
	// again after the mutator is removed.
	reset := func() {
		vm.ResetMemo()
		progcache.DefaultScripts.Reset()
	}
	vm.SetProgramMutator(mut)
	reset()
	defer func() {
		vm.SetProgramMutator(nil)
		reset()
	}()

	stats, divs := Run(Config{
		Seed:        2,
		Pop:         16,
		Generations: 4,
		Log:         t.Logf,
	})
	if len(divs) == 0 {
		t.Fatalf("injected vm bug survived %d programs undetected", stats.Programs)
	}
	found := false
	for _, d := range divs {
		if d.Name != "" || d.Shrunk == nil {
			continue // pinned scripts have no genome to shrink
		}
		if _, still := e2eDiverges(t, d.Shrunk); !still {
			t.Errorf("shrunk genome no longer diverges: %x", d.Shrunk)
			continue
		}
		t.Logf("shrunk reproducer: %d blocks, %d genome bytes: %s",
			d.Blocks, len(d.Shrunk), firstLine(d.Detail))
		if d.Blocks <= 10 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no divergence shrank to <=10 blocks (got %d divergences)", len(divs))
	}
}

func e2eDiverges(t *testing.T, g gen.Genome) (string, bool) {
	t.Helper()
	tree, _ := oracle.Run(gen.Script(g), false)
	bc, _ := oracle.Run(gen.Script(g), true)
	d := oracle.Diff("tree", tree, "vm", bc)
	return d, d != ""
}

// TestSessionOutcomeStatusMapping pins the serving-tier status contract
// the oracle relies on: only a non-ok status carries an error string.
func TestSessionOutcomeStatusMapping(t *testing.T) {
	e := newEngine(Config{Seed: 3}.withDefaults())
	defer e.close()
	src, err := parse.PrintProject(gen.Project(gen.Seeds()[0]))
	if err != nil {
		t.Fatal(err)
	}
	code, resp := e.post(src)
	if code != 200 {
		t.Fatalf("seed genome rejected by serving tier: HTTP %d %q", code, resp.Error)
	}
	out := sessionOutcome(oracle.Outcome{Value: "x"}, resp)
	if out.Err != "<nil>" {
		t.Fatalf("ok status must map to <nil> error, got %q", out.Err)
	}
}

// TestCorpusRoundTrip writes a divergence and reads it back by address.
func TestCorpusRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := Divergence{Shrunk: gen.Genome{1, 2, 3}, Blocks: 7, Detail: "value mismatch"}
	addr, err := writeCorpus(dir, d)
	if err != nil {
		t.Fatal(err)
	}
	if addr == "" {
		t.Fatal("empty corpus address")
	}
	gs, err := CorpusGenomes(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 1 || string(gs[0]) != string(d.Shrunk) {
		t.Fatalf("corpus round trip mismatch: %v", gs)
	}
	if got := strings.TrimSpace(addr); len(got) != 16 {
		t.Fatalf("address should be 16 hex chars, got %q", addr)
	}
}

// TestCorpusMissingDir is the empty-corpus contract the fuzzers rely on.
func TestCorpusMissingDir(t *testing.T) {
	gs, err := CorpusGenomes(t.TempDir() + "/nope")
	if err != nil || gs != nil {
		t.Fatalf("missing dir must read as empty corpus, got %v, %v", gs, err)
	}
}
