package evo

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/evo/gen"
	"repro/internal/obs"
	"repro/internal/parse"
	"repro/internal/progcache"
)

// The generator is also a cache-churn machine: every genome decodes to a
// distinct program body, so a stream of genomes is exactly the workload
// the progcache tiers were built for — many one-shot keys competing with
// a few hot ones under a byte budget. These tests drive both tiers with
// generator output and pin the eviction and singleflight behavior via
// Stats (always-on) and the engine_progcache_* obs series (when
// instrumentation is on).

// churnSources decodes n distinct generated projects to source text.
func churnSources(t *testing.T, seed int64, n int) []string {
	t.Helper()
	rnd := rand.New(rand.NewSource(seed))
	seen := map[string]bool{}
	var out []string
	for tries := 0; len(out) < n && tries < n*20; tries++ {
		src, err := parse.PrintProject(gen.Project(gen.Random(rnd, 24+rnd.Intn(40))))
		if err != nil || seen[src] {
			continue
		}
		seen[src] = true
		out = append(out, src)
	}
	if len(out) < n {
		t.Fatalf("only %d distinct generated sources", len(out))
	}
	return out
}

// TestProgcacheProjectChurn drives the Tier A (project) cache with
// generated projects under a budget far smaller than the working set:
// repeats must hit while resident, the budget must force evictions, and
// residency must stay within budget throughout. The cache is built the
// way server.New builds its own (same tier, same budget knob), loaded
// with real parsed projects.
func TestProgcacheProjectChurn(t *testing.T) {
	prevObs := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prevObs)
	evict0 := obs.ProgcacheEvictions.With("project").Value()
	miss0 := obs.ProgcacheMisses.With("project").Value()

	cache := progcache.NewProjects(16 << 10) // a handful of parsed projects at most
	load := func(src string) func() *progcache.ProjectEntry {
		return func() *progcache.ProjectEntry {
			proj, err := parse.Project(src)
			if err != nil {
				return &progcache.ProjectEntry{ParseErr: err.Error()}
			}
			return &progcache.ProjectEntry{Project: proj}
		}
	}

	srcs := churnSources(t, 11, 48)
	for _, src := range srcs {
		// Back-to-back same-source lookups: the second must be served
		// from cache while the entry is freshest-resident.
		e1, o1 := cache.Get(src, "sexpr", load(src))
		e2, o2 := cache.Get(src, "sexpr", load(src))
		if e1 == nil || e1.ParseErr != "" {
			t.Fatalf("generated project failed to parse: %s", e1.ParseErr)
		}
		if o1 != progcache.OutcomeMiss {
			t.Fatalf("first lookup of a distinct source was not a miss (outcome %v)", o1)
		}
		if o2 != progcache.OutcomeHit {
			t.Fatalf("immediate repeat was not a cache hit (outcome %v)", o2)
		}
		if e1 != e2 {
			t.Fatalf("repeat returned a different parsed entry")
		}
	}
	st := cache.Stats()
	if st.Misses != int64(len(srcs)) {
		t.Errorf("Misses = %d, want %d (one per distinct source)", st.Misses, len(srcs))
	}
	if st.Hits < int64(len(srcs)) {
		t.Errorf("Hits = %d, want >= %d (one per repeat)", st.Hits, len(srcs))
	}
	if st.Evictions == 0 {
		t.Errorf("Evictions = 0, want > 0: %d distinct projects must not fit %d bytes (resident %d)",
			len(srcs), 16<<10, st.Bytes)
	}
	if st.Bytes > 16<<10 {
		t.Errorf("Bytes = %d, above the %d budget", st.Bytes, 16<<10)
	}
	// The obs series mirror the always-on stats while instrumentation is
	// enabled, tier-labelled "project".
	if d := obs.ProgcacheMisses.With("project").Value() - miss0; d < int64(len(srcs)) {
		t.Errorf("engine_progcache_misses_total{tier=project} moved %d, want >= %d", d, len(srcs))
	}
	if d := obs.ProgcacheEvictions.With("project").Value() - evict0; d <= 0 {
		t.Errorf("engine_progcache_evictions_total{tier=project} did not move")
	}
}

// TestProgcacheScriptChurn drives the Tier B (script lowering) cache the
// same way: distinct generated scripts under a small budget evict, hot
// repeats hit.
func TestProgcacheScriptChurn(t *testing.T) {
	prevObs := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prevObs)
	evict0 := obs.ProgcacheEvictions.With("script").Value()

	sc := progcache.NewScripts(8 << 10)
	rnd := rand.New(rand.NewSource(23))
	distinct := 0
	for i := 0; i < 64; i++ {
		script := gen.Script(gen.Random(rnd, 24+rnd.Intn(40)))
		before := sc.Stats()
		p1 := sc.Lower(script)
		mid := sc.Stats()
		p2 := sc.Lower(script)
		after := sc.Stats()
		if p1 == nil || p2 == nil {
			t.Fatalf("lowering returned nil program")
		}
		if mid.Misses > before.Misses {
			distinct++
			// A fresh miss means the program is now resident and most
			// recently used: the immediate repeat must hit and share the
			// exact cached program.
			if after.Hits != mid.Hits+1 {
				t.Fatalf("repeat lowering of a fresh script did not hit (hits %d -> %d)", mid.Hits, after.Hits)
			}
			if p1 != p2 {
				t.Fatalf("repeat lowering returned a different cached program")
			}
		}
	}
	st := sc.Stats()
	if distinct < 32 {
		t.Fatalf("generator churn produced only %d distinct scripts", distinct)
	}
	if st.Evictions == 0 {
		t.Errorf("Evictions = 0, want > 0 under a %d-byte budget with %d distinct scripts (resident %d)",
			8<<10, distinct, st.Bytes)
	}
	if st.Bytes > 8<<10 {
		t.Errorf("Bytes = %d, above the %d budget", st.Bytes, 8<<10)
	}
	if d := obs.ProgcacheEvictions.With("script").Value() - evict0; d <= 0 {
		t.Errorf("engine_progcache_evictions_total{tier=script} did not move")
	}
}

// TestProgcacheSingleflight pins the singleflight front deterministically:
// with one load blocked in flight, every concurrent caller for the same
// key must wait for the leader and share its result — exactly one miss,
// all others shared, and the load body runs once.
func TestProgcacheSingleflight(t *testing.T) {
	prevObs := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prevObs)
	shared0 := obs.ProgcacheSharedLoads.With("project").Value()

	p := progcache.NewProjects(1 << 20)
	src, err := parse.PrintProject(gen.Project(gen.Seeds()[1]))
	if err != nil {
		t.Fatal(err)
	}

	const followers = 7
	release := make(chan struct{})
	loads := 0
	ent := &progcache.ProjectEntry{}
	results := make(chan *progcache.ProjectEntry, followers+1)
	outcomes := make(chan progcache.Outcome, followers+1)
	for i := 0; i < followers+1; i++ {
		go func() {
			e, o := p.Get(src, "sexpr", func() *progcache.ProjectEntry {
				loads++ // only the leader runs this; the release gate makes the write ordered
				<-release
				return ent
			})
			results <- e
			outcomes <- o
		}()
	}
	// Followers bump SharedLoads before blocking on the leader's flight,
	// so stats tell us when every caller is accounted for.
	deadline := time.After(10 * time.Second)
	for {
		st := p.Stats()
		if st.Misses == 1 && st.SharedLoads == followers {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("stall waiting for callers: %+v", p.Stats())
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	var miss, sharedOrHit int
	for i := 0; i < followers+1; i++ {
		if e := <-results; e != ent {
			t.Fatalf("caller %d got a different entry", i)
		}
		switch <-outcomes {
		case progcache.OutcomeMiss:
			miss++
		default:
			sharedOrHit++
		}
	}
	if loads != 1 {
		t.Errorf("load ran %d times, want exactly 1", loads)
	}
	if miss != 1 || sharedOrHit != followers {
		t.Errorf("outcomes: %d miss / %d shared, want 1 / %d", miss, sharedOrHit, followers)
	}
	if d := obs.ProgcacheSharedLoads.With("project").Value() - shared0; d != followers {
		t.Errorf("engine_progcache_shared_loads_total{tier=project} moved %d, want %d", d, followers)
	}
}
