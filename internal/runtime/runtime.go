// Package runtime is the execution-service layer over the interpreter: it
// runs untrusted block projects as governed sessions. The paper's pitch is
// that beginners hand their programs to a runtime that executes them safely
// on real parallel hardware; this package is the "safely" part. Every
// session runs under hard resource governance — a wall-clock deadline, a
// cumulative evaluator-step budget, a scheduler-round cap, and a bounded
// stage-output log — and a killed session's in-flight worker-pool jobs are
// canceled with it, so one `forever` loop (or one runaway parallelMap)
// cannot wedge a shared daemon.
//
// The Manager adds admission control on top: at most MaxConcurrent
// sessions execute at once, up to MaxQueue more wait in a bounded queue,
// and everything beyond that is rejected with ErrOverloaded — the 429 of
// the HTTP layer. All admitted sessions share the process-wide
// workers.SharedPool, so the chunked pool stays the single parallelism
// substrate no matter how many tenants are running.
package runtime

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blocks"
	_ "repro/internal/core" // register the paper's parallel blocks
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/vclock"
)

// Limits is the per-session resource envelope. Zero fields inherit the
// manager's defaults and are clamped to its ceiling, so a client can ask
// for less than the house rules but never for more.
type Limits struct {
	// Timeout is the wall-clock deadline for the whole run (0 = default).
	Timeout time.Duration
	// MaxSteps caps cumulative evaluator ops across all of the session's
	// processes (0 = default).
	MaxSteps int64
	// MaxRounds caps scheduler rounds (0 = default).
	MaxRounds int
	// MaxTraceLines bounds the stage output log (0 = default).
	MaxTraceLines int
}

// withDefaults fills zero fields from d.
func (l Limits) withDefaults(d Limits) Limits {
	if l.Timeout <= 0 {
		l.Timeout = d.Timeout
	}
	if l.MaxSteps <= 0 {
		l.MaxSteps = d.MaxSteps
	}
	if l.MaxRounds <= 0 {
		l.MaxRounds = d.MaxRounds
	}
	if l.MaxTraceLines <= 0 {
		l.MaxTraceLines = d.MaxTraceLines
	}
	return l
}

// clamp caps each field at the ceiling (ceiling zeros mean uncapped).
func (l Limits) clamp(c Limits) Limits {
	if c.Timeout > 0 && (l.Timeout <= 0 || l.Timeout > c.Timeout) {
		l.Timeout = c.Timeout
	}
	if c.MaxSteps > 0 && (l.MaxSteps <= 0 || l.MaxSteps > c.MaxSteps) {
		l.MaxSteps = c.MaxSteps
	}
	if c.MaxRounds > 0 && (l.MaxRounds <= 0 || l.MaxRounds > c.MaxRounds) {
		l.MaxRounds = c.MaxRounds
	}
	if c.MaxTraceLines > 0 && (l.MaxTraceLines <= 0 || l.MaxTraceLines > c.MaxTraceLines) {
		l.MaxTraceLines = c.MaxTraceLines
	}
	return l
}

// Status classifies how a session ended.
type Status string

// The session outcomes.
const (
	// StatusOK: every process ran to completion.
	StatusOK Status = "ok"
	// StatusTimeout: the wall-clock deadline killed the session.
	StatusTimeout Status = "timeout"
	// StatusSteps: the evaluator-step budget killed the session.
	StatusSteps Status = "step-budget"
	// StatusRounds: the scheduler-round cap killed the session.
	StatusRounds Status = "round-limit"
	// StatusCanceled: the session was canceled (client gone, Cancel call).
	StatusCanceled Status = "canceled"
	// StatusError: the program itself died (bad block, cap exceeded, ...).
	StatusError Status = "error"
	// StatusFault: a primitive panicked on the interpreter path. The
	// panic is recovered at the session boundary (the daemon stays up,
	// the session is cleanly finished), classified here, and surfaced as
	// a 500 by the HTTP layer — a runtime bug, not a program error.
	StatusFault Status = "fault"
)

// ErrFault wraps a recovered primitive panic so classify (and callers
// using errors.Is) can tell a fault from a program error.
var ErrFault = errors.New("session fault")

// Result is the structured outcome of a finished session.
type Result struct {
	Status Status `json:"status"`
	// Error carries the run error's message for non-ok statuses.
	Error string `json:"error,omitempty"`
	// Trace is the (bounded) stage output log; TraceDropped counts lines
	// the bound discarded.
	Trace        []string `json:"trace"`
	TraceDropped int      `json:"trace_dropped,omitempty"`
	// Stage is the final stage snapshot (sorted actor lines).
	Stage []string `json:"stage"`
	// Scripts is how many green-flag scripts the project started.
	Scripts   int   `json:"scripts"`
	Rounds    int64 `json:"rounds"`
	Steps     int64 `json:"steps"`
	Timesteps int64 `json:"timesteps"`
	// QueueMS and RunMS are wait-for-admission and execution durations.
	QueueMS int64 `json:"queue_ms"`
	RunMS   int64 `json:"run_ms"`
}

// State is a session's lifecycle position.
type State string

// The lifecycle states.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
)

// Session is one governed run of one project.
type Session struct {
	id      string
	traceID string
	done    chan struct{}
	cancel  atomic.Value // context.CancelFunc

	mu      sync.Mutex
	state   State
	machine *interp.Machine
	res     Result
}

// ID returns the session's identifier.
func (s *Session) ID() string { return s.id }

// TraceID returns the ID the session's spans are recorded under: the
// caller-supplied request ID when the run came through a fronting router
// (so spans correlate across the router→backend hop), the session ID
// otherwise.
func (s *Session) TraceID() string { return s.traceID }

// State reports the lifecycle position.
func (s *Session) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Done is closed when the session finishes.
func (s *Session) Done() <-chan struct{} { return s.done }

// Result returns the outcome; ok is false until the session is done.
func (s *Session) Result() (Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.res, s.state == StateDone
}

// TraceLines returns the stage output log so far — live for a running
// session (the stage trace is mutex-guarded), final afterwards.
func (s *Session) TraceLines() []string {
	s.mu.Lock()
	m := s.machine
	done := s.state == StateDone
	res := s.res
	s.mu.Unlock()
	if done {
		return res.Trace
	}
	if m != nil {
		return m.Stage.TraceLines()
	}
	return nil
}

// Cancel kills the session: its processes are stopped and their in-flight
// parallel jobs canceled. A no-op before the run starts or after it ends.
func (s *Session) Cancel() {
	if f, ok := s.cancel.Load().(context.CancelFunc); ok && f != nil {
		f()
	}
}

// ErrOverloaded is returned when admission control rejects a run: the
// concurrent-session limit is reached and the bounded wait queue is full
// (or the wait budget elapsed). HTTP callers map it to 429.
var ErrOverloaded = errors.New("execution service overloaded")

// Config parameterizes a Manager.
type Config struct {
	// MaxConcurrent bounds simultaneously executing sessions (default 4).
	MaxConcurrent int
	// MaxQueue bounds sessions waiting for a slot (default MaxConcurrent).
	MaxQueue int
	// QueueWait is the longest a session waits for a slot before being
	// rejected (default 5s).
	QueueWait time.Duration
	// Defaults fills unset request limits; Ceiling caps them.
	Defaults Limits
	Ceiling  Limits
	// KeepDone bounds the registry of finished sessions kept for
	// GET /v1/sessions (default 256).
	KeepDone int
}

// DefaultLimits is the house envelope applied when a Config leaves
// Defaults zero: generous enough for every paper demo, tight enough that a
// runaway session dies in seconds.
var DefaultLimits = Limits{
	Timeout:       10 * time.Second,
	MaxSteps:      50_000_000,
	MaxRounds:     5_000_000,
	MaxTraceLines: 10_000,
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = c.MaxConcurrent
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 5 * time.Second
	}
	if (c.Defaults == Limits{}) {
		c.Defaults = DefaultLimits
	}
	if c.KeepDone <= 0 {
		c.KeepDone = 256
	}
	return c
}

// Stats is a snapshot of the manager's counters, the backing for /metrics.
type Stats struct {
	Running  int
	Queued   int
	Admitted int64
	Rejected int64
	ByStatus map[Status]int64
}

// Manager admits, runs, and remembers sessions.
type Manager struct {
	cfg    Config
	slots  chan struct{}
	queued atomic.Int32

	admitted atomic.Int64
	rejected atomic.Int64

	mu       sync.Mutex
	sessions map[string]*Session
	doneIDs  []string // finished sessions in completion order, for eviction
	byStatus map[Status]int64
}

// NewManager builds a manager; zero Config fields get defaults.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	return &Manager{
		cfg:      cfg,
		slots:    make(chan struct{}, cfg.MaxConcurrent),
		sessions: map[string]*Session{},
		byStatus: map[Status]int64{},
	}
}

// Config returns the effective (defaulted) configuration.
func (mgr *Manager) Config() Config { return mgr.cfg }

// Session looks up a session by ID.
func (mgr *Manager) Session(id string) *Session {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	return mgr.sessions[id]
}

// Stats snapshots the counters.
func (mgr *Manager) Stats() Stats {
	mgr.mu.Lock()
	by := make(map[Status]int64, len(mgr.byStatus))
	for k, v := range mgr.byStatus {
		by[k] = v
	}
	mgr.mu.Unlock()
	return Stats{
		Running:  len(mgr.slots),
		Queued:   int(mgr.queued.Load()),
		Admitted: mgr.admitted.Load(),
		Rejected: mgr.rejected.Load(),
		ByStatus: by,
	}
}

// Drain waits until no session is running or queued, bounded by timeout.
// It reports whether the manager went idle in time. Draining does not
// reject new work by itself — the daemon stops routing traffic here first
// (the LB ejects on the draining /healthz) and then waits for the
// in-flight tail before exiting.
func (mgr *Manager) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		st := mgr.Stats()
		if st.Running == 0 && st.Queued == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("runtime: no entropy for session IDs: " + err.Error())
	}
	return "s-" + hex.EncodeToString(b[:])
}

// Run admits and executes one project as a governed session, synchronously
// on the caller's goroutine. On success the returned session is done and
// holds a Result (which may still describe a timeout or budget kill — those
// are outcomes, not Run errors). Run errors mean the session never ran:
// ErrOverloaded from admission control, or the context's error if the
// caller gave up while queued.
func (mgr *Manager) Run(ctx context.Context, project *blocks.Project, lim Limits) (*Session, error) {
	return mgr.RunTraced(ctx, project, lim, "")
}

// RunTraced is Run with an explicit trace ID: a non-empty requestID (the
// router's X-Request-ID) becomes the ID every span of this session is
// recorded under, so one distributed request correlates across the
// router→backend hop. Empty requestID keeps the session ID as the trace
// ID — standalone behavior is unchanged.
func (mgr *Manager) RunTraced(ctx context.Context, project *blocks.Project, lim Limits, requestID string) (*Session, error) {
	lim = lim.withDefaults(mgr.cfg.Defaults).clamp(mgr.cfg.Ceiling)

	// Admission: bounded queue, bounded wait.
	if int(mgr.queued.Add(1)) > mgr.cfg.MaxQueue {
		mgr.queued.Add(-1)
		mgr.rejected.Add(1)
		return nil, fmt.Errorf("%w: wait queue full (%d sessions waiting)", ErrOverloaded, mgr.cfg.MaxQueue)
	}
	waitStart := time.Now()
	waitTimer := time.NewTimer(mgr.cfg.QueueWait)
	defer waitTimer.Stop()
	select {
	case mgr.slots <- struct{}{}:
	case <-waitTimer.C:
		mgr.queued.Add(-1)
		mgr.rejected.Add(1)
		return nil, fmt.Errorf("%w: no execution slot within %v", ErrOverloaded, mgr.cfg.QueueWait)
	case <-ctx.Done():
		mgr.queued.Add(-1)
		return nil, ctx.Err()
	}
	mgr.queued.Add(-1)
	mgr.admitted.Add(1)
	defer func() { <-mgr.slots }()

	s := &Session{id: newID(), traceID: requestID, done: make(chan struct{}), state: StateQueued}
	if s.traceID == "" {
		s.traceID = s.id
	}
	mgr.mu.Lock()
	mgr.sessions[s.id] = s
	mgr.mu.Unlock()

	mgr.execute(ctx, s, project, lim, time.Since(waitStart))
	return s, nil
}

// execute runs the session to its end and records the result.
func (mgr *Manager) execute(ctx context.Context, s *Session, project *blocks.Project, lim Limits, waited time.Duration) {
	var runCtx context.Context
	var cancel context.CancelFunc
	if lim.Timeout > 0 {
		runCtx, cancel = context.WithTimeout(ctx, lim.Timeout)
	} else {
		runCtx, cancel = context.WithCancel(ctx)
	}
	defer cancel()
	s.cancel.Store(cancel)

	m := interp.NewMachine(project, vclock.New())
	m.TraceID = s.traceID // worker jobs launched by this session share its span ID
	if lim.MaxTraceLines > 0 {
		m.Stage.MaxTrace = lim.MaxTraceLines
	}
	s.mu.Lock()
	s.machine = m
	s.state = StateRunning
	s.mu.Unlock()

	begin := time.Now()
	started, err := runContained(runCtx, m, lim)
	res := Result{
		Status:       classify(err),
		Trace:        m.Stage.TraceLines(),
		TraceDropped: m.Stage.TraceDropped(),
		Stage:        m.Stage.Snapshot(),
		Scripts:      len(started),
		Rounds:       m.Round(),
		Steps:        m.Steps(),
		Timesteps:    m.Stage.Timer.Elapsed(),
		QueueMS:      waited.Milliseconds(),
		RunMS:        time.Since(begin).Milliseconds(),
	}
	if err != nil {
		res.Error = err.Error()
	}
	if obs.Enabled() {
		elapsed := time.Since(begin)
		obs.SessionsTotal.Inc()
		obs.SessionSteps.Observe(float64(res.Steps))
		if lim.Timeout > 0 {
			// Deadline slack: how much of the wall-clock budget the
			// session left unused. Near-zero slack on ok sessions means
			// the house Timeout is about to start killing real work.
			slack := lim.Timeout - elapsed
			if slack < 0 {
				slack = 0
			}
			obs.SessionSlackSeconds.Observe(slack.Seconds())
		}
		obs.RecordSpan(obs.Span{
			ID:    s.traceID,
			Kind:  "session",
			Start: begin,
			Dur:   elapsed,
			Attrs: []obs.Attr{
				{Key: "status", Val: string(res.Status)},
				obs.AttrInt("scripts", int64(res.Scripts)),
				obs.AttrInt("steps", res.Steps),
				obs.AttrInt("rounds", res.Rounds),
				obs.AttrInt("queue_ms", res.QueueMS),
			},
		})
	}

	s.mu.Lock()
	s.state = StateDone
	s.res = res
	s.mu.Unlock()
	close(s.done)

	mgr.mu.Lock()
	mgr.byStatus[res.Status]++
	mgr.doneIDs = append(mgr.doneIDs, s.id)
	for len(mgr.doneIDs) > mgr.cfg.KeepDone {
		delete(mgr.sessions, mgr.doneIDs[0])
		mgr.doneIDs = mgr.doneIDs[1:]
	}
	mgr.mu.Unlock()
}

// runContained runs the machine to its end with the session boundary's
// panic containment: a primitive that panics on the interpreter path
// (instead of returning an error like a well-behaved one) must not crash
// the whole multi-tenant daemon or leave the session wedged mid-state.
// The recover turns the panic into an ErrFault-wrapped error, after
// killing the machine so the session's in-flight worker jobs are
// canceled just as on any other abnormal end.
func runContained(ctx context.Context, m *interp.Machine, lim Limits) (started []*interp.Process, err error) {
	defer func() {
		if r := recover(); r != nil {
			// Kill under its own recover: OnDone hooks run user-adjacent
			// code and must not turn containment into a crash.
			func() {
				defer func() { _ = recover() }()
				m.Kill()
			}()
			err = fmt.Errorf("%w: recovered panic: %v", ErrFault, r)
		}
	}()
	started = m.GreenFlag()
	err = m.RunContext(ctx, interp.RunLimits{MaxRounds: lim.MaxRounds, MaxSteps: lim.MaxSteps})
	return started, err
}

// classify maps a RunContext error to a session status.
func classify(err error) Status {
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, ErrFault):
		return StatusFault
	case errors.Is(err, interp.ErrStepLimit):
		return StatusSteps
	case errors.Is(err, interp.ErrRoundLimit):
		return StatusRounds
	case errors.Is(err, context.DeadlineExceeded):
		return StatusTimeout
	case errors.Is(err, context.Canceled):
		return StatusCanceled
	default:
		return StatusError
	}
}

// SetGlobalCaps installs the process-wide value-size caps (list length and
// text bytes) every session shares; see interp.SetValueCaps. Daemons call
// it once at startup.
func SetGlobalCaps(maxListLen, maxTextLen int) {
	interp.SetValueCaps(maxListLen, maxTextLen)
}
