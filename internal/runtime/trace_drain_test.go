package runtime

import (
	"context"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestRunTracedStampsRequestID pins the request-ID satellite at the
// manager layer: a distributed request ID becomes the session's trace ID
// (so engine spans correlate across the router hop), and a plain Run
// falls back to the session's own ID.
func TestRunTracedStampsRequestID(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	obs.ResetSpans()

	mgr := NewManager(Config{})
	s, err := mgr.RunTraced(context.Background(), mustProject(t, quickSrc), Limits{}, "req-42")
	if err != nil {
		t.Fatal(err)
	}
	if s.TraceID() != "req-42" {
		t.Fatalf("TraceID = %q, want the request ID", s.TraceID())
	}
	spans := obs.SpansFor("req-42")
	if len(spans) == 0 {
		t.Fatal("no spans recorded under the request ID")
	}
	hasSession := false
	for _, sp := range spans {
		if sp.Kind == "session" {
			hasSession = true
		}
	}
	if !hasSession {
		t.Errorf("no session span under the request ID")
	}

	plain, err := mgr.Run(context.Background(), mustProject(t, quickSrc), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.TraceID() != plain.ID() {
		t.Errorf("untraced session's TraceID = %q, want its own ID %q", plain.TraceID(), plain.ID())
	}
}

// TestDrainWaitsForIdle pins the SIGTERM drain: Drain returns true once
// nothing is running or queued, and false when the timeout lands while a
// session still runs.
func TestDrainWaitsForIdle(t *testing.T) {
	mgr := NewManager(Config{})
	if !mgr.Drain(time.Second) {
		t.Fatal("Drain on an idle manager reported busy")
	}

	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		close(started)
		// A forever script bounded by its own deadline: busy for ~250ms.
		mgr.Run(context.Background(), mustProject(t, foreverSrc), Limits{Timeout: 250 * time.Millisecond}) //nolint:errcheck
	}()
	<-started
	deadline := time.Now().Add(time.Second)
	for mgr.Stats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("session never started running")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if mgr.Drain(30 * time.Millisecond) {
		t.Error("Drain reported idle while a session was running")
	}
	if !mgr.Drain(5 * time.Second) {
		t.Error("Drain never saw the manager go idle")
	}
	<-done
}
