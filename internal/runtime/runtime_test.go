package runtime

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/blocks"
	"repro/internal/parse"
)

func mustProject(t *testing.T, src string) *blocks.Project {
	t.Helper()
	p, err := parse.Project(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const foreverSrc = `
	(project "forever"
	  (sprite "S"
	    (local x 0)
	    (when green-flag (do
	      (forever (do (change x 1)))))))`

const quickSrc = `
	(project "quick"
	  (sprite "S"
	    (when green-flag (do
	      (forward 10)
	      (say "done")))))`

// parallelSrc keeps workers busy long enough for a deadline to land in the
// middle of the map: every element folds a 2000-number list inside the
// shipped ring, and there are 20000 elements — seconds of work uncanceled.
const parallelSrc = `
	(project "busy"
	  (sprite "S"
	    (when green-flag (do
	      (report (parallelmap
	        (lambda (x) (combine (numbers 1 2000) (lambda (a b) (+ $a $b))))
	        (numbers 1 20000) 4))))))`

func TestSessionRunsToCompletion(t *testing.T) {
	mgr := NewManager(Config{})
	s, err := mgr.Run(context.Background(), mustProject(t, quickSrc), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	res, done := s.Result()
	if !done {
		t.Fatal("Run returned but session not done")
	}
	if res.Status != StatusOK {
		t.Fatalf("status = %s (%s), want ok", res.Status, res.Error)
	}
	if res.Scripts != 1 || res.Rounds == 0 || res.Steps == 0 {
		t.Fatalf("implausible result: %+v", res)
	}
	if len(res.Trace) == 0 || len(res.Stage) == 0 {
		t.Fatal("result lost the stage trace/snapshot")
	}
}

func TestDeadlineKillsForeverWithinTwice(t *testing.T) {
	mgr := NewManager(Config{})
	start := time.Now()
	s, err := mgr.Run(context.Background(), mustProject(t, foreverSrc), Limits{Timeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	res, _ := s.Result()
	if res.Status != StatusTimeout {
		t.Fatalf("status = %s (%s), want timeout", res.Status, res.Error)
	}
	// Acceptance: structured timeout within ~2x the deadline.
	if elapsed > 200*time.Millisecond {
		t.Fatalf("100ms-deadline session took %v", elapsed)
	}
}

func TestStepBudgetKill(t *testing.T) {
	mgr := NewManager(Config{})
	s, err := mgr.Run(context.Background(), mustProject(t, foreverSrc), Limits{MaxSteps: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := s.Result()
	if res.Status != StatusSteps {
		t.Fatalf("status = %s (%s), want step-budget", res.Status, res.Error)
	}
}

func TestProgramErrorStatus(t *testing.T) {
	mgr := NewManager(Config{})
	src := `
		(project "boom"
		  (sprite "S"
		    (when green-flag (do
		      (report (item 99 (list 1 2)))))))`
	s, err := mgr.Run(context.Background(), mustProject(t, src), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := s.Result()
	if res.Status != StatusError || res.Error == "" {
		t.Fatalf("status = %s (%q), want error with message", res.Status, res.Error)
	}
}

func TestLimitsClampToCeiling(t *testing.T) {
	mgr := NewManager(Config{
		Defaults: Limits{Timeout: time.Second, MaxSteps: 1000, MaxRounds: 1000, MaxTraceLines: 10},
		Ceiling:  Limits{Timeout: 2 * time.Second, MaxSteps: 2000, MaxRounds: 2000, MaxTraceLines: 20},
	})
	// Ask for far more than the ceiling allows: the forever loop must die
	// on the clamped 2000-step budget, not run for the requested billion.
	s, err := mgr.Run(context.Background(), mustProject(t, foreverSrc),
		Limits{MaxSteps: 1_000_000_000, MaxRounds: 1_000_000_000, Timeout: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := s.Result()
	if res.Status != StatusSteps {
		t.Fatalf("status = %s (%s), want step-budget from the clamped ceiling", res.Status, res.Error)
	}
	if res.Steps > 4000 {
		t.Fatalf("ran %d steps; ceiling of 2000 not applied", res.Steps)
	}
}

func TestAdmissionQueuesThenRejects(t *testing.T) {
	mgr := NewManager(Config{
		MaxConcurrent: 1,
		MaxQueue:      1,
		QueueWait:     2 * time.Second,
		Defaults:      Limits{Timeout: time.Second, MaxSteps: 100_000_000, MaxRounds: 100_000_000, MaxTraceLines: 100},
	})
	long := mustProject(t, foreverSrc)

	var wg sync.WaitGroup
	results := make([]error, 3)
	statuses := make([]Status, 3)
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := mgr.Run(context.Background(), long, Limits{Timeout: 300 * time.Millisecond})
			results[i] = err
			if err == nil {
				res, _ := s.Result()
				statuses[i] = res.Status
			}
		}()
		// Stagger so the roles are deterministic: 0 runs, 1 queues, 2 overflows.
		time.Sleep(50 * time.Millisecond)
	}
	wg.Wait()

	admitted, rejected := 0, 0
	for i, err := range results {
		switch {
		case err == nil:
			admitted++
			if statuses[i] != StatusTimeout {
				t.Errorf("session %d status = %s, want timeout", i, statuses[i])
			}
		case errors.Is(err, ErrOverloaded):
			rejected++
		default:
			t.Errorf("session %d unexpected error: %v", i, err)
		}
	}
	if admitted != 2 || rejected != 1 {
		t.Fatalf("admitted=%d rejected=%d, want 2 queued-through and 1 rejection", admitted, rejected)
	}
	st := mgr.Stats()
	if st.Rejected != 1 || st.Admitted != 2 {
		t.Fatalf("stats = %+v, want admitted 2 / rejected 1", st)
	}
}

func TestKilledSessionCancelsWorkerJobs(t *testing.T) {
	mgr := NewManager(Config{})
	// Warm the shared pool so its persistent workers are part of the
	// baseline, then measure goroutines before the killed session.
	warm, err := mgr.Run(context.Background(), mustProject(t, quickSrc), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	<-warm.Done()
	time.Sleep(50 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	s, err := mgr.Run(context.Background(), mustProject(t, parallelSrc), Limits{Timeout: 80 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := s.Result()
	if res.Status != StatusTimeout {
		t.Fatalf("status = %s (%s), want timeout", res.Status, res.Error)
	}
	// The session's worker-pool job must be canceled with it: goroutines
	// fall back to (near) the baseline instead of grinding through the
	// remaining 5000 elements.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines stuck at %d (baseline %d): worker job not canceled",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestSessionCancelAndRegistry(t *testing.T) {
	mgr := NewManager(Config{})
	var s *Session
	var runErr error
	p := mustProject(t, foreverSrc)
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		s, runErr = mgr.Run(context.Background(), p, Limits{Timeout: 5 * time.Second})
	}()
	// Find the session via the registry once it appears, then cancel it.
	var live *Session
	deadline := time.Now().Add(2 * time.Second)
	for live == nil {
		if time.Now().After(deadline) {
			t.Fatal("session never registered")
		}
		mgr.mu.Lock()
		for _, sess := range mgr.sessions {
			live = sess
		}
		mgr.mu.Unlock()
		time.Sleep(5 * time.Millisecond)
	}
	for live.State() != StateRunning && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	live.Cancel()
	<-finished
	if runErr != nil {
		t.Fatal(runErr)
	}
	res, done := s.Result()
	if !done || res.Status != StatusCanceled {
		t.Fatalf("canceled session: done=%v status=%s (%s)", done, res.Status, res.Error)
	}
	if mgr.Session(s.ID()) != s {
		t.Fatal("finished session fell out of the registry")
	}
}
