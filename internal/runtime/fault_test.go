package runtime

import (
	"context"
	"strings"
	"testing"

	"repro/internal/blocks"
	"repro/internal/interp"
	"repro/internal/value"
)

// panicProject builds a project whose green-flag script hits a primitive
// that panics — the "buggy primitive" a fuzzer or a bad extension would
// inject. It is registered once; the opcode is namespaced to stay out of
// the real vocabulary.
func panicProject(t *testing.T) *blocks.Project {
	t.Helper()
	const op = "testFaultPanic"
	if !interp.HasPrimitive(op) {
		interp.RegisterPrimitive(op, func(p *interp.Process, ctx *interp.Context) (value.Value, interp.Control, error) {
			panic("synthetic primitive bug")
		})
	}
	p := blocks.NewProject("faulty")
	sp := p.AddSprite(blocks.NewSprite("S"))
	sp.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(blocks.NewBlock(op)))
	return p
}

// TestPrimitivePanicContainedAsFault is the regression test for the
// session-boundary containment: before the fix, a panicking primitive
// unwound through Manager.execute — net/http's per-connection recover
// kept the daemon up but the session wedged forever at StateRunning
// (done never closed), and snapvm crashed outright.
func TestPrimitivePanicContainedAsFault(t *testing.T) {
	mgr := NewManager(Config{})
	s, err := mgr.Run(context.Background(), panicProject(t), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	res, done := s.Result()
	if !done {
		t.Fatal("faulting session never finished")
	}
	if res.Status != StatusFault {
		t.Fatalf("status = %q, want %q", res.Status, StatusFault)
	}
	if !strings.Contains(res.Error, "synthetic primitive bug") {
		t.Fatalf("fault error %q does not carry the panic value", res.Error)
	}
	if s.State() != StateDone {
		t.Fatalf("state = %q, want done (the pre-fix bug left it running forever)", s.State())
	}

	// The manager survived the fault: its slot was released and the next
	// session runs normally.
	s2, err := mgr.Run(context.Background(), mustProject(t, quickSrc), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if res, _ := s2.Result(); res.Status != StatusOK {
		t.Fatalf("post-fault session = %+v, want ok", res)
	}
}
