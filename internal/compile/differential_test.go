package compile

import (
	"crypto/sha256"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/blocks"
	"repro/internal/evo/oracle"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/value"
)

// The differential harness is the compiler's correctness contract: random
// ring bodies are run through BOTH tiers — the compiled closure and the
// interpreter (interp.CallFunction, the tier every uncompilable ring falls
// back to) — and must report identical values and identical error strings.
// A ring the compiler refuses simply doesn't participate (that IS the
// fallback behavior); the test asserts the generator still yields a healthy
// compiled fraction so the comparison has teeth.

type gen struct {
	rnd    *rand.Rand
	params []string
}

var genTexts = []string{"", "hi", "hello world", "3", "-2.5", "true", "false", "a,b,c", "Straße"}

var genMonadic = []string{"sqrt", "abs", "floor", "ceiling", "sin", "cos", "tan", "ln", "log", "e^", "nope"}

var genDelims = []string{"", " ", ",", "line", "whitespace", "l"}

// val builds a random argument value: scalars, nothing, and small lists.
func (g *gen) val(depth int) value.Value {
	switch g.rnd.Intn(6) {
	case 0:
		return value.NumInt(g.rnd.Intn(41) - 20)
	case 1:
		return value.Num(float64(g.rnd.Intn(400)-200) / 10)
	case 2:
		return value.Text(genTexts[g.rnd.Intn(len(genTexts))])
	case 3:
		return value.Bool(g.rnd.Intn(2) == 0)
	case 4:
		return value.TheNothing
	default:
		n := g.rnd.Intn(5)
		items := make([]value.Value, n)
		for i := range items {
			items[i] = value.NumInt(g.rnd.Intn(21) - 10)
		}
		return value.NewList(items...)
	}
}

// leaf builds a terminal node: a literal, a parameter reference, an empty
// slot (parameterless rings only), or — rarely — a free variable, whose
// lookup error both tiers must word identically.
func (g *gen) leaf() blocks.Node {
	switch g.rnd.Intn(8) {
	case 0:
		return blocks.Num(float64(g.rnd.Intn(41) - 20))
	case 1:
		return blocks.Num(float64(g.rnd.Intn(400)-200) / 10)
	case 2:
		return blocks.Txt(genTexts[g.rnd.Intn(len(genTexts))])
	case 3:
		return blocks.BoolLit(g.rnd.Intn(2) == 0)
	case 4:
		if g.rnd.Intn(10) == 0 {
			return blocks.Var("ghost")
		}
		fallthrough
	default:
		if len(g.params) > 0 {
			return blocks.Var(g.params[g.rnd.Intn(len(g.params))])
		}
		return blocks.Empty()
	}
}

// listSrc builds a node likely (not certainly) to evaluate to a list — a
// certain miss exercises the "expecting a list" error path in both tiers.
// reportNumbers operands stay literal and small so list sizes are bounded.
func (g *gen) listSrc(depth int) blocks.Node {
	switch g.rnd.Intn(4) {
	case 0:
		return blocks.Reporter(blocks.Numbers(
			blocks.Num(float64(g.rnd.Intn(21)-10)),
			blocks.Num(float64(g.rnd.Intn(21)-10))))
	case 1:
		n := g.rnd.Intn(4)
		items := make([]blocks.Node, n)
		for i := range items {
			items[i] = g.node(depth - 1)
		}
		return blocks.Reporter(blocks.ListOf(items...))
	case 2:
		return g.leaf()
	default:
		return blocks.Reporter(blocks.Map(g.innerRing(depth-1, 1), g.listSrc(depth-1)))
	}
}

// innerRing builds the literal ring slot of a higher-order block with
// `arity` formals: named parameters or (only compilable when the outer ring
// is parameterized-free of implicits) positional empty slots.
func (g *gen) innerRing(depth, arity int) blocks.Node {
	if g.rnd.Intn(2) == 0 {
		params := []string{"u", "v", "w"}[:arity]
		inner := &gen{rnd: g.rnd, params: append(params, g.params...)}
		return blocks.RingOf(inner.node(depth), params...)
	}
	inner := &gen{rnd: g.rnd}
	return blocks.RingOf(inner.node(depth))
}

func (g *gen) node(depth int) blocks.Node {
	if depth <= 0 {
		return g.leaf()
	}
	switch g.rnd.Intn(24) {
	case 0:
		return blocks.Reporter(blocks.Sum(g.node(depth-1), g.node(depth-1)))
	case 1:
		return blocks.Reporter(blocks.Difference(g.node(depth-1), g.node(depth-1)))
	case 2:
		return blocks.Reporter(blocks.Product(g.node(depth-1), g.node(depth-1)))
	case 3:
		return blocks.Reporter(blocks.Quotient(g.node(depth-1), g.node(depth-1)))
	case 4:
		return blocks.Reporter(blocks.Modulus(g.node(depth-1), g.node(depth-1)))
	case 5:
		return blocks.Reporter(blocks.Round(g.node(depth - 1)))
	case 6:
		return blocks.Reporter(blocks.Monadic(genMonadic[g.rnd.Intn(len(genMonadic))], g.node(depth-1)))
	case 7:
		return blocks.Reporter(blocks.LessThan(g.node(depth-1), g.node(depth-1)))
	case 8:
		return blocks.Reporter(blocks.Equals(g.node(depth-1), g.node(depth-1)))
	case 9:
		return blocks.Reporter(blocks.GreaterThan(g.node(depth-1), g.node(depth-1)))
	case 10:
		return blocks.Reporter(blocks.And(g.node(depth-1), g.node(depth-1)))
	case 11:
		return blocks.Reporter(blocks.Or(g.node(depth-1), g.node(depth-1)))
	case 12:
		return blocks.Reporter(blocks.Not(g.node(depth - 1)))
	case 13:
		return blocks.Reporter(blocks.Ternary(g.node(depth-1), g.node(depth-1), g.node(depth-1)))
	case 14:
		return blocks.Reporter(blocks.Join(g.node(depth-1), g.node(depth-1)))
	case 15:
		return blocks.Reporter(blocks.Letter(g.node(depth-1), g.node(depth-1)))
	case 16:
		return blocks.Reporter(blocks.StringSize(g.node(depth - 1)))
	case 17:
		return blocks.Reporter(blocks.Split(g.node(depth-1), blocks.Txt(genDelims[g.rnd.Intn(len(genDelims))])))
	case 18:
		return blocks.Reporter(blocks.ItemOf(g.node(depth-1), g.listSrc(depth-1)))
	case 19:
		return blocks.Reporter(blocks.LengthOf(g.listSrc(depth - 1)))
	case 20:
		return blocks.Reporter(blocks.ListContains(g.listSrc(depth-1), g.node(depth-1)))
	case 21:
		return blocks.Reporter(blocks.Map(g.innerRing(depth-1, 1), g.listSrc(depth-1)))
	case 22:
		return blocks.Reporter(blocks.Keep(g.innerRing(depth-1, 1), g.listSrc(depth-1)))
	default:
		return blocks.Reporter(blocks.Combine(g.listSrc(depth-1), g.innerRing(depth-1, 2)))
	}
}

// runDifferential generates iters random rings; for each one the compiler
// accepts, both tiers run on identical (cloned) arguments and the results
// are compared. Returns how many rings compiled.
func runDifferential(t *testing.T, rnd *rand.Rand, iters int) int {
	t.Helper()
	compiled := 0
	for i := 0; i < iters; i++ {
		g := &gen{rnd: rnd}
		switch rnd.Intn(3) {
		case 1:
			g.params = []string{"x"}
		case 2:
			g.params = []string{"x", "y"}
		}
		body := g.node(3)
		ring := &blocks.Ring{Body: body, Params: g.params}
		fn, ok := Ring(ring)
		if !ok {
			continue
		}
		compiled++
		nargs := rnd.Intn(4) // 0..3: missing params, extra implicits, all covered
		args := make([]value.Value, nargs)
		cargs := make([]value.Value, nargs)
		for j := range args {
			args[j] = g.val(2)
			cargs[j] = value.CloneValue(args[j])
		}
		iv, ierr := interp.CallFunction(ring, args, 1<<20)
		cv, cerr := fn(cargs)
		desc := body.Describe()
		// The comparison contract is the shared oracle's: identical
		// error wording (not merely both-failed), and value agreement up
		// to rendering.
		if is, cs := oracle.ErrString(ierr), oracle.ErrString(cerr); is != cs {
			t.Fatalf("error divergence on %s (args %v):\n  interp:   %s\n  compiled: %s",
				desc, args, is, cs)
		}
		if ierr != nil {
			continue
		}
		if !oracle.ValuesAgree(iv, cv) {
			t.Fatalf("value divergence on %s (args %v):\n  interp:   %s\n  compiled: %s",
				desc, args, iv, cv)
		}
	}
	return compiled
}

func TestDifferentialCompiledVsInterpreted(t *testing.T) {
	// Run with observability on and hold the tier counters to the
	// harness's own tally: every Ring call must register as exactly one
	// hit or one fallback — a double-count (or a refusal that forgot to
	// report) breaks the agreement immediately, across 3000 random rings.
	prevObs := obs.Enabled()
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(prevObs) })
	hitsBefore := obs.CompileHits.Value()
	fallbacksBefore := obs.CompileFallbacks.Total()

	rnd := rand.New(rand.NewSource(0xC0FFEE))
	const iters = 3000
	compiled := runDifferential(t, rnd, iters)
	t.Logf("compiled %d/%d generated rings", compiled, iters)
	if compiled < iters/4 {
		t.Fatalf("generator too refusal-heavy: only %d/%d rings compiled — the differential comparison lost its teeth", compiled, iters)
	}

	if got := obs.CompileHits.Value() - hitsBefore; got != int64(compiled) {
		t.Errorf("engine_compile_hits_total moved by %d, harness compiled %d rings", got, compiled)
	}
	if got := obs.CompileFallbacks.Total() - fallbacksBefore; got != int64(iters-compiled) {
		t.Errorf("engine_compile_fallbacks_total moved by %d, harness refused %d rings", got, iters-compiled)
	}
}

// FuzzCompileRing lets the fuzzer steer the generator seed, hunting for a
// ring whose compiled and interpreted behavior disagree. `make check` runs
// a short -fuzztime burst; `go test -fuzz FuzzCompileRing ./internal/compile`
// runs it open-ended. Beyond the fixed seeds, every reproducer the evo
// stress engine has persisted contributes a derived seed, so the ring
// generator re-explores the neighborhoods where cross-tier divergences
// were actually found.
func FuzzCompileRing(f *testing.F) {
	for _, seed := range []int64{0, 1, 2, 42, 0xBEEF, -7} {
		f.Add(seed)
	}
	if entries, err := os.ReadDir("../evo/corpus"); err == nil {
		for _, e := range entries {
			if e.IsDir() || filepath.Ext(e.Name()) != ".bytes" {
				continue
			}
			b, err := os.ReadFile(filepath.Join("../evo/corpus", e.Name()))
			if err != nil {
				continue
			}
			sum := sha256.Sum256(b)
			f.Add(int64(binary.LittleEndian.Uint64(sum[:8])))
		}
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		runDifferential(t, rand.New(rand.NewSource(seed)), 25)
	})
}

// TestDifferentialSlotConsumption pins the subtlest equivalence: static
// slot indices versus the interpreter's dynamic implicit cursor, across
// every argument count.
func TestDifferentialSlotConsumption(t *testing.T) {
	// join(_, "|", _, "|", _): three slots, fed 0..4 args.
	body := blocks.Reporter(blocks.Join(
		blocks.Empty(), blocks.Txt("|"), blocks.Empty(), blocks.Txt("|"), blocks.Empty()))
	ring := &blocks.Ring{Body: body}
	fn, ok := Ring(ring)
	if !ok {
		t.Fatal("slot ring should compile")
	}
	pool := []value.Value{value.Text("a"), value.Text("b"), value.Text("c"), value.Text("d")}
	for n := 0; n <= 4; n++ {
		args := pool[:n]
		iv, ierr := interp.CallFunction(ring, args, 1<<20)
		cv, cerr := fn(args)
		if ierr != nil || cerr != nil {
			t.Fatalf("n=%d: unexpected errors %v / %v", n, ierr, cerr)
		}
		if iv.String() != cv.String() {
			t.Fatalf("n=%d: interp %q vs compiled %q", n, iv, cv)
		}
	}
}
