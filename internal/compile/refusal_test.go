package compile

import (
	"testing"

	"repro/internal/blocks"
	"repro/internal/obs"
)

// TestRefusalReasonsLandOnTheirCounter pins the refusal-reason labels: a
// ring refused for a known cause must land on that reason's series, never
// in "other" — "other" filling up means the compiler grew a refusal path
// the obs.CompileReasons catalog (and docs/OBSERVABILITY.md) doesn't know.
func TestRefusalReasonsLandOnTheirCounter(t *testing.T) {
	prev := obs.Enabled()
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(prev) })

	cases := []struct {
		name   string
		ring   *blocks.Ring
		reason string
	}{
		{"nil body", &blocks.Ring{}, "empty"},
		{"captured env", &blocks.Ring{Body: blocks.Num(1), Env: struct{}{}}, "env"},
		{"script body", &blocks.Ring{Body: &blocks.Script{}}, "script-body"},
		{"ring as value", &blocks.Ring{Body: blocks.RingOf(blocks.Num(1))}, "ring-value"},
		{"unknown op", &blocks.Ring{Body: blocks.Reporter(blocks.NewBlock("doGlide", blocks.Num(1)))}, "unsupported-op"},
		{"wrong input count", &blocks.Ring{Body: blocks.Reporter(
			blocks.NewBlock("reportSum", blocks.Num(1)))}, "arity"}, // sum wants 2
	}
	for _, tc := range cases {
		before := obs.CompileFallbacks.With(tc.reason).Value()
		otherBefore := obs.CompileFallbacks.With("no-such-reason").Value()
		if _, ok := Ring(tc.ring); ok {
			t.Errorf("%s: compiled, want refusal", tc.name)
			continue
		}
		if got := obs.CompileFallbacks.With(tc.reason).Value() - before; got != 1 {
			t.Errorf("%s: reason %q counted %d times, want 1", tc.name, tc.reason, got)
		}
		if got := obs.CompileFallbacks.With("no-such-reason").Value() - otherBefore; got != 0 {
			t.Errorf("%s: refusal leaked into the other series", tc.name)
		}
	}
}
