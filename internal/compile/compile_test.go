package compile

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/blocks"
	"repro/internal/value"
)

// ship builds the shipped form of a reporter ring, exactly what
// core.ShipRing hands a worker: body + params, no environment.
func ship(body blocks.Node, params ...string) *blocks.Ring {
	return &blocks.Ring{Body: body, Params: params}
}

func mustCompile(t *testing.T, r *blocks.Ring) Fn {
	t.Helper()
	fn, ok := Ring(r)
	if !ok {
		t.Fatalf("expected ring to compile: %s", r.String())
	}
	return fn
}

func call(t *testing.T, fn Fn, args ...value.Value) value.Value {
	t.Helper()
	v, err := fn(args)
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	return v
}

func TestCompileArithmetic(t *testing.T) {
	// ((x + 3) * x) with a named parameter
	body := blocks.Product(blocks.Sum(blocks.Var("x"), blocks.Num(3)), blocks.Var("x"))
	fn := mustCompile(t, ship(body, "x"))
	if got := call(t, fn, value.Number(4)); got.String() != "28" {
		t.Fatalf("got %s, want 28", got)
	}
}

func TestCompileImplicitSlots(t *testing.T) {
	// (_ + _) with no params: one arg fills both slots, two args fill
	// left to right, extra slots report nothing (which ToNumber rejects).
	fn := mustCompile(t, ship(blocks.Sum(blocks.Empty(), blocks.Empty())))
	if got := call(t, fn, value.Number(5)); got.String() != "10" {
		t.Fatalf("one arg: got %s, want 10", got)
	}
	if got := call(t, fn, value.Number(5), value.Number(2)); got.String() != "7" {
		t.Fatalf("two args: got %s, want 7", got)
	}
}

func TestCompileConditionalAndText(t *testing.T) {
	// if (size of x) > 3 then join(x, "!") else x
	body := blocks.Ternary(
		blocks.GreaterThan(blocks.Reporter(blocks.StringSize(blocks.Var("x"))), blocks.Num(3)),
		blocks.Reporter(blocks.Join(blocks.Var("x"), blocks.Txt("!"))),
		blocks.Var("x"),
	)
	fn := mustCompile(t, ship(body, "x"))
	if got := call(t, fn, value.Text("hello")); got.String() != "hello!" {
		t.Fatalf("got %s, want hello!", got)
	}
	if got := call(t, fn, value.Text("hi")); got.String() != "hi" {
		t.Fatalf("got %s, want hi", got)
	}
}

func TestCompileInnerHOFs(t *testing.T) {
	// combine (map (_ * _) over (numbers 1 to x)) using (_ + _)
	// = sum of squares 1..x
	body := blocks.Combine(
		blocks.Reporter(blocks.Map(
			blocks.RingOf(blocks.Product(blocks.Empty(), blocks.Empty())),
			blocks.Reporter(blocks.Numbers(blocks.Num(1), blocks.Var("x"))),
		)),
		blocks.RingOf(blocks.Sum(blocks.Empty(), blocks.Empty())),
	)
	fn := mustCompile(t, ship(body, "x"))
	if got := call(t, fn, value.Number(4)); got.String() != "30" {
		t.Fatalf("sum of squares 1..4: got %s, want 30", got)
	}
}

func TestCompileKeep(t *testing.T) {
	// keep (_ > 2) from the argument list
	body := blocks.Keep(
		blocks.RingOf(blocks.GreaterThan(blocks.Empty(), blocks.Num(2))),
		blocks.Var("l"),
	)
	fn := mustCompile(t, ship(body, "l"))
	in := value.NewList(value.Number(1), value.Number(3), value.Number(2), value.Number(5))
	got := call(t, fn, in)
	if got.String() != value.NewList(value.Number(3), value.Number(5)).String() {
		t.Fatalf("got %s", got)
	}
}

func TestCompiledErrorsMatchInterpreterWording(t *testing.T) {
	cases := []struct {
		name string
		ring *blocks.Ring
		args []value.Value
		want string
	}{
		{"div by zero", ship(blocks.Quotient(blocks.Num(1), blocks.Num(0))), nil,
			"reportQuotient: division by zero"},
		{"free variable", ship(blocks.Sum(blocks.Var("ghost"), blocks.Num(1))), nil,
			`a variable of name "ghost" does not exist in this context`},
		{"non-list", ship(blocks.LengthOf(blocks.Var("x")), "x"),
			[]value.Value{value.Number(7)},
			"reportListLength: expecting a list but getting a number"},
		{"bad bool", ship(blocks.Not(blocks.Num(3))), nil,
			"reportNot:"},
		{"negative sqrt", ship(blocks.Monadic("sqrt", blocks.Num(-1))), nil,
			"reportMonadic: square root of a negative number"},
		{"numbers to Infinity", // the OOM regression, compiled tier
			ship(blocks.Reporter(blocks.Numbers(blocks.Num(1), blocks.Txt("Infinity")))), nil,
			`reportNumbers: expecting a number but getting text "Infinity"`},
		{"numbers overflow bound",
			ship(blocks.Reporter(blocks.Numbers(blocks.Num(1),
				blocks.Reporter(blocks.Product(blocks.Num(1e308), blocks.Num(10)))))), nil,
			"reportNumbers: numbers from 1 to +Inf: bounds must be finite"},
		{"numbers huge span",
			ship(blocks.Reporter(blocks.Numbers(blocks.Num(1), blocks.Num(1e18)))), nil,
			"list of 1e+18 elements exceeds the engine limit of 2147483648"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fn := mustCompile(t, tc.ring)
			_, err := fn(tc.args)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestCompileRefusals(t *testing.T) {
	cases := []struct {
		name string
		ring *blocks.Ring
	}{
		{"nil ring", nil},
		{"nil body", &blocks.Ring{}},
		{"captured environment", &blocks.Ring{Body: blocks.Num(1), Env: struct{}{}}},
		{"command script body", &blocks.Ring{Body: blocks.NewScript(blocks.Report(blocks.Num(1)))}},
		{"random is nondeterministic", ship(blocks.Random(blocks.Num(1), blocks.Num(10)))},
		{"stage block", ship(blocks.Reporter(blocks.NewBlock("getTimer")))},
		{"file block", ship(blocks.Reporter(blocks.NewBlock("reportReadFile", blocks.Txt("x"))))},
		{"wrong arity", ship(blocks.Reporter(blocks.NewBlock("reportSum", blocks.Num(1))))},
		{"unknown op", ship(blocks.Reporter(blocks.NewBlock("reportWarpSpeed", blocks.Num(1))))},
		{"ring as plain value", ship(blocks.Reporter(blocks.NewBlock("reportSum",
			blocks.RingOf(blocks.Num(1)), blocks.Num(2))))},
		{"ring-valued variable in map", ship(blocks.Map(blocks.Var("f"), blocks.Var("l")), "f", "l")},
		{"cross-scope implicit", ship(
			// A slot inside a *parameterized* inner ring consumes the
			// outer parameterless ring's implicit cursor dynamically.
			blocks.Map(
				blocks.RingOf(blocks.Sum(blocks.Var("y"), blocks.Empty()), "y"),
				blocks.Empty(),
			),
		)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, ok := Ring(tc.ring); ok {
				t.Fatalf("expected refusal")
			}
		})
	}
}

func TestCompiledFnIsConcurrencySafe(t *testing.T) {
	// The same Fn is shared by every worker goroutine; hammer one from
	// several goroutines (run with -race in make check).
	body := blocks.Combine(
		blocks.Reporter(blocks.Numbers(blocks.Num(1), blocks.Var("x"))),
		blocks.RingOf(blocks.Sum(blocks.Empty(), blocks.Empty())),
	)
	fn := mustCompile(t, ship(body, "x"))
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 200; i++ {
				v, err := fn([]value.Value{value.Number(10)})
				if err == nil && v.String() != "55" {
					err = fmt.Errorf("got %s, want 55", v)
				}
				if err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
