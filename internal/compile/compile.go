// Package compile is the ring-compiler tier of the worker runtime. It
// lowers a *shipped* reporter ring — the environment-stripped function a
// parallel block sends to its Web-Worker-equivalent goroutines — into a
// direct Go closure, so the hot per-element path of parallelMap/mapReduce
// pays a handful of function calls instead of a fresh interpreter Process,
// Context stack, and per-step dispatch.
//
// The compiler is deliberately partial: it handles exactly the worker-safe
// pure subset of the language (arithmetic, comparison, logic, text, list
// reads, the reporter conditional, the sequential higher-order blocks with
// literal inner rings, and parameter/implicit-slot references). Anything
// else — stage or file blocks, random numbers, command scripts, rings
// flowing as values, dynamically consumed implicit slots — makes Ring
// report ok=false and the caller falls back to the interpreter tier
// (interp.CallFunction / interp.Caller), which remains the semantic source
// of truth. A differential test (see differential_test.go) pins the two
// tiers to identical results and identical error messages.
package compile

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/blocks"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/value"
)

// Fn is a compiled reporter ring: call it with the ring's arguments and it
// reports the ring's value or the error the interpreter would have raised.
// An Fn is pure and stateless — safe for concurrent calls from many worker
// goroutines — and does NOT clone its arguments or its result; the caller
// owns the worker-boundary clone discipline, exactly as it does around
// interp.CallFunction. The args slice is only read during the call and may
// be reused by the caller afterwards.
type Fn func(args []value.Value) (value.Value, error)

// Ring compiles a shipped reporter ring. ok is false when any part of the
// body falls outside the compilable subset; the caller must then use the
// interpreter tier. Only shipped rings (no captured environment) are
// accepted: a ring still carrying its closure frames could see variables
// the compiler cannot resolve statically.
//
// Ring is also the tier decision's single metering point: when
// observability is on, every call lands in engine_compile_hits_total or
// engine_compile_fallbacks_total{reason=...} — counted here, and only
// here, so the compile-tier counters agree one-to-one with the
// differential harness's own tally (see differential_test.go).
func Ring(r *blocks.Ring) (Fn, bool) {
	fn, reason, ok := ring(r)
	if obs.Enabled() {
		if ok {
			obs.CompileHits.Inc()
		} else {
			obs.CompileFallbacks.With(reason).Inc()
		}
	}
	return fn, ok
}

// ring is the unmetered compiler; reason classifies the refusal (one of
// obs.CompileReasons) when ok is false.
func ring(r *blocks.Ring) (Fn, string, bool) {
	ex, reason, ok := ringBody(r)
	if !ok {
		return nil, reason, false
	}
	return func(args []value.Value) (value.Value, error) {
		v, err := ex(&env{args: args})
		if v == nil && err == nil {
			// Mirror Process.Result(): a detached evaluation that
			// produced no value reports Nothing.
			v = value.TheNothing
		}
		return v, err
	}, "", true
}

// SeqRing compiles a shipped reporter ring once and returns a factory of
// sequential kernels. Each factory call mints an independent caller that
// hoists the per-call environment allocation out of the call and reuses
// it, which is sound as long as that caller's calls never overlap or nest:
// the compiled subset cannot let the environment escape a call — rings
// flowing as values are refused ("ring-value"), so no closure survives the
// return — and cannot re-enter the kernel (custom-block calls are outside
// the subset). Callers are cheap to mint (two allocations); concurrent
// users pool them rather than share one. SeqRing is unmetered: the
// general-purpose compile of the same ring every caller also performs (see
// Ring) is the tier decision's single metering point.
func SeqRing(r *blocks.Ring) (func() Fn, bool) {
	ex, _, ok := ringBody(r)
	if !ok {
		return nil, false
	}
	return func() Fn {
		e := &env{}
		return func(args []value.Value) (value.Value, error) {
			e.args = args
			v, err := ex(e)
			e.args = nil
			if v == nil && err == nil {
				// Mirror Process.Result(), as ring does.
				v = value.TheNothing
			}
			return v, err
		}
	}, true
}

// MapFn is a keyed sequential map kernel: one call maps one item to one
// (key, value) pair, the mapReduce block's mapper convention already
// applied (see core.RingMapper).
type MapFn func(args []value.Value) (string, value.Value, error)

// SeqMapperRing compiles a shipped map ring for the mapReduce block's
// sequential fast path, fusing the mapper convention into the kernel: a
// body that is literally `list A B` evaluates A and B and reports (A's
// display string, B) without materializing the two-element pair list every
// call just to take it apart again; any other body evaluates whole and is
// keyed by the convention at run time (a two-element list is (key, value),
// anything else maps the item to the shared "" key). Factory semantics and
// the sequential-use contract are those of SeqRing.
func SeqMapperRing(r *blocks.Ring) (func() MapFn, bool) {
	if r == nil || r.Body == nil || r.Env != nil {
		return nil, false
	}
	if b, ok := r.Body.(*blocks.Block); ok && b.Op == "reportNewList" && len(b.Inputs) == 2 {
		// One scope across both inputs, exactly as compNewList would
		// compile them: the implicit-slot cursor advances in order.
		sc := &scope{params: r.Params, fail: new(string)}
		ka, ok := compileNode(b.Input(0), sc)
		if !ok {
			return nil, false
		}
		kb, ok := compileNode(b.Input(1), sc)
		if !ok {
			return nil, false
		}
		return func() MapFn {
			e := &env{}
			return func(args []value.Value) (string, value.Value, error) {
				e.args = args
				av, err := ka(e)
				if err != nil {
					e.args = nil
					return "", nil, err
				}
				bv, err := kb(e)
				e.args = nil
				if err != nil {
					return "", nil, err
				}
				return av.String(), bv, nil
			}
		}, true
	}
	fac, ok := SeqRing(r)
	if !ok {
		return nil, false
	}
	return func() MapFn {
		fn := fac()
		return func(args []value.Value) (string, value.Value, error) {
			v, err := fn(args)
			if err != nil {
				return "", nil, err
			}
			if l, ok := v.(*value.List); ok && l.Len() == 2 {
				return l.MustItem(1).String(), l.MustItem(2), nil
			}
			return "", v, nil
		}
	}, true
}

// ringBody compiles the ring's body to one expr, shared by the concurrent
// and sequential callers.
func ringBody(r *blocks.Ring) (expr, string, bool) {
	if r == nil || r.Body == nil {
		return nil, "empty", false
	}
	if r.Env != nil {
		return nil, "env", false
	}
	if _, isScript := r.Body.(*blocks.Script); isScript {
		return nil, "script-body", false
	}
	sc := &scope{params: r.Params, fail: new(string)}
	ex, ok := compileNode(r.Body, sc)
	if !ok {
		reason := *sc.fail
		if reason == "" {
			reason = "unsupported-node"
		}
		return nil, reason, false
	}
	return ex, "", true
}

// env is the runtime scope chain: one level per ring call, holding that
// call's arguments. Compiled variable and slot references are (depth,
// index) pairs resolved at compile time, so the runtime never searches by
// name.
type env struct {
	parent *env
	args   []value.Value
}

// expr is one compiled expression.
type expr func(*env) (value.Value, error)

// scope is the compile-time image of env: the parameter lists of the
// enclosing rings, plus the implicit-slot counter for parameterless rings.
type scope struct {
	parent *scope
	params []string
	slots  int // empty slots assigned so far, in evaluation order
	// fail, shared down the whole scope chain, records the FIRST refusal
	// reason hit while compiling the ring — the label on
	// engine_compile_fallbacks_total.
	fail *string
}

// refuse records why this subtree cannot compile (first reason wins) and
// returns the not-compilable pair, so refusal sites stay one-liners.
func (sc *scope) refuse(reason string) (expr, bool) {
	if sc.fail != nil && *sc.fail == "" {
		*sc.fail = reason
	}
	return nil, false
}

func constExpr(v value.Value) expr {
	return func(*env) (value.Value, error) { return v, nil }
}

func wrapOp(op string, err error) error { return fmt.Errorf("%s: %w", op, err) }

func nonNil(v value.Value) value.Value {
	if v == nil {
		return value.TheNothing
	}
	return v
}

func compileNode(n blocks.Node, sc *scope) (expr, bool) {
	switch x := n.(type) {
	case blocks.Literal:
		v := x.Val
		if v == nil {
			v = value.TheNothing
		}
		return constExpr(v), true
	case blocks.EmptySlot:
		return compileEmptySlot(sc)
	case blocks.VarGet:
		return compileVarGet(x.Name, sc)
	case *blocks.Block:
		return compileBlock(x, sc)
	case blocks.RingNode:
		// A ring outside a higher-order slot flows as a value and would
		// need frame capture: interpreter only.
		return sc.refuse("ring-value")
	default:
		// ScriptNode and anything unforeseen stay on the interpreter.
		return sc.refuse("unsupported-node")
	}
}

// compileEmptySlot resolves an implicit argument slot. The interpreter
// binds implicits on the nearest enclosing parameterless ring call: one
// argument fills every slot, several are consumed left to right. Slots are
// evaluated in left-to-right depth-first order — the same order this
// compiler walks the body — so the dynamic cursor becomes a static index.
func compileEmptySlot(sc *scope) (expr, bool) {
	if len(sc.params) == 0 {
		idx := sc.slots
		sc.slots++
		return func(e *env) (value.Value, error) {
			args := e.args
			if len(args) == 1 {
				return nonNil(args[0]), nil
			}
			if idx < len(args) {
				return nonNil(args[idx]), nil
			}
			return value.TheNothing, nil
		}, true
	}
	for s := sc.parent; s != nil; s = s.parent {
		if len(s.params) == 0 {
			// A slot inside a parameterized ring would consume an
			// OUTER ring's implicit cursor, which advances across
			// separate calls of the inner ring — dynamic state the
			// static index cannot capture. Interpreter only.
			return sc.refuse("implicit-slot")
		}
	}
	// Every enclosing ring is parameterized: no frame carries implicits
	// and the slot reports nothing.
	return constExpr(value.TheNothing), true
}

func compileVarGet(name string, sc *scope) (expr, bool) {
	depth := 0
	for s := sc; s != nil; s = s.parent {
		// Scan parameters right to left: Declare overwrites in place,
		// so a duplicated name binds to the value of its last position.
		for i := len(s.params) - 1; i >= 0; i-- {
			if s.params[i] == name {
				d, idx := depth, i
				return func(e *env) (value.Value, error) {
					for k := 0; k < d; k++ {
						e = e.parent
					}
					if idx < len(e.args) {
						return nonNil(e.args[idx]), nil
					}
					// Declared parameter with no argument: bound
					// to Nothing by CallRing.
					return value.TheNothing, nil
				}, true
			}
		}
		depth++
	}
	// Free variable: a shipped ring has no environment, so the read
	// fails at call time with the interpreter's exact wording. Compiling
	// the failure (rather than refusing) keeps compiled and interpreted
	// rings byte-identical even on this error path.
	err := fmt.Errorf("a variable of name %q does not exist in this context", name)
	return func(*env) (value.Value, error) { return nil, err }, true
}

// fixedArity lists the compilable fixed-arity opcodes. A block whose input
// count disagrees stays on the interpreter (where it fails the same way it
// always has); reportJoinWords and reportNewList are variadic and accepted
// at any arity.
var fixedArity = map[string]int{
	"reportSum": 2, "reportDifference": 2, "reportProduct": 2,
	"reportQuotient": 2, "reportModulus": 2, "reportRound": 1,
	"reportMonadic":  2,
	"reportLessThan": 2, "reportEquals": 2, "reportGreaterThan": 2,
	"reportAnd": 2, "reportOr": 2, "reportNot": 1, "reportIfElse": 3,
	"reportLetter": 2, "reportStringSize": 1, "reportTextSplit": 2,
	"reportNumbers": 2, "reportListItem": 2, "reportListLength": 1,
	"reportListContainsItem": 2,
}

func compileBlock(b *blocks.Block, sc *scope) (expr, bool) {
	switch b.Op {
	case "reportCombine":
		return compileCombine(b, sc)
	case "reportMap", "reportKeep":
		return compileMapKeep(b, sc)
	case "reportJoinWords", "reportNewList":
		// variadic: fall through to input compilation
	default:
		want, known := fixedArity[b.Op]
		if !known {
			return sc.refuse("unsupported-op")
		}
		if want != len(b.Inputs) {
			return sc.refuse("arity")
		}
	}
	ins := make([]expr, len(b.Inputs))
	for i := range b.Inputs {
		ex, ok := compileNode(b.Input(i), sc)
		if !ok {
			return nil, false
		}
		ins[i] = ex
	}
	op := b.Op
	switch op {
	case "reportSum":
		return arith2(op, ins, func(a, b float64) float64 { return a + b }), true
	case "reportDifference":
		return arith2(op, ins, func(a, b float64) float64 { return a - b }), true
	case "reportProduct":
		return arith2(op, ins, func(a, b float64) float64 { return a * b }), true
	case "reportQuotient":
		return compQuotient(op, ins), true
	case "reportModulus":
		return compModulus(op, ins), true
	case "reportRound":
		return compRound(op, ins), true
	case "reportMonadic":
		return compMonadic(op, ins), true
	case "reportLessThan":
		return compLess(op, ins, false), true
	case "reportGreaterThan":
		return compLess(op, ins, true), true
	case "reportEquals":
		return compEquals(ins), true
	case "reportAnd":
		return compLogic2(op, ins, func(a, b bool) bool { return a && b }), true
	case "reportOr":
		return compLogic2(op, ins, func(a, b bool) bool { return a || b }), true
	case "reportNot":
		return compNot(op, ins), true
	case "reportIfElse":
		return compIfElse(op, ins), true
	case "reportJoinWords":
		return compJoin(op, ins), true
	case "reportLetter":
		return compLetter(op, ins), true
	case "reportStringSize":
		return compStringSize(ins), true
	case "reportTextSplit":
		return compTextSplit(op, ins), true
	case "reportNewList":
		return compNewList(ins), true
	case "reportNumbers":
		return compNumbers(op, ins), true
	case "reportListItem":
		return compListItem(op, ins), true
	case "reportListLength":
		return compListLength(op, ins), true
	case "reportListContainsItem":
		return compListContains(op, ins), true
	}
	return sc.refuse("unsupported-op")
}

// eval2 evaluates two input expressions in order — the interpreter's
// strict left-to-right slot evaluation, with child errors propagating
// unwrapped (only the applying block's own failures carry its opcode).
func eval2(a, b expr, e *env) (value.Value, value.Value, error) {
	av, err := a(e)
	if err != nil {
		return nil, nil, err
	}
	bv, err := b(e)
	if err != nil {
		return nil, nil, err
	}
	return av, bv, nil
}

func arith2(op string, ins []expr, f func(a, b float64) float64) expr {
	a, b := ins[0], ins[1]
	return func(e *env) (value.Value, error) {
		av, bv, err := eval2(a, b, e)
		if err != nil {
			return nil, err
		}
		x, err := value.ToNumber(av)
		if err != nil {
			return nil, wrapOp(op, err)
		}
		y, err := value.ToNumber(bv)
		if err != nil {
			return nil, wrapOp(op, err)
		}
		return value.Num(f(float64(x), float64(y))), nil
	}
}

func compQuotient(op string, ins []expr) expr {
	a, b := ins[0], ins[1]
	return func(e *env) (value.Value, error) {
		av, bv, err := eval2(a, b, e)
		if err != nil {
			return nil, err
		}
		x, err := value.ToNumber(av)
		if err != nil {
			return nil, wrapOp(op, err)
		}
		y, err := value.ToNumber(bv)
		if err != nil {
			return nil, wrapOp(op, err)
		}
		if y == 0 {
			return nil, wrapOp(op, fmt.Errorf("division by zero"))
		}
		return value.Num(float64(x / y)), nil
	}
}

func compModulus(op string, ins []expr) expr {
	a, b := ins[0], ins[1]
	return func(e *env) (value.Value, error) {
		av, bv, err := eval2(a, b, e)
		if err != nil {
			return nil, err
		}
		x, err := value.ToNumber(av)
		if err != nil {
			return nil, wrapOp(op, err)
		}
		y, err := value.ToNumber(bv)
		if err != nil {
			return nil, wrapOp(op, err)
		}
		if y == 0 {
			return nil, wrapOp(op, fmt.Errorf("modulus by zero"))
		}
		// Snap!'s mod matches the sign of the divisor.
		m := math.Mod(float64(x), float64(y))
		if m != 0 && (m < 0) != (float64(y) < 0) {
			m += float64(y)
		}
		return value.Num(m), nil
	}
}

func compRound(op string, ins []expr) expr {
	a := ins[0]
	return func(e *env) (value.Value, error) {
		av, err := a(e)
		if err != nil {
			return nil, err
		}
		x, err := value.ToNumber(av)
		if err != nil {
			return nil, wrapOp(op, err)
		}
		return value.Num(math.Round(float64(x))), nil
	}
}

func compMonadic(op string, ins []expr) expr {
	fnEx, a := ins[0], ins[1]
	return func(e *env) (value.Value, error) {
		fv, av, err := eval2(fnEx, a, e)
		if err != nil {
			return nil, err
		}
		fn := strings.ToLower(fv.String())
		n, err := value.ToNumber(av)
		if err != nil {
			return nil, wrapOp(op, err)
		}
		x := float64(n)
		var r float64
		switch fn {
		case "sqrt":
			if x < 0 {
				return nil, wrapOp(op, fmt.Errorf("square root of a negative number"))
			}
			r = math.Sqrt(x)
		case "abs":
			r = math.Abs(x)
		case "floor":
			r = math.Floor(x)
		case "ceiling":
			r = math.Ceil(x)
		case "sin":
			r = math.Sin(x * math.Pi / 180)
		case "cos":
			r = math.Cos(x * math.Pi / 180)
		case "tan":
			r = math.Tan(x * math.Pi / 180)
		case "asin":
			r = math.Asin(x) * 180 / math.Pi
		case "acos":
			r = math.Acos(x) * 180 / math.Pi
		case "atan":
			r = math.Atan(x) * 180 / math.Pi
		case "ln":
			r = math.Log(x)
		case "log":
			r = math.Log10(x)
		case "e^":
			r = math.Exp(x)
		case "10^":
			r = math.Pow(10, x)
		default:
			return nil, wrapOp(op, fmt.Errorf("unknown function %q", fn))
		}
		return value.Num(r), nil
	}
}

func compLess(op string, ins []expr, greater bool) expr {
	a, b := ins[0], ins[1]
	return func(e *env) (value.Value, error) {
		av, bv, err := eval2(a, b, e)
		if err != nil {
			return nil, err
		}
		var lt bool
		if greater {
			lt, err = value.Greater(av, bv)
		} else {
			lt, err = value.Less(av, bv)
		}
		if err != nil {
			return nil, wrapOp(op, err)
		}
		return value.BoolVal(lt), nil
	}
}

func compEquals(ins []expr) expr {
	a, b := ins[0], ins[1]
	return func(e *env) (value.Value, error) {
		av, bv, err := eval2(a, b, e)
		if err != nil {
			return nil, err
		}
		return value.BoolVal(value.Equal(av, bv)), nil
	}
}

func compLogic2(op string, ins []expr, f func(a, b bool) bool) expr {
	a, b := ins[0], ins[1]
	return func(e *env) (value.Value, error) {
		// Both slots evaluate before the block applies — reportAnd and
		// reportOr are eager, not short-circuiting, exactly like the
		// interpreter's strict input evaluation.
		av, bv, err := eval2(a, b, e)
		if err != nil {
			return nil, err
		}
		x, err := value.ToBool(av)
		if err != nil {
			return nil, wrapOp(op, err)
		}
		y, err := value.ToBool(bv)
		if err != nil {
			return nil, wrapOp(op, err)
		}
		return value.BoolVal(f(bool(x), bool(y))), nil
	}
}

func compNot(op string, ins []expr) expr {
	a := ins[0]
	return func(e *env) (value.Value, error) {
		av, err := a(e)
		if err != nil {
			return nil, err
		}
		x, err := value.ToBool(av)
		if err != nil {
			return nil, wrapOp(op, err)
		}
		return value.BoolVal(!bool(x)), nil
	}
}

func compIfElse(op string, ins []expr) expr {
	cond, then, els := ins[0], ins[1], ins[2]
	return func(e *env) (value.Value, error) {
		cv, err := cond(e)
		if err != nil {
			return nil, err
		}
		tv, err := then(e)
		if err != nil {
			return nil, err
		}
		ev, err := els(e)
		if err != nil {
			return nil, err
		}
		c, err := value.ToBool(cv)
		if err != nil {
			return nil, wrapOp(op, err)
		}
		if c {
			return tv, nil
		}
		return ev, nil
	}
}

func compJoin(op string, ins []expr) expr {
	return func(e *env) (value.Value, error) {
		parts := make([]string, len(ins))
		total := 0
		for i, in := range ins {
			v, err := in(e)
			if err != nil {
				return nil, err
			}
			parts[i] = v.String()
			total += len(parts[i])
		}
		if err := checkTextLen(total); err != nil {
			return nil, wrapOp(op, err)
		}
		var sb strings.Builder
		sb.Grow(total)
		for _, s := range parts {
			sb.WriteString(s)
		}
		return value.Text(sb.String()), nil
	}
}

func compLetter(op string, ins []expr) expr {
	a, b := ins[0], ins[1]
	return func(e *env) (value.Value, error) {
		av, bv, err := eval2(a, b, e)
		if err != nil {
			return nil, err
		}
		i, err := value.ToInt(av)
		if err != nil {
			return nil, wrapOp(op, err)
		}
		s := []rune(bv.String())
		if i < 1 || i > len(s) {
			return value.Str(""), nil
		}
		return value.Str(string(s[i-1])), nil
	}
}

func compStringSize(ins []expr) expr {
	a := ins[0]
	return func(e *env) (value.Value, error) {
		av, err := a(e)
		if err != nil {
			return nil, err
		}
		return value.NumInt(len([]rune(av.String()))), nil
	}
}

func compTextSplit(op string, ins []expr) expr {
	a, b := ins[0], ins[1]
	return func(e *env) (value.Value, error) {
		av, bv, err := eval2(a, b, e)
		if err != nil {
			return nil, err
		}
		text := av.String()
		delim := bv.String()
		var parts []string
		switch delim {
		case "whitespace", " ":
			parts = strings.Fields(text)
		case "":
			for _, r := range text {
				parts = append(parts, string(r))
			}
		case "line":
			parts = strings.Split(text, "\n")
		default:
			parts = strings.Split(text, delim)
		}
		if err := checkListLen(len(parts)); err != nil {
			return nil, wrapOp(op, err)
		}
		return value.FromStrings(parts), nil
	}
}

func compNewList(ins []expr) expr {
	return func(e *env) (value.Value, error) {
		out := value.NewListCap(len(ins))
		for _, in := range ins {
			v, err := in(e)
			if err != nil {
				return nil, err
			}
			out.Add(v)
		}
		return out, nil
	}
}

func compNumbers(op string, ins []expr) expr {
	a, b := ins[0], ins[1]
	return func(e *env) (value.Value, error) {
		av, bv, err := eval2(a, b, e)
		if err != nil {
			return nil, err
		}
		from, err := value.ToNumber(av)
		if err != nil {
			return nil, wrapOp(op, err)
		}
		to, err := value.ToNumber(bv)
		if err != nil {
			return nil, wrapOp(op, err)
		}
		step := 1.0
		if from > to {
			step = -1
		}
		if err := interp.CheckNumbersBounds(float64(from), float64(to)); err != nil {
			return nil, wrapOp(op, err)
		}
		return value.Range(float64(from), float64(to), step), nil
	}
}

func compListItem(op string, ins []expr) expr {
	a, b := ins[0], ins[1]
	return func(e *env) (value.Value, error) {
		av, bv, err := eval2(a, b, e)
		if err != nil {
			return nil, err
		}
		i, err := value.ToInt(av)
		if err != nil {
			return nil, wrapOp(op, err)
		}
		l, ok := bv.(*value.List)
		if !ok {
			return nil, wrapOp(op, fmt.Errorf("expecting a list but getting a %s", bv.Kind()))
		}
		v, err := l.Item(i)
		if err != nil {
			return nil, wrapOp(op, err)
		}
		return v, nil
	}
}

func compListLength(op string, ins []expr) expr {
	a := ins[0]
	return func(e *env) (value.Value, error) {
		av, err := a(e)
		if err != nil {
			return nil, err
		}
		l, ok := av.(*value.List)
		if !ok {
			return nil, wrapOp(op, fmt.Errorf("expecting a list but getting a %s", av.Kind()))
		}
		return value.Number(float64(l.Len())), nil
	}
}

func compListContains(op string, ins []expr) expr {
	a, b := ins[0], ins[1]
	return func(e *env) (value.Value, error) {
		av, bv, err := eval2(a, b, e)
		if err != nil {
			return nil, err
		}
		l, ok := av.(*value.List)
		if !ok {
			return nil, wrapOp(op, fmt.Errorf("expecting a list but getting a %s", av.Kind()))
		}
		return value.Bool(l.Contains(bv)), nil
	}
}

// compileInnerRing compiles the literal ring slot of a higher-order block.
// Only a syntactic RingNode with a reporter body qualifies: a ring arriving
// as a runtime value would need frame capture, and an empty or command body
// errors in ways the interpreter already handles.
func compileInnerRing(n blocks.Node, sc *scope) (expr, bool) {
	rn, ok := n.(blocks.RingNode)
	if !ok || rn.Body == nil {
		return sc.refuse("ring-value")
	}
	if _, isScript := rn.Body.(*blocks.Script); isScript {
		return sc.refuse("script-body")
	}
	return compileNode(rn.Body, &scope{parent: sc, params: rn.Params, fail: sc.fail})
}

// compileCombine lowers "combine _ using _" to a sequential fold. Inputs:
// [0] the list expression, [1] the literal binary ring. The fold matches
// primCombine: an empty list reports 0, otherwise the accumulator starts at
// item 1 and the ring is called with (acc, item).
func compileCombine(b *blocks.Block, sc *scope) (expr, bool) {
	if len(b.Inputs) != 2 {
		return sc.refuse("arity")
	}
	listEx, ok := compileNode(b.Input(0), sc)
	if !ok {
		return nil, false
	}
	body, ok := compileInnerRing(b.Input(1), sc)
	if !ok {
		return nil, false
	}
	return func(e *env) (value.Value, error) {
		lv, err := listEx(e)
		if err != nil {
			return nil, err
		}
		l, ok := lv.(*value.List)
		if !ok {
			return nil, wrapOp("reportCombine", fmt.Errorf("expecting a list but getting a %s", lv.Kind()))
		}
		n, it := columnIter(l)
		if n == 0 {
			return value.Number(0), nil
		}
		acc := it.at(0)
		// One allocation for the fold's scope and its two-argument buffer:
		// both escape through the indirect body call, so fusing them halves
		// the per-fold allocation count.
		ienv := &struct {
			env
			argbuf [2]value.Value
		}{env: env{parent: e}}
		ienv.args = ienv.argbuf[:]
		for i := 1; i < n; i++ {
			ienv.argbuf[0], ienv.argbuf[1] = acc, it.at(i)
			v, err := body(&ienv.env)
			if err != nil {
				return nil, err
			}
			acc = nonNil(v)
		}
		return acc, nil
	}, true
}

// colIter is an indexed accessor over a list's backing that iterates a
// raw column directly — boxing each element through the interner, with no
// materialized []Value view — falling back to the boxed backing
// otherwise. It is a plain value (no closures), so taking one allocates
// nothing; that matters because the fold and map kernels run once per
// reduce key or call site on hot paths. Compiled kernels refuse script
// bodies, so a ring body cannot mutate l mid-iteration and the snapshot
// the iterator holds stays valid.
type colIter struct {
	nums  []float64
	strs  []string
	items []value.Value
}

func columnIter(l *value.List) (int, colIter) {
	if xs, ok := l.FloatsView(); ok {
		return len(xs), colIter{nums: xs}
	}
	if ss, ok := l.StringsView(); ok {
		return len(ss), colIter{strs: ss}
	}
	items := l.Items()
	return len(items), colIter{items: items}
}

func (it colIter) at(i int) value.Value {
	if it.nums != nil {
		return value.Num(it.nums[i])
	}
	if it.strs != nil {
		return value.Str(it.strs[i])
	}
	return nonNil(it.items[i])
}

// compileMapKeep lowers "map _ over _" / "keep items _ from _". Inputs:
// [0] the literal ring, [1] the list expression. Like primMap/primKeep the
// ring is called once per element with a single argument; keep coerces the
// verdict to a boolean and reports the kept originals.
func compileMapKeep(b *blocks.Block, sc *scope) (expr, bool) {
	if len(b.Inputs) != 2 {
		return sc.refuse("arity")
	}
	body, ok := compileInnerRing(b.Input(0), sc)
	if !ok {
		return nil, false
	}
	listEx, ok := compileNode(b.Input(1), sc)
	if !ok {
		return nil, false
	}
	op := b.Op
	keep := op == "reportKeep"
	return func(e *env) (value.Value, error) {
		lv, err := listEx(e)
		if err != nil {
			return nil, err
		}
		l, ok := lv.(*value.List)
		if !ok {
			return nil, wrapOp(op, fmt.Errorf("expecting a list but getting a %s", lv.Kind()))
		}
		n, it := columnIter(l)
		var outItems []value.Value
		if keep {
			outItems = make([]value.Value, 0)
		} else {
			outItems = make([]value.Value, 0, n)
		}
		ienv := &env{parent: e}
		var argbuf [1]value.Value
		for i := 0; i < n; i++ {
			item := it.at(i)
			argbuf[0] = item
			ienv.args = argbuf[:]
			v, err := body(ienv)
			if err != nil {
				return nil, err
			}
			if keep {
				kb, err := value.ToBool(v)
				if err != nil {
					return nil, wrapOp(op, err)
				}
				if kb {
					outItems = append(outItems, item)
				}
			} else {
				outItems = append(outItems, v)
			}
		}
		// AdoptSlice re-columnarizes a long homogeneous result, so chained
		// maps keep the struct-of-arrays backing end to end.
		return value.AdoptSlice(outItems), nil
	}, true
}

// checkListLen and checkTextLen enforce the process-wide value caps with
// the interpreter's exact wording, so a capped service reports identical
// errors from both tiers.
func checkListLen(n int) error {
	if maxLen, _ := interp.ValueCaps(); maxLen > 0 && n > maxLen {
		return fmt.Errorf("list of %d elements exceeds the service cap of %d", n, maxLen)
	}
	return nil
}

func checkTextLen(n int) error {
	if _, maxLen := interp.ValueCaps(); maxLen > 0 && n > maxLen {
		return fmt.Errorf("text of %d bytes exceeds the service cap of %d", n, maxLen)
	}
	return nil
}
