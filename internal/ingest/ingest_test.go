package ingest

import (
	"strings"
	"testing"
)

func TestLines(t *testing.T) {
	l, err := Lines(strings.NewReader("alpha\nbeta\n\ngamma"))
	if err != nil {
		t.Fatal(err)
	}
	if !l.Columnar() || l.Len() != 4 {
		t.Fatalf("columnar=%v len=%d", l.Columnar(), l.Len())
	}
	ss, ok := l.StringsView()
	if !ok || ss[0] != "alpha" || ss[2] != "" || ss[3] != "gamma" {
		t.Fatalf("StringsView = %v, %v", ss, ok)
	}
	empty, err := Lines(strings.NewReader(""))
	if err != nil || empty.Len() != 0 || !empty.Columnar() {
		t.Fatalf("empty input: %v len=%d columnar=%v", err, empty.Len(), empty.Columnar())
	}
}

func TestFloats(t *testing.T) {
	l, err := Floats(strings.NewReader("1\n2.5\n\n-3\n"))
	if err != nil {
		t.Fatal(err)
	}
	xs, ok := l.FloatsView()
	if !ok || len(xs) != 3 || xs[1] != 2.5 || xs[2] != -3 {
		t.Fatalf("FloatsView = %v, %v", xs, ok)
	}
	_, err = Floats(strings.NewReader("1\nInfinity\n"))
	want := `line 2: expecting a number but getting text "Infinity"`
	if err == nil || err.Error() != want {
		t.Fatalf("error = %v, want %q", err, want)
	}
}

const tempsCSV = `station,year,day,temp_f
USW1,1990,1,55.50
USW1,1990,2,54.25
USW2,1990,1,60.00
`

func TestCSVColumnNumeric(t *testing.T) {
	l, err := CSVColumn(strings.NewReader(tempsCSV), "temp_f")
	if err != nil {
		t.Fatal(err)
	}
	xs, ok := l.FloatsView()
	if !ok || len(xs) != 3 || xs[0] != 55.5 || xs[2] != 60 {
		t.Fatalf("FloatsView = %v, %v", xs, ok)
	}
}

func TestCSVColumnText(t *testing.T) {
	l, err := CSVColumn(strings.NewReader(tempsCSV), "station")
	if err != nil {
		t.Fatal(err)
	}
	ss, ok := l.StringsView()
	if !ok || len(ss) != 3 || ss[0] != "USW1" || ss[2] != "USW2" {
		t.Fatalf("StringsView = %v, %v", ss, ok)
	}
}

func TestCSVColumnByIndex(t *testing.T) {
	l, err := CSVColumn(strings.NewReader(tempsCSV), "4")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := l.FloatsView(); !ok || l.Len() != 3 {
		t.Fatalf("column by index: columnar=%v len=%d", ok, l.Len())
	}
}

func TestCSVColumnErrors(t *testing.T) {
	_, err := CSVColumn(strings.NewReader(tempsCSV), "nope")
	if err == nil || !strings.Contains(err.Error(), `CSV has no column "nope"`) {
		t.Fatalf("missing column error = %v", err)
	}
	_, err = CSVColumn(strings.NewReader("a,b\n1,2\n3\n"), "b")
	want := "line 3: no column 2 in 1-field record"
	if err == nil || err.Error() != want {
		t.Fatalf("ragged record error = %v, want %q", err, want)
	}
	_, err = CSVColumn(strings.NewReader(""), "x")
	if err == nil || !strings.Contains(err.Error(), "read CSV header") {
		t.Fatalf("empty file error = %v", err)
	}
}
