// Package ingest streams data files into columnar Snap! lists — the §6.3
// "way to consume existing data files" at production scale. Each reader
// parses its input directly into a value.List column ([]float64 or
// []string) without materializing one boxed Value per record, so a
// million-row CSV costs two slices, not a million interface boxes. The
// resulting lists feed the mapReduce block's columnar fast path
// end to end: file → column → kernels.
package ingest

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/value"
)

// maxLineBytes is the scanner line limit for Lines and Floats; data files
// with longer records should use the CSV reader.
const maxLineBytes = 1 << 20

// Lines streams r into a text-column list, one item per line (without the
// trailing newline), mirroring Snap!'s "split _ by line".
func Lines(r io.Reader) (*value.List, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	var ss []string
	for sc.Scan() {
		ss = append(ss, sc.Text())
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read lines: %w", err)
	}
	return value.AdoptStrings(ss), nil
}

// Floats streams r into a numeric-column list, one number per line. Blank
// lines are skipped; anything else that is not a Snap! number is an error
// with the line pinned.
func Floats(r io.Reader) (*value.List, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	var xs []float64
	for line := 1; sc.Scan(); line++ {
		s := sc.Text()
		if len(s) == 0 {
			continue
		}
		n, err := value.ParseNumber(s)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		xs = append(xs, float64(n))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read floats: %w", err)
	}
	return value.AdoptFloats(xs), nil
}

// CSVColumn streams one column of a headered CSV file into a columnar
// list. column names a header field, or (when no header field matches) a
// 1-based column index. The column comes back numeric when every cell
// parses as a Snap! number, and as raw text otherwise — decided in one
// pass, with both candidates accumulated so no re-read is needed.
func CSVColumn(r io.Reader, column string) (*value.List, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("read CSV header: %w", err)
	}
	idx := -1
	for i, name := range header {
		if name == column {
			idx = i
			break
		}
	}
	if idx < 0 {
		if i, err := strconv.Atoi(column); err == nil && i >= 1 && i <= len(header) {
			idx = i - 1
		} else {
			return nil, fmt.Errorf("CSV has no column %q (header %v)", column, header)
		}
	}
	var (
		raw     []string
		nums    []float64
		numeric = true
	)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if idx >= len(rec) {
			return nil, fmt.Errorf("line %d: no column %d in %d-field record", line, idx+1, len(rec))
		}
		cell := rec[idx]
		raw = append(raw, cell)
		if numeric {
			n, perr := value.ParseNumber(cell)
			if perr != nil {
				numeric = false
				nums = nil
			} else {
				nums = append(nums, float64(n))
			}
		}
	}
	if numeric {
		return value.AdoptFloats(nums), nil
	}
	return value.AdoptStrings(raw), nil
}
