package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestHealthzReportsDraining pins the SIGTERM handshake's router-facing
// half: while draining, /healthz flips to 503 with status "draining" (so
// a shard router ejects this backend before the listener closes), and
// flips back when draining ends.
func TestHealthzReportsDraining(t *testing.T) {
	srv := New(Config{})
	get := func() (int, string) {
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
		var body struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("healthz body %q: %v", rec.Body.String(), err)
		}
		return rec.Code, body.Status
	}

	if code, status := get(); code != http.StatusOK || status == "draining" {
		t.Fatalf("healthz before drain = %d %q", code, status)
	}
	srv.SetDraining(true)
	if code, status := get(); code != http.StatusServiceUnavailable || status != "draining" {
		t.Fatalf("healthz while draining = %d %q, want 503 draining", code, status)
	}
	if !srv.Draining() {
		t.Error("Draining() = false while draining")
	}
	srv.SetDraining(false)
	if code, status := get(); code != http.StatusOK || status == "draining" {
		t.Fatalf("healthz after drain = %d %q", code, status)
	}
}

// TestRunAdoptsRequestID pins the request-ID satellite at the HTTP layer:
// an X-Request-ID on POST /v1/run is echoed back, becomes the session's
// trace ID, and the finished session's span list is resolved through it.
func TestRunAdoptsRequestID(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	obs.ResetSpans()

	srv := New(Config{})
	body, _ := json.Marshal(RunRequest{Project: parallelSrc})
	req := httptest.NewRequest("POST", "/v1/run", strings.NewReader(string(body)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", "req-http-9")
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("run = %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Request-ID"); got != "req-http-9" {
		t.Errorf("X-Request-ID echoed as %q", got)
	}
	var rr RunResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &rr); err != nil {
		t.Fatal(err)
	}
	if len(obs.SpansFor("req-http-9")) == 0 {
		t.Error("no spans recorded under the request ID")
	}

	// The session endpoint still finds the spans even though they are
	// keyed by the request ID rather than the session ID.
	get := httptest.NewRequest("GET", "/v1/sessions/"+rr.ID, nil)
	grec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(grec, get)
	if grec.Code != http.StatusOK {
		t.Fatalf("session lookup = %d: %s", grec.Code, grec.Body.String())
	}
	var sr SessionResponse
	if err := json.Unmarshal(grec.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Spans) == 0 {
		t.Error("session response lost the spans keyed by the request ID")
	}
}
