package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/interp"
	"repro/internal/progcache"
	"repro/internal/runtime"
	"repro/internal/value"
)

// warnSrc carries a warning-severity lint finding (a broadcast no script
// listens for), so the cached elaboration has Warnings to echo.
const warnSrc = `
	(project "warned"
	  (sprite "S"
	    (when green-flag (do
	      (broadcast "nobody")
	      (say "done")))))`

// newCachingServer hands back both the Server (for cache stats) and its
// test listener, unlike newTestServer which only exposes the URL.
func newCachingServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestCacheElaboratesIdenticalBodiesOnce is the tentpole's e2e: a
// thundering herd of identical submissions parses and lints exactly once.
func TestCacheElaboratesIdenticalBodiesOnce(t *testing.T) {
	srv, ts := newCachingServer(t, Config{Runtime: runtime.Config{
		MaxConcurrent: 8, MaxQueue: 32, QueueWait: 10 * time.Second,
	}})

	const N = 12
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Project: warnSrc})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status = %d, body %s", resp.StatusCode, body)
				return
			}
			var rr RunResponse
			if err := json.Unmarshal(body, &rr); err != nil {
				t.Error(err)
				return
			}
			if rr.Status != runtime.StatusOK {
				t.Errorf("session status = %s (%s)", rr.Status, rr.Error)
			}
			// The cached path must echo the lint warnings too.
			if len(rr.Warnings) != 1 || !strings.Contains(rr.Warnings[0], "nobody") {
				t.Errorf("warnings = %v, want the unknown-message warning", rr.Warnings)
			}
		}()
	}
	wg.Wait()

	st := srv.cache.Stats()
	if st.Misses != 1 {
		t.Fatalf("project elaborated %d times for %d identical requests, want 1 (stats %+v)", st.Misses, N, st)
	}
	if st.Hits+st.SharedLoads != N-1 {
		t.Fatalf("hits+shared = %d, want %d (stats %+v)", st.Hits+st.SharedLoads, N-1, st)
	}
}

// TestCacheReplaysLintRejection: a cached rejection serves repeat
// offenders without re-linting, and without corrupting the cached
// finding slices.
func TestCacheReplaysLintRejection(t *testing.T) {
	srv, ts := newCachingServer(t, Config{})
	var bodies [2][]byte
	for i := range bodies {
		resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Project: lintBadSrc})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("attempt %d: status = %d, want 400 (body %s)", i, resp.StatusCode, body)
		}
		bodies[i] = body
	}
	if string(bodies[0]) != string(bodies[1]) {
		t.Fatalf("cached rejection drifted:\n%s\nvs\n%s", bodies[0], bodies[1])
	}
	st := srv.cache.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 miss / 1 hit", st)
	}
}

// TestCacheSharedAcrossEndpoints: /v1/run and /v1/codegen address the
// same tier, so a body elaborated for one is a hit for the other.
func TestCacheSharedAcrossEndpoints(t *testing.T) {
	// A body that both executes and translates (§6 OpenMP covers
	// doParallelForEach).
	const src = `
		(project "omp"
		  (sprite "S"
		    (when green-flag (do
		      (declare data total)
		      (set data (list 1 2 3 4 5 6 7 8))
		      (set total 0)
		      (parallelforeach i $data 4 (do (change total 1)))))))`
	srv, ts := newCachingServer(t, Config{})
	if resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Project: src}); resp.StatusCode != http.StatusOK {
		t.Fatalf("run: %d %s", resp.StatusCode, body)
	}
	if resp, body := postJSON(t, ts.URL+"/v1/codegen", CodegenRequest{Project: src, Lang: "openmp"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("codegen: %d %s", resp.StatusCode, body)
	}
	st := srv.cache.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want codegen to hit run's entry", st)
	}
}

func TestCacheDisabledByNegativeBudget(t *testing.T) {
	srv, ts := newCachingServer(t, Config{CacheBytes: -1})
	for i := 0; i < 2; i++ {
		if resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Project: quickSrc}); resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, body %s", resp.StatusCode, body)
		}
	}
	// Stats on a disabled (nil) cache are all-zero by contract.
	if st := srv.cache.Stats(); st != (progcache.Stats{}) {
		t.Fatalf("disabled cache recorded stats: %+v", st)
	}
}

// TestRetryAfterDerivedFromQueueWait: the 429 hint tracks the admission
// window instead of the old hardcoded "1".
func TestRetryAfterDerivedFromQueueWait(t *testing.T) {
	_, ts := newCachingServer(t, Config{Runtime: runtime.Config{
		MaxConcurrent: 1,
		MaxQueue:      1,
		QueueWait:     3 * time.Second,
	}})

	// Fill the slot and the queue, then overflow.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			postJSON(t, ts.URL+"/v1/run", RunRequest{Project: foreverSrc, TimeoutMS: 1500})
		}()
		time.Sleep(100 * time.Millisecond)
	}
	resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Project: quickSrc})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want %q (ceil of the 3s queue wait)", got, "3")
	}
	wg.Wait()
}

// faultXML reaches the panicking primitive through the real ingestion
// path: XML is the only format whose decoder accepts arbitrary opcodes,
// so a registered-but-buggy primitive can flow through decode and lint
// (lint admits any opcode interp implements) into a session.
const faultXML = `<?xml version="1.0" encoding="UTF-8"?>
<project name="faulty">
  <sprites>
    <sprite name="S">
      <scripts>
        <script hat="whenGreenFlag">
          <block s="testServerFaultPanic"></block>
        </script>
      </scripts>
    </sprite>
  </sprites>
</project>`

// TestPrimitivePanicReturns500AndDaemonSurvives is the satellite's e2e:
// a faulting primitive yields a structured fault response, and the
// daemon keeps serving.
func TestPrimitivePanicReturns500AndDaemonSurvives(t *testing.T) {
	const op = "testServerFaultPanic"
	if !interp.HasPrimitive(op) {
		interp.RegisterPrimitive(op, func(p *interp.Process, ctx *interp.Context) (value.Value, interp.Control, error) {
			panic("synthetic server-side primitive bug")
		})
	}
	_, ts := newCachingServer(t, Config{})

	resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Project: faultXML})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 (body %s)", resp.StatusCode, body)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Status != runtime.StatusFault {
		t.Fatalf("session status = %q, want fault", rr.Status)
	}
	if !strings.Contains(rr.Error, "synthetic server-side primitive bug") {
		t.Fatalf("fault error %q lost the panic value", rr.Error)
	}
	if rr.ID == "" {
		t.Fatal("fault response lost the session ID")
	}

	// The daemon survived: the faulted session is queryable and the next
	// run is healthy.
	if resp, body := getJSON(t, ts.URL+"/v1/sessions/"+rr.ID); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET session after fault: %d %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/run", RunRequest{Project: quickSrc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-fault run: %d %s", resp.StatusCode, body)
	}
	var ok RunResponse
	if err := json.Unmarshal(body, &ok); err != nil {
		t.Fatal(err)
	}
	if ok.Status != runtime.StatusOK {
		t.Fatalf("post-fault session = %s, want ok", ok.Status)
	}
}
