package server

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// metrics is a hand-rolled Prometheus-text-format registry. The daemon
// must stay dependency-free (the container bakes in only the Go
// toolchain), and the fixed shape we need — per-endpoint request counters,
// session gauges, and two histogram families — does not justify a client
// library.
type metrics struct {
	mu       sync.Mutex
	requests map[string]map[int]int64 // endpoint -> status code -> count
	latency  map[string]*histogram    // endpoint -> seconds histogram
	steps    *histogram               // per-session evaluator steps
}

// latencyBounds and stepBounds are the histogram bucket upper bounds.
var (
	latencyBounds = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10}
	stepBounds    = []float64{1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8}
)

func newMetrics() *metrics {
	return &metrics{
		requests: map[string]map[int]int64{},
		latency:  map[string]*histogram{},
		steps:    newHistogram(stepBounds),
	}
}

type histogram struct {
	bounds []float64
	counts []int64 // len(bounds)+1; the last bucket is +Inf
	sum    float64
	total  int64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.total++
}

// request records one served request.
func (m *metrics) request(endpoint string, code int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byCode := m.requests[endpoint]
	if byCode == nil {
		byCode = map[int]int64{}
		m.requests[endpoint] = byCode
	}
	byCode[code]++
	h := m.latency[endpoint]
	if h == nil {
		h = newHistogram(latencyBounds)
		m.latency[endpoint] = h
	}
	h.observe(seconds)
}

// session records one finished session's step count.
func (m *metrics) session(steps int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.steps.observe(float64(steps))
}

// gauges are read at render time so they are always current.
type gaugeFunc struct {
	name, help string
	read       func() float64
}

// render writes the whole registry in Prometheus text exposition format.
func (m *metrics) render(b *strings.Builder, gauges []gaugeFunc, sessionTotals map[string]int64) {
	m.mu.Lock()
	defer m.mu.Unlock()

	b.WriteString("# HELP snapserved_requests_total Requests served, by endpoint and status code.\n")
	b.WriteString("# TYPE snapserved_requests_total counter\n")
	for _, ep := range sortedKeys(m.requests) {
		codes := m.requests[ep]
		keys := make([]int, 0, len(codes))
		for c := range codes {
			keys = append(keys, c)
		}
		sort.Ints(keys)
		for _, c := range keys {
			fmt.Fprintf(b, "snapserved_requests_total{endpoint=%q,code=\"%d\"} %d\n", ep, c, codes[c])
		}
	}

	for _, g := range gauges {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", g.name, g.help, g.name, g.name, g.read())
	}

	b.WriteString("# HELP snapserved_sessions_total Finished sessions, by outcome status.\n")
	b.WriteString("# TYPE snapserved_sessions_total counter\n")
	for _, st := range sortedKeys(sessionTotals) {
		fmt.Fprintf(b, "snapserved_sessions_total{status=%q} %d\n", st, sessionTotals[st])
	}

	b.WriteString("# HELP snapserved_request_seconds Request latency, by endpoint.\n")
	b.WriteString("# TYPE snapserved_request_seconds histogram\n")
	for _, ep := range sortedKeys(m.latency) {
		m.latency[ep].render(b, "snapserved_request_seconds", fmt.Sprintf("endpoint=%q", ep))
	}

	b.WriteString("# HELP snapserved_session_steps Evaluator steps per finished session.\n")
	b.WriteString("# TYPE snapserved_session_steps histogram\n")
	m.steps.render(b, "snapserved_session_steps", "")
}

func (h *histogram) render(b *strings.Builder, name, labels string) {
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(b, "%s_bucket{%s} %d\n", name, joinLabels(labels, "le=\""+trimFloat(bound)+"\""), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(b, "%s_bucket{%s} %d\n", name, joinLabels(labels, `le="+Inf"`), cum)
	if labels == "" {
		fmt.Fprintf(b, "%s_sum %g\n%s_count %d\n", name, h.sum, name, h.total)
	} else {
		fmt.Fprintf(b, "%s_sum{%s} %g\n%s_count{%s} %d\n", name, labels, h.sum, name, labels, h.total)
	}
}

func joinLabels(parts ...string) string {
	out := parts[:0]
	for _, p := range parts {
		if p != "" {
			out = append(out, p)
		}
	}
	return strings.Join(out, ",")
}

func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
