// Package server exposes the execution service over HTTP/JSON: the
// multi-tenant front door to the paper's runtime. POST /v1/run executes an
// uploaded block project (textual .sblk or Snap! XML) as a governed
// session; POST /v1/codegen runs the §6 code-mapping feature, translating
// blocks to C, OpenMP C, JavaScript, Python, or Go; GET /v1/sessions/{id}
// reports status and trace; /healthz and /metrics serve operators.
//
// Untrusted projects are lint-gated before they run (error-severity
// findings reject with 400), resource-governed while they run (see
// internal/runtime), and load-shed when the service is full (429 from
// admission control). All sessions share the process-wide worker pool.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/blocks"
	"repro/internal/codegen"
	"repro/internal/lint"
	"repro/internal/obs"
	"repro/internal/parse"
	"repro/internal/progcache"
	"repro/internal/runtime"
	"repro/internal/xmlio"
)

// Config parameterizes a Server.
type Config struct {
	// Runtime configures the session manager (admission limits, budgets).
	Runtime runtime.Config
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// CacheBytes is the byte budget of the content-addressed project
	// cache (parsed ASTs + lint findings, keyed on the raw request body).
	// 0 means the progcache default; negative disables caching, so every
	// request re-parses and re-lints.
	CacheBytes int64
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints expose stacks and timing oracles, so
	// operators opt in with snapserved -pprof.
	EnablePprof bool
}

// Server is the HTTP front end over a runtime.Manager.
type Server struct {
	cfg      Config
	mgr      *runtime.Manager
	met      *metrics
	mux      *http.ServeMux
	cache    *progcache.Projects // nil when disabled
	draining atomic.Bool
}

// New builds a server and its session manager.
func New(cfg Config) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = progcache.DefaultProjectBudget
	}
	s := &Server{
		cfg:   cfg,
		mgr:   runtime.NewManager(cfg.Runtime),
		met:   newMetrics(),
		mux:   http.NewServeMux(),
		cache: progcache.NewProjects(cfg.CacheBytes), // nil when CacheBytes < 0
	}
	s.mux.HandleFunc("POST /v1/run", s.instrument("/v1/run", s.handleRun))
	s.mux.HandleFunc("POST /v1/codegen", s.instrument("/v1/codegen", s.handleCodegen))
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.instrument("/v1/sessions/{id}", s.handleSession))
	s.mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.EnablePprof {
		// Mounted on the server's own mux (we never serve the default
		// mux), so the flag really is the only way in.
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Manager exposes the session manager (for daemon wiring and tests).
func (s *Server) Manager() *runtime.Manager { return s.mgr }

// CacheStats snapshots the Tier A project-cache counters (zero value when
// caching is disabled) — the always-on source the shard e2e suite reads to
// assert cache affinity per backend.
func (s *Server) CacheStats() progcache.Stats { return s.cache.Stats() }

// SetDraining flips the draining state. While draining, /healthz answers
// 503 with status "draining" so a fronting shard router ejects this
// backend before the daemon finishes its in-flight sessions and exits.
// Requests already in flight (and any stragglers that arrive before the
// router reacts) are still served normally.
func (s *Server) SetDraining(on bool) { s.draining.Store(on) }

// Draining reports whether SetDraining was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// statusRecorder captures the response code for the request counters.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the body cap and per-endpoint metrics.
// The endpoint label is the route pattern, not the concrete path, so
// session IDs never explode metric cardinality.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(rec, r)
		s.met.request(endpoint, rec.code, time.Since(start).Seconds())
	}
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
	// Findings carries lint diagnostics when the project was rejected.
	Findings []string `json:"findings,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// decodeBody parses the JSON request body into v, translating the
// MaxBytesReader error into 413.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
		} else {
			writeError(w, http.StatusBadRequest, "decode request: %v", err)
		}
		return false
	}
	return true
}

// decodeProject turns an uploaded project (textual .sblk s-expressions or
// Snap! XML) into a block AST. Auto-detection matches cmd/snapvm: textual
// projects start with a ( form or a ; comment, XML with <.
func decodeProject(src, format string) (*blocks.Project, error) {
	trimmed := strings.TrimSpace(src)
	if trimmed == "" {
		return nil, errors.New("empty project")
	}
	switch strings.ToLower(format) {
	case "", "auto":
		if strings.HasPrefix(trimmed, "(") || strings.HasPrefix(trimmed, ";") {
			return parse.Project(src)
		}
		if strings.HasPrefix(trimmed, "<") {
			return xmlio.DecodeProject(strings.NewReader(src))
		}
		return nil, errors.New("unrecognized project format: want textual s-expressions or Snap! XML")
	case "sblk", "text":
		return parse.Project(src)
	case "xml":
		return xmlio.DecodeProject(strings.NewReader(src))
	default:
		return nil, fmt.Errorf("unknown format %q (want auto, sblk, or xml)", format)
	}
}

// elaborate is the uncached decode-and-lint pipeline: one Tier A cache
// load. Parse failures and lint findings are part of the outcome, so a
// cached rejection replays as cheaply as a cached success.
func elaborate(src, format string) *progcache.ProjectEntry {
	project, err := decodeProject(src, format)
	if err != nil {
		return &progcache.ProjectEntry{ParseErr: err.Error()}
	}
	ent := &progcache.ProjectEntry{Project: project}
	for _, f := range lint.Project(project) {
		if f.Severity == lint.Error {
			ent.Fatal = append(ent.Fatal, f.String())
		} else {
			ent.Warnings = append(ent.Warnings, f.String())
		}
	}
	return ent
}

// project resolves a request body through the Tier A cache (straight
// through elaborate when caching is disabled) and translates cached
// rejections into their HTTP replies. ok is false when the request was
// answered; otherwise the entry's Project and Warnings are live — and
// shared with other requests, so callers must treat them as read-only.
func (s *Server) project(w http.ResponseWriter, src, format string) (*progcache.ProjectEntry, bool) {
	ent, _ := s.cache.Get(src, format, func() *progcache.ProjectEntry {
		return elaborate(src, format)
	})
	switch {
	case ent.ParseErr != "":
		writeError(w, http.StatusBadRequest, "parse project: %s", ent.ParseErr)
		return nil, false
	case len(ent.Fatal) > 0:
		// Build the combined findings fresh: the cached slices are
		// shared across requests and must not be appended to in place.
		findings := make([]string, 0, len(ent.Fatal)+len(ent.Warnings))
		findings = append(findings, ent.Fatal...)
		findings = append(findings, ent.Warnings...)
		writeJSON(w, http.StatusBadRequest, errorBody{
			Error:    fmt.Sprintf("project rejected by lint (%d errors)", len(ent.Fatal)),
			Findings: findings,
		})
		return nil, false
	}
	return ent, true
}

// RunRequest is the POST /v1/run body.
type RunRequest struct {
	// Project is the program source, textual .sblk or Snap! XML.
	Project string `json:"project"`
	// Format forces the source syntax: auto (default), sblk, or xml.
	Format string `json:"format,omitempty"`
	// The resource envelope; zeros inherit the service defaults and
	// everything is clamped to the service ceiling.
	TimeoutMS     int64 `json:"timeout_ms,omitempty"`
	MaxSteps      int64 `json:"max_steps,omitempty"`
	MaxRounds     int   `json:"max_rounds,omitempty"`
	MaxTraceLines int   `json:"max_trace_lines,omitempty"`
}

// RunResponse is the POST /v1/run reply: the session outcome plus its ID
// (for GET /v1/sessions/{id}) and any lint warnings.
type RunResponse struct {
	ID       string   `json:"id"`
	Warnings []string `json:"warnings,omitempty"`
	runtime.Result
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if !decodeBody(w, r, &req) {
		return
	}
	ent, ok := s.project(w, req.Project, req.Format)
	if !ok {
		return
	}
	lim := runtime.Limits{
		Timeout:       time.Duration(req.TimeoutMS) * time.Millisecond,
		MaxSteps:      req.MaxSteps,
		MaxRounds:     req.MaxRounds,
		MaxTraceLines: req.MaxTraceLines,
	}
	// A router in front of us stamps X-Request-ID; adopting it as the
	// session's trace ID makes the engine job spans of this run
	// addressable by the distributed request, not just the local session.
	reqID := r.Header.Get("X-Request-ID")
	if reqID != "" {
		w.Header().Set("X-Request-ID", reqID)
	}
	sess, err := s.mgr.RunTraced(r.Context(), ent.Project, lim, reqID)
	switch {
	case errors.Is(err, runtime.ErrOverloaded):
		w.Header().Set("Retry-After", s.retryAfter())
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case err != nil:
		// The client's context died while the session was queued.
		writeError(w, http.StatusServiceUnavailable, "session never started: %v", err)
		return
	}
	res, _ := sess.Result()
	s.met.session(res.Steps)
	code := http.StatusOK
	if res.Status == runtime.StatusFault {
		// A primitive panicked inside the session. The fault was contained
		// at the session boundary — the daemon and its pool are fine — but
		// the run itself is a server-side failure, not a program outcome.
		code = http.StatusInternalServerError
	}
	writeJSON(w, code, RunResponse{ID: sess.ID(), Warnings: ent.Warnings, Result: res})
}

// retryAfter derives the 429 Retry-After hint from the admission queue
// wait: a client backing off that long is guaranteed a fresh admission
// window rather than rejoining the same full queue.
func (s *Server) retryAfter() string {
	secs := int(math.Ceil(s.mgr.Config().QueueWait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// CodegenRequest is the POST /v1/codegen body. Either Script (a bare
// textual script) or Project (a whole project whose first green-flag
// script is translated) must be set.
type CodegenRequest struct {
	Script  string `json:"script,omitempty"`
	Project string `json:"project,omitempty"`
	Format  string `json:"format,omitempty"`
	// Lang is the target: c, openmp, js, python, or go.
	Lang string `json:"lang"`
}

// CodegenResponse is the POST /v1/codegen reply.
type CodegenResponse struct {
	Lang     string   `json:"lang"`
	Source   string   `json:"source"`
	Warnings []string `json:"warnings,omitempty"`
}

func (s *Server) handleCodegen(w http.ResponseWriter, r *http.Request) {
	var req CodegenRequest
	if !decodeBody(w, r, &req) {
		return
	}
	var script *blocks.Script
	var warnings []string
	switch {
	case req.Script != "" && req.Project != "":
		writeError(w, http.StatusBadRequest, "give either script or project, not both")
		return
	case req.Script != "":
		var err error
		script, err = parse.Script(req.Script)
		if err != nil {
			writeError(w, http.StatusBadRequest, "parse script: %v", err)
			return
		}
	case req.Project != "":
		ent, ok := s.project(w, req.Project, req.Format)
		if !ok {
			return
		}
		warnings = ent.Warnings
		if script = greenFlagScript(ent.Project); script == nil {
			writeError(w, http.StatusBadRequest, "project has no green-flag script to translate")
			return
		}
	default:
		writeError(w, http.StatusBadRequest, "empty request: give script or project")
		return
	}

	lang := strings.ToLower(req.Lang)
	var src string
	var err error
	switch lang {
	case "", "c":
		lang = "c"
		src, err = codegen.NewCEmitter().Program(script)
	case "openmp":
		src, err = codegen.NewOpenMPEmitter().Program(script)
	default:
		var tr *codegen.Translator
		if tr, err = codegen.ForLang(lang); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		src, err = tr.Script(script, 0)
	}
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "translate: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, CodegenResponse{Lang: lang, Source: src, Warnings: warnings})
}

func greenFlagScript(p *blocks.Project) *blocks.Script {
	for _, sp := range p.Sprites {
		for _, hs := range sp.Scripts {
			if hs.Hat == blocks.HatGreenFlag {
				return hs.Script
			}
		}
	}
	return nil
}

// SessionResponse is the GET /v1/sessions/{id} reply. Trace is live while
// the session runs; Result appears once it is done. Spans summarizes the
// engine-side work the session triggered (parallel maps, mapReduce runs,
// the session itself) when observability is enabled — spans are retained
// in a bounded ring, so long-gone sessions may have none.
type SessionResponse struct {
	ID     string          `json:"id"`
	State  runtime.State   `json:"state"`
	Trace  []string        `json:"trace"`
	Result *runtime.Result `json:"result,omitempty"`
	Spans  []SpanSummary   `json:"spans,omitempty"`
}

// SpanSummary is one engine span in a session response.
type SpanSummary struct {
	Kind       string     `json:"kind"`
	DurationMS float64    `json:"duration_ms"`
	Attrs      []obs.Attr `json:"attrs,omitempty"`
}

func spanSummaries(id string) []SpanSummary {
	spans := obs.SpansFor(id)
	if len(spans) == 0 {
		return nil
	}
	out := make([]SpanSummary, len(spans))
	for i, sp := range spans {
		out[i] = SpanSummary{
			Kind:       sp.Kind,
			DurationMS: float64(sp.Dur) / float64(time.Millisecond),
			Attrs:      sp.Attrs,
		}
	}
	return out
}

func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess := s.mgr.Session(id)
	if sess == nil {
		writeError(w, http.StatusNotFound, "no session %q", id)
		return
	}
	resp := SessionResponse{ID: sess.ID(), State: sess.State(), Trace: sess.TraceLines()}
	if res, done := sess.Result(); done {
		resp.Result = &res
		resp.Spans = spanSummaries(sess.TraceID())
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.mgr.Stats()
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		// 503 (not a body-only hint) so any health checker — ours or a
		// stock LB — takes the backend out without parsing JSON.
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":  status,
		"running": st.Running,
		"queued":  st.Queued,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.mgr.Stats()
	gauges := []gaugeFunc{
		{"snapserved_sessions_running", "Sessions executing now.", func() float64 { return float64(st.Running) }},
		{"snapserved_sessions_queued", "Sessions waiting for an execution slot.", func() float64 { return float64(st.Queued) }},
		{"snapserved_admitted_total", "Sessions admitted by admission control.", func() float64 { return float64(st.Admitted) }},
		{"snapserved_rejected_total", "Sessions rejected by admission control.", func() float64 { return float64(st.Rejected) }},
	}
	totals := make(map[string]int64, len(st.ByStatus))
	for status, n := range st.ByStatus {
		totals[string(status)] = n
	}
	var b strings.Builder
	s.met.render(&b, gauges, totals)
	obs.Default.Render(&b) // engine-side series (engine_* families)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte(b.String())) //nolint:errcheck
}
