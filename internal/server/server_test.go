package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/runtime"
)

const quickSrc = `
	(project "quick"
	  (sprite "S"
	    (when green-flag (do
	      (forward 10)
	      (say "done")))))`

const foreverSrc = `
	(project "forever"
	  (sprite "S"
	    (local x 0)
	    (when green-flag (do
	      (forever (do (change x 1)))))))`

const parallelSrc = `
	(project "par"
	  (sprite "S"
	    (when green-flag (do
	      (report (parallelmap
	        (lambda (x) (+ $x 1))
	        (numbers 1 100) 4))))))`

// lintBadSrc reads a variable no scope declares — an error-severity lint
// finding, so ingestion must refuse to run it.
const lintBadSrc = `
	(project "bad"
	  (sprite "S"
	    (when green-flag (do
	      (say $undeclared)))))`

func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestRunToCompletion(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Project: quickSrc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Status != runtime.StatusOK {
		t.Fatalf("session status = %s (%s)", rr.Status, rr.Error)
	}
	if rr.ID == "" || rr.Steps == 0 || len(rr.Trace) == 0 {
		t.Fatalf("implausible response: %+v", rr)
	}

	// The finished session is queryable by ID.
	resp, body = getJSON(t, ts.URL+"/v1/sessions/"+rr.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET session = %d, body %s", resp.StatusCode, body)
	}
	var sr SessionResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.State != runtime.StateDone || sr.Result == nil || sr.Result.Status != runtime.StatusOK {
		t.Fatalf("session lookup: %+v", sr)
	}
}

func TestDeadlineKillReturnsStructuredTimeout(t *testing.T) {
	ts := newTestServer(t, Config{})
	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Project: foreverSrc, TimeoutMS: 100})
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Status != runtime.StatusTimeout {
		t.Fatalf("session status = %s (%s), want timeout", rr.Status, rr.Error)
	}
	// Acceptance: a forever loop with a 100ms deadline answers within ~2x.
	if elapsed > 250*time.Millisecond {
		t.Fatalf("100ms-deadline request took %v", elapsed)
	}
}

func TestStepBudgetKill(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Project: foreverSrc, MaxSteps: 10_000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Status != runtime.StatusSteps {
		t.Fatalf("session status = %s (%s), want step-budget", rr.Status, rr.Error)
	}
}

func TestLintRejection(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Project: lintBadSrc})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body %s", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eb.Error, "lint") || len(eb.Findings) == 0 {
		t.Fatalf("rejection lost its diagnostics: %+v", eb)
	}
}

func TestMalformedRequests(t *testing.T) {
	ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		body any
		want int
	}{
		{"empty project", RunRequest{}, http.StatusBadRequest},
		{"garbage source", RunRequest{Project: "!!!"}, http.StatusBadRequest},
		{"bad format", RunRequest{Project: quickSrc, Format: "yaml"}, http.StatusBadRequest},
		{"unclosed sexpr", RunRequest{Project: `(project "x"`}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/run", tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d; body %s", tc.name, resp.StatusCode, tc.want, body)
		}
	}

	// Non-JSON body.
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("non-JSON body: status = %d, want 400", resp.StatusCode)
	}

	// Unknown session.
	resp, _ = getJSON(t, ts.URL+"/v1/sessions/s-doesnotexist")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session: status = %d, want 404", resp.StatusCode)
	}
}

func TestBodyTooLarge(t *testing.T) {
	ts := newTestServer(t, Config{MaxBodyBytes: 1024})
	huge := RunRequest{Project: "; " + strings.Repeat("x", 4096)}
	resp, _ := postJSON(t, ts.URL+"/v1/run", huge)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

func TestAdmissionQueuesThen429(t *testing.T) {
	ts := newTestServer(t, Config{Runtime: runtime.Config{
		MaxConcurrent: 1,
		MaxQueue:      1,
		QueueWait:     2 * time.Second,
	}})

	var wg sync.WaitGroup
	codes := make([]int, 3)
	statuses := make([]runtime.Status, 3)
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Project: foreverSrc, TimeoutMS: 300})
			codes[i] = resp.StatusCode
			if resp.StatusCode == http.StatusOK {
				var rr RunResponse
				if err := json.Unmarshal(body, &rr); err == nil {
					statuses[i] = rr.Status
				}
			}
		}()
		// Stagger so the roles are deterministic: 0 runs, 1 queues, 2 gets 429.
		time.Sleep(50 * time.Millisecond)
	}
	wg.Wait()

	ok, rejected := 0, 0
	for i, code := range codes {
		switch code {
		case http.StatusOK:
			ok++
			if statuses[i] != runtime.StatusTimeout {
				t.Errorf("request %d session status = %s, want timeout", i, statuses[i])
			}
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Errorf("request %d unexpected status %d", i, code)
		}
	}
	if ok != 2 || rejected != 1 {
		t.Fatalf("ok=%d rejected=%d, want 2 queued-through and 1 rejection", ok, rejected)
	}
}

func TestConcurrentMixedSessions(t *testing.T) {
	ts := newTestServer(t, Config{Runtime: runtime.Config{MaxConcurrent: 4, MaxQueue: 16, QueueWait: 10 * time.Second}})
	type job struct {
		req  RunRequest
		want runtime.Status
	}
	jobs := []job{
		{RunRequest{Project: quickSrc}, runtime.StatusOK},
		{RunRequest{Project: parallelSrc}, runtime.StatusOK},
		{RunRequest{Project: foreverSrc, TimeoutMS: 150}, runtime.StatusTimeout},
		{RunRequest{Project: foreverSrc, MaxSteps: 5000}, runtime.StatusSteps},
		{RunRequest{Project: quickSrc}, runtime.StatusOK},
		{RunRequest{Project: foreverSrc, TimeoutMS: 100}, runtime.StatusTimeout},
	}
	var wg sync.WaitGroup
	for i, j := range jobs {
		i, j := i, j
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/v1/run", j.req)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("job %d: status %d, body %s", i, resp.StatusCode, body)
				return
			}
			var rr RunResponse
			if err := json.Unmarshal(body, &rr); err != nil {
				t.Errorf("job %d: %v", i, err)
				return
			}
			if rr.Status != j.want {
				t.Errorf("job %d: session status %s (%s), want %s", i, rr.Status, rr.Error, j.want)
			}
		}()
	}
	wg.Wait()
}

func TestCodegenEndpoint(t *testing.T) {
	ts := newTestServer(t, Config{})
	script := `
		(declare x)
		(set x 0)
		(repeat 10 (do (change x 1)))
		(say $x)`

	for _, lang := range []string{"c", "openmp", "js", "python", "go"} {
		resp, body := postJSON(t, ts.URL+"/v1/codegen", CodegenRequest{Script: script, Lang: lang})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d, body %s", lang, resp.StatusCode, body)
		}
		var cr CodegenResponse
		if err := json.Unmarshal(body, &cr); err != nil {
			t.Fatal(err)
		}
		if cr.Lang != lang || cr.Source == "" {
			t.Fatalf("%s: empty translation: %+v", lang, cr)
		}
	}

	// Whole-project translation picks the green-flag script; OpenMP output
	// of a parallel block must carry a pragma. (reportParallelMap has no
	// text mapping — the §6 OpenMP path covers doParallelForEach.)
	const ompSrc = `
		(project "omp"
		  (sprite "S"
		    (when green-flag (do
		      (declare data total)
		      (set data (list 1 2 3 4 5 6 7 8))
		      (set total 0)
		      (parallelforeach i $data 4 (do (change total 1)))))))`
	resp, body := postJSON(t, ts.URL+"/v1/codegen", CodegenRequest{Project: ompSrc, Lang: "openmp"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("project codegen: status %d, body %s", resp.StatusCode, body)
	}
	var cr CodegenResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cr.Source, "#pragma omp") {
		t.Fatalf("openmp translation of a parallel map lost its pragma:\n%s", cr.Source)
	}

	// Bad requests.
	resp, _ = postJSON(t, ts.URL+"/v1/codegen", CodegenRequest{Lang: "c"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty codegen request: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/codegen", CodegenRequest{Script: script, Lang: "cobol"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown language: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/codegen", CodegenRequest{Project: lintBadSrc, Lang: "c"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("lint-bad project: status %d, want 400", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, body := getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var h map[string]any
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" {
		t.Fatalf("healthz = %s", body)
	}
}

func TestMetricsExposition(t *testing.T) {
	ts := newTestServer(t, Config{})

	// Generate traffic across outcomes and endpoints.
	postJSON(t, ts.URL+"/v1/run", RunRequest{Project: quickSrc})
	postJSON(t, ts.URL+"/v1/run", RunRequest{Project: foreverSrc, TimeoutMS: 80})
	postJSON(t, ts.URL+"/v1/run", RunRequest{Project: lintBadSrc})
	getJSON(t, ts.URL+"/healthz")

	resp, body := getJSON(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		`snapserved_requests_total{endpoint="/v1/run",code="200"} 2`,
		`snapserved_requests_total{endpoint="/v1/run",code="400"} 1`,
		`snapserved_requests_total{endpoint="/healthz",code="200"} 1`,
		`snapserved_sessions_running 0`,
		`snapserved_sessions_queued 0`,
		`snapserved_admitted_total 2`,
		`snapserved_sessions_total{status="ok"} 1`,
		`snapserved_sessions_total{status="timeout"} 1`,
		`snapserved_request_seconds_bucket{endpoint="/v1/run",le="+Inf"} 3`,
		`snapserved_session_steps_count 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("metrics body:\n%s", text)
	}
}

func TestXMLRoundTripThroughRun(t *testing.T) {
	// Build a minimal Snap! XML project equivalent to quickSrc and run it,
	// exercising the xmlio ingestion path end to end.
	xml := fmt.Sprintf(`<project name="quick"><sprites>%s</sprites></project>`,
		`<sprite name="S"><scripts><script>`+
			`<block s="forward"><l>10</l></block>`+
			`<block s="bubble"><l>done</l></block></script></scripts></sprite>`)
	ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Project: xml, Format: "xml"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Status != runtime.StatusOK || len(rr.Trace) == 0 {
		t.Fatalf("XML project run: %+v", rr)
	}
}
